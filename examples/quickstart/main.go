// Quickstart: boot a complete DUFS deployment in one process and walk
// through the paper's core mechanics — a single virtual namespace over
// multiple back-end mounts, directories living purely in the
// coordination service, and files placed by the FID mapping function.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/vfs"
)

func main() {
	// A paper-style deployment: 3 coordination servers (quorum = 2)
	// unioning 2 Lustre-like filesystem instances.
	c, err := cluster.Start(cluster.Config{
		Name:         "quickstart",
		CoordServers: 3,
		Backends:     2,
		Kind:         cluster.Lustre,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	// Two independent DUFS clients (think: two client nodes).
	alice, err := c.NewClient(0)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := c.NewClient(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client IDs: alice=%d bob=%d (unique without coordination)\n",
		alice.FS.ClientID(), bob.FS.ClientID())

	// Directories are metadata-only: they exist as znodes, never on
	// the back-end storage (paper §IV-A).
	if err := alice.FS.Mkdir("/projects", 0o755); err != nil {
		log.Fatal(err)
	}
	if err := alice.FS.Mkdir("/projects/dufs", 0o755); err != nil {
		log.Fatal(err)
	}

	// Files get a FID; the MD5 mapping picks the physical mount.
	if err := vfs.WriteFile(alice.FS, "/projects/dufs/README", []byte("one namespace, many mounts")); err != nil {
		log.Fatal(err)
	}

	// Bob sees Alice's file instantly: both talk to the same
	// replicated namespace.
	data, err := vfs.ReadFile(bob.FS, "/projects/dufs/README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob reads: %q\n", data)

	// Rename never moves data — only the name->FID binding changes.
	if err := bob.FS.Rename("/projects/dufs/README", "/projects/dufs/README.md"); err != nil {
		log.Fatal(err)
	}
	// Alice syncs her replica before reading Bob's rename (the
	// coordination service's sync() barrier, like ZooKeeper's).
	if err := alice.FS.Sync(); err != nil {
		log.Fatal(err)
	}
	fi, err := alice.FS.Stat("/projects/dufs/README.md")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rename: %s (%d bytes)\n", fi.Name, fi.Size)

	// The physical bodies are spread over the Lustre instances.
	for i, inst := range c.LustreInstances() {
		fmt.Printf("lustre instance %d object counts per OSS: %v\n", i, inst.ObjectCounts())
	}

	entries, err := bob.FS.Readdir("/projects/dufs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ls /projects/dufs -> %d entries\n", len(entries))
	fmt.Println("quickstart OK")
}
