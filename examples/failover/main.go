// Failover: the paper's reliability claims (§IV-I), live.
//
//   - The coordination service tolerates the failure of a minority of
//     its servers — including the leader — without losing a single
//     committed metadata operation.
//   - DUFS clients are stateless: a "restarted" client (a fresh
//     session) sees the whole namespace immediately.
//
// The example writes files, kills 2 of 5 coordination servers (leader
// first), verifies everything is still there, keeps writing, and then
// demonstrates a full-ensemble restart from a durable checkpoint.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/transport"
	"repro/internal/vfs"
)

func main() {
	c, err := cluster.Start(cluster.Config{
		Name:         "failover",
		CoordServers: 5,
		Backends:     2,
		Kind:         cluster.MemFS,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	cl, err := c.NewClient(0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := vfs.WriteFile(cl.FS, fmt.Sprintf("/pre-%d", i), []byte("committed")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote 10 files on a healthy 5-server ensemble")

	// Kill the leader and one follower: a minority of five.
	leader := c.Ensemble.Leader()
	fmt.Printf("killing leader (server %d) and one follower\n", leader.ID())
	leader.Stop()
	for _, srv := range c.Ensemble.Servers {
		if srv != leader && !srv.IsLeader() {
			srv.Stop()
			break
		}
	}
	if err := c.Ensemble.WaitLeader(10 * time.Second); err != nil {
		log.Fatalf("no new leader: %v", err)
	}
	fmt.Printf("new leader elected: server %d\n", c.Ensemble.Leader().ID())

	// A brand-new stateless client must see every committed file.
	fresh, err := c.NewClient(2)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := fresh.FS.Stat(fmt.Sprintf("/pre-%d", i)); err == nil {
				break
			} else if time.Now().After(deadline) {
				log.Fatalf("file /pre-%d lost after minority failure: %v", i, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	fmt.Println("all 10 pre-failure files survive; writes continue:")
	for i := 0; i < 5; i++ {
		if err := vfs.WriteFile(fresh.FS, fmt.Sprintf("/post-%d", i), []byte("after failover")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("wrote 5 more files on the degraded ensemble")

	// Full restart: checkpoint the namespace, stop everything, boot a
	// fresh ensemble from the checkpoint (paper: ZooKeeper "can
	// tolerate the failure of all servers by restarting them later").
	snap, zxid := c.Ensemble.Leader().Checkpoint()
	fmt.Printf("checkpoint taken at zxid %x (%d bytes)\n", zxid, len(snap))

	net := transport.NewInProc()
	peers := map[uint64]string{1: "r-p1", 2: "r-p2", 3: "r-p3"}
	var servers []*coord.Server
	var clientAddrs []string
	for id := uint64(1); id <= 3; id++ {
		addr := fmt.Sprintf("r-c%d", id)
		srv, err := coord.NewServer(coord.ServerConfig{
			ID: id, PeerAddrs: peers, ClientAddr: addr, Net: net,
			Checkpoint: snap, CheckpointZxid: zxid,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
		clientAddrs = append(clientAddrs, addr)
	}
	restarted := &coord.Ensemble{Servers: servers, ClientAddrs: clientAddrs}
	if err := restarted.WaitLeader(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	sess, err := coord.Connect(net, clientAddrs)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	st, err := sess.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted ensemble serves %d znodes from the checkpoint\n", st.Znodes)
	fmt.Println("failover example OK")
}
