// Consistency: the paper's Figure 1 scenario, live.
//
// Two clients race on the same name: client 1 creates directory d1
// while client 2 renames d1 to d2. With two *uncoordinated* metadata
// servers the operations can interleave differently on each server and
// leave the replicas inconsistent (Fig 1b). With the coordination
// service, every mutation is atomically broadcast in one total order,
// so all replicas agree on one of the two serializable outcomes.
//
// This example runs the race many times against the real replicated
// service and verifies replica agreement after every round.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/coord"
)

func main() {
	c, err := cluster.Start(cluster.Config{
		Name:         "fig1",
		CoordServers: 3,
		Backends:     2,
		Kind:         cluster.MemFS,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	client1, err := c.NewClient(0)
	if err != nil {
		log.Fatal(err)
	}
	client2, err := c.NewClient(1)
	if err != nil {
		log.Fatal(err)
	}

	outcomes := map[string]int{}
	const rounds = 50
	for round := 0; round < rounds; round++ {
		d1 := fmt.Sprintf("/d1-%d", round)
		d2 := fmt.Sprintf("/d2-%d", round)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // client 1: mkdir d1
			defer wg.Done()
			time.Sleep(time.Duration(rand.Intn(300)) * time.Microsecond)
			_ = client1.FS.Mkdir(d1, 0o755)
		}()
		go func() { // client 2: mv d1 d2 (may legally fail if d1 is not there yet)
			defer wg.Done()
			time.Sleep(time.Duration(rand.Intn(300)) * time.Microsecond)
			_ = client2.FS.Sync()
			_ = client2.FS.Rename(d1, d2)
		}()
		wg.Wait()

		// Every replica of the coordination service must agree.
		if err := replicasAgree(c.Ensemble); err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		_, e1 := client1.FS.Stat(d1)
		_, e2 := client1.FS.Stat(d2)
		outcomes[fmt.Sprintf("d1=%v d2=%v", e1 == nil, e2 == nil)]++
	}

	fmt.Println("outcomes over", rounds, "racing rounds (all serializable, replicas always agree):")
	for k, v := range outcomes {
		fmt.Printf("  %-24s %d\n", k, v)
	}
	fmt.Println("consistency example OK")
}

// replicasAgree compares the znode-tree fingerprint of every live
// coordination server, waiting briefly for followers to apply the
// latest commits.
func replicasAgree(e *coord.Ensemble) error {
	deadline := time.Now().Add(3 * time.Second)
	for {
		fp := e.Servers[0].Tree().Fingerprint()
		same := true
		for _, srv := range e.Servers[1:] {
			if srv.Tree().Fingerprint() != fp {
				same = false
				break
			}
		}
		if same {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas diverged and did not converge within 3s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
