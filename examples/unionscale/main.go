// Unionscale: the deterministic mapping function in action, plus the
// paper's stated future work.
//
// Part 1 unions four Lustre-like instances under DUFS, creates a
// thousand files and shows the MD5-mod-N mapping spreading physical
// bodies evenly with zero coordination (paper §IV-F/G).
//
// Part 2 quantifies §VII's future work: replacing MD5 mod N with
// consistent hashing so back-ends can be added with bounded
// relocation. Growing from 4 to 5 back-ends relocates ~80% of files
// under mod-N but only ~20% under the consistent-hash ring.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/fid"
	"repro/internal/placement"
	"repro/internal/vfs"
)

func main() {
	// --- Part 1: even physical spread over 4 unioned mounts ---
	c, err := cluster.Start(cluster.Config{
		Name:         "unionscale",
		CoordServers: 3,
		Backends:     4,
		Kind:         cluster.Lustre,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(0)
	if err != nil {
		log.Fatal(err)
	}

	const files = 1000
	if err := cl.FS.Mkdir("/data", 0o755); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < files; i++ {
		if err := vfs.WriteFile(cl.FS, fmt.Sprintf("/data/f%04d", i), []byte("x")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("created %d files across 4 unioned Lustre instances:\n", files)
	total := 0
	for i, inst := range c.LustreInstances() {
		n := 0
		for _, k := range inst.ObjectCounts() {
			n += k
		}
		total += n
		fmt.Printf("  backend %d: %3d physical files (%.1f%%)\n", i, n, 100*float64(n)/files)
	}
	if total != files {
		log.Fatalf("lost files: %d != %d", total, files)
	}

	// --- Part 2: §VII future work, consistent hashing ---
	sample := make([]fid.FID, 50000)
	rng := rand.New(rand.NewSource(42))
	for i := range sample {
		sample[i] = fid.FID{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}

	mod4, _ := placement.NewModN(4)
	mod5, _ := placement.NewModN(5)
	ring4, _ := placement.NewRing([]int{0, 1, 2, 3}, placement.DefaultReplicas)
	ring5, _ := placement.NewRing([]int{0, 1, 2, 3, 4}, placement.DefaultReplicas)

	modMoved := placement.RelocationReport(mod4, mod5, sample)
	ringMoved := placement.RelocationReport(ring4, ring5, sample)
	fmt.Printf("\nadding a 5th back-end (%d-file sample):\n", len(sample))
	fmt.Printf("  MD5 mod N (paper's mapper):  %5.1f%% of files must relocate\n",
		100*float64(modMoved)/float64(len(sample)))
	fmt.Printf("  consistent-hash ring (§VII): %5.1f%% of files must relocate (ideal: 20.0%%)\n",
		100*float64(ringMoved)/float64(len(sample)))

	balance := placement.MeasureLoad(ring5, sample)
	fmt.Printf("  ring balance over 5 back-ends: max/mean = %.3f\n", balance.Imbalance())
	fmt.Println("unionscale example OK")
}
