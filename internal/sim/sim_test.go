package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30*time.Microsecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Microsecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Microsecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*time.Microsecond {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	hits := 0
	e.Schedule(time.Millisecond, func() {
		hits++
		e.Schedule(time.Millisecond, func() {
			hits++
		})
	})
	end := e.Run()
	if hits != 2 || end != 2*time.Millisecond {
		t.Fatalf("hits=%d end=%v", hits, end)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var e Engine
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	if e.Run() != 0 || !ran {
		t.Fatal("negative delay mishandled")
	}
}

func TestSingleServerResourceSerializes(t *testing.T) {
	var e Engine
	r := NewResource(&e, 1)
	var completions []time.Duration
	for i := 0; i < 3; i++ {
		r.Acquire(10*time.Millisecond, func() {
			completions = append(completions, e.Now())
		})
	}
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v", completions)
		}
	}
	if r.Served != 3 {
		t.Fatalf("served = %d", r.Served)
	}
}

func TestMultiServerResourceParallelizes(t *testing.T) {
	var e Engine
	r := NewResource(&e, 3)
	done := 0
	for i := 0; i < 3; i++ {
		r.Acquire(10*time.Millisecond, func() { done++ })
	}
	end := e.Run()
	if end != 10*time.Millisecond || done != 3 {
		t.Fatalf("end=%v done=%d", end, done)
	}
}

func TestResourceThroughputMatchesTheory(t *testing.T) {
	// Closed loop: 8 clients on a 1-server station with 100µs service
	// must sustain ~10k ops/sec of virtual time.
	var e Engine
	r := NewResource(&e, 1)
	const perClient = 500
	total := 0
	var loop func(left int)
	loop = func(left int) {
		if left == 0 {
			return
		}
		r.Acquire(100*time.Microsecond, func() {
			total++
			loop(left - 1)
		})
	}
	for c := 0; c < 8; c++ {
		loop(perClient)
	}
	end := e.Run()
	if total != 8*perClient {
		t.Fatalf("total = %d", total)
	}
	thr := float64(total) / end.Seconds()
	if thr < 9900 || thr > 10100 {
		t.Fatalf("throughput = %.0f ops/s, want ~10000", thr)
	}
	if u := r.Utilization(end); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f", u)
	}
}

func TestGroupCommitBatchesUnderLoad(t *testing.T) {
	var e Engine
	g := NewGroupCommit(&e, 5*time.Millisecond, 0)
	done := 0
	// 10 requests arrive while the first flush is busy: flush 1 has 1
	// request, flush 2 has the other 9.
	g.Commit(func() { done++ })
	for i := 0; i < 9; i++ {
		e.Schedule(time.Millisecond, func() {
			g.Commit(func() { done++ })
		})
	}
	end := e.Run()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if g.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", g.Flushes)
	}
	if end != 10*time.Millisecond {
		t.Fatalf("end = %v", end)
	}
	if ab := g.AvgBatch(); ab != 5 {
		t.Fatalf("avg batch = %f", ab)
	}
}

func TestGroupCommitMaxBatch(t *testing.T) {
	var e Engine
	g := NewGroupCommit(&e, time.Millisecond, 2)
	done := 0
	for i := 0; i < 5; i++ {
		g.Commit(func() { done++ })
	}
	e.Run()
	if done != 5 {
		t.Fatalf("done = %d", done)
	}
	// 5 requests, batch cap 2: ceil(5/2)=3 flushes... the first flush
	// starts immediately with only what is queued (all 5 arrived at
	// t=0, so batches are 2,2,1).
	if g.Flushes != 3 {
		t.Fatalf("flushes = %d, want 3", g.Flushes)
	}
}

func TestGroupCommitLatencyBoundAtLowLoad(t *testing.T) {
	// One client issuing serially: every request pays the full flush
	// latency — the "Lustre is fine at small scale, ZooKeeper is not"
	// effect in miniature.
	var e Engine
	g := NewGroupCommit(&e, 3*time.Millisecond, 0)
	count := 0
	var loop func(left int)
	loop = func(left int) {
		if left == 0 {
			return
		}
		g.Commit(func() {
			count++
			loop(left - 1)
		})
	}
	loop(10)
	end := e.Run()
	if count != 10 || end != 30*time.Millisecond {
		t.Fatalf("count=%d end=%v", count, end)
	}
}
