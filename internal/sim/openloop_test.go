package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// TestOpenLoopMD1Calibration checks the replay engine against closed-
// form queueing theory: an M/D/1 queue at utilization rho has mean
// wait rho*S/(2*(1-rho)), so mean sojourn at rho=0.5 is exactly 1.5*S.
// If this drifts, every model-layer prediction built on RunOpenLoop is
// suspect.
func TestOpenLoopMD1Calibration(t *testing.T) {
	const (
		rate    = 1000.0 // arrivals/s
		service = 500 * time.Microsecond
		rho     = 0.5
		horizon = 120 * time.Second
	)
	if got := rate * service.Seconds(); math.Abs(got-rho) > 1e-9 {
		t.Fatalf("test misconfigured: rho = %v, want %v", got, rho)
	}
	arrivals := loadgen.Schedule(loadgen.Poisson, rate, horizon, 42)
	if len(arrivals) < 100000 {
		t.Fatalf("only %d arrivals over %v", len(arrivals), horizon)
	}

	eng := &Engine{}
	station := NewResource(eng, 1)
	stats := RunOpenLoop(eng, station, arrivals, func(int) time.Duration { return service })

	if stats.Completed != stats.Arrivals {
		t.Fatalf("completed %d of %d", stats.Completed, stats.Arrivals)
	}
	want := service + time.Duration(rho*float64(service)/(2*(1-rho))) // 1.5*S
	got := stats.Mean()
	if ratio := float64(got) / float64(want); ratio < 0.95 || ratio > 1.05 {
		t.Errorf("M/D/1 mean sojourn %v, theory %v (ratio %.3f)", got, want, ratio)
	}

	util := station.Utilization(stats.End)
	if util < rho*0.95 || util > rho*1.05 {
		t.Errorf("utilization %.3f, want ~%.2f", util, rho)
	}
}

// A deterministic drumbeat slower than the server never queues: every
// sojourn is exactly the service time.
func TestOpenLoopUniformNoQueueing(t *testing.T) {
	const (
		rate    = 100.0
		service = 2 * time.Millisecond // gap is 10ms, so no overlap
	)
	arrivals := loadgen.Schedule(loadgen.Uniform, rate, 5*time.Second, 7)
	eng := &Engine{}
	stats := RunOpenLoop(eng, NewResource(eng, 1), arrivals, func(int) time.Duration { return service })
	for i, d := range stats.Sojourns {
		if d != service {
			t.Fatalf("request %d sojourn %v, want exactly %v", i, d, service)
		}
	}
}

// Above saturation the open-loop queue grows without bound, so late
// arrivals wait far longer than early ones — the signature a closed
// loop can never show.
func TestOpenLoopOverloadQueueGrows(t *testing.T) {
	const (
		rate    = 1000.0
		service = 1200 * time.Microsecond // rho = 1.2
	)
	arrivals := loadgen.Schedule(loadgen.Uniform, rate, 10*time.Second, 1)
	eng := &Engine{}
	stats := RunOpenLoop(eng, NewResource(eng, 1), arrivals, func(int) time.Duration { return service })

	n := len(stats.Sojourns)
	first, last := stats.Sojourns[0], stats.Sojourns[n-1]
	if last < 100*first || last < 500*time.Millisecond {
		t.Errorf("overload did not build a queue: first sojourn %v, final %v", first, last)
	}
	// The final backlog is predictable for deterministic arrivals:
	// excess work accumulates at (rho-1) seconds per second.
	wantLast := time.Duration(0.2 * 10 * float64(time.Second))
	if ratio := float64(last) / float64(wantLast); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("final sojourn %v, want ~%v (ratio %.3f)", last, wantLast, ratio)
	}
}
