package sim

import (
	"sort"
	"time"
)

// OpenLoopStats summarizes one open-loop replay: sojourn time is
// measured from the *scheduled* arrival instant, exactly like the real
// load generator, so queue buildup during overload shows up in the
// tail instead of silently throttling the source.
type OpenLoopStats struct {
	Arrivals  int
	Completed int
	// Sojourns holds per-request time-in-system (wait + service) in
	// arrival order.
	Sojourns []time.Duration
	// End is the virtual time the last request completed.
	End time.Duration
}

// Mean returns the average sojourn time.
func (s *OpenLoopStats) Mean() time.Duration {
	if len(s.Sojourns) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.Sojourns {
		sum += d
	}
	return sum / time.Duration(len(s.Sojourns))
}

// Quantile returns the q-th sojourn quantile (0 < q <= 1) by sorting a
// copy; fine at simulation scale.
func (s *OpenLoopStats) Quantile(q float64) time.Duration {
	if len(s.Sojourns) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Sojourns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunOpenLoop replays a fixed arrival schedule (offsets from time
// zero, e.g. loadgen.Schedule's output) against an FCFS station and
// runs the engine to completion. service(i) gives request i's service
// demand, letting callers model deterministic (M/D/1), exponential
// (M/M/1) or empirical service processes against the same schedule
// the live harness offers a real cluster.
//
// This is the bridge between the two measurement paths in this repo:
// the model layer predicts what the load harness should observe, and
// divergence between the two is a finding, not noise.
func RunOpenLoop(eng *Engine, station *Resource, arrivals []time.Duration, service func(i int) time.Duration) *OpenLoopStats {
	stats := &OpenLoopStats{
		Arrivals: len(arrivals),
		Sojourns: make([]time.Duration, len(arrivals)),
	}
	for i, at := range arrivals {
		i, at := i, at
		eng.Schedule(at, func() {
			station.Acquire(service(i), func() {
				stats.Sojourns[i] = eng.Now() - at
				stats.Completed++
				if eng.Now() > stats.End {
					stats.End = eng.Now()
				}
			})
		})
	}
	eng.Run()
	return stats
}
