// Package sim is a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, FCFS multi-server resources and a
// group-commit (batching) resource.
//
// The performance experiments of the paper (§V) are closed-loop
// throughput measurements of 8–256 client processes against server
// stations — MDS CPUs, ZooKeeper leaders, journaling disks — on a 2011
// cluster we do not have. internal/model expresses those stations with
// calibrated service times on top of this engine, which reproduces the
// published throughput *shapes* in milliseconds of real time instead
// of hours of testbed time.
//
// Everything runs on the caller's goroutine: Schedule/callback style,
// no channels, fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"time"
)

// Engine is the event loop. The zero value is ready to use.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

type event struct {
	at  time.Duration
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay of virtual time (>= 0).
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until the queue is empty and returns the final
// virtual time.
func (e *Engine) Run() time.Duration {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.events) }

// Resource is an FCFS station with k identical servers. Acquire
// schedules the caller's completion; requests are served in arrival
// order. It models a CPU pool, a metadata server, a NIC — any place
// where requests queue for service.
type Resource struct {
	eng    *Engine
	freeAt []time.Duration // per-server next-free time

	// Busy accumulates total busy time across servers, for utilization
	// reporting.
	Busy time.Duration
	// Served counts completed acquisitions.
	Served int64
}

// NewResource returns a station with k servers (k >= 1).
func NewResource(eng *Engine, k int) *Resource {
	if k < 1 {
		k = 1
	}
	return &Resource{eng: eng, freeAt: make([]time.Duration, k)}
}

// Acquire queues a request needing the given service time and calls
// done when it completes.
func (r *Resource) Acquire(service time.Duration, done func()) {
	// Pick the earliest-free server.
	best := 0
	for i := 1; i < len(r.freeAt); i++ {
		if r.freeAt[i] < r.freeAt[best] {
			best = i
		}
	}
	start := r.freeAt[best]
	if start < r.eng.now {
		start = r.eng.now
	}
	complete := start + service
	r.freeAt[best] = complete
	r.Busy += service
	r.Served++
	r.eng.Schedule(complete-r.eng.now, done)
}

// Utilization returns busy time divided by (elapsed * servers).
func (r *Resource) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Busy) / (float64(elapsed) * float64(len(r.freeAt)))
}

// GroupCommit models a journaling device with group commit: requests
// that arrive while a flush is in progress are absorbed into the next
// flush, so per-request cost shrinks as load grows — the behaviour of
// ZooKeeper's txn log and a journaling MDS under load, and the reason
// their write throughput is latency-bound at low client counts but
// CPU-bound at high ones.
type GroupCommit struct {
	eng      *Engine
	latency  time.Duration // one flush
	maxBatch int
	queue    []func()
	flushing bool

	// Flushes counts completed flushes; Committed counts requests.
	Flushes   int64
	Committed int64
}

// NewGroupCommit returns a device with the given flush latency and
// maximum batch size (<=0 means unbounded).
func NewGroupCommit(eng *Engine, latency time.Duration, maxBatch int) *GroupCommit {
	return &GroupCommit{eng: eng, latency: latency, maxBatch: maxBatch}
}

// Commit enqueues a request; done runs when its flush completes.
func (g *GroupCommit) Commit(done func()) {
	g.queue = append(g.queue, done)
	if !g.flushing {
		g.startFlush()
	}
}

func (g *GroupCommit) startFlush() {
	n := len(g.queue)
	if n == 0 {
		g.flushing = false
		return
	}
	if g.maxBatch > 0 && n > g.maxBatch {
		n = g.maxBatch
	}
	batch := g.queue[:n]
	g.queue = append([]func(){}, g.queue[n:]...)
	g.flushing = true
	g.Flushes++
	g.Committed += int64(n)
	g.eng.Schedule(g.latency, func() {
		for _, done := range batch {
			done()
		}
		g.startFlush()
	})
}

// AvgBatch returns the mean batch size so far.
func (g *GroupCommit) AvgBatch() float64 {
	if g.Flushes == 0 {
		return 0
	}
	return float64(g.Committed) / float64(g.Flushes)
}
