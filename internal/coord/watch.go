package coord

import (
	"sync"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// Watches are one-shot notifications, modelled on ZooKeeper's: a read
// operation (get/exists/children) may leave a watch on the path; the
// next committed mutation touching it produces an event. Watches are
// server-local state — they live on the server the session is
// connected to, not in the replicated state machine — exactly like
// ZooKeeper, which is why a failover loses them and clients must
// re-register.
//
// Delivery is push-shaped (Session.WaitEvents): the transport is pure
// request/response, so the client keeps one long-poll request PARKED
// on its server and the server releases it the moment a watch fires —
// event latency is one transit, not a poll interval, and an idle
// session costs nothing. The pull API (Session.PollEvents) remains for
// tools and tests. The paper's DUFS uses only the synchronous API;
// watches are provided as the natural extension for client-side
// metadata caching (the FUSE entry-cache invalidation the paper leaves
// to future work), and Fletch's measurements argue delivery latency is
// the limiting factor for such caches — hence the parked delivery.

// EventType classifies a fired watch: what happened to the watched
// znode (or, for child watches, to its child list).
type EventType uint8

// Watch event types.
const (
	EventCreated EventType = iota + 1
	EventDeleted
	EventDataChanged
	EventChildrenChanged
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventCreated:
		return "created"
	case EventDeleted:
		return "deleted"
	case EventDataChanged:
		return "data-changed"
	case EventChildrenChanged:
		return "children-changed"
	default:
		return "unknown"
	}
}

// Event is one fired watch.
type Event struct {
	Type EventType
	Path string
}

// watchKind distinguishes what a watch observes.
type watchKind uint8

const (
	watchData watchKind = iota + 1 // get/exists watches: node create/delete/set
	watchChildren
)

// watchTable is one server's watch state.
type watchTable struct {
	mu sync.Mutex
	// data[path] and children[path] hold the waiting session IDs.
	data     map[string]map[uint64]bool
	children map[string]map[uint64]bool
	// queues holds undelivered events per session.
	queues map[uint64][]Event
	// waiters holds the parked long-poll requests per session: each
	// channel is closed (exactly once, under mu) when an event lands
	// for that session, releasing the parked handler.
	waiters map[uint64]map[chan struct{}]bool
	// closed releases every parked waiter when the server stops.
	closed chan struct{}
	down   bool
}

func newWatchTable() *watchTable {
	return &watchTable{
		data:     make(map[string]map[uint64]bool),
		children: make(map[string]map[uint64]bool),
		queues:   make(map[uint64][]Event),
		waiters:  make(map[uint64]map[chan struct{}]bool),
		closed:   make(chan struct{}),
	}
}

// close releases every parked waiter; used on server shutdown so
// long-poll handlers never outlive the server.
func (w *watchTable) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.down {
		w.down = true
		close(w.closed)
	}
}

// wake releases a session's parked waiters (with mu held).
func (w *watchTable) wake(session uint64) {
	if set := w.waiters[session]; set != nil {
		for ch := range set {
			close(ch)
		}
		delete(w.waiters, session)
	}
}

// await parks until the session has pending events, the timeout
// expires, or the server shuts down, and returns whatever is queued —
// possibly nothing, which the client reads as "park again". This is
// what turns watch delivery from pull to push: the event's commit
// releases the request in the same instant it queues the event.
func (w *watchTable) await(session uint64, maxWait time.Duration) []Event {
	w.mu.Lock()
	if w.down || maxWait <= 0 || len(w.queues[session]) > 0 {
		evs := w.queues[session]
		delete(w.queues, session)
		w.mu.Unlock()
		return evs
	}
	ch := make(chan struct{})
	set := w.waiters[session]
	if set == nil {
		set = make(map[chan struct{}]bool)
		w.waiters[session] = set
	}
	set[ch] = true
	w.mu.Unlock()

	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	case <-w.closed:
	}

	w.mu.Lock()
	if set, ok := w.waiters[session]; ok {
		delete(set, ch)
		if len(set) == 0 {
			delete(w.waiters, session)
		}
	}
	evs := w.queues[session]
	delete(w.queues, session)
	w.mu.Unlock()
	return evs
}

func (w *watchTable) register(kind watchKind, path string, session uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.data
	if kind == watchChildren {
		m = w.children
	}
	set := m[path]
	if set == nil {
		set = make(map[uint64]bool)
		m[path] = set
	}
	set[session] = true
}

// unregister removes a pending watch (used when the guarded read
// fails, so a failed get leaves no watch).
func (w *watchTable) unregister(kind watchKind, path string, session uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.data
	if kind == watchChildren {
		m = w.children
	}
	if set := m[path]; set != nil {
		delete(set, session)
		if len(set) == 0 {
			delete(m, path)
		}
	}
}

// fire dispatches one event to every watcher of the path and removes
// the watches (one-shot semantics).
func (w *watchTable) fire(kind watchKind, path string, ev Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.data
	if kind == watchChildren {
		m = w.children
	}
	set := m[path]
	if len(set) == 0 {
		return
	}
	delete(m, path)
	for session := range set {
		w.queues[session] = append(w.queues[session], ev)
		w.wake(session)
	}
}

// drain returns and clears a session's pending events.
func (w *watchTable) drain(session uint64) []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	evs := w.queues[session]
	delete(w.queues, session)
	return evs
}

// dropSession discards a closed session's watches and queue.
func (w *watchTable) dropSession(session uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for path, set := range w.data {
		delete(set, session)
		if len(set) == 0 {
			delete(w.data, path)
		}
	}
	for path, set := range w.children {
		delete(set, session)
		if len(set) == 0 {
			delete(w.children, path)
		}
	}
	delete(w.queues, session)
	w.wake(session)
}

// observeApply translates one committed mutation into watch events.
// Called by the server for every transaction its replica applies.
func (w *watchTable) observeApply(op uint8, path string, ok bool) {
	if !ok || path == "" {
		return
	}
	parent, _ := znode.SplitPath(path)
	switch op {
	case opCreate:
		w.fire(watchData, path, Event{Type: EventCreated, Path: path})
		w.fire(watchChildren, parent, Event{Type: EventChildrenChanged, Path: parent})
	case opDelete:
		w.fire(watchData, path, Event{Type: EventDeleted, Path: path})
		w.fire(watchChildren, path, Event{Type: EventDeleted, Path: path})
		w.fire(watchChildren, parent, Event{Type: EventChildrenChanged, Path: parent})
	case opSet:
		w.fire(watchData, path, Event{Type: EventDataChanged, Path: path})
	}
}

func encodeEvents(w *wire.Writer, evs []Event) {
	w.Uint32(uint32(len(evs)))
	for _, e := range evs {
		w.Uint8(uint8(e.Type))
		w.String(e.Path)
	}
}

func decodeEvents(r *wire.Reader) []Event {
	n := r.Uint32()
	if r.Err() != nil || int(n) > r.Remaining() {
		return nil
	}
	out := make([]Event, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		out = append(out, Event{Type: EventType(r.Uint8()), Path: r.String()})
	}
	return out
}
