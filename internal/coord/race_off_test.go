//go:build !race

package coord

// raceEnabled reports whether the race detector is active; allocation
// budgets are meaningless under its instrumentation.
const raceEnabled = false
