package coord

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/znode"
)

// TestWatchSemanticsUnderConcurrentReads pins that the striped read
// path did not change watch-fire semantics: while reader goroutines
// hammer the same server's Get/Children/Exists (read locks on the very
// stripes the watched paths hash to), every registered one-shot watch
// still fires exactly once for the write that follows it.
func TestWatchSemanticsUnderConcurrentReads(t *testing.T) {
	_, a, b := watchEnv(t)
	const paths = 6
	for i := 0; i < paths; i++ {
		if _, err := a.Create(fmt.Sprintf("/cw%d", i), []byte("v0"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < paths; i++ {
					p := fmt.Sprintf("/cw%d", i)
					b.Get(p)
					b.Exists(p)
				}
				b.Children("/")
			}
		}()
	}

	// Register a data watch per path, then write each path once. Every
	// watch must deliver exactly one EventDataChanged despite the read
	// storm on the same stripes.
	for i := 0; i < paths; i++ {
		if _, _, err := a.GetW(fmt.Sprintf("/cw%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < paths; i++ {
		if _, err := b.Set(fmt.Sprintf("/cw%d", i), []byte("v1"), -1); err != nil {
			t.Fatal(err)
		}
	}
	evs := waitEvents(t, a, paths)
	close(stop)
	wg.Wait()

	seen := map[string]int{}
	for _, ev := range evs {
		if ev.Type != EventDataChanged {
			t.Fatalf("event = %+v, want EventDataChanged", ev)
		}
		seen[ev.Path]++
	}
	for i := 0; i < paths; i++ {
		p := fmt.Sprintf("/cw%d", i)
		if seen[p] != 1 {
			t.Fatalf("watch on %s fired %d times, want 1 (all: %v)", p, seen[p], seen)
		}
	}

	// One-shot: a second write after the fire must not deliver again.
	if _, err := b.Set("/cw0", []byte("v2"), -1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if extra, err := a.PollEvents(); err != nil || len(extra) != 0 {
		t.Fatalf("one-shot watch re-fired: %v (%v)", extra, err)
	}
}
