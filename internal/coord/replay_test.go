package coord

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// TestApplyBatchReplayIdempotent pins the property crash-recovery
// leans on: replaying an already-applied frame through ApplyBatch —
// which happens when a recovered log tail re-applies over state that
// (partially) saw it, or when a client retry of a committed write
// lands after a failover — must not double-apply. The per-session
// dedup window replicates inside snapshots, so the second application
// returns the ORIGINAL results and leaves the tree untouched.
func TestApplyBatchReplayIdempotent(t *testing.T) {
	sm := newStateMachine()
	now := time.Now().UnixNano()

	// A group-commit frame: a session mint, two creates and a set from
	// that session (the zxids inside a frame are firstZxid+i).
	mint := sm.Apply(encodeNewSessionTxn(), 0x100000001)
	session := uint64(1)
	if got := decodeSessionID(t, mint); got != session {
		t.Fatalf("minted session %d", got)
	}
	frame := [][]byte{
		encodeCreateTxn("/replay", []byte("v0"), znode.ModePersistent, session, 1, now),
		encodeCreateTxn("/replay/a", []byte("a"), znode.ModePersistent, session, 2, now),
		encodeSetTxn("/replay", []byte("v1"), -1, session, 3, now),
	}
	first := sm.ApplyBatch(frame, 0x100000002)

	snapshotTree := func() (string, int32) {
		data, stat, err := sm.treeRef().Get("/replay")
		if err != nil {
			t.Fatal(err)
		}
		return string(data), stat.Version
	}
	wantData, wantVersion := snapshotTree()
	if wantData != "v1" {
		t.Fatalf("data after first apply = %q", wantData)
	}

	// Replay the exact same frame. Every op must come back with its
	// original result (dedup hit), not "node exists" / a double set.
	second := sm.ApplyBatch(frame, 0x100000002)
	for i := range frame {
		if !bytes.Equal(first[i], second[i]) {
			t.Fatalf("replayed op %d result differs:\n first: %x\nsecond: %x", i, first[i], second[i])
		}
	}
	gotData, gotVersion := snapshotTree()
	if gotData != wantData || gotVersion != wantVersion {
		t.Fatalf("replay mutated the tree: (%q, v%d) -> (%q, v%d)", wantData, wantVersion, gotData, gotVersion)
	}
	if kids, err := sm.treeRef().Children("/replay"); err != nil || len(kids) != 1 {
		t.Fatalf("children after replay: %v (%v)", kids, err)
	}
}

// decodeSessionID unwraps an okResult carrying the minted session ID.
func decodeSessionID(t *testing.T, result []byte) uint64 {
	t.Helper()
	r := wire.NewReader(result)
	if code := r.Uint8(); code != codeOK {
		t.Fatalf("session mint failed with code %d", code)
	}
	_ = r.String() // detail
	id := r.Uint64()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return id
}
