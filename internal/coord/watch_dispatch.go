package coord

import "sync"

// watchDispatcher takes watch firing off the apply critical path: the
// state machine's notify callback only appends to a FIFO here, and a
// dedicated goroutine delivers the events to the watch table. Arrival
// order is preserved end to end — the apply side flushes notifications
// in commit order, the queue is drained in order by one consumer — so
// sessions still observe their events in commit order; the apply loop
// just no longer waits for watch-table locks or parked-poll wakeups.
type watchDispatcher struct {
	watches *watchTable

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []notifyRec
	scratch   []notifyRec // drained batch, reused
	enqueued  uint64
	processed uint64
	closed    bool
	wg        sync.WaitGroup
}

func newWatchDispatcher(watches *watchTable) *watchDispatcher {
	d := &watchDispatcher{watches: watches}
	d.cond = sync.NewCond(&d.mu)
	d.wg.Add(1)
	go d.loop()
	return d
}

// dispatch is the state machine's notify callback.
func (d *watchDispatcher) dispatch(op uint8, path string, session uint64, ok bool) {
	d.mu.Lock()
	d.queue = append(d.queue, notifyRec{op: op, path: path, session: session, ok: ok})
	d.enqueued++
	d.cond.Signal()
	d.mu.Unlock()
}

func (d *watchDispatcher) loop() {
	defer d.wg.Done()
	for {
		d.mu.Lock()
		for !d.closed && len(d.queue) == 0 {
			d.cond.Wait()
		}
		if d.closed && len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		batch := append(d.scratch[:0], d.queue...)
		d.queue = d.queue[:0]
		d.mu.Unlock()
		for _, n := range batch {
			if n.op == opCloseSession {
				d.watches.dropSession(n.session)
			} else {
				d.watches.observeApply(n.op, n.path, n.ok)
			}
		}
		d.mu.Lock()
		d.scratch = batch
		d.processed += uint64(len(batch))
		d.cond.Broadcast() // wake barrier waiters
		d.mu.Unlock()
	}
}

// barrier returns once every notification enqueued before the call has
// been delivered to the watch table. Event polls run it first, so a
// client that wrote (the write's notifications enqueue before its
// proposal completes) and then polls still sees the events its write
// fired — the async queue never weakens read-your-own-events.
func (d *watchDispatcher) barrier() {
	d.mu.Lock()
	target := d.enqueued
	for !d.closed && d.processed < target {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// close drains the queue and joins the delivery goroutine.
func (d *watchDispatcher) close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	d.wg.Wait()
}
