package coord

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/coord/znode"
)

// watchEnv gives two sessions pinned to the SAME server, so watch
// registration and the observing replica line up deterministically.
func watchEnv(t *testing.T) (*Ensemble, *Session, *Session) {
	t.Helper()
	e := startTestEnsemble(t, 3)
	a := connect(t, e, 0)
	b := connect(t, e, 0)
	return e, a, b
}

func waitEvents(t *testing.T, s *Session, want int) []Event {
	t.Helper()
	var all []Event
	deadline := time.Now().Add(5 * time.Second)
	for len(all) < want {
		evs, err := s.WaitEvent(time.Second)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, evs...)
		if time.Now().After(deadline) {
			t.Fatalf("got %d events, want %d: %v", len(all), want, all)
		}
	}
	return all
}

func TestDataWatchFiresOnSet(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, err := a.Create("/w", []byte("v0"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.GetW("/w"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Set("/w", []byte("v1"), -1); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, a, 1)
	if evs[0].Type != EventDataChanged || evs[0].Path != "/w" {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestDataWatchFiresOnDelete(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, err := a.Create("/d", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.GetW("/d"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("/d", -1); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, a, 1)
	if evs[0].Type != EventDeleted {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestExistsWatchFiresOnCreate(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, ok, err := a.ExistsW("/future"); err != nil || ok {
		t.Fatalf("existsw = %v, %v", ok, err)
	}
	if _, err := b.Create("/future", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, a, 1)
	if evs[0].Type != EventCreated || evs[0].Path != "/future" {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestChildWatchFiresOnAddAndRemove(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, err := a.Create("/dir", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ChildrenW("/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Create("/dir/kid", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, a, 1)
	if evs[0].Type != EventChildrenChanged || evs[0].Path != "/dir" {
		t.Fatalf("event = %+v", evs[0])
	}
	// One-shot: the next change needs re-registration.
	if _, err := a.ChildrenW("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("/dir/kid", -1); err != nil {
		t.Fatal(err)
	}
	evs = waitEvents(t, a, 1)
	if evs[0].Type != EventChildrenChanged {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestWatchIsOneShot(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, err := a.Create("/once", []byte("0"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.GetW("/once"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Set("/once", []byte("1"), -1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Set("/once", []byte("2"), -1); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, a, 1)
	if len(evs) != 1 {
		t.Fatalf("events = %v, want exactly one", evs)
	}
	// Nothing further queued.
	more, err := a.PollEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 0 {
		t.Fatalf("unexpected extra events: %v", more)
	}
}

func TestFailedGetWLeavesNoWatch(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, _, err := a.GetW("/absent"); err == nil {
		t.Fatal("GetW of absent node succeeded")
	}
	if _, err := b.Create("/absent", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	evs, err := a.PollEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("failed GetW left a watch: %v", evs)
	}
}

func TestSessionCloseExpiresEphemeralAndFiresWatch(t *testing.T) {
	e := startTestEnsemble(t, 3)
	watcher := connect(t, e, 0)
	owner, err := e.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Create("/lock", nil, znode.ModeEphemeral); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := watcher.ExistsW("/lock"); err != nil || !ok {
		t.Fatalf("existsw = %v, %v", ok, err)
	}
	if err := owner.Close(); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, watcher, 1)
	if evs[0].Type != EventDeleted || evs[0].Path != "/lock" {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestWatchUseCaseLeaderElection(t *testing.T) {
	// The classic coordination recipe the service enables (paper
	// §II-C: "higher level services for synchronization"): ephemeral
	// sequential nodes + watch on the predecessor.
	e := startTestEnsemble(t, 3)
	a := connect(t, e, 0)
	b := connect(t, e, 0)
	if _, err := a.Create("/election", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	pa, err := a.Create("/election/n-", nil, znode.ModeEphemeralSequential)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Create("/election/n-", nil, znode.ModeEphemeralSequential)
	if err != nil {
		t.Fatal(err)
	}
	if pa >= pb {
		t.Fatalf("sequence order wrong: %q vs %q", pa, pb)
	}
	// b watches a's node; when a's session dies, b becomes leader.
	if _, ok, err := b.ExistsW(pa); err != nil || !ok {
		t.Fatalf("existsw(%s) = %v, %v", pa, ok, err)
	}
	aSess, err := e.Connect(0)
	_ = aSess
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, b, 1)
	if evs[0].Type != EventDeleted || evs[0].Path != pa {
		t.Fatalf("event = %+v", evs[0])
	}
	kids, err := b.Children("/election")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 {
		t.Fatalf("children after leader death = %v", kids)
	}
}

func TestWatchRegistrationIsServerLocal(t *testing.T) {
	// A watch lives on the session's server; mutations via another
	// server still fire it (the commit is applied everywhere).
	e := startTestEnsemble(t, 3)
	a := connect(t, e, 1) // server 1
	b := connect(t, e, 2) // server 2
	if _, err := a.Create("/x", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.GetW("/x"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Set("/x", []byte("via-other-server"), -1); err != nil {
		t.Fatal(err)
	}
	evs := waitEvents(t, a, 1)
	if evs[0].Type != EventDataChanged {
		t.Fatalf("event = %+v", evs[0])
	}
}

func TestManyWatchesManyEvents(t *testing.T) {
	_, a, b := watchEnv(t)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := a.Create(fmt.Sprintf("/m%d", i), nil, znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		if _, _, err := a.GetW(fmt.Sprintf("/m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := b.Set(fmt.Sprintf("/m%d", i), []byte("x"), -1); err != nil {
			t.Fatal(err)
		}
	}
	evs := waitEvents(t, a, n)
	if len(evs) != n {
		t.Fatalf("events = %d, want %d", len(evs), n)
	}
}
