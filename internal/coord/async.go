package coord

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// The asynchronous submission layer (DESIGN.md §10).
//
// Begin decouples operation SUBMISSION from COMPLETION: it returns a
// Future immediately and keeps the request in flight alongside every
// other outstanding submission on the same session, multiplexed over
// the one transport connection (the TCP transport tags each request
// frame with a call ID; responses complete the matching future). One
// goroutine can therefore keep dozens of writes in the leader's
// group-commit pipeline — the client-side half of the server-side
// batching PR 3 built, and the design λFS argues is what lets a
// metadata service exploit server parallelism.
//
// Ordering: futures are INDEPENDENT. Two Begin calls race exactly like
// two synchronous calls from two goroutines — the service serializes
// them in an arbitrary order. Callers that need ordering chain on a
// future's completion or put the dependent ops in one Multi. The
// synchronous API keeps its stronger property trivially: a goroutine
// issuing sync calls observes each result before the next submission.

// asyncWindow bounds a session's concurrently in-flight asynchronous
// submissions. It must stay well below the server's per-session
// retry-dedup window (dedupWindowSize) so a post-failover replay of
// any in-flight write is always recognised as a duplicate.
const asyncWindow = 64

// Future is the pending result of an asynchronous submission. All
// accessors block until the operation completes; Done exposes the
// completion signal for select loops.
type Future struct {
	done    chan struct{}
	op      OpResult
	multi   []OpResult
	entries []ChildEntry
	err     error
}

// Done is closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Err blocks until completion and returns the operation's error.
func (f *Future) Err() error {
	<-f.done
	return f.err
}

// Result blocks until completion and returns the single-op outcome
// (create path, set stat) — for futures minted by Begin.
func (f *Future) Result() (OpResult, error) {
	<-f.done
	return f.op, f.err
}

// Results blocks until completion and returns the per-op outcomes of
// a BeginMulti future, with Multi's abort semantics.
func (f *Future) Results() ([]OpResult, error) {
	<-f.done
	return f.multi, f.err
}

// Entries blocks until completion and returns a BeginChildrenData
// future's listing.
func (f *Future) Entries() ([]ChildEntry, error) {
	<-f.done
	return f.entries, f.err
}

// FutureOp resolves a future from fn, run asynchronously. It is the
// composition hook for Client implementations that wrap other clients
// (the shard router layers its routing semantics over the per-shard
// sessions' native submissions this way).
func FutureOp(fn func() (OpResult, error)) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.op, f.err = fn()
	}()
	return f
}

// FutureMulti is FutureOp for batch results.
func FutureMulti(fn func() ([]OpResult, error)) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.multi, f.err = fn()
	}()
	return f
}

// FutureEntries is FutureOp for listing results.
func FutureEntries(fn func() ([]ChildEntry, error)) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.entries, f.err = fn()
	}()
	return f
}

// resolvedFuture returns an already-failed future (malformed ops).
func resolvedFuture(err error) *Future {
	f := &Future{done: make(chan struct{}), err: err}
	f.op.Err = err
	close(f.done)
	return f
}

// Begin submits one operation asynchronously and returns its future.
// The write sequence number is allocated at submission, so a future's
// retry after failover deduplicates exactly like a synchronous
// retry's. A context cancelled while the operation is in flight
// resolves the future with ctx.Err() immediately; the abandoned
// request drains harmlessly (its tagged response is dropped) and the
// session remains fully usable.
func (s *Session) Begin(ctx context.Context, op Op) *Future {
	w, decode, err := s.encodeAsyncOp(op)
	if err != nil {
		return resolvedFuture(err)
	}
	return FutureOp(func() (OpResult, error) {
		select {
		case s.window <- struct{}{}:
		case <-ctx.Done():
			wire.PutWriter(w) // never sent — safe to recycle here
			return OpResult{Err: ctx.Err()}, ctx.Err()
		}
		defer func() { <-s.window }()
		payload, err := s.requestPooled(ctx, w)
		if err != nil {
			return OpResult{Err: err}, err
		}
		return decode(payload)
	})
}

// encodeAsyncOp translates one Op into its wire transaction — encoded
// in a pooled scratch writer the eventual sender releases — and the
// reply decoder. Checks ride as single-op Multi transactions (the
// protocol has no standalone check); OpSync maps to the sync barrier.
func (s *Session) encodeAsyncOp(op Op) (w *wire.Writer, decode func([]byte) (OpResult, error), err error) {
	w = wire.GetWriter()
	switch op.Kind {
	case OpCreate:
		appendCreateTxn(w, op.Path, op.Data, op.Mode, s.id, s.seq.Add(1), time.Now().UnixNano())
		decode = func(payload []byte) (OpResult, error) {
			created, err := decodeCreateReply(payload)
			return OpResult{Err: err, Created: created}, err
		}
	case OpSet:
		appendSetTxn(w, op.Path, op.Data, op.Version, s.id, s.seq.Add(1), time.Now().UnixNano())
		decode = func(payload []byte) (OpResult, error) {
			stat, err := decodeSetReply(payload)
			return OpResult{Err: err, Stat: stat}, err
		}
	case OpDelete:
		appendDeleteTxn(w, op.Path, op.Version, s.id, s.seq.Add(1))
		decode = func([]byte) (OpResult, error) { return OpResult{}, nil }
	case OpCheck:
		appendMultiTxn(w, []Op{op}, s.id, s.seq.Add(1), time.Now().UnixNano())
		decode = func(payload []byte) (OpResult, error) {
			results, err := decodeMultiReply(payload)
			if len(results) == 1 {
				return results[0], err
			}
			return OpResult{Err: err}, err
		}
	case OpSync:
		appendSyncTxn(w, s.id, s.seq.Add(1))
		decode = func([]byte) (OpResult, error) { return OpResult{}, nil }
	default:
		wire.PutWriter(w)
		return nil, nil, fmt.Errorf("coord: unknown async op kind %d", op.Kind)
	}
	return w, decode, nil
}

// BeginMulti submits a whole atomic batch asynchronously.
func (s *Session) BeginMulti(ctx context.Context, ops []Op) *Future {
	if len(ops) == 0 {
		return resolvedFuture(errors.New("coord: empty multi"))
	}
	w := wire.GetWriter()
	appendMultiTxn(w, ops, s.id, s.seq.Add(1), time.Now().UnixNano())
	return FutureMulti(func() ([]OpResult, error) {
		select {
		case s.window <- struct{}{}:
		case <-ctx.Done():
			wire.PutWriter(w) // never sent — safe to recycle here
			return nil, ctx.Err()
		}
		defer func() { <-s.window }()
		payload, err := s.requestPooled(ctx, w)
		if err != nil {
			return nil, err
		}
		return decodeMultiReply(payload)
	})
}

// BeginChildrenData submits a whole-directory listing asynchronously —
// the read half of the pipelined subtree walks (core's BFS rename).
func (s *Session) BeginChildrenData(ctx context.Context, path string) *Future {
	w := wire.GetWriter()
	w.Uint8(opChildrenData)
	w.String(path)
	return FutureEntries(func() ([]ChildEntry, error) {
		select {
		case s.window <- struct{}{}:
		case <-ctx.Done():
			wire.PutWriter(w) // never sent — safe to recycle here
			return nil, ctx.Err()
		}
		defer func() { <-s.window }()
		payload, err := s.requestPooled(ctx, w)
		if err != nil {
			return nil, err
		}
		return decodeChildrenDataReply(payload)
	})
}

// Pipeline batches asynchronous submissions behind one tiny API: queue
// operations without blocking, then Wait for the whole flight. It is
// how single-goroutine callers (core's subtree walks, the benchmarks)
// keep the coordination pipeline full without managing futures by
// hand. A Pipeline is not safe for concurrent use; make one per
// goroutine.
type Pipeline struct {
	ctx  context.Context
	c    Client
	futs []*Future
}

// NewPipeline starts an empty pipeline over c. Every queued operation
// inherits ctx.
func NewPipeline(ctx context.Context, c Client) *Pipeline {
	return &Pipeline{ctx: ctx, c: c}
}

// Begin queues an arbitrary operation.
func (p *Pipeline) Begin(op Op) *Future {
	f := p.c.Begin(p.ctx, op)
	p.futs = append(p.futs, f)
	return f
}

// Create queues a znode create.
func (p *Pipeline) Create(path string, data []byte, mode znode.CreateMode) *Future {
	return p.Begin(CreateOp(path, data, mode))
}

// Set queues a data write.
func (p *Pipeline) Set(path string, data []byte, version int32) *Future {
	return p.Begin(SetOp(path, data, version))
}

// Delete queues a znode delete.
func (p *Pipeline) Delete(path string, version int32) *Future {
	return p.Begin(DeleteOp(path, version))
}

// Multi queues a whole atomic batch.
func (p *Pipeline) Multi(ops []Op) *Future {
	f := p.c.BeginMulti(p.ctx, ops)
	p.futs = append(p.futs, f)
	return f
}

// ChildrenData queues a whole-directory listing.
func (p *Pipeline) ChildrenData(path string) *Future {
	f := p.c.BeginChildrenData(p.ctx, path)
	p.futs = append(p.futs, f)
	return f
}

// Outstanding reports how many queued futures Wait will join.
func (p *Pipeline) Outstanding() int { return len(p.futs) }

// WaitOne joins only the OLDEST queued future and returns its error —
// the sliding-window primitive: callers that cap their flight at K
// submissions wait one out and submit the next, keeping the wire
// continuously occupied instead of draining to empty every K ops.
func (p *Pipeline) WaitOne() error {
	if len(p.futs) == 0 {
		return nil
	}
	f := p.futs[0]
	p.futs = p.futs[1:]
	return f.Err()
}

// Wait joins every queued future, clears the queue, and returns the
// first error encountered in submission order. All futures are waited
// even after an error, so the flight is fully drained.
func (p *Pipeline) Wait() error {
	var first error
	for _, f := range p.futs {
		if err := f.Err(); err != nil && first == nil {
			first = err
		}
	}
	p.futs = p.futs[:0]
	return first
}
