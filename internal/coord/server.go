package coord

import (
	"fmt"
	"io"
	"time"

	"repro/internal/coord/storage"
	"repro/internal/coord/zab"
	"repro/internal/coord/znode"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/transport"
	"repro/internal/wire"
)

// maxEventWait caps how long one opWaitEvents request may stay parked
// server-side; clients that want to wait longer simply re-park.
const maxEventWait = 60 * time.Second

// ServerConfig describes one coordination server.
type ServerConfig struct {
	// ID is this server's ensemble identity (key of PeerAddrs).
	ID uint64
	// PeerAddrs maps every ensemble member to its peer-traffic address.
	PeerAddrs map[uint64]string
	// ClientAddr is where this server accepts client sessions.
	ClientAddr string
	// Net is the transport for both peer and client traffic.
	Net transport.Network

	// Tunables forwarded to the replication layer (zero = defaults).
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	MaxLogEntries     int
	// Group-commit tunables (zero = defaults): how many transactions
	// the leader's proposer coalesces per frame and how many
	// uncommitted frames it pipelines. 1/1 degrades to the serialized
	// one-txn-per-quorum-round-trip cycle (the ablation baseline).
	MaxBatchTxns      int
	MaxInflightFrames int
	// MaxApplyQueueFrames bounds the commit→apply queue (zero =
	// default); a full queue backpressures the proposer.
	MaxApplyQueueFrames int
	// ApplyWorkers sizes the parallel-apply pool: path-disjoint
	// transactions of one committed batch execute concurrently on it.
	// 0 picks a default from GOMAXPROCS; 1 (or negative) forces
	// strictly serial apply — the ablation baseline.
	ApplyWorkers int

	// Checkpoint, when non-nil, primes the server from a durable
	// snapshot produced by Server.Checkpoint (paper §IV-I: ZooKeeper
	// tolerates the failure of all servers by restarting from disk).
	// Deprecated in favour of DataDir; ignored when the data directory
	// holds any recovered state.
	Checkpoint     []byte
	CheckpointZxid uint64

	// DataDir, when non-empty, attaches the durable storage engine
	// (internal/coord/storage): a segmented write-ahead log plus fuzzy
	// snapshots under this directory make every acknowledged write
	// survive even a whole-ensemble crash — the server recovers from
	// the newest snapshot plus the log tail on start. Empty keeps the
	// original in-memory behaviour.
	DataDir string
	// SyncEvery relaxes the engine's fsync cadence (the durability
	// ablation): 0 or 1 fsyncs before every acknowledgement; N>1
	// performs one real fsync per N sync windows, trading crash
	// durability for throughput. Only meaningful with DataDir.
	SyncEvery int
	// WrapStorage, when non-nil, wraps the durable storage engine
	// before it is handed to the replication layer — the fault-injection
	// seam the chaos scenarios use to slow one voter's disk
	// (internal/cluster). Only consulted with a DataDir; the wrapper
	// must preserve the zab.Storage contract.
	WrapStorage func(zab.Storage) zab.Storage
}

// Server is one member of the coordination ensemble: a replicated
// znode tree plus the client-facing request pipeline.
type Server struct {
	cfg      ServerConfig
	sm       *stateMachine
	node     *zab.Node
	eng      *storage.Engine // nil without a DataDir
	clientLn io.Closer
	reg      *metrics.Registry
	watches  *watchTable
	dispatch *watchDispatcher
}

// NewServer builds and starts a coordination server.
func NewServer(cfg ServerConfig) (*Server, error) {
	sm := newStateMachine()
	watches := newWatchTable()
	// Watch firing is off the apply critical path: apply enqueues, the
	// dispatcher's goroutine delivers (in commit order — see
	// watch_dispatch.go).
	dispatch := newWatchDispatcher(watches)
	sm.notify = dispatch.dispatch
	reg := metrics.NewRegistry()
	workers := cfg.ApplyWorkers
	if workers == 0 {
		workers = defaultApplyWorkers()
	}
	sm.startParallelApply(workers, reg.Gauge("zab.apply.workers_busy"))
	var eng *storage.Engine
	if cfg.DataDir != "" {
		var err error
		eng, err = storage.Open(storage.Options{
			Dir:       cfg.DataDir,
			SyncEvery: cfg.SyncEvery,
			Metrics:   reg,
		})
		if err != nil {
			return nil, fmt.Errorf("coord: storage engine: %w", err)
		}
	}
	zcfg := zab.Config{
		ID:                  cfg.ID,
		Peers:               cfg.PeerAddrs,
		Net:                 cfg.Net,
		HeartbeatInterval:   cfg.HeartbeatInterval,
		ElectionTimeout:     cfg.ElectionTimeout,
		MaxLogEntries:       cfg.MaxLogEntries,
		MaxBatchTxns:        cfg.MaxBatchTxns,
		MaxInflightFrames:   cfg.MaxInflightFrames,
		MaxApplyQueueFrames: cfg.MaxApplyQueueFrames,
		Metrics:             reg,
		InitialSnapshot:     cfg.Checkpoint,
		InitialZxid:         cfg.CheckpointZxid,
	}
	if eng != nil {
		var st zab.Storage = eng
		if cfg.WrapStorage != nil {
			st = cfg.WrapStorage(st)
		}
		zcfg.Storage = st
	}
	node, err := zab.NewNode(zcfg, sm)
	if err != nil {
		if eng != nil {
			eng.Close()
		}
		return nil, err
	}
	s := &Server{cfg: cfg, sm: sm, node: node, eng: eng, reg: reg, watches: watches, dispatch: dispatch}
	if err := node.Start(); err != nil {
		if eng != nil {
			eng.Close()
		}
		return nil, err
	}
	ln, err := cfg.Net.Listen(cfg.ClientAddr, transport.HandlerFunc(s.handleClient))
	if err != nil {
		s.Stop()
		return nil, fmt.Errorf("coord: client listener: %w", err)
	}
	s.clientLn = ln
	return s, nil
}

// Stop shuts the server down, releasing any parked event waits first
// so no long-poll handler outlives the listener, then closing the
// storage engine after the replication node has quiesced.
func (s *Server) Stop() {
	s.watches.close()
	if s.clientLn != nil {
		s.clientLn.Close()
	}
	s.node.Stop()
	s.sm.stopParallelApply()
	s.dispatch.close()
	if s.eng != nil {
		s.eng.Close()
	}
}

// ID returns the server's ensemble identity.
func (s *Server) ID() uint64 { return s.cfg.ID }

// IsLeader reports whether this server currently leads the ensemble.
func (s *Server) IsLeader() bool { return s.node.IsLeader() }

// LeaderID returns the current leader's ID, or 0 if unknown.
func (s *Server) LeaderID() uint64 { return s.node.LeaderID() }

// Tree exposes the server's local replica for read-side inspection
// (memory accounting, tests). Mutations must go through sessions.
func (s *Server) Tree() *znode.Tree { return s.sm.treeRef() }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// gaugeU64 reads a gauge for wire encoding, clamping transient
// negatives (a worker decrementing busy mid-read) to zero.
func gaugeU64(reg *metrics.Registry, name string) uint64 {
	v := reg.Gauge(name).Value()
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// DebugString reports the underlying replication state (diagnostics).
func (s *Server) DebugString() string { return s.node.DebugString() }

// CommitZxid reports the server's replicated commit horizon — the
// highest transaction known quorum-durable. Operators compare it
// across members to spot laggards.
func (s *Server) CommitZxid() uint64 { return s.node.CommitZxid() }

// LastApplied reports the zxid of the last transaction this replica's
// state machine has applied; reads served here reflect exactly the
// history up to it.
func (s *Server) LastApplied() uint64 { return s.node.LastApplied() }

// Checkpoint serializes the applied state for durable storage.
func (s *Server) Checkpoint() (snap []byte, zxid uint64) {
	return s.node.Checkpoint()
}

// handleClient implements the client protocol. Reads are served from
// the local replica (the source of Fig 7d's read scaling); writes are
// proposed through the atomic broadcast.
func (s *Server) handleClient(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := r.Uint8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch op {
	case opGet, opExists, opChildren, opChildrenData:
		if bounce := s.readBounce(op, *r); bounce != nil {
			return errResult(bounce), nil
		}
		s.reg.Counter("reads").Inc()
		return serveTreeRead(op, r, s.sm.treeRef())
	case opLeaseRead:
		// A lease read wraps one plain read op; it is served from the
		// local replica ONLY while this node's leader lease — funded by
		// quorum heartbeat acks, bounded by the clock-skew margin — is
		// live. That makes the answer linearizable without a quorum
		// round trip; a node that cannot vouch refuses definitively so
		// the client can re-locate the leader or fall back to a sync
		// barrier.
		inner := r.Uint8()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if !isTreeReadOp(inner) {
			return nil, fmt.Errorf("coord: lease read cannot wrap op %d", inner)
		}
		if !s.node.HoldsReadLease() {
			return errResult(ErrNoLease), nil
		}
		if bounce := s.readBounce(inner, *r); bounce != nil {
			return errResult(bounce), nil
		}
		s.reg.Counter("reads").Inc()
		s.reg.Counter("lease_reads").Inc()
		return serveTreeRead(inner, r, s.sm.treeRef())
	case opStatus:
		return okResult(func(w *wire.Writer) {
			w.Uint64(s.cfg.ID)
			w.Uint64(s.node.LeaderID())
			w.Uint64(s.node.Epoch())
			w.Bool(s.node.IsLeader())
			w.Uint64(uint64(s.sm.treeRef().Count()))
			// Storage durability horizon (zeros without a data dir), so
			// operators can see how far behind the commit horizon the
			// durable one trails and how well fsyncs batch.
			var durable, segs, batch uint64
			if s.eng != nil {
				durable = s.eng.LastDurableZxid()
				segs = uint64(s.eng.Segments())
				if mean, n := s.eng.FsyncBatchTxns(); n > 0 {
					batch = uint64(mean + 0.5)
				}
			}
			w.Uint64(durable)
			w.Uint64(segs)
			w.Uint64(batch)
			// Observer-tier fields (appended so old clients that stop
			// reading here stay compatible). A voting server reports the
			// per-observer replication lag its leader-side feed tracks;
			// an observer replica reports its own tip instead (see
			// ObserverState.ServeRead).
			w.Bool(false) // this member votes
			w.Uint64(s.node.LastApplied())
			w.Uint64(0) // voters don't trail themselves
			lags := s.node.ObserverLags()
			w.Uint32(uint32(len(lags)))
			for _, l := range lags {
				w.Uint64(l.ID)
				w.Uint64(l.AppliedZxid)
				w.Uint64(l.LagTxns)
				w.Uint64(l.LagMS)
			}
			// Migration markers (appended last for the same forward
			// compatibility): the fenced/moved ranges this shard carries.
			ranges := s.sm.rangeStates()
			w.Uint32(uint32(len(ranges)))
			for _, rs := range ranges {
				w.Uint64(rs.rng.Lo)
				w.Uint64(rs.rng.Hi)
				w.Uint32(uint32(rs.dest))
				w.Uint64(rs.epoch)
				w.Bool(rs.moved)
			}
			// Apply-pipeline health (appended last, same forward
			// compatibility): commit-to-apply lag in txns, frames queued
			// between the commit and apply sides, and busy pool workers.
			w.Uint64(gaugeU64(s.reg, "zab.apply.lag"))
			w.Uint64(gaugeU64(s.reg, "zab.apply.queue_depth"))
			w.Uint64(gaugeU64(s.reg, "zab.apply.workers_busy"))
		}), nil
	case opGetWatch:
		session := r.Uint64()
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if bounce := s.sm.bounceRead(path, false); bounce != nil {
			return errResult(bounce), nil
		}
		s.reg.Counter("reads").Inc()
		// Flush queued notifications first so an already-acknowledged
		// write's events cannot fire this new watch, then register
		// before reading so no mutation can slip between the read and
		// the watch (a mutation in the window fires a conservative
		// extra event instead of being missed).
		s.dispatch.barrier()
		s.watches.register(watchData, path, session)
		data, stat, err := s.sm.treeRef().Get(path)
		if err != nil {
			// Like ZooKeeper, a failed get leaves no watch.
			s.watches.unregister(watchData, path, session)
			return errResult(err), nil
		}
		return okResult(func(w *wire.Writer) {
			w.Bytes32(data)
			encodeStat(w, stat)
		}), nil
	case opExistsWatch:
		session := r.Uint64()
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if bounce := s.sm.bounceRead(path, false); bounce != nil {
			return errResult(bounce), nil
		}
		s.reg.Counter("reads").Inc()
		s.dispatch.barrier()
		stat, ok := s.sm.treeRef().Exists(path)
		// exists() watches fire on creation too, so register either way.
		s.watches.register(watchData, path, session)
		return okResult(func(w *wire.Writer) {
			w.Bool(ok)
			encodeStat(w, stat)
		}), nil
	case opChildrenWatch:
		session := r.Uint64()
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if bounce := s.sm.bounceRead(path, true); bounce != nil {
			return errResult(bounce), nil
		}
		s.reg.Counter("reads").Inc()
		s.dispatch.barrier()
		s.watches.register(watchChildren, path, session)
		kids, err := s.sm.treeRef().Children(path)
		if err != nil {
			s.watches.unregister(watchChildren, path, session)
			return errResult(err), nil
		}
		return okResult(func(w *wire.Writer) { w.StringSlice(kids) }), nil
	case opPollEvents:
		session := r.Uint64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		// Flush the async dispatch queue first so a session that wrote
		// and then polls sees the events its own write fired.
		s.dispatch.barrier()
		evs := s.watches.drain(session)
		return okResult(func(w *wire.Writer) { encodeEvents(w, evs) }), nil
	case opWaitEvents:
		session := r.Uint64()
		millis := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		// The request parks here — in its own handler goroutine over
		// TCP, in the (dedicated) caller goroutine over the in-process
		// transport — until a watch fires for the session, the wait
		// expires, or the server stops. Capped so an absurd client
		// timeout cannot pin handler state for hours.
		wait := time.Duration(millis) * time.Millisecond
		if wait > maxEventWait {
			wait = maxEventWait
		}
		evs := s.watches.await(session, wait)
		return okResult(func(w *wire.Writer) { encodeEvents(w, evs) }), nil
	case opRangeExport:
		// A fuzzy range capture from the local replica: the caller
		// (migration coordinator) records the returned applied zxid S —
		// taken BEFORE the walk, so an entry racing the cut is re-shipped
		// rather than missed — and later requests the delta since S.
		lo, hi := r.Uint64(), r.Uint64()
		since := r.Uint64()
		withManifest := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		applied := s.node.LastApplied()
		entries, manifest := s.sm.exportRange(placement.Range{Lo: lo, Hi: hi}, since, withManifest)
		return okResult(func(w *wire.Writer) {
			w.Uint64(applied)
			encodeRangeEntries(w, entries)
			w.Bool(withManifest)
			if withManifest {
				encodeManifest(w, manifest)
			}
		}), nil
	case opRangeState:
		lo, hi := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		rng := placement.Range{Lo: lo, Hi: hi}
		var state uint8
		var dest uint32
		var epoch uint64
		for _, rs := range s.sm.rangeStates() {
			if rs.rng == rng {
				state = rangeStateFenced
				if rs.moved {
					state = rangeStateMoved
				}
				dest = uint32(rs.dest)
				epoch = rs.epoch
				break
			}
		}
		return okResult(func(w *wire.Writer) {
			w.Uint8(state)
			w.Uint32(dest)
			w.Uint64(epoch)
		}), nil
	case opCreate, opDelete, opSet, opMulti, opNewSession, opCloseSession, opSync,
		opFenceRange, opUnfenceRange, opRangeMoved, opWipeRange, opImportRange:
		// The remaining request payload after the op byte is already in
		// transaction layout; re-prefix the op and propose it whole.
		// Propose retains the transaction bytes (replication log, WAL),
		// but req is a transport-owned buffer the handler must not keep
		// — so the write path pays exactly one defensive copy here.
		s.reg.Counter("writes").Inc()
		txn := make([]byte, len(req))
		copy(txn, req)
		result, err := s.node.Propose(txn)
		if err != nil {
			return nil, fmt.Errorf("coord: proposal failed: %w", err)
		}
		return result, nil
	default:
		return nil, fmt.Errorf("coord: unknown client op %d", op)
	}
}

// Range-state values reported by opRangeState.
const (
	rangeStateNone uint8 = iota
	rangeStateFenced
	rangeStateMoved
)

// readBounce peeks the path of a plain tree read (the op's first
// field) without consuming the caller's reader and returns the moved
// bounce, if any. A malformed frame is left for the real handler to
// report.
func (s *Server) readBounce(op uint8, peek wire.Reader) error {
	path := peek.String()
	if peek.Err() != nil {
		return nil
	}
	return s.sm.bounceRead(path, op == opChildren || op == opChildrenData)
}

// treeRef returns the current tree pointer under the state-machine
// lock, so a concurrent snapshot Restore cannot race the read side.
func (s *stateMachine) treeRef() *znode.Tree {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree
}
