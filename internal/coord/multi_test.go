package coord

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// TestMultiCommit verifies a batch of heterogeneous ops applies as one
// transaction, including ops that depend on earlier ops in the same
// batch (create under a just-created parent).
func TestMultiCommit(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)

	results, err := s.Multi([]Op{
		CreateOp("/dir", []byte("d"), znode.ModePersistent),
		CreateOp("/dir/a", []byte("a"), znode.ModePersistent),
		CreateOp("/dir/b", []byte("b"), znode.ModePersistent),
		SetOp("/dir/a", []byte("a2"), 0),
		DeleteOp("/dir/b", -1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
	}
	if results[1].Created != "/dir/a" {
		t.Fatalf("created = %q, want /dir/a", results[1].Created)
	}
	if results[3].Stat.Version != 1 {
		t.Fatalf("set stat version = %d, want 1", results[3].Stat.Version)
	}
	data, stat, err := s.Get("/dir/a")
	if err != nil || string(data) != "a2" || stat.Version != 1 {
		t.Fatalf("after multi: data=%q stat=%+v err=%v", data, stat, err)
	}
	if _, _, err := s.Get("/dir/b"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("deleted-in-batch node: err=%v, want ErrNoNode", err)
	}
}

// TestMultiAllOrNothing verifies the ZooKeeper multi() contract: a
// failing check aborts the whole batch, every applied op is undone
// (data, versions, child counts, sequence counters), the failing op
// reports its own error and every sibling reports ErrRolledBack.
func TestMultiAllOrNothing(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)

	if _, err := s.Create("/guard", []byte("v0"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/dir", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	_, before, err := s.Get("/dir")
	if err != nil {
		t.Fatal(err)
	}

	results, err := s.Multi([]Op{
		CreateOp("/dir/x", []byte("x"), znode.ModePersistent),
		SetOp("/guard", []byte("v1"), 0),
		CheckOp("/guard", 7), // wrong version: aborts the batch
		DeleteOp("/dir", -1),
	})
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("multi err = %v, want ErrBadVersion", err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if !errors.Is(results[2].Err, ErrBadVersion) {
		t.Fatalf("failing op err = %v, want ErrBadVersion", results[2].Err)
	}
	for _, i := range []int{0, 1, 3} {
		if !errors.Is(results[i].Err, ErrRolledBack) {
			t.Fatalf("op %d err = %v, want ErrRolledBack", i, results[i].Err)
		}
	}
	// Nothing applied: the create is gone, the set undone (data AND
	// version), the directory's child count and cversion untouched.
	if _, _, err := s.Get("/dir/x"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("rolled-back create visible: err=%v", err)
	}
	data, stat, err := s.Get("/guard")
	if err != nil || string(data) != "v0" || stat.Version != 0 {
		t.Fatalf("rolled-back set: data=%q stat=%+v err=%v", data, stat, err)
	}
	_, after, err := s.Get("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if after.NumChildren != before.NumChildren || after.Cversion != before.Cversion {
		t.Fatalf("dir stat mutated by aborted batch: before=%+v after=%+v", before, after)
	}
	// A failed batch must not burn sequential-name counters either.
	c1, err := s.Create("/dir/seq-", nil, znode.ModeSequential)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != "/dir/seq-0000000000" {
		t.Fatalf("sequence counter leaked by rollback: created %q", c1)
	}
}

// TestMultiRollbackRestoresSequentialCounter aborts a batch whose
// applied prefix included a sequential create, then verifies the
// parent's counter rewound.
func TestMultiRollbackRestoresSequentialCounter(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	if _, err := s.Create("/d", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	_, err := s.Multi([]Op{
		CreateOp("/d/s-", nil, znode.ModeSequential),
		CheckOp("/absent", -1),
	})
	if !errors.Is(err, ErrNoNode) {
		t.Fatalf("multi err = %v, want ErrNoNode", err)
	}
	created, err := s.Create("/d/s-", nil, znode.ModeSequential)
	if err != nil {
		t.Fatal(err)
	}
	if created != "/d/s-0000000000" {
		t.Fatalf("created %q: rollback leaked a sequence number", created)
	}
}

// TestMultiRetryDedup replays a committed multi transaction byte-for-
// byte against the state machine — exactly what a client retry after a
// leader change looks like once the proposal is re-submitted — and
// verifies the replica returns the cached result without re-executing
// the batch.
func TestMultiRetryDedup(t *testing.T) {
	sm := newStateMachine()
	sessReply := sm.Apply(encodeNewSessionTxn(), 1)
	r := wire.NewReader(sessReply)
	if code := r.Uint8(); code != codeOK {
		t.Fatalf("session status %d", code)
	}
	_ = r.String() // detail
	session := r.Uint64()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}

	txn := encodeMultiTxn([]Op{
		CreateOp("/dup", []byte("v"), znode.ModePersistent),
		CreateOp("/dup/kid", nil, znode.ModePersistent),
	}, session, 1, 42)

	first := sm.Apply(txn, 2)
	countAfterFirst := sm.treeRef().Count()
	second := sm.Apply(txn, 3)
	if string(first) != string(second) {
		t.Fatalf("retry returned different bytes:\n first=%x\nsecond=%x", first, second)
	}
	if got := sm.treeRef().Count(); got != countAfterFirst {
		t.Fatalf("retry re-executed the batch: %d znodes, want %d", got, countAfterFirst)
	}
	// Had the batch re-executed, the creates would have failed with
	// ErrNodeExists and an aborted outcome; the cached reply must still
	// decode as committed.
	rr := wire.NewReader(second)
	rr.Uint8()
	_ = rr.String()
	results, committed, derr := decodeMultiResults(rr)
	if derr != nil {
		t.Fatal(derr)
	}
	if !committed || len(results) != 2 || results[0].Err != nil {
		t.Fatalf("cached reply decoded as committed=%v results=%+v", committed, results)
	}
}

// TestMultiMalformedFrameRefused feeds the state machine opMulti
// transactions whose op count disagrees with the payload (truncation,
// or a hostile client — the server proposes client bytes whole) and
// verifies they are refused rather than committed as vacuous empty
// batches that reply success.
func TestMultiMalformedFrameRefused(t *testing.T) {
	sm := newStateMachine()
	for name, txn := range map[string][]byte{
		"count exceeds payload": func() []byte {
			w := wire.NewWriter(64)
			w.Uint8(opMulti)
			w.Uint64(0) // session
			w.Uint64(0) // seq
			w.Int64(1)  // nowNano
			w.Uint32(5) // claims 5 ops, carries none
			return w.Bytes()
		}(),
		"zero ops": func() []byte {
			w := wire.NewWriter(64)
			w.Uint8(opMulti)
			w.Uint64(0)
			w.Uint64(0)
			w.Int64(1)
			w.Uint32(0)
			return w.Bytes()
		}(),
		"truncated op fields": func() []byte {
			w := wire.NewWriter(64)
			w.Uint8(opMulti)
			w.Uint64(0)
			w.Uint64(0)
			w.Int64(1)
			w.Uint32(1)
			w.Uint8(uint8(OpCreate)) // op kind, then nothing
			return w.Bytes()
		}(),
	} {
		result := sm.Apply(txn, 7)
		r := wire.NewReader(result)
		if code := r.Uint8(); code == codeOK {
			t.Fatalf("%s: malformed multi committed as success", name)
		}
	}
	if n := sm.treeRef().Count(); n != 0 {
		t.Fatalf("malformed frames mutated the tree: %d znodes", n)
	}
}

// TestMultiSurvivesLeaderFailover commits batches across a leader kill
// to show the transaction is one proposal: it either commits whole or
// the client's retry re-proposes it whole.
func TestMultiSurvivesLeaderFailover(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)
	if _, err := s.Create("/f", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if i == 1 {
			leader := e.Leader()
			if leader == nil {
				t.Fatal("no leader")
			}
			leader.Stop()
		}
		_, err := s.Multi([]Op{
			CreateOp(fmt.Sprintf("/f/a%d", i), nil, znode.ModePersistent),
			CreateOp(fmt.Sprintf("/f/b%d", i), nil, znode.ModePersistent),
		})
		if err != nil {
			t.Fatalf("multi %d: %v", i, err)
		}
	}
	kids, err := s.Children("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 6 {
		t.Fatalf("children = %v, want 6 entries (every batch whole)", kids)
	}
}

// TestChildrenData verifies the one-round-trip listing: the node
// itself arrives as the leading "." entry, children follow sorted by
// name, and every entry carries its data and stat.
func TestChildrenData(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)

	if _, err := s.Create("/ls", []byte("self"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"charlie", "alpha", "bravo"} {
		if _, err := s.Create("/ls/"+name, []byte("data-"+name), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.ChildrenData("/ls")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("got %d entries, want 4 (self + 3 children)", len(entries))
	}
	if entries[0].Name != "." || string(entries[0].Data) != "self" {
		t.Fatalf("self entry = %+v", entries[0])
	}
	if entries[0].Stat.NumChildren != 3 {
		t.Fatalf("self NumChildren = %d, want 3", entries[0].Stat.NumChildren)
	}
	wantOrder := []string{"alpha", "bravo", "charlie"}
	for i, name := range wantOrder {
		e := entries[i+1]
		if e.Name != name || string(e.Data) != "data-"+name {
			t.Fatalf("entry %d = %+v, want name %q with its data", i+1, e, name)
		}
		if e.Stat.Czxid == 0 {
			t.Fatalf("entry %q missing stat: %+v", name, e.Stat)
		}
	}

	if _, err := s.ChildrenData("/absent"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("ChildrenData(absent) err = %v, want ErrNoNode", err)
	}

	// An empty directory still reports itself.
	if _, err := s.Create("/empty", []byte("e"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	entries, err = s.ChildrenData("/empty")
	if err != nil || len(entries) != 1 || entries[0].Name != "." {
		t.Fatalf("ChildrenData(empty) = %+v, %v", entries, err)
	}
}

// TestMultiFiresWatches verifies a committed batch fires data and
// child watches exactly like the equivalent single ops, and an aborted
// batch fires none.
func TestMultiFiresWatches(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	if _, err := s.Create("/w", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ChildrenW("/w"); err != nil {
		t.Fatal(err)
	}
	// Aborted batch: no events.
	if _, err := s.Multi([]Op{
		CreateOp("/w/kid", nil, znode.ModePersistent),
		CheckOp("/absent", -1),
	}); !errors.Is(err, ErrNoNode) {
		t.Fatalf("aborted multi err = %v", err)
	}
	if evs, err := s.PollEvents(); err != nil || len(evs) != 0 {
		t.Fatalf("aborted batch fired events: %+v, %v", evs, err)
	}
	// Committed batch: the child watch fires.
	if _, err := s.Multi([]Op{CreateOp("/w/kid", nil, znode.ModePersistent)}); err != nil {
		t.Fatal(err)
	}
	evs, err := s.WaitEvent(DialTimeout)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range evs {
		if ev.Path == "/w" && ev.Type == EventChildrenChanged {
			found = true
		}
	}
	if !found {
		t.Fatalf("committed multi never fired the child watch: %+v", evs)
	}
}
