package coord

import (
	"fmt"

	"repro/internal/coord/zab"
	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// Observer replica support: the pieces of the client protocol an
// observer server (internal/coord/observer) shares with a voting
// Server. Observers hold a full copy of the znode tree — applied from
// the leader's committed log — and answer the read half of the client
// protocol from it; everything that must be replicated (or that only a
// voter can answer, like a lease read) is left to the caller to
// forward or refuse. Keeping this here, exported, lets the observer
// package reuse the exact wire encoding without a coord → observer
// import cycle.

// serveTreeRead answers one plain read op (opGet/opExists/opChildren/
// opChildrenData) from a local tree replica. The reply bytes are
// identical whether a voter or an observer serves them — that
// indistinguishability is what lets the read router spread the stat/
// readdir load across tiers.
func serveTreeRead(op uint8, r *wire.Reader, t *znode.Tree) ([]byte, error) {
	path := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	switch op {
	case opGet:
		data, stat, err := t.Get(path)
		if err != nil {
			return errResult(err), nil
		}
		return okResult(func(w *wire.Writer) {
			w.Bytes32(data)
			encodeStat(w, stat)
		}), nil
	case opExists:
		stat, ok := t.Exists(path)
		return okResult(func(w *wire.Writer) {
			w.Bool(ok)
			encodeStat(w, stat)
		}), nil
	case opChildren:
		kids, err := t.Children(path)
		if err != nil {
			return errResult(err), nil
		}
		return okResult(func(w *wire.Writer) { w.StringSlice(kids) }), nil
	case opChildrenData:
		self, children, err := t.ChildrenData(path)
		if err != nil {
			return errResult(err), nil
		}
		return okResult(func(w *wire.Writer) {
			w.Uint32(uint32(len(children) + 1))
			w.String(".")
			w.Bytes32(self.Data)
			encodeStat(w, self.Stat)
			for _, c := range children {
				w.String(c.Name)
				w.Bytes32(c.Data)
				encodeStat(w, c.Stat)
			}
		}), nil
	default:
		return nil, fmt.Errorf("coord: op %d is not a tree read", op)
	}
}

// isTreeReadOp reports whether op is one of the plain read operations
// serveTreeRead can answer (the only ops a lease read may wrap).
func isTreeReadOp(op uint8) bool {
	switch op {
	case opGet, opExists, opChildren, opChildrenData:
		return true
	}
	return false
}

// ReplicaInfo is the identity an observer replica reports in its
// opStatus reply; the serving package supplies it per request so lag
// and leadership are sampled at answer time.
type ReplicaInfo struct {
	// ID is the observer's identity (disjoint from voter IDs).
	ID uint64
	// LeaderID is the voter the observer is tailing (0 if unknown).
	LeaderID uint64
	// Epoch is the leadership epoch the observer last saw.
	Epoch uint64
	// AppliedZxid is the observer's replication tip.
	AppliedZxid uint64
	// LagTxns is the observer's own estimate of how far it trails the
	// leader's commit horizon (a conservative zxid delta).
	LagTxns uint64
}

// ObserverState is the replicated-state half of an observer replica:
// the same znode state machine a voting server runs, minus the watch
// table and the replication node. The observer package feeds it to a
// zab.Observer (whose snapshot install path calls Restore) and serves
// client reads from it via ServeRead.
type ObserverState struct {
	sm *stateMachine
}

// NewObserverState builds an empty observer-side state machine. It
// applies strictly serially: the observer tails the leader's log on a
// single goroutine, so a worker pool would only add handoff cost.
func NewObserverState() *ObserverState {
	return &ObserverState{sm: newStateMachine()}
}

// Machine exposes the state machine for the log tailer to apply
// committed transactions (and install catch-up snapshots) into.
func (o *ObserverState) Machine() zab.BatchStateMachine { return o.sm }

// Tree exposes the local replica for read-side inspection (tests,
// memory accounting).
func (o *ObserverState) Tree() *znode.Tree { return o.sm.treeRef() }

// ServeRead answers the read half of the client protocol from the
// observer's local replica. handled=false means the request is a write
// (or a session op): the caller must forward it to the leader — it
// replicates, and the observer will observe its own write come back
// through the log. Requests an observer can never serve (watches,
// lease reads) are answered with an error reply rather than left to
// time out.
func (o *ObserverState) ServeRead(req []byte, info func() ReplicaInfo) (resp []byte, handled bool, err error) {
	r := wire.NewReader(req)
	op := r.Uint8()
	if r.Err() != nil {
		return nil, true, r.Err()
	}
	switch {
	case isTreeReadOp(op):
		resp, err = serveTreeRead(op, r, o.sm.treeRef())
		return resp, true, err
	case op == opStatus:
		ri := info()
		return okResult(func(w *wire.Writer) {
			w.Uint64(ri.ID)
			w.Uint64(ri.LeaderID)
			w.Uint64(ri.Epoch)
			w.Bool(false) // never the leader
			w.Uint64(uint64(o.sm.treeRef().Count()))
			w.Uint64(0)  // durable zxid: observers are diskless
			w.Uint64(0)  // wal segments
			w.Uint64(0)  // fsync batch
			w.Bool(true) // observer tier
			w.Uint64(ri.AppliedZxid)
			w.Uint64(ri.LagTxns)
			w.Uint32(0) // observers track no feed of their own
			w.Uint32(0) // migration markers live on voters
			// Apply-pipeline health: observers apply inline off the log
			// tailer, so lag/queue/busy are structurally zero.
			w.Uint64(0)
			w.Uint64(0)
			w.Uint64(0)
		}), true, nil
	case op == opLeaseRead:
		// Only a quorum-funded leader may answer a lease read; an
		// observer refusing (rather than silently serving stale data)
		// is what keeps the fast path linearizable.
		return errResult(ErrNoLease), true, nil
	case op == opGetWatch, op == opExistsWatch, op == opChildrenWatch,
		op == opPollEvents, op == opWaitEvents:
		// Watches need the voter-side watch table (events are minted at
		// apply time on the serving member); an observer answers with a
		// definite refusal so the client can re-home to a voter.
		return errResult(fmt.Errorf("observer replica cannot serve watch op %d", op)), true, nil
	case op == opRangeExport, op == opRangeState:
		// Migration control traffic belongs on voter sessions: an export
		// must pair with the voter-side applied zxid it was cut at.
		return errResult(fmt.Errorf("observer replica cannot serve migration op %d", op)), true, nil
	case op == opCreate, op == opDelete, op == opSet, op == opMulti,
		op == opNewSession, op == opCloseSession, op == opSync,
		op == opFenceRange, op == opUnfenceRange, op == opRangeMoved,
		op == opWipeRange, op == opImportRange:
		return nil, false, nil
	default:
		return nil, true, fmt.Errorf("coord: unknown client op %d", op)
	}
}
