package coord

import (
	"context"
	"fmt"

	"repro/internal/placement"
	"repro/internal/wire"
)

// Migration control-plane methods on Session. These are coordinator
// tooling, not part of the Client interface: a migration talks to a
// specific shard's ensemble directly, never through the router. The
// write ops carry session/seq like every other write, so the dedup
// window gives a retried control transaction exactly-once semantics.

// RangeExportResult is one fuzzy range capture from a shard.
type RangeExportResult struct {
	// Zxid is the replica's applied horizon taken before the capture
	// walk: every transaction at or below it is reflected, later ones
	// may be (over-shipping is absorbed by import's overwrite).
	Zxid     uint64
	Entries  []RangeEntry
	Manifest []string // in-range live paths; only with withManifest
}

// FenceRange plants the migration fence on the connected shard: writes
// routed into rng bounce with ErrFenced until the range is either
// unfenced (abort) or marked moved (flip). Returns the fence zxid —
// the consistent point the delta export is filtered against.
func (s *Session) FenceRange(ctx context.Context, rng placement.Range, dest int, epoch uint64) (uint64, error) {
	w := wire.GetWriter()
	w.Uint8(opFenceRange)
	w.Uint64(s.id)
	w.Uint64(s.seq.Add(1))
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	w.Uint32(uint32(dest))
	w.Uint64(epoch)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(payload)
	zxid := r.Uint64()
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("coord: malformed fence reply: %w", err)
	}
	return zxid, nil
}

// UnfenceRange lifts a fence (migration abort). Idempotent.
func (s *Session) UnfenceRange(ctx context.Context, rng placement.Range) error {
	w := wire.GetWriter()
	w.Uint8(opUnfenceRange)
	w.Uint64(s.id)
	w.Uint64(s.seq.Add(1))
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	_, err := s.requestPooled(ctx, w)
	return err
}

// RangeMoved flips ownership on the source shard: the fence marker
// becomes a moved marker (reads and writes now bounce with MovedError
// naming dest/epoch) and the shard drops its copy of the in-range
// nodes. Returns how many nodes were dropped.
func (s *Session) RangeMoved(ctx context.Context, rng placement.Range, dest int, epoch uint64) (int, error) {
	w := wire.GetWriter()
	w.Uint8(opRangeMoved)
	w.Uint64(s.id)
	w.Uint64(s.seq.Add(1))
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	w.Uint32(uint32(dest))
	w.Uint64(epoch)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(payload)
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("coord: malformed range-moved reply: %w", err)
	}
	return n, nil
}

// WipeRange drops the shard's copy of every in-range node without
// planting any marker — the destination-side rollback of an aborted
// migration. Returns how many nodes were dropped.
func (s *Session) WipeRange(ctx context.Context, rng placement.Range) (int, error) {
	w := wire.GetWriter()
	w.Uint8(opWipeRange)
	w.Uint64(s.id)
	w.Uint64(s.seq.Add(1))
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(payload)
	n := int(r.Uint32())
	if err := r.Err(); err != nil {
		return 0, fmt.Errorf("coord: malformed wipe reply: %w", err)
	}
	return n, nil
}

// ImportRange grafts a batch of exported entries into the connected
// shard. Batches of one migration must arrive in export order (the
// stream is parents-first). The final batch carries the source's
// live-path manifest; the shard then deletes any in-range node absent
// from it (a deletion that raced the pre-copy). Returns the counts of
// authoritative entries imported and stale nodes reconciled away.
func (s *Session) ImportRange(ctx context.Context, rng placement.Range, entries []RangeEntry, final bool, manifest []string) (imported, reconciled int, err error) {
	w := wire.GetWriter()
	w.Uint8(opImportRange)
	w.Uint64(s.id)
	w.Uint64(s.seq.Add(1))
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	w.Bool(final)
	encodeRangeEntries(w, entries)
	if final {
		encodeManifest(w, manifest)
	}
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return 0, 0, err
	}
	r := wire.NewReader(payload)
	imported = int(r.Uint32())
	reconciled = int(r.Uint32())
	if err := r.Err(); err != nil {
		return 0, 0, fmt.Errorf("coord: malformed import reply: %w", err)
	}
	return imported, reconciled, nil
}

// RangeExport captures the connected shard's in-range nodes changed
// since the given zxid (0 = everything), plus ancestor stubs, plus —
// when withManifest is set — the full in-range live-path manifest.
func (s *Session) RangeExport(ctx context.Context, rng placement.Range, since uint64, withManifest bool) (RangeExportResult, error) {
	w := wire.GetWriter()
	w.Uint8(opRangeExport)
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	w.Uint64(since)
	w.Bool(withManifest)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return RangeExportResult{}, err
	}
	r := wire.NewReader(payload)
	res := RangeExportResult{Zxid: r.Uint64()}
	res.Entries, err = decodeRangeEntries(r)
	if err != nil {
		return RangeExportResult{}, err
	}
	if r.Bool() {
		res.Manifest, err = decodeManifest(r)
		if err != nil {
			return RangeExportResult{}, err
		}
	}
	if err := r.Err(); err != nil {
		return RangeExportResult{}, fmt.Errorf("coord: malformed export reply: %w", err)
	}
	return res, nil
}

// Range states reported by RangeState.
const (
	RangeNone       uint8 = rangeStateNone
	RangeFenced     uint8 = rangeStateFenced
	RangeMovedState uint8 = rangeStateMoved
)

// RangeState queries the connected shard's marker for exactly rng.
// The recovery sweep uses it to decide roll-forward (moved) versus
// roll-back (fenced or absent).
func (s *Session) RangeState(ctx context.Context, rng placement.Range) (state uint8, dest int, epoch uint64, err error) {
	w := wire.GetWriter()
	w.Uint8(opRangeState)
	w.Uint64(rng.Lo)
	w.Uint64(rng.Hi)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return 0, 0, 0, err
	}
	r := wire.NewReader(payload)
	state = r.Uint8()
	dest = int(r.Uint32())
	epoch = r.Uint64()
	if err := r.Err(); err != nil {
		return 0, 0, 0, fmt.Errorf("coord: malformed range-state reply: %w", err)
	}
	return state, dest, epoch, nil
}
