package coord

import (
	"fmt"
	"sync"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// stateMachine is the replicated application state: the znode tree
// plus session bookkeeping. It implements zab.StateMachine. All write
// outcomes — including application-level failures like "node exists" —
// are encoded into the returned result bytes so replicas stay
// identical no matter which outcome occurred.
//
// Write transactions carry a per-session sequence number. The state
// machine remembers each session's last applied sequence and result,
// so a client retry of a write that already committed (leader change,
// dropped reply) returns the original result instead of re-executing —
// exact-once semantics per session, the same guarantee a ZooKeeper
// server gives reconnecting clients.
type stateMachine struct {
	mu          sync.Mutex
	tree        *znode.Tree
	sessions    map[uint64]bool
	nextSession uint64
	dedup       map[uint64]*dedupWindow

	// notify, when set, observes every applied mutation on this
	// replica (op code, affected path, acting session, success). The
	// server uses it to fire watches and clean up session queues; it
	// is server-local, not replicated state.
	notify func(op uint8, path string, session uint64, ok bool)
}

// dedupWindow remembers a session's most recent write results, keyed
// by exact sequence number. Concurrent requests on one session may
// commit out of order, so only an exact seq match is a retry; the
// window is bounded (oldest entries evicted FIFO) because a client
// only ever retries its in-flight requests.
type dedupWindow struct {
	results map[uint64][]byte
	order   []uint64
}

// dedupWindowSize bounds remembered results per session. It must
// exceed the client's maximum concurrent in-flight writes.
const dedupWindowSize = 256

func (w *dedupWindow) lookup(seq uint64) ([]byte, bool) {
	r, ok := w.results[seq]
	return r, ok
}

func (w *dedupWindow) store(seq uint64, result []byte) {
	if _, dup := w.results[seq]; dup {
		return
	}
	w.results[seq] = result
	w.order = append(w.order, seq)
	for len(w.order) > dedupWindowSize {
		delete(w.results, w.order[0])
		w.order = w.order[1:]
	}
}

func newStateMachine() *stateMachine {
	return &stateMachine{
		tree:     znode.New(),
		sessions: make(map[uint64]bool),
		dedup:    make(map[uint64]*dedupWindow),
	}
}

// Transaction layouts (after the op byte):
//
//	create:       session u64, seq u64, path, data, mode u8, nowNano i64
//	delete:       session u64, seq u64, path, version i32
//	set:          session u64, seq u64, path, data, version i32, nowNano i64
//	multi:        session u64, seq u64, nowNano i64, count u32,
//	              then per op: kind u8, path, data, mode u8, version i32
//	newSession:   (nothing)
//	closeSession: session u64, seq u64
//
// Session 0 / seq 0 marks an undeduplicated transaction (session
// establishment happens before the client has an identity).
func encodeCreateTxn(path string, data []byte, mode znode.CreateMode, session, seq uint64, nowNano int64) []byte {
	w := wire.NewWriter(48 + len(path) + len(data))
	w.Uint8(opCreate)
	w.Uint64(session)
	w.Uint64(seq)
	w.String(path)
	w.Bytes32(data)
	w.Uint8(uint8(mode))
	w.Int64(nowNano)
	return w.Bytes()
}

func encodeDeleteTxn(path string, version int32, session, seq uint64) []byte {
	w := wire.NewWriter(32 + len(path))
	w.Uint8(opDelete)
	w.Uint64(session)
	w.Uint64(seq)
	w.String(path)
	w.Int32(version)
	return w.Bytes()
}

func encodeSetTxn(path string, data []byte, version int32, session, seq uint64, nowNano int64) []byte {
	w := wire.NewWriter(48 + len(path) + len(data))
	w.Uint8(opSet)
	w.Uint64(session)
	w.Uint64(seq)
	w.String(path)
	w.Bytes32(data)
	w.Int32(version)
	w.Int64(nowNano)
	return w.Bytes()
}

func encodeMultiTxn(ops []Op, session, seq uint64, nowNano int64) []byte {
	size := 32
	for _, op := range ops {
		size += 16 + len(op.Path) + len(op.Data)
	}
	w := wire.NewWriter(size)
	w.Uint8(opMulti)
	w.Uint64(session)
	w.Uint64(seq)
	w.Int64(nowNano)
	encodeOps(w, ops)
	return w.Bytes()
}

func encodeNewSessionTxn() []byte {
	w := wire.NewWriter(1)
	w.Uint8(opNewSession)
	return w.Bytes()
}

func encodeCloseSessionTxn(session, seq uint64) []byte {
	w := wire.NewWriter(24)
	w.Uint8(opCloseSession)
	w.Uint64(session)
	w.Uint64(seq)
	return w.Bytes()
}

func encodeSyncTxn(session, seq uint64) []byte {
	w := wire.NewWriter(24)
	w.Uint8(opSync)
	w.Uint64(session)
	w.Uint64(seq)
	return w.Bytes()
}

// okResult builds a successful result with an optional payload writer.
func okResult(fill func(w *wire.Writer)) []byte {
	w := wire.NewWriter(64)
	w.Uint8(codeOK)
	w.String("") // detail
	if fill != nil {
		fill(w)
	}
	return w.Bytes()
}

func errResult(err error) []byte {
	w := wire.NewWriter(64)
	w.Uint8(codeForError(err))
	w.String(err.Error())
	return w.Bytes()
}

// ApplyBatch implements zab.BatchStateMachine: a group-commit frame is
// N ordered transactions — transaction i carries zxid firstZxid+i —
// each producing its own result exactly as N sequential Apply calls
// would (including per-session retry dedup, which keys on session/seq
// and so is insensitive to how transactions were framed).
func (s *stateMachine) ApplyBatch(txns [][]byte, firstZxid uint64) [][]byte {
	results := make([][]byte, len(txns))
	for i, txn := range txns {
		results[i] = s.Apply(txn, firstZxid+uint64(i))
	}
	return results
}

// Apply implements zab.StateMachine.
func (s *stateMachine) Apply(txn []byte, zxid uint64) []byte {
	r := wire.NewReader(txn)
	op := r.Uint8()
	if r.Err() != nil {
		return errResult(fmt.Errorf("malformed transaction: %w", r.Err()))
	}
	if op == opNewSession {
		s.mu.Lock()
		s.nextSession++
		id := s.nextSession
		s.sessions[id] = true
		s.mu.Unlock()
		return okResult(func(w *wire.Writer) { w.Uint64(id) })
	}

	session := r.Uint64()
	seq := r.Uint64()
	if err := r.Err(); err != nil {
		return errResult(err)
	}
	if session != 0 && seq != 0 {
		s.mu.Lock()
		if w, ok := s.dedup[session]; ok {
			if cached, hit := w.lookup(seq); hit {
				s.mu.Unlock()
				return cached // retry of an already-applied write
			}
		}
		s.mu.Unlock()
	}
	result := s.applyWrite(op, session, r, zxid)
	if session != 0 && seq != 0 {
		s.mu.Lock()
		w, ok := s.dedup[session]
		if !ok {
			w = &dedupWindow{results: make(map[uint64][]byte)}
			s.dedup[session] = w
		}
		w.store(seq, result)
		s.mu.Unlock()
	}
	return result
}

func (s *stateMachine) applyWrite(op uint8, session uint64, r *wire.Reader, zxid uint64) []byte {
	switch op {
	case opCreate:
		path := r.String()
		data := r.BytesCopy32()
		mode := znode.CreateMode(r.Uint8())
		now := r.Int64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		created, err := s.tree.Create(path, data, mode, session, zxid, now)
		if s.notify != nil {
			s.notify(opCreate, created, session, err == nil)
		}
		if err != nil {
			return errResult(err)
		}
		return okResult(func(w *wire.Writer) { w.String(created) })
	case opDelete:
		path := r.String()
		version := r.Int32()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		derr := s.tree.Delete(path, version, zxid)
		if s.notify != nil {
			s.notify(opDelete, path, session, derr == nil)
		}
		if derr != nil {
			return errResult(derr)
		}
		return okResult(nil)
	case opSet:
		path := r.String()
		data := r.BytesCopy32()
		version := r.Int32()
		now := r.Int64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		stat, err := s.tree.Set(path, data, version, zxid, now)
		if s.notify != nil {
			s.notify(opSet, path, session, err == nil)
		}
		if err != nil {
			return errResult(err)
		}
		return okResult(func(w *wire.Writer) { encodeStat(w, stat) })
	case opMulti:
		now := r.Int64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		ops, derr := decodeOps(r)
		if derr != nil {
			return errResult(derr)
		}
		results, committed := s.tree.Multi(ops, session, zxid, now)
		if committed && s.notify != nil {
			for i, op := range ops {
				switch op.Kind {
				case znode.MultiCreate:
					s.notify(opCreate, results[i].Created, session, true)
				case znode.MultiSet:
					s.notify(opSet, op.Path, session, true)
				case znode.MultiDelete:
					s.notify(opDelete, op.Path, session, true)
				}
			}
		}
		// The outer status is OK either way: an aborted batch is an
		// application-level outcome the client needs the per-op results
		// for, not a protocol failure.
		return okResult(func(w *wire.Writer) { encodeMultiResults(w, results, committed) })
	case opCloseSession:
		s.mu.Lock()
		delete(s.sessions, session)
		delete(s.dedup, session)
		s.mu.Unlock()
		deleted := s.tree.ExpireSession(session, zxid)
		if s.notify != nil {
			for _, p := range deleted {
				s.notify(opDelete, p, session, true)
			}
			s.notify(opCloseSession, "", session, true)
		}
		return okResult(func(w *wire.Writer) { w.Uint32(uint32(len(deleted))) })
	case opSync:
		// A no-op barrier: once this transaction applies on the
		// session's server, that replica has caught up with every
		// write committed before the sync — ZooKeeper's sync().
		return okResult(nil)
	default:
		return errResult(fmt.Errorf("unknown transaction op %d", op))
	}
}

// Snapshot implements zab.StateMachine: session state followed by the
// full tree walk, parents before children.
func (s *stateMachine) Snapshot() []byte {
	s.mu.Lock()
	w := wire.NewWriter(1 << 16)
	w.Uint64(s.nextSession)
	w.Uint32(uint32(len(s.sessions)))
	for id := range s.sessions {
		w.Uint64(id)
	}
	w.Uint32(uint32(len(s.dedup)))
	for id, win := range s.dedup {
		w.Uint64(id)
		w.Uint32(uint32(len(win.order)))
		for _, seq := range win.order {
			w.Uint64(seq)
			w.Bytes32(win.results[seq])
		}
	}
	tree := s.tree
	s.mu.Unlock()

	tree.Walk(func(e znode.WalkEntry) {
		w.Bool(true)
		w.String(e.Path)
		w.Bytes32(e.Data)
		encodeStat(w, e.Stat)
		w.Int64(e.Seq)
	})
	w.Bool(false)
	return w.Bytes()
}

// Restore implements zab.StateMachine.
func (s *stateMachine) Restore(snap []byte, _ uint64) error {
	r := wire.NewReader(snap)
	next := r.Uint64()
	nSessions := r.Uint32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot header: %w", err)
	}
	sessions := make(map[uint64]bool, nSessions)
	for i := uint32(0); i < nSessions; i++ {
		sessions[r.Uint64()] = true
	}
	nDedup := r.Uint32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot dedup header: %w", err)
	}
	dedup := make(map[uint64]*dedupWindow, nDedup)
	for i := uint32(0); i < nDedup; i++ {
		id := r.Uint64()
		nEntries := r.Uint32()
		if err := r.Err(); err != nil {
			return fmt.Errorf("coord: corrupt snapshot dedup entry: %w", err)
		}
		win := &dedupWindow{results: make(map[uint64][]byte, nEntries)}
		for j := uint32(0); j < nEntries; j++ {
			seq := r.Uint64()
			result := r.BytesCopy32()
			if err := r.Err(); err != nil {
				return fmt.Errorf("coord: corrupt snapshot dedup result: %w", err)
			}
			win.store(seq, result)
		}
		dedup[id] = win
	}
	tree := znode.New()
	for r.Bool() {
		e := znode.WalkEntry{
			Path: r.String(),
			Data: r.BytesCopy32(),
			Stat: decodeStat(r),
			Seq:  r.Int64(),
		}
		if err := r.Err(); err != nil {
			return fmt.Errorf("coord: corrupt snapshot entry: %w", err)
		}
		if err := tree.RestoreEntry(e); err != nil {
			return fmt.Errorf("coord: restoring %q: %w", e.Path, err)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot: %w", err)
	}
	s.mu.Lock()
	s.nextSession = next
	s.sessions = sessions
	s.dedup = dedup
	s.tree = tree
	s.mu.Unlock()
	return nil
}
