package coord

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"

	"repro/internal/coord/znode"
	"repro/internal/placement"
	"repro/internal/wire"
)

// stateMachine is the replicated application state: the znode tree
// plus session bookkeeping. It implements zab.StateMachine. All write
// outcomes — including application-level failures like "node exists" —
// are encoded into the returned result bytes so replicas stay
// identical no matter which outcome occurred.
//
// Write transactions carry a per-session sequence number. The state
// machine remembers each session's last applied sequence and result,
// so a client retry of a write that already committed (leader change,
// dropped reply) returns the original result instead of re-executing —
// exact-once semantics per session, the same guarantee a ZooKeeper
// server gives reconnecting clients.
type stateMachine struct {
	// mu guards tree pointer swaps, the session table and the
	// migration markers. Writers of those are rare (session churn,
	// migration barriers, restore); the per-txn hot-path readers
	// (bounceWrite/bounceRead, treeRef) take it shared so
	// path-disjoint transactions scheduled concurrently never
	// serialize here.
	mu          sync.RWMutex
	tree        *znode.Tree
	sessions    map[uint64]bool
	nextSession uint64

	// dedup is the per-session retry window, sharded by session ID so
	// concurrently applied transactions from different sessions never
	// contend on one lock. A session's own transactions are never
	// scheduled concurrently (the apply scheduler serializes on
	// session), so per-session ordering within a shard is free.
	dedup [dedupShardCount]dedupShard

	// ranges holds the migration fence/moved markers for this shard,
	// sorted by range start. Replicated state: the markers are planted
	// and cleared by fence/unfence/moved transactions, so every replica
	// bounces the same writes with the same results and the markers
	// survive leader failover. Scans are linear — a shard has at most a
	// handful of live markers.
	ranges []rangeState

	// batchScratch is ApplyBatch's reusable result container. Frames
	// apply sequentially from the replication layer's single apply
	// goroutine, so one scratch per state machine suffices.
	batchScratch [][]byte

	// notify, when set, observes every applied mutation on this
	// replica (op code, affected path, acting session, success) in
	// commit order. The server uses it to fire watches and clean up
	// session queues; it is server-local, not replicated state.
	notify func(op uint8, path string, session uint64, ok bool)

	// serialCtx is Apply's notification scratch (single apply
	// goroutine); parallel batches use per-slot contexts owned by the
	// scheduler in apply_parallel.go.
	serialCtx applyCtx

	// pool, when non-nil, executes path-disjoint transactions of one
	// batch concurrently (apply_parallel.go). nil means strictly
	// serial apply — the replay/ablation path.
	pool *applyPool

	// Scheduler scratch, touched only by the single apply goroutine.
	classScratch []txnClass
	ctxScratch   []applyCtx
	waveScratch  []int
}

// applyCtx carries one transaction's application-side effects that
// must be emitted in commit order rather than execution order: the
// notify records a concurrently executed transaction would otherwise
// fire mid-wave. Serial applies flush immediately, so behavior there
// is unchanged.
type applyCtx struct {
	recs []notifyRec
}

type notifyRec struct {
	op      uint8
	path    string
	session uint64
	ok      bool
}

func (c *applyCtx) note(op uint8, path string, session uint64, ok bool) {
	c.recs = append(c.recs, notifyRec{op: op, path: path, session: session, ok: ok})
}

// flushNotify delivers a transaction's buffered notifications in the
// order they were recorded and resets the context for reuse.
func (s *stateMachine) flushNotify(ctx *applyCtx) {
	if s.notify != nil {
		for _, n := range ctx.recs {
			s.notify(n.op, n.path, n.session, n.ok)
		}
	}
	ctx.recs = ctx.recs[:0]
}

// dedupWindow remembers a session's most recent write results, keyed
// by exact sequence number. Concurrent requests on one session may
// commit out of order, so only an exact seq match is a retry; the
// window is bounded (oldest entries evicted FIFO) because a client
// only ever retries its in-flight requests.
type dedupWindow struct {
	results map[uint64][]byte
	order   []uint64
}

// dedupWindowSize bounds remembered results per session. It must
// exceed the client's maximum concurrent in-flight writes.
const dedupWindowSize = 256

func (w *dedupWindow) lookup(seq uint64) ([]byte, bool) {
	r, ok := w.results[seq]
	return r, ok
}

func (w *dedupWindow) store(seq uint64, result []byte) {
	if _, dup := w.results[seq]; dup {
		return
	}
	w.results[seq] = result
	w.order = append(w.order, seq)
	for len(w.order) > dedupWindowSize {
		delete(w.results, w.order[0])
		w.order = w.order[1:]
	}
}

// dedupShardCount spreads session retry windows over independent
// locks. Session IDs are sequential, so modulo keeps adjacent sessions
// on distinct shards. Power of two.
const dedupShardCount = 16

type dedupShard struct {
	mu   sync.Mutex
	wins map[uint64]*dedupWindow
}

func (s *stateMachine) dedupShardFor(session uint64) *dedupShard {
	return &s.dedup[session%dedupShardCount]
}

// dedupLookup returns the cached result of a retried (session, seq)
// write, if the window remembers it.
func (s *stateMachine) dedupLookup(session, seq uint64) ([]byte, bool) {
	sh := s.dedupShardFor(session)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if w, ok := sh.wins[session]; ok {
		return w.lookup(seq)
	}
	return nil, false
}

func (s *stateMachine) dedupStore(session, seq uint64, result []byte) {
	sh := s.dedupShardFor(session)
	sh.mu.Lock()
	w, ok := sh.wins[session]
	if !ok {
		w = &dedupWindow{results: make(map[uint64][]byte)}
		sh.wins[session] = w
	}
	w.store(seq, result)
	sh.mu.Unlock()
}

func (s *stateMachine) dedupDrop(session uint64) {
	sh := s.dedupShardFor(session)
	sh.mu.Lock()
	delete(sh.wins, session)
	sh.mu.Unlock()
}

func newStateMachine() *stateMachine {
	s := &stateMachine{
		tree:     znode.New(),
		sessions: make(map[uint64]bool),
	}
	for i := range s.dedup {
		s.dedup[i].wins = make(map[uint64]*dedupWindow)
	}
	return s
}

// Transaction layouts (after the op byte):
//
//	create:       session u64, seq u64, path, data, mode u8, nowNano i64
//	delete:       session u64, seq u64, path, version i32
//	set:          session u64, seq u64, path, data, version i32, nowNano i64
//	multi:        session u64, seq u64, nowNano i64, count u32,
//	              then per op: kind u8, path, data, mode u8, version i32
//	newSession:   (nothing)
//	closeSession: session u64, seq u64
//
// Session 0 / seq 0 marks an undeduplicated transaction (session
// establishment happens before the client has an identity).
// The transaction appenders below write into a caller-supplied Writer:
// the client encodes requests into pooled scratch writers (the server
// copies before any retention — see Propose), while the encode*Txn
// wrappers keep an owned-buffer form for callers whose bytes ARE
// retained — the replication log, the WAL, the dedup window, replay
// in tests. Owned buffers can never come from a pool; a fresh buffer
// per transaction is the correct lifetime there.
func appendCreateTxn(w *wire.Writer, path string, data []byte, mode znode.CreateMode, session, seq uint64, nowNano int64) {
	w.Grow(48 + len(path) + len(data))
	w.Uint8(opCreate)
	w.Uint64(session)
	w.Uint64(seq)
	w.String(path)
	w.Bytes32(data)
	w.Uint8(uint8(mode))
	w.Int64(nowNano)
}

func encodeCreateTxn(path string, data []byte, mode znode.CreateMode, session, seq uint64, nowNano int64) []byte {
	var w wire.Writer
	appendCreateTxn(&w, path, data, mode, session, seq, nowNano)
	return w.Bytes()
}

func appendDeleteTxn(w *wire.Writer, path string, version int32, session, seq uint64) {
	w.Grow(32 + len(path))
	w.Uint8(opDelete)
	w.Uint64(session)
	w.Uint64(seq)
	w.String(path)
	w.Int32(version)
}

func encodeDeleteTxn(path string, version int32, session, seq uint64) []byte {
	var w wire.Writer
	appendDeleteTxn(&w, path, version, session, seq)
	return w.Bytes()
}

func appendSetTxn(w *wire.Writer, path string, data []byte, version int32, session, seq uint64, nowNano int64) {
	w.Grow(48 + len(path) + len(data))
	w.Uint8(opSet)
	w.Uint64(session)
	w.Uint64(seq)
	w.String(path)
	w.Bytes32(data)
	w.Int32(version)
	w.Int64(nowNano)
}

func encodeSetTxn(path string, data []byte, version int32, session, seq uint64, nowNano int64) []byte {
	var w wire.Writer
	appendSetTxn(&w, path, data, version, session, seq, nowNano)
	return w.Bytes()
}

func appendMultiTxn(w *wire.Writer, ops []Op, session, seq uint64, nowNano int64) {
	size := 32
	for _, op := range ops {
		size += 16 + len(op.Path) + len(op.Data)
	}
	w.Grow(size)
	w.Uint8(opMulti)
	w.Uint64(session)
	w.Uint64(seq)
	w.Int64(nowNano)
	encodeOps(w, ops)
}

func encodeMultiTxn(ops []Op, session, seq uint64, nowNano int64) []byte {
	var w wire.Writer
	appendMultiTxn(&w, ops, session, seq, nowNano)
	return w.Bytes()
}

func encodeNewSessionTxn() []byte {
	var w wire.Writer
	w.Uint8(opNewSession)
	return w.Bytes()
}

func encodeCloseSessionTxn(session, seq uint64) []byte {
	var w wire.Writer
	w.Grow(24)
	w.Uint8(opCloseSession)
	w.Uint64(session)
	w.Uint64(seq)
	return w.Bytes()
}

func appendSyncTxn(w *wire.Writer, session, seq uint64) {
	w.Grow(24)
	w.Uint8(opSync)
	w.Uint64(session)
	w.Uint64(seq)
}

func encodeSyncTxn(session, seq uint64) []byte {
	var w wire.Writer
	appendSyncTxn(&w, session, seq)
	return w.Bytes()
}

// okResult builds a successful result with an optional payload writer.
// Results are retained in the dedup window, so the buffer is owned by
// the result — never pooled.
func okResult(fill func(w *wire.Writer)) []byte {
	var w wire.Writer
	w.Grow(64)
	w.Uint8(codeOK)
	w.String("") // detail
	if fill != nil {
		fill(&w)
	}
	return w.Bytes()
}

// okResultString and okResultStat are closure-free okResult forms for
// the create/set replies on the write hot path — the generic fill-func
// shape costs a captured-variable closure allocation per transaction.
func okResultString(v string) []byte {
	var w wire.Writer
	w.Grow(64)
	w.Uint8(codeOK)
	w.String("") // detail
	w.String(v)
	return w.Bytes()
}

func okResultStat(stat znode.Stat) []byte {
	var w wire.Writer
	w.Grow(64)
	w.Uint8(codeOK)
	w.String("") // detail
	encodeStat(&w, stat)
	return w.Bytes()
}

func errResult(err error) []byte {
	var w wire.Writer
	w.Grow(64)
	w.Uint8(codeForError(err))
	w.String(err.Error())
	return w.Bytes()
}

// ApplyBatch implements zab.BatchStateMachine: a group-commit frame is
// N ordered transactions — transaction i carries zxid firstZxid+i —
// each producing its own result exactly as N sequential Apply calls
// would (including per-session retry dedup, which keys on session/seq
// and so is insensitive to how transactions were framed).
// The returned slice is only valid until the next ApplyBatch call: the
// replication layer consumes the results before applying the next
// frame (frames apply strictly in order from one goroutine), so the
// container is a reusable scratch — only the per-txn result buffers
// are retained (by the dedup window and the waiters).
//
// With a worker pool attached, path-disjoint transactions of the batch
// execute concurrently (apply_parallel.go); the results, dedup effects
// and notifications are identical to the serial order by construction.
func (s *stateMachine) ApplyBatch(txns [][]byte, firstZxid uint64) [][]byte {
	if cap(s.batchScratch) < len(txns) {
		s.batchScratch = make([][]byte, len(txns))
	}
	results := s.batchScratch[:len(txns)]
	if s.pool == nil || len(txns) < 2 {
		for i, txn := range txns {
			results[i] = s.Apply(txn, firstZxid+uint64(i))
		}
		return results
	}
	s.applyBatchParallel(txns, firstZxid, results)
	return results
}

// Apply implements zab.StateMachine (the strictly serial path).
func (s *stateMachine) Apply(txn []byte, zxid uint64) []byte {
	result := s.applyTxn(&s.serialCtx, txn, zxid)
	s.flushNotify(&s.serialCtx)
	return result
}

// applyTxn applies one transaction, buffering its notifications on ctx
// for the caller to flush in commit order.
func (s *stateMachine) applyTxn(ctx *applyCtx, txn []byte, zxid uint64) []byte {
	var r wire.Reader
	r.Reset(txn)
	op := r.Uint8()
	if r.Err() != nil {
		return errResult(fmt.Errorf("malformed transaction: %w", r.Err()))
	}
	if op == opNewSession {
		s.mu.Lock()
		s.nextSession++
		id := s.nextSession
		s.sessions[id] = true
		s.mu.Unlock()
		return okResult(func(w *wire.Writer) { w.Uint64(id) })
	}

	session := r.Uint64()
	seq := r.Uint64()
	if err := r.Err(); err != nil {
		return errResult(err)
	}
	if session != 0 && seq != 0 {
		if cached, hit := s.dedupLookup(session, seq); hit {
			return cached // retry of an already-applied write
		}
	}
	result := s.applyWrite(ctx, op, session, &r, zxid)
	if session != 0 && seq != 0 {
		s.dedupStore(session, seq, result)
	}
	return result
}

func (s *stateMachine) applyWrite(ctx *applyCtx, op uint8, session uint64, r *wire.Reader, zxid uint64) []byte {
	switch op {
	case opCreate:
		path := r.String()
		// Borrowed, not copied: the tree duplicates data into the node
		// it creates, so the slice never outlives this call.
		data := r.BorrowBytes()
		mode := znode.CreateMode(r.Uint8())
		now := r.Int64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		if err := s.bounceWrite(path); err != nil {
			return errResult(err)
		}
		created, err := s.tree.Create(path, data, mode, session, zxid, now)
		if s.notify != nil {
			ctx.note(opCreate, created, session, err == nil)
		}
		if err != nil {
			return errResult(err)
		}
		return okResultString(created)
	case opDelete:
		path := r.String()
		version := r.Int32()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		if err := s.bounceWrite(path); err != nil {
			return errResult(err)
		}
		derr := s.tree.Delete(path, version, zxid)
		if s.notify != nil {
			ctx.note(opDelete, path, session, derr == nil)
		}
		if derr != nil {
			return errResult(derr)
		}
		return okResult(nil)
	case opSet:
		path := r.String()
		data := r.BorrowBytes() // the tree copies on Set, as on Create
		version := r.Int32()
		now := r.Int64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		if err := s.bounceWrite(path); err != nil {
			return errResult(err)
		}
		stat, err := s.tree.Set(path, data, version, zxid, now)
		if s.notify != nil {
			ctx.note(opSet, path, session, err == nil)
		}
		if err != nil {
			return errResult(err)
		}
		return okResultStat(stat)
	case opMulti:
		now := r.Int64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		ops, derr := decodeOps(r)
		if derr != nil {
			return errResult(derr)
		}
		// The whole batch bounces before any op applies, so a caller can
		// re-split and retry the sub-transaction without partial effects.
		for _, op := range ops {
			if err := s.bounceWrite(op.Path); err != nil {
				return errResult(err)
			}
		}
		results, committed := s.tree.Multi(ops, session, zxid, now)
		if committed && s.notify != nil {
			for i, op := range ops {
				switch op.Kind {
				case znode.MultiCreate:
					ctx.note(opCreate, results[i].Created, session, true)
				case znode.MultiSet:
					ctx.note(opSet, op.Path, session, true)
				case znode.MultiDelete:
					ctx.note(opDelete, op.Path, session, true)
				}
			}
		}
		// The outer status is OK either way: an aborted batch is an
		// application-level outcome the client needs the per-op results
		// for, not a protocol failure.
		return okResult(func(w *wire.Writer) { encodeMultiResults(w, results, committed) })
	case opCloseSession:
		s.mu.Lock()
		delete(s.sessions, session)
		s.mu.Unlock()
		s.dedupDrop(session)
		deleted := s.tree.ExpireSession(session, zxid)
		if s.notify != nil {
			for _, p := range deleted {
				ctx.note(opDelete, p, session, true)
			}
			ctx.note(opCloseSession, "", session, true)
		}
		return okResult(func(w *wire.Writer) { w.Uint32(uint32(len(deleted))) })
	case opSync:
		// A no-op barrier: once this transaction applies on the
		// session's server, that replica has caught up with every
		// write committed before the sync — ZooKeeper's sync().
		return okResult(nil)
	case opFenceRange, opUnfenceRange, opRangeMoved, opWipeRange, opImportRange:
		return s.applyMigration(ctx, op, session, r, zxid)
	default:
		return errResult(fmt.Errorf("unknown transaction op %d", op))
	}
}

// Snapshot implements zab.StateMachine by buffering the streaming
// serialization — one codepath, so the blob and stream forms are
// byte-identical by construction.
func (s *stateMachine) Snapshot() []byte {
	var buf bytes.Buffer
	// A bytes.Buffer write cannot fail short of OOM.
	_ = s.SnapshotTo(&buf)
	return buf.Bytes()
}

// SnapshotTo implements zab.StreamingStateMachine: session state
// followed by the full tree walk (parents before children), pushed
// through a chunked encoder so serializing a tree of any size needs
// O(chunk) memory beyond the tree itself.
func (s *stateMachine) SnapshotTo(out io.Writer) error {
	enc := wire.NewEncoder(out, 0)
	s.mu.Lock()
	enc.Uint64(s.nextSession)
	// Emit map sections in sorted-key order so serializing the same
	// state twice yields the same bytes — two replicas at one zxid can
	// then compare snapshot checksums directly.
	sessionIDs := make([]uint64, 0, len(s.sessions))
	for id := range s.sessions {
		sessionIDs = append(sessionIDs, id)
	}
	slices.Sort(sessionIDs)
	enc.Uint32(uint32(len(sessionIDs)))
	for _, id := range sessionIDs {
		enc.Uint64(id)
	}
	// Gather the sharded retry windows back into one sorted section so
	// the snapshot encoding is independent of the shard layout (and
	// byte-identical to the pre-sharding format).
	var dedupIDs []uint64
	for i := range s.dedup {
		sh := &s.dedup[i]
		sh.mu.Lock()
		for id := range sh.wins {
			dedupIDs = append(dedupIDs, id)
		}
		sh.mu.Unlock()
	}
	slices.Sort(dedupIDs)
	enc.Uint32(uint32(len(dedupIDs)))
	for _, id := range dedupIDs {
		sh := s.dedupShardFor(id)
		sh.mu.Lock()
		win := sh.wins[id]
		enc.Uint64(id)
		enc.Uint32(uint32(len(win.order)))
		for _, seq := range win.order {
			enc.Uint64(seq)
			enc.Bytes32(win.results[seq])
		}
		sh.mu.Unlock()
	}
	enc.Uint32(uint32(len(s.ranges)))
	for _, rs := range s.ranges {
		enc.Uint64(rs.rng.Lo)
		enc.Uint64(rs.rng.Hi)
		enc.Uint32(uint32(rs.dest))
		enc.Uint64(rs.epoch)
		enc.Bool(rs.moved)
	}
	tree := s.tree
	s.mu.Unlock()

	tree.Walk(func(e znode.WalkEntry) {
		enc.Bool(true)
		enc.String(e.Path)
		enc.Bytes32(e.Data)
		encodeStat(enc, e.Stat)
		enc.Int64(e.Seq)
	})
	enc.Bool(false)
	return enc.Flush()
}

// Restore implements zab.StateMachine over the streaming path.
func (s *stateMachine) Restore(snap []byte, snapZxid uint64) error {
	return s.RestoreFrom(bytes.NewReader(snap), snapZxid)
}

// RestoreFrom implements zab.StreamingStateMachine. The replacement
// state is built on the side and swapped in only once the whole stream
// has decoded cleanly — a corrupt snapshot never leaves the machine
// half-restored. The stream is consumed to EOF, which is what lets a
// validating source (checksum verified at end-of-data) veto the swap.
func (s *stateMachine) RestoreFrom(rd io.Reader, _ uint64) error {
	r := wire.NewDecoder(rd)
	next := r.Uint64()
	nSessions := r.Uint32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot header: %w", err)
	}
	sessions := make(map[uint64]bool, nSessions)
	for i := uint32(0); i < nSessions; i++ {
		sessions[r.Uint64()] = true
	}
	nDedup := r.Uint32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot dedup header: %w", err)
	}
	var dedup [dedupShardCount]dedupShard
	for i := range dedup {
		dedup[i].wins = make(map[uint64]*dedupWindow)
	}
	for i := uint32(0); i < nDedup; i++ {
		id := r.Uint64()
		nEntries := r.Uint32()
		if err := r.Err(); err != nil {
			return fmt.Errorf("coord: corrupt snapshot dedup entry: %w", err)
		}
		win := &dedupWindow{results: make(map[uint64][]byte, nEntries)}
		for j := uint32(0); j < nEntries; j++ {
			seq := r.Uint64()
			result := r.Bytes32()
			if err := r.Err(); err != nil {
				return fmt.Errorf("coord: corrupt snapshot dedup result: %w", err)
			}
			win.store(seq, result)
		}
		dedup[id%dedupShardCount].wins[id] = win
	}
	nRanges := r.Uint32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot range header: %w", err)
	}
	ranges := make([]rangeState, 0, nRanges)
	for i := uint32(0); i < nRanges; i++ {
		rs := rangeState{
			rng:  placement.Range{Lo: r.Uint64(), Hi: r.Uint64()},
			dest: int(r.Uint32()),
		}
		rs.epoch = r.Uint64()
		rs.moved = r.Bool()
		if err := r.Err(); err != nil {
			return fmt.Errorf("coord: corrupt snapshot range marker: %w", err)
		}
		ranges = append(ranges, rs)
	}
	tree := znode.New()
	for r.Bool() {
		e := znode.WalkEntry{
			Path: r.String(),
			Data: r.Bytes32(),
			Stat: decodeStat(r),
			Seq:  r.Int64(),
		}
		if err := r.Err(); err != nil {
			return fmt.Errorf("coord: corrupt snapshot entry: %w", err)
		}
		if err := tree.RestoreEntry(e); err != nil {
			return fmt.Errorf("coord: restoring %q: %w", e.Path, err)
		}
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("coord: corrupt snapshot: %w", err)
	}
	// Exactly at end-of-stream: a trailing byte is a framing bug, and
	// this final read is where a checksum-validating reader reports a
	// mismatch instead of EOF.
	var tail [1]byte
	switch _, err := io.ReadFull(rd, tail[:]); err {
	case io.EOF:
	case nil:
		return errors.New("coord: snapshot has bytes past the encoded state")
	default:
		return fmt.Errorf("coord: corrupt snapshot: %w", err)
	}
	s.mu.Lock()
	s.nextSession = next
	s.sessions = sessions
	s.ranges = ranges
	s.tree = tree
	s.mu.Unlock()
	for i := range s.dedup {
		sh := &s.dedup[i]
		sh.mu.Lock()
		sh.wins = dedup[i].wins
		sh.mu.Unlock()
	}
	return nil
}
