package coord

import (
	"time"

	"repro/internal/coord/znode"
)

// Client is the coordination-service API DUFS programs against: the
// synchronous ZooKeeper-style operation set of a Session — single
// znode reads and writes, one-shot watches, the Sync barrier — plus
// two batched primitives that collapse DUFS's hot paths into single
// round trips: Multi (an atomic check/create/set/delete transaction,
// one ZAB proposal) and ChildrenData (a directory listing with every
// entry's data and stat, one read RPC instead of N+1). The interface
// is abstracted so that callers cannot tell one ensemble from many.
//
// Two implementations exist:
//
//   - *Session — a connection to a single ensemble (the paper's
//     configuration, §IV-D); every Multi is atomic and Atomic always
//     reports true;
//   - *shard.Router — a client-side fan-out over N independent
//     ensembles that partitions the znode namespace by
//     consistent-hashing each node's parent-directory path
//     (DESIGN.md §7, §8).
//
// The guarantees callers may rely on are those of a single session:
// a client always observes its own writes, and Sync establishes a
// barrier after which writes committed before the call are visible.
// Ordering between paths that live on different shards is NOT
// guaranteed by the Router; DUFS only needs per-path and
// per-directory ordering, which hashing by parent directory
// preserves. A Multi spanning shards is NOT atomic — consult Atomic
// before relying on all-or-nothing semantics, and fall back to an
// intent-logged protocol (core's cross-shard rename) when it reports
// false. DESIGN.md §8 states the full atomicity contract.
type Client interface {
	// ID returns the 64-bit session identifier minted by the
	// replicated state machine; DUFS uses it as the client half of new
	// FIDs.
	ID() uint64
	// Close terminates the session(s), expiring ephemeral nodes.
	Close() error

	// Create creates a znode, returning the created path (which
	// differs from the requested path for sequential modes).
	Create(path string, data []byte, mode znode.CreateMode) (string, error)
	// Get returns a znode's data and stat.
	Get(path string) ([]byte, znode.Stat, error)
	// Set replaces a znode's data; version -1 disables the check.
	Set(path string, data []byte, version int32) (znode.Stat, error)
	// Delete removes a childless znode; version -1 disables the check.
	Delete(path string, version int32) error
	// Exists reports whether the znode exists, with its stat.
	Exists(path string) (znode.Stat, bool, error)
	// Children returns the sorted child names of a znode.
	Children(path string) ([]string, error)

	// Multi applies the batch of check/create/set/delete operations as
	// one transaction: all-or-nothing when Atomic(paths...) holds for
	// the batch's paths, per-shard all-or-nothing otherwise (each
	// sub-batch commits or aborts independently, in first-appearance
	// order — see shard.Router.Multi for the exact contract). On abort
	// the failing op's result carries its error, every other op carries
	// ErrRolledBack, and the failing op's error is also returned.
	Multi(ops []Op) ([]OpResult, error)
	// ChildrenData returns the znode itself (first entry, named ".")
	// and every child with its data and stat, in one round trip —
	// the N+1-free readdir. Entries after "." are sorted by name.
	ChildrenData(path string) ([]ChildEntry, error)
	// Atomic reports whether a Multi touching exactly these paths
	// executes as a single atomic transaction. Always true for a
	// Session; true on a Router iff every path routes to one shard.
	Atomic(paths ...string) bool

	// GetW, ExistsW and ChildrenW are their unwatched counterparts
	// plus a one-shot watch delivered through PollEvents.
	GetW(path string) ([]byte, znode.Stat, error)
	ExistsW(path string) (znode.Stat, bool, error)
	ChildrenW(path string) ([]string, error)
	// PollEvents drains fired watches.
	PollEvents() ([]Event, error)
	// WaitEvent polls until an event arrives or the timeout expires.
	WaitEvent(timeout time.Duration) ([]Event, error)

	// Sync is the cross-client visibility barrier (ZooKeeper sync()).
	Sync() error
	// Status reports the service's view of itself, for tools and
	// tests.
	Status() (Status, error)
}

var _ Client = (*Session)(nil)
