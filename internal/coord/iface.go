package coord

import (
	"context"
	"time"

	"repro/internal/coord/znode"
)

// Client is the coordination-service API DUFS programs against: the
// ZooKeeper-style operation set of a Session — single znode reads and
// writes, one-shot watches, the Sync barrier — plus the batched
// primitives that collapse DUFS's hot paths into single round trips
// (Multi, ChildrenData), an ASYNCHRONOUS submission layer (Begin,
// BeginMulti, BeginChildrenData) that keeps many tagged operations in
// flight over one connection, and a PUSH-shaped event wait
// (WaitEvents) that parks on the server until a watch fires. The
// interface is abstracted so that callers cannot tell one ensemble
// from many.
//
// Every operation comes in two forms: a context-aware primary
// (CreateCtx, GetCtx, …) whose context bounds the whole call including
// failover retries, and the original synchronous signature, kept as a
// thin wrapper over the primary with the background context so the
// paper-faithful call sites keep compiling unchanged.
//
// Two implementations exist:
//
//   - *Session — a connection to a single ensemble (the paper's
//     configuration, §IV-D); every Multi is atomic and Atomic always
//     reports true;
//   - *shard.Router — a client-side fan-out over N independent
//     ensembles that partitions the znode namespace by
//     consistent-hashing each node's parent-directory path
//     (DESIGN.md §7, §8).
//
// The guarantees callers may rely on are those of a single session:
// a client always observes its own writes, and Sync establishes a
// barrier after which writes committed before the call are visible.
// Asynchronous submissions are mutually UNORDERED — two Begin calls
// race like two synchronous calls from different goroutines; callers
// needing order chain futures or use Multi (DESIGN.md §10). Ordering
// between paths that live on different shards is NOT guaranteed by the
// Router; DUFS only needs per-path and per-directory ordering, which
// hashing by parent directory preserves. A Multi spanning shards is
// NOT atomic — consult Atomic before relying on all-or-nothing
// semantics, and fall back to an intent-logged protocol (core's
// cross-shard rename) when it reports false. DESIGN.md §8 states the
// full atomicity contract.
type Client interface {
	// ID returns the 64-bit session identifier minted by the
	// replicated state machine; DUFS uses it as the client half of new
	// FIDs.
	ID() uint64
	// Close terminates the session(s), expiring ephemeral nodes.
	Close() error

	// CreateCtx creates a znode, returning the created path (which
	// differs from the requested path for sequential modes).
	CreateCtx(ctx context.Context, path string, data []byte, mode znode.CreateMode) (string, error)
	// GetCtx returns a znode's data and stat.
	GetCtx(ctx context.Context, path string) ([]byte, znode.Stat, error)
	// SetCtx replaces a znode's data; version -1 disables the check.
	SetCtx(ctx context.Context, path string, data []byte, version int32) (znode.Stat, error)
	// DeleteCtx removes a childless znode; version -1 disables the
	// check.
	DeleteCtx(ctx context.Context, path string, version int32) error
	// ExistsCtx reports whether the znode exists, with its stat.
	ExistsCtx(ctx context.Context, path string) (znode.Stat, bool, error)
	// ChildrenCtx returns the sorted child names of a znode.
	ChildrenCtx(ctx context.Context, path string) ([]string, error)

	// Create/Get/Set/Delete/Exists/Children are the synchronous
	// wrappers: the *Ctx primaries with the background context.
	Create(path string, data []byte, mode znode.CreateMode) (string, error)
	Get(path string) ([]byte, znode.Stat, error)
	Set(path string, data []byte, version int32) (znode.Stat, error)
	Delete(path string, version int32) error
	Exists(path string) (znode.Stat, bool, error)
	Children(path string) ([]string, error)

	// MultiCtx applies the batch of check/create/set/delete operations
	// as one transaction: all-or-nothing when Atomic(paths...) holds
	// for the batch's paths, per-shard all-or-nothing otherwise (each
	// sub-batch commits or aborts independently, in first-appearance
	// order — see shard.Router.Multi for the exact contract). On abort
	// the failing op's result carries its error, every other op carries
	// ErrRolledBack, and the failing op's error is also returned.
	MultiCtx(ctx context.Context, ops []Op) ([]OpResult, error)
	// Multi is MultiCtx with the background context.
	Multi(ops []Op) ([]OpResult, error)
	// ChildrenDataCtx returns the znode itself (first entry, named ".")
	// and every child with its data and stat, in one round trip — the
	// N+1-free readdir. Entries after "." are sorted by name.
	ChildrenDataCtx(ctx context.Context, path string) ([]ChildEntry, error)
	// ChildrenData is ChildrenDataCtx with the background context.
	ChildrenData(path string) ([]ChildEntry, error)
	// Atomic reports whether a Multi touching exactly these paths
	// executes as a single atomic transaction. Always true for a
	// Session; true on a Router iff every path routes to one shard.
	Atomic(paths ...string) bool

	// Begin submits one operation asynchronously: it returns
	// immediately with a Future and keeps the request in flight
	// alongside every other outstanding submission, multiplexed over
	// the session's connection. Supported kinds: OpCreate, OpSet,
	// OpDelete, OpCheck, OpSync. Futures are mutually unordered. A
	// context cancelled mid-flight resolves the future with ctx.Err()
	// without disturbing the session.
	Begin(ctx context.Context, op Op) *Future
	// BeginMulti is Begin for a whole atomic batch (results via
	// Future.Results).
	BeginMulti(ctx context.Context, ops []Op) *Future
	// BeginChildrenData is Begin for a whole-directory listing
	// (results via Future.Entries).
	BeginChildrenData(ctx context.Context, path string) *Future

	// GetW, ExistsW and ChildrenW are their unwatched counterparts
	// plus a one-shot watch delivered through WaitEvents/PollEvents.
	GetW(path string) ([]byte, znode.Stat, error)
	ExistsW(path string) (znode.Stat, bool, error)
	ChildrenW(path string) ([]string, error)
	// WaitEvents parks on the service until a watch fires, maxWait
	// expires (nil, nil), or ctx ends. It is push delivery: an idle
	// caller issues no polling traffic — one parked request per
	// maxWait window. An error return means events may have been
	// missed (failover); re-register watches.
	WaitEvents(ctx context.Context, maxWait time.Duration) ([]Event, error)
	// PollEvents drains fired watches without blocking (pull; tools
	// and tests).
	PollEvents() ([]Event, error)
	// WaitEvent is the synchronous WaitEvents wrapper.
	WaitEvent(timeout time.Duration) ([]Event, error)

	// SyncCtx is the cross-client visibility barrier (ZooKeeper
	// sync()).
	SyncCtx(ctx context.Context) error
	// Sync is SyncCtx with the background context.
	Sync() error
	// Status reports the service's view of itself, for tools and
	// tests.
	Status() (Status, error)
}

var _ Client = (*Session)(nil)
