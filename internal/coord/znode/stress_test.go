package znode

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersSingleWriter is the striped-lock stress test:
// many readers hammer Get/Exists/Children/ChildrenData on subtrees the
// writer is mutating (overlapping), on subtrees it never touches
// (disjoint — these must never observe contention artifacts), and on
// "/" (which crosses every stripe), while one writer runs a
// deterministic Create/Set/Delete/Multi script, rollbacks included.
// Run with -race this is the data-race proof for the striping scheme;
// the assertions pin the semantics:
//
//   - per-path Mzxid never goes backwards under a reader's feet
//     (writes are applied in zxid order, so a torn read would show up
//     as a regression),
//   - a committed Multi is all-or-nothing: readers never see exactly
//     one of the pair of nodes it creates together... (checked via the
//     paired-node invariant below),
//   - the final tree fingerprint equals the same script applied
//     serially to a private tree — striping changed locking, not
//     outcomes.
func TestConcurrentReadersSingleWriter(t *testing.T) {
	const (
		readers  = 8
		writeOps = 2000
	)
	live := New()
	expected := New() // same script, applied serially afterwards

	// Static disjoint subtree the writer never touches.
	for _, tr := range []*Tree{live, expected} {
		if _, err := tr.Create("/static", []byte("s"), ModePersistent, 0, 1, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			p := fmt.Sprintf("/static/n%d", i)
			if _, err := tr.Create(p, []byte("x"), ModePersistent, 0, uint64(2+i), 1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tr.Create("/hot", nil, ModePersistent, 0, 20, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Create("/pair", nil, ModePersistent, 0, 21, 1); err != nil {
			t.Fatal(err)
		}
	}

	// script applies the deterministic write mix to one tree. The same
	// zxids are used on both trees, so outcomes must be identical.
	script := func(tr *Tree) {
		zxid := uint64(100)
		for i := 0; i < writeOps; i++ {
			zxid++
			switch i % 5 {
			case 0:
				tr.Create(fmt.Sprintf("/hot/k%d", i%7), []byte("v"), ModePersistent, 0, zxid, 1)
			case 1:
				tr.Set(fmt.Sprintf("/hot/k%d", i%7), []byte(fmt.Sprintf("v%d", i)), -1, zxid, 1)
			case 2:
				tr.Delete(fmt.Sprintf("/hot/k%d", (i+3)%7), -1, zxid)
			case 3:
				// A Multi that commits: two creates that stand or fall
				// together, replacing last round's pair.
				tr.Multi([]MultiOp{
					{Kind: MultiDelete, Path: "/pair/x", Version: -1},
					{Kind: MultiDelete, Path: "/pair/y", Version: -1},
				}, 0, zxid, 1)
				zxid++
				tr.Multi([]MultiOp{
					{Kind: MultiCreate, Path: "/pair/x", Data: []byte("x")},
					{Kind: MultiCreate, Path: "/pair/y", Data: []byte("y")},
				}, 0, zxid, 1)
			case 4:
				// A Multi that aborts mid-batch: the failing check rolls
				// back the create before it — readers must never see
				// /pair/orphan.
				tr.Multi([]MultiOp{
					{Kind: MultiCreate, Path: "/pair/orphan", Data: []byte("o")},
					{Kind: MultiCheck, Path: "/pair/never-exists", Version: -1},
				}, 0, zxid, 1)
			}
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lastMzxid := map[string]uint64{}
			for !stop.Load() {
				// Overlapping: the subtree under mutation.
				for k := 0; k < 7; k++ {
					p := fmt.Sprintf("/hot/k%d", k)
					if _, stat, err := live.Get(p); err == nil {
						if stat.Mzxid < lastMzxid[p] {
							errs <- fmt.Errorf("reader %d: %s Mzxid went backwards: %d -> %d", id, p, lastMzxid[p], stat.Mzxid)
							return
						}
						lastMzxid[p] = stat.Mzxid
					}
				}
				if _, err := live.Children("/hot"); err != nil {
					errs <- fmt.Errorf("reader %d: Children(/hot): %v", id, err)
					return
				}
				// Multi atomicity: the aborted batch's orphan must never
				// be visible.
				if _, ok := live.Exists("/pair/orphan"); ok {
					errs <- fmt.Errorf("reader %d: saw rolled-back /pair/orphan", id)
					return
				}
				// Disjoint: a subtree no writer touches — content frozen.
				if kids, err := live.Children("/static"); err != nil || len(kids) != 8 {
					errs <- fmt.Errorf("reader %d: /static = %v (%v)", id, kids, err)
					return
				}
				if _, _, err := live.ChildrenData("/static"); err != nil {
					errs <- fmt.Errorf("reader %d: ChildrenData(/static): %v", id, err)
					return
				}
				// Cross-stripe: the root listing touches every stripe.
				if kids, err := live.Children("/"); err != nil || len(kids) != 3 {
					errs <- fmt.Errorf("reader %d: Children(/) = %v (%v)", id, kids, err)
					return
				}
			}
		}(r)
	}

	script(live)
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	script(expected)
	if a, b := live.Fingerprint(), expected.Fingerprint(); a != b {
		t.Fatalf("concurrent and serial application diverged: fingerprint %x vs %x", a, b)
	}
	if a, b := live.Count(), expected.Count(); a != b {
		t.Fatalf("node counts diverged: %d vs %d", a, b)
	}
}

// TestConcurrentStructuralRootOps races depth-1 creates/deletes (which
// take every stripe) against readers walking through the root — the
// all-stripes escalation path that keeps a root walk safe for
// single-stripe holders.
func TestConcurrentStructuralRootOps(t *testing.T) {
	tr := New()
	if _, err := tr.Create("/base", nil, ModePersistent, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				tr.Get("/base")
				tr.Children("/")
				tr.Exists("/flip")
			}
		}()
	}
	zxid := uint64(10)
	for i := 0; i < 500; i++ {
		zxid++
		if i%2 == 0 {
			if _, err := tr.Create("/flip", nil, ModePersistent, 0, zxid, 1); err != nil {
				t.Fatal(err)
			}
		} else if err := tr.Delete("/flip", -1, zxid); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
}
