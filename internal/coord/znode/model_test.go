package znode

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestModelBasedRandomOps drives a long pseudo-random operation
// sequence into the Tree and into a trivially-correct map-based
// reference model, comparing every result and the final state. This is
// the deterministic-state-machine property the replication layer
// depends on: any divergence here would silently fork replicas.
func TestModelBasedRandomOps(t *testing.T) {
	tree := New()
	ref := newRefModel()
	rng := rand.New(rand.NewSource(42))

	paths := []string{"/a", "/b", "/a/x", "/a/y", "/b/z", "/a/x/deep"}
	var zxid uint64

	for i := 0; i < 5000; i++ {
		zxid++
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(5) {
		case 0: // create
			data := []byte(fmt.Sprintf("d%d", rng.Intn(3)))
			_, terr := tree.Create(p, data, ModePersistent, 0, zxid, int64(zxid))
			rerr := ref.create(p, string(data))
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("op %d create %s: tree err=%v ref err=%v", i, p, terr, rerr)
			}
		case 1: // delete
			terr := tree.Delete(p, -1, zxid)
			rerr := ref.delete(p)
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("op %d delete %s: tree err=%v ref err=%v", i, p, terr, rerr)
			}
		case 2: // set
			data := []byte(fmt.Sprintf("v%d", rng.Intn(3)))
			_, terr := tree.Set(p, data, -1, zxid, int64(zxid))
			rerr := ref.set(p, string(data))
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("op %d set %s: tree err=%v ref err=%v", i, p, terr, rerr)
			}
		case 3: // get
			data, _, terr := tree.Get(p)
			val, rerr := ref.get(p)
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("op %d get %s: tree err=%v ref err=%v", i, p, terr, rerr)
			}
			if terr == nil && string(data) != val {
				t.Fatalf("op %d get %s: tree=%q ref=%q", i, p, data, val)
			}
		case 4: // children
			kids, terr := tree.Children(p)
			rkids, rerr := ref.children(p)
			if (terr == nil) != (rerr == nil) {
				t.Fatalf("op %d children %s: tree err=%v ref err=%v", i, p, terr, rerr)
			}
			if terr == nil && strings.Join(kids, ",") != strings.Join(rkids, ",") {
				t.Fatalf("op %d children %s: tree=%v ref=%v", i, p, kids, rkids)
			}
		}
	}

	// Final structural agreement.
	if int64(len(ref.nodes)) != tree.Count() {
		t.Fatalf("final count: tree=%d ref=%d", tree.Count(), len(ref.nodes))
	}
	tree.Walk(func(e WalkEntry) {
		val, err := ref.get(e.Path)
		if err != nil {
			t.Fatalf("tree has %s, ref does not", e.Path)
		}
		if string(e.Data) != val {
			t.Fatalf("data mismatch at %s: tree=%q ref=%q", e.Path, e.Data, val)
		}
	})
}

// refModel is the obviously-correct reference: a flat map of paths.
type refModel struct {
	nodes map[string]string
}

func newRefModel() *refModel {
	return &refModel{nodes: map[string]string{}}
}

func parentOf(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/"
	}
	return p[:i]
}

func (m *refModel) hasChildren(p string) bool {
	prefix := p + "/"
	for q := range m.nodes {
		if strings.HasPrefix(q, prefix) {
			return true
		}
	}
	return false
}

func (m *refModel) create(p, data string) error {
	if _, ok := m.nodes[p]; ok {
		return fmt.Errorf("exists")
	}
	if parent := parentOf(p); parent != "/" {
		if _, ok := m.nodes[parent]; !ok {
			return fmt.Errorf("no parent")
		}
	}
	m.nodes[p] = data
	return nil
}

func (m *refModel) delete(p string) error {
	if _, ok := m.nodes[p]; !ok {
		return fmt.Errorf("no node")
	}
	if m.hasChildren(p) {
		return fmt.Errorf("not empty")
	}
	delete(m.nodes, p)
	return nil
}

func (m *refModel) set(p, data string) error {
	if _, ok := m.nodes[p]; !ok {
		return fmt.Errorf("no node")
	}
	m.nodes[p] = data
	return nil
}

func (m *refModel) get(p string) (string, error) {
	v, ok := m.nodes[p]
	if !ok {
		return "", fmt.Errorf("no node")
	}
	return v, nil
}

func (m *refModel) children(p string) ([]string, error) {
	if p != "/" {
		if _, ok := m.nodes[p]; !ok {
			return nil, fmt.Errorf("no node")
		}
	}
	var out []string
	prefix := p + "/"
	if p == "/" {
		prefix = "/"
	}
	for q := range m.nodes {
		if !strings.HasPrefix(q, prefix) {
			continue
		}
		rest := q[len(prefix):]
		if rest != "" && !strings.Contains(rest, "/") {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out, nil
}
