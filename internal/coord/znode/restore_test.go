package znode

import (
	"testing"
)

// Walk + RestoreEntry must reproduce the exact tree, including
// NumChildren. A previous version incremented every parent's count on
// restore even though non-root entries already carry their exact
// NumChildren, silently doubling the count for every interior node
// (Fingerprint does not hash NumChildren, so only a direct stat
// comparison catches it).
func TestRestoreEntryPreservesNumChildren(t *testing.T) {
	src := New()
	mustCreate := func(tr *Tree, p string) {
		t.Helper()
		if _, err := tr.Create(p, []byte("d"), ModePersistent, 0, 1, 1); err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
	}
	mustCreate(src, "/a")
	mustCreate(src, "/a/b")
	mustCreate(src, "/a/c")
	mustCreate(src, "/a/b/d")
	mustCreate(src, "/e")

	dst := New()
	src.Walk(func(e WalkEntry) {
		if err := dst.RestoreEntry(e); err != nil {
			t.Fatalf("restore %s: %v", e.Path, err)
		}
	})
	for _, p := range []string{"/", "/a", "/a/b", "/a/c", "/a/b/d", "/e"} {
		want, ok := src.Exists(p)
		if !ok {
			t.Fatalf("source lost %s", p)
		}
		got, ok := dst.Exists(p)
		if !ok {
			t.Fatalf("restore lost %s", p)
		}
		if got.NumChildren != want.NumChildren {
			t.Fatalf("%s: NumChildren = %d after restore, want %d", p, got.NumChildren, want.NumChildren)
		}
		// The root has no WalkEntry, so only its child count (not its
		// Cversion/Mzxid history) survives a restore.
		if p != "/" && got != want {
			t.Fatalf("%s: stat %+v after restore, want %+v", p, got, want)
		}
	}
}

func TestPutEntry(t *testing.T) {
	tr := New()
	if _, err := tr.Create("/keep", []byte("x"), ModePersistent, 0, 1, 1); err != nil {
		t.Fatal(err)
	}

	// Fresh create via an authoritative entry, parents-first.
	dirStat := Stat{Czxid: 5, Mzxid: 9, Ctime: 100, Mtime: 200, Version: 3, Cversion: 7, NumChildren: 99, DataLength: 3}
	if err := tr.PutEntry(WalkEntry{Path: "/mig", Data: []byte("dir"), Stat: dirStat, Seq: 4}, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.PutEntry(WalkEntry{Path: "/mig/f1", Data: []byte("one"), Stat: Stat{Czxid: 6, Mzxid: 6}}, true); err != nil {
		t.Fatal(err)
	}
	got, ok := tr.Exists("/mig")
	if !ok {
		t.Fatal("/mig missing")
	}
	// NumChildren is derived from local structure, not trusted from the
	// entry (which claimed 99).
	if got.NumChildren != 1 {
		t.Fatalf("/mig NumChildren = %d, want 1", got.NumChildren)
	}
	if got.Mzxid != 9 || got.Version != 3 || got.Cversion != 7 {
		t.Fatalf("/mig stat not preserved: %+v", got)
	}

	// Stub semantics: overwrite=false leaves an existing node untouched.
	if err := tr.PutEntry(WalkEntry{Path: "/keep", Data: []byte("clobbered")}, false); err != nil {
		t.Fatal(err)
	}
	data, _, err := tr.Get("/keep")
	if err != nil || string(data) != "x" {
		t.Fatalf("stub put clobbered /keep: %q, %v", data, err)
	}

	// Overwrite replaces data and stat but keeps local children.
	if err := tr.PutEntry(WalkEntry{Path: "/mig", Data: []byte("dir2"), Stat: Stat{Czxid: 5, Mzxid: 12, Version: 4}, Seq: 8}, true); err != nil {
		t.Fatal(err)
	}
	got, _ = tr.Exists("/mig")
	if got.NumChildren != 1 || got.Mzxid != 12 || got.Version != 4 {
		t.Fatalf("overwrite stat wrong: %+v", got)
	}
	if _, ok := tr.Exists("/mig/f1"); !ok {
		t.Fatal("overwrite dropped existing child")
	}

	// Orphan entry (missing parent) is rejected.
	if err := tr.PutEntry(WalkEntry{Path: "/nope/child"}, true); err != ErrNoParent {
		t.Fatalf("orphan put: err = %v, want ErrNoParent", err)
	}
}
