package znode

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func mustCreate(t *testing.T, tr *Tree, path string, data []byte) string {
	t.Helper()
	created, err := tr.Create(path, data, ModePersistent, 0, 1, 1)
	if err != nil {
		t.Fatalf("Create(%q): %v", path, err)
	}
	return created
}

func TestValidatePath(t *testing.T) {
	good := []string{"/", "/a", "/a/b", "/dufs/fs/dir1"}
	for _, p := range good {
		if err := ValidatePath(p); err != nil {
			t.Errorf("ValidatePath(%q) = %v, want nil", p, err)
		}
	}
	bad := []string{"", "a", "/a/", "//", "/a//b", "/a/./b", "/a/../b"}
	for _, p := range bad {
		if err := ValidatePath(p); err == nil {
			t.Errorf("ValidatePath(%q) = nil, want error", p)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, parent, name string }{
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		p, n := SplitPath(c.in)
		if p != c.parent || n != c.name {
			t.Errorf("SplitPath(%q) = (%q,%q), want (%q,%q)", c.in, p, n, c.parent, c.name)
		}
	}
}

func TestCreateGetRoundTrip(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/dir", []byte("D"))
	data, stat, err := tr.Get("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "D" {
		t.Fatalf("data = %q", data)
	}
	if stat.Czxid != 1 || stat.Version != 0 || stat.DataLength != 1 {
		t.Fatalf("stat = %+v", stat)
	}
}

func TestCreateRequiresParent(t *testing.T) {
	tr := New()
	if _, err := tr.Create("/a/b", nil, ModePersistent, 0, 1, 1); !errors.Is(err, ErrNoParent) {
		t.Fatalf("err = %v, want ErrNoParent", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/a", nil)
	if _, err := tr.Create("/a", nil, ModePersistent, 0, 2, 2); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v, want ErrNodeExists", err)
	}
}

func TestSetBumpsVersionAndChecksIt(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/f", []byte("v0"))
	stat, err := tr.Set("/f", []byte("v1"), 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Version != 1 || stat.Mzxid != 2 {
		t.Fatalf("stat after set = %+v", stat)
	}
	if _, err := tr.Set("/f", []byte("v2"), 0, 3, 3); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set err = %v, want ErrBadVersion", err)
	}
	if _, err := tr.Set("/f", []byte("v2"), -1, 3, 3); err != nil {
		t.Fatalf("unconditional set failed: %v", err)
	}
}

func TestDeleteSemantics(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/d", nil)
	mustCreate(t, tr, "/d/c", nil)
	if err := tr.Delete("/d", -1, 5); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty err = %v, want ErrNotEmpty", err)
	}
	if err := tr.Delete("/d/c", 99, 5); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale delete err = %v, want ErrBadVersion", err)
	}
	if err := tr.Delete("/d/c", -1, 5); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete("/d", 0, 6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Get("/d"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("get deleted err = %v, want ErrNoNode", err)
	}
	if tr.Count() != 0 {
		t.Fatalf("Count = %d, want 0", tr.Count())
	}
}

func TestRootIsProtected(t *testing.T) {
	tr := New()
	if err := tr.Delete("/", -1, 1); !errors.Is(err, ErrRootReadOnly) {
		t.Fatalf("delete root err = %v", err)
	}
	if _, err := tr.Set("/", nil, -1, 1, 1); !errors.Is(err, ErrRootReadOnly) {
		t.Fatalf("set root err = %v", err)
	}
	if _, err := tr.Create("/", nil, ModePersistent, 0, 1, 1); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("create root err = %v", err)
	}
}

func TestChildrenSortedAndCounted(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/p", nil)
	for _, name := range []string{"c", "a", "b"} {
		mustCreate(t, tr, "/p/"+name, nil)
	}
	kids, err := tr.Children("/p")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(kids, ",") != "a,b,c" {
		t.Fatalf("children = %v", kids)
	}
	_, stat, _ := tr.Get("/p")
	if stat.NumChildren != 3 || stat.Cversion != 3 {
		t.Fatalf("parent stat = %+v", stat)
	}
}

func TestSequentialCreate(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/q", nil)
	first, err := tr.Create("/q/item-", nil, ModeSequential, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tr.Create("/q/item-", nil, ModeSequential, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if first != "/q/item-0000000000" || second != "/q/item-0000000001" {
		t.Fatalf("sequential names = %q, %q", first, second)
	}
}

func TestEphemeralLifecycle(t *testing.T) {
	tr := New()
	created, err := tr.Create("/lock", nil, ModeEphemeral, 42, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Create(created+"/child", nil, ModePersistent, 0, 2, 2); err == nil {
		t.Fatal("created a child under an ephemeral node")
	}
	stat, ok := tr.Exists(created)
	if !ok || stat.EphemeralOwner != 42 {
		t.Fatalf("stat = %+v ok=%v", stat, ok)
	}
	deleted := tr.ExpireSession(42, 3)
	if len(deleted) != 1 || deleted[0] != "/lock" {
		t.Fatalf("expired = %v", deleted)
	}
	if _, ok := tr.Exists("/lock"); ok {
		t.Fatal("ephemeral survived session expiry")
	}
}

func TestExpireSessionNoEphemerals(t *testing.T) {
	tr := New()
	if got := tr.ExpireSession(7, 1); len(got) != 0 {
		t.Fatalf("expired = %v, want none", got)
	}
}

func TestWalkRestoreRoundTrip(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/a", []byte("1"))
	mustCreate(t, tr, "/a/b", []byte("2"))
	mustCreate(t, tr, "/a/b/c", []byte("3"))
	mustCreate(t, tr, "/z", nil)
	if _, err := tr.Create("/a/s-", nil, ModeSequential, 0, 9, 9); err != nil {
		t.Fatal(err)
	}

	restored := New()
	tr.Walk(func(e WalkEntry) {
		if err := restored.RestoreEntry(e); err != nil {
			t.Fatalf("RestoreEntry(%q): %v", e.Path, err)
		}
	})
	if tr.Fingerprint() != restored.Fingerprint() {
		t.Fatal("fingerprints differ after walk/restore round trip")
	}
	if tr.Count() != restored.Count() || tr.DataBytes() != restored.DataBytes() {
		t.Fatal("counters differ after restore")
	}
	// Sequence counters must survive so post-restore sequential names
	// do not collide.
	p1, err := tr.Create("/a/s-", nil, ModeSequential, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := restored.Create("/a/s-", nil, ModeSequential, 0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("sequential names diverge after restore: %q vs %q", p1, p2)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a, b := New(), New()
	mustCreate(t, a, "/x", []byte("1"))
	mustCreate(t, b, "/x", []byte("1"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical trees fingerprint differently")
	}
	if _, err := b.Set("/x", []byte("2"), -1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("diverged trees fingerprint identically")
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/base", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/base/n%d-%d", w, i)
				if _, err := tr.Create(path, []byte("x"), ModePersistent, 0, uint64(i), int64(i)); err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, _ = tr.Children("/base")
				_, _ = tr.Exists("/base")
			}
		}()
	}
	wg.Wait()
	if tr.Count() != 4*200+1 {
		t.Fatalf("Count = %d, want %d", tr.Count(), 4*200+1)
	}
}

func TestDataBytesAccounting(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/a", []byte("12345"))
	if tr.DataBytes() != 5 {
		t.Fatalf("DataBytes = %d, want 5", tr.DataBytes())
	}
	if _, err := tr.Set("/a", []byte("12"), -1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if tr.DataBytes() != 2 {
		t.Fatalf("DataBytes after set = %d, want 2", tr.DataBytes())
	}
	if err := tr.Delete("/a", -1, 3); err != nil {
		t.Fatal(err)
	}
	if tr.DataBytes() != 0 {
		t.Fatalf("DataBytes after delete = %d, want 0", tr.DataBytes())
	}
}

func TestPropertyCreateThenGetSeesData(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/p", nil)
	i := 0
	if err := quick.Check(func(data []byte) bool {
		i++
		path := fmt.Sprintf("/p/n%d", i)
		if _, err := tr.Create(path, data, ModePersistent, 0, uint64(i), int64(i)); err != nil {
			return false
		}
		got, _, err := tr.Get(path)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for j := range data {
			if got[j] != data[j] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGetCopiesData(t *testing.T) {
	tr := New()
	mustCreate(t, tr, "/a", []byte("abc"))
	data, _, _ := tr.Get("/a")
	data[0] = 'Z'
	again, _, _ := tr.Get("/a")
	if string(again) != "abc" {
		t.Fatal("Get returned aliased data")
	}
}
