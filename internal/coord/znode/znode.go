// Package znode implements the hierarchical in-memory namespace of the
// coordination service — the equivalent of ZooKeeper's znode tree
// (paper §II-C).
//
// Znodes are addressed by slash-separated absolute paths. Each znode
// carries a custom data field (DUFS stores the entry type and FID
// there, paper §IV-D), standard stat fields (creation/modification
// zxids and times, data version, child count) and may be ephemeral
// (bound to a session) or sequential (server appends a monotonic
// counter to the name).
//
// Tree is purely a state machine: every mutation is applied by the
// replication layer (internal/coord/zab) in commit order, identically
// on every server, which is what makes the replicas consistent. Tree
// itself is safe for concurrent use so that read requests can be
// served locally while commits apply.
package znode

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Errors mirror the ZooKeeper client error codes DUFS depends on.
var (
	ErrNoNode       = errors.New("znode: no such node")
	ErrNodeExists   = errors.New("znode: node already exists")
	ErrNotEmpty     = errors.New("znode: node has children")
	ErrBadVersion   = errors.New("znode: version mismatch")
	ErrBadPath      = errors.New("znode: invalid path")
	ErrNoParent     = errors.New("znode: parent does not exist")
	ErrRootReadOnly = errors.New("znode: cannot modify the root")
	// ErrRolledBack marks an operation of a Multi batch that did not
	// cause the failure itself but was undone (or never attempted)
	// because a sibling operation failed — ZooKeeper's multi() contract.
	ErrRolledBack = errors.New("znode: rolled back by failed transaction")
)

// Stat is the metadata block attached to every znode, mirroring the
// ZooKeeper stat structure fields DUFS reads (paper §IV-D: "standard
// fields include Znode creation time, list of children Znodes, etc.").
type Stat struct {
	Czxid          uint64 // zxid of the transaction that created the node
	Mzxid          uint64 // zxid of the last modification
	Ctime          int64  // creation time, UnixNano, as provided by the leader
	Mtime          int64  // last-modification time, UnixNano
	Version        int32  // data version, bumped by Set
	Cversion       int32  // child version, bumped by child create/delete
	NumChildren    int32
	DataLength     int32
	EphemeralOwner uint64 // session ID when ephemeral, else 0
}

// CreateMode selects znode flavor at creation.
type CreateMode uint8

// Create modes. Sequential nodes get a 10-digit zero-padded counter
// (per parent) appended to the requested name, like ZooKeeper.
const (
	ModePersistent CreateMode = iota
	ModeEphemeral
	ModeSequential
	ModeEphemeralSequential
)

// IsEphemeral reports whether the mode binds the node to a session.
func (m CreateMode) IsEphemeral() bool {
	return m == ModeEphemeral || m == ModeEphemeralSequential
}

// IsSequential reports whether the server appends a sequence number.
func (m CreateMode) IsSequential() bool {
	return m == ModeSequential || m == ModeEphemeralSequential
}

type node struct {
	name     string
	data     []byte
	stat     Stat
	children map[string]*node
	nextSeq  int64 // per-parent sequence counter for sequential children
}

// stripeCount is the number of lock stripes guarding the tree. Each
// top-level subtree (first path component) hashes to one stripe, so
// reads and writes on disjoint subtrees never touch the same mutex.
// Power of two, sized well past the core counts this repo targets.
const stripeCount = 32

// stripe is one padded lock so neighbouring stripes do not share a
// cache line (an RWMutex is 24 bytes; pad to 64).
type stripe struct {
	mu sync.RWMutex
	_  [40]byte
}

// Tree is the znode namespace. The zero value is not usable; call New.
//
// Concurrency scheme: the single tree RWMutex is replaced by
// stripeCount reader/writer stripes keyed by the first path component.
// Every operation on a path under "/x/..." takes exactly the stripe of
// "x", so operations on disjoint top-level subtrees proceed fully in
// parallel. Structural changes to the root itself — create or delete
// of a depth-1 node, which mutate the root's child map and stat — take
// every stripe in write mode; conversely, any operation that walks
// through the root holds at least one stripe, so it can never observe
// the root's child map mid-write. Multi-stripe acquisition (Multi
// batches, whole-tree reads) is always in ascending stripe order,
// which makes deadlock impossible. The ephemeral-session index has its
// own mutex, ordered strictly after stripe locks.
type Tree struct {
	stripes [stripeCount]stripe
	root    *node
	// emu guards ephemerals. Lock order: stripe locks first, emu last.
	emu sync.Mutex
	// ephemerals indexes ephemeral node paths by owning session so a
	// session expiry can delete them in one sweep.
	ephemerals map[uint64]map[string]bool
	nodes      atomic.Int64 // total node count, excluding root
	dataBytes  atomic.Int64 // sum of data field lengths
}

// New returns an empty tree containing only the root "/".
func New() *Tree {
	return &Tree{
		root:       &node{name: "/", children: make(map[string]*node)},
		ephemerals: make(map[uint64]map[string]bool),
	}
}

// stripeFor maps a path to the index of the stripe guarding its
// top-level subtree, or -1 when the operation must hold every stripe
// (the root itself). The caller has validated that path is absolute.
func stripeFor(path string) int {
	if len(path) <= 1 {
		return -1
	}
	seg := path[1:]
	if end := strings.IndexByte(seg, '/'); end >= 0 {
		seg = seg[:end]
	}
	h := uint32(2166136261)
	for i := 0; i < len(seg); i++ {
		h = (h ^ uint32(seg[i])) * 16777619
	}
	return int(h % stripeCount)
}

// StripeMaskForWrite computes the lock coverage a write at path (wire
// form, possibly invalid — never validated here) would take, for
// schedulers that run path-disjoint transactions concurrently.
// structural marks creates and deletes, whose depth-1 form mutates the
// root's child map and therefore locks every stripe. It returns
// all=true when the write acquires every stripe (root or invalid path,
// or structural depth-1); otherwise a one-bit mask of the stripe
// guarding path's top-level subtree. The rule mirrors lockWrite and
// multiLockSet exactly, so a scheduler serializing on overlapping
// masks serializes whenever the tree's own locking would.
func StripeMaskForWrite(path []byte, structural bool) (mask uint32, all bool) {
	if len(path) < 2 || path[0] != '/' {
		return 0, true
	}
	seg := path[1:]
	depth1 := true
	for i := 0; i < len(seg); i++ {
		if seg[i] == '/' {
			seg = seg[:i]
			depth1 = false
			break
		}
	}
	if depth1 && structural {
		return 0, true
	}
	h := uint32(2166136261)
	for i := 0; i < len(seg); i++ {
		h = (h ^ uint32(seg[i])) * 16777619
	}
	return 1 << (h % stripeCount), false
}

func (t *Tree) lockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.Lock()
	}
}

func (t *Tree) unlockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.Unlock()
	}
}

func (t *Tree) rlockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.RLock()
	}
}

func (t *Tree) runlockAll() {
	for i := range t.stripes {
		t.stripes[i].mu.RUnlock()
	}
}

// lockWrite acquires write coverage for a mutation at path: every
// stripe when the mutation is structural at the root (rootStructural,
// or path is the root itself), else the single stripe of path's
// subtree. It returns the stripe index to hand back to unlockWrite.
func (t *Tree) lockWrite(path string, rootStructural bool) int {
	s := -1
	if !rootStructural {
		s = stripeFor(path)
	}
	if s < 0 {
		t.lockAll()
	} else {
		t.stripes[s].mu.Lock()
	}
	return s
}

func (t *Tree) unlockWrite(s int) {
	if s < 0 {
		t.unlockAll()
	} else {
		t.stripes[s].mu.Unlock()
	}
}

// rlockPath acquires read coverage for path (all stripes for the root,
// whose child listing spans every subtree).
func (t *Tree) rlockPath(path string) int {
	s := stripeFor(path)
	if s < 0 {
		t.rlockAll()
	} else {
		t.stripes[s].mu.RLock()
	}
	return s
}

func (t *Tree) runlockPath(s int) {
	if s < 0 {
		t.runlockAll()
	} else {
		t.stripes[s].mu.RUnlock()
	}
}

// lockMask acquires the write locks named by mask in ascending stripe
// order — the same order lockAll uses, so the two can never deadlock.
func (t *Tree) lockMask(mask uint32) {
	for i := 0; i < stripeCount; i++ {
		if mask&(1<<uint(i)) != 0 {
			t.stripes[i].mu.Lock()
		}
	}
}

func (t *Tree) unlockMask(mask uint32) {
	for i := 0; i < stripeCount; i++ {
		if mask&(1<<uint(i)) != 0 {
			t.stripes[i].mu.Unlock()
		}
	}
}

// ValidatePath checks that p is a well-formed absolute znode path.
func ValidatePath(p string) error {
	if p == "" || p[0] != '/' {
		return fmt.Errorf("%w: %q must be absolute", ErrBadPath, p)
	}
	if p == "/" {
		return nil
	}
	if strings.HasSuffix(p, "/") {
		return fmt.Errorf("%w: %q has a trailing slash", ErrBadPath, p)
	}
	// Segment-at-a-time scan: this runs on every read op, so it must not
	// allocate the way strings.Split would.
	rest := p[1:]
	for {
		var seg string
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			seg, rest = rest, ""
		}
		if seg == "" {
			return fmt.Errorf("%w: %q has an empty component", ErrBadPath, p)
		}
		if seg == "." || seg == ".." {
			return fmt.Errorf("%w: %q has a relative component", ErrBadPath, p)
		}
		if rest == "" {
			return nil
		}
	}
}

// SplitPath returns the parent path and final component of p.
func SplitPath(p string) (parent, name string) {
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// lookup walks to the node at path. Caller holds stripe locks covering
// path (any stripe suffices for the walk through the root, because
// root-structural changes hold every stripe).
func (t *Tree) lookup(path string) (*node, error) {
	if path == "/" {
		return t.root, nil
	}
	// Allocation-free walk (map lookup on a substring does not copy it);
	// this is the hot path under every read lock.
	cur := t.root
	rest := path[1:]
	for {
		seg := rest
		i := strings.IndexByte(rest, '/')
		if i >= 0 {
			seg = rest[:i]
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil, ErrNoNode
		}
		cur = next
		if i < 0 {
			return cur, nil
		}
		rest = rest[i+1:]
	}
}

// Create inserts a node. For sequential modes the stored name has the
// parent's 10-digit sequence counter appended; the actual created path
// is returned. zxid and nowNano come from the replication layer so all
// replicas agree. session is the creator's session ID (used only for
// ephemeral modes).
func (t *Tree) Create(path string, data []byte, mode CreateMode, session, zxid uint64, nowNano int64) (string, error) {
	if err := ValidatePath(path); err != nil {
		return "", err
	}
	// A depth-1 create mutates the root's child set: structural.
	parentPath := "/"
	if path != "/" {
		parentPath, _ = SplitPath(path)
	}
	s := t.lockWrite(path, parentPath == "/")
	defer t.unlockWrite(s)
	created, _, err := t.createLocked(path, data, mode, session, zxid, nowNano, false)
	return created, err
}

// createLocked is Create without the lock. When wantUndo is set it
// returns an undo closure that restores the exact prior state
// (including stat counters and the sequential-name counter) for
// Multi's rollback; plain Create passes false and skips the closure —
// one less allocation on the hottest write. Caller holds write
// coverage for path (the path's stripe; every stripe when the parent
// is the root).
func (t *Tree) createLocked(path string, data []byte, mode CreateMode, session, zxid uint64, nowNano int64, wantUndo bool) (string, func(), error) {
	if err := ValidatePath(path); err != nil {
		return "", nil, err
	}
	if path == "/" {
		return "", nil, ErrNodeExists
	}
	parentPath, name := SplitPath(path)
	parent, err := t.lookup(parentPath)
	if err != nil {
		return "", nil, ErrNoParent
	}
	if parent.stat.EphemeralOwner != 0 {
		return "", nil, fmt.Errorf("znode: parent %q is ephemeral and cannot have children", parentPath)
	}
	priorStat, priorSeq := parent.stat, parent.nextSeq
	if mode.IsSequential() {
		name = fmt.Sprintf("%s%010d", name, parent.nextSeq)
		parent.nextSeq++
	}
	if _, dup := parent.children[name]; dup {
		parent.nextSeq = priorSeq
		return "", nil, ErrNodeExists
	}
	// children stays nil until this node's first child arrives: leaf
	// nodes (the overwhelming majority) never pay for an empty map,
	// and every read-side use (lookup, range, len) is nil-safe.
	n := &node{
		name: name,
		data: append([]byte(nil), data...),
		stat: Stat{
			Czxid: zxid, Mzxid: zxid,
			Ctime: nowNano, Mtime: nowNano,
			DataLength: int32(len(data)),
		},
	}
	if mode.IsEphemeral() {
		n.stat.EphemeralOwner = session
	}
	if parent.children == nil {
		parent.children = make(map[string]*node)
	}
	parent.children[name] = n
	parent.stat.NumChildren++
	parent.stat.Cversion++
	parent.stat.Mzxid = zxid
	t.nodes.Add(1)
	t.dataBytes.Add(int64(len(data)))

	created := parentPath + "/" + name
	if parentPath == "/" {
		created = "/" + name
	}
	if mode.IsEphemeral() {
		t.emu.Lock()
		m := t.ephemerals[session]
		if m == nil {
			m = make(map[string]bool)
			t.ephemerals[session] = m
		}
		m[created] = true
		t.emu.Unlock()
	}
	if !wantUndo {
		return created, nil, nil
	}
	undo := func() {
		delete(parent.children, name)
		parent.stat = priorStat
		parent.nextSeq = priorSeq
		t.nodes.Add(-1)
		t.dataBytes.Add(-int64(len(data)))
		if mode.IsEphemeral() {
			t.emu.Lock()
			if m := t.ephemerals[session]; m != nil {
				delete(m, created)
				if len(m) == 0 {
					delete(t.ephemerals, session)
				}
			}
			t.emu.Unlock()
		}
	}
	return created, undo, nil
}

// Get returns a copy of the node's data and its stat.
func (t *Tree) Get(path string) ([]byte, Stat, error) {
	if err := ValidatePath(path); err != nil {
		return nil, Stat{}, err
	}
	s := t.rlockPath(path)
	defer t.runlockPath(s)
	n, err := t.lookup(path)
	if err != nil {
		return nil, Stat{}, err
	}
	return append([]byte(nil), n.data...), n.stat, nil
}

// Exists returns the stat if the node exists.
func (t *Tree) Exists(path string) (Stat, bool) {
	if err := ValidatePath(path); err != nil {
		return Stat{}, false
	}
	s := t.rlockPath(path)
	defer t.runlockPath(s)
	n, err := t.lookup(path)
	if err != nil {
		return Stat{}, false
	}
	return n.stat, true
}

// Set replaces the node's data. version -1 skips the optimistic check,
// matching ZooKeeper semantics.
func (t *Tree) Set(path string, data []byte, version int32, zxid uint64, nowNano int64) (Stat, error) {
	if err := ValidatePath(path); err != nil {
		return Stat{}, err
	}
	s := t.lockWrite(path, false) // Set never alters the root's child set
	defer t.unlockWrite(s)
	stat, _, err := t.setLocked(path, data, version, zxid, nowNano)
	return stat, err
}

// setLocked is Set without the lock, returning an undo closure for
// Multi's rollback. Caller holds write coverage for path.
func (t *Tree) setLocked(path string, data []byte, version int32, zxid uint64, nowNano int64) (Stat, func(), error) {
	if err := ValidatePath(path); err != nil {
		return Stat{}, nil, err
	}
	if path == "/" {
		return Stat{}, nil, ErrRootReadOnly
	}
	n, err := t.lookup(path)
	if err != nil {
		return Stat{}, nil, err
	}
	if version != -1 && version != n.stat.Version {
		return Stat{}, nil, ErrBadVersion
	}
	priorData, priorStat := n.data, n.stat
	t.dataBytes.Add(int64(len(data)) - int64(len(n.data)))
	n.data = append([]byte(nil), data...)
	n.stat.Version++
	n.stat.Mzxid = zxid
	n.stat.Mtime = nowNano
	n.stat.DataLength = int32(len(data))
	undo := func() {
		t.dataBytes.Add(int64(len(priorData)) - int64(len(n.data)))
		n.data = priorData
		n.stat = priorStat
	}
	return n.stat, undo, nil
}

// Delete removes a childless node. version -1 skips the check.
func (t *Tree) Delete(path string, version int32, zxid uint64) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	// A depth-1 delete mutates the root's child set: structural.
	parentPath := "/"
	if path != "/" {
		parentPath, _ = SplitPath(path)
	}
	s := t.lockWrite(path, parentPath == "/")
	defer t.unlockWrite(s)
	_, err := t.deleteLocked(path, version, zxid)
	return err
}

// deleteLocked is Delete without the lock, returning an undo closure
// for Multi's rollback. Caller holds write coverage for path (the
// path's stripe; every stripe when the parent is the root).
func (t *Tree) deleteLocked(path string, version int32, zxid uint64) (func(), error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, ErrRootReadOnly
	}
	parentPath, _ := SplitPath(path)
	n, err := t.lookup(path)
	if err != nil {
		return nil, err
	}
	if version != -1 && version != n.stat.Version {
		return nil, ErrBadVersion
	}
	if len(n.children) > 0 {
		return nil, ErrNotEmpty
	}
	parent, err := t.lookup(parentPath)
	if err != nil {
		return nil, ErrNoParent // unreachable if the tree is consistent
	}
	priorStat := parent.stat
	delete(parent.children, n.name)
	parent.stat.NumChildren--
	parent.stat.Cversion++
	parent.stat.Mzxid = zxid
	t.nodes.Add(-1)
	t.dataBytes.Add(-int64(len(n.data)))
	owner := n.stat.EphemeralOwner
	if owner != 0 {
		t.emu.Lock()
		if m := t.ephemerals[owner]; m != nil {
			delete(m, path)
			if len(m) == 0 {
				delete(t.ephemerals, owner)
			}
		}
		t.emu.Unlock()
	}
	undo := func() {
		parent.children[n.name] = n
		parent.stat = priorStat
		t.nodes.Add(1)
		t.dataBytes.Add(int64(len(n.data)))
		if owner != 0 {
			t.emu.Lock()
			m := t.ephemerals[owner]
			if m == nil {
				m = make(map[string]bool)
				t.ephemerals[owner] = m
			}
			m[path] = true
			t.emu.Unlock()
		}
	}
	return undo, nil
}

// Children returns the sorted child names of the node.
func (t *Tree) Children(path string) ([]string, error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	s := t.rlockPath(path)
	defer t.runlockPath(s)
	n, err := t.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// DirEntry is one record of a ChildrenData listing: a znode's name
// (relative to the listed directory), a copy of its data, and its stat.
type DirEntry struct {
	Name string
	Data []byte
	Stat Stat
}

// ChildrenData returns the node's own data and stat plus every child's
// name, data, and stat (sorted by name) under one lock acquisition —
// the server-side half of the one-round-trip readdir.
func (t *Tree) ChildrenData(path string) (self DirEntry, children []DirEntry, err error) {
	if err := ValidatePath(path); err != nil {
		return DirEntry{}, nil, err
	}
	// Listing the root reads every top-level child's data and stat, so
	// rlockPath's all-stripes coverage for "/" is load-bearing here.
	s := t.rlockPath(path)
	defer t.runlockPath(s)
	n, err := t.lookup(path)
	if err != nil {
		return DirEntry{}, nil, err
	}
	self = DirEntry{Data: append([]byte(nil), n.data...), Stat: n.stat}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	children = make([]DirEntry, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		children = append(children, DirEntry{
			Name: name,
			Data: append([]byte(nil), c.data...),
			Stat: c.stat,
		})
	}
	return self, children, nil
}

// MultiKind selects the operation type of one Multi batch element.
type MultiKind uint8

// Multi operation kinds, mirroring ZooKeeper's multi() op set.
const (
	MultiCheck MultiKind = iota + 1 // version/existence guard, no mutation
	MultiCreate
	MultiSet
	MultiDelete
)

// MultiOp is one element of an atomic batch.
type MultiOp struct {
	Kind    MultiKind
	Path    string
	Data    []byte     // create, set
	Mode    CreateMode // create
	Version int32      // check, set, delete (-1 disables the check)
}

// MultiResult is the per-op outcome of a Multi batch.
type MultiResult struct {
	Err     error
	Created string // create: the created path (sequential modes differ)
	Stat    Stat   // set: the node's stat after the write
}

// Multi applies the batch atomically: either every operation succeeds,
// or none is applied. Operations execute in order under one lock, each
// observing its predecessors' effects (a create may depend on an
// earlier create in the same batch). On the first failure every applied
// operation is undone — restoring exact stats, version counters, and
// sequential-name counters — and committed reports false; the failing
// op's result carries its error, every other op gets ErrRolledBack.
func (t *Tree) Multi(ops []MultiOp, session, zxid uint64, nowNano int64) (results []MultiResult, committed bool) {
	// Lock the union of stripes the batch can touch — every stripe if
	// any op structurally changes the root's child set — in ascending
	// order, and hold them for the whole batch. The undo closures run
	// under the same coverage, so rollback is atomic exactly as it was
	// under the single tree mutex.
	mask, all := multiLockSet(ops)
	if all {
		t.lockAll()
		defer t.unlockAll()
	} else {
		t.lockMask(mask)
		defer t.unlockMask(mask)
	}
	results = make([]MultiResult, len(ops))
	undos := make([]func(), 0, len(ops))
	for i, op := range ops {
		var err error
		switch op.Kind {
		case MultiCheck:
			err = t.checkLocked(op.Path, op.Version)
		case MultiCreate:
			var created string
			var undo func()
			created, undo, err = t.createLocked(op.Path, op.Data, op.Mode, session, zxid, nowNano, true)
			if err == nil {
				results[i].Created = created
				undos = append(undos, undo)
			}
		case MultiSet:
			var stat Stat
			var undo func()
			stat, undo, err = t.setLocked(op.Path, op.Data, op.Version, zxid, nowNano)
			if err == nil {
				results[i].Stat = stat
				undos = append(undos, undo)
			}
		case MultiDelete:
			var undo func()
			undo, err = t.deleteLocked(op.Path, op.Version, zxid)
			if err == nil {
				undos = append(undos, undo)
			}
		default:
			err = fmt.Errorf("znode: unknown multi op kind %d", op.Kind)
		}
		if err != nil {
			for j := len(undos) - 1; j >= 0; j-- {
				undos[j]()
			}
			for j := range results {
				results[j] = MultiResult{Err: ErrRolledBack}
			}
			results[i].Err = err
			return results, false
		}
	}
	return results, true
}

// multiLockSet computes the stripes a Multi batch needs: the union of
// every op path's stripe, escalating to all stripes when any create or
// delete has the root as its parent (structural), or when any path
// names the root or is malformed in a way that defeats stripe mapping
// (it will fail validation under the lock, but must fail while holding
// coverage for whatever it does read).
func multiLockSet(ops []MultiOp) (mask uint32, all bool) {
	for _, op := range ops {
		p := op.Path
		if len(p) < 2 || p[0] != '/' {
			// Root or invalid: checkLocked on "/" reads the root's stat,
			// covered by any stripe; invalid paths touch nothing. Pin
			// stripe 0 so coverage is never empty.
			mask |= 1
			continue
		}
		if op.Kind == MultiCreate || op.Kind == MultiDelete {
			if strings.IndexByte(p[1:], '/') < 0 {
				return 0, true // depth-1: mutates the root's child set
			}
		}
		mask |= 1 << uint(stripeFor(p))
	}
	if mask == 0 {
		mask = 1 // empty batch: still take one stripe for the error path
	}
	return mask, false
}

// checkLocked verifies the node exists and, unless version is -1, that
// its data version matches. Caller holds the stripe covering path.
func (t *Tree) checkLocked(path string, version int32) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	n, err := t.lookup(path)
	if err != nil {
		return err
	}
	if version != -1 && version != n.stat.Version {
		return ErrBadVersion
	}
	return nil
}

// ExpireSession deletes every ephemeral node owned by the session and
// returns the deleted paths (deepest first so parents never block).
func (t *Tree) ExpireSession(session, zxid uint64) []string {
	t.emu.Lock()
	paths := make([]string, 0, len(t.ephemerals[session]))
	for p := range t.ephemerals[session] {
		paths = append(paths, p)
	}
	t.emu.Unlock()
	// Deeper paths first; ephemeral nodes cannot have children, but a
	// deterministic order keeps replicas identical.
	sort.Slice(paths, func(i, j int) bool {
		if d1, d2 := strings.Count(paths[i], "/"), strings.Count(paths[j], "/"); d1 != d2 {
			return d1 > d2
		}
		return paths[i] < paths[j]
	})
	deleted := paths[:0]
	for _, p := range paths {
		if err := t.Delete(p, -1, zxid); err == nil {
			deleted = append(deleted, p)
		}
	}
	return deleted
}

// Count returns the number of znodes, excluding the root.
func (t *Tree) Count() int64 { return t.nodes.Load() }

// DataBytes returns the total size of all data fields.
func (t *Tree) DataBytes() int64 { return t.dataBytes.Load() }

// WalkEntry is one node visited by Walk/Snapshot.
type WalkEntry struct {
	Path string
	Data []byte
	Stat Stat
	Seq  int64 // the node's sequential-child counter
}

// Walk visits every node (excluding the root) in depth-first,
// lexicographic order and calls fn. fn must not mutate the tree. The
// whole walk runs under read coverage of every stripe, so it observes
// one consistent cut of the namespace.
func (t *Tree) Walk(fn func(e WalkEntry)) {
	t.rlockAll()
	defer t.runlockAll()
	t.walk(t.root, "", fn)
}

func (t *Tree) walk(n *node, prefix string, fn func(e WalkEntry)) {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := n.children[name]
		p := prefix + "/" + name
		fn(WalkEntry{Path: p, Data: c.data, Stat: c.stat, Seq: c.nextSeq})
		t.walk(c, p, fn)
	}
}

// RestoreEntry re-inserts a node captured by Walk, used when loading a
// snapshot. Entries must arrive parents-first.
func (t *Tree) RestoreEntry(e WalkEntry) error {
	parentPath, name := SplitPath(e.Path)
	// Restore runs on a tree no reader has seen yet; all-stripe
	// coverage keeps it trivially correct without a fast path.
	t.lockAll()
	defer t.unlockAll()
	parent, err := t.lookup(parentPath)
	if err != nil {
		return ErrNoParent
	}
	if _, dup := parent.children[name]; dup {
		return ErrNodeExists
	}
	n := &node{
		name:    name,
		data:    append([]byte(nil), e.Data...),
		stat:    e.Stat,
		nextSeq: e.Seq,
	}
	if parent.children == nil {
		parent.children = make(map[string]*node)
	}
	parent.children[name] = n
	if parent == t.root {
		// Every non-root parent's own WalkEntry already carried its exact
		// NumChildren; only the root (which has no entry) accumulates its
		// count as depth-1 children arrive.
		parent.stat.NumChildren++
	}
	t.nodes.Add(1)
	t.dataBytes.Add(int64(len(e.Data)))
	if owner := e.Stat.EphemeralOwner; owner != 0 {
		t.emu.Lock()
		m := t.ephemerals[owner]
		if m == nil {
			m = make(map[string]bool)
			t.ephemerals[owner] = m
		}
		m[e.Path] = true
		t.emu.Unlock()
	}
	return nil
}

// PutEntry inserts or updates a node from a captured WalkEntry — the
// create-or-overwrite primitive migration imports are built on.
// Entries must arrive parents-first (ship ancestor stubs ahead of the
// subtree). Unlike RestoreEntry, which rebuilds a whole tree, PutEntry
// grafts entries into a live namespace, so NumChildren is derived from
// the local structure rather than trusted from the entry: a fresh
// create starts at zero children and bumps its parent, an overwrite
// keeps the local count. With overwrite false an existing node is left
// untouched (stub semantics); with overwrite true its data, stat and
// sequential counter are replaced while its children survive.
func (t *Tree) PutEntry(e WalkEntry, overwrite bool) error {
	if err := ValidatePath(e.Path); err != nil {
		return err
	}
	if e.Path == "/" {
		return ErrRootReadOnly
	}
	parentPath, name := SplitPath(e.Path)
	// Imports are cold-path (migration traffic), so all-stripe coverage
	// keeps this trivially correct.
	t.lockAll()
	defer t.unlockAll()
	parent, err := t.lookup(parentPath)
	if err != nil {
		return ErrNoParent
	}
	if n, ok := parent.children[name]; ok {
		if !overwrite {
			return nil
		}
		t.dataBytes.Add(int64(len(e.Data)) - int64(len(n.data)))
		if owner := n.stat.EphemeralOwner; owner != 0 && owner != e.Stat.EphemeralOwner {
			t.emu.Lock()
			if m := t.ephemerals[owner]; m != nil {
				delete(m, e.Path)
				if len(m) == 0 {
					delete(t.ephemerals, owner)
				}
			}
			t.emu.Unlock()
		}
		prevOwner := n.stat.EphemeralOwner
		localChildren := n.stat.NumChildren
		n.data = append([]byte(nil), e.Data...)
		n.stat = e.Stat
		n.stat.NumChildren = localChildren
		if e.Seq > n.nextSeq {
			n.nextSeq = e.Seq
		}
		if owner := e.Stat.EphemeralOwner; owner != 0 && owner != prevOwner {
			t.emu.Lock()
			m := t.ephemerals[owner]
			if m == nil {
				m = make(map[string]bool)
				t.ephemerals[owner] = m
			}
			m[e.Path] = true
			t.emu.Unlock()
		}
		return nil
	}
	n := &node{
		name:    name,
		data:    append([]byte(nil), e.Data...),
		stat:    e.Stat,
		nextSeq: e.Seq,
	}
	n.stat.NumChildren = 0
	if parent.children == nil {
		parent.children = make(map[string]*node)
	}
	parent.children[name] = n
	parent.stat.NumChildren++
	t.nodes.Add(1)
	t.dataBytes.Add(int64(len(e.Data)))
	if owner := e.Stat.EphemeralOwner; owner != 0 {
		t.emu.Lock()
		m := t.ephemerals[owner]
		if m == nil {
			m = make(map[string]bool)
			t.ephemerals[owner] = m
		}
		m[e.Path] = true
		t.emu.Unlock()
	}
	return nil
}

// Fingerprint returns a cheap structural checksum (node count, data
// bytes, XOR of path hashes and mzxids) used by tests to compare
// replica states without serializing whole trees.
func (t *Tree) Fingerprint() uint64 {
	t.rlockAll()
	defer t.runlockAll()
	var fp uint64
	var visit func(n *node, depth uint64)
	visit = func(n *node, depth uint64) {
		for name, c := range n.children {
			var h uint64 = 14695981039346656037
			for i := 0; i < len(name); i++ {
				h = (h ^ uint64(name[i])) * 1099511628211
			}
			fp ^= h + depth*2654435761 + c.stat.Mzxid + uint64(c.stat.Version)<<32
			visit(c, depth+1)
		}
	}
	visit(t.root, 1)
	return fp ^ uint64(t.nodes.Load())<<48 ^ uint64(t.dataBytes.Load())
}
