// Package znode implements the hierarchical in-memory namespace of the
// coordination service — the equivalent of ZooKeeper's znode tree
// (paper §II-C).
//
// Znodes are addressed by slash-separated absolute paths. Each znode
// carries a custom data field (DUFS stores the entry type and FID
// there, paper §IV-D), standard stat fields (creation/modification
// zxids and times, data version, child count) and may be ephemeral
// (bound to a session) or sequential (server appends a monotonic
// counter to the name).
//
// Tree is purely a state machine: every mutation is applied by the
// replication layer (internal/coord/zab) in commit order, identically
// on every server, which is what makes the replicas consistent. Tree
// itself is safe for concurrent use so that read requests can be
// served locally while commits apply.
package znode

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors mirror the ZooKeeper client error codes DUFS depends on.
var (
	ErrNoNode       = errors.New("znode: no such node")
	ErrNodeExists   = errors.New("znode: node already exists")
	ErrNotEmpty     = errors.New("znode: node has children")
	ErrBadVersion   = errors.New("znode: version mismatch")
	ErrBadPath      = errors.New("znode: invalid path")
	ErrNoParent     = errors.New("znode: parent does not exist")
	ErrRootReadOnly = errors.New("znode: cannot modify the root")
	// ErrRolledBack marks an operation of a Multi batch that did not
	// cause the failure itself but was undone (or never attempted)
	// because a sibling operation failed — ZooKeeper's multi() contract.
	ErrRolledBack = errors.New("znode: rolled back by failed transaction")
)

// Stat is the metadata block attached to every znode, mirroring the
// ZooKeeper stat structure fields DUFS reads (paper §IV-D: "standard
// fields include Znode creation time, list of children Znodes, etc.").
type Stat struct {
	Czxid          uint64 // zxid of the transaction that created the node
	Mzxid          uint64 // zxid of the last modification
	Ctime          int64  // creation time, UnixNano, as provided by the leader
	Mtime          int64  // last-modification time, UnixNano
	Version        int32  // data version, bumped by Set
	Cversion       int32  // child version, bumped by child create/delete
	NumChildren    int32
	DataLength     int32
	EphemeralOwner uint64 // session ID when ephemeral, else 0
}

// CreateMode selects znode flavor at creation.
type CreateMode uint8

// Create modes. Sequential nodes get a 10-digit zero-padded counter
// (per parent) appended to the requested name, like ZooKeeper.
const (
	ModePersistent CreateMode = iota
	ModeEphemeral
	ModeSequential
	ModeEphemeralSequential
)

// IsEphemeral reports whether the mode binds the node to a session.
func (m CreateMode) IsEphemeral() bool {
	return m == ModeEphemeral || m == ModeEphemeralSequential
}

// IsSequential reports whether the server appends a sequence number.
func (m CreateMode) IsSequential() bool {
	return m == ModeSequential || m == ModeEphemeralSequential
}

type node struct {
	name     string
	data     []byte
	stat     Stat
	children map[string]*node
	nextSeq  int64 // per-parent sequence counter for sequential children
}

// Tree is the znode namespace. The zero value is not usable; call New.
type Tree struct {
	mu   sync.RWMutex
	root *node
	// ephemerals indexes ephemeral node paths by owning session so a
	// session expiry can delete them in one sweep.
	ephemerals map[uint64]map[string]bool
	nodes      int64 // total node count, excluding root
	dataBytes  int64 // sum of data field lengths
}

// New returns an empty tree containing only the root "/".
func New() *Tree {
	return &Tree{
		root:       &node{name: "/", children: make(map[string]*node)},
		ephemerals: make(map[uint64]map[string]bool),
	}
}

// ValidatePath checks that p is a well-formed absolute znode path.
func ValidatePath(p string) error {
	if p == "" || p[0] != '/' {
		return fmt.Errorf("%w: %q must be absolute", ErrBadPath, p)
	}
	if p == "/" {
		return nil
	}
	if strings.HasSuffix(p, "/") {
		return fmt.Errorf("%w: %q has a trailing slash", ErrBadPath, p)
	}
	for _, seg := range strings.Split(p[1:], "/") {
		if seg == "" {
			return fmt.Errorf("%w: %q has an empty component", ErrBadPath, p)
		}
		if seg == "." || seg == ".." {
			return fmt.Errorf("%w: %q has a relative component", ErrBadPath, p)
		}
	}
	return nil
}

// SplitPath returns the parent path and final component of p.
func SplitPath(p string) (parent, name string) {
	i := strings.LastIndexByte(p, '/')
	if i == 0 {
		return "/", p[1:]
	}
	return p[:i], p[i+1:]
}

// lookup walks to the node at path. Caller holds t.mu.
func (t *Tree) lookup(path string) (*node, error) {
	if path == "/" {
		return t.root, nil
	}
	cur := t.root
	for _, seg := range strings.Split(path[1:], "/") {
		next, ok := cur.children[seg]
		if !ok {
			return nil, ErrNoNode
		}
		cur = next
	}
	return cur, nil
}

// Create inserts a node. For sequential modes the stored name has the
// parent's 10-digit sequence counter appended; the actual created path
// is returned. zxid and nowNano come from the replication layer so all
// replicas agree. session is the creator's session ID (used only for
// ephemeral modes).
func (t *Tree) Create(path string, data []byte, mode CreateMode, session, zxid uint64, nowNano int64) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	created, _, err := t.createLocked(path, data, mode, session, zxid, nowNano)
	return created, err
}

// createLocked is Create without the lock, returning an undo closure
// that restores the exact prior state (including stat counters and the
// sequential-name counter) for Multi's rollback. Caller holds t.mu.
func (t *Tree) createLocked(path string, data []byte, mode CreateMode, session, zxid uint64, nowNano int64) (string, func(), error) {
	if err := ValidatePath(path); err != nil {
		return "", nil, err
	}
	if path == "/" {
		return "", nil, ErrNodeExists
	}
	parentPath, name := SplitPath(path)
	parent, err := t.lookup(parentPath)
	if err != nil {
		return "", nil, ErrNoParent
	}
	if parent.stat.EphemeralOwner != 0 {
		return "", nil, fmt.Errorf("znode: parent %q is ephemeral and cannot have children", parentPath)
	}
	priorStat, priorSeq := parent.stat, parent.nextSeq
	if mode.IsSequential() {
		name = fmt.Sprintf("%s%010d", name, parent.nextSeq)
		parent.nextSeq++
	}
	if _, dup := parent.children[name]; dup {
		parent.nextSeq = priorSeq
		return "", nil, ErrNodeExists
	}
	n := &node{
		name:     name,
		data:     append([]byte(nil), data...),
		children: make(map[string]*node),
		stat: Stat{
			Czxid: zxid, Mzxid: zxid,
			Ctime: nowNano, Mtime: nowNano,
			DataLength: int32(len(data)),
		},
	}
	if mode.IsEphemeral() {
		n.stat.EphemeralOwner = session
	}
	parent.children[name] = n
	parent.stat.NumChildren++
	parent.stat.Cversion++
	parent.stat.Mzxid = zxid
	t.nodes++
	t.dataBytes += int64(len(data))

	created := parentPath + "/" + name
	if parentPath == "/" {
		created = "/" + name
	}
	if mode.IsEphemeral() {
		m := t.ephemerals[session]
		if m == nil {
			m = make(map[string]bool)
			t.ephemerals[session] = m
		}
		m[created] = true
	}
	undo := func() {
		delete(parent.children, name)
		parent.stat = priorStat
		parent.nextSeq = priorSeq
		t.nodes--
		t.dataBytes -= int64(len(data))
		if mode.IsEphemeral() {
			if m := t.ephemerals[session]; m != nil {
				delete(m, created)
				if len(m) == 0 {
					delete(t.ephemerals, session)
				}
			}
		}
	}
	return created, undo, nil
}

// Get returns a copy of the node's data and its stat.
func (t *Tree) Get(path string) ([]byte, Stat, error) {
	if err := ValidatePath(path); err != nil {
		return nil, Stat{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.lookup(path)
	if err != nil {
		return nil, Stat{}, err
	}
	return append([]byte(nil), n.data...), n.stat, nil
}

// Exists returns the stat if the node exists.
func (t *Tree) Exists(path string) (Stat, bool) {
	if err := ValidatePath(path); err != nil {
		return Stat{}, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.lookup(path)
	if err != nil {
		return Stat{}, false
	}
	return n.stat, true
}

// Set replaces the node's data. version -1 skips the optimistic check,
// matching ZooKeeper semantics.
func (t *Tree) Set(path string, data []byte, version int32, zxid uint64, nowNano int64) (Stat, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	stat, _, err := t.setLocked(path, data, version, zxid, nowNano)
	return stat, err
}

// setLocked is Set without the lock, returning an undo closure for
// Multi's rollback. Caller holds t.mu.
func (t *Tree) setLocked(path string, data []byte, version int32, zxid uint64, nowNano int64) (Stat, func(), error) {
	if err := ValidatePath(path); err != nil {
		return Stat{}, nil, err
	}
	if path == "/" {
		return Stat{}, nil, ErrRootReadOnly
	}
	n, err := t.lookup(path)
	if err != nil {
		return Stat{}, nil, err
	}
	if version != -1 && version != n.stat.Version {
		return Stat{}, nil, ErrBadVersion
	}
	priorData, priorStat := n.data, n.stat
	t.dataBytes += int64(len(data)) - int64(len(n.data))
	n.data = append([]byte(nil), data...)
	n.stat.Version++
	n.stat.Mzxid = zxid
	n.stat.Mtime = nowNano
	n.stat.DataLength = int32(len(data))
	undo := func() {
		t.dataBytes += int64(len(priorData)) - int64(len(n.data))
		n.data = priorData
		n.stat = priorStat
	}
	return n.stat, undo, nil
}

// Delete removes a childless node. version -1 skips the check.
func (t *Tree) Delete(path string, version int32, zxid uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := t.deleteLocked(path, version, zxid)
	return err
}

// deleteLocked is Delete without the lock, returning an undo closure
// for Multi's rollback. Caller holds t.mu.
func (t *Tree) deleteLocked(path string, version int32, zxid uint64) (func(), error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	if path == "/" {
		return nil, ErrRootReadOnly
	}
	parentPath, _ := SplitPath(path)
	n, err := t.lookup(path)
	if err != nil {
		return nil, err
	}
	if version != -1 && version != n.stat.Version {
		return nil, ErrBadVersion
	}
	if len(n.children) > 0 {
		return nil, ErrNotEmpty
	}
	parent, err := t.lookup(parentPath)
	if err != nil {
		return nil, ErrNoParent // unreachable if the tree is consistent
	}
	priorStat := parent.stat
	delete(parent.children, n.name)
	parent.stat.NumChildren--
	parent.stat.Cversion++
	parent.stat.Mzxid = zxid
	t.nodes--
	t.dataBytes -= int64(len(n.data))
	owner := n.stat.EphemeralOwner
	if owner != 0 {
		if m := t.ephemerals[owner]; m != nil {
			delete(m, path)
			if len(m) == 0 {
				delete(t.ephemerals, owner)
			}
		}
	}
	undo := func() {
		parent.children[n.name] = n
		parent.stat = priorStat
		t.nodes++
		t.dataBytes += int64(len(n.data))
		if owner != 0 {
			m := t.ephemerals[owner]
			if m == nil {
				m = make(map[string]bool)
				t.ephemerals[owner] = m
			}
			m[path] = true
		}
	}
	return undo, nil
}

// Children returns the sorted child names of the node.
func (t *Tree) Children(path string) ([]string, error) {
	if err := ValidatePath(path); err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// DirEntry is one record of a ChildrenData listing: a znode's name
// (relative to the listed directory), a copy of its data, and its stat.
type DirEntry struct {
	Name string
	Data []byte
	Stat Stat
}

// ChildrenData returns the node's own data and stat plus every child's
// name, data, and stat (sorted by name) under one lock acquisition —
// the server-side half of the one-round-trip readdir.
func (t *Tree) ChildrenData(path string) (self DirEntry, children []DirEntry, err error) {
	if err := ValidatePath(path); err != nil {
		return DirEntry{}, nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.lookup(path)
	if err != nil {
		return DirEntry{}, nil, err
	}
	self = DirEntry{Data: append([]byte(nil), n.data...), Stat: n.stat}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	children = make([]DirEntry, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		children = append(children, DirEntry{
			Name: name,
			Data: append([]byte(nil), c.data...),
			Stat: c.stat,
		})
	}
	return self, children, nil
}

// MultiKind selects the operation type of one Multi batch element.
type MultiKind uint8

// Multi operation kinds, mirroring ZooKeeper's multi() op set.
const (
	MultiCheck MultiKind = iota + 1 // version/existence guard, no mutation
	MultiCreate
	MultiSet
	MultiDelete
)

// MultiOp is one element of an atomic batch.
type MultiOp struct {
	Kind    MultiKind
	Path    string
	Data    []byte     // create, set
	Mode    CreateMode // create
	Version int32      // check, set, delete (-1 disables the check)
}

// MultiResult is the per-op outcome of a Multi batch.
type MultiResult struct {
	Err     error
	Created string // create: the created path (sequential modes differ)
	Stat    Stat   // set: the node's stat after the write
}

// Multi applies the batch atomically: either every operation succeeds,
// or none is applied. Operations execute in order under one lock, each
// observing its predecessors' effects (a create may depend on an
// earlier create in the same batch). On the first failure every applied
// operation is undone — restoring exact stats, version counters, and
// sequential-name counters — and committed reports false; the failing
// op's result carries its error, every other op gets ErrRolledBack.
func (t *Tree) Multi(ops []MultiOp, session, zxid uint64, nowNano int64) (results []MultiResult, committed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	results = make([]MultiResult, len(ops))
	undos := make([]func(), 0, len(ops))
	for i, op := range ops {
		var err error
		switch op.Kind {
		case MultiCheck:
			err = t.checkLocked(op.Path, op.Version)
		case MultiCreate:
			var created string
			var undo func()
			created, undo, err = t.createLocked(op.Path, op.Data, op.Mode, session, zxid, nowNano)
			if err == nil {
				results[i].Created = created
				undos = append(undos, undo)
			}
		case MultiSet:
			var stat Stat
			var undo func()
			stat, undo, err = t.setLocked(op.Path, op.Data, op.Version, zxid, nowNano)
			if err == nil {
				results[i].Stat = stat
				undos = append(undos, undo)
			}
		case MultiDelete:
			var undo func()
			undo, err = t.deleteLocked(op.Path, op.Version, zxid)
			if err == nil {
				undos = append(undos, undo)
			}
		default:
			err = fmt.Errorf("znode: unknown multi op kind %d", op.Kind)
		}
		if err != nil {
			for j := len(undos) - 1; j >= 0; j-- {
				undos[j]()
			}
			for j := range results {
				results[j] = MultiResult{Err: ErrRolledBack}
			}
			results[i].Err = err
			return results, false
		}
	}
	return results, true
}

// checkLocked verifies the node exists and, unless version is -1, that
// its data version matches. Caller holds t.mu.
func (t *Tree) checkLocked(path string, version int32) error {
	if err := ValidatePath(path); err != nil {
		return err
	}
	n, err := t.lookup(path)
	if err != nil {
		return err
	}
	if version != -1 && version != n.stat.Version {
		return ErrBadVersion
	}
	return nil
}

// ExpireSession deletes every ephemeral node owned by the session and
// returns the deleted paths (deepest first so parents never block).
func (t *Tree) ExpireSession(session, zxid uint64) []string {
	t.mu.Lock()
	paths := make([]string, 0, len(t.ephemerals[session]))
	for p := range t.ephemerals[session] {
		paths = append(paths, p)
	}
	t.mu.Unlock()
	// Deeper paths first; ephemeral nodes cannot have children, but a
	// deterministic order keeps replicas identical.
	sort.Slice(paths, func(i, j int) bool {
		if d1, d2 := strings.Count(paths[i], "/"), strings.Count(paths[j], "/"); d1 != d2 {
			return d1 > d2
		}
		return paths[i] < paths[j]
	})
	deleted := paths[:0]
	for _, p := range paths {
		if err := t.Delete(p, -1, zxid); err == nil {
			deleted = append(deleted, p)
		}
	}
	return deleted
}

// Count returns the number of znodes, excluding the root.
func (t *Tree) Count() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// DataBytes returns the total size of all data fields.
func (t *Tree) DataBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.dataBytes
}

// WalkEntry is one node visited by Walk/Snapshot.
type WalkEntry struct {
	Path string
	Data []byte
	Stat Stat
	Seq  int64 // the node's sequential-child counter
}

// Walk visits every node (excluding the root) in depth-first,
// lexicographic order and calls fn. fn must not mutate the tree.
func (t *Tree) Walk(fn func(e WalkEntry)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.walk(t.root, "", fn)
}

func (t *Tree) walk(n *node, prefix string, fn func(e WalkEntry)) {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := n.children[name]
		p := prefix + "/" + name
		fn(WalkEntry{Path: p, Data: c.data, Stat: c.stat, Seq: c.nextSeq})
		t.walk(c, p, fn)
	}
}

// RestoreEntry re-inserts a node captured by Walk, used when loading a
// snapshot. Entries must arrive parents-first.
func (t *Tree) RestoreEntry(e WalkEntry) error {
	parentPath, name := SplitPath(e.Path)
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, err := t.lookup(parentPath)
	if err != nil {
		return ErrNoParent
	}
	if _, dup := parent.children[name]; dup {
		return ErrNodeExists
	}
	n := &node{
		name:     name,
		data:     append([]byte(nil), e.Data...),
		children: make(map[string]*node),
		stat:     e.Stat,
		nextSeq:  e.Seq,
	}
	parent.children[name] = n
	parent.stat.NumChildren++
	t.nodes++
	t.dataBytes += int64(len(e.Data))
	if owner := e.Stat.EphemeralOwner; owner != 0 {
		m := t.ephemerals[owner]
		if m == nil {
			m = make(map[string]bool)
			t.ephemerals[owner] = m
		}
		m[e.Path] = true
	}
	return nil
}

// Fingerprint returns a cheap structural checksum (node count, data
// bytes, XOR of path hashes and mzxids) used by tests to compare
// replica states without serializing whole trees.
func (t *Tree) Fingerprint() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var fp uint64
	var visit func(n *node, depth uint64)
	visit = func(n *node, depth uint64) {
		for name, c := range n.children {
			var h uint64 = 14695981039346656037
			for i := 0; i < len(name); i++ {
				h = (h ^ uint64(name[i])) * 1099511628211
			}
			fp ^= h + depth*2654435761 + c.stat.Mzxid + uint64(c.stat.Version)<<32
			visit(c, depth+1)
		}
	}
	visit(t.root, 1)
	return fp ^ uint64(t.nodes)<<48 ^ uint64(t.dataBytes)
}
