package coord

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
)

// TestChaosAcknowledgedWritesSurvive hammers a 5-server ensemble with
// writers while a chaos goroutine repeatedly kills and resurrects a
// minority of servers (including leaders). Afterwards, every write the
// service ACKNOWLEDGED must exist — the durability contract of the
// atomic broadcast (paper §IV-I).
func TestChaosAcknowledgedWritesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const servers = 5
	net := transport.NewInProc()
	peers := make(map[uint64]string, servers)
	for i := 1; i <= servers; i++ {
		peers[uint64(i)] = fmt.Sprintf("chaos-p%d", i)
	}
	mk := func(id uint64) *Server {
		srv, err := NewServer(ServerConfig{
			ID: id, PeerAddrs: peers,
			ClientAddr:        fmt.Sprintf("chaos-c%d", id),
			Net:               net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxLogEntries:     128,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	var mu sync.Mutex
	live := make(map[uint64]*Server, servers)
	var clientAddrs []string
	for i := 1; i <= servers; i++ {
		live[uint64(i)] = mk(uint64(i))
		clientAddrs = append(clientAddrs, fmt.Sprintf("chaos-c%d", i))
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range live {
			if s != nil {
				s.Stop()
			}
		}
	}()

	stopChaos := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		rng := rand.New(rand.NewSource(1))
		for round := 0; ; round++ {
			select {
			case <-stopChaos:
				return
			case <-time.After(40 * time.Millisecond):
			}
			// Kill one random server (a minority of 5 even with the
			// restart lag), wait, resurrect it. Checkpoints are not
			// carried over: the node rejoins empty and must sync.
			id := uint64(rng.Intn(servers) + 1)
			mu.Lock()
			victim := live[id]
			live[id] = nil
			mu.Unlock()
			if victim == nil {
				continue
			}
			victim.Stop()
			time.Sleep(30 * time.Millisecond)
			mu.Lock()
			live[id] = mk(id)
			mu.Unlock()
		}
	}()

	// Writers: each records the paths the service acknowledged.
	const writers = 4
	const perWriter = 40
	acked := make([][]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := Connect(net, clientAddrs)
			if err != nil {
				t.Errorf("writer %d connect: %v", w, err)
				return
			}
			defer sess.Close()
			for i := 0; i < perWriter; i++ {
				path := fmt.Sprintf("/chaos-w%d-%d", w, i)
				if _, err := sess.Create(path, []byte("x"), znode.ModePersistent); err == nil {
					acked[w] = append(acked[w], path)
				}
				// On error the write may or may not have committed —
				// both are legal; only ACKs carry a durability promise.
			}
		}(w)
	}
	wg.Wait()
	close(stopChaos)
	chaosWg.Wait()

	// Let the ensemble settle, then verify every acknowledged path.
	ens := &Ensemble{net: net, ClientAddrs: clientAddrs}
	mu.Lock()
	for _, s := range live {
		if s != nil {
			ens.Servers = append(ens.Servers, s)
		}
	}
	mu.Unlock()
	if err := ens.WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess, err := Connect(net, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	total := 0
	for w := range acked {
		for _, path := range acked[w] {
			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, ok, _ := sess.Exists(path); ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("acknowledged write %s lost", path)
				}
				time.Sleep(5 * time.Millisecond)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("chaos was so severe nothing was acknowledged; test proves nothing")
	}
	t.Logf("verified %d acknowledged writes across %d writers under chaos", total, writers)
}

// TestChaosLeaderFailoverMidBatch aims chaos at the group-commit
// pipeline specifically: concurrent writers keep multi-txn frames in
// flight while the CURRENT LEADER is repeatedly killed, so frames die
// at every stage — queued, proposed-but-unacked, quorum-acked-but-
// uncommitted on followers. Afterwards the durability contract must
// hold exactly:
//
//   - every ACKED write (single create or atomic Multi) exists;
//   - no unacked Multi is half-applied: its ops either all committed
//     (a frame that survived the failover) or none did.
func TestChaosLeaderFailoverMidBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const servers = 5
	net := transport.NewInProc()
	peers := make(map[uint64]string, servers)
	for i := 1; i <= servers; i++ {
		peers[uint64(i)] = fmt.Sprintf("midbatch-p%d", i)
	}
	// mk reports failure with Errorf, not Fatal: it is also called from
	// the chaos goroutine, where FailNow would kill the wrong goroutine.
	mk := func(id uint64, checkpoint []byte, checkpointZxid uint64) *Server {
		srv, err := NewServer(ServerConfig{
			ID: id, PeerAddrs: peers,
			ClientAddr:        fmt.Sprintf("midbatch-c%d", id),
			Net:               net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxLogEntries:     128,
			Checkpoint:        checkpoint,
			CheckpointZxid:    checkpointZxid,
		})
		if err != nil {
			t.Errorf("server %d: %v", id, err)
			return nil
		}
		return srv
	}
	var mu sync.Mutex
	live := make(map[uint64]*Server, servers)
	var clientAddrs []string
	for i := 1; i <= servers; i++ {
		srv := mk(uint64(i), nil, 0)
		if srv == nil {
			t.FailNow()
		}
		live[uint64(i)] = srv
		clientAddrs = append(clientAddrs, fmt.Sprintf("midbatch-c%d", i))
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range live {
			if s != nil {
				s.Stop()
			}
		}
	}()

	// Chaos: find whoever currently leads and kill exactly it, so the
	// in-flight frames of the group-commit pipeline are orphaned.
	stopChaos := make(chan struct{})
	var chaosWg sync.WaitGroup
	var failovers int
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		for {
			select {
			case <-stopChaos:
				return
			case <-time.After(60 * time.Millisecond):
			}
			mu.Lock()
			var victim *Server
			var victimID uint64
			for id, s := range live {
				if s != nil && s.IsLeader() {
					victim, victimID = s, id
					break
				}
			}
			if victim != nil {
				live[victimID] = nil
				failovers++
			}
			mu.Unlock()
			if victim == nil {
				continue
			}
			victim.Stop()
			// The victim rejoins from its durable checkpoint (§IV-I), as
			// a production deployment would. Rejoining EMPTY instead
			// would make it a zero-tip voter during the very election
			// its death triggers, able to hand the quorum to a lagging
			// candidate that never held an acked frame — a genuine state
			// loss this model cannot survive without durability (see
			// DESIGN.md §9.4). A killed leader has applied everything it
			// acknowledged, so its checkpoint carries every acked write.
			snap, snapZxid := victim.Checkpoint()
			time.Sleep(40 * time.Millisecond)
			reborn := mk(victimID, snap, snapZxid)
			if reborn == nil {
				return // mk already flagged the failure
			}
			mu.Lock()
			live[victimID] = reborn
			mu.Unlock()
		}
	}()

	// Writers alternate single creates with 2-op atomic Multis for a
	// fixed window that spans several leader kills. acked records
	// successes; pairs records every ATTEMPTED Multi for the
	// all-or-nothing check, acked or not.
	const writers = 6
	writeWindow := time.Now().Add(1200 * time.Millisecond)
	type pair struct {
		a, b  string
		acked bool
	}
	acked := make([][]string, writers)
	pairs := make([][]pair, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := Connect(net, clientAddrs)
			if err != nil {
				t.Errorf("writer %d connect: %v", w, err)
				return
			}
			defer sess.Close()
			for i := 0; time.Now().Before(writeWindow); i++ {
				if i%2 == 0 {
					path := fmt.Sprintf("/mb-w%d-%d", w, i)
					if _, err := sess.Create(path, []byte("x"), znode.ModePersistent); err == nil {
						acked[w] = append(acked[w], path)
					}
					continue
				}
				p := pair{
					a: fmt.Sprintf("/mb-w%d-%d-a", w, i),
					b: fmt.Sprintf("/mb-w%d-%d-b", w, i),
				}
				_, err := sess.Multi([]Op{
					CreateOp(p.a, []byte("x"), znode.ModePersistent),
					CreateOp(p.b, []byte("x"), znode.ModePersistent),
				})
				p.acked = err == nil
				pairs[w] = append(pairs[w], p)
			}
		}(w)
	}
	wg.Wait()
	close(stopChaos)
	chaosWg.Wait()

	ens := &Ensemble{net: net, ClientAddrs: clientAddrs}
	mu.Lock()
	for _, s := range live {
		if s != nil {
			ens.Servers = append(ens.Servers, s)
		}
	}
	kills := failovers
	mu.Unlock()
	if err := ens.WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess, err := Connect(net, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	exists := func(path string) bool {
		_, ok, err := sess.Exists(path)
		return err == nil && ok
	}
	waitExists := func(path string) bool {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if exists(path) {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	dumpReplicas := func(path string) {
		for _, s := range ens.Servers {
			_, ok := s.Tree().Exists(path)
			t.Logf("server %d: exists(%s)=%v %s", s.ID(), path, ok, s.DebugString())
		}
	}
	ackedTotal, pairTotal := 0, 0
	for w := 0; w < writers; w++ {
		for _, path := range acked[w] {
			if !waitExists(path) {
				dumpReplicas(path)
				t.Fatalf("acknowledged single write %s lost", path)
			}
			ackedTotal++
		}
		for _, p := range pairs[w] {
			pairTotal++
			if p.acked {
				if !waitExists(p.a) || !waitExists(p.b) {
					dumpReplicas(p.a)
					dumpReplicas(p.b)
					t.Fatalf("acknowledged multi %s/%s lost a member", p.a, p.b)
				}
				continue
			}
			// Unacked: the frame either wholly committed under a later
			// leader or wholly vanished — never half.
			a, b := exists(p.a), exists(p.b)
			if a != b {
				t.Fatalf("unacked multi half-applied: %s=%v %s=%v", p.a, a, p.b, b)
			}
		}
	}
	if ackedTotal == 0 || pairTotal == 0 {
		t.Fatalf("chaos too severe (acked=%d pairs=%d); test proves nothing", ackedTotal, pairTotal)
	}
	t.Logf("survived %d leader kills: %d acked singles, %d multi pairs all-or-nothing", kills, ackedTotal, pairTotal)
}

// TestFlakyTransportStillConverges wraps the network so a fraction of
// peer RPCs fail, and verifies the ensemble still commits writes and
// converges — the retry/sync machinery at work.
func TestFlakyTransportStillConverges(t *testing.T) {
	inner := transport.NewInProc()
	flaky := &flakyNet{Network: inner, failEvery: 7}
	ensembleSeq++
	e, err := StartEnsemble(EnsembleConfig{
		Servers:           3,
		Net:               flaky,
		AddrPrefix:        fmt.Sprintf("flaky%d", ensembleSeq),
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	s, err := e.Connect(-1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		// Under injected failures an individual request can exhaust its
		// retry budget during an election; the durability contract is
		// per-acknowledgement, so retry at the application level like
		// any ZooKeeper client would.
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, err := s.Create(fmt.Sprintf("/flaky-%d", i), nil, znode.ModePersistent)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("create %d under flaky transport never succeeded: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitReplicasAgree(t, e)
}

// flakyNet fails every Nth call on dialed connections. Client session
// traffic and listener registration pass through untouched; only Call
// is sabotaged, exercising the RPC retry paths.
type flakyNet struct {
	transport.Network
	mu        sync.Mutex
	count     int
	failEvery int
}

func (f *flakyNet) Dial(addr string) (transport.Conn, error) {
	c, err := f.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &flakyConn{Conn: c, net: f}, nil
}

type flakyConn struct {
	transport.Conn
	net *flakyNet
}

func (c *flakyConn) Call(req []byte) ([]byte, error) {
	c.net.mu.Lock()
	c.net.count++
	fail := c.net.count%c.net.failEvery == 0
	c.net.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("flaky: injected failure")
	}
	return c.Conn.Call(req)
}
