package coord

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
)

// TestChaosAcknowledgedWritesSurvive hammers a 5-server ensemble with
// writers while a chaos goroutine repeatedly kills and resurrects a
// minority of servers (including leaders). Afterwards, every write the
// service ACKNOWLEDGED must exist — the durability contract of the
// atomic broadcast (paper §IV-I).
func TestChaosAcknowledgedWritesSurvive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const servers = 5
	net := transport.NewInProc()
	peers := make(map[uint64]string, servers)
	for i := 1; i <= servers; i++ {
		peers[uint64(i)] = fmt.Sprintf("chaos-p%d", i)
	}
	mk := func(id uint64) *Server {
		srv, err := NewServer(ServerConfig{
			ID: id, PeerAddrs: peers,
			ClientAddr:        fmt.Sprintf("chaos-c%d", id),
			Net:               net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxLogEntries:     128,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	var mu sync.Mutex
	live := make(map[uint64]*Server, servers)
	var clientAddrs []string
	for i := 1; i <= servers; i++ {
		live[uint64(i)] = mk(uint64(i))
		clientAddrs = append(clientAddrs, fmt.Sprintf("chaos-c%d", i))
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range live {
			if s != nil {
				s.Stop()
			}
		}
	}()

	stopChaos := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		rng := rand.New(rand.NewSource(1))
		for round := 0; ; round++ {
			select {
			case <-stopChaos:
				return
			case <-time.After(40 * time.Millisecond):
			}
			// Kill one random server (a minority of 5 even with the
			// restart lag), wait, resurrect it. Checkpoints are not
			// carried over: the node rejoins empty and must sync.
			id := uint64(rng.Intn(servers) + 1)
			mu.Lock()
			victim := live[id]
			live[id] = nil
			mu.Unlock()
			if victim == nil {
				continue
			}
			victim.Stop()
			time.Sleep(30 * time.Millisecond)
			mu.Lock()
			live[id] = mk(id)
			mu.Unlock()
		}
	}()

	// Writers: each records the paths the service acknowledged.
	const writers = 4
	const perWriter = 40
	acked := make([][]string, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := Connect(net, clientAddrs)
			if err != nil {
				t.Errorf("writer %d connect: %v", w, err)
				return
			}
			defer sess.Close()
			for i := 0; i < perWriter; i++ {
				path := fmt.Sprintf("/chaos-w%d-%d", w, i)
				if _, err := sess.Create(path, []byte("x"), znode.ModePersistent); err == nil {
					acked[w] = append(acked[w], path)
				}
				// On error the write may or may not have committed —
				// both are legal; only ACKs carry a durability promise.
			}
		}(w)
	}
	wg.Wait()
	close(stopChaos)
	chaosWg.Wait()

	// Let the ensemble settle, then verify every acknowledged path.
	ens := &Ensemble{net: net, ClientAddrs: clientAddrs}
	mu.Lock()
	for _, s := range live {
		if s != nil {
			ens.Servers = append(ens.Servers, s)
		}
	}
	mu.Unlock()
	if err := ens.WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess, err := Connect(net, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	total := 0
	for w := range acked {
		for _, path := range acked[w] {
			deadline := time.Now().Add(5 * time.Second)
			for {
				if _, ok, _ := sess.Exists(path); ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("acknowledged write %s lost", path)
				}
				time.Sleep(5 * time.Millisecond)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("chaos was so severe nothing was acknowledged; test proves nothing")
	}
	t.Logf("verified %d acknowledged writes across %d writers under chaos", total, writers)
}

// TestFlakyTransportStillConverges wraps the network so a fraction of
// peer RPCs fail, and verifies the ensemble still commits writes and
// converges — the retry/sync machinery at work.
func TestFlakyTransportStillConverges(t *testing.T) {
	inner := transport.NewInProc()
	flaky := &flakyNet{Network: inner, failEvery: 7}
	ensembleSeq++
	e, err := StartEnsemble(EnsembleConfig{
		Servers:           3,
		Net:               flaky,
		AddrPrefix:        fmt.Sprintf("flaky%d", ensembleSeq),
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	s, err := e.Connect(-1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		// Under injected failures an individual request can exhaust its
		// retry budget during an election; the durability contract is
		// per-acknowledgement, so retry at the application level like
		// any ZooKeeper client would.
		deadline := time.Now().Add(30 * time.Second)
		for {
			_, err := s.Create(fmt.Sprintf("/flaky-%d", i), nil, znode.ModePersistent)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("create %d under flaky transport never succeeded: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitReplicasAgree(t, e)
}

// flakyNet fails every Nth call on dialed connections. Client session
// traffic and listener registration pass through untouched; only Call
// is sabotaged, exercising the RPC retry paths.
type flakyNet struct {
	transport.Network
	mu        sync.Mutex
	count     int
	failEvery int
}

func (f *flakyNet) Dial(addr string) (transport.Conn, error) {
	c, err := f.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &flakyConn{Conn: c, net: f}, nil
}

type flakyConn struct {
	transport.Conn
	net *flakyNet
}

func (c *flakyConn) Call(req []byte) ([]byte, error) {
	c.net.mu.Lock()
	c.net.count++
	fail := c.net.count%c.net.failEvery == 0
	c.net.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("flaky: injected failure")
	}
	return c.Conn.Call(req)
}
