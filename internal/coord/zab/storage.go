package zab

import "io"

// Frame is one durable log record: a replicated group-commit frame,
// the unit in which transactions are proposed, acknowledged and
// recovered. It mirrors the in-memory entry exactly — transaction i of
// Txns carries zxid Zxid+i — so a log recovered from disk is
// indistinguishable from one that never left memory.
type Frame struct {
	Zxid uint64
	Noop bool
	Txns [][]byte
}

// Last returns the zxid of the frame's final transaction.
func (f Frame) Last() uint64 {
	if n := len(f.Txns); n > 1 {
		return f.Zxid + uint64(n-1)
	}
	return f.Zxid
}

// Storage is the durable state a node keeps under the replication
// protocol. When Config.Storage is nil the node behaves exactly as the
// original in-memory implementation: acknowledgements promise only
// quorum replication, and a full-ensemble crash loses everything past
// the last application-level checkpoint. With a Storage attached the
// node upgrades its acknowledgement to ZooKeeper's contract — frames
// are persisted and fsynced BEFORE they are acknowledged to the
// leader (and before the leader counts its own log tip toward the
// commit quorum), votes and epochs survive restart, and NewNode
// recovers the state machine from the newest snapshot plus the log
// tail.
//
// Implementations must be safe for concurrent use: Append is always
// called under the node's mutex, but Sync runs outside it and may be
// invoked from several goroutines at once (the per-window follower ack
// path and the leader's sync loop).
type Storage interface {
	// HardState returns the persisted epoch / vote state recovered at
	// open: the highest epoch this node has adopted and the highest
	// epoch it has granted a vote for. Both zero on a fresh store.
	HardState() (epoch, grantedEpoch uint64)
	// SaveHardState durably records the epoch / vote state. It must
	// not return before the state is on stable storage: a node that
	// grants a vote and forgets it across a crash can hand out two
	// votes in one epoch, electing two leaders.
	SaveHardState(epoch, grantedEpoch uint64) error

	// Snapshot returns the newest durable state-machine snapshot and
	// the zxid it covers, or ok=false when none has been taken.
	Snapshot() (data []byte, zxid uint64, ok bool)
	// Frames returns the recovered log tail — every frame past the
	// newest snapshot's coverage, in zxid order. Only meaningful
	// immediately after opening the store.
	Frames() []Frame

	// Append adds frames to the log. Durability is deferred to Sync so
	// one fsync can cover a whole propose window (the group-commit
	// amortization); implementations should make Append itself cheap
	// (a buffered or page-cache write).
	Append(frames []Frame) error
	// Sync makes every previously appended frame durable. Concurrent
	// callers may share one fsync: a caller whose frames are already
	// covered by an in-flight or completed sync returns immediately.
	Sync() error
	// LastDurableZxid reports the highest frame zxid covered by a
	// completed sync — the durable horizon the node may acknowledge.
	LastDurableZxid() uint64

	// SaveSnapshot durably records a fuzzy snapshot covering zxid,
	// written side-by-side with the live log; log segments wholly
	// covered by it may be reclaimed. The log tail past zxid is kept.
	SaveSnapshot(data []byte, zxid uint64) error
	// InstallSnapshot durably records a snapshot received from the
	// leader and RESETS the log: every local frame — including any
	// divergent tail past zxid — is discarded. Used by the follower
	// sync path when its position has left the leader's log.
	InstallSnapshot(data []byte, zxid uint64) error
}

// StreamStorage is an optional Storage extension for stores that can
// move snapshots as streams, so neither saving nor recovering a
// snapshot ever needs the whole serialized state in memory at once.
// When both the store and the state machine (StreamingStateMachine)
// support streaming, the node snapshots through an io.Pipe and
// recovers through SnapshotStream; otherwise it falls back to the blob
// methods, which must remain byte-compatible.
type StreamStorage interface {
	Storage
	// SaveSnapshotFrom is SaveSnapshot reading the snapshot body from r
	// until EOF, buffering O(chunk) at a time.
	SaveSnapshotFrom(r io.Reader, zxid uint64) error
	// InstallSnapshotFrom is InstallSnapshot reading the snapshot body
	// from r until EOF, buffering O(chunk) at a time.
	InstallSnapshotFrom(r io.Reader, zxid uint64) error
	// SnapshotStream returns a reader over the newest durable snapshot
	// body, or ok=false when none exists. The reader validates the
	// stored checksum incrementally and reports a mismatch as a read
	// error in place of EOF — a consumer that reads to EOF has read a
	// proven-intact snapshot. The caller must Close it.
	SnapshotStream() (snap io.ReadCloser, zxid uint64, ok bool)
}
