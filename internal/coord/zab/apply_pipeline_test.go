package zab

import (
	"testing"
	"time"
)

// TestWakeWaiterNonBlocking pins the invariant the decoupled apply loop
// depends on: wakeWaiterLocked must never block, even against a waiter
// whose buffered slot is already full (the can't-happen case a plain
// send would turn into a deadlock inside the node mutex). It must also
// remove the waiter so a second wake for the same zxid is a no-op.
func TestWakeWaiterNonBlocking(t *testing.T) {
	n := &Node{waiters: map[uint64]*pendingTxn{}}

	// Healthy path: empty buffered(1) channel receives the outcome.
	p := &pendingTxn{ch: make(chan proposeOutcome, 1)}
	n.waiters[7] = p
	n.wakeWaiterLocked(7, []byte("res"))
	select {
	case out := <-p.ch:
		if out.zxid != 7 || string(out.result) != "res" {
			t.Fatalf("outcome = %+v, want zxid 7 result %q", out, "res")
		}
	default:
		t.Fatal("wake delivered nothing to an empty waiter channel")
	}
	if _, ok := n.waiters[7]; ok {
		t.Fatal("waiter not removed after wake")
	}

	// Adversarial path: the slot is already occupied. A plain send
	// would block forever (no receiver); the wake must return anyway.
	full := &pendingTxn{ch: make(chan proposeOutcome, 1)}
	full.ch <- proposeOutcome{zxid: 99}
	n.waiters[8] = full
	done := make(chan struct{})
	go func() {
		n.wakeWaiterLocked(8, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("wakeWaiterLocked blocked on a full waiter channel")
	}
	if _, ok := n.waiters[8]; ok {
		t.Fatal("waiter not removed after dropped wake")
	}
	if out := <-full.ch; out.zxid != 99 {
		t.Fatalf("pre-existing outcome clobbered: %+v", out)
	}

	// Missing waiter: a wake for an unknown zxid is a no-op.
	n.wakeWaiterLocked(12345, nil)
}
