// Package zab implements the replication core of the coordination
// service: a leader-based atomic broadcast in the spirit of ZooKeeper's
// Zab protocol (paper §II-C, ref [8]).
//
// Every state mutation is wrapped in a transaction, assigned a zxid
// (epoch in the high 32 bits, a per-epoch counter in the low 32 bits),
// replicated to a quorum of followers, and only then committed and
// applied — in strict zxid order, identically on every server. That is
// the property DUFS leans on: "all modifications on the namespace
// appear to be atomic and strictly ordered to all the clients".
//
// Differences from production Zab, chosen for clarity and testability:
//
//   - Leader election is a Raft-style vote (epoch + last-zxid
//     up-to-dateness check) rather than ZooKeeper's fast leader
//     election; the elected-leader safety property is the same.
//   - Proposals are replicated one at a time (the leader serializes);
//     production Zab pipelines. An ablation bench quantifies this.
//   - The log lives in memory with snapshot-based truncation, like
//     ZooKeeper's in-memory database; durable checkpoints are layered
//     on top by internal/coord (paper §IV-I: "periodically
//     checkpointed on disk").
package zab

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// StateMachine is the replicated application state. Apply must be
// deterministic: given the same transaction stream in the same order,
// every replica must produce the same state. Application-level
// failures (e.g. "node exists") are encoded inside the result bytes,
// not returned as errors, so they replicate deterministically too.
type StateMachine interface {
	// Apply executes a committed transaction. Called in strict zxid
	// order, never concurrently.
	Apply(txn []byte, zxid uint64) []byte
	// Snapshot serializes the full state at the current applied point.
	Snapshot() []byte
	// Restore replaces the state with a snapshot taken at snapZxid.
	Restore(snap []byte, snapZxid uint64) error
}

// Config describes one ensemble member.
type Config struct {
	// ID is this server's identity; it must be a key of Peers.
	ID uint64
	// Peers maps every ensemble member ID to its transport address,
	// including this server.
	Peers map[uint64]string
	// Net is the transport to use (TCP or in-process).
	Net transport.Network

	// HeartbeatInterval is the leader's heartbeat period.
	// Defaults to 15ms.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower patience before starting an
	// election; the effective timeout is randomized in [1x, 2x).
	// Defaults to 10 * HeartbeatInterval.
	ElectionTimeout time.Duration
	// MaxLogEntries bounds the in-memory log; once exceeded, applied
	// entries are folded into a state-machine snapshot.
	// Defaults to 8192.
	MaxLogEntries int
	// InitialSnapshot, when non-nil, primes the node from a durable
	// checkpoint: the state machine is restored before Start and the
	// log begins at InitialZxid.
	InitialSnapshot []byte
	InitialZxid     uint64
}

// Roles of an ensemble member.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// Errors returned by Propose.
var (
	ErrStopped  = errors.New("zab: node stopped")
	ErrNoLeader = errors.New("zab: no leader known")
	ErrNoQuorum = errors.New("zab: failed to reach quorum")
)

// Node is one member of the replicated ensemble.
type Node struct {
	cfg Config
	sm  StateMachine
	rng *rand.Rand

	mu           sync.Mutex
	role         int
	epoch        uint64
	grantedEpoch uint64 // highest epoch we granted a vote for
	leaderID     uint64 // 0 when unknown
	log          []entry
	snapZxid     uint64 // zxid covered by the latest state snapshot
	commitZxid   uint64
	lastApplied  uint64
	nextSeq      uint32 // per-epoch proposal counter (leader only)
	lastContact  time.Time
	electionDue  time.Duration
	syncing      bool
	stopped      bool
	results      map[uint64][]byte // zxid -> apply result (leader-side)
	applyCond    *sync.Cond        // signalled when lastApplied advances

	proposeMu sync.Mutex // serializes the propose->commit pipeline

	connMu sync.Mutex
	conns  map[uint64]transport.Conn

	listener io.Closer
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewNode validates the configuration and builds a node. Call Start to
// join the ensemble.
func NewNode(cfg Config, sm StateMachine) (*Node, error) {
	if cfg.Net == nil {
		return nil, errors.New("zab: Config.Net is required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("zab: node ID %d not present in peer map", cfg.ID)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 15 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 10 * cfg.HeartbeatInterval
	}
	if cfg.MaxLogEntries <= 0 {
		cfg.MaxLogEntries = 8192
	}
	n := &Node{
		cfg:     cfg,
		sm:      sm,
		rng:     rand.New(rand.NewSource(int64(cfg.ID))),
		conns:   make(map[uint64]transport.Conn),
		stopCh:  make(chan struct{}),
		results: make(map[uint64][]byte),
	}
	n.applyCond = sync.NewCond(&n.mu)
	if cfg.InitialSnapshot != nil {
		if err := sm.Restore(cfg.InitialSnapshot, cfg.InitialZxid); err != nil {
			return nil, fmt.Errorf("zab: restoring initial snapshot: %w", err)
		}
		n.snapZxid = cfg.InitialZxid
		n.commitZxid = cfg.InitialZxid
		n.lastApplied = cfg.InitialZxid
		n.epoch = epochOf(cfg.InitialZxid)
	}
	n.resetElectionTimer()
	return n, nil
}

func makeZxid(epoch uint64, seq uint32) uint64 { return epoch<<32 | uint64(seq) }
func epochOf(zxid uint64) uint64               { return zxid >> 32 }

// Start begins listening for peer traffic and starts the election and
// heartbeat loops.
func (n *Node) Start() error {
	ln, err := n.cfg.Net.Listen(n.cfg.Peers[n.cfg.ID], transport.HandlerFunc(n.handle))
	if err != nil {
		return fmt.Errorf("zab: node %d: %w", n.cfg.ID, err)
	}
	n.listener = ln
	n.wg.Add(2)
	go n.electionLoop()
	go n.heartbeatLoop()
	return nil
}

// Stop shuts the node down and waits for its goroutines.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.role = roleFollower // a stopped node must not report leadership
	n.leaderID = 0
	n.applyCond.Broadcast()
	n.mu.Unlock()
	close(n.stopCh)
	if n.listener != nil {
		n.listener.Close()
	}
	n.connMu.Lock()
	for id, c := range n.conns {
		c.Close()
		delete(n.conns, id)
	}
	n.connMu.Unlock()
	n.wg.Wait()
}

// ID returns the node's ensemble identity.
func (n *Node) ID() uint64 { return n.cfg.ID }

// IsLeader reports whether this node currently leads the ensemble.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == roleLeader
}

// LeaderID returns the known leader's ID, or 0.
func (n *Node) LeaderID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == roleLeader {
		return n.cfg.ID
	}
	return n.leaderID
}

// Epoch returns the node's current epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// LastZxid returns the zxid of the last log entry (or snapshot).
func (n *Node) LastZxid() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastZxidLocked()
}

// CommitZxid returns the highest committed zxid.
func (n *Node) CommitZxid() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitZxid
}

// DebugString reports the node's replication state for diagnostics.
func (n *Node) DebugString() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	role := "follower"
	switch n.role {
	case roleCandidate:
		role = "candidate"
	case roleLeader:
		role = "leader"
	}
	return fmt.Sprintf("id=%d role=%s epoch=%d granted=%d leader=%d last=%x commit=%x applied=%x log=%d syncing=%v stopped=%v sinceContact=%s due=%s",
		n.cfg.ID, role, n.epoch, n.grantedEpoch, n.leaderID,
		n.lastZxidLocked(), n.commitZxid, n.lastApplied, len(n.log),
		n.syncing, n.stopped, time.Since(n.lastContact).Round(time.Millisecond), n.electionDue)
}

// Checkpoint returns a durable snapshot of the applied state and the
// zxid it covers, for the disk persistence layered above this package.
func (n *Node) Checkpoint() (snap []byte, zxid uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sm.Snapshot(), n.lastApplied
}

func (n *Node) lastZxidLocked() uint64 {
	if len(n.log) == 0 {
		return n.snapZxid
	}
	return n.log[len(n.log)-1].Zxid
}

func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) resetElectionTimer() {
	n.lastContact = time.Now()
	n.electionDue = n.cfg.ElectionTimeout +
		time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
}

// --- connections ------------------------------------------------------

func (n *Node) getConn(id uint64) (transport.Conn, error) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[id]; ok {
		return c, nil
	}
	addr, ok := n.cfg.Peers[id]
	if !ok {
		return nil, fmt.Errorf("zab: unknown peer %d", id)
	}
	c, err := n.cfg.Net.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.conns[id] = c
	return c, nil
}

func (n *Node) dropConn(id uint64) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[id]; ok {
		c.Close()
		delete(n.conns, id)
	}
}

// callPeer performs one RPC to a peer, invalidating the cached
// connection on failure so the next call redials.
func (n *Node) callPeer(id uint64, req []byte) ([]byte, error) {
	c, err := n.getConn(id)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(req)
	if err != nil {
		n.dropConn(id)
		return nil, err
	}
	return resp, nil
}

// --- request dispatch -------------------------------------------------

func (n *Node) handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	kind := r.Uint8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch kind {
	case msgPropose:
		m := decodeProposeReq(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handlePropose(m).encode(), nil
	case msgCommit:
		epoch, zxid := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n.handleCommit(epoch, zxid)
		return nil, nil
	case msgHeartbeat:
		m := heartbeatReq{Epoch: r.Uint64(), LeaderID: r.Uint64(), Commit: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleHeartbeat(m).encode(), nil
	case msgRequestVote:
		m := requestVoteReq{Epoch: r.Uint64(), CandidateID: r.Uint64(), LastZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleRequestVote(m).encode(), nil
	case msgSync:
		m := syncReq{FromZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		resp, err := n.handleSync(m)
		if err != nil {
			return nil, err
		}
		return resp.encode(), nil
	case msgForward:
		txn := r.BytesCopy32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		result, zxid, err := n.propose(txn)
		if err != nil {
			return nil, err
		}
		return forwardResp{Zxid: zxid, Result: result}.encode(), nil
	default:
		return nil, fmt.Errorf("zab: unknown message kind %d", kind)
	}
}

// --- follower side ----------------------------------------------------

// adoptEpochLocked moves the node to follower state for a newer epoch.
func (n *Node) adoptEpochLocked(epoch, leaderID uint64) {
	if epoch > n.epoch {
		n.epoch = epoch
	}
	n.role = roleFollower
	if leaderID != 0 {
		n.leaderID = leaderID
	}
	n.resetElectionTimer()
}

func (n *Node) handlePropose(m proposeReq) proposeResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch < n.epoch {
		return proposeResp{Epoch: n.epoch}
	}
	n.adoptEpochLocked(m.Epoch, m.LeaderID)
	if m.Entry.Zxid == n.lastZxidLocked() {
		// Idempotent re-send: we already hold this entry (a leader
		// retry after other followers had to sync). Ack again.
		n.advanceCommitLocked(m.Commit)
		return proposeResp{Ack: true, Epoch: n.epoch}
	}
	if n.lastZxidLocked() != m.PrevZxid {
		n.triggerSyncLocked()
		return proposeResp{NeedSync: true, Epoch: n.epoch}
	}
	n.log = append(n.log, m.Entry)
	n.advanceCommitLocked(m.Commit)
	return proposeResp{Ack: true, Epoch: n.epoch}
}

func (n *Node) handleCommit(epoch, zxid uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch < n.epoch {
		return
	}
	n.adoptEpochLocked(epoch, 0)
	n.advanceCommitLocked(zxid)
}

func (n *Node) handleHeartbeat(m heartbeatReq) heartbeatResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch >= n.epoch {
		n.adoptEpochLocked(m.Epoch, m.LeaderID)
		n.advanceCommitLocked(m.Commit)
		if m.Commit > n.lastZxidLocked() {
			n.triggerSyncLocked()
		}
	}
	return heartbeatResp{Epoch: n.epoch, LastZxid: n.lastZxidLocked()}
}

func (n *Node) handleRequestVote(m requestVoteReq) requestVoteResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch <= n.grantedEpoch || m.Epoch <= n.epoch {
		return requestVoteResp{Epoch: n.epoch}
	}
	if m.LastZxid < n.lastZxidLocked() {
		return requestVoteResp{Epoch: n.epoch}
	}
	n.grantedEpoch = m.Epoch
	n.epoch = m.Epoch
	n.role = roleFollower
	n.leaderID = 0 // unknown until the new leader heartbeats
	n.resetElectionTimer()
	return requestVoteResp{Granted: true, Epoch: n.epoch}
}

// advanceCommitLocked raises the commit horizon (bounded by what we
// actually hold) and applies newly committed entries in order.
func (n *Node) advanceCommitLocked(commit uint64) {
	if commit > n.lastZxidLocked() {
		commit = n.lastZxidLocked()
	}
	if commit <= n.commitZxid {
		return
	}
	n.commitZxid = commit
	n.applyCommittedLocked()
}

// applyCommittedLocked feeds committed-but-unapplied entries to the
// state machine in zxid order and handles log truncation.
func (n *Node) applyCommittedLocked() {
	i := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.lastApplied })
	for ; i < len(n.log); i++ {
		e := n.log[i]
		if e.Zxid > n.commitZxid {
			break
		}
		if !e.Noop {
			res := n.sm.Apply(e.Txn, e.Zxid)
			if n.role == roleLeader {
				n.results[e.Zxid] = res
			}
		}
		n.lastApplied = e.Zxid
	}
	n.applyCond.Broadcast()
	n.maybeTruncateLocked()
}

// maybeTruncateLocked drops the bulk of the applied log prefix when
// the log grows beyond the configured bound, keeping a small margin so
// slightly-lagging followers can still catch up from the log instead
// of a full snapshot (which handleSync regenerates on demand).
func (n *Node) maybeTruncateLocked() {
	if len(n.log) <= n.cfg.MaxLogEntries {
		return
	}
	const margin = 64
	cut := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.lastApplied })
	if cut <= margin {
		return
	}
	cut -= margin
	n.snapZxid = n.log[cut-1].Zxid
	n.log = append([]entry(nil), n.log[cut:]...)
	for z := range n.results {
		if z <= n.snapZxid {
			delete(n.results, z)
		}
	}
}

// triggerSyncLocked schedules a pull-based catch-up from the leader.
func (n *Node) triggerSyncLocked() {
	if n.syncing || n.stopped || n.leaderID == 0 || n.leaderID == n.cfg.ID {
		return
	}
	n.syncing = true
	leader := n.leaderID
	from := n.lastZxidLocked()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.syncFromLeader(leader, from)
		n.mu.Lock()
		n.syncing = false
		n.mu.Unlock()
	}()
}

func (n *Node) syncFromLeader(leader, from uint64) {
	respB, err := n.callPeer(leader, syncReq{FromZxid: from}.encode())
	if err != nil {
		return
	}
	resp, err := decodeSyncResp(respB)
	if err != nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if resp.Epoch < n.epoch || n.stopped {
		return
	}
	n.adoptEpochLocked(resp.Epoch, resp.LeaderID)
	if resp.HasSnapshot {
		if err := n.sm.Restore(resp.Snapshot, resp.SnapZxid); err != nil {
			return
		}
		n.snapZxid = resp.SnapZxid
		n.lastApplied = resp.SnapZxid
		if n.commitZxid < resp.SnapZxid {
			n.commitZxid = resp.SnapZxid
		}
		n.log = nil
	} else if n.lastZxidLocked() != from {
		// Our log moved while the sync was in flight; retry later.
		return
	}
	for _, e := range resp.Entries {
		if e.Zxid <= n.lastZxidLocked() && len(n.log) > 0 {
			continue
		}
		if e.Zxid <= n.snapZxid {
			continue
		}
		n.log = append(n.log, e)
	}
	n.advanceCommitLocked(resp.Commit)
}

// handleSync runs on the leader: ship either the log suffix after
// FromZxid, or a full snapshot when the follower's position is unknown
// to us (trimmed away or divergent).
func (n *Node) handleSync(m syncReq) (syncResp, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader {
		return syncResp{}, fmt.Errorf("zab: node %d is not the leader", n.cfg.ID)
	}
	resp := syncResp{Commit: n.commitZxid, Epoch: n.epoch, LeaderID: n.cfg.ID}
	if m.FromZxid == n.snapZxid {
		resp.Entries = append(resp.Entries, n.log...)
		return resp, nil
	}
	for i, e := range n.log {
		if e.Zxid == m.FromZxid {
			resp.Entries = append(resp.Entries, n.log[i+1:]...)
			return resp, nil
		}
	}
	// Unknown position: full snapshot of the applied state plus the
	// unapplied tail.
	resp.HasSnapshot = true
	resp.SnapZxid = n.lastApplied
	resp.Snapshot = n.sm.Snapshot()
	for _, e := range n.log {
		if e.Zxid > n.lastApplied {
			resp.Entries = append(resp.Entries, e)
		}
	}
	return resp, nil
}

// --- leader side ------------------------------------------------------

// Propose submits a transaction for atomic broadcast. On a follower it
// is forwarded to the leader. It returns the state machine's result
// once the transaction is committed and applied on THIS node, which
// gives sessions connected here read-your-writes consistency — the
// same guarantee a ZooKeeper server provides its clients.
func (n *Node) Propose(txn []byte) ([]byte, error) {
	result, zxid, err := n.propose(txn)
	if err != nil {
		return nil, err
	}
	if err := n.waitApplied(zxid); err != nil {
		return nil, err
	}
	return result, nil
}

func (n *Node) propose(txn []byte) ([]byte, uint64, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, 0, ErrStopped
	}
	isLeader := n.role == roleLeader
	leader := n.leaderID
	n.mu.Unlock()

	if !isLeader {
		if leader == 0 || leader == n.cfg.ID {
			return nil, 0, ErrNoLeader
		}
		respB, err := n.callPeer(leader, forwardReq{Txn: txn}.encode())
		if err != nil {
			return nil, 0, err
		}
		resp, err := decodeForwardResp(respB)
		if err != nil {
			return nil, 0, err
		}
		return resp.Result, resp.Zxid, nil
	}
	return n.proposeAsLeader(txn, false)
}

// waitApplied blocks until this node's state machine has applied the
// given zxid (or the node stops / the wait times out).
func (n *Node) waitApplied(zxid uint64) error {
	const timeout = 10 * time.Second
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		n.applyCond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(timeout)
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.lastApplied < zxid {
		if n.stopped {
			return ErrStopped
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("zab: zxid %x not applied locally within %v", zxid, timeout)
		}
		n.applyCond.Wait()
	}
	return nil
}

func (n *Node) proposeAsLeader(txn []byte, noop bool) ([]byte, uint64, error) {
	n.proposeMu.Lock()
	defer n.proposeMu.Unlock()

	n.mu.Lock()
	if n.role != roleLeader {
		n.mu.Unlock()
		return nil, 0, ErrNoLeader
	}
	n.nextSeq++
	e := entry{Zxid: makeZxid(n.epoch, n.nextSeq), Noop: noop, Txn: txn}
	req := proposeReq{
		Epoch:    n.epoch,
		LeaderID: n.cfg.ID,
		PrevZxid: n.lastZxidLocked(),
		Entry:    e,
		Commit:   n.commitZxid,
	}
	n.log = append(n.log, e)
	n.mu.Unlock()

	// Followers that answer NeedSync are alive but lagging; they pull
	// our state in the background (triggerSync), so give them a few
	// rounds before declaring the quorum lost. Without this, a single
	// lagging follower in a 3-live-of-5 configuration livelocks every
	// election: the barrier no-op can never commit, the new leader
	// steps down instantly, and the laggard never finds a leader to
	// sync from.
	acks, needSync := n.broadcastPropose(req)
	for attempt := 0; acks < n.quorum() && acks+needSync >= n.quorum() && attempt < 8; attempt++ {
		time.Sleep(n.cfg.HeartbeatInterval)
		n.mu.Lock()
		stillLeader := n.role == roleLeader && n.epoch == req.Epoch && !n.stopped
		n.mu.Unlock()
		if !stillLeader {
			return nil, 0, ErrNoLeader
		}
		acks, needSync = n.broadcastPropose(req)
	}
	if acks < n.quorum() {
		// We could not commit. Step down; a healthier member will win
		// the next election, and our uncommitted tail will be resolved
		// by its sync protocol.
		n.mu.Lock()
		if n.role == roleLeader && n.epoch == req.Epoch {
			n.role = roleFollower
			n.leaderID = 0
			n.resetElectionTimer()
		}
		n.mu.Unlock()
		return nil, 0, ErrNoQuorum
	}

	n.mu.Lock()
	n.advanceCommitLocked(e.Zxid)
	result := n.results[e.Zxid]
	delete(n.results, e.Zxid)
	epoch := n.epoch
	commit := n.commitZxid
	n.mu.Unlock()

	n.broadcastAsync(commitReq{Epoch: epoch, Zxid: commit}.encode())
	return result, e.Zxid, nil
}

// broadcastPropose replicates one entry to all peers and returns the
// ack count (including the leader itself) and how many peers asked to
// sync first.
func (n *Node) broadcastPropose(req proposeReq) (acks, needSync int) {
	payload := req.encode()
	type res struct{ ack, needSync bool }
	ch := make(chan res, len(n.cfg.Peers))
	outstanding := 0
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		outstanding++
		go func(id uint64) {
			respB, err := n.callPeer(id, payload)
			if err != nil {
				ch <- res{}
				return
			}
			resp, err := decodeProposeResp(respB)
			if err != nil {
				ch <- res{}
				return
			}
			if resp.Epoch > req.Epoch {
				n.mu.Lock()
				if resp.Epoch > n.epoch {
					n.adoptEpochLocked(resp.Epoch, 0)
					n.leaderID = 0
				}
				n.mu.Unlock()
			}
			ch <- res{ack: resp.Ack, needSync: resp.NeedSync}
		}(id)
	}
	acks = 1 // self
	for i := 0; i < outstanding; i++ {
		r := <-ch
		if r.ack {
			acks++
		}
		if r.needSync {
			needSync++
		}
		if acks >= n.quorum() {
			// Drain the rest in the background so goroutines exit.
			remaining := outstanding - i - 1
			go func() {
				for j := 0; j < remaining; j++ {
					<-ch
				}
			}()
			break
		}
	}
	return acks, needSync
}

// broadcastAsync fires one payload at every peer without waiting.
func (n *Node) broadcastAsync(payload []byte) {
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		go func(id uint64) {
			_, _ = n.callPeer(id, payload)
		}(id)
	}
}

// --- background loops -------------------------------------------------

func (n *Node) electionLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		due := n.role != roleLeader && time.Since(n.lastContact) > n.electionDue
		n.mu.Unlock()
		if due {
			n.runElection()
		}
	}
}

func (n *Node) runElection() {
	n.mu.Lock()
	if n.stopped || n.role == roleLeader {
		n.mu.Unlock()
		return
	}
	next := n.epoch + 1
	if n.grantedEpoch >= next {
		next = n.grantedEpoch + 1
	}
	n.epoch = next
	n.grantedEpoch = next
	n.role = roleCandidate
	n.leaderID = 0
	n.resetElectionTimer()
	req := requestVoteReq{Epoch: next, CandidateID: n.cfg.ID, LastZxid: n.lastZxidLocked()}
	n.mu.Unlock()

	payload := req.encode()
	grants := make(chan bool, len(n.cfg.Peers))
	outstanding := 0
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		outstanding++
		go func(id uint64) {
			respB, err := n.callPeer(id, payload)
			if err != nil {
				grants <- false
				return
			}
			resp, err := decodeRequestVoteResp(respB)
			if err != nil {
				grants <- false
				return
			}
			if resp.Epoch > req.Epoch {
				n.mu.Lock()
				if resp.Epoch > n.epoch {
					n.adoptEpochLocked(resp.Epoch, 0)
				}
				n.mu.Unlock()
			}
			grants <- resp.Granted
		}(id)
	}
	votes := 1 // self
	deadline := time.After(n.cfg.ElectionTimeout)
	for i := 0; i < outstanding; i++ {
		select {
		case g := <-grants:
			if g {
				votes++
			}
		case <-deadline:
			i = outstanding // abandon the round
		case <-n.stopCh:
			return
		}
		if votes >= n.quorum() {
			break
		}
	}
	if votes < n.quorum() {
		return
	}
	n.becomeLeader(req.Epoch)
}

func (n *Node) becomeLeader(epoch uint64) {
	n.mu.Lock()
	if n.epoch != epoch || n.role != roleCandidate || n.stopped {
		n.mu.Unlock()
		return
	}
	n.role = roleLeader
	n.leaderID = n.cfg.ID
	n.nextSeq = 0
	n.mu.Unlock()
	// Commit a barrier entry so every entry inherited from previous
	// epochs becomes committed under the new epoch (Raft §5.4.2 trick;
	// Zab achieves the same with its NEWLEADER phase).
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_, _, _ = n.proposeAsLeader(nil, true)
	}()
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		if n.role != roleLeader {
			n.mu.Unlock()
			continue
		}
		req := heartbeatReq{Epoch: n.epoch, LeaderID: n.cfg.ID, Commit: n.commitZxid}
		n.mu.Unlock()
		payload := req.encode()
		for id := range n.cfg.Peers {
			if id == n.cfg.ID {
				continue
			}
			go func(id uint64) {
				respB, err := n.callPeer(id, payload)
				if err != nil {
					return
				}
				resp, err := decodeHeartbeatResp(respB)
				if err != nil {
					return
				}
				if resp.Epoch > req.Epoch {
					n.mu.Lock()
					if resp.Epoch > n.epoch {
						n.adoptEpochLocked(resp.Epoch, 0)
						n.leaderID = 0
					}
					n.mu.Unlock()
				}
			}(id)
		}
	}
}
