// Package zab implements the replication core of the coordination
// service: a leader-based atomic broadcast in the spirit of ZooKeeper's
// Zab protocol (paper §II-C, ref [8]).
//
// Every state mutation is wrapped in a transaction, assigned a zxid
// (epoch in the high 32 bits, a per-epoch counter in the low 32 bits),
// replicated to a quorum of followers, and only then committed and
// applied — in strict zxid order, identically on every server. That is
// the property DUFS leans on: "all modifications on the namespace
// appear to be atomic and strictly ordered to all the clients".
//
// # Group commit and pipelining
//
// The leader write path is a production-style Zab pipeline rather than
// a one-transaction-per-quorum-round-trip lockstep:
//
//   - Client proposals land in a queue. A proposer goroutine drains
//     it and coalesces the pending transactions into one FRAME (an
//     entry holding up to MaxBatchTxns transactions / MaxBatchBytes
//     bytes) that replicates, commits and recovers as a single unit.
//   - One sender goroutine per follower streams frames with a
//     cumulative-ack protocol: each round trip carries every frame
//     that queued up behind the previous one, so the leader keeps
//     proposing (up to MaxInflightFrames uncommitted frames) while
//     earlier acks are still in flight.
//   - A frame's transactions commit together when a quorum holds the
//     frame; each waiting proposer is woken with its own per-txn
//     apply result. An unacknowledged frame either wholly commits or
//     wholly vanishes — transactions never partially survive a
//     leader failover.
//
// Differences from production Zab, chosen for clarity and testability:
//
//   - Leader election is a Raft-style vote (epoch + last-zxid
//     up-to-dateness check) rather than ZooKeeper's fast leader
//     election; the elected-leader safety property is the same.
//   - Durability is pluggable: without a Storage the log lives purely
//     in memory (acknowledgement = quorum replication, the original
//     model); with one (internal/coord/storage) every frame is
//     persisted and fsynced before it is acknowledged — follower acks
//     sync their window first, the leader's own quorum vote is capped
//     at its durable horizon by a group-fsync loop — votes survive
//     restart, and NewNode recovers from the newest fuzzy snapshot
//     plus the log tail, giving ZooKeeper's §IV-I guarantee that the
//     service "can tolerate the failure of all servers".
package zab

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// StateMachine is the replicated application state. Apply must be
// deterministic: given the same transaction stream in the same order,
// every replica must produce the same state. Application-level
// failures (e.g. "node exists") are encoded inside the result bytes,
// not returned as errors, so they replicate deterministically too.
type StateMachine interface {
	// Apply executes a committed transaction. Called in strict zxid
	// order, never concurrently.
	Apply(txn []byte, zxid uint64) []byte
	// Snapshot serializes the full state at the current applied point.
	Snapshot() []byte
	// Restore replaces the state with a snapshot taken at snapZxid.
	Restore(snap []byte, snapZxid uint64) error
}

// BatchStateMachine is an optional StateMachine extension: a state
// machine that can apply a whole group-commit frame in one call —
// transaction i of txns carries zxid firstZxid+i — returning one
// result per transaction. Implementations can amortize per-apply
// overhead (locking, notification batching) across the frame; the
// semantics must be identical to N ordered Apply calls. The returned
// container is only valid until the next ApplyBatch call — callers
// consume the results before applying another frame, which lets
// implementations reuse one scratch slice across frames.
type BatchStateMachine interface {
	StateMachine
	ApplyBatch(txns [][]byte, firstZxid uint64) [][]byte
}

// StreamingStateMachine is an optional StateMachine extension: a state
// machine whose snapshots move as streams, so checkpointing never
// materializes the full serialized state in memory. Paired with a
// StreamStorage it gives the node O(chunk) snapshot memory end to end;
// the blob methods must stay byte-compatible with the streamed form.
type StreamingStateMachine interface {
	StateMachine
	// SnapshotTo serializes the full state at the current applied point
	// to w. It must write the same bytes Snapshot would return.
	SnapshotTo(w io.Writer) error
	// RestoreFrom replaces the state with the snapshot streamed from r,
	// taken at snapZxid. It must consume r to EOF (that is where a
	// validating stream reports corruption) and must leave the state
	// untouched on error.
	RestoreFrom(r io.Reader, snapZxid uint64) error
}

// Config describes one ensemble member.
type Config struct {
	// ID is this server's identity; it must be a key of Peers.
	ID uint64
	// Peers maps every ensemble member ID to its transport address,
	// including this server.
	Peers map[uint64]string
	// Net is the transport to use (TCP or in-process).
	Net transport.Network

	// HeartbeatInterval is the leader's heartbeat period.
	// Defaults to 15ms.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower patience before starting an
	// election; the effective timeout is randomized in [1x, 2x).
	// Defaults to 10 * HeartbeatInterval.
	ElectionTimeout time.Duration
	// MaxLogEntries bounds the in-memory log; once exceeded, applied
	// entries are folded into a state-machine snapshot.
	// Defaults to 8192.
	MaxLogEntries int
	// MaxBatchTxns bounds how many transactions the proposer coalesces
	// into one group-commit frame. 1 disables batching (every
	// transaction is its own frame). Defaults to 128.
	MaxBatchTxns int
	// MaxBatchBytes bounds a frame's total transaction payload.
	// Defaults to 1 MiB.
	MaxBatchBytes int
	// MaxInflightFrames bounds how many proposed-but-uncommitted
	// frames the leader keeps in flight (the pipelining window). 1
	// reduces the pipeline to the lockstep propose→commit cycle.
	// Defaults to 16.
	MaxInflightFrames int
	// MaxApplyQueueFrames bounds the commit→apply queue: how many
	// committed frames may sit between the commit horizon and the
	// apply loop before the leader's proposer stops admitting new
	// frames (backpressure, so a slow state machine cannot grow the
	// log without bound). Followers cap their queue at the same bound
	// and pull the remainder as the apply loop drains. Defaults to 256.
	MaxApplyQueueFrames int
	// MaxClockSkew bounds the clock drift assumed between ensemble
	// members for the leader read lease: a quorum of heartbeat acks
	// gathered at time T lets the leader serve lease reads until
	// T + ElectionTimeout - MaxClockSkew on its own clock. Defaults to
	// ElectionTimeout / 10. A bound at or above ElectionTimeout
	// disables lease reads entirely (the deadline never lies in the
	// future).
	MaxClockSkew time.Duration
	// Clock overrides the time source consulted by the read lease and
	// the election timer (tests inject skewed or frozen clocks here).
	// Defaults to time.Now.
	Clock func() time.Time
	// Metrics, when non-nil, receives the leader's proposer gauges
	// ("zab.proposer.queue_depth", "zab.proposer.inflight_frames"),
	// the batch-size distribution ("zab.proposer.batch_txns") and the
	// observer-feed gauges ("zab.observer.{count,lag_txns,lag_ms}").
	Metrics *metrics.Registry
	// InitialSnapshot, when non-nil, primes the node from a durable
	// checkpoint: the state machine is restored before Start and the
	// log begins at InitialZxid. Deprecated in favour of Storage; it
	// is ignored when Storage holds any recovered state.
	InitialSnapshot []byte
	InitialZxid     uint64
	// Storage, when non-nil, makes the node durable: frames are
	// persisted and fsynced before acknowledgement, votes and epochs
	// survive restart, and NewNode recovers from the newest snapshot
	// plus the log tail. Nil keeps the original in-memory behaviour.
	Storage Storage
}

// Roles of an ensemble member.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// Errors returned by Propose.
var (
	ErrStopped  = errors.New("zab: node stopped")
	ErrNoLeader = errors.New("zab: no leader known")
	ErrNoQuorum = errors.New("zab: failed to reach quorum")
)

// proposeTimeout bounds how long a proposal waits for commit+apply.
const proposeTimeout = 10 * time.Second

// proposeTimers recycles the commit-wait timers: every write on the
// hot path arms one, and a fresh time.NewTimer costs three allocations.
// Go 1.23+ timer semantics (unbuffered channel, Reset discards pending
// fires) make Reset-after-Stop safe without the old drain dance.
var proposeTimers = sync.Pool{New: func() any {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return t
}}

func getProposeTimer() *time.Timer {
	t := proposeTimers.Get().(*time.Timer)
	t.Reset(proposeTimeout)
	return t
}

func putProposeTimer(t *time.Timer) {
	t.Stop()
	proposeTimers.Put(t)
}

// maxFramesPerSend bounds how many frames one sender RPC carries; a
// follower further behind than this catches up over several round
// trips (or via the sync protocol once its position leaves the log).
const maxFramesPerSend = 64

// pendingTxn is one queued proposal waiting for its frame to commit.
type pendingTxn struct {
	txn  []byte
	noop bool
	ch   chan proposeOutcome // buffered(1); exactly one send ever happens
}

type proposeOutcome struct {
	zxid   uint64
	result []byte
	err    error
}

// Node is one member of the replicated ensemble.
type Node struct {
	cfg Config
	sm  StateMachine
	bsm BatchStateMachine // non-nil when sm supports batch apply
	rng *rand.Rand

	mu           sync.Mutex
	role         int
	epoch        uint64
	grantedEpoch uint64 // highest epoch we granted a vote for
	leaderID     uint64 // 0 when unknown
	log          []entry
	snapZxid     uint64 // zxid covered by the latest state snapshot
	commitZxid   uint64
	lastApplied  uint64
	nextSeq      uint32 // per-epoch proposal counter (leader only)
	lastContact  time.Time
	electionDue  time.Duration
	syncing      bool
	stopped      bool

	// Leader-side group-commit state. leaderGen increments on every
	// leadership transition; the proposer and sender goroutines carry
	// the generation they were started under and exit when it moves.
	leaderGen uint64
	propQ     []*pendingTxn
	// batchScratch is drainBatchLocked's reusable output buffer,
	// consumed within one proposer iteration under mu.
	batchScratch []*pendingTxn
	waiters      map[uint64]*pendingTxn // txn zxid -> waiter (leader only)
	match        map[uint64]uint64      // peer -> cumulative acked zxid
	stallSince   time.Time              // commit horizon stuck since
	leaderCond   *sync.Cond             // work/window/role changes
	tipsScratch  []uint64               // quorum-sort scratch, under mu

	// applyWaiters are follower-side (and forwarded-write) waits for
	// the local state machine to reach a zxid; each registered channel
	// is closed exactly once when lastApplied passes its key.
	applyWaiters map[uint64][]chan struct{}

	// Commit→apply pipeline state. Committed frames are enqueued on
	// applyQ (bounded by cfg.MaxApplyQueueFrames) and drained by the
	// applyLoop goroutine, which runs the state machine outside mu.
	//
	// applyMu is the state-machine transition lock: it serializes
	// applyLoop batches against snapshot installs (syncFromLeader),
	// snapshot serialization (snapshotLoop, handleSync, Checkpoint,
	// handleObserverPoll). The global lock order is applyMu BEFORE mu —
	// never acquire applyMu while holding mu. While applyMu is held,
	// lastApplied can only be advanced by the holder.
	applyMu       sync.Mutex
	applyQ        []entry
	applyCond     *sync.Cond // signalled when applyQ gains work or on stop
	applyEnqueued uint64     // highest zxid moved from log to applyQ
	applyLagTxns  int        // committed txns not yet applied (gauge feed)
	applyGen      uint64     // bumped on snapshot install; applyLoop discards stale drains

	// Durable-storage state (cfg.Storage != nil): the coverage of the
	// newest durable snapshot — in-memory truncation may not outrun it,
	// because recovery is that snapshot plus the log tail — and the
	// kick channel for the background fuzzy snapshotter.
	durableSnapZxid uint64
	snapReq         chan struct{}
	snapInFlight    bool

	// Read-lease state: the instant (on this node's clock) until which
	// a quorum of heartbeat acks guarantees no rival leader can have
	// committed a write, and the leader-side observer feed — the
	// non-voting replicas tailing this node's committed log, tracked
	// for lag but excluded from every quorum computation.
	now        func() time.Time
	leaseUntil time.Time
	observers  map[uint64]*observerFeed

	gQueue      *metrics.Gauge
	gInflight   *metrics.Gauge
	dBatch      *metrics.Distribution
	gObsCount   *metrics.Gauge
	gObsLagTxns *metrics.Gauge
	gObsLagMS   *metrics.Gauge
	gApplyLag   *metrics.Gauge
	gApplyQueue *metrics.Gauge

	connMu sync.Mutex
	conns  map[uint64]transport.Conn

	listener io.Closer
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewNode validates the configuration and builds a node. Call Start to
// join the ensemble.
func NewNode(cfg Config, sm StateMachine) (*Node, error) {
	if cfg.Net == nil {
		return nil, errors.New("zab: Config.Net is required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("zab: node ID %d not present in peer map", cfg.ID)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 15 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 10 * cfg.HeartbeatInterval
	}
	if cfg.MaxLogEntries <= 0 {
		cfg.MaxLogEntries = 8192
	}
	if cfg.MaxBatchTxns <= 0 {
		cfg.MaxBatchTxns = 128
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 20
	}
	if cfg.MaxInflightFrames <= 0 {
		cfg.MaxInflightFrames = 16
	}
	if cfg.MaxApplyQueueFrames <= 0 {
		cfg.MaxApplyQueueFrames = 256
	}
	if cfg.MaxClockSkew <= 0 {
		cfg.MaxClockSkew = cfg.ElectionTimeout / 10
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	n := &Node{
		cfg:          cfg,
		sm:           sm,
		rng:          rand.New(rand.NewSource(int64(cfg.ID))),
		conns:        make(map[uint64]transport.Conn),
		stopCh:       make(chan struct{}),
		waiters:      make(map[uint64]*pendingTxn),
		match:        make(map[uint64]uint64),
		applyWaiters: make(map[uint64][]chan struct{}),
		now:          cfg.Clock,
		observers:    make(map[uint64]*observerFeed),
		gQueue:       cfg.Metrics.Gauge("zab.proposer.queue_depth"),
		gInflight:    cfg.Metrics.Gauge("zab.proposer.inflight_frames"),
		dBatch:       cfg.Metrics.Distribution("zab.proposer.batch_txns"),
		gObsCount:    cfg.Metrics.Gauge("zab.observer.count"),
		gObsLagTxns:  cfg.Metrics.Gauge("zab.observer.lag_txns"),
		gObsLagMS:    cfg.Metrics.Gauge("zab.observer.lag_ms"),
		gApplyLag:    cfg.Metrics.Gauge("zab.apply.lag"),
		gApplyQueue:  cfg.Metrics.Gauge("zab.apply.queue_depth"),
	}
	n.bsm, _ = sm.(BatchStateMachine)
	n.leaderCond = sync.NewCond(&n.mu)
	n.applyCond = sync.NewCond(&n.mu)
	n.snapReq = make(chan struct{}, 1)
	if err := n.recoverFromStorage(); err != nil {
		return nil, err
	}
	n.applyEnqueued = n.lastApplied
	n.resetElectionTimer()
	return n, nil
}

// recoverFromStorage primes the node from its durable store — newest
// snapshot, log tail, persisted vote — falling back to the deprecated
// InitialSnapshot checkpoint when the store is absent or empty.
func (n *Node) recoverFromStorage() error {
	st := n.cfg.Storage
	var frames []Frame
	recovered := false
	if st != nil {
		epoch, granted := st.HardState()
		frames = st.Frames()
		n.epoch, n.grantedEpoch = epoch, granted
		z, restored, err := n.restoreSnapshotFromStorage(st)
		if err != nil {
			return err
		}
		if restored {
			recovered = true
			n.snapZxid = z
			n.commitZxid = z
			n.lastApplied = z
			n.durableSnapZxid = z
			if e := epochOf(z); e > n.epoch {
				n.epoch = e
			}
		}
		recovered = recovered || len(frames) > 0 || epoch != 0 || granted != 0
	}
	if !recovered && n.cfg.InitialSnapshot != nil {
		if err := n.sm.Restore(n.cfg.InitialSnapshot, n.cfg.InitialZxid); err != nil {
			return fmt.Errorf("zab: restoring initial snapshot: %w", err)
		}
		n.snapZxid = n.cfg.InitialZxid
		n.commitZxid = n.cfg.InitialZxid
		n.lastApplied = n.cfg.InitialZxid
		n.epoch = epochOf(n.cfg.InitialZxid)
	}
	// Replay the durable log tail: the frames sit uncommitted until a
	// quorum re-forms — an elected leader's epoch barrier commits them
	// transitively, exactly as an inherited in-memory tail would.
	for _, f := range frames {
		n.log = append(n.log, entry{Zxid: f.Zxid, Noop: f.Noop, Txns: f.Txns})
	}
	if len(n.log) > 0 {
		if e := epochOf(n.log[len(n.log)-1].last()); e > n.epoch {
			n.epoch = e
		}
	}
	return nil
}

// restoreSnapshotFromStorage loads the store's newest snapshot into the
// state machine, streaming when both sides support it (the snapshot is
// decoded straight off disk, O(chunk) memory) and falling back to the
// blob interface otherwise.
func (n *Node) restoreSnapshotFromStorage(st Storage) (zxid uint64, restored bool, err error) {
	ss, stStream := st.(StreamStorage)
	sms, smStream := n.sm.(StreamingStateMachine)
	if stStream && smStream {
		rc, z, ok := ss.SnapshotStream()
		if !ok {
			return 0, false, nil
		}
		err := sms.RestoreFrom(rc, z)
		if cerr := rc.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return 0, false, fmt.Errorf("zab: restoring durable snapshot: %w", err)
		}
		return z, true, nil
	}
	snap, z, ok := st.Snapshot()
	if !ok {
		return 0, false, nil
	}
	if err := n.sm.Restore(snap, z); err != nil {
		return 0, false, fmt.Errorf("zab: restoring durable snapshot: %w", err)
	}
	return z, true, nil
}

func makeZxid(epoch uint64, seq uint32) uint64 { return epoch<<32 | uint64(seq) }
func epochOf(zxid uint64) uint64               { return zxid >> 32 }

// Start begins listening for peer traffic and starts the election and
// heartbeat loops.
func (n *Node) Start() error {
	ln, err := n.cfg.Net.Listen(n.cfg.Peers[n.cfg.ID], transport.HandlerFunc(n.handle))
	if err != nil {
		return fmt.Errorf("zab: node %d: %w", n.cfg.ID, err)
	}
	n.listener = ln
	n.wg.Add(3)
	go n.electionLoop()
	go n.heartbeatLoop()
	go n.applyLoop()
	if n.cfg.Storage != nil {
		n.wg.Add(1)
		go n.snapshotLoop()
	}
	return nil
}

// Stop shuts the node down and waits for its goroutines.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	if n.role == roleLeader {
		n.failLeaderLocked(ErrStopped)
	}
	n.role = roleFollower // a stopped node must not report leadership
	n.leaderID = 0
	n.leaderCond.Broadcast()
	n.applyCond.Broadcast()
	n.mu.Unlock()
	close(n.stopCh)
	if n.listener != nil {
		n.listener.Close()
	}
	n.connMu.Lock()
	for id, c := range n.conns {
		c.Close()
		delete(n.conns, id)
	}
	n.connMu.Unlock()
	n.wg.Wait()
}

// ID returns the node's ensemble identity.
func (n *Node) ID() uint64 { return n.cfg.ID }

// IsLeader reports whether this node currently leads the ensemble.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == roleLeader
}

// LeaderID returns the known leader's ID, or 0.
func (n *Node) LeaderID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == roleLeader {
		return n.cfg.ID
	}
	return n.leaderID
}

// Epoch returns the node's current epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// LastZxid returns the zxid of the last log entry (or snapshot).
func (n *Node) LastZxid() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastZxidLocked()
}

// CommitZxid returns the highest committed zxid.
func (n *Node) CommitZxid() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitZxid
}

// LastApplied returns the zxid of the last locally applied transaction.
func (n *Node) LastApplied() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastApplied
}

// DebugString reports the node's replication state for diagnostics.
func (n *Node) DebugString() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	role := "follower"
	switch n.role {
	case roleCandidate:
		role = "candidate"
	case roleLeader:
		role = "leader"
	}
	return fmt.Sprintf("id=%d role=%s epoch=%d granted=%d leader=%d last=%x commit=%x applied=%x log=%d queue=%d inflight=%d syncing=%v stopped=%v sinceContact=%s due=%s",
		n.cfg.ID, role, n.epoch, n.grantedEpoch, n.leaderID,
		n.lastZxidLocked(), n.commitZxid, n.lastApplied, len(n.log),
		len(n.propQ), n.uncommittedFramesLocked(),
		n.syncing, n.stopped, time.Since(n.lastContact).Round(time.Millisecond), n.electionDue)
}

// Checkpoint returns a durable snapshot of the applied state and the
// zxid it covers, for the disk persistence layered above this package.
// applyMu freezes the apply pipeline so the serialized state and the
// reported zxid describe the same cut.
func (n *Node) Checkpoint() (snap []byte, zxid uint64) {
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	zxid = n.lastApplied
	n.mu.Unlock()
	return n.sm.Snapshot(), zxid
}

func (n *Node) lastZxidLocked() uint64 {
	if len(n.log) == 0 {
		return n.snapZxid
	}
	return n.log[len(n.log)-1].last()
}

func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) resetElectionTimer() {
	n.lastContact = n.now()
	n.electionDue = n.cfg.ElectionTimeout +
		time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
}

// --- connections ------------------------------------------------------

func (n *Node) getConn(id uint64) (transport.Conn, error) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[id]; ok {
		return c, nil
	}
	addr, ok := n.cfg.Peers[id]
	if !ok {
		return nil, fmt.Errorf("zab: unknown peer %d", id)
	}
	c, err := n.cfg.Net.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.conns[id] = c
	return c, nil
}

func (n *Node) dropConn(id uint64) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[id]; ok {
		c.Close()
		delete(n.conns, id)
	}
}

// callPeer performs one RPC to a peer, invalidating the cached
// connection on failure so the next call redials.
func (n *Node) callPeer(id uint64, req []byte) ([]byte, error) {
	c, err := n.getConn(id)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(req)
	if err != nil {
		n.dropConn(id)
		return nil, err
	}
	return resp, nil
}

// --- request dispatch -------------------------------------------------

func (n *Node) handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	kind := r.Uint8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch kind {
	case msgPropose:
		m := decodeProposeReq(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handlePropose(m).encode(), nil
	case msgCommit:
		epoch, zxid := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n.handleCommit(epoch, zxid)
		return nil, nil
	case msgHeartbeat:
		m := heartbeatReq{Epoch: r.Uint64(), LeaderID: r.Uint64(), Commit: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleHeartbeat(m).encode(), nil
	case msgRequestVote:
		m := requestVoteReq{Epoch: r.Uint64(), CandidateID: r.Uint64(), LastZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleRequestVote(m).encode(), nil
	case msgSync:
		m := syncReq{FromZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		resp, err := n.handleSync(m)
		if err != nil {
			return nil, err
		}
		return resp.encode(), nil
	case msgForward:
		txn := r.BytesCopy32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		result, zxid, err := n.propose(txn)
		if err != nil {
			return nil, err
		}
		return forwardResp{Zxid: zxid, Result: result}.encode(), nil
	case msgObserverPoll:
		m := observerPollReq{ObserverID: r.Uint64(), FromZxid: r.Uint64(), AppliedZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleObserverPoll(m).encode(), nil
	default:
		return nil, fmt.Errorf("zab: unknown message kind %d", kind)
	}
}

// --- follower side ----------------------------------------------------

// adoptEpochLocked moves the node to follower state for a newer epoch.
func (n *Node) adoptEpochLocked(epoch, leaderID uint64) {
	if epoch > n.epoch {
		n.epoch = epoch
	}
	if n.role == roleLeader {
		n.failLeaderLocked(ErrNoLeader)
	}
	n.role = roleFollower
	if leaderID != 0 {
		n.leaderID = leaderID
	}
	n.resetElectionTimer()
}

// handlePropose processes one propose window: a run of consecutive
// frames attaching at PrevZxid. Frames the follower already holds are
// skipped (retransmits after a partial round trip); the first novel
// frame must attach exactly at the log tip, otherwise the follower
// asks to sync. The ack carries the follower's tip as a CUMULATIVE
// acknowledgement: equal zxids imply equal logs (one leader per epoch,
// one entry per zxid), so the leader may trust it as this follower's
// replicated horizon. On a durable node the ack is additionally a
// durability promise, so the whole window is fsynced — one sync per
// window, amortizing every frame and transaction it carried — before
// the ack is returned; the fsync happens outside the node mutex so
// applies and reads proceed meanwhile.
func (n *Node) handlePropose(m proposeReq) proposeResp {
	resp, appended := n.handleProposeLocked(m)
	if appended && resp.Ack && n.cfg.Storage != nil {
		if err := n.cfg.Storage.Sync(); err != nil {
			// Not durable: withhold both the ack and the sync request —
			// a node whose disk is failing should fall out of the quorum,
			// not churn the leader.
			return proposeResp{Epoch: resp.Epoch, LastZxid: resp.LastZxid}
		}
	}
	return resp
}

func (n *Node) handleProposeLocked(m proposeReq) (proposeResp, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch < n.epoch {
		return proposeResp{Epoch: n.epoch, LastZxid: n.lastZxidLocked()}, false
	}
	n.adoptEpochLocked(m.Epoch, m.LeaderID)
	prev := m.PrevZxid
	tip := n.lastZxidLocked()
	var novel []entry
	for _, e := range m.Entries {
		if e.last() <= tip {
			// Already held (an overlap from a retransmitted window).
			prev = e.last()
			continue
		}
		if prev != tip {
			n.triggerSyncLocked()
			return proposeResp{NeedSync: true, Epoch: n.epoch, LastZxid: n.lastZxidLocked()}, false
		}
		novel = append(novel, e)
		tip = e.last()
		prev = tip
	}
	if len(m.Entries) == 0 && prev != tip {
		// A probe from a leader that lost track of our position.
		n.triggerSyncLocked()
		return proposeResp{NeedSync: true, Epoch: n.epoch, LastZxid: tip}, false
	}
	if len(novel) > 0 {
		// Persist before extending the in-memory log, so the tip this
		// node exposes (acks, votes) never exceeds what a restart could
		// reconstruct once the trailing Sync lands.
		if err := n.appendStorageLocked(novel); err != nil {
			return proposeResp{Epoch: n.epoch, LastZxid: n.lastZxidLocked()}, false
		}
		n.log = append(n.log, novel...)
	}
	n.advanceCommitLocked(m.Commit)
	return proposeResp{Ack: true, Epoch: n.epoch, LastZxid: n.lastZxidLocked()}, len(novel) > 0
}

// appendStorageLocked writes frames to the durable log (no-op without
// storage). Durability is deferred to the caller's Sync.
func (n *Node) appendStorageLocked(entries []entry) error {
	if n.cfg.Storage == nil {
		return nil
	}
	frames := make([]Frame, len(entries))
	for i, e := range entries {
		frames[i] = Frame{Zxid: e.Zxid, Noop: e.Noop, Txns: e.Txns}
	}
	return n.cfg.Storage.Append(frames)
}

func (n *Node) handleCommit(epoch, zxid uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch < n.epoch {
		return
	}
	n.adoptEpochLocked(epoch, 0)
	n.advanceCommitLocked(zxid)
}

func (n *Node) handleHeartbeat(m heartbeatReq) heartbeatResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch >= n.epoch {
		n.adoptEpochLocked(m.Epoch, m.LeaderID)
		n.advanceCommitLocked(m.Commit)
		if m.Commit > n.lastZxidLocked() {
			n.triggerSyncLocked()
		}
	}
	return heartbeatResp{Epoch: n.epoch, LastZxid: n.lastZxidLocked()}
}

func (n *Node) handleRequestVote(m requestVoteReq) requestVoteResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch <= n.grantedEpoch || m.Epoch <= n.epoch {
		return requestVoteResp{Epoch: n.epoch}
	}
	if m.LastZxid < n.lastZxidLocked() {
		return requestVoteResp{Epoch: n.epoch}
	}
	// Leader stickiness: a follower whose election timer has not aged a
	// full ElectionTimeout refuses to elect a replacement leader
	// (without adopting the candidate's epoch — inflating our own epoch
	// here would depose the leader through our next heartbeat ack).
	// This is what makes the read lease sound: every member of a
	// winning vote quorum either went a full election timeout without
	// resetting its timer (so, by quorum intersection with the lease's
	// heartbeat-ack quorum, the old lease expired before the new leader
	// could commit anything) or was the old leader itself (which
	// revokes its lease in the same critical section that grants the
	// vote, below). The timer — not "heard a leader" — is the
	// condition on purpose: it also keeps a just-restarted voter, whose
	// pre-crash heartbeat ack may be funding a still-live lease, from
	// voting inside that window. Election liveness is unaffected: a
	// member only campaigns once its own timer passes the same bound,
	// by which point its electorate has aged past it too.
	if n.role == roleFollower && m.CandidateID != n.leaderID &&
		n.now().Sub(n.lastContact) < n.cfg.ElectionTimeout {
		return requestVoteResp{Epoch: n.epoch}
	}
	// The vote must be durable before it is granted: a node that
	// forgets a grant across a crash could vote twice in one epoch and
	// elect two leaders.
	if n.cfg.Storage != nil {
		if err := n.cfg.Storage.SaveHardState(m.Epoch, m.Epoch); err != nil {
			return requestVoteResp{Epoch: n.epoch}
		}
	}
	n.grantedEpoch = m.Epoch
	n.epoch = m.Epoch
	if n.role == roleLeader {
		n.failLeaderLocked(ErrNoLeader)
	}
	n.role = roleFollower
	n.leaderID = 0 // unknown until the new leader heartbeats
	n.resetElectionTimer()
	return requestVoteResp{Granted: true, Epoch: n.epoch}
}

// advanceCommitLocked raises the commit horizon (bounded by what we
// actually hold) and hands newly committed entries to the apply loop.
func (n *Node) advanceCommitLocked(commit uint64) {
	if commit > n.lastZxidLocked() {
		commit = n.lastZxidLocked()
	}
	if commit <= n.commitZxid {
		return
	}
	n.commitZxid = commit
	n.stallSince = time.Time{}
	n.enqueueCommittedLocked()
	n.leaderCond.Broadcast() // the pipelining window may have opened
}

// enqueueCommittedLocked moves committed-but-unqueued frames from the
// log onto the apply queue, in zxid order, up to the queue bound. The
// bound is a pull window: when the queue is full the remainder stays
// in the log and the apply loop pulls it after draining (and the
// proposer stops admitting new frames until then).
func (n *Node) enqueueCommittedLocked() {
	max := n.cfg.MaxApplyQueueFrames
	if len(n.applyQ) >= max {
		return
	}
	i := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.applyEnqueued })
	for ; i < len(n.log) && len(n.applyQ) < max; i++ {
		e := n.log[i]
		if e.last() > n.commitZxid {
			break
		}
		n.applyQ = append(n.applyQ, e)
		n.applyEnqueued = e.last()
		if e.Noop {
			n.applyLagTxns++
		} else {
			n.applyLagTxns += len(e.Txns)
		}
	}
	n.gApplyQueue.Set(int64(len(n.applyQ)))
	n.gApplyLag.Set(int64(n.applyLagTxns))
	n.applyCond.Signal()
}

// maxApplyRunTxns caps how many txns one coalesced apply run hands the
// state machine, bounding both scheduler working-set and waiter-wakeup
// latency for the frames at the front of the run.
const maxApplyRunTxns = 256

// applyLoop is the apply side of the commit→apply split: it drains the
// queue that advanceCommitLocked feeds and runs the state machine
// OUTSIDE the node mutex, so proposer drains, follower acks,
// heartbeats, and reads never queue behind state-machine work.
// Adjacent frames of the same epoch are coalesced into one run so the
// state machine can schedule path-disjoint txns across frame
// boundaries too. Waiter wakeup, lastApplied advancement, and log
// truncation all live here now.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	var frames []entry  // drained applyQ, reused across iterations
	var merged [][]byte // cross-frame coalescing scratch
	for {
		n.mu.Lock()
		for !n.stopped && len(n.applyQ) == 0 {
			n.applyCond.Wait()
		}
		if n.stopped {
			n.mu.Unlock()
			return
		}
		frames = append(frames[:0], n.applyQ...)
		n.applyQ = n.applyQ[:0]
		gen := n.applyGen
		n.mu.Unlock()

		// applyMu → mu is the global order; while we hold applyMu,
		// lastApplied only moves here. A snapshot install (which also
		// takes applyMu) may have overtaken the drained frames — it
		// bumps applyGen and re-enqueues whatever is still needed, so a
		// stale drain is discarded wholesale rather than applied onto
		// the wrong base state.
		n.applyMu.Lock()
		n.mu.Lock()
		if gen != n.applyGen {
			n.mu.Unlock()
			n.applyMu.Unlock()
			continue
		}
		n.mu.Unlock()

		for i := 0; i < len(frames); {
			e := frames[i]
			if e.Noop {
				n.mu.Lock()
				n.lastApplied = e.Zxid
				n.applyLagTxns--
				n.wakeWaiterLocked(e.Zxid, nil)
				n.wakeAppliedLocked()
				n.mu.Unlock()
				i++
				continue
			}
			// Coalesce a contiguous same-epoch run of txn frames.
			j := i + 1
			txns := e.Txns
			total := len(e.Txns)
			for j < len(frames) && !frames[j].Noop &&
				frames[j].Zxid == frames[j-1].last()+1 &&
				total+len(frames[j].Txns) <= maxApplyRunTxns {
				total += len(frames[j].Txns)
				j++
			}
			if j > i+1 {
				merged = merged[:0]
				for k := i; k < j; k++ {
					merged = append(merged, frames[k].Txns...)
				}
				txns = merged
			}
			var results [][]byte
			if n.bsm != nil {
				results = n.bsm.ApplyBatch(txns, e.Zxid)
			} else {
				results = make([][]byte, len(txns))
				for k, txn := range txns {
					results[k] = n.sm.Apply(txn, e.Zxid+uint64(k))
				}
			}
			n.mu.Lock()
			off := 0
			for k := i; k < j; k++ {
				f := frames[k]
				n.lastApplied = f.last()
				for t := range f.Txns {
					var res []byte
					if off+t < len(results) {
						res = results[off+t]
					}
					n.wakeWaiterLocked(f.Zxid+uint64(t), res)
				}
				off += len(f.Txns)
				n.applyLagTxns -= len(f.Txns)
			}
			n.wakeAppliedLocked()
			n.gApplyLag.Set(int64(n.applyLagTxns))
			n.mu.Unlock()
			i = j
		}
		n.applyMu.Unlock()

		n.mu.Lock()
		n.enqueueCommittedLocked() // pull the window the bound withheld
		n.maybeTruncateLocked()
		n.gApplyQueue.Set(int64(len(n.applyQ)))
		n.leaderCond.Broadcast() // reopen the proposer's backpressure gate
		n.mu.Unlock()
	}
}

// wakeWaiterLocked delivers a committed transaction's result to its
// proposer, if one is still waiting on this node. The send is provably
// non-blocking — the waiter channel is buffered(1) and each waiter is
// removed from the map before its single send — but a plain send would
// still wedge the apply loop inside the node mutex if that invariant
// ever slipped, so the default arm turns such a bug into a dropped
// wakeup (the proposer times out) instead of a deadlock.
func (n *Node) wakeWaiterLocked(zxid uint64, result []byte) {
	if w, ok := n.waiters[zxid]; ok {
		delete(n.waiters, zxid)
		select {
		case w.ch <- proposeOutcome{zxid: zxid, result: result}:
		default:
		}
	}
}

// wakeAppliedLocked closes every registered apply-wait channel whose
// zxid the state machine has now reached. Each waiter has its own
// channel keyed by the exact zxid it needs, so a commit wakes only the
// waits it satisfies — no broadcast herd.
func (n *Node) wakeAppliedLocked() {
	for z, chans := range n.applyWaiters {
		if z > n.lastApplied {
			continue
		}
		for _, ch := range chans {
			close(ch)
		}
		delete(n.applyWaiters, z)
	}
}

// maybeTruncateLocked drops the bulk of the applied log prefix when
// the log grows beyond the configured bound, keeping a small margin so
// slightly-lagging followers can still catch up from the log instead
// of a full snapshot (which handleSync regenerates on demand).
//
// On a durable node the cut is additionally bounded by SNAPSHOT
// COVERAGE, not the bare entry count: recovery is the newest durable
// snapshot plus the log tail, so an in-memory frame may only be
// dropped once a durable snapshot covers it (the same snapshot then
// lets the storage engine reclaim the WAL segments behind it). When
// coverage lags, the background fuzzy snapshotter is kicked and the
// log is allowed to run past its bound until the snapshot lands.
func (n *Node) maybeTruncateLocked() {
	if len(n.log) <= n.cfg.MaxLogEntries {
		return
	}
	const margin = 64
	cut := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.lastApplied })
	if n.cfg.Storage != nil {
		n.requestSnapshotLocked()
		covered := sort.Search(len(n.log), func(i int) bool { return n.log[i].last() > n.durableSnapZxid })
		if covered < cut {
			cut = covered
		}
	}
	if cut <= margin {
		return
	}
	cut -= margin
	n.snapZxid = n.log[cut-1].last()
	n.log = append([]entry(nil), n.log[cut:]...)
}

// triggerSyncLocked schedules a pull-based catch-up from the leader.
func (n *Node) triggerSyncLocked() {
	if n.syncing || n.stopped || n.leaderID == 0 || n.leaderID == n.cfg.ID {
		return
	}
	n.syncing = true
	leader := n.leaderID
	from := n.lastZxidLocked()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.syncFromLeader(leader, from)
		n.mu.Lock()
		n.syncing = false
		n.mu.Unlock()
	}()
}

func (n *Node) syncFromLeader(leader, from uint64) {
	respB, err := n.callPeer(leader, syncReq{FromZxid: from}.encode())
	if err != nil {
		return
	}
	resp, err := decodeSyncResp(respB)
	if err != nil {
		return
	}
	// applyMu first (applyMu → mu): a snapshot install replaces the
	// state machine's contents, which must not race an in-flight apply
	// batch. The sync pull is rare, so stalling the apply loop for the
	// install is acceptable.
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if resp.Epoch < n.epoch || n.stopped {
		return
	}
	n.adoptEpochLocked(resp.Epoch, resp.LeaderID)
	if resp.HasSnapshot {
		// Durable first: the snapshot replaces our whole log (divergent
		// tail included), so InstallSnapshot resets the on-disk log the
		// same way the in-memory one is reset below.
		if n.cfg.Storage != nil {
			if err := n.cfg.Storage.InstallSnapshot(resp.Snapshot, resp.SnapZxid); err != nil {
				return
			}
		}
		if err := n.sm.Restore(resp.Snapshot, resp.SnapZxid); err != nil {
			return
		}
		n.snapZxid = resp.SnapZxid
		n.durableSnapZxid = resp.SnapZxid
		n.lastApplied = resp.SnapZxid
		if n.commitZxid < resp.SnapZxid {
			n.commitZxid = resp.SnapZxid
		}
		n.log = nil
		// Reset the apply pipeline around the installed state: queued
		// frames describe transitions from the pre-install state and
		// must not run, and any drain the apply loop already holds is
		// invalidated via the generation bump.
		n.applyQ = n.applyQ[:0]
		n.applyEnqueued = resp.SnapZxid
		n.applyLagTxns = 0
		n.applyGen++
		n.gApplyQueue.Set(0)
		n.gApplyLag.Set(0)
		n.wakeAppliedLocked()
	} else if n.lastZxidLocked() != from {
		// Our log moved while the sync was in flight; retry later.
		return
	}
	var novel []entry
	for _, e := range resp.Entries {
		if e.last() <= n.lastZxidLocked() || e.last() <= n.snapZxid {
			continue
		}
		novel = append(novel, e)
		n.log = append(n.log, e)
	}
	if len(novel) > 0 && n.cfg.Storage != nil {
		// Persist and harden the pulled tail before it can be claimed by
		// a later ack or vote; the sync pull is rare, so the inline
		// fsync under the lock is acceptable.
		if n.appendStorageLocked(novel) != nil || n.cfg.Storage.Sync() != nil {
			n.log = n.log[:len(n.log)-len(novel)]
			return
		}
	}
	n.advanceCommitLocked(resp.Commit)
	// advanceCommitLocked returns early when the horizon didn't move,
	// but an install may have rewound applyEnqueued below an unchanged
	// commitZxid — re-enqueue explicitly so the gap replays.
	n.enqueueCommittedLocked()
}

// handleSync runs on the leader: ship either the log suffix after
// FromZxid, or a full snapshot when the follower's position precedes
// the log horizon or is unknown to us (trimmed away or divergent).
func (n *Node) handleSync(m syncReq) (syncResp, error) {
	n.mu.Lock()
	if n.role != roleLeader {
		n.mu.Unlock()
		return syncResp{}, fmt.Errorf("zab: node %d is not the leader", n.cfg.ID)
	}
	resp := syncResp{Commit: n.commitZxid, Epoch: n.epoch, LeaderID: n.cfg.ID}
	if m.FromZxid == n.snapZxid {
		resp.Entries = append(resp.Entries, n.log...)
		n.mu.Unlock()
		return resp, nil
	}
	if m.FromZxid > n.snapZxid {
		for i, e := range n.log {
			if e.last() == m.FromZxid {
				resp.Entries = append(resp.Entries, n.log[i+1:]...)
				n.mu.Unlock()
				return resp, nil
			}
		}
	}
	n.mu.Unlock()

	// Snapshot-first determinism: a position BEHIND the log horizon
	// (truncation dropped the frames the follower still needs) skips
	// the log scan above and lands here directly, as does a position
	// we do not recognize (a divergent tail kept across a failover).
	// Either way the answer is the full checkpoint of the applied
	// state plus the unapplied tail — never a suffix with a silent
	// gap the caller would have to detect. applyMu (taken before mu,
	// per the global order) freezes lastApplied so the serialized
	// state and the tail describe one consistent cut.
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader {
		return syncResp{}, fmt.Errorf("zab: node %d is not the leader", n.cfg.ID)
	}
	resp = syncResp{Commit: n.commitZxid, Epoch: n.epoch, LeaderID: n.cfg.ID}
	resp.HasSnapshot = true
	resp.SnapZxid = n.lastApplied
	resp.Snapshot = n.sm.Snapshot()
	for _, e := range n.log {
		if e.Zxid > n.lastApplied {
			resp.Entries = append(resp.Entries, e)
		}
	}
	return resp, nil
}

// --- leader side ------------------------------------------------------

// Propose submits a transaction for atomic broadcast. On a follower it
// is forwarded to the leader. It returns the state machine's result
// once the transaction is committed and applied on THIS node, which
// gives sessions connected here read-your-writes consistency — the
// same guarantee a ZooKeeper server provides its clients.
//
// Propose is safe for arbitrary concurrency; concurrent calls are
// coalesced by the leader's proposer into group-commit frames instead
// of queueing on a serialized quorum round trip.
func (n *Node) Propose(txn []byte) ([]byte, error) {
	result, zxid, err := n.propose(txn)
	if err != nil {
		return nil, err
	}
	if err := n.waitApplied(zxid); err != nil {
		return nil, err
	}
	return result, nil
}

func (n *Node) propose(txn []byte) ([]byte, uint64, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, 0, ErrStopped
	}
	isLeader := n.role == roleLeader
	leader := n.leaderID
	n.mu.Unlock()

	if !isLeader {
		if leader == 0 || leader == n.cfg.ID {
			return nil, 0, ErrNoLeader
		}
		respB, err := n.callPeer(leader, forwardReq{Txn: txn}.encode())
		if err != nil {
			return nil, 0, err
		}
		resp, err := decodeForwardResp(respB)
		if err != nil {
			return nil, 0, err
		}
		return resp.Result, resp.Zxid, nil
	}
	return n.proposeAsLeader(txn, false)
}

// waitApplied blocks until this node's state machine has applied the
// given zxid (or the node stops / the wait times out). Each call
// registers one channel keyed by the exact zxid it needs and performs
// a single deadline-aware select on it — a timeout wakes only this
// caller, never the other waiters.
func (n *Node) waitApplied(zxid uint64) error {
	n.mu.Lock()
	if n.lastApplied >= zxid {
		n.mu.Unlock()
		return nil
	}
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	ch := make(chan struct{})
	n.applyWaiters[zxid] = append(n.applyWaiters[zxid], ch)
	n.mu.Unlock()

	timer := getProposeTimer()
	defer putProposeTimer(timer)
	select {
	case <-ch:
		return nil
	case <-n.stopCh:
		return ErrStopped
	case <-timer.C:
		n.mu.Lock()
		applied := n.lastApplied >= zxid
		chans := n.applyWaiters[zxid]
		for i, c := range chans {
			if c == ch {
				n.applyWaiters[zxid] = append(chans[:i:i], chans[i+1:]...)
				break
			}
		}
		if len(n.applyWaiters[zxid]) == 0 {
			delete(n.applyWaiters, zxid)
		}
		n.mu.Unlock()
		if applied {
			return nil
		}
		return fmt.Errorf("zab: zxid %x not applied locally within %v", zxid, proposeTimeout)
	}
}

// proposeAsLeader enqueues one transaction for the proposer goroutine
// and waits for its frame to commit and apply, returning the per-txn
// state-machine result.
func (n *Node) proposeAsLeader(txn []byte, noop bool) ([]byte, uint64, error) {
	p := &pendingTxn{txn: txn, noop: noop, ch: make(chan proposeOutcome, 1)}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, 0, ErrStopped
	}
	if n.role != roleLeader {
		n.mu.Unlock()
		return nil, 0, ErrNoLeader
	}
	n.propQ = append(n.propQ, p)
	n.gQueue.Set(int64(len(n.propQ)))
	n.leaderCond.Broadcast()
	n.mu.Unlock()

	timer := getProposeTimer()
	defer putProposeTimer(timer)
	select {
	case o := <-p.ch:
		if o.err != nil {
			return nil, 0, o.err
		}
		return o.result, o.zxid, nil
	case <-n.stopCh:
		return nil, 0, ErrStopped
	case <-timer.C:
		// The transaction stays queued/in flight; it may still commit
		// (the session layer's retry dedup absorbs that), but this
		// caller stops waiting.
		return nil, 0, fmt.Errorf("zab: proposal not committed within %v", proposeTimeout)
	}
}

// failLeaderLocked fails every queued and in-flight proposal with err
// and retires the current leadership generation, stopping the proposer
// and sender goroutines. Writes that already replicated may still
// commit under the next leader — the error only means THIS node can no
// longer promise anything, the same contract a ZooKeeper connection
// loss gives a client.
func (n *Node) failLeaderLocked(err error) {
	for _, p := range n.propQ {
		p.ch <- proposeOutcome{err: err}
	}
	n.propQ = nil
	for z, p := range n.waiters {
		delete(n.waiters, z)
		p.ch <- proposeOutcome{err: err}
	}
	n.leaderGen++
	n.stallSince = time.Time{}
	// Step-down revokes the read lease and retires the observer feed;
	// both are leader-only state.
	n.leaseUntil = time.Time{}
	n.observers = make(map[uint64]*observerFeed)
	n.gObsCount.Set(0)
	n.gObsLagTxns.Set(0)
	n.gObsLagMS.Set(0)
	n.gQueue.Set(0)
	n.gInflight.Set(0)
	n.leaderCond.Broadcast()
}

// leaderGenLocked reports whether the node still leads under the given
// leadership generation.
func (n *Node) leaderGenLocked(gen uint64) bool {
	return n.role == roleLeader && n.leaderGen == gen && !n.stopped
}

// uncommittedFramesLocked counts proposed-but-uncommitted frames — the
// pipelining window occupancy.
func (n *Node) uncommittedFramesLocked() int {
	i := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.commitZxid })
	return len(n.log) - i
}

// proposerLoop is the group-commit heart: it drains the proposal
// queue, coalesces pending transactions into one frame bounded by
// MaxBatchTxns/MaxBatchBytes, appends it to the log and hands it to
// the per-follower senders — without waiting for the previous frame's
// acks, up to MaxInflightFrames outstanding.
func (n *Node) proposerLoop(gen uint64) {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		// The epoch barrier is exempt from the pipelining window: a
		// leader elected with an inherited uncommitted tail of
		// MaxInflightFrames or more frames must still propose its
		// barrier, because nothing inherited can commit until a
		// current-epoch frame exists (the §5.4.2 rule) — gating the
		// barrier on the window would livelock the whole shard. The
		// same exemption covers the apply-queue bound, which is the
		// commit→apply backpressure: a full queue stops NEW txn frames
		// so a slow state machine cannot grow the log without bound.
		for n.leaderGenLocked(gen) &&
			(len(n.propQ) == 0 ||
				(!n.propQ[0].noop &&
					(n.uncommittedFramesLocked() >= n.cfg.MaxInflightFrames ||
						len(n.applyQ) >= n.cfg.MaxApplyQueueFrames))) {
			n.leaderCond.Wait()
		}
		if !n.leaderGenLocked(gen) {
			n.mu.Unlock()
			return
		}
		batch := n.drainBatchLocked()
		n.gQueue.Set(int64(len(n.propQ)))
		n.dBatch.Observe(int64(len(batch)))

		first := n.nextSeq + 1
		e := entry{Zxid: makeZxid(n.epoch, first), Noop: batch[0].noop}
		if !e.Noop {
			e.Txns = make([][]byte, len(batch))
			for i, p := range batch {
				e.Txns[i] = p.txn
			}
		}
		// Persist the frame before exposing it: once in the log it is
		// streamed to followers and counted toward the leader's own
		// (durable) tip. The fsync itself rides the leader sync loop.
		if err := n.appendStorageLocked([]entry{e}); err != nil {
			// The local disk is failing; this node can no longer lead.
			for _, p := range batch {
				p.ch <- proposeOutcome{err: err}
			}
			n.failLeaderLocked(err)
			n.role = roleFollower
			n.leaderID = 0
			n.resetElectionTimer()
			n.mu.Unlock()
			return
		}
		if e.Noop {
			n.nextSeq++
			n.waiters[e.Zxid] = batch[0]
		} else {
			for i, p := range batch {
				n.waiters[e.Zxid+uint64(i)] = p
			}
			n.nextSeq += uint32(len(batch))
		}
		n.log = append(n.log, e)
		n.gInflight.Set(int64(n.uncommittedFramesLocked()))
		// A single-member "quorum" commits on append (durable nodes:
		// once the sync loop's fsync covers it); otherwise the senders'
		// acks advance the horizon.
		n.maybeAdvanceLeaderCommitLocked()
		n.leaderCond.Broadcast()
		n.mu.Unlock()
	}
}

// drainBatchLocked takes the next group-commit batch off the queue: a
// lone no-op barrier, or a run of transactions bounded by count and
// bytes (never mixing a barrier into a transaction frame). The batch
// is copied into a proposer-owned scratch slice and the queue is
// compacted in place, keeping propQ's backing array stable — the old
// reslice-off-the-front scheme bled capacity and made every enqueue
// reallocate. The scratch is safe to reuse because the proposer fully
// consumes each batch (under mu) before draining the next.
func (n *Node) drainBatchLocked() []*pendingTxn {
	count, bytes := 0, 0
	if n.propQ[0].noop {
		count = 1
	} else {
		for _, p := range n.propQ {
			if p.noop || count >= n.cfg.MaxBatchTxns {
				break
			}
			if count > 0 && bytes+len(p.txn) > n.cfg.MaxBatchBytes {
				break
			}
			count++
			bytes += len(p.txn)
		}
	}
	batch := append(n.batchScratch[:0], n.propQ[:count]...)
	n.batchScratch = batch
	rest := copy(n.propQ, n.propQ[count:])
	for i := rest; i < len(n.propQ); i++ {
		n.propQ[i] = nil // drop references so abandoned txns can be collected
	}
	n.propQ = n.propQ[:rest]
	return batch
}

// maybeAdvanceLeaderCommitLocked recomputes the quorum-replicated
// horizon from the cumulative acks and commits every frame of the
// CURRENT epoch fully below it (frames inherited from older epochs
// commit transitively — the barrier no-op guarantees one current-epoch
// frame exists, the Raft §5.4.2 safety argument).
func (n *Node) maybeAdvanceLeaderCommitLocked() {
	if n.role != roleLeader {
		return
	}
	tips := append(n.tipsScratch[:0], n.selfTipLocked())
	for id := range n.cfg.Peers {
		if id != n.cfg.ID {
			tips = append(tips, n.match[id])
		}
	}
	slices.Sort(tips) // ascending; allocation-free, unlike sort.Slice
	n.tipsScratch = tips
	q := tips[len(tips)-n.quorum()]
	if q <= n.commitZxid {
		return
	}
	target := n.commitZxid
	for i := len(n.log) - 1; i >= 0; i-- {
		e := n.log[i]
		if e.last() > q {
			continue
		}
		if epochOf(e.Zxid) == n.epoch {
			target = e.last()
		}
		break
	}
	if target <= n.commitZxid {
		return
	}
	epoch := n.epoch
	n.advanceCommitLocked(target)
	n.gInflight.Set(int64(n.uncommittedFramesLocked()))
	// Let followers apply promptly instead of waiting for the next
	// piggybacked horizon. A single-node ensemble has nobody to tell —
	// skip the encode, this runs once per commit advance.
	if len(n.cfg.Peers) > 1 {
		n.broadcastAsync(commitReq{Epoch: epoch, Zxid: n.commitZxid}.encode())
	}
}

// selfTipLocked is the leader's own contribution to the commit
// quorum: its log tip, capped at the durable horizon when a storage
// engine is attached — the leader's vote for a frame is subject to the
// same fsync discipline as a follower's ack.
func (n *Node) selfTipLocked() uint64 {
	tip := n.lastZxidLocked()
	if n.cfg.Storage != nil {
		if d := n.cfg.Storage.LastDurableZxid(); d < tip {
			tip = d
		}
	}
	return tip
}

// leaderSyncLoop (durable leaders only) is the group-fsync heart of
// the write path: whenever the log tip is ahead of the durable
// horizon it issues one Sync, which hardens every frame appended since
// the previous one — frames keep arriving from the proposer while the
// fsync is in flight and ride the next — then re-derives the commit
// horizon with the leader's now-advanced durable tip.
func (n *Node) leaderSyncLoop(gen uint64) {
	defer n.wg.Done()
	st := n.cfg.Storage
	for {
		n.mu.Lock()
		for n.leaderGenLocked(gen) && n.lastZxidLocked() <= st.LastDurableZxid() {
			n.leaderCond.Wait()
		}
		if !n.leaderGenLocked(gen) {
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		if err := st.Sync(); err != nil {
			n.mu.Lock()
			if n.leaderGenLocked(gen) {
				n.failLeaderLocked(err)
				n.role = roleFollower
				n.leaderID = 0
				n.resetElectionTimer()
			}
			n.mu.Unlock()
			return
		}
		n.mu.Lock()
		n.maybeAdvanceLeaderCommitLocked()
		n.mu.Unlock()
	}
}

// snapshotLoop (durable nodes only) writes fuzzy snapshots in the
// background: maybeTruncateLocked kicks it when the in-memory log
// outgrows its bound, it captures a consistent (state, lastApplied)
// cut under the lock, persists it OUTSIDE the lock alongside the live
// log — writes keep flowing while the snapshot lands, which is what
// makes it fuzzy — and then lets truncation and WAL-segment reclaim
// proceed up to the new durable coverage.
func (n *Node) snapshotLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.snapReq:
		}
		// Serialize under applyMu, not mu: commits, acks, heartbeats and
		// reads flow freely during the serialization; only the apply
		// loop stalls for it, which is the fuzzy-snapshot cost moved off
		// the commit path entirely. Holding applyMu pins lastApplied, so
		// the cut is consistent.
		n.applyMu.Lock()
		n.mu.Lock()
		z := n.lastApplied
		if z <= n.durableSnapZxid {
			n.snapInFlight = false
			n.mu.Unlock()
			n.applyMu.Unlock()
			continue
		}
		n.mu.Unlock()
		var err error
		ss, stStream := n.cfg.Storage.(StreamStorage)
		if sms, smStream := n.sm.(StreamingStateMachine); stStream && smStream {
			// Stream the consistent cut straight into the store through a
			// pipe: the producer serializes under applyMu (the same hold
			// the blob path pays, since chunk writes land in the page
			// cache), the consumer persists concurrently, and the final
			// fsync+rename runs after the lock is released — with O(chunk)
			// memory instead of the full serialized state.
			pr, pw := io.Pipe()
			done := make(chan error, 1)
			go func() {
				serr := ss.SaveSnapshotFrom(pr, z)
				// Unblock the producer if the store bailed early.
				pr.CloseWithError(serr)
				done <- serr
			}()
			// The store's verdict is authoritative: a producer failure
			// poisons the pipe, so the store reports it too, while a store
			// that succeeds has already seen the full stream.
			pw.CloseWithError(sms.SnapshotTo(pw))
			n.applyMu.Unlock()
			err = <-done
		} else {
			snap := n.sm.Snapshot()
			n.applyMu.Unlock()
			err = n.cfg.Storage.SaveSnapshot(snap, z)
		}
		n.mu.Lock()
		n.snapInFlight = false
		if err == nil && z > n.durableSnapZxid {
			n.durableSnapZxid = z
			n.maybeTruncateLocked()
		}
		n.mu.Unlock()
	}
}

// requestSnapshotLocked kicks the background snapshotter (at most one
// snapshot in flight).
func (n *Node) requestSnapshotLocked() {
	if n.snapInFlight || n.stopped || n.lastApplied <= n.durableSnapZxid {
		return
	}
	select {
	case n.snapReq <- struct{}{}:
		n.snapInFlight = true
	default:
	}
}

// senderLoop streams the log to one follower: each RPC carries every
// frame past the follower's acked horizon (capped at maxFramesPerSend),
// so frames proposed while the previous round trip was in flight ride
// the next one — the pipelining that keeps the pipe full. Acks are
// cumulative; a follower that answers NeedSync pulls the missing state
// itself while the sender backs off.
func (n *Node) senderLoop(gen, id, base uint64) {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for n.leaderGenLocked(gen) && base >= n.lastZxidLocked() {
			n.leaderCond.Wait()
		}
		if !n.leaderGenLocked(gen) {
			n.mu.Unlock()
			return
		}
		req := proposeReq{
			Epoch:    n.epoch,
			LeaderID: n.cfg.ID,
			PrevZxid: base,
			Entries:  n.entriesAfterLocked(base),
			Commit:   n.commitZxid,
		}
		if len(req.Entries) == 0 {
			// base is not a position we can stream from (truncated away,
			// or a divergent tail the follower kept across a failover).
			// Probe with OUR tip: a follower that matches it is caught
			// up; any other answers NeedSync and starts its own sync
			// pull. Probing with base instead would be acked by a
			// divergent follower forever, wedging it silently.
			req.PrevZxid = n.lastZxidLocked()
		}
		n.mu.Unlock()

		respB, err := n.callPeer(id, req.encode())
		if err != nil {
			if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
				return
			}
			continue
		}
		resp, derr := decodeProposeResp(respB)
		if derr != nil {
			if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
				return
			}
			continue
		}
		if resp.Epoch > req.Epoch {
			n.mu.Lock()
			if resp.Epoch > n.epoch {
				n.adoptEpochLocked(resp.Epoch, 0)
				n.leaderID = 0
			}
			n.mu.Unlock()
			return
		}
		progressed := resp.LastZxid != base || len(req.Entries) > 0
		base = resp.LastZxid
		if resp.Ack {
			n.mu.Lock()
			if n.leaderGenLocked(gen) && resp.LastZxid > n.match[id] {
				n.match[id] = resp.LastZxid
				n.maybeAdvanceLeaderCommitLocked()
			}
			n.mu.Unlock()
			if !progressed {
				// An acked probe of a position we cannot stream from
				// (the follower holds a divergent tail and is syncing);
				// don't spin on it.
				if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
					return
				}
			}
			continue
		}
		// The follower is lagging or divergent and is syncing from us;
		// probe again after a beat.
		if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
			return
		}
	}
}

// entriesAfterLocked returns the run of log frames following the given
// zxid, or nil (a position probe) when the position is not a frame
// boundary we hold — the follower's own sync pull repairs that.
func (n *Node) entriesAfterLocked(base uint64) []entry {
	start := -1
	if base == n.snapZxid {
		start = 0
	} else {
		i := sort.Search(len(n.log), func(i int) bool { return n.log[i].last() >= base })
		if i < len(n.log) && n.log[i].last() == base {
			start = i + 1
		}
	}
	if start < 0 {
		return nil
	}
	end := len(n.log)
	if end-start > maxFramesPerSend {
		end = start + maxFramesPerSend
	}
	return n.log[start:end:end]
}

// sleepInterruptible sleeps for d unless the node stops first.
func (n *Node) sleepInterruptible(d time.Duration) bool {
	select {
	case <-n.stopCh:
		return false
	case <-time.After(d):
		return true
	}
}

// broadcastAsync fires one payload at every peer without waiting.
func (n *Node) broadcastAsync(payload []byte) {
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		go func(id uint64) {
			_, _ = n.callPeer(id, payload)
		}(id)
	}
}

// --- background loops -------------------------------------------------

func (n *Node) electionLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		due := n.role != roleLeader && n.now().Sub(n.lastContact) > n.electionDue
		n.mu.Unlock()
		if due {
			n.runElection()
		}
	}
}

func (n *Node) runElection() {
	n.mu.Lock()
	if n.stopped || n.role == roleLeader {
		n.mu.Unlock()
		return
	}
	next := n.epoch + 1
	if n.grantedEpoch >= next {
		next = n.grantedEpoch + 1
	}
	// Campaigning is a self-vote; persist it like any other grant.
	if n.cfg.Storage != nil {
		if err := n.cfg.Storage.SaveHardState(next, next); err != nil {
			n.mu.Unlock()
			return
		}
	}
	n.epoch = next
	n.grantedEpoch = next
	n.role = roleCandidate
	n.leaderID = 0
	n.resetElectionTimer()
	req := requestVoteReq{Epoch: next, CandidateID: n.cfg.ID, LastZxid: n.lastZxidLocked()}
	n.mu.Unlock()

	payload := req.encode()
	grants := make(chan bool, len(n.cfg.Peers))
	outstanding := 0
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		outstanding++
		go func(id uint64) {
			respB, err := n.callPeer(id, payload)
			if err != nil {
				grants <- false
				return
			}
			resp, err := decodeRequestVoteResp(respB)
			if err != nil {
				grants <- false
				return
			}
			if resp.Epoch > req.Epoch {
				n.mu.Lock()
				if resp.Epoch > n.epoch {
					n.adoptEpochLocked(resp.Epoch, 0)
				}
				n.mu.Unlock()
			}
			grants <- resp.Granted
		}(id)
	}
	votes := 1 // self
	deadline := time.After(n.cfg.ElectionTimeout)
	for i := 0; i < outstanding; i++ {
		select {
		case g := <-grants:
			if g {
				votes++
			}
		case <-deadline:
			i = outstanding // abandon the round
		case <-n.stopCh:
			return
		}
		if votes >= n.quorum() {
			break
		}
	}
	if votes < n.quorum() {
		return
	}
	n.becomeLeader(req.Epoch)
}

func (n *Node) becomeLeader(epoch uint64) {
	n.mu.Lock()
	if n.epoch != epoch || n.role != roleCandidate || n.stopped {
		n.mu.Unlock()
		return
	}
	n.role = roleLeader
	n.leaderID = n.cfg.ID
	n.nextSeq = 0
	n.leaderGen++
	n.match = make(map[uint64]uint64, len(n.cfg.Peers))
	n.stallSince = time.Time{}
	// Queue the epoch barrier at the HEAD of the proposal queue inside
	// the same critical section that flips the role, so no client
	// proposal can slot in ahead of it: the proposer's window
	// exemption keys off the queue head, and a barrier stuck behind a
	// client write would re-open the full-inherited-window livelock.
	// The barrier commits every entry inherited from previous epochs
	// under the new epoch (Raft §5.4.2 trick; Zab achieves the same
	// with its NEWLEADER phase). Nobody waits on its outcome channel.
	barrier := &pendingTxn{noop: true, ch: make(chan proposeOutcome, 1)}
	n.propQ = append([]*pendingTxn{barrier}, n.propQ...)
	n.gQueue.Set(int64(len(n.propQ)))
	gen := n.leaderGen
	tip := n.lastZxidLocked()
	n.leaderCond.Broadcast()
	n.mu.Unlock()

	n.wg.Add(1)
	go n.proposerLoop(gen)
	if n.cfg.Storage != nil {
		n.wg.Add(1)
		go n.leaderSyncLoop(gen)
	}
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		n.wg.Add(1)
		go n.senderLoop(gen, id, tip)
	}
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		if n.role != roleLeader {
			n.mu.Unlock()
			continue
		}
		// Quorum-loss watchdog: a leader whose pipeline cannot commit
		// (partitioned, too few live followers) steps down instead of
		// wedging its clients, so a healthier member can win the next
		// election and resolve the uncommitted tail via sync.
		if n.commitZxid < n.lastZxidLocked() {
			if n.stallSince.IsZero() {
				n.stallSince = time.Now()
			} else if time.Since(n.stallSince) > 2*n.cfg.ElectionTimeout {
				n.failLeaderLocked(ErrNoQuorum)
				n.role = roleFollower
				n.leaderID = 0
				n.resetElectionTimer()
				n.mu.Unlock()
				continue
			}
		} else {
			n.stallSince = time.Time{}
		}
		req := heartbeatReq{Epoch: n.epoch, LeaderID: n.cfg.ID, Commit: n.commitZxid}
		n.mu.Unlock()
		payload := req.encode()
		// Lease bookkeeping: the round timestamp is taken BEFORE any
		// heartbeat is sent, so a quorum of acks proves the promise
		// quorum was intact at `round` and the lease may extend to
		// round + ElectionTimeout - MaxClockSkew.
		round := n.now()
		var ackMu sync.Mutex
		acks := 1 // self
		if acks >= n.quorum() {
			n.extendLease(round, req.Epoch)
		}
		for id := range n.cfg.Peers {
			if id == n.cfg.ID {
				continue
			}
			go func(id uint64) {
				respB, err := n.callPeer(id, payload)
				if err != nil {
					return
				}
				resp, err := decodeHeartbeatResp(respB)
				if err != nil {
					return
				}
				if resp.Epoch > req.Epoch {
					n.mu.Lock()
					if resp.Epoch > n.epoch {
						n.adoptEpochLocked(resp.Epoch, 0)
						n.leaderID = 0
					}
					n.mu.Unlock()
					return
				}
				ackMu.Lock()
				acks++
				reached := acks == n.quorum()
				ackMu.Unlock()
				if reached {
					n.extendLease(round, req.Epoch)
				}
			}(id)
		}
	}
}
