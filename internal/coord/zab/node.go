// Package zab implements the replication core of the coordination
// service: a leader-based atomic broadcast in the spirit of ZooKeeper's
// Zab protocol (paper §II-C, ref [8]).
//
// Every state mutation is wrapped in a transaction, assigned a zxid
// (epoch in the high 32 bits, a per-epoch counter in the low 32 bits),
// replicated to a quorum of followers, and only then committed and
// applied — in strict zxid order, identically on every server. That is
// the property DUFS leans on: "all modifications on the namespace
// appear to be atomic and strictly ordered to all the clients".
//
// # Group commit and pipelining
//
// The leader write path is a production-style Zab pipeline rather than
// a one-transaction-per-quorum-round-trip lockstep:
//
//   - Client proposals land in a queue. A proposer goroutine drains
//     it and coalesces the pending transactions into one FRAME (an
//     entry holding up to MaxBatchTxns transactions / MaxBatchBytes
//     bytes) that replicates, commits and recovers as a single unit.
//   - One sender goroutine per follower streams frames with a
//     cumulative-ack protocol: each round trip carries every frame
//     that queued up behind the previous one, so the leader keeps
//     proposing (up to MaxInflightFrames uncommitted frames) while
//     earlier acks are still in flight.
//   - A frame's transactions commit together when a quorum holds the
//     frame; each waiting proposer is woken with its own per-txn
//     apply result. An unacknowledged frame either wholly commits or
//     wholly vanishes — transactions never partially survive a
//     leader failover.
//
// Differences from production Zab, chosen for clarity and testability:
//
//   - Leader election is a Raft-style vote (epoch + last-zxid
//     up-to-dateness check) rather than ZooKeeper's fast leader
//     election; the elected-leader safety property is the same.
//   - The log lives in memory with snapshot-based truncation, like
//     ZooKeeper's in-memory database; durable checkpoints are layered
//     on top by internal/coord (paper §IV-I: "periodically
//     checkpointed on disk").
package zab

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// StateMachine is the replicated application state. Apply must be
// deterministic: given the same transaction stream in the same order,
// every replica must produce the same state. Application-level
// failures (e.g. "node exists") are encoded inside the result bytes,
// not returned as errors, so they replicate deterministically too.
type StateMachine interface {
	// Apply executes a committed transaction. Called in strict zxid
	// order, never concurrently.
	Apply(txn []byte, zxid uint64) []byte
	// Snapshot serializes the full state at the current applied point.
	Snapshot() []byte
	// Restore replaces the state with a snapshot taken at snapZxid.
	Restore(snap []byte, snapZxid uint64) error
}

// BatchStateMachine is an optional StateMachine extension: a state
// machine that can apply a whole group-commit frame in one call —
// transaction i of txns carries zxid firstZxid+i — returning one
// result per transaction. Implementations can amortize per-apply
// overhead (locking, notification batching) across the frame; the
// semantics must be identical to N ordered Apply calls.
type BatchStateMachine interface {
	StateMachine
	ApplyBatch(txns [][]byte, firstZxid uint64) [][]byte
}

// Config describes one ensemble member.
type Config struct {
	// ID is this server's identity; it must be a key of Peers.
	ID uint64
	// Peers maps every ensemble member ID to its transport address,
	// including this server.
	Peers map[uint64]string
	// Net is the transport to use (TCP or in-process).
	Net transport.Network

	// HeartbeatInterval is the leader's heartbeat period.
	// Defaults to 15ms.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base follower patience before starting an
	// election; the effective timeout is randomized in [1x, 2x).
	// Defaults to 10 * HeartbeatInterval.
	ElectionTimeout time.Duration
	// MaxLogEntries bounds the in-memory log; once exceeded, applied
	// entries are folded into a state-machine snapshot.
	// Defaults to 8192.
	MaxLogEntries int
	// MaxBatchTxns bounds how many transactions the proposer coalesces
	// into one group-commit frame. 1 disables batching (every
	// transaction is its own frame). Defaults to 128.
	MaxBatchTxns int
	// MaxBatchBytes bounds a frame's total transaction payload.
	// Defaults to 1 MiB.
	MaxBatchBytes int
	// MaxInflightFrames bounds how many proposed-but-uncommitted
	// frames the leader keeps in flight (the pipelining window). 1
	// reduces the pipeline to the lockstep propose→commit cycle.
	// Defaults to 16.
	MaxInflightFrames int
	// Metrics, when non-nil, receives the leader's proposer gauges
	// ("zab.proposer.queue_depth", "zab.proposer.inflight_frames") and
	// the batch-size distribution ("zab.proposer.batch_txns").
	Metrics *metrics.Registry
	// InitialSnapshot, when non-nil, primes the node from a durable
	// checkpoint: the state machine is restored before Start and the
	// log begins at InitialZxid.
	InitialSnapshot []byte
	InitialZxid     uint64
}

// Roles of an ensemble member.
const (
	roleFollower = iota
	roleCandidate
	roleLeader
)

// Errors returned by Propose.
var (
	ErrStopped  = errors.New("zab: node stopped")
	ErrNoLeader = errors.New("zab: no leader known")
	ErrNoQuorum = errors.New("zab: failed to reach quorum")
)

// proposeTimeout bounds how long a proposal waits for commit+apply.
const proposeTimeout = 10 * time.Second

// maxFramesPerSend bounds how many frames one sender RPC carries; a
// follower further behind than this catches up over several round
// trips (or via the sync protocol once its position leaves the log).
const maxFramesPerSend = 64

// pendingTxn is one queued proposal waiting for its frame to commit.
type pendingTxn struct {
	txn  []byte
	noop bool
	ch   chan proposeOutcome // buffered(1); exactly one send ever happens
}

type proposeOutcome struct {
	zxid   uint64
	result []byte
	err    error
}

// Node is one member of the replicated ensemble.
type Node struct {
	cfg Config
	sm  StateMachine
	bsm BatchStateMachine // non-nil when sm supports batch apply
	rng *rand.Rand

	mu           sync.Mutex
	role         int
	epoch        uint64
	grantedEpoch uint64 // highest epoch we granted a vote for
	leaderID     uint64 // 0 when unknown
	log          []entry
	snapZxid     uint64 // zxid covered by the latest state snapshot
	commitZxid   uint64
	lastApplied  uint64
	nextSeq      uint32 // per-epoch proposal counter (leader only)
	lastContact  time.Time
	electionDue  time.Duration
	syncing      bool
	stopped      bool

	// Leader-side group-commit state. leaderGen increments on every
	// leadership transition; the proposer and sender goroutines carry
	// the generation they were started under and exit when it moves.
	leaderGen  uint64
	propQ      []*pendingTxn
	waiters    map[uint64]*pendingTxn // txn zxid -> waiter (leader only)
	match      map[uint64]uint64      // peer -> cumulative acked zxid
	stallSince time.Time              // commit horizon stuck since
	leaderCond *sync.Cond             // work/window/role changes

	// applyWaiters are follower-side (and forwarded-write) waits for
	// the local state machine to reach a zxid; each registered channel
	// is closed exactly once when lastApplied passes its key.
	applyWaiters map[uint64][]chan struct{}

	gQueue    *metrics.Gauge
	gInflight *metrics.Gauge
	dBatch    *metrics.Distribution

	connMu sync.Mutex
	conns  map[uint64]transport.Conn

	listener io.Closer
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// NewNode validates the configuration and builds a node. Call Start to
// join the ensemble.
func NewNode(cfg Config, sm StateMachine) (*Node, error) {
	if cfg.Net == nil {
		return nil, errors.New("zab: Config.Net is required")
	}
	if _, ok := cfg.Peers[cfg.ID]; !ok {
		return nil, fmt.Errorf("zab: node ID %d not present in peer map", cfg.ID)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 15 * time.Millisecond
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 10 * cfg.HeartbeatInterval
	}
	if cfg.MaxLogEntries <= 0 {
		cfg.MaxLogEntries = 8192
	}
	if cfg.MaxBatchTxns <= 0 {
		cfg.MaxBatchTxns = 128
	}
	if cfg.MaxBatchBytes <= 0 {
		cfg.MaxBatchBytes = 1 << 20
	}
	if cfg.MaxInflightFrames <= 0 {
		cfg.MaxInflightFrames = 16
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	n := &Node{
		cfg:          cfg,
		sm:           sm,
		rng:          rand.New(rand.NewSource(int64(cfg.ID))),
		conns:        make(map[uint64]transport.Conn),
		stopCh:       make(chan struct{}),
		waiters:      make(map[uint64]*pendingTxn),
		match:        make(map[uint64]uint64),
		applyWaiters: make(map[uint64][]chan struct{}),
		gQueue:       cfg.Metrics.Gauge("zab.proposer.queue_depth"),
		gInflight:    cfg.Metrics.Gauge("zab.proposer.inflight_frames"),
		dBatch:       cfg.Metrics.Distribution("zab.proposer.batch_txns"),
	}
	n.bsm, _ = sm.(BatchStateMachine)
	n.leaderCond = sync.NewCond(&n.mu)
	if cfg.InitialSnapshot != nil {
		if err := sm.Restore(cfg.InitialSnapshot, cfg.InitialZxid); err != nil {
			return nil, fmt.Errorf("zab: restoring initial snapshot: %w", err)
		}
		n.snapZxid = cfg.InitialZxid
		n.commitZxid = cfg.InitialZxid
		n.lastApplied = cfg.InitialZxid
		n.epoch = epochOf(cfg.InitialZxid)
	}
	n.resetElectionTimer()
	return n, nil
}

func makeZxid(epoch uint64, seq uint32) uint64 { return epoch<<32 | uint64(seq) }
func epochOf(zxid uint64) uint64               { return zxid >> 32 }

// Start begins listening for peer traffic and starts the election and
// heartbeat loops.
func (n *Node) Start() error {
	ln, err := n.cfg.Net.Listen(n.cfg.Peers[n.cfg.ID], transport.HandlerFunc(n.handle))
	if err != nil {
		return fmt.Errorf("zab: node %d: %w", n.cfg.ID, err)
	}
	n.listener = ln
	n.wg.Add(2)
	go n.electionLoop()
	go n.heartbeatLoop()
	return nil
}

// Stop shuts the node down and waits for its goroutines.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	if n.role == roleLeader {
		n.failLeaderLocked(ErrStopped)
	}
	n.role = roleFollower // a stopped node must not report leadership
	n.leaderID = 0
	n.leaderCond.Broadcast()
	n.mu.Unlock()
	close(n.stopCh)
	if n.listener != nil {
		n.listener.Close()
	}
	n.connMu.Lock()
	for id, c := range n.conns {
		c.Close()
		delete(n.conns, id)
	}
	n.connMu.Unlock()
	n.wg.Wait()
}

// ID returns the node's ensemble identity.
func (n *Node) ID() uint64 { return n.cfg.ID }

// IsLeader reports whether this node currently leads the ensemble.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == roleLeader
}

// LeaderID returns the known leader's ID, or 0.
func (n *Node) LeaderID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == roleLeader {
		return n.cfg.ID
	}
	return n.leaderID
}

// Epoch returns the node's current epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// LastZxid returns the zxid of the last log entry (or snapshot).
func (n *Node) LastZxid() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastZxidLocked()
}

// CommitZxid returns the highest committed zxid.
func (n *Node) CommitZxid() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitZxid
}

// LastApplied returns the zxid of the last locally applied transaction.
func (n *Node) LastApplied() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastApplied
}

// DebugString reports the node's replication state for diagnostics.
func (n *Node) DebugString() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	role := "follower"
	switch n.role {
	case roleCandidate:
		role = "candidate"
	case roleLeader:
		role = "leader"
	}
	return fmt.Sprintf("id=%d role=%s epoch=%d granted=%d leader=%d last=%x commit=%x applied=%x log=%d queue=%d inflight=%d syncing=%v stopped=%v sinceContact=%s due=%s",
		n.cfg.ID, role, n.epoch, n.grantedEpoch, n.leaderID,
		n.lastZxidLocked(), n.commitZxid, n.lastApplied, len(n.log),
		len(n.propQ), n.uncommittedFramesLocked(),
		n.syncing, n.stopped, time.Since(n.lastContact).Round(time.Millisecond), n.electionDue)
}

// Checkpoint returns a durable snapshot of the applied state and the
// zxid it covers, for the disk persistence layered above this package.
func (n *Node) Checkpoint() (snap []byte, zxid uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sm.Snapshot(), n.lastApplied
}

func (n *Node) lastZxidLocked() uint64 {
	if len(n.log) == 0 {
		return n.snapZxid
	}
	return n.log[len(n.log)-1].last()
}

func (n *Node) quorum() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) resetElectionTimer() {
	n.lastContact = time.Now()
	n.electionDue = n.cfg.ElectionTimeout +
		time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
}

// --- connections ------------------------------------------------------

func (n *Node) getConn(id uint64) (transport.Conn, error) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[id]; ok {
		return c, nil
	}
	addr, ok := n.cfg.Peers[id]
	if !ok {
		return nil, fmt.Errorf("zab: unknown peer %d", id)
	}
	c, err := n.cfg.Net.Dial(addr)
	if err != nil {
		return nil, err
	}
	n.conns[id] = c
	return c, nil
}

func (n *Node) dropConn(id uint64) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if c, ok := n.conns[id]; ok {
		c.Close()
		delete(n.conns, id)
	}
}

// callPeer performs one RPC to a peer, invalidating the cached
// connection on failure so the next call redials.
func (n *Node) callPeer(id uint64, req []byte) ([]byte, error) {
	c, err := n.getConn(id)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(req)
	if err != nil {
		n.dropConn(id)
		return nil, err
	}
	return resp, nil
}

// --- request dispatch -------------------------------------------------

func (n *Node) handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	kind := r.Uint8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch kind {
	case msgPropose:
		m := decodeProposeReq(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handlePropose(m).encode(), nil
	case msgCommit:
		epoch, zxid := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		n.handleCommit(epoch, zxid)
		return nil, nil
	case msgHeartbeat:
		m := heartbeatReq{Epoch: r.Uint64(), LeaderID: r.Uint64(), Commit: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleHeartbeat(m).encode(), nil
	case msgRequestVote:
		m := requestVoteReq{Epoch: r.Uint64(), CandidateID: r.Uint64(), LastZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		return n.handleRequestVote(m).encode(), nil
	case msgSync:
		m := syncReq{FromZxid: r.Uint64()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		resp, err := n.handleSync(m)
		if err != nil {
			return nil, err
		}
		return resp.encode(), nil
	case msgForward:
		txn := r.BytesCopy32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		result, zxid, err := n.propose(txn)
		if err != nil {
			return nil, err
		}
		return forwardResp{Zxid: zxid, Result: result}.encode(), nil
	default:
		return nil, fmt.Errorf("zab: unknown message kind %d", kind)
	}
}

// --- follower side ----------------------------------------------------

// adoptEpochLocked moves the node to follower state for a newer epoch.
func (n *Node) adoptEpochLocked(epoch, leaderID uint64) {
	if epoch > n.epoch {
		n.epoch = epoch
	}
	if n.role == roleLeader {
		n.failLeaderLocked(ErrNoLeader)
	}
	n.role = roleFollower
	if leaderID != 0 {
		n.leaderID = leaderID
	}
	n.resetElectionTimer()
}

// handlePropose processes one propose window: a run of consecutive
// frames attaching at PrevZxid. Frames the follower already holds are
// skipped (retransmits after a partial round trip); the first novel
// frame must attach exactly at the log tip, otherwise the follower
// asks to sync. The ack carries the follower's tip as a CUMULATIVE
// acknowledgement: equal zxids imply equal logs (one leader per epoch,
// one entry per zxid), so the leader may trust it as this follower's
// replicated horizon.
func (n *Node) handlePropose(m proposeReq) proposeResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch < n.epoch {
		return proposeResp{Epoch: n.epoch, LastZxid: n.lastZxidLocked()}
	}
	n.adoptEpochLocked(m.Epoch, m.LeaderID)
	prev := m.PrevZxid
	tip := n.lastZxidLocked()
	for _, e := range m.Entries {
		if e.last() <= tip {
			// Already held (an overlap from a retransmitted window).
			prev = e.last()
			continue
		}
		if prev != tip {
			n.triggerSyncLocked()
			return proposeResp{NeedSync: true, Epoch: n.epoch, LastZxid: tip}
		}
		n.log = append(n.log, e)
		tip = e.last()
		prev = tip
	}
	if len(m.Entries) == 0 && prev != tip {
		// A probe from a leader that lost track of our position.
		n.triggerSyncLocked()
		return proposeResp{NeedSync: true, Epoch: n.epoch, LastZxid: tip}
	}
	n.advanceCommitLocked(m.Commit)
	return proposeResp{Ack: true, Epoch: n.epoch, LastZxid: n.lastZxidLocked()}
}

func (n *Node) handleCommit(epoch, zxid uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch < n.epoch {
		return
	}
	n.adoptEpochLocked(epoch, 0)
	n.advanceCommitLocked(zxid)
}

func (n *Node) handleHeartbeat(m heartbeatReq) heartbeatResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch >= n.epoch {
		n.adoptEpochLocked(m.Epoch, m.LeaderID)
		n.advanceCommitLocked(m.Commit)
		if m.Commit > n.lastZxidLocked() {
			n.triggerSyncLocked()
		}
	}
	return heartbeatResp{Epoch: n.epoch, LastZxid: n.lastZxidLocked()}
}

func (n *Node) handleRequestVote(m requestVoteReq) requestVoteResp {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Epoch <= n.grantedEpoch || m.Epoch <= n.epoch {
		return requestVoteResp{Epoch: n.epoch}
	}
	if m.LastZxid < n.lastZxidLocked() {
		return requestVoteResp{Epoch: n.epoch}
	}
	n.grantedEpoch = m.Epoch
	n.epoch = m.Epoch
	if n.role == roleLeader {
		n.failLeaderLocked(ErrNoLeader)
	}
	n.role = roleFollower
	n.leaderID = 0 // unknown until the new leader heartbeats
	n.resetElectionTimer()
	return requestVoteResp{Granted: true, Epoch: n.epoch}
}

// advanceCommitLocked raises the commit horizon (bounded by what we
// actually hold) and applies newly committed entries in order.
func (n *Node) advanceCommitLocked(commit uint64) {
	if commit > n.lastZxidLocked() {
		commit = n.lastZxidLocked()
	}
	if commit <= n.commitZxid {
		return
	}
	n.commitZxid = commit
	n.stallSince = time.Time{}
	n.applyCommittedLocked()
	n.leaderCond.Broadcast() // the pipelining window may have opened
}

// applyCommittedLocked feeds committed-but-unapplied frames to the
// state machine in zxid order — whole frames only, never a prefix of
// one — wakes per-txn waiters with their results, and handles log
// truncation.
func (n *Node) applyCommittedLocked() {
	i := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.lastApplied })
	for ; i < len(n.log); i++ {
		e := n.log[i]
		if e.last() > n.commitZxid {
			break
		}
		if e.Noop {
			n.lastApplied = e.Zxid
			n.wakeWaiterLocked(e.Zxid, nil)
			continue
		}
		var results [][]byte
		if n.bsm != nil {
			results = n.bsm.ApplyBatch(e.Txns, e.Zxid)
		} else {
			results = make([][]byte, len(e.Txns))
			for j, txn := range e.Txns {
				results[j] = n.sm.Apply(txn, e.Zxid+uint64(j))
			}
		}
		n.lastApplied = e.last()
		for j := range e.Txns {
			var res []byte
			if j < len(results) {
				res = results[j]
			}
			n.wakeWaiterLocked(e.Zxid+uint64(j), res)
		}
	}
	n.wakeAppliedLocked()
	n.maybeTruncateLocked()
}

// wakeWaiterLocked delivers a committed transaction's result to its
// proposer, if one is still waiting on this node.
func (n *Node) wakeWaiterLocked(zxid uint64, result []byte) {
	if w, ok := n.waiters[zxid]; ok {
		delete(n.waiters, zxid)
		w.ch <- proposeOutcome{zxid: zxid, result: result}
	}
}

// wakeAppliedLocked closes every registered apply-wait channel whose
// zxid the state machine has now reached. Each waiter has its own
// channel keyed by the exact zxid it needs, so a commit wakes only the
// waits it satisfies — no broadcast herd.
func (n *Node) wakeAppliedLocked() {
	for z, chans := range n.applyWaiters {
		if z > n.lastApplied {
			continue
		}
		for _, ch := range chans {
			close(ch)
		}
		delete(n.applyWaiters, z)
	}
}

// maybeTruncateLocked drops the bulk of the applied log prefix when
// the log grows beyond the configured bound, keeping a small margin so
// slightly-lagging followers can still catch up from the log instead
// of a full snapshot (which handleSync regenerates on demand).
func (n *Node) maybeTruncateLocked() {
	if len(n.log) <= n.cfg.MaxLogEntries {
		return
	}
	const margin = 64
	cut := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.lastApplied })
	if cut <= margin {
		return
	}
	cut -= margin
	n.snapZxid = n.log[cut-1].last()
	n.log = append([]entry(nil), n.log[cut:]...)
}

// triggerSyncLocked schedules a pull-based catch-up from the leader.
func (n *Node) triggerSyncLocked() {
	if n.syncing || n.stopped || n.leaderID == 0 || n.leaderID == n.cfg.ID {
		return
	}
	n.syncing = true
	leader := n.leaderID
	from := n.lastZxidLocked()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.syncFromLeader(leader, from)
		n.mu.Lock()
		n.syncing = false
		n.mu.Unlock()
	}()
}

func (n *Node) syncFromLeader(leader, from uint64) {
	respB, err := n.callPeer(leader, syncReq{FromZxid: from}.encode())
	if err != nil {
		return
	}
	resp, err := decodeSyncResp(respB)
	if err != nil {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if resp.Epoch < n.epoch || n.stopped {
		return
	}
	n.adoptEpochLocked(resp.Epoch, resp.LeaderID)
	if resp.HasSnapshot {
		if err := n.sm.Restore(resp.Snapshot, resp.SnapZxid); err != nil {
			return
		}
		n.snapZxid = resp.SnapZxid
		n.lastApplied = resp.SnapZxid
		if n.commitZxid < resp.SnapZxid {
			n.commitZxid = resp.SnapZxid
		}
		n.log = nil
		n.wakeAppliedLocked()
	} else if n.lastZxidLocked() != from {
		// Our log moved while the sync was in flight; retry later.
		return
	}
	for _, e := range resp.Entries {
		if e.last() <= n.lastZxidLocked() || e.last() <= n.snapZxid {
			continue
		}
		n.log = append(n.log, e)
	}
	n.advanceCommitLocked(resp.Commit)
}

// handleSync runs on the leader: ship either the log suffix after
// FromZxid, or a full snapshot when the follower's position is unknown
// to us (trimmed away or divergent).
func (n *Node) handleSync(m syncReq) (syncResp, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader {
		return syncResp{}, fmt.Errorf("zab: node %d is not the leader", n.cfg.ID)
	}
	resp := syncResp{Commit: n.commitZxid, Epoch: n.epoch, LeaderID: n.cfg.ID}
	if m.FromZxid == n.snapZxid {
		resp.Entries = append(resp.Entries, n.log...)
		return resp, nil
	}
	for i, e := range n.log {
		if e.last() == m.FromZxid {
			resp.Entries = append(resp.Entries, n.log[i+1:]...)
			return resp, nil
		}
	}
	// Unknown position: full snapshot of the applied state plus the
	// unapplied tail.
	resp.HasSnapshot = true
	resp.SnapZxid = n.lastApplied
	resp.Snapshot = n.sm.Snapshot()
	for _, e := range n.log {
		if e.Zxid > n.lastApplied {
			resp.Entries = append(resp.Entries, e)
		}
	}
	return resp, nil
}

// --- leader side ------------------------------------------------------

// Propose submits a transaction for atomic broadcast. On a follower it
// is forwarded to the leader. It returns the state machine's result
// once the transaction is committed and applied on THIS node, which
// gives sessions connected here read-your-writes consistency — the
// same guarantee a ZooKeeper server provides its clients.
//
// Propose is safe for arbitrary concurrency; concurrent calls are
// coalesced by the leader's proposer into group-commit frames instead
// of queueing on a serialized quorum round trip.
func (n *Node) Propose(txn []byte) ([]byte, error) {
	result, zxid, err := n.propose(txn)
	if err != nil {
		return nil, err
	}
	if err := n.waitApplied(zxid); err != nil {
		return nil, err
	}
	return result, nil
}

func (n *Node) propose(txn []byte) ([]byte, uint64, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, 0, ErrStopped
	}
	isLeader := n.role == roleLeader
	leader := n.leaderID
	n.mu.Unlock()

	if !isLeader {
		if leader == 0 || leader == n.cfg.ID {
			return nil, 0, ErrNoLeader
		}
		respB, err := n.callPeer(leader, forwardReq{Txn: txn}.encode())
		if err != nil {
			return nil, 0, err
		}
		resp, err := decodeForwardResp(respB)
		if err != nil {
			return nil, 0, err
		}
		return resp.Result, resp.Zxid, nil
	}
	return n.proposeAsLeader(txn, false)
}

// waitApplied blocks until this node's state machine has applied the
// given zxid (or the node stops / the wait times out). Each call
// registers one channel keyed by the exact zxid it needs and performs
// a single deadline-aware select on it — a timeout wakes only this
// caller, never the other waiters.
func (n *Node) waitApplied(zxid uint64) error {
	n.mu.Lock()
	if n.lastApplied >= zxid {
		n.mu.Unlock()
		return nil
	}
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	ch := make(chan struct{})
	n.applyWaiters[zxid] = append(n.applyWaiters[zxid], ch)
	n.mu.Unlock()

	timer := time.NewTimer(proposeTimeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-n.stopCh:
		return ErrStopped
	case <-timer.C:
		n.mu.Lock()
		applied := n.lastApplied >= zxid
		chans := n.applyWaiters[zxid]
		for i, c := range chans {
			if c == ch {
				n.applyWaiters[zxid] = append(chans[:i:i], chans[i+1:]...)
				break
			}
		}
		if len(n.applyWaiters[zxid]) == 0 {
			delete(n.applyWaiters, zxid)
		}
		n.mu.Unlock()
		if applied {
			return nil
		}
		return fmt.Errorf("zab: zxid %x not applied locally within %v", zxid, proposeTimeout)
	}
}

// proposeAsLeader enqueues one transaction for the proposer goroutine
// and waits for its frame to commit and apply, returning the per-txn
// state-machine result.
func (n *Node) proposeAsLeader(txn []byte, noop bool) ([]byte, uint64, error) {
	p := &pendingTxn{txn: txn, noop: noop, ch: make(chan proposeOutcome, 1)}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, 0, ErrStopped
	}
	if n.role != roleLeader {
		n.mu.Unlock()
		return nil, 0, ErrNoLeader
	}
	n.propQ = append(n.propQ, p)
	n.gQueue.Set(int64(len(n.propQ)))
	n.leaderCond.Broadcast()
	n.mu.Unlock()

	timer := time.NewTimer(proposeTimeout)
	defer timer.Stop()
	select {
	case o := <-p.ch:
		if o.err != nil {
			return nil, 0, o.err
		}
		return o.result, o.zxid, nil
	case <-n.stopCh:
		return nil, 0, ErrStopped
	case <-timer.C:
		// The transaction stays queued/in flight; it may still commit
		// (the session layer's retry dedup absorbs that), but this
		// caller stops waiting.
		return nil, 0, fmt.Errorf("zab: proposal not committed within %v", proposeTimeout)
	}
}

// failLeaderLocked fails every queued and in-flight proposal with err
// and retires the current leadership generation, stopping the proposer
// and sender goroutines. Writes that already replicated may still
// commit under the next leader — the error only means THIS node can no
// longer promise anything, the same contract a ZooKeeper connection
// loss gives a client.
func (n *Node) failLeaderLocked(err error) {
	for _, p := range n.propQ {
		p.ch <- proposeOutcome{err: err}
	}
	n.propQ = nil
	for z, p := range n.waiters {
		delete(n.waiters, z)
		p.ch <- proposeOutcome{err: err}
	}
	n.leaderGen++
	n.stallSince = time.Time{}
	n.gQueue.Set(0)
	n.gInflight.Set(0)
	n.leaderCond.Broadcast()
}

// leaderGenLocked reports whether the node still leads under the given
// leadership generation.
func (n *Node) leaderGenLocked(gen uint64) bool {
	return n.role == roleLeader && n.leaderGen == gen && !n.stopped
}

// uncommittedFramesLocked counts proposed-but-uncommitted frames — the
// pipelining window occupancy.
func (n *Node) uncommittedFramesLocked() int {
	i := sort.Search(len(n.log), func(i int) bool { return n.log[i].Zxid > n.commitZxid })
	return len(n.log) - i
}

// proposerLoop is the group-commit heart: it drains the proposal
// queue, coalesces pending transactions into one frame bounded by
// MaxBatchTxns/MaxBatchBytes, appends it to the log and hands it to
// the per-follower senders — without waiting for the previous frame's
// acks, up to MaxInflightFrames outstanding.
func (n *Node) proposerLoop(gen uint64) {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		// The epoch barrier is exempt from the pipelining window: a
		// leader elected with an inherited uncommitted tail of
		// MaxInflightFrames or more frames must still propose its
		// barrier, because nothing inherited can commit until a
		// current-epoch frame exists (the §5.4.2 rule) — gating the
		// barrier on the window would livelock the whole shard.
		for n.leaderGenLocked(gen) &&
			(len(n.propQ) == 0 ||
				(!n.propQ[0].noop && n.uncommittedFramesLocked() >= n.cfg.MaxInflightFrames)) {
			n.leaderCond.Wait()
		}
		if !n.leaderGenLocked(gen) {
			n.mu.Unlock()
			return
		}
		batch := n.drainBatchLocked()
		n.gQueue.Set(int64(len(n.propQ)))
		n.dBatch.Observe(int64(len(batch)))

		first := n.nextSeq + 1
		e := entry{Zxid: makeZxid(n.epoch, first), Noop: batch[0].noop}
		if e.Noop {
			n.nextSeq++
			n.waiters[e.Zxid] = batch[0]
		} else {
			e.Txns = make([][]byte, len(batch))
			for i, p := range batch {
				e.Txns[i] = p.txn
				n.waiters[e.Zxid+uint64(i)] = p
			}
			n.nextSeq += uint32(len(batch))
		}
		n.log = append(n.log, e)
		n.gInflight.Set(int64(n.uncommittedFramesLocked()))
		// A single-member "quorum" commits on append; otherwise the
		// senders' acks advance the horizon.
		n.maybeAdvanceLeaderCommitLocked()
		n.leaderCond.Broadcast()
		n.mu.Unlock()
	}
}

// drainBatchLocked takes the next group-commit batch off the queue: a
// lone no-op barrier, or a run of transactions bounded by count and
// bytes (never mixing a barrier into a transaction frame).
func (n *Node) drainBatchLocked() []*pendingTxn {
	if n.propQ[0].noop {
		batch := n.propQ[:1:1]
		n.propQ = n.propQ[1:]
		return batch
	}
	count, bytes := 0, 0
	for _, p := range n.propQ {
		if p.noop || count >= n.cfg.MaxBatchTxns {
			break
		}
		if count > 0 && bytes+len(p.txn) > n.cfg.MaxBatchBytes {
			break
		}
		count++
		bytes += len(p.txn)
	}
	batch := n.propQ[:count:count]
	n.propQ = n.propQ[count:]
	return batch
}

// maybeAdvanceLeaderCommitLocked recomputes the quorum-replicated
// horizon from the cumulative acks and commits every frame of the
// CURRENT epoch fully below it (frames inherited from older epochs
// commit transitively — the barrier no-op guarantees one current-epoch
// frame exists, the Raft §5.4.2 safety argument).
func (n *Node) maybeAdvanceLeaderCommitLocked() {
	if n.role != roleLeader {
		return
	}
	tips := make([]uint64, 0, len(n.cfg.Peers))
	tips = append(tips, n.lastZxidLocked())
	for id := range n.cfg.Peers {
		if id != n.cfg.ID {
			tips = append(tips, n.match[id])
		}
	}
	sort.Slice(tips, func(i, j int) bool { return tips[i] > tips[j] })
	q := tips[n.quorum()-1]
	if q <= n.commitZxid {
		return
	}
	target := n.commitZxid
	for i := len(n.log) - 1; i >= 0; i-- {
		e := n.log[i]
		if e.last() > q {
			continue
		}
		if epochOf(e.Zxid) == n.epoch {
			target = e.last()
		}
		break
	}
	if target <= n.commitZxid {
		return
	}
	epoch := n.epoch
	n.advanceCommitLocked(target)
	n.gInflight.Set(int64(n.uncommittedFramesLocked()))
	// Let followers apply promptly instead of waiting for the next
	// piggybacked horizon.
	n.broadcastAsync(commitReq{Epoch: epoch, Zxid: n.commitZxid}.encode())
}

// senderLoop streams the log to one follower: each RPC carries every
// frame past the follower's acked horizon (capped at maxFramesPerSend),
// so frames proposed while the previous round trip was in flight ride
// the next one — the pipelining that keeps the pipe full. Acks are
// cumulative; a follower that answers NeedSync pulls the missing state
// itself while the sender backs off.
func (n *Node) senderLoop(gen, id, base uint64) {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for n.leaderGenLocked(gen) && base >= n.lastZxidLocked() {
			n.leaderCond.Wait()
		}
		if !n.leaderGenLocked(gen) {
			n.mu.Unlock()
			return
		}
		req := proposeReq{
			Epoch:    n.epoch,
			LeaderID: n.cfg.ID,
			PrevZxid: base,
			Entries:  n.entriesAfterLocked(base),
			Commit:   n.commitZxid,
		}
		if len(req.Entries) == 0 {
			// base is not a position we can stream from (truncated away,
			// or a divergent tail the follower kept across a failover).
			// Probe with OUR tip: a follower that matches it is caught
			// up; any other answers NeedSync and starts its own sync
			// pull. Probing with base instead would be acked by a
			// divergent follower forever, wedging it silently.
			req.PrevZxid = n.lastZxidLocked()
		}
		n.mu.Unlock()

		respB, err := n.callPeer(id, req.encode())
		if err != nil {
			if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
				return
			}
			continue
		}
		resp, derr := decodeProposeResp(respB)
		if derr != nil {
			if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
				return
			}
			continue
		}
		if resp.Epoch > req.Epoch {
			n.mu.Lock()
			if resp.Epoch > n.epoch {
				n.adoptEpochLocked(resp.Epoch, 0)
				n.leaderID = 0
			}
			n.mu.Unlock()
			return
		}
		progressed := resp.LastZxid != base || len(req.Entries) > 0
		base = resp.LastZxid
		if resp.Ack {
			n.mu.Lock()
			if n.leaderGenLocked(gen) && resp.LastZxid > n.match[id] {
				n.match[id] = resp.LastZxid
				n.maybeAdvanceLeaderCommitLocked()
			}
			n.mu.Unlock()
			if !progressed {
				// An acked probe of a position we cannot stream from
				// (the follower holds a divergent tail and is syncing);
				// don't spin on it.
				if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
					return
				}
			}
			continue
		}
		// The follower is lagging or divergent and is syncing from us;
		// probe again after a beat.
		if !n.sleepInterruptible(n.cfg.HeartbeatInterval) {
			return
		}
	}
}

// entriesAfterLocked returns the run of log frames following the given
// zxid, or nil (a position probe) when the position is not a frame
// boundary we hold — the follower's own sync pull repairs that.
func (n *Node) entriesAfterLocked(base uint64) []entry {
	start := -1
	if base == n.snapZxid {
		start = 0
	} else {
		i := sort.Search(len(n.log), func(i int) bool { return n.log[i].last() >= base })
		if i < len(n.log) && n.log[i].last() == base {
			start = i + 1
		}
	}
	if start < 0 {
		return nil
	}
	end := len(n.log)
	if end-start > maxFramesPerSend {
		end = start + maxFramesPerSend
	}
	return n.log[start:end:end]
}

// sleepInterruptible sleeps for d unless the node stops first.
func (n *Node) sleepInterruptible(d time.Duration) bool {
	select {
	case <-n.stopCh:
		return false
	case <-time.After(d):
		return true
	}
}

// broadcastAsync fires one payload at every peer without waiting.
func (n *Node) broadcastAsync(payload []byte) {
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		go func(id uint64) {
			_, _ = n.callPeer(id, payload)
		}(id)
	}
}

// --- background loops -------------------------------------------------

func (n *Node) electionLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		due := n.role != roleLeader && time.Since(n.lastContact) > n.electionDue
		n.mu.Unlock()
		if due {
			n.runElection()
		}
	}
}

func (n *Node) runElection() {
	n.mu.Lock()
	if n.stopped || n.role == roleLeader {
		n.mu.Unlock()
		return
	}
	next := n.epoch + 1
	if n.grantedEpoch >= next {
		next = n.grantedEpoch + 1
	}
	n.epoch = next
	n.grantedEpoch = next
	n.role = roleCandidate
	n.leaderID = 0
	n.resetElectionTimer()
	req := requestVoteReq{Epoch: next, CandidateID: n.cfg.ID, LastZxid: n.lastZxidLocked()}
	n.mu.Unlock()

	payload := req.encode()
	grants := make(chan bool, len(n.cfg.Peers))
	outstanding := 0
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		outstanding++
		go func(id uint64) {
			respB, err := n.callPeer(id, payload)
			if err != nil {
				grants <- false
				return
			}
			resp, err := decodeRequestVoteResp(respB)
			if err != nil {
				grants <- false
				return
			}
			if resp.Epoch > req.Epoch {
				n.mu.Lock()
				if resp.Epoch > n.epoch {
					n.adoptEpochLocked(resp.Epoch, 0)
				}
				n.mu.Unlock()
			}
			grants <- resp.Granted
		}(id)
	}
	votes := 1 // self
	deadline := time.After(n.cfg.ElectionTimeout)
	for i := 0; i < outstanding; i++ {
		select {
		case g := <-grants:
			if g {
				votes++
			}
		case <-deadline:
			i = outstanding // abandon the round
		case <-n.stopCh:
			return
		}
		if votes >= n.quorum() {
			break
		}
	}
	if votes < n.quorum() {
		return
	}
	n.becomeLeader(req.Epoch)
}

func (n *Node) becomeLeader(epoch uint64) {
	n.mu.Lock()
	if n.epoch != epoch || n.role != roleCandidate || n.stopped {
		n.mu.Unlock()
		return
	}
	n.role = roleLeader
	n.leaderID = n.cfg.ID
	n.nextSeq = 0
	n.leaderGen++
	n.match = make(map[uint64]uint64, len(n.cfg.Peers))
	n.stallSince = time.Time{}
	// Queue the epoch barrier at the HEAD of the proposal queue inside
	// the same critical section that flips the role, so no client
	// proposal can slot in ahead of it: the proposer's window
	// exemption keys off the queue head, and a barrier stuck behind a
	// client write would re-open the full-inherited-window livelock.
	// The barrier commits every entry inherited from previous epochs
	// under the new epoch (Raft §5.4.2 trick; Zab achieves the same
	// with its NEWLEADER phase). Nobody waits on its outcome channel.
	barrier := &pendingTxn{noop: true, ch: make(chan proposeOutcome, 1)}
	n.propQ = append([]*pendingTxn{barrier}, n.propQ...)
	n.gQueue.Set(int64(len(n.propQ)))
	gen := n.leaderGen
	tip := n.lastZxidLocked()
	n.leaderCond.Broadcast()
	n.mu.Unlock()

	n.wg.Add(1)
	go n.proposerLoop(gen)
	for id := range n.cfg.Peers {
		if id == n.cfg.ID {
			continue
		}
		n.wg.Add(1)
		go n.senderLoop(gen, id, tip)
	}
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-ticker.C:
		}
		n.mu.Lock()
		if n.role != roleLeader {
			n.mu.Unlock()
			continue
		}
		// Quorum-loss watchdog: a leader whose pipeline cannot commit
		// (partitioned, too few live followers) steps down instead of
		// wedging its clients, so a healthier member can win the next
		// election and resolve the uncommitted tail via sync.
		if n.commitZxid < n.lastZxidLocked() {
			if n.stallSince.IsZero() {
				n.stallSince = time.Now()
			} else if time.Since(n.stallSince) > 2*n.cfg.ElectionTimeout {
				n.failLeaderLocked(ErrNoQuorum)
				n.role = roleFollower
				n.leaderID = 0
				n.resetElectionTimer()
				n.mu.Unlock()
				continue
			}
		} else {
			n.stallSince = time.Time{}
		}
		req := heartbeatReq{Epoch: n.epoch, LeaderID: n.cfg.ID, Commit: n.commitZxid}
		n.mu.Unlock()
		payload := req.encode()
		for id := range n.cfg.Peers {
			if id == n.cfg.ID {
				continue
			}
			go func(id uint64) {
				respB, err := n.callPeer(id, payload)
				if err != nil {
					return
				}
				resp, err := decodeHeartbeatResp(respB)
				if err != nil {
					return
				}
				if resp.Epoch > req.Epoch {
					n.mu.Lock()
					if resp.Epoch > n.epoch {
						n.adoptEpochLocked(resp.Epoch, 0)
						n.leaderID = 0
					}
					n.mu.Unlock()
				}
			}(id)
		}
	}
}
