package zab

import (
	"sort"
	"time"
)

// Leader-side observer feed.
//
// Observers are non-voting replicas: they tail the leader's COMMITTED
// log over the same frame format the voters replicate and the WAL
// persists, but they are absent from Config.Peers and therefore from
// every quorum computation — acks, elections and the read lease never
// see them. The feed is pull-based (the same shape as the follower
// sync protocol): each poll carries the observer's replication tip and
// returns either the committed suffix after it or, when the tip has
// fallen behind the log horizon, a full snapshot plus the committed
// tail. Because only committed frames are ever shipped, an observer
// never holds a divergent tail across a leader change; a snapshot
// install is the only truncation it ever performs.

// maxObserverFramesPerPoll bounds one poll response; a far-behind
// observer catches up over several polls (its tail loop re-polls
// immediately while it is making progress).
const maxObserverFramesPerPoll = 256

// observerFeedTimeout is how long an observer may go without polling
// before the leader drops it from the feed (and the lag gauges).
const observerFeedTimeoutFactor = 4 // x ElectionTimeout

// observerFeed is the leader's bookkeeping for one registered
// observer replica.
type observerFeed struct {
	applied     uint64
	lastSeen    time.Time
	behindSince time.Time // zero while caught up
}

// ObserverLag is one observer replica's replication state as seen by
// the leader's feed.
type ObserverLag struct {
	ID          uint64
	AppliedZxid uint64
	LagTxns     uint64
	LagMS       uint64
}

// ObserverLags reports the per-observer replication lag the leader's
// feed is tracking, sorted by observer ID. Non-leaders return nil —
// the feed is leader-only state, reset on step-down.
func (n *Node) ObserverLags() []ObserverLag {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader || len(n.observers) == 0 {
		return nil
	}
	now := n.now()
	out := make([]ObserverLag, 0, len(n.observers))
	for id, o := range n.observers {
		l := ObserverLag{ID: id, AppliedZxid: o.applied, LagTxns: n.observerLagTxnsLocked(o.applied)}
		if !o.behindSince.IsZero() {
			l.LagMS = uint64(now.Sub(o.behindSince) / time.Millisecond)
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (n *Node) handleObserverPoll(m observerPollReq) observerPollResp {
	n.mu.Lock()
	if n.role != roleLeader {
		defer n.mu.Unlock()
		return observerPollResp{Redirect: true, Epoch: n.epoch, LeaderID: n.leaderID}
	}
	n.recordObserverLocked(m)
	resp := observerPollResp{Commit: n.commitZxid, Epoch: n.epoch, LeaderID: n.cfg.ID}
	if entries, ok := n.committedEntriesAfterLocked(m.FromZxid); ok {
		resp.Entries = entries
		n.mu.Unlock()
		return resp
	}
	if n.lastApplied <= m.FromZxid {
		// The observer is at (or beyond) everything we could snapshot.
		// Transient right after a leader change, before the new
		// leader's apply horizon catches up with what the old one
		// already shipped; nothing useful to send this round.
		n.mu.Unlock()
		return resp
	}
	n.mu.Unlock()

	// Snapshot-first determinism, as in handleSync: a tip behind the
	// log horizon gets the full checkpoint of the applied state plus
	// the committed tail — never a suffix with a silent gap. applyMu
	// (before mu, per the global order) pins lastApplied so the
	// serialized state and the tail describe one consistent cut.
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader {
		return observerPollResp{Redirect: true, Epoch: n.epoch, LeaderID: n.leaderID}
	}
	resp = observerPollResp{Commit: n.commitZxid, Epoch: n.epoch, LeaderID: n.cfg.ID}
	if n.lastApplied <= m.FromZxid {
		return resp
	}
	resp.HasSnapshot = true
	resp.SnapZxid = n.lastApplied
	resp.Snapshot = n.sm.Snapshot()
	resp.Entries, _ = n.committedEntriesAfterLocked(n.lastApplied)
	return resp
}

// committedEntriesAfterLocked collects the committed log suffix after
// frame boundary `from`, reporting ok=false when `from` is not a
// boundary this log recognizes (truncated away).
func (n *Node) committedEntriesAfterLocked(from uint64) ([]entry, bool) {
	start := -1
	if from == n.snapZxid {
		start = 0
	} else if from > n.snapZxid {
		i := sort.Search(len(n.log), func(i int) bool { return n.log[i].last() >= from })
		if i < len(n.log) && n.log[i].last() == from {
			start = i + 1
		}
	}
	if start < 0 {
		return nil, false
	}
	var out []entry
	for _, e := range n.log[start:] {
		if e.last() > n.commitZxid || len(out) >= maxObserverFramesPerPoll {
			break
		}
		out = append(out, e)
	}
	return out, true
}

// recordObserverLocked refreshes the feed entry behind one poll,
// evicts replicas that stopped polling and republishes the
// zab.observer.* gauges.
func (n *Node) recordObserverLocked(m observerPollReq) {
	now := n.now()
	st := n.observers[m.ObserverID]
	if st == nil {
		st = &observerFeed{}
		n.observers[m.ObserverID] = st
	}
	st.applied = m.AppliedZxid
	st.lastSeen = now
	if m.AppliedZxid >= n.commitZxid {
		st.behindSince = time.Time{}
	} else if st.behindSince.IsZero() {
		st.behindSince = now
	}
	for id, o := range n.observers {
		if now.Sub(o.lastSeen) > observerFeedTimeoutFactor*n.cfg.ElectionTimeout {
			delete(n.observers, id)
		}
	}
	var maxLag, maxMS uint64
	for _, o := range n.observers {
		if lag := n.observerLagTxnsLocked(o.applied); lag > maxLag {
			maxLag = lag
		}
		if !o.behindSince.IsZero() {
			if ms := uint64(now.Sub(o.behindSince) / time.Millisecond); ms > maxMS {
				maxMS = ms
			}
		}
	}
	n.gObsCount.Set(int64(len(n.observers)))
	n.gObsLagTxns.Set(int64(maxLag))
	n.gObsLagMS.Set(int64(maxMS))
}

// observerLagTxnsLocked counts the committed transactions the log
// still holds beyond an observer's applied horizon. It is a lower
// bound once the observer has fallen behind the log horizon — the
// missing frames are gone, and the observer is headed for a snapshot
// install that covers them anyway.
func (n *Node) observerLagTxnsLocked(applied uint64) uint64 {
	if applied >= n.commitZxid {
		return 0
	}
	var lag uint64
	for _, e := range n.log {
		if e.last() > n.commitZxid {
			break
		}
		if e.last() <= applied || e.Noop {
			continue
		}
		lag += uint64(len(e.Txns))
	}
	return lag
}
