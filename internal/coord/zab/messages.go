package zab

import (
	"fmt"

	"repro/internal/wire"
)

// Peer-to-peer message kinds. Every message starts with one kind byte.
const (
	msgPropose uint8 = iota + 1
	msgCommit
	msgHeartbeat
	msgRequestVote
	msgSync
	msgForward
	msgObserverPoll
)

// entry is one replicated log record: a group-commit FRAME holding one
// or more transactions. Zxid is the zxid of the FIRST transaction;
// transaction i carries zxid Zxid+i, so every transaction keeps its
// own identity while the frame replicates, commits and recovers as a
// single unit (all-or-nothing). Txn bytes are opaque to this package;
// Noop entries are leader barriers that never reach the state machine.
type entry struct {
	Zxid uint64
	Noop bool
	Txns [][]byte
}

// last returns the zxid of the frame's final transaction.
func (e entry) last() uint64 {
	if n := len(e.Txns); n > 1 {
		return e.Zxid + uint64(n-1)
	}
	return e.Zxid
}

func encodeEntry(w *wire.Writer, e entry) {
	w.Uint64(e.Zxid)
	w.Bool(e.Noop)
	w.Uint32(uint32(len(e.Txns)))
	for _, txn := range e.Txns {
		w.Bytes32(txn)
	}
}

func decodeEntry(r *wire.Reader) entry {
	e := entry{
		Zxid: r.Uint64(),
		Noop: r.Bool(),
	}
	// Every encoded txn costs at least its 4-byte length prefix, so a
	// count claiming more than Remaining/4 elements is structurally
	// impossible — reject it before allocating slice headers for it.
	n := r.Uint32()
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		r.Fail(fmt.Errorf("zab: entry claims %d txns in %d bytes", n, r.Remaining()))
		return e
	}
	e.Txns = make([][]byte, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		e.Txns = append(e.Txns, r.BytesCopy32())
	}
	return e
}

// proposeReq replicates a window of frames with a Raft-style
// consistency check: the follower accepts only if it holds PrevZxid
// (committed entries always count as held). A single request may carry
// several frames — the per-follower sender coalesces everything that
// queued up behind the previous round trip, which is what keeps the
// pipe full under concurrent load.
type proposeReq struct {
	Epoch    uint64
	LeaderID uint64
	PrevZxid uint64
	Entries  []entry
	Commit   uint64 // leader's commit zxid, piggybacked
}

func (m proposeReq) encode() []byte {
	size := 64
	for _, e := range m.Entries {
		size += 24
		for _, txn := range e.Txns {
			size += 8 + len(txn)
		}
	}
	var w wire.Writer
	w.Grow(size)
	w.Uint8(msgPropose)
	w.Uint64(m.Epoch)
	w.Uint64(m.LeaderID)
	w.Uint64(m.PrevZxid)
	w.Uint32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		encodeEntry(&w, e)
	}
	w.Uint64(m.Commit)
	return w.Bytes()
}

func decodeProposeReq(r *wire.Reader) proposeReq {
	m := proposeReq{
		Epoch:    r.Uint64(),
		LeaderID: r.Uint64(),
		PrevZxid: r.Uint64(),
	}
	// An encoded entry costs at least 13 bytes (zxid + noop flag + txn
	// count); bound the claimed count by that before allocating.
	n := r.Uint32()
	if r.Err() != nil || int(n) > r.Remaining()/13 {
		r.Fail(fmt.Errorf("zab: propose claims %d entries in %d bytes", n, r.Remaining()))
		return m
	}
	m.Entries = make([]entry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		m.Entries = append(m.Entries, decodeEntry(r))
	}
	m.Commit = r.Uint64()
	return m
}

// proposeResp acknowledges (or refuses) a propose window. LastZxid is
// the follower's log tip after processing — a CUMULATIVE ack: the
// leader trusts it as the follower's replicated horizon because an ack
// is only sent once the follower's whole log is a verified prefix of
// the leader's.
type proposeResp struct {
	Ack      bool
	NeedSync bool
	Epoch    uint64 // responder's epoch, so a stale leader steps down
	LastZxid uint64
}

func (m proposeResp) encode() []byte {
	var w wire.Writer
	w.Grow(24)
	w.Bool(m.Ack)
	w.Bool(m.NeedSync)
	w.Uint64(m.Epoch)
	w.Uint64(m.LastZxid)
	return w.Bytes()
}

func decodeProposeResp(b []byte) (proposeResp, error) {
	r := wire.NewReader(b)
	m := proposeResp{Ack: r.Bool(), NeedSync: r.Bool(), Epoch: r.Uint64(), LastZxid: r.Uint64()}
	return m, r.Err()
}

// commitReq tells followers everything up to Zxid is durable on a
// quorum and must be applied.
type commitReq struct {
	Epoch uint64
	Zxid  uint64
}

func (m commitReq) encode() []byte {
	var w wire.Writer
	w.Grow(24)
	w.Uint8(msgCommit)
	w.Uint64(m.Epoch)
	w.Uint64(m.Zxid)
	return w.Bytes()
}

// heartbeat keeps followership alive and carries the commit horizon.
type heartbeatReq struct {
	Epoch    uint64
	LeaderID uint64
	Commit   uint64
}

func (m heartbeatReq) encode() []byte {
	var w wire.Writer
	w.Grow(32)
	w.Uint8(msgHeartbeat)
	w.Uint64(m.Epoch)
	w.Uint64(m.LeaderID)
	w.Uint64(m.Commit)
	return w.Bytes()
}

type heartbeatResp struct {
	Epoch    uint64
	LastZxid uint64
}

func (m heartbeatResp) encode() []byte {
	var w wire.Writer
	w.Grow(16)
	w.Uint64(m.Epoch)
	w.Uint64(m.LastZxid)
	return w.Bytes()
}

func decodeHeartbeatResp(b []byte) (heartbeatResp, error) {
	r := wire.NewReader(b)
	m := heartbeatResp{Epoch: r.Uint64(), LastZxid: r.Uint64()}
	return m, r.Err()
}

// requestVote asks for leadership of a new epoch. A peer grants when
// the epoch is new to it and the candidate's log is at least as
// up-to-date (lastZxid ordering subsumes epoch ordering because the
// epoch is the zxid's high half).
type requestVoteReq struct {
	Epoch       uint64
	CandidateID uint64
	LastZxid    uint64
}

func (m requestVoteReq) encode() []byte {
	var w wire.Writer
	w.Grow(32)
	w.Uint8(msgRequestVote)
	w.Uint64(m.Epoch)
	w.Uint64(m.CandidateID)
	w.Uint64(m.LastZxid)
	return w.Bytes()
}

type requestVoteResp struct {
	Granted bool
	Epoch   uint64
}

func (m requestVoteResp) encode() []byte {
	var w wire.Writer
	w.Grow(16)
	w.Bool(m.Granted)
	w.Uint64(m.Epoch)
	return w.Bytes()
}

func decodeRequestVoteResp(b []byte) (requestVoteResp, error) {
	r := wire.NewReader(b)
	m := requestVoteResp{Granted: r.Bool(), Epoch: r.Uint64()}
	return m, r.Err()
}

// syncReq is a lagging follower pulling state from the leader.
type syncReq struct {
	FromZxid uint64
}

func (m syncReq) encode() []byte {
	var w wire.Writer
	w.Grow(16)
	w.Uint8(msgSync)
	w.Uint64(m.FromZxid)
	return w.Bytes()
}

// syncResp carries either a snapshot plus trailing entries (when the
// follower is behind the leader's log horizon or has diverged) or just
// the entries after FromZxid.
type syncResp struct {
	HasSnapshot bool
	SnapZxid    uint64
	Snapshot    []byte
	Entries     []entry
	Commit      uint64
	Epoch       uint64
	LeaderID    uint64
}

func (m syncResp) encode() []byte {
	var w wire.Writer
	w.Grow(64 + len(m.Snapshot))
	w.Bool(m.HasSnapshot)
	w.Uint64(m.SnapZxid)
	w.Bytes32(m.Snapshot)
	w.Uint32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		encodeEntry(&w, e)
	}
	w.Uint64(m.Commit)
	w.Uint64(m.Epoch)
	w.Uint64(m.LeaderID)
	return w.Bytes()
}

func decodeSyncResp(b []byte) (syncResp, error) {
	r := wire.NewReader(b)
	m := syncResp{
		HasSnapshot: r.Bool(),
		SnapZxid:    r.Uint64(),
		Snapshot:    r.BytesCopy32(),
	}
	n := r.Uint32()
	if r.Err() != nil {
		return m, r.Err()
	}
	if int(n) > r.Remaining()/13 {
		return m, fmt.Errorf("zab: sync response claims %d entries in %d bytes", n, r.Remaining())
	}
	m.Entries = make([]entry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		m.Entries = append(m.Entries, decodeEntry(r))
	}
	m.Commit = r.Uint64()
	m.Epoch = r.Uint64()
	m.LeaderID = r.Uint64()
	return m, r.Err()
}

// observerPollReq is a non-voting observer pulling the committed log
// suffix from the leader. FromZxid is the observer's replication tip
// (always equal to its applied horizon — observers apply everything
// they receive, they hold no uncommitted tail) and AppliedZxid rides
// along so the leader's observer feed can track per-replica lag.
type observerPollReq struct {
	ObserverID  uint64
	FromZxid    uint64
	AppliedZxid uint64
}

func (m observerPollReq) encode() []byte {
	var w wire.Writer
	w.Grow(32)
	w.Uint8(msgObserverPoll)
	w.Uint64(m.ObserverID)
	w.Uint64(m.FromZxid)
	w.Uint64(m.AppliedZxid)
	return w.Bytes()
}

// observerPollResp ships the committed entries after FromZxid — the
// same snapshot-or-suffix shape as syncResp, but capped at the commit
// horizon: an observer never holds an uncommitted (potentially
// divergent) tail, so snapshot installation is the only truncation it
// ever needs. Redirect is set by a non-leader, pointing the observer
// at LeaderID instead.
type observerPollResp struct {
	Redirect    bool
	HasSnapshot bool
	SnapZxid    uint64
	Snapshot    []byte
	Entries     []entry
	Commit      uint64
	Epoch       uint64
	LeaderID    uint64
}

func (m observerPollResp) encode() []byte {
	var w wire.Writer
	w.Grow(64 + len(m.Snapshot))
	w.Bool(m.Redirect)
	w.Bool(m.HasSnapshot)
	w.Uint64(m.SnapZxid)
	w.Bytes32(m.Snapshot)
	w.Uint32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		encodeEntry(&w, e)
	}
	w.Uint64(m.Commit)
	w.Uint64(m.Epoch)
	w.Uint64(m.LeaderID)
	return w.Bytes()
}

func decodeObserverPollResp(b []byte) (observerPollResp, error) {
	r := wire.NewReader(b)
	m := observerPollResp{
		Redirect:    r.Bool(),
		HasSnapshot: r.Bool(),
		SnapZxid:    r.Uint64(),
		Snapshot:    r.BytesCopy32(),
	}
	n := r.Uint32()
	if r.Err() != nil {
		return m, r.Err()
	}
	if int(n) > r.Remaining()/13 {
		return m, fmt.Errorf("zab: observer poll response claims %d entries in %d bytes", n, r.Remaining())
	}
	m.Entries = make([]entry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		m.Entries = append(m.Entries, decodeEntry(r))
	}
	m.Commit = r.Uint64()
	m.Epoch = r.Uint64()
	m.LeaderID = r.Uint64()
	return m, r.Err()
}

// forwardReq routes a client write from a follower to the leader.
type forwardReq struct {
	Txn []byte
}

func (m forwardReq) encode() []byte {
	var w wire.Writer
	w.Grow(8 + len(m.Txn))
	w.Uint8(msgForward)
	w.Bytes32(m.Txn)
	return w.Bytes()
}

// forwardResp returns the state-machine result of the committed txn
// and its zxid, so the forwarding server can wait for local apply
// before answering its client (session read-your-writes).
type forwardResp struct {
	Zxid   uint64
	Result []byte
}

func (m forwardResp) encode() []byte {
	var w wire.Writer
	w.Grow(16 + len(m.Result))
	w.Uint64(m.Zxid)
	w.Bytes32(m.Result)
	return w.Bytes()
}

func decodeForwardResp(b []byte) (forwardResp, error) {
	r := wire.NewReader(b)
	m := forwardResp{Zxid: r.Uint64(), Result: r.BytesCopy32()}
	return m, r.Err()
}
