// Durable-node tests live in an external test package so they can
// import internal/coord/storage (which itself imports zab for the
// Storage interface) without an import cycle.
package zab_test

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/storage"
	"repro/internal/coord/zab"
	"repro/internal/transport"
)

// logSM is a deterministic append-log state machine: every applied
// txn is recorded, and snapshots round-trip the whole history.
type logSM struct {
	mu      sync.Mutex
	applied []string
}

func (s *logSM) Apply(txn []byte, zxid uint64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = append(s.applied, string(txn))
	out := make([]byte, 8+len(txn))
	binary.BigEndian.PutUint64(out, zxid)
	copy(out[8:], txn)
	return out
}

func (s *logSM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	for _, a := range s.applied {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func (s *logSM) Restore(snap []byte, _ uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = nil
	for off := 0; off+4 <= len(snap); {
		l := int(binary.BigEndian.Uint32(snap[off:]))
		off += 4
		s.applied = append(s.applied, string(snap[off:off+l]))
		off += l
	}
	return nil
}

func (s *logSM) have() map[string]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]bool, len(s.applied))
	for _, a := range s.applied {
		m[a] = true
	}
	return m
}

// durableEnsemble runs nodes backed by real storage engines in
// per-node temp directories, so members can be crashed (Stop; nothing
// extra reaches disk) and restarted from exactly what the protocol
// persisted.
type durableEnsemble struct {
	t       *testing.T
	dir     string
	net     *transport.InProc
	peers   map[uint64]string
	nodes   map[uint64]*zab.Node
	sms     map[uint64]*logSM
	engines map[uint64]*storage.Engine
	maxLog  int
	segSize int64
}

func newDurableEnsemble(t *testing.T, n int) *durableEnsemble {
	t.Helper()
	e := &durableEnsemble{
		t:       t,
		dir:     t.TempDir(),
		net:     transport.NewInProc(),
		peers:   make(map[uint64]string),
		nodes:   make(map[uint64]*zab.Node),
		sms:     make(map[uint64]*logSM),
		engines: make(map[uint64]*storage.Engine),
	}
	for i := 1; i <= n; i++ {
		e.peers[uint64(i)] = fmt.Sprintf("dur-%d", i)
	}
	for i := 1; i <= n; i++ {
		e.start(uint64(i))
	}
	t.Cleanup(e.stopAll)
	return e
}

func (e *durableEnsemble) start(id uint64) {
	e.t.Helper()
	eng, err := storage.Open(storage.Options{
		Dir:         filepath.Join(e.dir, fmt.Sprintf("node%d", id)),
		SegmentSize: e.segSize,
	})
	if err != nil {
		e.t.Fatal(err)
	}
	sm := &logSM{}
	node, err := zab.NewNode(zab.Config{
		ID:                id,
		Peers:             e.peers,
		Net:               e.net,
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   30 * time.Millisecond,
		MaxLogEntries:     e.maxLog,
		Storage:           eng,
	}, sm)
	if err != nil {
		e.t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		e.t.Fatal(err)
	}
	e.nodes[id], e.sms[id], e.engines[id] = node, sm, eng
}

// crash stops the node and closes its engine; the on-disk state is
// exactly what the protocol synced before the "kill".
func (e *durableEnsemble) crash(id uint64) {
	if n := e.nodes[id]; n != nil {
		n.Stop()
		e.nodes[id] = nil
	}
	if eng := e.engines[id]; eng != nil {
		eng.Close()
		e.engines[id] = nil
	}
}

func (e *durableEnsemble) stopAll() {
	for id := range e.peers {
		e.crash(id)
	}
}

func (e *durableEnsemble) waitLeader() *zab.Node {
	e.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var leader *zab.Node
		leaders := 0
		for _, n := range e.nodes {
			if n != nil && n.IsLeader() {
				leaders++
				leader = n
			}
		}
		if leaders == 1 {
			return leader
		}
		time.Sleep(5 * time.Millisecond)
	}
	e.t.Fatal("no leader elected within deadline")
	return nil
}

func mustPropose(t *testing.T, n *zab.Node, txn string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := n.Propose([]byte(txn))
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("Propose(%q) never succeeded: %v", txn, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableSingleNodeRestart: a one-member ensemble only commits
// once its own fsync covers the frame (the leader sync loop), and a
// restart from the data dir recovers every committed write.
func TestDurableSingleNodeRestart(t *testing.T) {
	e := newDurableEnsemble(t, 1)
	leader := e.waitLeader()
	for i := 0; i < 30; i++ {
		mustPropose(t, leader, fmt.Sprintf("solo-%d", i))
	}
	if d := e.engines[1].LastDurableZxid(); d == 0 {
		t.Fatal("commits happened with a zero durable horizon")
	}
	e.crash(1)

	e.start(1)
	leader = e.waitLeader()
	// A committed settle write orders the check after the recovered
	// tail has replayed (read-your-writes on this node).
	mustPropose(t, leader, "after-restart")
	have := e.sms[1].have()
	for i := 0; i < 30; i++ {
		if !have[fmt.Sprintf("solo-%d", i)] {
			t.Fatalf("write solo-%d lost across restart (recovered %d)", i, len(have))
		}
	}
}

// TestDurableQuorumCrashRestart kills a quorum of a 3-node ensemble
// mid-load (leader included), restarts it from disk, then cold-crashes
// the WHOLE ensemble and restarts that too. Every write acknowledged
// at any point must be applied on every member afterwards — the
// durability contract the in-memory model cannot offer (DESIGN.md
// §9.4's empty-rejoin caveat is exactly this scenario).
func TestDurableQuorumCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e := newDurableEnsemble(t, 3)
	e.waitLeader()

	var mu sync.Mutex
	acked := make(map[string]bool)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	handles := []*zab.Node{e.nodes[1], e.nodes[2], e.nodes[3]}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := handles[w%len(handles)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				txn := fmt.Sprintf("w%d-%d", w, i)
				if _, err := n.Propose([]byte(txn)); err == nil {
					mu.Lock()
					acked[txn] = true
					mu.Unlock()
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}

	// Mid-load: crash the leader plus one follower — a quorum.
	time.Sleep(150 * time.Millisecond)
	var victims []uint64
	for id, n := range e.nodes {
		if n != nil && n.IsLeader() {
			victims = append(victims, id)
			break
		}
	}
	if len(victims) == 0 {
		victims = append(victims, 1)
	}
	for id := range e.nodes {
		if len(victims) >= 2 {
			break
		}
		if id != victims[0] {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		e.crash(id)
	}
	time.Sleep(50 * time.Millisecond)
	for _, id := range victims {
		e.start(id)
	}
	e.waitLeader()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Whole-ensemble cold crash, then restart everyone from disk.
	e.stopAll()
	for id := range e.peers {
		e.start(id)
	}
	leader := e.waitLeader()
	mustPropose(t, leader, "settle")

	mu.Lock()
	want := make([]string, 0, len(acked))
	for txn := range acked {
		want = append(want, txn)
	}
	mu.Unlock()
	if len(want) == 0 {
		t.Fatal("nothing was acknowledged; test proves nothing")
	}
	for id := range e.peers {
		deadline := time.Now().Add(5 * time.Second)
		for {
			have := e.sms[id].have()
			missing := ""
			for _, txn := range want {
				if !have[txn] {
					missing = txn
					break
				}
			}
			if missing == "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d lost acked txn %s after full crash-restart (%d acked)", id, missing, len(want))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("verified %d acked txns across quorum crash + full-ensemble crash", len(want))
}

// TestDurableSnapshotReclaimsWAL: sustained traffic over a small
// MaxLogEntries and tiny WAL segments must trigger a fuzzy snapshot
// that reclaims covered segments, and a restart must still recover the
// full history from snapshot + tail.
func TestDurableSnapshotReclaimsWAL(t *testing.T) {
	e := &durableEnsemble{
		t:       t,
		dir:     t.TempDir(),
		net:     transport.NewInProc(),
		peers:   map[uint64]string{1: "snapdur-1"},
		nodes:   make(map[uint64]*zab.Node),
		sms:     make(map[uint64]*logSM),
		engines: make(map[uint64]*storage.Engine),
		maxLog:  32,
		segSize: 4 << 10,
	}
	e.start(1)
	t.Cleanup(e.stopAll)
	leader := e.waitLeader()
	const ops = 600
	for i := 0; i < ops; i++ {
		mustPropose(t, leader, fmt.Sprintf("t-%d", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.engines[1].SnapshotZxid() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no durable fuzzy snapshot after %d writes (segments=%d)", ops, e.engines[1].Segments())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ~600 records across 4 KiB segments is dozens of segments; the
	// snapshot must have reclaimed the covered prefix.
	if segs := e.engines[1].Segments(); segs > 8 {
		t.Fatalf("snapshot did not reclaim WAL segments: %d live", segs)
	}
	e.crash(1)
	e.start(1)
	leader = e.waitLeader()
	mustPropose(t, leader, "settle")
	have := e.sms[1].have()
	for i := 0; i < ops; i++ {
		if !have[fmt.Sprintf("t-%d", i)] {
			t.Fatalf("write t-%d lost across snapshot+restart (recovered %d)", i, len(have))
		}
	}
}
