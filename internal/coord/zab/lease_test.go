package zab

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestLeaseDeadlineSkewTable pins the arithmetic that keeps lease reads
// safe under clock drift: the deadline discounts the skew bound, and a
// skew at or above the election timeout collapses the margin to zero so
// the deadline can never sit in the future.
func TestLeaseDeadlineSkewTable(t *testing.T) {
	round := time.Unix(1000, 0)
	cases := []struct {
		et, skew time.Duration
		want     time.Duration // margin past round
	}{
		{100 * time.Millisecond, 0, 100 * time.Millisecond},
		{100 * time.Millisecond, 10 * time.Millisecond, 90 * time.Millisecond},
		{100 * time.Millisecond, 99 * time.Millisecond, 1 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond, 0}, // skew == ET: disabled
		{100 * time.Millisecond, 250 * time.Millisecond, 0}, // skew > ET: clamped, not negative
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("et=%v_skew=%v", c.et, c.skew), func(t *testing.T) {
			got := leaseDeadline(round, c.et, c.skew)
			if want := round.Add(c.want); !got.Equal(want) {
				t.Fatalf("leaseDeadline(%v, %v) = %v, want %v", c.et, c.skew, got, want)
			}
			if got.After(round.Add(c.et)) {
				t.Fatalf("deadline %v exceeds the unskewed bound %v", got, round.Add(c.et))
			}
		})
	}
}

// startSolo boots a single-node ensemble (quorum of one: every
// heartbeat round self-acks immediately) with the given skew bound.
func startSolo(t *testing.T, maxSkew time.Duration) *Node {
	t.Helper()
	sm := &kvSM{}
	node, err := NewNode(Config{
		ID:                1,
		Peers:             map[uint64]string{1: "lease-solo-1"},
		Net:               transport.NewInProc(),
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
		MaxClockSkew:      maxSkew,
		MaxLogEntries:     128,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	return node
}

func waitHolds(n *Node, want bool, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if n.HoldsReadLease() == want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return n.HoldsReadLease() == want
}

// TestLeaderAcquiresReadLease: once a quorum of heartbeat acks lands,
// the leader holds the lease; followers never do.
func TestLeaderAcquiresReadLease(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	if !waitHolds(leader, true, 2*time.Second) {
		t.Fatal("leader never acquired the read lease despite quorum heartbeats")
	}
	for id, n := range e.nodes {
		if id == leader.ID() {
			continue
		}
		if n.HoldsReadLease() {
			t.Fatalf("follower %d claims a read lease", id)
		}
	}
}

// TestLeaseExpiresWithoutQuorum: a leader cut off from every follower
// stops extending the lease, so it lapses within one election timeout —
// before any rival could be elected — and lease reads are refused.
func TestLeaseExpiresWithoutQuorum(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	if !waitHolds(leader, true, 2*time.Second) {
		t.Fatal("leader never acquired the read lease")
	}
	for id, n := range e.nodes {
		if id != leader.ID() {
			n.Stop()
		}
	}
	if !waitHolds(leader, false, 2*time.Second) {
		t.Fatal("lease did not expire after quorum loss")
	}
	// And it must stay revoked: no self-funding single-node extension.
	time.Sleep(3 * leader.cfg.ElectionTimeout)
	if leader.HoldsReadLease() {
		t.Fatal("isolated leader re-acquired the lease without a quorum")
	}
}

// TestStoppedLeaderRefusesLease: Stop revokes the lease before the node
// goes quiet, so a deposed process can never serve one more stale read.
func TestStoppedLeaderRefusesLease(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	if !waitHolds(leader, true, 2*time.Second) {
		t.Fatal("leader never acquired the read lease")
	}
	leader.Stop()
	if leader.HoldsReadLease() {
		t.Fatal("stopped leader still claims the read lease")
	}
}

// TestSkewBoundDisablesLease: with MaxClockSkew at or above the
// election timeout the lease margin is zero — a leader keeps leading
// and committing but never claims the fast read path. Degraded, not
// unsound.
func TestSkewBoundDisablesLease(t *testing.T) {
	n := startSolo(t, 200*time.Millisecond) // skew > 40ms election timeout
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !n.IsLeader() {
		time.Sleep(2 * time.Millisecond)
	}
	if !n.IsLeader() {
		t.Fatal("solo node never elected itself")
	}
	if _, err := n.Propose([]byte("x")); err != nil {
		t.Fatalf("solo leader cannot commit: %v", err)
	}
	// Heartbeats are self-acking every 5ms; give several rounds a
	// chance to (incorrectly) fund a lease.
	time.Sleep(60 * time.Millisecond)
	if n.HoldsReadLease() {
		t.Fatal("lease granted despite clock-skew bound >= election timeout")
	}
}

// TestSoloLeaderHoldsLease is the control for the skew test: the same
// topology with a sane skew bound does hold the lease.
func TestSoloLeaderHoldsLease(t *testing.T) {
	n := startSolo(t, 0)
	if !waitHolds(n, true, 2*time.Second) {
		t.Fatal("solo leader with zero skew bound never acquired the lease")
	}
}
