package zab

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// kvSM is a deterministic append-log state machine for tests: every
// applied txn is recorded, and the result echoes the txn with its zxid.
type kvSM struct {
	mu      sync.Mutex
	applied []string
	zxids   []uint64
}

func (s *kvSM) Apply(txn []byte, zxid uint64) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = append(s.applied, string(txn))
	s.zxids = append(s.zxids, zxid)
	out := make([]byte, 8+len(txn))
	binary.BigEndian.PutUint64(out, zxid)
	copy(out[8:], txn)
	return out
}

func (s *kvSM) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.applied)))
	for i, a := range s.applied {
		buf = binary.BigEndian.AppendUint64(buf, s.zxids[i])
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(a)))
		buf = append(buf, a...)
	}
	return buf
}

func (s *kvSM) Restore(snap []byte, snapZxid uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied = nil
	s.zxids = nil
	if len(snap) < 4 {
		return nil
	}
	n := binary.BigEndian.Uint32(snap)
	off := 4
	for i := uint32(0); i < n; i++ {
		z := binary.BigEndian.Uint64(snap[off:])
		s.zxids = append(s.zxids, z)
		off += 8
		l := binary.BigEndian.Uint32(snap[off:])
		off += 4
		s.applied = append(s.applied, string(snap[off:off+int(l)]))
		off += int(l)
	}
	return nil
}

func (s *kvSM) snapshotState() ([]string, []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.applied...), append([]uint64(nil), s.zxids...)
}

type ensemble struct {
	nodes map[uint64]*Node
	sms   map[uint64]*kvSM
	net   *transport.InProc
	peers map[uint64]string
}

func newEnsemble(t *testing.T, n int) *ensemble {
	t.Helper()
	e := &ensemble{
		nodes: make(map[uint64]*Node),
		sms:   make(map[uint64]*kvSM),
		net:   transport.NewInProc(),
		peers: make(map[uint64]string),
	}
	for i := 1; i <= n; i++ {
		e.peers[uint64(i)] = fmt.Sprintf("zab-%d", i)
	}
	for i := 1; i <= n; i++ {
		e.startNode(t, uint64(i), nil, 0)
	}
	t.Cleanup(e.stopAll)
	return e
}

func (e *ensemble) startNode(t *testing.T, id uint64, snap []byte, snapZxid uint64) {
	t.Helper()
	sm := &kvSM{}
	node, err := NewNode(Config{
		ID:                id,
		Peers:             e.peers,
		Net:               e.net,
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   30 * time.Millisecond,
		MaxLogEntries:     128,
		InitialSnapshot:   snap,
		InitialZxid:       snapZxid,
	}, sm)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	e.nodes[id] = node
	e.sms[id] = sm
}

func (e *ensemble) stopAll() {
	for _, n := range e.nodes {
		n.Stop()
	}
}

// waitLeader blocks until exactly one live node claims leadership and a
// majority agrees on it.
func (e *ensemble) waitLeader(t *testing.T) *Node {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var leader *Node
		leaders := 0
		for _, n := range e.nodes {
			if n.IsLeader() {
				leaders++
				leader = n
			}
		}
		if leaders == 1 {
			agree := 0
			for _, n := range e.nodes {
				if n.LeaderID() == leader.ID() {
					agree++
				}
			}
			if agree >= len(e.peers)/2+1 {
				return leader
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no stable leader elected within deadline")
	return nil
}

func proposeOK(t *testing.T, n *Node, txn string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := n.Propose([]byte(txn))
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("Propose(%q) never succeeded: %v", txn, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitConverged(t *testing.T, e *ensemble, want int, ids ...uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range ids {
			applied, _ := e.sms[id].snapshotState()
			if len(applied) != want {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range ids {
		applied, _ := e.sms[id].snapshotState()
		t.Logf("node %d applied %d entries", id, len(applied))
	}
	t.Fatalf("replicas did not converge to %d applied entries", want)
}

func TestElectsSingleLeader(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	if leader.Epoch() == 0 {
		t.Fatal("leader epoch is 0")
	}
}

func TestProposeReplicatesInOrder(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	const ops = 50
	for i := 0; i < ops; i++ {
		proposeOK(t, leader, fmt.Sprintf("op-%03d", i))
	}
	waitConverged(t, e, ops, 1, 2, 3)
	want, _ := e.sms[leader.ID()].snapshotState()
	for id, sm := range e.sms {
		got, zxids := sm.snapshotState()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d applied[%d] = %q, want %q", id, i, got[i], want[i])
			}
		}
		for i := 1; i < len(zxids); i++ {
			if zxids[i] <= zxids[i-1] {
				t.Fatalf("node %d zxids not strictly increasing: %d then %d", id, zxids[i-1], zxids[i])
			}
		}
	}
}

func TestFollowerForwardsProposals(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	var follower *Node
	for _, n := range e.nodes {
		if n.ID() != leader.ID() {
			follower = n
			break
		}
	}
	proposeOK(t, follower, "via-follower")
	waitConverged(t, e, 1, 1, 2, 3)
	applied, _ := e.sms[leader.ID()].snapshotState()
	if applied[0] != "via-follower" {
		t.Fatalf("applied = %v", applied)
	}
}

func TestConcurrentProposalsTotalOrder(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				proposeOK(t, leader, fmt.Sprintf("w%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	waitConverged(t, e, workers*perWorker, 1, 2, 3)
	base, _ := e.sms[1].snapshotState()
	for id := uint64(2); id <= 3; id++ {
		got, _ := e.sms[id].snapshotState()
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("node %d order diverges at %d: %q vs %q", id, i, got[i], base[i])
			}
		}
	}
}

func TestMinorityFailureStillCommits(t *testing.T) {
	e := newEnsemble(t, 5)
	leader := e.waitLeader(t)
	// Stop two non-leader nodes (a minority of 5).
	stopped := 0
	var live []uint64
	for id, n := range e.nodes {
		if id != leader.ID() && stopped < 2 {
			n.Stop()
			stopped++
			continue
		}
		live = append(live, id)
	}
	for i := 0; i < 10; i++ {
		proposeOK(t, leader, fmt.Sprintf("after-failure-%d", i))
	}
	waitConverged(t, e, 10, live...)
}

func TestLeaderFailureElectsNewLeaderAndPreservesLog(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	for i := 0; i < 5; i++ {
		proposeOK(t, leader, fmt.Sprintf("pre-%d", i))
	}
	waitConverged(t, e, 5, 1, 2, 3)
	oldID := leader.ID()
	leader.Stop()
	delete(e.nodes, oldID)

	newLeader := e.waitLeader(t)
	if newLeader.ID() == oldID {
		t.Fatal("stopped node still leads")
	}
	for i := 0; i < 5; i++ {
		proposeOK(t, newLeader, fmt.Sprintf("post-%d", i))
	}
	var live []uint64
	for id := range e.nodes {
		live = append(live, id)
	}
	waitConverged(t, e, 10, live...)
	applied, _ := e.sms[newLeader.ID()].snapshotState()
	for i := 0; i < 5; i++ {
		if applied[i] != fmt.Sprintf("pre-%d", i) {
			t.Fatalf("pre-failure entry %d lost: %v", i, applied[:5])
		}
	}
}

func TestNoQuorumBlocksWrites(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	for id, n := range e.nodes {
		if id != leader.ID() {
			n.Stop()
		}
	}
	_, err := leader.Propose([]byte("doomed"))
	if err == nil {
		t.Fatal("Propose succeeded without a quorum")
	}
}

func TestLaggingFollowerCatchesUpViaSync(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	// Stop one follower, write enough to force log truncation
	// (MaxLogEntries=128), then restart it and expect a snapshot sync.
	var victim uint64
	for id, n := range e.nodes {
		if id != leader.ID() {
			victim = id
			n.Stop()
			break
		}
	}
	const ops = 400
	for i := 0; i < ops; i++ {
		proposeOK(t, leader, fmt.Sprintf("op-%d", i))
	}
	delete(e.nodes, victim)
	e.startNode(t, victim, nil, 0)
	waitConverged(t, e, ops, victim)
	got, _ := e.sms[victim].snapshotState()
	if got[0] != "op-0" || got[ops-1] != fmt.Sprintf("op-%d", ops-1) {
		t.Fatalf("restarted follower state bad: first=%q last=%q", got[0], got[ops-1])
	}
}

func TestFullRestartFromCheckpoint(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	for i := 0; i < 20; i++ {
		proposeOK(t, leader, fmt.Sprintf("durable-%d", i))
	}
	waitConverged(t, e, 20, 1, 2, 3)
	snap, zxid := leader.Checkpoint()
	e.stopAll()

	// Boot a fresh ensemble from the checkpoint, like ZooKeeper
	// restarting from its on-disk snapshot (paper §IV-I).
	e2 := &ensemble{
		nodes: make(map[uint64]*Node),
		sms:   make(map[uint64]*kvSM),
		net:   transport.NewInProc(),
		peers: map[uint64]string{1: "r1", 2: "r2", 3: "r3"},
	}
	for id := uint64(1); id <= 3; id++ {
		e2.startNode(t, id, snap, zxid)
	}
	defer e2.stopAll()
	leader2 := e2.waitLeader(t)
	applied, _ := e2.sms[leader2.ID()].snapshotState()
	if len(applied) != 20 || applied[19] != "durable-19" {
		t.Fatalf("restored state wrong: %d entries", len(applied))
	}
	proposeOK(t, leader2, "after-restart")
	waitConverged(t, e2, 21, 1, 2, 3)
}

func TestProposeOnStoppedNode(t *testing.T) {
	e := newEnsemble(t, 3)
	leader := e.waitLeader(t)
	leader.Stop()
	if _, err := leader.Propose([]byte("x")); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}, &kvSM{}); err == nil {
		t.Fatal("NewNode without Net succeeded")
	}
	if _, err := NewNode(Config{Net: transport.NewInProc(), ID: 9, Peers: map[uint64]string{1: "a"}}, &kvSM{}); err == nil {
		t.Fatal("NewNode with ID outside peers succeeded")
	}
}

// TestGroupCommitCoalescesAndReturnsPerTxnResults drives a 3-node
// ensemble behind injected latency with many concurrent proposers.
// Under that load the proposer MUST coalesce transactions into
// multi-txn frames (queue builds up behind the quorum round trip), and
// every caller must get back ITS OWN transaction's result, not a
// neighbour's from the same frame.
func TestGroupCommitCoalescesAndReturnsPerTxnResults(t *testing.T) {
	net := &transport.Latency{
		Inner: transport.NewInProc(),
		Delay: func() time.Duration { return 300 * time.Microsecond },
	}
	peers := map[uint64]string{1: "gc-1", 2: "gc-2", 3: "gc-3"}
	nodes := make(map[uint64]*Node)
	sms := make(map[uint64]*kvSM)
	regs := make(map[uint64]*metrics.Registry)
	for id := range peers {
		sm := &kvSM{}
		reg := metrics.NewRegistry()
		n, err := NewNode(Config{
			ID:                id,
			Peers:             peers,
			Net:               net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			Metrics:           reg,
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes[id], sms[id], regs[id] = n, sm, reg
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	var leader *Node
	deadline := time.Now().Add(5 * time.Second)
	for leader == nil {
		for _, n := range nodes {
			if n.IsLeader() {
				leader = n
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(2 * time.Millisecond)
	}

	const workers = 24
	const perWorker = 12
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				txn := fmt.Sprintf("w%d-%d", w, i)
				res, err := leader.Propose([]byte(txn))
				if err != nil {
					errCh <- fmt.Errorf("propose %s: %w", txn, err)
					return
				}
				// kvSM echoes zxid || txn: the result must be OURS.
				if len(res) < 8 || !bytes.Equal(res[8:], []byte(txn)) {
					errCh <- fmt.Errorf("propose %s got someone else's result %q", txn, res[8:])
					return
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	waitConverged(t, &ensemble{nodes: nodes, sms: sms, peers: peers}, workers*perWorker, 1, 2, 3)
	d := regs[leader.ID()].Distribution("zab.proposer.batch_txns")
	if d.Count() == 0 {
		t.Fatal("proposer batch distribution never observed a frame")
	}
	if d.Max() < 2 {
		t.Fatalf("no multi-txn frame formed under %d concurrent writers (max batch = %d)", workers, d.Max())
	}
	t.Logf("frames=%d batch mean=%.1f max=%d queue gauge=%d",
		d.Count(), d.Mean(), d.Max(), regs[leader.ID()].Gauge("zab.proposer.queue_depth").Value())
}

// TestSerializedModeStillCorrect pins the ablation baseline: with
// MaxBatchTxns=1 and MaxInflightFrames=1 the pipeline degrades to the
// one-frame-per-quorum-round-trip lockstep and everything still
// replicates in order.
func TestSerializedModeStillCorrect(t *testing.T) {
	e := &ensemble{
		nodes: make(map[uint64]*Node),
		sms:   make(map[uint64]*kvSM),
		net:   transport.NewInProc(),
		peers: map[uint64]string{1: "ser-1", 2: "ser-2", 3: "ser-3"},
	}
	for id := range e.peers {
		sm := &kvSM{}
		n, err := NewNode(Config{
			ID:                id,
			Peers:             e.peers,
			Net:               e.net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxBatchTxns:      1,
			MaxInflightFrames: 1,
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		e.nodes[id], e.sms[id] = n, sm
	}
	defer e.stopAll()
	leader := e.waitLeader(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				proposeOK(t, leader, fmt.Sprintf("s%d-%d", w, i))
			}
		}(w)
	}
	wg.Wait()
	waitConverged(t, e, 40, 1, 2, 3)
}

// TestBarrierExemptFromInflightWindow pins the livelock fix: a leader
// re-elected with an inherited uncommitted tail that already fills the
// pipelining window must still propose its epoch barrier — nothing
// inherited can commit until a current-epoch frame exists, so gating
// the barrier on the window would wedge the shard forever.
func TestBarrierExemptFromInflightWindow(t *testing.T) {
	e := &ensemble{
		nodes: make(map[uint64]*Node),
		sms:   make(map[uint64]*kvSM),
		net:   transport.NewInProc(),
		peers: map[uint64]string{1: "bar-1", 2: "bar-2"},
	}
	mk := func(id uint64) {
		sm := &kvSM{}
		n, err := NewNode(Config{
			ID:                id,
			Peers:             e.peers,
			Net:               e.net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxInflightFrames: 1,
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		e.nodes[id], e.sms[id] = n, sm
	}
	mk(1)
	mk(2)
	defer e.stopAll()
	leader := e.waitLeader(t)
	follower := e.nodes[3-leader.ID()]
	proposeOK(t, leader, "committed-before")

	// Cut the follower, then fire writes that fill the window as an
	// uncommitted tail and force the stall watchdog to step the leader
	// down.
	follower.Stop()
	for i := 0; i < 2; i++ {
		go leader.Propose([]byte(fmt.Sprintf("tail-%d", i))) //nolint:errcheck
	}
	deadline := time.Now().Add(5 * time.Second)
	for leader.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("quorumless leader never stepped down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart the follower empty WITH THE SAME window=1 config.
	// Whichever node wins the next election inherits the uncommitted
	// tail (the restarted node syncs it from the other's log before or
	// after voting), so the new leader's window is already full when
	// its barrier queues.
	mk(follower.ID())
	newLeader := e.waitLeader(t)
	// Without the barrier exemption this times out: the barrier never
	// proposes, nothing commits, and the watchdog churns elections.
	proposeOK(t, newLeader, "after-recovery")
}

// TestProposeWindowCodec round-trips a multi-frame propose window and
// rejects structurally impossible counts instead of allocating them.
func TestProposeWindowCodec(t *testing.T) {
	req := proposeReq{
		Epoch:    7,
		LeaderID: 3,
		PrevZxid: makeZxid(7, 4),
		Entries: []entry{
			{Zxid: makeZxid(7, 5), Txns: [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}},
			{Zxid: makeZxid(7, 8), Noop: true},
			{Zxid: makeZxid(7, 9), Txns: [][]byte{[]byte("d")}},
		},
		Commit: makeZxid(7, 4),
	}
	b := req.encode()
	r := wire.NewReader(b)
	if kind := r.Uint8(); kind != msgPropose {
		t.Fatalf("kind = %d", kind)
	}
	got := decodeProposeReq(r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got.Epoch != req.Epoch || got.PrevZxid != req.PrevZxid || got.Commit != req.Commit {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != 3 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	if got.Entries[0].last() != makeZxid(7, 7) {
		t.Fatalf("frame 0 last = %x", got.Entries[0].last())
	}
	if !got.Entries[1].Noop || got.Entries[1].last() != makeZxid(7, 8) {
		t.Fatalf("noop frame decoded wrong: %+v", got.Entries[1])
	}
	if string(got.Entries[2].Txns[0]) != "d" {
		t.Fatalf("frame 2 txn = %q", got.Entries[2].Txns[0])
	}

	// A claimed entry count larger than the remaining bytes must fail
	// the reader, not allocate.
	w := wire.NewWriter(32)
	w.Uint64(1) // epoch
	w.Uint64(1) // leader
	w.Uint64(0) // prev
	w.Uint32(1 << 30)
	bad := wire.NewReader(w.Bytes())
	decodeProposeReq(bad)
	if bad.Err() == nil {
		t.Fatal("oversized entry count not rejected")
	}

	// Amplification guard: a count that FITS the remaining byte count
	// but exceeds what those bytes could structurally encode (>= 13
	// bytes per entry) must also fail before allocating slice headers
	// ~40x the message size.
	w = wire.NewWriter(256)
	w.Uint64(1)
	w.Uint64(1)
	w.Uint64(0)
	w.Uint32(100) // claims 100 entries...
	for i := 0; i < 100; i++ {
		w.Uint8(0) // ...backed by only 100 bytes
	}
	amp := wire.NewReader(w.Bytes())
	decodeProposeReq(amp)
	if amp.Err() == nil {
		t.Fatal("amplifying entry count not rejected")
	}
}

func TestZxidArithmetic(t *testing.T) {
	z := makeZxid(3, 7)
	if epochOf(z) != 3 || z&0xffffffff != 7 {
		t.Fatalf("zxid layout wrong: %x", z)
	}
	if makeZxid(2, 0xffffffff) >= makeZxid(3, 1) {
		t.Fatal("epoch must dominate ordering")
	}
}
