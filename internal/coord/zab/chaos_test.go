package zab

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestLeaderKillsPreserveAckedTxns: 5 nodes, kill up to 2 leaders (a
// minority), never restart. Every acknowledged transaction must
// survive in each survivor's applied history — with no restarts in
// play, any loss is a pure replication-protocol bug (no state amnesia
// possible), which makes this the sharpest durability check on the
// group-commit pipeline: frames die queued, proposed-but-unacked and
// acked-but-uncommitted, and only the acked ones owe survival.
func TestLeaderKillsPreserveAckedTxns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for round := 0; round < 3; round++ {
		e := &ensemble{
			nodes: make(map[uint64]*Node),
			sms:   make(map[uint64]*kvSM),
			net:   transport.NewInProc(),
			peers: make(map[uint64]string),
		}
		for i := 1; i <= 5; i++ {
			e.peers[uint64(i)] = fmt.Sprintf("scr%d-%d", round, i)
		}
		for i := 1; i <= 5; i++ {
			e.startNode(t, uint64(i), nil, 0)
		}

		var mu sync.Mutex
		acked := make(map[string]bool)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		// Snapshot the handles up front: writers keep proposing through
		// their node even once it is stopped (Propose then returns
		// ErrStopped), so they never touch the mutable e.nodes map the
		// kill loop edits.
		handles := make([]*Node, 0, 5)
		for id := uint64(1); id <= 5; id++ {
			handles = append(handles, e.nodes[id])
		}
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				n := handles[w%len(handles)]
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					txn := fmt.Sprintf("r%d-w%d-%d", round, w, i)
					// Propose via a fixed node (it forwards if follower).
					if _, err := n.Propose([]byte(txn)); err == nil {
						mu.Lock()
						acked[txn] = true
						mu.Unlock()
					} else {
						// Stopped or leaderless node: don't busy-spin.
						time.Sleep(time.Millisecond)
					}
				}
			}(w)
		}

		// Kill two leaders, 100ms apart.
		killed := 0
		for killed < 2 {
			time.Sleep(100 * time.Millisecond)
			var victim *Node
			var victimID uint64
			for id, n := range e.nodes {
				if n != nil && n.IsLeader() {
					victim, victimID = n, id
					break
				}
			}
			if victim == nil {
				continue
			}
			e.nodes[victimID] = nil
			victim.Stop()
			killed++
		}
		time.Sleep(50 * time.Millisecond)
		close(stop)
		wg.Wait()

		// Settle, then check every acked txn on the survivors.
		var survivors []uint64
		for id, n := range e.nodes {
			if n != nil {
				survivors = append(survivors, id)
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			var leader *Node
			for _, id := range survivors {
				if e.nodes[id].IsLeader() {
					leader = e.nodes[id]
				}
			}
			if leader != nil {
				if _, err := leader.Propose([]byte("settle")); err == nil {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: no working leader after kills", round)
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Wait for convergence of the survivors, then verify.
		for _, id := range survivors {
			conv := time.Now().Add(3 * time.Second)
			for {
				applied, _ := e.sms[id].snapshotState()
				have := make(map[string]bool, len(applied))
				for _, a := range applied {
					have[a] = true
				}
				var missing string
				mu.Lock()
				for txn := range acked {
					if !have[txn] {
						missing = txn
						break
					}
				}
				total := len(acked)
				mu.Unlock()
				if missing == "" {
					break
				}
				if time.Now().After(conv) {
					for _, jd := range survivors {
						t.Logf("node %d: %s", jd, e.nodes[jd].DebugString())
					}
					t.Fatalf("round %d: node %d lost acked txn %s (applied=%d acked=%d)",
						round, id, missing, len(have), total)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		for _, n := range e.nodes {
			if n != nil {
				n.Stop()
			}
		}
		t.Logf("round %d ok: %d acked", round, len(acked))
	}
}
