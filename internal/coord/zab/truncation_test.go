package zab

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// partitionNet blocks dialed calls toward a victim address, simulating
// a network partition of one member while everything else flows.
type partitionNet struct {
	transport.Network
	mu     sync.Mutex
	victim string
	cut    bool
}

func (p *partitionNet) partition(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.victim, p.cut = addr, true
}

func (p *partitionNet) heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cut = false
}

func (p *partitionNet) blocked(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut && addr == p.victim
}

func (p *partitionNet) Dial(addr string) (transport.Conn, error) {
	c, err := p.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &partitionConn{Conn: c, net: p, addr: addr}, nil
}

type partitionConn struct {
	transport.Conn
	net  *partitionNet
	addr string
}

func (c *partitionConn) Call(req []byte) ([]byte, error) {
	if c.net.blocked(c.addr) {
		return nil, fmt.Errorf("partition: %s unreachable", c.addr)
	}
	return c.Conn.Call(req)
}

// TestAggressiveTruncationPartitionedFollower is the regression test
// for the truncation/sync interaction: with MaxLogEntries=4 the leader
// truncates far past a partitioned follower's position while writes
// keep flowing. On heal, the follower's stale position must be
// answered SNAPSHOT-FIRST by handleSync — deterministically, never a
// log suffix with a silent gap — and the follower must converge on the
// full history in order.
func TestAggressiveTruncationPartitionedFollower(t *testing.T) {
	net := &partitionNet{Network: transport.NewInProc()}
	e := &ensemble{
		nodes: make(map[uint64]*Node),
		sms:   make(map[uint64]*kvSM),
		peers: map[uint64]string{1: "part-1", 2: "part-2", 3: "part-3"},
	}
	for id := range e.peers {
		sm := &kvSM{}
		n, err := NewNode(Config{
			ID:                id,
			Peers:             e.peers,
			Net:               net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxLogEntries:     4, // aggressive: truncate on nearly every apply burst
		}, sm)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		e.nodes[id], e.sms[id] = n, sm
	}
	defer e.stopAll()
	leader := e.waitLeader(t)
	var victim uint64
	for id := range e.nodes {
		if id != leader.ID() {
			victim = id
			break
		}
	}
	net.partition(e.peers[victim])

	// Enough load to truncate well past the victim's position (the
	// truncation margin keeps 64 recent frames, so write many more).
	const ops = 400
	for i := 0; i < ops; i++ {
		proposeOK(t, leader, fmt.Sprintf("agg-%d", i))
	}
	leader.mu.Lock()
	snapZxid := leader.snapZxid
	leader.mu.Unlock()
	if snapZxid == 0 {
		t.Fatal("leader never truncated; the test exercises nothing")
	}

	net.heal()
	waitConverged(t, e, ops, victim)
	got, zxids := e.sms[victim].snapshotState()
	if got[len(got)-1] != fmt.Sprintf("agg-%d", ops-1) {
		t.Fatalf("victim tail = %q", got[len(got)-1])
	}
	for i := 1; i < len(zxids); i++ {
		if zxids[i] <= zxids[i-1] {
			t.Fatalf("victim zxids not increasing at %d", i)
		}
	}
}
