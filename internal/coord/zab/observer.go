package zab

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Observer is a non-voting replica: it tails the leader's committed
// log by polling the observer feed (streaming the same frames the
// voters replicate and the WAL persists), applies every frame it
// receives to its local state machine, and exposes the applied horizon
// for a server to serve reads against. Initial catch-up — and
// catch-up after the leader truncates past the observer's position —
// arrives as a snapshot install, exactly like a lagging voter's sync.
//
// An Observer holds no log and no durable state: its entire replica is
// the state machine, rebuilt from a snapshot whenever it falls behind.
// It never votes, never acks, and never appears in quorum math; the
// write path touches it only through Forward, which proxies a client
// transaction to the current leader.
type Observer struct {
	cfg ObserverConfig
	sm  StateMachine
	bsm BatchStateMachine

	mu           sync.Mutex
	epoch        uint64
	leaderID     uint64
	lastApplied  uint64
	leaderCommit uint64 // highest commit horizon seen from a leader
	snapshots    uint64 // snapshot installs (initial catch-up + post-truncation)
	paused       bool   // test/chaos hook: stall replication
	stopped      bool
	applyWaiters map[uint64][]chan struct{}

	connMu sync.Mutex
	conns  map[uint64]transport.Conn

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// ObserverConfig configures a non-voting observer replica.
type ObserverConfig struct {
	// ID identifies this observer in the leader's feed (and its lag
	// gauges). Must be disjoint from the voter IDs.
	ID uint64
	// Peers maps the VOTING members' IDs to their peer addresses — the
	// plane the observer polls for committed frames and forwards
	// writes through. The observer itself is not in this map.
	Peers map[uint64]string
	// Net is the transport the peer addresses live on.
	Net transport.Network
	// PollInterval is the idle tail cadence; while frames are flowing
	// the observer re-polls immediately. Defaults to 15ms.
	PollInterval time.Duration
}

// ErrNotTailing is returned by Forward when the observer has not yet
// located a leader to proxy the write to.
var ErrNotTailing = errors.New("zab: observer has no leader to forward to")

// NewObserver validates the configuration and builds an observer.
// Call Start to begin tailing.
func NewObserver(cfg ObserverConfig, sm StateMachine) (*Observer, error) {
	if cfg.Net == nil {
		return nil, errors.New("zab: ObserverConfig.Net is required")
	}
	if len(cfg.Peers) == 0 {
		return nil, errors.New("zab: ObserverConfig.Peers is required")
	}
	if _, clash := cfg.Peers[cfg.ID]; clash || cfg.ID == 0 {
		return nil, fmt.Errorf("zab: observer ID %d collides with a voter (or is zero)", cfg.ID)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 15 * time.Millisecond
	}
	o := &Observer{
		cfg:          cfg,
		sm:           sm,
		conns:        make(map[uint64]transport.Conn),
		applyWaiters: make(map[uint64][]chan struct{}),
		stopCh:       make(chan struct{}),
	}
	o.bsm, _ = sm.(BatchStateMachine)
	return o, nil
}

// Start launches the tail loop.
func (o *Observer) Start() {
	o.wg.Add(1)
	go o.tailLoop()
}

// Stop halts tailing and fails outstanding WaitApplied calls.
func (o *Observer) Stop() {
	o.mu.Lock()
	if o.stopped {
		o.mu.Unlock()
		return
	}
	o.stopped = true
	o.mu.Unlock()
	close(o.stopCh)
	o.connMu.Lock()
	for id, c := range o.conns {
		c.Close()
		delete(o.conns, id)
	}
	o.connMu.Unlock()
	o.wg.Wait()
}

// ID returns the observer's feed identity.
func (o *Observer) ID() uint64 { return o.cfg.ID }

// LastApplied returns the replica's applied horizon.
func (o *Observer) LastApplied() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.lastApplied
}

// Epoch returns the highest leader epoch the observer has tailed.
func (o *Observer) Epoch() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// LeaderID returns the voter the observer is currently tailing (0
// while searching).
func (o *Observer) LeaderID() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.leaderID
}

// LagTxns returns the gap between the last commit horizon the
// observer saw and what it has applied. The value is a zxid delta:
// exact within an epoch, a deliberate overestimate across an epoch
// boundary — callers treating "large" as "stale" (the read router's
// staleness bound) get the conservative answer either way.
func (o *Observer) LagTxns() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.leaderCommit <= o.lastApplied {
		return 0
	}
	return o.leaderCommit - o.lastApplied
}

// SnapshotInstalls counts how many times the replica was rebuilt from
// a shipped snapshot (initial catch-up and every catch-up after log
// truncation).
func (o *Observer) SnapshotInstalls() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.snapshots
}

// SetPaused stalls (true) or resumes (false) the tail loop — the
// replication-delay injection point for tests and chaos scenarios.
func (o *Observer) SetPaused(p bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.paused = p
}

// WaitApplied blocks until the local replica has applied zxid — the
// sync-barrier primitive: a server that forwarded a write (or a sync
// token) to the leader holds the client's response until the write is
// visible in local reads.
func (o *Observer) WaitApplied(zxid uint64) error {
	o.mu.Lock()
	if o.lastApplied >= zxid {
		o.mu.Unlock()
		return nil
	}
	if o.stopped {
		o.mu.Unlock()
		return ErrStopped
	}
	ch := make(chan struct{})
	o.applyWaiters[zxid] = append(o.applyWaiters[zxid], ch)
	o.mu.Unlock()

	timer := time.NewTimer(proposeTimeout)
	defer timer.Stop()
	select {
	case <-ch:
		return nil
	case <-o.stopCh:
		return ErrStopped
	case <-timer.C:
		o.mu.Lock()
		applied := o.lastApplied >= zxid
		chans := o.applyWaiters[zxid]
		for i, c := range chans {
			if c == ch {
				o.applyWaiters[zxid] = append(chans[:i:i], chans[i+1:]...)
				break
			}
		}
		if len(o.applyWaiters[zxid]) == 0 {
			delete(o.applyWaiters, zxid)
		}
		o.mu.Unlock()
		if applied {
			return nil
		}
		return fmt.Errorf("zab: observer: zxid %x not applied within %v", zxid, proposeTimeout)
	}
}

// Forward proxies one client transaction to the current leader and
// returns its committed result and zxid. The caller typically follows
// with WaitApplied(zxid) so its own replica reflects the write before
// the client hears the ack.
func (o *Observer) Forward(txn []byte) (result []byte, zxid uint64, err error) {
	o.mu.Lock()
	leader := o.leaderID
	o.mu.Unlock()
	if leader == 0 {
		return nil, 0, ErrNotTailing
	}
	respB, err := o.callPeer(leader, forwardReq{Txn: txn}.encode())
	if err != nil {
		o.mu.Lock()
		if o.leaderID == leader {
			o.leaderID = 0
		}
		o.mu.Unlock()
		return nil, 0, err
	}
	resp, err := decodeForwardResp(respB)
	if err != nil {
		return nil, 0, err
	}
	return resp.Result, resp.Zxid, nil
}

// --- tail loop --------------------------------------------------------

func (o *Observer) tailLoop() {
	defer o.wg.Done()
	voters := o.sortedVoters()
	next := 0 // round-robin cursor while no leader is known
	for {
		o.mu.Lock()
		paused, target, from := o.paused, o.leaderID, o.lastApplied
		o.mu.Unlock()
		if paused {
			if !o.sleepInterruptible(o.cfg.PollInterval) {
				return
			}
			continue
		}
		if target == 0 {
			target = voters[next%len(voters)]
			next++
		}
		progress := o.pollOnce(target, from)
		if progress {
			continue // keep streaming while frames are flowing
		}
		if !o.sleepInterruptible(o.cfg.PollInterval) {
			return
		}
	}
}

// pollOnce performs one feed poll against `target` and applies what
// comes back. It reports whether replication progressed (snapshot or
// frames applied), in which case the caller re-polls immediately.
func (o *Observer) pollOnce(target, from uint64) bool {
	req := observerPollReq{ObserverID: o.cfg.ID, FromZxid: from, AppliedZxid: from}
	respB, err := o.callPeer(target, req.encode())
	if err != nil {
		o.mu.Lock()
		if o.leaderID == target {
			o.leaderID = 0 // the leader went away; search again
		}
		o.mu.Unlock()
		return false
	}
	resp, err := decodeObserverPollResp(respB)
	if err != nil {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.stopped {
		return false
	}
	if resp.Redirect {
		if resp.LeaderID != 0 && resp.LeaderID != o.cfg.ID {
			o.leaderID = resp.LeaderID
			return true // retry immediately against the hint
		}
		if o.leaderID == target {
			o.leaderID = 0
		}
		return false
	}
	if resp.Epoch < o.epoch {
		return false // stale leader; keep searching
	}
	o.epoch = resp.Epoch
	o.leaderID = resp.LeaderID
	progress := false
	if resp.HasSnapshot && resp.SnapZxid > o.lastApplied {
		if err := o.sm.Restore(resp.Snapshot, resp.SnapZxid); err != nil {
			return false
		}
		o.lastApplied = resp.SnapZxid
		o.snapshots++
		progress = true
	}
	// Frames arrive contiguous after the poll position (or after the
	// snapshot); anything at or below our applied horizon is overlap
	// from a raced poll — committed history is linear, so skipping is
	// safe.
	for _, e := range resp.Entries {
		if e.last() <= o.lastApplied {
			continue
		}
		if !e.Noop {
			if o.bsm != nil {
				o.bsm.ApplyBatch(e.Txns, e.Zxid)
			} else {
				for j, txn := range e.Txns {
					o.sm.Apply(txn, e.Zxid+uint64(j))
				}
			}
		}
		o.lastApplied = e.last()
		progress = true
	}
	if resp.Commit > o.leaderCommit {
		o.leaderCommit = resp.Commit
	}
	if progress {
		o.wakeAppliedLocked()
	}
	return progress
}

func (o *Observer) wakeAppliedLocked() {
	for z, chans := range o.applyWaiters {
		if z > o.lastApplied {
			continue
		}
		for _, ch := range chans {
			close(ch)
		}
		delete(o.applyWaiters, z)
	}
}

func (o *Observer) sortedVoters() []uint64 {
	ids := make([]uint64, 0, len(o.cfg.Peers))
	for id := range o.cfg.Peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (o *Observer) sleepInterruptible(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-o.stopCh:
		return false
	case <-timer.C:
		return true
	}
}

func (o *Observer) getConn(id uint64) (transport.Conn, error) {
	o.connMu.Lock()
	defer o.connMu.Unlock()
	if c, ok := o.conns[id]; ok {
		return c, nil
	}
	addr, ok := o.cfg.Peers[id]
	if !ok {
		return nil, fmt.Errorf("zab: observer: unknown voter %d", id)
	}
	c, err := o.cfg.Net.Dial(addr)
	if err != nil {
		return nil, err
	}
	o.conns[id] = c
	return c, nil
}

func (o *Observer) callPeer(id uint64, req []byte) ([]byte, error) {
	c, err := o.getConn(id)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(req)
	if err != nil {
		o.connMu.Lock()
		if cur, ok := o.conns[id]; ok && cur == c {
			cur.Close()
			delete(o.conns, id)
		}
		o.connMu.Unlock()
	}
	return resp, err
}
