package zab

import "time"

// Leader read leases.
//
// A leader that holds the lease may serve linearizable reads from its
// local state machine without a quorum round trip. The lease is funded
// by heartbeat acks: when a quorum acknowledges a heartbeat round that
// began at time T (on the leader's clock), every acking follower has
// reset its election timer no earlier than T, so none of them will
// grant a leadership vote before T + ElectionTimeout on its own clock
// (the stickiness check in handleRequestVote). Any rival's vote quorum
// intersects this ack quorum, so no rival can be elected — and
// therefore no write can commit elsewhere — until the earliest such
// expiry. Discounting the bounded clock skew between members, the
// leader may trust its state until T + ElectionTimeout - MaxClockSkew
// on its own clock.
//
// The lease is revoked (leaseUntil zeroed) on every step-down path —
// adopting a higher epoch, granting a vote while leading, the
// quorum-loss watchdog, Stop — all of which funnel through
// failLeaderLocked before the node stops being the leader.

// leaseDeadline computes the expiry a quorum of heartbeat acks
// gathered for a round that began at `round` supports. A skew bound at
// or above the election timeout yields a deadline that is never in the
// future: lease reads are effectively disabled rather than unsound.
func leaseDeadline(round time.Time, electionTimeout, maxSkew time.Duration) time.Time {
	margin := electionTimeout - maxSkew
	if margin < 0 {
		margin = 0
	}
	return round.Add(margin)
}

// extendLease advances the lease deadline after a quorum of heartbeat
// acks for a round that began at `round` under `epoch`. The epoch
// guard discards extensions that race a step-down: acks collected for
// an older leadership cannot fund the new one.
func (n *Node) extendLease(round time.Time, epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != roleLeader || n.epoch != epoch || n.stopped {
		return
	}
	if d := leaseDeadline(round, n.cfg.ElectionTimeout, n.cfg.MaxClockSkew); d.After(n.leaseUntil) {
		n.leaseUntil = d
	}
}

// HoldsReadLease reports whether this node may serve a linearizable
// read locally right now: it leads, and its lease deadline — funded by
// a quorum of heartbeat acks, discounted by the clock-skew bound — has
// not passed. A deposed or stopped leader always reports false (the
// lease is revoked before the role changes).
func (n *Node) HoldsReadLease() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == roleLeader && !n.stopped && n.now().Before(n.leaseUntil)
}
