package coord

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/coord/znode"
	"repro/internal/placement"
)

// TestFenceBouncesWritesServesReads pins the fence contract: while a
// range is fenced, writes routed into it bounce with ErrFenced, reads
// keep serving, and out-of-range traffic is untouched. Unfencing
// restores writes.
func TestFenceBouncesWritesServesReads(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)
	ctx := context.Background()

	for _, p := range []string{"/mig", "/mig/a", "/other", "/other/x"} {
		if _, err := s.Create(p, []byte(p), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	rng := placement.RangeForKey("/mig")

	fz, err := s.FenceRange(ctx, rng, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if fz == 0 {
		t.Fatal("fence zxid = 0")
	}

	if _, err := s.Create("/mig/b", nil, znode.ModePersistent); !errors.Is(err, ErrFenced) {
		t.Fatalf("create under fence err = %v, want ErrFenced", err)
	}
	if _, err := s.Set("/mig/a", []byte("v1"), -1); !errors.Is(err, ErrFenced) {
		t.Fatalf("set under fence err = %v, want ErrFenced", err)
	}
	if err := s.Delete("/mig/a", -1); !errors.Is(err, ErrFenced) {
		t.Fatalf("delete under fence err = %v, want ErrFenced", err)
	}
	// Reads still serve under a fence.
	if data, _, err := s.Get("/mig/a"); err != nil || string(data) != "/mig/a" {
		t.Fatalf("get under fence = %q, %v", data, err)
	}
	if kids, err := s.Children("/mig"); err != nil || len(kids) != 1 {
		t.Fatalf("children under fence = %v, %v", kids, err)
	}
	// Out-of-range writes are untouched.
	if _, err := s.Create("/other/y", nil, znode.ModePersistent); err != nil {
		t.Fatalf("out-of-range create err = %v", err)
	}

	if err := s.UnfenceRange(ctx, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/mig/b", nil, znode.ModePersistent); err != nil {
		t.Fatalf("create after unfence err = %v", err)
	}
	// Unfence is idempotent.
	if err := s.UnfenceRange(ctx, rng); err != nil {
		t.Fatalf("second unfence err = %v", err)
	}
}

// TestMigrationRoundTrip drives the full fence/ship/replay/flip
// protocol by hand between two live ensembles and checks the
// destination converges to the source's post-fence state, including a
// deletion that raced the pre-copy (caught by manifest reconcile).
func TestMigrationRoundTrip(t *testing.T) {
	src := startTestEnsemble(t, 3)
	dst := startTestEnsemble(t, 3)
	ss := connect(t, src, -1)
	ds := connect(t, dst, -1)
	ctx := context.Background()

	for _, p := range []string{"/mig", "/mig/a", "/mig/b", "/other", "/other/x"} {
		if _, err := ss.Create(p, []byte("v0:"+p), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	rng := placement.RangeForKey("/mig")

	// Pre-copy: fuzzy capture of everything in range.
	pre, err := ss.RangeExport(ctx, rng, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Entries) == 0 {
		t.Fatal("pre-copy exported nothing")
	}
	if _, _, err := ds.ImportRange(ctx, rng, pre.Entries, false, nil); err != nil {
		t.Fatal(err)
	}

	// Concurrent traffic between pre-copy and fence: a mutation and a
	// deletion the delta must carry.
	if _, err := ss.Set("/mig/a", []byte("v1:/mig/a"), -1); err != nil {
		t.Fatal(err)
	}
	if err := ss.Delete("/mig/b", -1); err != nil {
		t.Fatal(err)
	}

	const epoch = 9
	fz, err := ss.FenceRange(ctx, rng, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := ss.RangeExport(ctx, rng, pre.Zxid, true)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Zxid < fz {
		t.Fatalf("delta export horizon %d below fence zxid %d", delta.Zxid, fz)
	}
	_, reconciled, err := ds.ImportRange(ctx, rng, delta.Entries, true, delta.Manifest)
	if err != nil {
		t.Fatal(err)
	}
	if reconciled != 1 {
		t.Fatalf("reconciled = %d, want 1 (/mig/b)", reconciled)
	}

	dropped, err := ss.RangeMoved(ctx, rng, 1, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("moved flip dropped no nodes on the source")
	}

	// Source now bounces both reads and writes with the redirect.
	var mv *MovedError
	if _, _, err := ss.Get("/mig/a"); !errors.As(err, &mv) {
		t.Fatalf("source read after flip err = %v, want MovedError", err)
	} else if mv.Epoch != epoch || mv.Shard != 1 {
		t.Fatalf("redirect = %+v, want epoch %d shard 1", mv, epoch)
	}
	mv = nil
	if _, err := ss.Create("/mig/c", nil, znode.ModePersistent); !errors.As(err, &mv) {
		t.Fatalf("source write after flip err = %v, want MovedError", err)
	}
	// Out-of-range data survives on the source.
	if _, _, err := ss.Get("/other/x"); err != nil {
		t.Fatalf("out-of-range source read err = %v", err)
	}
	// Marker state is queryable for the recovery sweep.
	state, mdest, mepoch, err := ss.RangeState(ctx, rng)
	if err != nil || state != RangeMovedState || mdest != 1 || mepoch != epoch {
		t.Fatalf("range state = %d/%d/%d, %v", state, mdest, mepoch, err)
	}

	// Destination holds the post-fence image.
	if data, _, err := ds.Get("/mig/a"); err != nil || string(data) != "v1:/mig/a" {
		t.Fatalf("dest /mig/a = %q, %v", data, err)
	}
	if _, _, err := ds.Get("/mig/b"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("dest /mig/b err = %v, want ErrNoNode", err)
	}
	if kids, err := ds.Children("/mig"); err != nil || len(kids) != 1 || kids[0] != "a" {
		t.Fatalf("dest children = %v, %v", kids, err)
	}
}

// TestRangeMarkersSurviveSnapshot pins that fence/moved markers ride
// the snapshot stream: a replica restored from a snapshot bounces
// exactly like the one that took it.
func TestRangeMarkersSurviveSnapshot(t *testing.T) {
	sm := populateSM(t)
	want := []rangeState{
		{rng: placement.Range{Lo: 0x1000, Hi: 0x2000}, dest: 2, epoch: 5},
		{rng: placement.Range{Lo: 0x3000, Hi: 0x4000}, dest: 1, epoch: 7, moved: true},
	}
	sm.mu.Lock()
	sm.ranges = append([]rangeState(nil), want...)
	sm.mu.Unlock()

	var buf bytes.Buffer
	if err := sm.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newStateMachine()
	if err := restored.RestoreFrom(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := restored.rangeStates(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored markers = %+v, want %+v", got, want)
	}
	var mv *MovedError
	if err := restored.bounceWrite("/any"); err != nil && !errors.Is(err, ErrFenced) && !errors.As(err, &mv) {
		t.Fatalf("restored bounceWrite err = %v", err)
	}
}

// TestMovedErrorDetailRoundTrip pins that the replicated detail string
// reparses to the identical redirect on every client.
func TestMovedErrorDetailRoundTrip(t *testing.T) {
	orig := &MovedError{Epoch: 42, Shard: 3}
	got := parseMovedDetail(orig.Error())
	if got.Epoch != orig.Epoch || got.Shard != orig.Shard {
		t.Fatalf("reparsed = %+v, want %+v", got, orig)
	}
	if zero := parseMovedDetail("garbage"); zero.Epoch != 0 || zero.Shard != 0 {
		t.Fatalf("garbage detail parsed to %+v", zero)
	}
}
