// Package storage is the durable storage engine under the
// coordination service's replication layer: a per-node segmented
// write-ahead log plus fuzzy snapshots, the on-disk half of
// ZooKeeper's "replicated database" that makes an acknowledged write
// survive the crash of every server (paper §IV-I; DESIGN.md §11).
//
// # On-disk layout
//
// A data directory holds two kinds of files:
//
//	wal-00000042.seg    log segment 42 (preallocated, CRC-framed records)
//	snap-00000000000001c3.snap   snapshot covering zxid 0x1c3
//
// Each segment is preallocated to SegmentSize and filled with
// records framed as
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// where the payload is either a log frame (the group-commit unit of
// internal/coord/zab — one fsync therefore amortizes a whole
// multi-transaction frame) or a hard-state record (epoch + granted
// vote). A fresh segment's first record re-states the current hard
// state, so reclaiming old segments never loses the vote. The
// preallocated tail is zeros; a zero length marks the end of the
// written prefix.
//
// # Recovery
//
// Open replays every segment in order. A record that fails its CRC at
// the very tail of the newest segment with nothing but zeros after it
// is a torn write — the crash interrupted the append — and is
// truncated away: it was never acknowledged, because acknowledgement
// requires Sync. A bad record anywhere else (valid data follows it)
// is real corruption and Open refuses to start rather than silently
// dropping acknowledged history. Snapshots are written to a temp file,
// fsynced and renamed, so a *.snap file is complete by construction;
// one that fails its checksum anyway is corruption and refuses
// startup the same way.
package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/coord/zab"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Record payload kinds.
const (
	recHardState uint8 = 1
	recFrame     uint8 = 2
)

// recHeaderSize is the per-record framing overhead: u32 length +
// u32 CRC-32C.
const recHeaderSize = 8

// snapMagic marks a snapshot file ("DSNP").
const snapMagic uint32 = 0x44534e50

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("storage: engine closed")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures an Engine.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// SegmentSize is the preallocated size of each log segment.
	// Defaults to 8 MiB.
	SegmentSize int64
	// SyncEvery relaxes the fsync cadence (the durability ablation,
	// ZooKeeper's forceSync=no): 0 or 1 performs a real fsync on every
	// Sync call — the full guarantee; N>1 performs one real fsync per
	// N Sync calls and reports the rest durable optimistically, so a
	// power loss may drop the acknowledged writes of up to N-1 sync
	// windows.
	SyncEvery int
	// SnapChunkSize bounds the buffer the engine uses to stream
	// snapshots to and from disk — the peak snapshot-path memory is
	// O(SnapChunkSize) regardless of snapshot size. Defaults to 256 KiB.
	SnapChunkSize int
	// Metrics, when non-nil, receives the engine's gauges
	// ("storage.last_durable_zxid", "storage.wal_segments") and the
	// fsync batch distribution ("storage.fsync_batch_txns").
	Metrics *metrics.Registry
}

// segment is one WAL file. Only the newest segment is open for
// writing; sealed segments are fsynced and closed at rotation.
type segment struct {
	path    string
	seq     int
	f       *os.File // nil once sealed
	off     int64    // end of the written prefix
	maxZxid uint64   // Last() of the newest frame it holds (0 if none)
}

// Engine implements zab.Storage over a data directory.
type Engine struct {
	opt  Options
	dirf *os.File // kept open for directory fsyncs

	mu     sync.Mutex
	closed bool
	failed error // sticky first I/O failure

	epoch   uint64
	granted uint64

	// The snapshot itself is never retained in memory: recovery verifies
	// the file's checksum by streaming it, and Snapshot/SnapshotStream
	// read it back off disk on demand.
	snapZxid uint64
	hasSnap  bool
	frames   []zab.Frame // recovered log tail

	segs []*segment // ascending seq; last is the active writer

	lastAppended uint64 // zxid horizon written (not necessarily durable)
	lastDurable  uint64 // zxid horizon covered by a completed fsync
	replayTip    uint64 // recovery-time frame ordering check
	unsyncedTxns int64  // transactions appended since the last fsync
	sinceFsync   int    // Sync calls since the last real fsync

	syncing  bool // an fsync is in flight outside the lock
	syncCond *sync.Cond

	gDurable  *metrics.Gauge
	gSegments *metrics.Gauge
	dBatch    *metrics.Distribution
}

var (
	_ zab.Storage       = (*Engine)(nil)
	_ zab.StreamStorage = (*Engine)(nil)
)

// Open creates or recovers the engine in opt.Dir.
func Open(opt Options) (*Engine, error) {
	if opt.Dir == "" {
		return nil, errors.New("storage: Options.Dir is required")
	}
	if opt.SegmentSize <= 0 {
		opt.SegmentSize = 8 << 20
	}
	if opt.SnapChunkSize <= 0 {
		opt.SnapChunkSize = 256 << 10
	}
	if opt.Metrics == nil {
		opt.Metrics = metrics.NewRegistry()
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	dirf, err := os.Open(opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	e := &Engine{
		opt:       opt,
		dirf:      dirf,
		gDurable:  opt.Metrics.Gauge("storage.last_durable_zxid"),
		gSegments: opt.Metrics.Gauge("storage.wal_segments"),
		dBatch:    opt.Metrics.Distribution("storage.fsync_batch_txns"),
	}
	e.syncCond = sync.NewCond(&e.mu)
	if err := e.recover(); err != nil {
		dirf.Close()
		return nil, err
	}
	return e, nil
}

// --- recovery ---------------------------------------------------------

func (e *Engine) recover() error {
	entries, err := os.ReadDir(e.opt.Dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var segSeqs []int
	var snapZxids []uint64
	for _, de := range entries {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// An interrupted snapshot write; never made durable.
			os.Remove(filepath.Join(e.opt.Dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
			if err != nil {
				return fmt.Errorf("storage: unrecognized segment name %q", name)
			}
			segSeqs = append(segSeqs, seq)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			z, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
			if err != nil {
				return fmt.Errorf("storage: unrecognized snapshot name %q", name)
			}
			snapZxids = append(snapZxids, z)
		}
	}
	sort.Ints(segSeqs)
	sort.Slice(snapZxids, func(i, j int) bool { return snapZxids[i] < snapZxids[j] })

	if len(snapZxids) > 0 {
		z := snapZxids[len(snapZxids)-1]
		if err := e.verifySnapshot(e.snapPath(z), z); err != nil {
			// A renamed snapshot was fully written and fsynced before the
			// rename; a checksum failure is corruption, not a torn write.
			return err
		}
		e.snapZxid, e.hasSnap = z, true
		e.lastAppended, e.lastDurable = z, z
	}

	for i, seq := range segSeqs {
		last := i == len(segSeqs)-1
		seg, err := e.recoverSegment(seq, last)
		if err != nil {
			return err
		}
		e.segs = append(e.segs, seg)
	}
	if len(e.segs) == 0 {
		if err := e.addSegmentLocked(1); err != nil {
			return err
		}
	} else {
		// Reopen the newest segment for writing.
		act := e.segs[len(e.segs)-1]
		f, err := os.OpenFile(act.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		act.f = f
	}
	e.gSegments.Set(int64(len(e.segs)))
	e.gDurable.Set(int64(e.lastDurable))
	return nil
}

// recoverSegment replays one segment file. Frames accumulate into
// e.frames; hard-state records overwrite e.epoch / e.granted (the
// newest wins). A torn tail in the final segment is truncated; any
// other invalid record refuses startup.
func (e *Engine) recoverSegment(seq int, lastSeg bool) (*segment, error) {
	path := filepath.Join(e.opt.Dir, fmt.Sprintf("wal-%08d.seg", seq))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	seg := &segment{path: path, seq: seq}
	off := int64(0)
	for {
		if off+recHeaderSize > int64(len(data)) {
			break // a full segment with no end marker
		}
		length := int64(binary.BigEndian.Uint32(data[off:]))
		if length == 0 {
			// End of the written prefix — the preallocated tail must be
			// all zeros, else something was written past a zeroed header.
			if !allZero(data[off:]) {
				return nil, fmt.Errorf("storage: %s: data past the log end at offset %d", path, off)
			}
			break
		}
		crc := binary.BigEndian.Uint32(data[off+4:])
		recEnd := off + recHeaderSize + length
		valid := recEnd <= int64(len(data))
		var payload []byte
		if valid {
			payload = data[off+recHeaderSize : recEnd]
			valid = crc32.Checksum(payload, crcTable) == crc
		}
		if !valid {
			// Distinguish a torn append (nothing valid follows — the rest
			// of the preallocated file is zeros) from corruption in the
			// middle of acknowledged history.
			tailFrom := recEnd
			if tailFrom > int64(len(data)) {
				tailFrom = int64(len(data))
			}
			if lastSeg && allZero(data[tailFrom:]) {
				if err := truncateSegment(path, off, int64(len(data))); err != nil {
					return nil, err
				}
				break
			}
			return nil, fmt.Errorf("storage: %s: corrupt record at offset %d (CRC mismatch); refusing startup", path, off)
		}
		if err := e.replayRecord(path, off, payload, seg); err != nil {
			return nil, err
		}
		off = recEnd
	}
	seg.off = off
	return seg, nil
}

func (e *Engine) replayRecord(path string, off int64, payload []byte, seg *segment) error {
	r := wire.NewReader(payload)
	switch kind := r.Uint8(); kind {
	case recHardState:
		e.epoch = r.Uint64()
		e.granted = r.Uint64()
	case recFrame:
		f := zab.Frame{Zxid: r.Uint64(), Noop: r.Bool()}
		n := r.Uint32()
		if r.Err() == nil {
			if int(n) > r.Remaining()/4 {
				r.Fail(fmt.Errorf("frame claims %d txns in %d bytes", n, r.Remaining()))
			} else {
				f.Txns = make([][]byte, 0, n)
				for i := uint32(0); i < n && r.Err() == nil; i++ {
					f.Txns = append(f.Txns, r.BytesCopy32())
				}
			}
		}
		if r.Err() == nil {
			if f.Zxid <= e.replayTip {
				return fmt.Errorf("storage: %s: frame zxid %x out of order at offset %d; refusing startup", path, f.Zxid, off)
			}
			e.replayTip = f.Last()
			seg.maxZxid = f.Last()
			if f.Last() > e.lastAppended {
				e.lastAppended = f.Last()
				e.lastDurable = f.Last()
			}
			e.frames = append(e.frames, f)
		}
	default:
		r.Fail(fmt.Errorf("unknown record kind %d", kind))
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("storage: %s: corrupt record at offset %d: %w; refusing startup", path, off, err)
	}
	return nil
}

// truncateSegment zeroes a segment from off onward (cut the torn
// record) while keeping its preallocated size.
func truncateSegment(path string, off, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// --- zab.Storage ------------------------------------------------------

// HardState implements zab.Storage.
func (e *Engine) HardState() (epoch, grantedEpoch uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epoch, e.granted
}

// SaveHardState implements zab.Storage: the record is appended and
// fsynced before returning, regardless of SyncEvery — a forgotten vote
// can elect two leaders, so the ablation never relaxes it. The fsync
// also hardens any frames appended ahead of it in the same segment.
func (e *Engine) SaveHardState(epoch, grantedEpoch uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usableLocked(); err != nil {
		return err
	}
	w := wire.NewWriter(24)
	w.Uint8(recHardState)
	w.Uint64(epoch)
	w.Uint64(grantedEpoch)
	if err := e.appendRecordLocked(w.Bytes()); err != nil {
		return err
	}
	e.epoch, e.granted = epoch, grantedEpoch
	mark := e.lastAppended
	txns := e.unsyncedTxns
	e.unsyncedTxns = 0
	if err := e.activeLocked().f.Sync(); err != nil {
		e.failed = fmt.Errorf("storage: fsync: %w", err)
		return e.failed
	}
	if mark > e.lastDurable {
		e.lastDurable = mark
		e.gDurable.Set(int64(mark))
	}
	if txns > 0 {
		e.dBatch.Observe(txns)
	}
	return nil
}

// Snapshot implements zab.Storage by reading the snapshot file back on
// demand — the engine never pins a serialized copy of the state in
// memory for its whole lifetime. Open proved the file intact, so a
// failure here is a live disk fault and poisons the engine rather than
// presenting an empty store as healthy.
func (e *Engine) Snapshot() (data []byte, zxid uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.hasSnap {
		return nil, 0, false
	}
	data, err := readSnapshot(e.snapPath(e.snapZxid), e.snapZxid)
	if err != nil {
		if e.failed == nil {
			e.failed = err
		}
		return nil, 0, false
	}
	return data, e.snapZxid, true
}

// SnapshotStream implements zab.StreamStorage: a checksum-validating
// reader over the newest durable snapshot body. The caller owns the
// returned reader and must Close it; a corrupt body surfaces as a read
// error in place of EOF.
func (e *Engine) SnapshotStream() (io.ReadCloser, uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.hasSnap {
		return nil, 0, false
	}
	sr, err := openSnapshotStream(e.snapPath(e.snapZxid), e.snapZxid)
	if err != nil {
		if e.failed == nil {
			e.failed = err
		}
		return nil, 0, false
	}
	return sr, e.snapZxid, true
}

// Frames implements zab.Storage. It is single-shot: the recovered
// tail is handed over and released, so a node that crashed with a
// large uncommitted tail does not keep a duplicate of every
// transaction pinned in the engine for its whole lifetime.
func (e *Engine) Frames() []zab.Frame {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]zab.Frame, 0, len(e.frames))
	for _, f := range e.frames {
		if !e.hasSnap || f.Last() > e.snapZxid {
			out = append(out, f)
		}
	}
	e.frames = nil
	return out
}

// Append implements zab.Storage: a page-cache write of each frame,
// rotating to a fresh preallocated segment when the active one fills.
func (e *Engine) Append(frames []zab.Frame) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usableLocked(); err != nil {
		return err
	}
	for _, f := range frames {
		size := 18
		for _, txn := range f.Txns {
			size += 4 + len(txn)
		}
		w := wire.NewWriter(size)
		w.Uint8(recFrame)
		w.Uint64(f.Zxid)
		w.Bool(f.Noop)
		w.Uint32(uint32(len(f.Txns)))
		for _, txn := range f.Txns {
			w.Bytes32(txn)
		}
		if err := e.appendRecordLocked(w.Bytes()); err != nil {
			return err
		}
		seg := e.activeLocked()
		if f.Last() > seg.maxZxid {
			seg.maxZxid = f.Last()
		}
		if f.Last() > e.lastAppended {
			e.lastAppended = f.Last()
		}
		if n := int64(len(f.Txns)); n > 0 {
			e.unsyncedTxns += n
		} else {
			e.unsyncedTxns++ // a barrier still rides the fsync
		}
	}
	return nil
}

// appendRecordLocked frames payload with length + CRC and writes it at
// the active segment's tail, rotating first if it would not fit.
func (e *Engine) appendRecordLocked(payload []byte) error {
	need := int64(recHeaderSize + len(payload))
	seg := e.activeLocked()
	if seg.off+need > e.opt.SegmentSize && seg.off > 0 {
		if err := e.rotateLocked(); err != nil {
			return err
		}
		seg = e.activeLocked()
	}
	rec := make([]byte, need)
	binary.BigEndian.PutUint32(rec, uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:], crc32.Checksum(payload, crcTable))
	copy(rec[recHeaderSize:], payload)
	if seg.off+need > e.opt.SegmentSize {
		// One oversized record; grow this segment to fit it.
		if err := seg.f.Truncate(seg.off + need); err != nil {
			e.failed = fmt.Errorf("storage: %w", err)
			return e.failed
		}
	}
	if _, err := seg.f.WriteAt(rec, seg.off); err != nil {
		e.failed = fmt.Errorf("storage: %w", err)
		return e.failed
	}
	seg.off += need
	return nil
}

// rotateLocked seals the active segment (fsync + close, so a later
// Sync need only touch the new file) and opens the next one. It first
// waits out any rider fsync in flight on the file it is about to
// close — a Sync that captured the FD outside the lock would
// otherwise fsync a closed file and sticky-fail a healthy engine.
func (e *Engine) rotateLocked() error {
	e.waitSyncLocked()
	seg := e.activeLocked()
	if err := seg.f.Sync(); err != nil {
		e.failed = fmt.Errorf("storage: fsync: %w", err)
		return e.failed
	}
	seg.f.Close()
	seg.f = nil
	return e.addSegmentLocked(seg.seq + 1)
}

// waitSyncLocked blocks until no fsync is in flight outside the lock.
func (e *Engine) waitSyncLocked() {
	for e.syncing {
		e.syncCond.Wait()
	}
}

// addSegmentLocked creates and preallocates a fresh segment whose
// first record re-states the current hard state, then fsyncs the
// directory so the file itself survives a crash.
func (e *Engine) addSegmentLocked(seq int) error {
	path := filepath.Join(e.opt.Dir, fmt.Sprintf("wal-%08d.seg", seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		e.failed = fmt.Errorf("storage: %w", err)
		return e.failed
	}
	if err := f.Truncate(e.opt.SegmentSize); err != nil {
		f.Close()
		e.failed = fmt.Errorf("storage: %w", err)
		return e.failed
	}
	e.segs = append(e.segs, &segment{path: path, seq: seq, f: f})
	e.gSegments.Set(int64(len(e.segs)))
	if err := e.dirf.Sync(); err != nil {
		e.failed = fmt.Errorf("storage: fsync dir: %w", err)
		return e.failed
	}
	if e.epoch != 0 || e.granted != 0 {
		w := wire.NewWriter(24)
		w.Uint8(recHardState)
		w.Uint64(e.epoch)
		w.Uint64(e.granted)
		return e.appendRecordLocked(w.Bytes())
	}
	return nil
}

func (e *Engine) activeLocked() *segment { return e.segs[len(e.segs)-1] }

func (e *Engine) usableLocked() error {
	if e.closed {
		return ErrClosed
	}
	return e.failed
}

// Sync implements zab.Storage with rider-style group commit: the
// first caller becomes the syncer and fsyncs outside the lock;
// callers arriving meanwhile wait, and every caller whose appends the
// completed fsync covered returns without issuing its own.
func (e *Engine) Sync() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if err := e.usableLocked(); err != nil {
			return err
		}
		mark := e.lastAppended
		if mark <= e.lastDurable {
			return nil
		}
		if e.opt.SyncEvery > 1 {
			e.sinceFsync++
			if e.sinceFsync < e.opt.SyncEvery {
				// Relaxed mode (the ablation): report durable without the
				// fsync; a power loss here loses this window.
				e.lastDurable = mark
				e.gDurable.Set(int64(mark))
				return nil
			}
			e.sinceFsync = 0
		}
		if e.syncing {
			e.syncCond.Wait()
			continue // the finished fsync may have covered our mark
		}
		e.syncing = true
		f := e.activeLocked().f
		txns := e.unsyncedTxns
		e.unsyncedTxns = 0
		e.mu.Unlock()
		err := f.Sync()
		e.mu.Lock()
		e.syncing = false
		if err != nil {
			e.failed = fmt.Errorf("storage: fsync: %w", err)
		} else {
			if mark > e.lastDurable {
				e.lastDurable = mark
				e.gDurable.Set(int64(mark))
			}
			if txns > 0 {
				e.dBatch.Observe(txns)
			}
		}
		e.syncCond.Broadcast()
		if err != nil {
			return e.failed
		}
		return nil
	}
}

// LastDurableZxid implements zab.Storage.
func (e *Engine) LastDurableZxid() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastDurable
}

// SaveSnapshot implements zab.Storage: the fuzzy snapshot path. The
// blob form simply streams from memory — one codepath, byte-identical
// files.
func (e *Engine) SaveSnapshot(data []byte, zxid uint64) error {
	return e.SaveSnapshotFrom(bytes.NewReader(data), zxid)
}

// SaveSnapshotFrom implements zab.StreamStorage: the snapshot body is
// copied from data to a temp file in SnapChunkSize chunks (checksummed
// incrementally, header patched in place), fsynced and renamed beside
// the live log, then sealed segments wholly covered by it are
// reclaimed and older snapshots pruned.
func (e *Engine) SaveSnapshotFrom(data io.Reader, zxid uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usableLocked(); err != nil {
		return err
	}
	if e.hasSnap && zxid <= e.snapZxid {
		return nil
	}
	if err := e.writeSnapshotLocked(data, zxid); err != nil {
		return err
	}
	e.reclaimSegmentsLocked()
	return nil
}

// InstallSnapshot implements zab.Storage: a leader-shipped snapshot
// replaces the entire log, divergent tail included.
func (e *Engine) InstallSnapshot(data []byte, zxid uint64) error {
	return e.InstallSnapshotFrom(bytes.NewReader(data), zxid)
}

// InstallSnapshotFrom implements zab.StreamStorage; see
// InstallSnapshot and SaveSnapshotFrom.
func (e *Engine) InstallSnapshotFrom(data io.Reader, zxid uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.usableLocked(); err != nil {
		return err
	}
	if err := e.writeSnapshotLocked(data, zxid); err != nil {
		return err
	}
	// Drop every segment and start fresh past the snapshot. Wait out
	// any rider fsync first — it holds an FD we are about to close.
	e.waitSyncLocked()
	act := e.activeLocked()
	nextSeq := act.seq + 1
	for _, seg := range e.segs {
		if seg.f != nil {
			seg.f.Close()
			seg.f = nil
		}
		os.Remove(seg.path)
	}
	e.segs = nil
	e.frames = nil
	// The horizons move DOWN to exactly the snapshot: everything past
	// it was just discarded, so a stale-high lastDurable would make
	// later Syncs no-op and let unfsynced pulled frames be acked.
	e.lastAppended = zxid
	e.lastDurable = zxid
	e.gDurable.Set(int64(zxid))
	e.unsyncedTxns = 0
	if err := e.addSegmentLocked(nextSeq); err != nil {
		return err
	}
	// Harden the fresh segment's restated hard state: the old durable
	// copies were deleted with the old segments.
	if err := e.activeLocked().f.Sync(); err != nil {
		e.failed = fmt.Errorf("storage: fsync: %w", err)
		return e.failed
	}
	return nil
}

// snapHeaderSize is the fixed snapshot prologue: magic u32, zxid u64,
// body CRC-32C u32, body length u32. The layout is shared by the blob
// and streaming paths — the files they produce are identical.
const snapHeaderSize = 20

// writeSnapshotLocked streams the snapshot body from data into a temp
// file in O(SnapChunkSize) memory: the header goes down with zeroed
// CRC/length slots, the body is copied through a chunk buffer while
// the checksum accumulates, and the real CRC/length are patched in
// place before the fsync — the rename still publishes a
// complete-by-construction file.
func (e *Engine) writeSnapshotLocked(data io.Reader, zxid uint64) error {
	path := e.snapPath(zxid)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	var hdr [snapHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], snapMagic)
	binary.BigEndian.PutUint64(hdr[4:], zxid)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	var (
		crc   uint32
		total int64
	)
	buf := make([]byte, e.opt.SnapChunkSize)
	for {
		n, rerr := data.Read(buf)
		if n > 0 {
			crc = crc32.Update(crc, crcTable, buf[:n])
			total += int64(n)
			if total > int64(^uint32(0)) {
				f.Close()
				return errors.New("storage: snapshot exceeds the 4 GiB format bound")
			}
			if _, werr := f.Write(buf[:n]); werr != nil {
				f.Close()
				return fmt.Errorf("storage: %w", werr)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return fmt.Errorf("storage: snapshot source: %w", rerr)
		}
	}
	binary.BigEndian.PutUint32(hdr[12:], crc)
	binary.BigEndian.PutUint32(hdr[16:], uint32(total))
	if _, err := f.WriteAt(hdr[12:snapHeaderSize], 12); err != nil {
		f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: fsync: %w", err)
	}
	f.Close()
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := e.dirf.Sync(); err != nil {
		e.failed = fmt.Errorf("storage: fsync dir: %w", err)
		return e.failed
	}
	prev, hadPrev := e.snapZxid, e.hasSnap
	e.snapZxid, e.hasSnap = zxid, true
	// Keep the previous snapshot as a fallback generation; prune older.
	if hadPrev {
		if matches, err := filepath.Glob(filepath.Join(e.opt.Dir, "snap-*.snap")); err == nil {
			for _, m := range matches {
				base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "snap-"), ".snap")
				if z, err := strconv.ParseUint(base, 16, 64); err == nil && z < prev {
					os.Remove(m)
				}
			}
		}
	}
	return nil
}

// reclaimSegmentsLocked deletes sealed segments wholly covered by the
// newest snapshot. Frames are appended in zxid order, so covered
// segments always form a prefix. Before deleting anything, the active
// segment is fsynced: its head record re-states the hard state, and
// until that copy is durable the sealed segments being deleted may
// hold the only fsynced record of the vote.
func (e *Engine) reclaimSegmentsLocked() {
	victims := 0
	for i, seg := range e.segs {
		if i < len(e.segs)-1 && seg.maxZxid <= e.snapZxid {
			victims++
		}
	}
	if victims == 0 {
		return
	}
	if err := e.activeLocked().f.Sync(); err != nil {
		e.failed = fmt.Errorf("storage: fsync: %w", err)
		return
	}
	keep := e.segs[:0]
	for i, seg := range e.segs {
		sealed := i < len(e.segs)-1
		if sealed && seg.maxZxid <= e.snapZxid {
			os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	e.segs = keep
	e.gSegments.Set(int64(len(e.segs)))
}

func (e *Engine) snapPath(zxid uint64) string {
	return filepath.Join(e.opt.Dir, fmt.Sprintf("snap-%016x.snap", zxid))
}

// snapReader streams a snapshot body while folding the bytes into a
// running CRC-32C; once the body is exhausted it verifies the stored
// checksum and reports a mismatch as a read error in place of io.EOF,
// so a consumer that reached EOF has by construction read an intact
// snapshot.
type snapReader struct {
	f         *os.File
	path      string
	remaining int64
	crc       uint32
	want      uint32
	verified  bool
}

func (sr *snapReader) Read(p []byte) (int, error) {
	if sr.remaining == 0 {
		if !sr.verified {
			if sr.crc != sr.want {
				return 0, fmt.Errorf("storage: %s: snapshot checksum mismatch", sr.path)
			}
			sr.verified = true
		}
		return 0, io.EOF
	}
	if int64(len(p)) > sr.remaining {
		p = p[:sr.remaining]
	}
	n, err := sr.f.Read(p)
	sr.crc = crc32.Update(sr.crc, crcTable, p[:n])
	sr.remaining -= int64(n)
	if err == io.EOF {
		if sr.remaining > 0 {
			err = fmt.Errorf("storage: %s: truncated snapshot", sr.path)
		} else {
			err = nil
		}
	}
	return n, err
}

func (sr *snapReader) Close() error { return sr.f.Close() }

// openSnapshotStream opens path, checks the header against wantZxid
// and hands back a validating reader over the body.
func openSnapshotStream(path string, wantZxid uint64) (*snapReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var hdr [snapHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s: truncated snapshot: %w; refusing startup", path, err)
	}
	magic := binary.BigEndian.Uint32(hdr[0:])
	zxid := binary.BigEndian.Uint64(hdr[4:])
	crc := binary.BigEndian.Uint32(hdr[12:])
	length := binary.BigEndian.Uint32(hdr[16:])
	if magic != snapMagic || zxid != wantZxid {
		f.Close()
		return nil, fmt.Errorf("storage: %s: bad snapshot header; refusing startup", path)
	}
	return &snapReader{f: f, path: path, remaining: int64(length), want: crc}, nil
}

// verifySnapshot streams the whole file through the validating reader
// — O(SnapChunkSize) memory however large the snapshot — refusing
// startup on any corruption, exactly as the old load-and-check did.
func (e *Engine) verifySnapshot(path string, wantZxid uint64) error {
	sr, err := openSnapshotStream(path, wantZxid)
	if err != nil {
		return err
	}
	defer sr.Close()
	buf := make([]byte, e.opt.SnapChunkSize)
	for {
		_, err := sr.Read(buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w; refusing startup", err)
		}
	}
}

func readSnapshot(path string, wantZxid uint64) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	r := wire.NewReader(buf)
	magic := r.Uint32()
	zxid := r.Uint64()
	crc := r.Uint32()
	data := r.BytesCopy32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("storage: %s: truncated snapshot: %w; refusing startup", path, err)
	}
	if magic != snapMagic || zxid != wantZxid {
		return nil, fmt.Errorf("storage: %s: bad snapshot header; refusing startup", path)
	}
	if crc32.Checksum(data, crcTable) != crc {
		return nil, fmt.Errorf("storage: %s: snapshot checksum mismatch; refusing startup", path)
	}
	return data, nil
}

// --- introspection ----------------------------------------------------

// Segments reports the number of live WAL segments.
func (e *Engine) Segments() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.segs)
}

// SnapshotZxid reports the coverage of the newest durable snapshot
// (0 when none exists).
func (e *Engine) SnapshotZxid() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapZxid
}

// FsyncBatchTxns reports the mean transactions hardened per fsync —
// the group-commit amortization factor — and the fsync count.
func (e *Engine) FsyncBatchTxns() (mean float64, count int64) {
	return e.dBatch.Mean(), e.dBatch.Count()
}

// Close fsyncs and closes the engine. Further operations return
// ErrClosed.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	for e.syncing {
		e.syncCond.Wait()
	}
	e.closed = true
	var first error
	for _, seg := range e.segs {
		if seg.f == nil {
			continue
		}
		if err := seg.f.Sync(); err != nil && first == nil {
			first = err
		}
		seg.f.Close()
		seg.f = nil
	}
	if err := e.dirf.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
