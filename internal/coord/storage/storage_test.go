package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/coord/zab"
)

func openT(t *testing.T, dir string, opts ...func(*Options)) *Engine {
	t.Helper()
	opt := Options{Dir: dir}
	for _, f := range opts {
		f(&opt)
	}
	e, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func frame(zxid uint64, txns ...string) zab.Frame {
	f := zab.Frame{Zxid: zxid}
	for _, txn := range txns {
		f.Txns = append(f.Txns, []byte(txn))
	}
	return f
}

func appendSynced(t *testing.T, e *Engine, frames ...zab.Frame) {
	t.Helper()
	if err := e.Append(frames); err != nil {
		t.Fatal(err)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
}

func txnsOf(fs []zab.Frame) []string {
	var out []string
	for _, f := range fs {
		for _, txn := range f.Txns {
			out = append(out, string(txn))
		}
	}
	return out
}

// walFile returns the path of the only (or newest) WAL segment.
func walFile(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no wal segment in %s (err=%v)", dir, err)
	}
	return matches[len(matches)-1]
}

// recordOffsets scans a segment and returns each record's offset.
func recordOffsets(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	off := int64(0)
	for off+recHeaderSize <= int64(len(data)) {
		l := int64(binary.BigEndian.Uint32(data[off:]))
		if l == 0 {
			break
		}
		offs = append(offs, off)
		off += recHeaderSize + l
	}
	return offs
}

// TestRecovery is the table-driven sweep over the recovery edge
// cases: each case prepares a data directory, optionally corrupts it,
// and states what Open must do — recover a precise state, truncate a
// torn tail, or refuse to start.
func TestRecovery(t *testing.T) {
	cases := []struct {
		name string
		// prepare writes engine state and returns nothing; corrupt
		// mutates the files afterwards.
		prepare   func(t *testing.T, dir string)
		corrupt   func(t *testing.T, dir string)
		wantErr   string   // non-empty: Open must fail and mention this
		wantTxns  []string // recovered frame payloads, in order
		wantSnap  uint64   // recovered snapshot zxid (0 = none)
		wantEpoch uint64
	}{
		{
			name:    "empty data dir",
			prepare: func(t *testing.T, dir string) {},
		},
		{
			name: "plain log",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "a", "b"), frame(0x100000003, "c"))
			},
			wantTxns: []string{"a", "b", "c"},
		},
		{
			name: "hard state survives",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				if err := e.SaveHardState(7, 9); err != nil {
					t.Fatal(err)
				}
			},
			wantEpoch: 7,
		},
		{
			name: "torn tail record is truncated",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "keep-1"), frame(0x100000002, "keep-2"), frame(0x100000003, "torn"))
			},
			corrupt: func(t *testing.T, dir string) {
				// Zero the final record's trailing bytes: a write the crash
				// interrupted, with nothing but preallocated zeros after it.
				path := walFile(t, dir)
				offs := recordOffsets(t, path)
				last := offs[len(offs)-1]
				f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt(make([]byte, 4), last+recHeaderSize+2); err != nil {
					t.Fatal(err)
				}
			},
			wantTxns: []string{"keep-1", "keep-2"},
		},
		{
			name: "bit-flipped CRC mid-log refuses startup",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "early"), frame(0x100000002, "later-1"), frame(0x100000003, "later-2"))
			},
			corrupt: func(t *testing.T, dir string) {
				// Flip one payload bit in the FIRST record: valid records
				// follow it, so this is corruption of acknowledged history,
				// not a torn append.
				path := walFile(t, dir)
				offs := recordOffsets(t, path)
				f, err := os.OpenFile(path, os.O_RDWR, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				var b [1]byte
				pos := offs[0] + recHeaderSize + 10
				if _, err := f.ReadAt(b[:], pos); err != nil {
					t.Fatal(err)
				}
				b[0] ^= 0x40
				if _, err := f.WriteAt(b[:], pos); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "corrupt record",
		},
		{
			name: "garbage past the log end refuses startup",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "x"))
			},
			corrupt: func(t *testing.T, dir string) {
				path := walFile(t, dir)
				offs := recordOffsets(t, path)
				data, _ := os.ReadFile(path)
				end := offs[len(offs)-1]
				// Skip to after the last record, past the zero header, and
				// plant non-zero garbage in the preallocated tail.
				l := int64(binary.BigEndian.Uint32(data[end:]))
				f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte{0xde, 0xad}, end+recHeaderSize+l+64); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "past the log end",
		},
		{
			name: "snapshot newer than log",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "old-1"), frame(0x100000002, "old-2"))
				if err := e.SaveSnapshot([]byte("state@5"), 0x100000005); err != nil {
					t.Fatal(err)
				}
			},
			wantSnap: 0x100000005,
			// The log frames are all covered by the snapshot: none replay.
		},
		{
			name: "snapshot plus log tail",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "covered"))
				if err := e.SaveSnapshot([]byte("state@1"), 0x100000001); err != nil {
					t.Fatal(err)
				}
				appendSynced(t, e, frame(0x100000002, "tail-1"), frame(0x100000003, "tail-2"))
			},
			wantSnap: 0x100000001,
			wantTxns: []string{"tail-1", "tail-2"},
		},
		{
			name: "corrupt snapshot refuses startup",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				if err := e.SaveSnapshot([]byte("precious state"), 0x100000004); err != nil {
					t.Fatal(err)
				}
			},
			corrupt: func(t *testing.T, dir string) {
				matches, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
				f, err := os.OpenFile(matches[0], os.O_RDWR, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.WriteAt([]byte{0xff}, 20); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "snapshot",
		},
		{
			name: "install snapshot resets divergent log",
			prepare: func(t *testing.T, dir string) {
				e := openT(t, dir)
				appendSynced(t, e, frame(0x100000001, "divergent-1"), frame(0x100000002, "divergent-2"))
				if err := e.InstallSnapshot([]byte("leader state"), 0x200000003); err != nil {
					t.Fatal(err)
				}
				appendSynced(t, e, frame(0x200000004, "fresh"))
			},
			wantSnap: 0x200000003,
			wantTxns: []string{"fresh"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.prepare(t, dir)
			// Close the preparing engine before reopening.
			if tc.corrupt != nil {
				tc.corrupt(t, dir)
			}
			e, err := Open(Options{Dir: dir})
			if tc.wantErr != "" {
				if err == nil {
					e.Close()
					t.Fatalf("Open succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Open error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			got := txnsOf(e.Frames())
			if len(got) != len(tc.wantTxns) {
				t.Fatalf("recovered txns %v, want %v", got, tc.wantTxns)
			}
			for i := range got {
				if got[i] != tc.wantTxns[i] {
					t.Fatalf("recovered txns %v, want %v", got, tc.wantTxns)
				}
			}
			_, snapZxid, hasSnap := e.Snapshot()
			if (tc.wantSnap != 0) != hasSnap || snapZxid != tc.wantSnap {
				t.Fatalf("snapshot = (%x, %v), want %x", snapZxid, hasSnap, tc.wantSnap)
			}
			if epoch, _ := e.HardState(); epoch != tc.wantEpoch {
				t.Fatalf("epoch = %d, want %d", epoch, tc.wantEpoch)
			}
			// Whatever was recovered must remain appendable.
			next := e.LastDurableZxid() + 1
			if next == 1 {
				next = 0x100000001
			}
			appendSynced(t, e, frame(next, "post-recovery"))
		})
	}
}

// TestSnapshotContentRoundtrip pins that recovered snapshot bytes are
// exactly what was saved.
func TestSnapshotContentRoundtrip(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir)
	want := []byte("the full serialized tree")
	if err := e.SaveSnapshot(want, 0x100000007); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openT(t, dir)
	data, zxid, ok := e2.Snapshot()
	if !ok || zxid != 0x100000007 || string(data) != string(want) {
		t.Fatalf("recovered snapshot (%q, %x, %v)", data, zxid, ok)
	}
}

// TestSegmentRotationAndReclaim drives enough records through tiny
// segments to rotate many times, then snapshots and expects the
// covered prefix to be deleted — and recovery to still work across
// the surviving segment boundary.
func TestSegmentRotationAndReclaim(t *testing.T) {
	dir := t.TempDir()
	small := func(o *Options) { o.SegmentSize = 512 }
	e := openT(t, dir, small)
	const n = 64
	for i := 0; i < n; i++ {
		appendSynced(t, e, frame(0x100000001+uint64(i), fmt.Sprintf("payload-%02d-%s", i, strings.Repeat("x", 32))))
	}
	if e.Segments() < 4 {
		t.Fatalf("expected many segments, got %d", e.Segments())
	}
	cover := uint64(0x100000001 + n - 3)
	if err := e.SaveSnapshot([]byte("snap"), cover); err != nil {
		t.Fatal(err)
	}
	if e.Segments() > 3 {
		t.Fatalf("snapshot at %x reclaimed nothing: %d segments live", cover, e.Segments())
	}
	e.Close()

	e2 := openT(t, dir, small)
	got := txnsOf(e2.Frames())
	if len(got) != 2 {
		t.Fatalf("recovered %d tail txns, want 2 (%v)", len(got), got)
	}
	if !strings.HasPrefix(got[0], fmt.Sprintf("payload-%02d", n-2)) {
		t.Fatalf("tail starts at %q", got[0])
	}
}

// TestHardStateSurvivesReclaim: the vote must survive even when every
// segment it was originally written to has been reclaimed (a fresh
// segment re-states it at creation).
func TestHardStateSurvivesReclaim(t *testing.T) {
	dir := t.TempDir()
	small := func(o *Options) { o.SegmentSize = 256 }
	e := openT(t, dir, small)
	if err := e.SaveHardState(3, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		appendSynced(t, e, frame(0x300000001+uint64(i), strings.Repeat("y", 40)))
	}
	if err := e.SaveSnapshot([]byte("s"), 0x300000001+31); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e2 := openT(t, dir, small)
	epoch, granted := e2.HardState()
	if epoch != 3 || granted != 4 {
		t.Fatalf("hard state = (%d, %d), want (3, 4)", epoch, granted)
	}
}

// TestGroupSyncRiders: concurrent Sync callers must all return with
// their appends durable, sharing fsyncs rather than serializing one
// each (we can only assert correctness plus the batch metric here).
func TestGroupSyncRiders(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir)
	var mu sync.Mutex
	next := uint64(0x100000000)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				mu.Lock()
				next++
				z := next
				if err := e.Append([]zab.Frame{frame(z, "t")}); err != nil {
					mu.Unlock()
					t.Error(err)
					return
				}
				mu.Unlock()
				if err := e.Sync(); err != nil {
					t.Error(err)
					return
				}
				if d := e.LastDurableZxid(); d < z {
					t.Errorf("after Sync, durable %x < appended %x", d, z)
					return
				}
			}
		}()
	}
	wg.Wait()
	if mean, count := e.FsyncBatchTxns(); count == 0 || mean < 1 {
		t.Fatalf("fsync batch metric: mean=%.1f count=%d", mean, count)
	}
}

// TestSyncEveryRelaxed: with SyncEvery=N the durable horizon still
// advances on every Sync (the ablation trades real durability for
// throughput, not liveness).
func TestSyncEveryRelaxed(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir, func(o *Options) { o.SyncEvery = 8 })
	for i := 0; i < 20; i++ {
		z := 0x100000001 + uint64(i)
		appendSynced(t, e, frame(z, "r"))
		if d := e.LastDurableZxid(); d != z {
			t.Fatalf("relaxed durable horizon %x, want %x", d, z)
		}
	}
}

// TestInstallSnapshotResetsDurableHorizon: installing a snapshot
// BELOW the current append horizon (a divergent tail being discarded)
// must pull lastAppended/lastDurable down to exactly the snapshot —
// a stale-high horizon would make the next Sync a no-op and let
// never-fsynced pulled frames be acknowledged.
func TestInstallSnapshotResetsDurableHorizon(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir)
	appendSynced(t, e, frame(0x500000064, "divergent"))
	if err := e.InstallSnapshot([]byte("s"), 0x500000032); err != nil {
		t.Fatal(err)
	}
	if d := e.LastDurableZxid(); d != 0x500000032 {
		t.Fatalf("durable horizon after install = %x, want %x", d, uint64(0x500000032))
	}
	// A pulled tail past the snapshot must need (and get) a real sync.
	if err := e.Append([]zab.Frame{frame(0x500000033, "pulled")}); err != nil {
		t.Fatal(err)
	}
	if d := e.LastDurableZxid(); d != 0x500000032 {
		t.Fatalf("append alone advanced the durable horizon to %x", d)
	}
	if err := e.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := e.LastDurableZxid(); d != 0x500000033 {
		t.Fatalf("durable horizon after sync = %x, want %x", d, uint64(0x500000033))
	}
}

// TestClosedEngineRefusesOps: a closed engine must error, not panic —
// the server closes the engine while late transport handlers may
// still be unwinding.
func TestClosedEngineRefusesOps(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir)
	e.Close()
	if err := e.Append([]zab.Frame{frame(0x100000001, "x")}); err == nil {
		t.Fatal("Append on closed engine succeeded")
	}
	if err := e.Sync(); err == nil {
		t.Fatal("Sync on closed engine succeeded")
	}
	if err := e.SaveHardState(1, 1); err == nil {
		t.Fatal("SaveHardState on closed engine succeeded")
	}
}
