package storage

import (
	"bytes"
	"io"
	"os"
	"runtime"
	"testing"
)

func flipByteInFile(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// patternReader generates size deterministic pseudo-random bytes
// without ever holding more than one Read's worth in memory — the
// producer half of the O(chunk) memory proofs.
type patternReader struct {
	size int64
	off  int64
	seed uint64
}

func (pr *patternReader) Read(p []byte) (int, error) {
	if pr.off >= pr.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := pr.size - pr.off; int64(n) > rem {
		n = int(rem)
	}
	x := pr.seed + uint64(pr.off)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p[i] = byte(x >> 33)
	}
	pr.off += int64(n)
	return n, nil
}

// readAllDiscardChunked drains r through a fixed buffer, returning the
// byte count — the consumer half of the memory proofs.
func readAllDiscardChunked(t *testing.T, r io.Reader, chunk int) int64 {
	t.Helper()
	buf := make([]byte, chunk)
	var total int64
	for {
		n, err := r.Read(buf)
		total += int64(n)
		if err == io.EOF {
			return total
		}
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
	}
}

func TestStreamingSnapshotRoundtrip(t *testing.T) {
	e := openT(t, t.TempDir())
	body := []byte("streamed snapshot body with some length to it")
	if err := e.SaveSnapshotFrom(bytes.NewReader(body), 7); err != nil {
		t.Fatal(err)
	}
	rc, z, ok := e.SnapshotStream()
	if !ok || z != 7 {
		t.Fatalf("SnapshotStream = (_, %d, %v), want (_, 7, true)", z, ok)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("streamed body mismatch: got %d bytes", len(got))
	}
	// The blob accessor reads the very same file back.
	blob, z, ok := e.Snapshot()
	if !ok || z != 7 || !bytes.Equal(blob, body) {
		t.Fatalf("Snapshot = (%d bytes, %d, %v)", len(blob), z, ok)
	}
}

// TestBlobAndStreamSnapshotFilesIdentical pins the compatibility
// contract: SaveSnapshot and SaveSnapshotFrom must produce
// byte-identical files, so engines and replicas can mix the two paths
// freely.
func TestBlobAndStreamSnapshotFilesIdentical(t *testing.T) {
	body := bytes.Repeat([]byte("abcdefgh"), 10_000)
	dirBlob, dirStream := t.TempDir(), t.TempDir()
	eb := openT(t, dirBlob)
	es := openT(t, dirStream)
	if err := eb.SaveSnapshot(body, 42); err != nil {
		t.Fatal(err)
	}
	if err := es.SaveSnapshotFrom(bytes.NewReader(body), 42); err != nil {
		t.Fatal(err)
	}
	fb, err := readSnapshot(eb.snapPath(42), 42)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := readSnapshot(es.snapPath(42), 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb, fs) {
		t.Fatal("blob-written and stream-written snapshot files differ")
	}
}

// TestInstallSnapshotFromBoundedMemory is the O(chunk) proof demanded
// by the streaming design: installing (and then reading back) a
// snapshot far larger than the chunk budget must allocate on the order
// of the chunk, never the snapshot. The body is generated and drained
// through fixed buffers, so any full-size buffering would show up in
// the allocation delta.
func TestInstallSnapshotFromBoundedMemory(t *testing.T) {
	const (
		snapSize = int64(32 << 20) // 32 MiB body
		chunk    = 64 << 10        // 64 KiB budget
	)
	e := openT(t, t.TempDir(), func(o *Options) { o.SnapChunkSize = chunk })

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	if err := e.InstallSnapshotFrom(&patternReader{size: snapSize, seed: 1}, 99); err != nil {
		t.Fatal(err)
	}
	rc, z, ok := e.SnapshotStream()
	if !ok || z != 99 {
		t.Fatalf("SnapshotStream = (_, %d, %v), want (_, 99, true)", z, ok)
	}
	if got := readAllDiscardChunked(t, rc, chunk); got != snapSize {
		t.Fatalf("streamed %d bytes back, want %d", got, snapSize)
	}
	rc.Close()

	runtime.ReadMemStats(&after)
	delta := int64(after.TotalAlloc - before.TotalAlloc)
	// Generous slack for the two chunk buffers, file handles and test
	// scaffolding — but far below the 32 MiB a buffering implementation
	// would pay.
	if limit := snapSize / 4; delta > limit {
		t.Fatalf("install+stream of a %d MiB snapshot allocated %d bytes (limit %d): snapshot path is buffering, not streaming",
			snapSize>>20, delta, limit)
	}

	// And the installed snapshot recovers: reopen and check the horizon.
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := openT(t, e.opt.Dir, func(o *Options) { o.SnapChunkSize = chunk })
	if got := e2.SnapshotZxid(); got != 99 {
		t.Fatalf("recovered snapshot zxid = %d, want 99", got)
	}
	if got := e2.LastDurableZxid(); got != 99 {
		t.Fatalf("recovered durable horizon = %d, want 99", got)
	}
}

// TestSnapshotStreamDetectsCorruption flips one body byte and demands
// the validating reader report it in place of EOF — the property the
// zab recovery path relies on to refuse a corrupt restore.
func TestSnapshotStreamDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	e := openT(t, dir)
	body := bytes.Repeat([]byte{0xAB}, 4096)
	if err := e.SaveSnapshotFrom(bytes.NewReader(body), 5); err != nil {
		t.Fatal(err)
	}
	rc, _, ok := e.SnapshotStream()
	if !ok {
		t.Fatal("no snapshot stream")
	}
	// Corrupt the file after the stream opened (the reader validates
	// lazily, at end-of-body).
	flipByteInFile(t, e.snapPath(5), snapHeaderSize+100)
	_, err := io.ReadAll(rc)
	rc.Close()
	if err == nil {
		t.Fatal("reading a corrupt snapshot stream reached EOF without error")
	}
}
