package coord

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/znode"
)

// appliedEvent is one recorded notification, for comparing the watch
// event stream a schedule produces.
type appliedEvent struct {
	op      uint8
	path    string
	session uint64
	ok      bool
}

// buildApplySchedule produces a deterministic scripted transaction
// schedule: frames of creates, sets, deletes, multis and syncs spread
// over several top-level subtrees and sessions, salted with structural
// depth-1 ops and malformed frames (both classify as barriers). The
// same schedule feeds the serial and the parallel machine.
func buildApplySchedule(rng *rand.Rand, sessions int, frames int) [][][]byte {
	now := time.Unix(0, 1754600000000000000).UnixNano()
	seq := make([]uint64, sessions+1)
	next := func(s uint64) uint64 { seq[s]++; return seq[s] }
	var sched [][][]byte

	// Setup frame: subtree roots the later txns hang their nodes off.
	var setup [][]byte
	for d := 0; d < 8; d++ {
		setup = append(setup, encodeCreateTxn(fmt.Sprintf("/s%d", d), nil, znode.ModePersistent, 1, next(1), now))
	}
	sched = append(sched, setup)

	created := 0
	for f := 0; f < frames; f++ {
		n := 1 + rng.Intn(16)
		var frame [][]byte
		for i := 0; i < n; i++ {
			s := uint64(1 + rng.Intn(sessions))
			d := rng.Intn(8)
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				created++
				frame = append(frame, encodeCreateTxn(fmt.Sprintf("/s%d/n%d", d, created), []byte{byte(created)}, znode.ModePersistent, s, next(s), now))
			case 4, 5:
				// Set of a node that may or may not exist — errors must
				// replay identically too.
				frame = append(frame, encodeSetTxn(fmt.Sprintf("/s%d/n%d", d, 1+rng.Intn(created+1)), []byte{byte(f)}, -1, s, next(s), now))
			case 6:
				frame = append(frame, encodeDeleteTxn(fmt.Sprintf("/s%d/n%d", d, 1+rng.Intn(created+1)), -1, s, next(s)))
			case 7:
				frame = append(frame, encodeSyncTxn(s, next(s)))
			case 8:
				created++
				ops := []Op{
					CreateOp(fmt.Sprintf("/s%d/n%d", d, created), []byte("m"), znode.ModePersistent),
					SetOp(fmt.Sprintf("/s%d", rng.Intn(8)), []byte{byte(f)}, -1),
				}
				frame = append(frame, encodeMultiTxn(ops, s, next(s), now))
			case 9:
				// Scheduling barriers: a structural depth-1 create, a
				// fresh session mint, or a malformed frame.
				switch rng.Intn(3) {
				case 0:
					frame = append(frame, encodeCreateTxn(fmt.Sprintf("/x%d-%d", f, i), nil, znode.ModePersistent, s, next(s), now))
				case 1:
					frame = append(frame, encodeNewSessionTxn())
				default:
					frame = append(frame, []byte{opSet, 0xff})
				}
			}
		}
		sched = append(sched, frame)
	}
	return sched
}

// runApplySchedule pushes the schedule through one state machine and
// returns everything observable: per-txn results, the notification
// stream, and the final tree fingerprint.
func runApplySchedule(sm *stateMachine, sched [][][]byte) (results [][]byte, events []appliedEvent, fp uint64) {
	var mu sync.Mutex
	sm.notify = func(op uint8, path string, session uint64, ok bool) {
		mu.Lock()
		events = append(events, appliedEvent{op: op, path: path, session: session, ok: ok})
		mu.Unlock()
	}
	zxid := uint64(1) << 32
	for _, frame := range sched {
		rs := sm.ApplyBatch(frame, zxid)
		for _, r := range rs {
			results = append(results, append([]byte(nil), r...))
		}
		zxid += uint64(len(frame))
	}
	return results, events, sm.treeRef().Fingerprint()
}

// TestParallelApplyEquivalence drives the same scripted schedule
// through a strictly serial machine and a parallel one (run with
// -race: the pool workers plus a read storm make any unsound wave
// scheduling visible). Every observable — per-transaction results,
// the full notification stream, the final tree fingerprint, sessions
// minted — must match the serial machine byte for byte.
func TestParallelApplyEquivalence(t *testing.T) {
	const sessions = 6
	frames := 200
	seeds := int64(2)
	if raceEnabled || testing.Short() {
		// The detector slows the pool ~20x; a shorter schedule keeps
		// the same interleaving coverage per wall-clock budget.
		frames = 60
		seeds = 2
	}

	for seed := int64(1); seed <= seeds; seed++ {
		sched := buildApplySchedule(rand.New(rand.NewSource(seed)), sessions, frames)

		serial := newStateMachine()
		for i := 0; i < sessions; i++ {
			serial.Apply(encodeNewSessionTxn(), uint64(i+1))
		}
		wantRes, wantEvs, wantFP := runApplySchedule(serial, sched)

		par := newStateMachine()
		for i := 0; i < sessions; i++ {
			par.Apply(encodeNewSessionTxn(), uint64(i+1))
		}
		par.startParallelApply(8, nil)
		// Read storm against the stripes the schedule writes, so the
		// race detector sees reader/worker interleavings too.
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for d := 0; d < 8; d++ {
						par.treeRef().Children(fmt.Sprintf("/s%d", d))
					}
					// Yield so a spinning reader can't monopolize a
					// whole preemption slice on small GOMAXPROCS.
					runtime.Gosched()
				}
			}()
		}
		gotRes, gotEvs, gotFP := runApplySchedule(par, sched)
		close(stop)
		wg.Wait()
		par.stopParallelApply()

		if len(gotRes) != len(wantRes) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(gotRes), len(wantRes))
		}
		for i := range wantRes {
			if !bytes.Equal(gotRes[i], wantRes[i]) {
				t.Fatalf("seed %d: result %d differs:\nparallel: %x\n  serial: %x", seed, i, gotRes[i], wantRes[i])
			}
		}
		if len(gotEvs) != len(wantEvs) {
			t.Fatalf("seed %d: %d events, want %d", seed, len(gotEvs), len(wantEvs))
		}
		for i := range wantEvs {
			if gotEvs[i] != wantEvs[i] {
				t.Fatalf("seed %d: event %d = %+v, want %+v", seed, i, gotEvs[i], wantEvs[i])
			}
		}
		if gotFP != wantFP {
			t.Fatalf("seed %d: tree fingerprint %x, want %x", seed, gotFP, wantFP)
		}
	}
}
