package coord

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/coord/zab"
	"repro/internal/transport"
)

// EnsembleConfig parameterizes StartEnsemble.
type EnsembleConfig struct {
	// Servers is the ensemble size (1, 3, 5, ... — an even size works
	// but wastes a vote, exactly as in ZooKeeper).
	Servers int
	// Net is the shared transport.
	Net transport.Network
	// AddrPrefix namespaces the listen addresses; for TCP use
	// "127.0.0.1:0"-style addresses via AddrFor instead.
	AddrPrefix string
	// AddrFor, when non-nil, overrides address generation. kind is
	// "peer" or "client".
	AddrFor func(id uint64, kind string) string

	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	MaxLogEntries     int
	// Group-commit tunables (zero = defaults; see ServerConfig).
	MaxBatchTxns      int
	MaxInflightFrames int
	// Apply-pipeline tunables (zero = defaults; see ServerConfig):
	// commit→apply queue bound and parallel-apply pool size (1 forces
	// the serialized-apply ablation).
	MaxApplyQueueFrames int
	ApplyWorkers        int

	// DataDir, when non-empty, gives every member a durable storage
	// engine under DataDir/node<id>, so members — or the whole
	// ensemble — can be stopped and restarted from disk without losing
	// an acknowledged write (StopServer / StartServer / Restart).
	DataDir string
	// SyncEvery is the fsync-cadence ablation (see ServerConfig).
	SyncEvery int
	// WrapStorage, when non-nil, wraps member id's durable storage
	// engine (see ServerConfig.WrapStorage). The hook is recorded in the
	// member's config, so a restarted member is re-wrapped — fault
	// injectors that must survive StopServer/StartServer keep their
	// control state outside the wrapper they return.
	WrapStorage func(id uint64, s zab.Storage) zab.Storage
}

// Ensemble is a running coordination service.
type Ensemble struct {
	Servers     []*Server
	ClientAddrs []string
	net         transport.Network
	cfgs        []ServerConfig // per-member configs, for restart
}

// StartEnsemble boots a full coordination ensemble and waits for a
// leader, mirroring how the paper runs 1–8 ZooKeeper servers
// (§V-A/V-B). With DataDir set, each member recovers from its data
// directory, so StartEnsemble over an existing directory is a
// whole-cluster cold restart.
func StartEnsemble(cfg EnsembleConfig) (*Ensemble, error) {
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("coord: ensemble needs at least one server, got %d", cfg.Servers)
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("coord: ensemble needs a transport")
	}
	addrFor := cfg.AddrFor
	if addrFor == nil {
		addrFor = func(id uint64, kind string) string {
			return fmt.Sprintf("%s-%s-%d", cfg.AddrPrefix, kind, id)
		}
	}
	peers := make(map[uint64]string, cfg.Servers)
	for i := 1; i <= cfg.Servers; i++ {
		peers[uint64(i)] = addrFor(uint64(i), "peer")
	}
	e := &Ensemble{net: cfg.Net}
	for i := 1; i <= cfg.Servers; i++ {
		clientAddr := addrFor(uint64(i), "client")
		scfg := ServerConfig{
			ID:                  uint64(i),
			PeerAddrs:           peers,
			ClientAddr:          clientAddr,
			Net:                 cfg.Net,
			HeartbeatInterval:   cfg.HeartbeatInterval,
			ElectionTimeout:     cfg.ElectionTimeout,
			MaxLogEntries:       cfg.MaxLogEntries,
			MaxBatchTxns:        cfg.MaxBatchTxns,
			MaxInflightFrames:   cfg.MaxInflightFrames,
			MaxApplyQueueFrames: cfg.MaxApplyQueueFrames,
			ApplyWorkers:        cfg.ApplyWorkers,
			SyncEvery:           cfg.SyncEvery,
		}
		if cfg.DataDir != "" {
			scfg.DataDir = filepath.Join(cfg.DataDir, fmt.Sprintf("node%d", i))
		}
		if cfg.WrapStorage != nil {
			id := uint64(i)
			scfg.WrapStorage = func(s zab.Storage) zab.Storage { return cfg.WrapStorage(id, s) }
		}
		srv, err := NewServer(scfg)
		if err != nil {
			e.Stop()
			return nil, err
		}
		e.Servers = append(e.Servers, srv)
		e.ClientAddrs = append(e.ClientAddrs, clientAddr)
		e.cfgs = append(e.cfgs, scfg)
	}
	if err := e.WaitLeader(10 * time.Second); err != nil {
		e.Stop()
		return nil, err
	}
	return e, nil
}

// WaitLeader blocks until a leader is elected or the timeout expires.
func (e *Ensemble) WaitLeader(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, s := range e.Servers {
			if s != nil && s.IsLeader() {
				return nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("coord: no leader within %v", timeout)
}

// Leader returns the current leader server, or nil.
func (e *Ensemble) Leader() *Server {
	for _, s := range e.Servers {
		if s != nil && s.IsLeader() {
			return s
		}
	}
	return nil
}

// StopServer stops member i (0-based), leaving its slot nil. With a
// DataDir the member's durable state stays on disk for StartServer.
func (e *Ensemble) StopServer(i int) {
	if s := e.Servers[i]; s != nil {
		s.Stop()
		e.Servers[i] = nil
	}
}

// StartServer (re)starts member i from its recorded configuration —
// with a DataDir, that means recovering from its data directory.
func (e *Ensemble) StartServer(i int) error {
	if e.Servers[i] != nil {
		return fmt.Errorf("coord: server %d already running", i)
	}
	if e.cfgs == nil {
		return fmt.Errorf("coord: ensemble was not built by StartEnsemble; cannot restart members")
	}
	srv, err := NewServer(e.cfgs[i])
	if err != nil {
		return err
	}
	e.Servers[i] = srv
	return nil
}

// Restart performs a whole-cluster cold restart: every member is
// stopped, then every member is started again from its data directory
// and a leader is awaited. Without a DataDir this is a state wipe —
// only durable ensembles restart meaningfully.
func (e *Ensemble) Restart() error {
	for i := range e.Servers {
		e.StopServer(i)
	}
	for i := range e.Servers {
		if err := e.StartServer(i); err != nil {
			return fmt.Errorf("coord: restarting server %d: %w", i, err)
		}
	}
	return e.WaitLeader(10 * time.Second)
}

// PeerAddrs returns the voter ID → peer-traffic address map, the
// contact list an observer replica needs to find (and follow) the
// leader's log feed.
func (e *Ensemble) PeerAddrs() map[uint64]string {
	if len(e.cfgs) == 0 {
		return nil
	}
	out := make(map[uint64]string, len(e.cfgs[0].PeerAddrs))
	for id, addr := range e.cfgs[0].PeerAddrs {
		out[id] = addr
	}
	return out
}

// Connect opens a session against the ensemble. preferred selects the
// server index (sessions spread across servers, like the paper's DUFS
// clients each talking to a co-located ZooKeeper server); a negative
// value keeps the natural failover order.
func (e *Ensemble) Connect(preferred int) (*Session, error) {
	addrs := append([]string(nil), e.ClientAddrs...)
	if preferred >= 0 && len(addrs) > 1 {
		p := preferred % len(addrs)
		addrs[0], addrs[p] = addrs[p], addrs[0]
	}
	return Connect(e.net, addrs)
}

// Stop shuts every server down.
func (e *Ensemble) Stop() {
	for _, s := range e.Servers {
		if s != nil {
			s.Stop()
		}
	}
}
