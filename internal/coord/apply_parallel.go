package coord

// Parallel apply scheduling: inside one committed batch, transactions
// that touch disjoint znode stripes (and different sessions) execute
// concurrently on a worker pool, while everything observable — result
// slots, dedup effects, notification order — stays identical to the
// serial order.
//
// The scheduling rule reuses the tree's own lock-coverage function
// (znode.StripeMaskForWrite): two transactions may share a wave only
// if their stripe masks are disjoint, neither is a whole-tree barrier,
// and they act for different sessions. Stripe disjointness implies
// path disjointness down to the top-level subtree, which subsumes
// every intra-tree ordering the serial apply provided (parent/child
// stat updates, per-parent sequential counters); the session rule
// keeps per-session result and dedup-window order; barriers (session
// lifecycle, migration control, structural root changes, malformed
// frames) run alone. Determinism follows: each transaction applies
// with its own zxid against state its stripe fully owns for the wave,
// so execution interleaving cannot change any outcome.

import (
	"runtime"
	"sync"

	"repro/internal/coord/znode"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// txnClass is a transaction's scheduling footprint: the stripe-lock
// coverage its tree mutations take, whether it must run alone, and the
// session it acts for (0 = sessionless).
type txnClass struct {
	mask    uint32
	all     bool
	session uint64
}

// classifyTxn peeks a transaction's scheduling footprint straight off
// the wire form, allocation-free (paths are borrowed, never copied).
// Anything unrecognized or malformed classifies as a barrier — the
// serial path then reports the error exactly as before.
func classifyTxn(txn []byte) (c txnClass) {
	var r wire.Reader
	r.Reset(txn)
	op := r.Uint8()
	if r.Err() != nil {
		c.all = true
		return
	}
	switch op {
	case opCreate, opDelete, opSet:
		c.session = r.Uint64()
		r.Uint64() // seq
		path := r.BorrowBytes()
		if r.Err() != nil {
			c.all = true
			return
		}
		// Create and delete are structural: their depth-1 form mutates
		// the root's child map and takes every stripe.
		c.mask, c.all = znode.StripeMaskForWrite(path, op != opSet)
	case opSync:
		// No tree access; ordered only against its own session.
		c.session = r.Uint64()
		if r.Err() != nil {
			c.all = true
		}
	case opMulti:
		c.session = r.Uint64()
		r.Uint64() // seq
		r.Int64()  // nowNano
		n := r.Uint32()
		if r.Err() != nil || n == 0 || int(n) > r.Remaining() {
			c.all = true
			return
		}
		for i := uint32(0); i < n; i++ {
			kind := znode.MultiKind(r.Uint8())
			path := r.BorrowBytes()
			r.BorrowBytes() // data
			r.Uint8()       // mode
			r.Int32()       // version
			if r.Err() != nil {
				c.all = true
				return
			}
			structural := kind == znode.MultiCreate || kind == znode.MultiDelete
			m, all := znode.StripeMaskForWrite(path, structural)
			if all {
				c.all = true
				return
			}
			c.mask |= m
		}
	default:
		// Session lifecycle, migration control, unknown ops: whole-tree
		// barriers, applied alone.
		c.all = true
	}
	return
}

// defaultApplyWorkers sizes the pool when the configuration leaves it
// to us: enough to exploit the stripe parallelism, capped so a
// many-core box doesn't burn idle workers per shard.
func defaultApplyWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// applyTask is one transaction dispatched to the pool. res points at
// the transaction's slot in the batch result scratch, so completion
// order never reorders results.
type applyTask struct {
	sm   *stateMachine
	ctx  *applyCtx
	txn  []byte
	zxid uint64
	res  *[]byte
	done *sync.WaitGroup
}

// applyPool is a fixed set of workers executing apply tasks. One pool
// serves one state machine; tasks of a wave are mutually path- and
// session-disjoint, so workers never contend on replicated state
// beyond the tree's own stripe locks.
type applyPool struct {
	tasks     chan applyTask
	wg        sync.WaitGroup
	busy      *metrics.Gauge // zab.apply.workers_busy, may be nil
	closeOnce sync.Once
}

func newApplyPool(workers int, busy *metrics.Gauge) *applyPool {
	p := &applyPool{
		tasks: make(chan applyTask, 2*workers),
		busy:  busy,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *applyPool) run() {
	defer p.wg.Done()
	for t := range p.tasks {
		if p.busy != nil {
			p.busy.Add(1)
		}
		*t.res = t.sm.applyTxn(t.ctx, t.txn, t.zxid)
		if p.busy != nil {
			p.busy.Add(-1)
		}
		t.done.Done()
	}
}

func (p *applyPool) close() {
	p.closeOnce.Do(func() {
		close(p.tasks)
		p.wg.Wait()
		if p.busy != nil {
			p.busy.Set(0)
		}
	})
}

// startParallelApply attaches a worker pool so ApplyBatch schedules
// path-disjoint transactions concurrently. workers <= 1 leaves the
// machine strictly serial — the ablation, replay and test path. Must
// not race ApplyBatch; callers attach before the replication layer
// starts applying.
func (s *stateMachine) startParallelApply(workers int, busy *metrics.Gauge) {
	if workers <= 1 || s.pool != nil {
		return
	}
	s.pool = newApplyPool(workers, busy)
}

// stopParallelApply drains and joins the pool. Must not race
// ApplyBatch; callers stop the replication layer first.
func (s *stateMachine) stopParallelApply() {
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
	}
}

// applyBatchParallel executes one batch with wave scheduling: scan the
// transactions in order, greedily packing each into the current wave
// unless it conflicts (stripe-mask overlap, same session, or barrier);
// on conflict the wave executes — members concurrently, they are
// pairwise disjoint — and a new wave starts. Each transaction's
// notifications buffer on its own context and flush in transaction
// order after its wave, so watch events still fire in commit order.
func (s *stateMachine) applyBatchParallel(txns [][]byte, firstZxid uint64, results [][]byte) {
	if cap(s.classScratch) < len(txns) {
		s.classScratch = make([]txnClass, len(txns))
	}
	classes := s.classScratch[:len(txns)]
	for i, txn := range txns {
		classes[i] = classifyTxn(txn)
	}
	if cap(s.ctxScratch) < len(txns) {
		grown := make([]applyCtx, len(txns))
		copy(grown, s.ctxScratch) // keep the already-grown recs buffers
		s.ctxScratch = grown
	}
	ctxs := s.ctxScratch[:len(txns)]

	wave := s.waveScratch[:0]
	var waveMask uint32
	flushWave := func() {
		switch len(wave) {
		case 0:
			return
		case 1:
			k := wave[0]
			results[k] = s.applyTxn(&ctxs[k], txns[k], firstZxid+uint64(k))
		default:
			var done sync.WaitGroup
			done.Add(len(wave))
			for _, k := range wave {
				s.pool.tasks <- applyTask{
					sm:   s,
					ctx:  &ctxs[k],
					txn:  txns[k],
					zxid: firstZxid + uint64(k),
					res:  &results[k],
					done: &done,
				}
			}
			done.Wait()
		}
		for _, k := range wave {
			s.flushNotify(&ctxs[k])
		}
		wave = wave[:0]
		waveMask = 0
	}

	for i := range txns {
		c := classes[i]
		if c.all {
			flushWave()
			results[i] = s.applyTxn(&ctxs[i], txns[i], firstZxid+uint64(i))
			s.flushNotify(&ctxs[i])
			continue
		}
		conflict := waveMask&c.mask != 0
		if !conflict && c.session != 0 {
			for _, k := range wave {
				if classes[k].session == c.session {
					conflict = true
					break
				}
			}
		}
		if conflict {
			flushWave()
		}
		wave = append(wave, i)
		waveMask |= c.mask
	}
	flushWave()
	s.waveScratch = wave[:0]
}
