package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/placement"
)

// migrateByHand drives the fence/ship/replay/flip protocol directly
// against per-shard sessions and publishes the bumped placement table,
// returning the new epoch. It is the router-side test double for the
// migrate coordinator: the router under test must discover the move
// purely through the redirect protocol.
func migrateByHand(t *testing.T, r *Router, direct []*coord.Session, rng placement.Range, src, dest int) uint64 {
	t.Helper()
	ctx := context.Background()

	next, err := r.PlacementTable().WithMove(rng, dest)
	if err != nil {
		t.Fatal(err)
	}
	epoch := next.Epoch()

	pre, err := direct[src].RangeExport(ctx, rng, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := direct[dest].ImportRange(ctx, rng, pre.Entries, false, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := direct[src].FenceRange(ctx, rng, dest, epoch); err != nil {
		t.Fatal(err)
	}
	delta, err := direct[src].RangeExport(ctx, rng, pre.Zxid, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := direct[dest].ImportRange(ctx, rng, delta.Entries, true, delta.Manifest); err != nil {
		t.Fatal(err)
	}
	if _, err := direct[src].RangeMoved(ctx, rng, dest, epoch); err != nil {
		t.Fatal(err)
	}
	// Publish the bumped table on shard 0 (where the router reads it).
	if _, err := direct[0].Create(coord.PlacementPrefix, nil, znode.ModePersistent); err != nil && !isExists(err) {
		t.Fatal(err)
	}
	if _, err := direct[0].Create(coord.PlacementTablePath, next.Encode(), znode.ModePersistent); err != nil {
		if !isExists(err) {
			t.Fatal(err)
		}
		if _, err := direct[0].Set(coord.PlacementTablePath, next.Encode(), -1); err != nil {
			t.Fatal(err)
		}
	}
	return epoch
}

func isExists(err error) bool {
	return errors.Is(err, coord.ErrNodeExists)
}

// TestRouterChasesMovedPartition pins the redirect contract end to
// end: a router still holding the epoch-0 table writes into a range
// that has migrated, gets the moved redirect, refreshes its table once
// and lands the write on the new owner — the caller sees only success.
func TestRouterChasesMovedPartition(t *testing.T) {
	r, _, direct := startSharded(t, 2, 3)

	if _, err := r.Create("/mig", []byte("dir"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("/mig/a", []byte("v0"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	src := r.ShardFor("/mig/a")
	dest := 1 - src
	rng := placement.RangeForKey("/mig")

	epoch := migrateByHand(t, r, direct, rng, src, dest)

	// The router has not been told anything: its first write into the
	// moved range must chase the redirect and succeed.
	if r.PlacementEpoch() != 0 {
		t.Fatalf("router epoch = %d before any op", r.PlacementEpoch())
	}
	if _, err := r.Create("/mig/b", []byte("new"), znode.ModePersistent); err != nil {
		t.Fatalf("create into moved range: %v", err)
	}
	if r.PlacementEpoch() != epoch {
		t.Fatalf("router epoch = %d after chase, want %d", r.PlacementEpoch(), epoch)
	}
	// One hop: the refreshed table routes the range to dest directly.
	if got := r.ShardFor("/mig/b"); got != dest {
		t.Fatalf("post-chase ShardFor = %d, want %d", got, dest)
	}
	// Pre-migration data reads back through the new owner.
	if data, _, err := r.Get("/mig/a"); err != nil || string(data) != "v0" {
		t.Fatalf("read after migration = %q, %v", data, err)
	}
	if kids, err := r.Children("/mig"); err != nil || len(kids) != 2 {
		t.Fatalf("children after migration = %v, %v", kids, err)
	}
	// The moved copy actually left the source.
	if _, _, err := direct[src].Get("/mig/a"); err == nil {
		t.Fatal("source still serves the moved node")
	}
}

// TestRouterWaitsOutFence pins the transient half of the redirect
// contract: a write bouncing off a fenced range retries in place and
// succeeds once the fence lifts, without surfacing ErrFenced.
func TestRouterWaitsOutFence(t *testing.T) {
	r, _, direct := startSharded(t, 2, 3)

	if _, err := r.Create("/mig", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("/mig/a", []byte("v0"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	src := r.ShardFor("/mig/a")
	rng := placement.RangeForKey("/mig")
	ctx := context.Background()

	if _, err := direct[src].FenceRange(ctx, rng, 1-src, 1); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = direct[src].UnfenceRange(ctx, rng)
	}()
	start := time.Now()
	if _, err := r.Set("/mig/a", []byte("v1"), -1); err != nil {
		t.Fatalf("set across fence window: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("set returned before the fence could have lifted")
	}
	if data, _, err := r.Get("/mig/a"); err != nil || string(data) != "v1" {
		t.Fatalf("read back = %q, %v", data, err)
	}
}
