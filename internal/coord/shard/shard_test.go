package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/transport"
)

var harnessSeq int

// startSharded boots `shards` independent ensembles of `servers` each
// on one in-process network and returns a connected router plus one
// direct per-shard session for white-box inspection.
func startSharded(t *testing.T, shards, servers int) (*Router, []*coord.Ensemble, []*coord.Session) {
	t.Helper()
	harnessSeq++
	net := transport.NewInProc()
	var ensembles []*coord.Ensemble
	var routed []coord.Client
	var direct []*coord.Session
	for s := 0; s < shards; s++ {
		e, err := coord.StartEnsemble(coord.EnsembleConfig{
			Servers:           servers,
			Net:               net,
			AddrPrefix:        fmt.Sprintf("shardtest%d-%d", harnessSeq, s),
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		sess, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		routed = append(routed, sess)
		insp, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { insp.Close() })
		direct = append(direct, insp)
		ensembles = append(ensembles, e)
	}
	r, err := New(routed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, ensembles, direct
}

// TestRoutingDeterministic verifies the placement function is a pure
// function of (path, shard count): two independent routers agree on
// every decision, and all children of one directory map to one shard.
func TestRoutingDeterministic(t *testing.T) {
	mk := func() *Router {
		sessions := make([]coord.Client, 4)
		for i := range sessions {
			sessions[i] = (*coord.Session)(nil) // routing never dereferences
		}
		r, err := New(sessions)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	dirs := []string{"/", "/dufs", "/dufs/a", "/dufs/a/b", "/dufs/deep/er/still"}
	spread := map[int]bool{}
	for _, dir := range dirs {
		want := -1
		for i := 0; i < 32; i++ {
			p := fmt.Sprintf("%s/child%d", dir, i)
			if dir == "/" {
				p = fmt.Sprintf("/child%d", i)
			}
			got := a.ShardFor(p)
			if got != b.ShardFor(p) {
				t.Fatalf("routers disagree on %s: %d vs %d", p, got, b.ShardFor(p))
			}
			if want == -1 {
				want = got
			} else if got != want {
				t.Fatalf("children of %s split across shards %d and %d", dir, want, got)
			}
		}
		spread[a.ShardFor(dir+"/x")] = true
	}
	if len(spread) < 2 {
		t.Fatalf("all %d test directories hashed to one shard; ring is not spreading", len(dirs))
	}
}

// TestChildrenColocation creates a directory tree through a 4-shard
// router and verifies (a) the API behaves like a single ensemble and
// (b) every child znode physically lives on exactly the one shard the
// ring picked — the property that keeps Children a single-shard call.
func TestChildrenColocation(t *testing.T) {
	r, _, direct := startSharded(t, 4, 1)

	if _, err := r.Create("/app", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	dirs := []string{"/app/logs", "/app/data", "/app/tmp"}
	for _, dir := range dirs {
		if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := r.Create(fmt.Sprintf("%s/f%d", dir, i), []byte("x"), znode.ModePersistent); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, dir := range dirs {
		kids, err := r.Children(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) != 5 {
			t.Fatalf("Children(%s) = %v, want 5 entries", dir, kids)
		}
		home := r.ShardFor(dir + "/f0")
		for i := 0; i < 5; i++ {
			p := fmt.Sprintf("%s/f%d", dir, i)
			if got := r.ShardFor(p); got != home {
				t.Fatalf("%s routed to shard %d, sibling to %d", p, got, home)
			}
			for s, sess := range direct {
				_, ok, err := sess.Exists(p)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (s == home) {
					t.Fatalf("%s on shard %d: exists=%v, want %v", p, s, ok, s == home)
				}
			}
		}
	}

	// An empty directory with no stub on its children shard reads as
	// empty, not absent.
	if _, err := r.Create("/app/empty", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	kids, err := r.Children("/app/empty")
	if err != nil || len(kids) != 0 {
		t.Fatalf("Children(empty) = %v, %v; want empty, nil", kids, err)
	}
}

// TestCrossShardDelete verifies the router's two-shard delete: a
// directory with children on another shard refuses to die, then
// deletes cleanly (authoritative copy AND stub) once emptied.
func TestCrossShardDelete(t *testing.T) {
	r, _, direct := startSharded(t, 4, 1)
	// Find a directory whose children live on a different shard than
	// the directory entry itself, so both code paths run.
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/d%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	file := dir + "/f"
	if _, err := r.Create(file, []byte("x"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(dir, -1); err != coord.ErrNotEmpty {
		t.Fatalf("delete of non-empty dir: got %v, want ErrNotEmpty", err)
	}
	if err := r.Delete(file, -1); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(dir, -1); err != nil {
		t.Fatal(err)
	}
	for s, sess := range direct {
		if _, ok, _ := sess.Exists(dir); ok {
			t.Fatalf("shard %d still holds %s after delete", s, dir)
		}
	}
	if _, ok, err := r.Exists(dir); err != nil || ok {
		t.Fatalf("Exists(%s) after delete = %v, %v", dir, ok, err)
	}
}

// TestRouterWatches verifies a data watch set through the router fires
// on the shard that owns the path and surfaces through the merged
// PollEvents stream.
func TestRouterWatches(t *testing.T) {
	r, _, _ := startSharded(t, 2, 1)
	if _, err := r.Create("/w", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("/w/node", []byte("v1"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.GetW("/w/node"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Set("/w/node", []byte("v2"), -1); err != nil {
		t.Fatal(err)
	}
	evs, err := r.WaitEvent(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Path != "/w/node" {
		t.Fatalf("expected data event for /w/node, got %+v", evs)
	}
}

// TestChildrenWatchOnStublessDirectory covers the cache-coherence
// corner: a child watch on a directory that exists authoritatively
// but has no stub yet on its children shard must still be a REAL
// watch — the first child create has to fire it.
func TestChildrenWatchOnStublessDirectory(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	// A directory whose entry and children live on different shards,
	// so no stub exists until something forces one.
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/wd%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	kids, err := r.ChildrenW(dir)
	if err != nil || len(kids) != 0 {
		t.Fatalf("ChildrenW(stubless) = %v, %v; want empty, nil", kids, err)
	}
	if _, err := r.Create(dir+"/first", []byte("x"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	evs, err := r.WaitEvent(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range evs {
		if ev.Path == dir && ev.Type == coord.EventChildrenChanged {
			found = true
		}
	}
	if !found {
		t.Fatalf("child watch never fired; events: %+v", evs)
	}
}

// TestSyncBarrierAcrossShards verifies Sync makes another router's
// committed writes visible whichever shard they landed on.
func TestSyncBarrierAcrossShards(t *testing.T) {
	r1, ensembles, _ := startSharded(t, 3, 1)
	var clients []coord.Client
	for _, e := range ensembles {
		s, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, s)
	}
	r2, err := New(clients)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/sync%d", i)
		if _, err := r1.Create(p, []byte("x"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		if err := r2.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := r2.Exists(p); err != nil || !ok {
			t.Fatalf("after sync, %s invisible to r2: ok=%v err=%v", p, ok, err)
		}
	}
}

// TestSingleShardLeaderFailover kills the leader of one shard's
// 3-server ensemble and verifies operations routed to that shard
// fail over within the session retry budget while other shards are
// untouched — the blast radius the sharded design promises.
func TestSingleShardLeaderFailover(t *testing.T) {
	r, ensembles, _ := startSharded(t, 2, 3)
	if _, err := r.Create("/fo", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	victimShard := r.shardForChildren("/fo")
	leader := ensembles[victimShard].Leader()
	if leader == nil {
		t.Fatal("shard has no leader")
	}
	leader.Stop()
	if err := ensembles[victimShard].WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Create(fmt.Sprintf("/fo/f%d", i), []byte("x"), znode.ModePersistent); err != nil {
			t.Fatalf("create after failover: %v", err)
		}
	}
	kids, err := r.Children("/fo")
	if err != nil || len(kids) != 10 {
		t.Fatalf("Children after failover = %v, %v; want 10 entries", kids, err)
	}
}

// crossShardDirs returns two directory paths whose children live on
// different shards.
func crossShardDirs(t *testing.T, r *Router) (a, b string) {
	t.Helper()
	for i := 0; i < 1024; i++ {
		x := fmt.Sprintf("/xa%d", i)
		y := fmt.Sprintf("/xb%d", i)
		if r.ShardFor(x+"/f") != r.ShardFor(y+"/f") {
			return x, y
		}
	}
	t.Fatal("no cross-shard directory pair found")
	return "", ""
}

// TestRouterAtomic verifies the atomicity predicate: children of one
// directory are always one shard (so a same-directory batch is
// atomic), while a known cross-shard pair is not.
func TestRouterAtomic(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	if !r.Atomic("/d/a", "/d/b", "/d/c") {
		t.Fatal("same-directory paths reported non-atomic")
	}
	if !r.Atomic("/only") {
		t.Fatal("single path must always be atomic")
	}
	a, b := crossShardDirs(t, r)
	if r.Atomic(a+"/f", b+"/f") {
		t.Fatalf("cross-shard pair %s,%s reported atomic", a, b)
	}
}

// TestRouterMultiSingleShardAtomic sends a batch whose paths all hash
// to one shard with a failing check in the middle: nothing may apply,
// exactly as on a single ensemble.
func TestRouterMultiSingleShardAtomic(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	if _, err := r.Create("/app", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	results, err := r.Multi([]coord.Op{
		coord.CreateOp("/app/a", nil, znode.ModePersistent),
		coord.CheckOp("/app/absent", -1),
		coord.CreateOp("/app/b", nil, znode.ModePersistent),
	})
	if !errors.Is(err, coord.ErrNoNode) {
		t.Fatalf("multi err = %v, want ErrNoNode", err)
	}
	if !errors.Is(results[0].Err, coord.ErrRolledBack) || !errors.Is(results[2].Err, coord.ErrRolledBack) {
		t.Fatalf("sibling results = %+v, want ErrRolledBack", results)
	}
	for _, p := range []string{"/app/a", "/app/b"} {
		if _, ok, err := r.Exists(p); err != nil || ok {
			t.Fatalf("%s leaked from aborted single-shard batch (ok=%v err=%v)", p, ok, err)
		}
	}
}

// TestRouterMultiCrossShardSplit documents the split contract: a batch
// spanning two shards executes as two sequential sub-transactions in
// first-appearance order. When the second sub-transaction aborts, the
// first STAYS COMMITTED — the router's Multi is only per-shard atomic
// — and the untouched ops report ErrRolledBack.
func TestRouterMultiCrossShardSplit(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	a, b := crossShardDirs(t, r)
	for _, dir := range []string{a, b} {
		if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	// Shard(a)'s sub-batch commits; shard(b)'s aborts on a bad check.
	results, err := r.Multi([]coord.Op{
		coord.CreateOp(a+"/ok", []byte("x"), znode.ModePersistent),
		coord.CheckOp(b+"/absent", -1),
		coord.CreateOp(b+"/never", nil, znode.ModePersistent),
		coord.CreateOp(a+"/ok2", nil, znode.ModePersistent),
	})
	if !errors.Is(err, coord.ErrNoNode) {
		t.Fatalf("split multi err = %v, want ErrNoNode from the failing check", err)
	}
	// First-appearance order: shard(a) ran first and stays committed.
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("committed sub-batch results = %+v, want nil errors", results)
	}
	if _, ok, _ := r.Exists(a + "/ok"); !ok {
		t.Fatalf("%s/ok missing: committed sub-transaction must survive the later abort", a)
	}
	if _, ok, _ := r.Exists(a + "/ok2"); !ok {
		t.Fatalf("%s/ok2 missing: committed sub-transaction must survive the later abort", a)
	}
	// The aborted shard applied nothing.
	if !errors.Is(results[1].Err, coord.ErrNoNode) {
		t.Fatalf("failing op result = %v, want ErrNoNode", results[1].Err)
	}
	if !errors.Is(results[2].Err, coord.ErrRolledBack) {
		t.Fatalf("aborted sibling result = %v, want ErrRolledBack", results[2].Err)
	}
	if _, ok, _ := r.Exists(b + "/never"); ok {
		t.Fatalf("%s/never leaked from aborted sub-transaction", b)
	}
}

// TestRouterMultiStubMaterialisation verifies a batched create on a
// shard that has never seen the parent directory materialises the
// ancestor stub chain and retries, like single-op Create.
func TestRouterMultiStubMaterialisation(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	// Parent created through the router: its znode lives on
	// shard(parent-of-/stub), while its children live on shard(/stub) —
	// which has no stub until a child arrives.
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/stub%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	results, err := r.Multi([]coord.Op{
		coord.CreateOp(dir+"/a", nil, znode.ModePersistent),
		coord.CreateOp(dir+"/b", nil, znode.ModePersistent),
	})
	if err != nil {
		t.Fatalf("batched create on stubless shard: %v (results %+v)", err, results)
	}
	kids, err := r.Children(dir)
	if err != nil || len(kids) != 2 {
		t.Fatalf("children = %v, %v; want a,b", kids, err)
	}
}

// TestRouterMultiDeleteCrossShardContract verifies batched deletes
// keep Router.Delete's guarantees: a directory with children hosted on
// a DIFFERENT shard refuses to die (the executing shard cannot see
// them), and once empty, a batched delete also removes the stub on the
// children shard so the path does not stay listable.
func TestRouterMultiDeleteCrossShardContract(t *testing.T) {
	r, _, direct := startSharded(t, 4, 1)
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/md%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(dir+"/kid", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	// Non-empty: the batch must refuse without executing.
	if _, err := r.Multi([]coord.Op{coord.DeleteOp(dir, -1)}); !errors.Is(err, coord.ErrNotEmpty) {
		t.Fatalf("batched delete of non-empty cross-shard dir: %v, want ErrNotEmpty", err)
	}
	if _, ok, _ := r.Exists(dir); !ok {
		t.Fatal("refused batch deleted the directory anyway")
	}
	if _, err := r.Multi([]coord.Op{coord.DeleteOp(dir+"/kid", -1)}); err != nil {
		t.Fatal(err)
	}
	// Empty now: the batched delete must clean the stub too.
	if _, err := r.Multi([]coord.Op{coord.DeleteOp(dir, -1)}); err != nil {
		t.Fatal(err)
	}
	for s, sess := range direct {
		if _, ok, _ := sess.Exists(dir); ok {
			t.Fatalf("shard %d still holds %s after batched delete (ghost stub)", s, dir)
		}
	}
	if _, err := r.ChildrenData(dir); !errors.Is(err, coord.ErrNoNode) {
		t.Fatalf("ChildrenData(%s) after batched delete = %v, want ErrNoNode", dir, err)
	}
}

// TestRouterChildrenData verifies the batched listing through the
// router: entries come from the children shard, the "." self entry is
// present, and a stubless empty directory reads as self-only via the
// authoritative fallback.
func TestRouterChildrenData(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	if _, err := r.Create("/cd", []byte("self"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b", "a"} {
		if _, err := r.Create("/cd/"+name, []byte("v-"+name), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := r.ChildrenData("/cd")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Name != "." {
		t.Fatalf("entries = %+v, want . a b", entries)
	}
	if entries[1].Name != "a" || string(entries[1].Data) != "v-a" ||
		entries[2].Name != "b" || string(entries[2].Data) != "v-b" {
		t.Fatalf("child entries = %+v", entries[1:])
	}

	// Stubless empty directory: ChildrenData on the children shard
	// misses; the authoritative copy supplies the self entry.
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/cde%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("lonely"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	entries, err = r.ChildrenData(dir)
	if err != nil || len(entries) != 1 || entries[0].Name != "." || string(entries[0].Data) != "lonely" {
		t.Fatalf("ChildrenData(stubless empty) = %+v, %v; want self-only", entries, err)
	}
	if _, err := r.ChildrenData("/definitely-absent"); !errors.Is(err, coord.ErrNoNode) {
		t.Fatalf("ChildrenData(absent) err = %v, want ErrNoNode", err)
	}
}

// TestStatusAggregates verifies Status sums znode counts across
// shards.
func TestStatusAggregates(t *testing.T) {
	r, _, direct := startSharded(t, 3, 1)
	for i := 0; i < 9; i++ {
		if _, err := r.Create(fmt.Sprintf("/s%d", i), nil, znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	st, err := r.Status()
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, sess := range direct {
		s, err := sess.Status()
		if err != nil {
			t.Fatal(err)
		}
		want += s.Znodes
	}
	if st.Znodes != want {
		t.Fatalf("aggregate Znodes = %d, want %d", st.Znodes, want)
	}
}

// TestRouterEventStreamMergesShards verifies the push fan-in: watches
// firing on DIFFERENT shards all surface through one blocking
// WaitEvents call stream, with no polling sweep.
func TestRouterEventStreamMergesShards(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	// Two watched nodes whose authoritative copies live on different
	// shards: a node's shard is the hash of its parent directory, so
	// pick two directories whose children shards differ and watch one
	// file in each.
	var dirs []string
	for i := 0; len(dirs) < 2; i++ {
		d := fmt.Sprintf("/se%d", i)
		if len(dirs) == 1 && r.shardForChildren(d) == r.shardForChildren(dirs[0]) {
			continue
		}
		dirs = append(dirs, d)
	}
	var paths []string
	for _, d := range dirs {
		if _, err := r.Create(d, []byte("d"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		p := d + "/w"
		if _, err := r.Create(p, []byte("v"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.GetW(p); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	for _, p := range paths {
		if _, err := r.Set(p, []byte("v2"), -1); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		evs, err := r.WaitEvent(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev.Type == coord.EventDataChanged {
				got[ev.Path] = true
			}
		}
	}
	for _, p := range paths {
		if !got[p] {
			t.Fatalf("event for %s (shard %d) never surfaced; got %v", p, r.ShardFor(p), got)
		}
	}
}

// TestRouterAsyncBeginRoutes drives the router's async layer across
// op kinds, including the create path that needs ancestor-stub
// recovery on the children shard.
func TestRouterAsyncBeginRoutes(t *testing.T) {
	r, _, direct := startSharded(t, 4, 1)
	ctx := context.Background()
	if _, err := r.Create("/ab", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	// A flight of creates under one directory — all on the children
	// shard of /ab, stubs materialised as needed by Begin's routing.
	futs := make([]*coord.Future, 8)
	for i := range futs {
		futs[i] = r.Begin(ctx, coord.CreateOp(fmt.Sprintf("/ab/f%d", i), []byte("x"), znode.ModePersistent))
	}
	for i, f := range futs {
		if res, err := f.Result(); err != nil || res.Created == "" {
			t.Fatalf("future %d: %+v, %v", i, res, err)
		}
	}
	kids, err := r.Children("/ab")
	if err != nil || len(kids) != 8 {
		t.Fatalf("children = %v, %v", kids, err)
	}
	// Async set + check + delete against authoritative copies.
	if _, err := r.Begin(ctx, coord.SetOp("/ab/f0", []byte("y"), -1)).Result(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Begin(ctx, coord.CheckOp("/ab/f0", -1)).Result(); err != nil {
		t.Fatal(err)
	}
	if err := r.Begin(ctx, coord.DeleteOp("/ab/f1", -1)).Err(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Exists("/ab/f1"); ok {
		t.Fatal("async delete did not apply")
	}
	// Async sync barrier reaches every shard.
	if err := r.Begin(ctx, coord.Op{Kind: coord.OpSync}).Err(); err != nil {
		t.Fatal(err)
	}
	// Async listing routes to the children shard.
	entries, err := r.BeginChildrenData(ctx, "/ab").Entries()
	if err != nil || len(entries) != 8 { // "." + 7 remaining children
		t.Fatalf("async listing = %d entries, %v", len(entries), err)
	}
	// And the per-shard sessions agree the namespace is consistent.
	total := 0
	for _, s := range direct {
		if kids, err := s.Children("/ab"); err == nil {
			total += len(kids)
		}
	}
	if total != 7 {
		t.Fatalf("shard-wide children = %d, want 7", total)
	}
}
