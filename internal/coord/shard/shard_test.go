package shard

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/transport"
)

var harnessSeq int

// startSharded boots `shards` independent ensembles of `servers` each
// on one in-process network and returns a connected router plus one
// direct per-shard session for white-box inspection.
func startSharded(t *testing.T, shards, servers int) (*Router, []*coord.Ensemble, []*coord.Session) {
	t.Helper()
	harnessSeq++
	net := transport.NewInProc()
	var ensembles []*coord.Ensemble
	var routed []coord.Client
	var direct []*coord.Session
	for s := 0; s < shards; s++ {
		e, err := coord.StartEnsemble(coord.EnsembleConfig{
			Servers:           servers,
			Net:               net,
			AddrPrefix:        fmt.Sprintf("shardtest%d-%d", harnessSeq, s),
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		sess, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		routed = append(routed, sess)
		insp, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { insp.Close() })
		direct = append(direct, insp)
		ensembles = append(ensembles, e)
	}
	r, err := New(routed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, ensembles, direct
}

// TestRoutingDeterministic verifies the placement function is a pure
// function of (path, shard count): two independent routers agree on
// every decision, and all children of one directory map to one shard.
func TestRoutingDeterministic(t *testing.T) {
	mk := func() *Router {
		sessions := make([]coord.Client, 4)
		for i := range sessions {
			sessions[i] = (*coord.Session)(nil) // routing never dereferences
		}
		r, err := New(sessions)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := mk(), mk()
	dirs := []string{"/", "/dufs", "/dufs/a", "/dufs/a/b", "/dufs/deep/er/still"}
	spread := map[int]bool{}
	for _, dir := range dirs {
		want := -1
		for i := 0; i < 32; i++ {
			p := fmt.Sprintf("%s/child%d", dir, i)
			if dir == "/" {
				p = fmt.Sprintf("/child%d", i)
			}
			got := a.ShardFor(p)
			if got != b.ShardFor(p) {
				t.Fatalf("routers disagree on %s: %d vs %d", p, got, b.ShardFor(p))
			}
			if want == -1 {
				want = got
			} else if got != want {
				t.Fatalf("children of %s split across shards %d and %d", dir, want, got)
			}
		}
		spread[a.ShardFor(dir+"/x")] = true
	}
	if len(spread) < 2 {
		t.Fatalf("all %d test directories hashed to one shard; ring is not spreading", len(dirs))
	}
}

// TestChildrenColocation creates a directory tree through a 4-shard
// router and verifies (a) the API behaves like a single ensemble and
// (b) every child znode physically lives on exactly the one shard the
// ring picked — the property that keeps Children a single-shard call.
func TestChildrenColocation(t *testing.T) {
	r, _, direct := startSharded(t, 4, 1)

	if _, err := r.Create("/app", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	dirs := []string{"/app/logs", "/app/data", "/app/tmp"}
	for _, dir := range dirs {
		if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := r.Create(fmt.Sprintf("%s/f%d", dir, i), []byte("x"), znode.ModePersistent); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, dir := range dirs {
		kids, err := r.Children(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) != 5 {
			t.Fatalf("Children(%s) = %v, want 5 entries", dir, kids)
		}
		home := r.ShardFor(dir + "/f0")
		for i := 0; i < 5; i++ {
			p := fmt.Sprintf("%s/f%d", dir, i)
			if got := r.ShardFor(p); got != home {
				t.Fatalf("%s routed to shard %d, sibling to %d", p, got, home)
			}
			for s, sess := range direct {
				_, ok, err := sess.Exists(p)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (s == home) {
					t.Fatalf("%s on shard %d: exists=%v, want %v", p, s, ok, s == home)
				}
			}
		}
	}

	// An empty directory with no stub on its children shard reads as
	// empty, not absent.
	if _, err := r.Create("/app/empty", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	kids, err := r.Children("/app/empty")
	if err != nil || len(kids) != 0 {
		t.Fatalf("Children(empty) = %v, %v; want empty, nil", kids, err)
	}
}

// TestCrossShardDelete verifies the router's two-shard delete: a
// directory with children on another shard refuses to die, then
// deletes cleanly (authoritative copy AND stub) once emptied.
func TestCrossShardDelete(t *testing.T) {
	r, _, direct := startSharded(t, 4, 1)
	// Find a directory whose children live on a different shard than
	// the directory entry itself, so both code paths run.
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/d%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	file := dir + "/f"
	if _, err := r.Create(file, []byte("x"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(dir, -1); err != coord.ErrNotEmpty {
		t.Fatalf("delete of non-empty dir: got %v, want ErrNotEmpty", err)
	}
	if err := r.Delete(file, -1); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(dir, -1); err != nil {
		t.Fatal(err)
	}
	for s, sess := range direct {
		if _, ok, _ := sess.Exists(dir); ok {
			t.Fatalf("shard %d still holds %s after delete", s, dir)
		}
	}
	if _, ok, err := r.Exists(dir); err != nil || ok {
		t.Fatalf("Exists(%s) after delete = %v, %v", dir, ok, err)
	}
}

// TestRouterWatches verifies a data watch set through the router fires
// on the shard that owns the path and surfaces through the merged
// PollEvents stream.
func TestRouterWatches(t *testing.T) {
	r, _, _ := startSharded(t, 2, 1)
	if _, err := r.Create("/w", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("/w/node", []byte("v1"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.GetW("/w/node"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Set("/w/node", []byte("v2"), -1); err != nil {
		t.Fatal(err)
	}
	evs, err := r.WaitEvent(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Path != "/w/node" {
		t.Fatalf("expected data event for /w/node, got %+v", evs)
	}
}

// TestChildrenWatchOnStublessDirectory covers the cache-coherence
// corner: a child watch on a directory that exists authoritatively
// but has no stub yet on its children shard must still be a REAL
// watch — the first child create has to fire it.
func TestChildrenWatchOnStublessDirectory(t *testing.T) {
	r, _, _ := startSharded(t, 4, 1)
	// A directory whose entry and children live on different shards,
	// so no stub exists until something forces one.
	var dir string
	for i := 0; ; i++ {
		cand := fmt.Sprintf("/wd%d", i)
		if r.ShardFor(cand) != r.shardForChildren(cand) {
			dir = cand
			break
		}
	}
	if _, err := r.Create(dir, []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	kids, err := r.ChildrenW(dir)
	if err != nil || len(kids) != 0 {
		t.Fatalf("ChildrenW(stubless) = %v, %v; want empty, nil", kids, err)
	}
	if _, err := r.Create(dir+"/first", []byte("x"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	evs, err := r.WaitEvent(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range evs {
		if ev.Path == dir && ev.Type == coord.EventChildrenChanged {
			found = true
		}
	}
	if !found {
		t.Fatalf("child watch never fired; events: %+v", evs)
	}
}

// TestSyncBarrierAcrossShards verifies Sync makes another router's
// committed writes visible whichever shard they landed on.
func TestSyncBarrierAcrossShards(t *testing.T) {
	r1, ensembles, _ := startSharded(t, 3, 1)
	var clients []coord.Client
	for _, e := range ensembles {
		s, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, s)
	}
	r2, err := New(clients)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()

	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/sync%d", i)
		if _, err := r1.Create(p, []byte("x"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		if err := r2.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := r2.Exists(p); err != nil || !ok {
			t.Fatalf("after sync, %s invisible to r2: ok=%v err=%v", p, ok, err)
		}
	}
}

// TestSingleShardLeaderFailover kills the leader of one shard's
// 3-server ensemble and verifies operations routed to that shard
// fail over within the session retry budget while other shards are
// untouched — the blast radius the sharded design promises.
func TestSingleShardLeaderFailover(t *testing.T) {
	r, ensembles, _ := startSharded(t, 2, 3)
	if _, err := r.Create("/fo", []byte("d"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	victimShard := r.shardForChildren("/fo")
	leader := ensembles[victimShard].Leader()
	if leader == nil {
		t.Fatal("shard has no leader")
	}
	leader.Stop()
	if err := ensembles[victimShard].WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Create(fmt.Sprintf("/fo/f%d", i), []byte("x"), znode.ModePersistent); err != nil {
			t.Fatalf("create after failover: %v", err)
		}
	}
	kids, err := r.Children("/fo")
	if err != nil || len(kids) != 10 {
		t.Fatalf("Children after failover = %v, %v; want 10 entries", kids, err)
	}
}

// TestStatusAggregates verifies Status sums znode counts across
// shards.
func TestStatusAggregates(t *testing.T) {
	r, _, direct := startSharded(t, 3, 1)
	for i := 0; i < 9; i++ {
		if _, err := r.Create(fmt.Sprintf("/s%d", i), nil, znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	st, err := r.Status()
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for _, sess := range direct {
		s, err := sess.Status()
		if err != nil {
			t.Fatal(err)
		}
		want += s.Znodes
	}
	if st.Znodes != want {
		t.Fatalf("aggregate Znodes = %d, want %d", st.Znodes, want)
	}
}
