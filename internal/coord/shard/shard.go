// Package shard partitions the coordination-service namespace across
// N independent ensembles and presents them as one coord.Client.
//
// The paper answers its title question with a single ZooKeeper-style
// ensemble, which caps metadata write throughput at one ZAB quorum
// (§IV-D, Fig 7a). The next scaling lever — the one HopsFS and
// ChubaoFS take in related work — is to run several ensembles and
// partition the namespace between them. Router is the client-side
// realisation of that idea: no server knows it is part of a sharded
// deployment; all routing intelligence lives in the client, in keeping
// with DUFS's stateless-client design (§IV-I).
//
// # Routing rule
//
// A znode lives on the shard selected by consistent-hashing its
// PARENT-DIRECTORY path on a placement.Ring (the same vnode ring used
// for FID→back-end placement, §IV-F/§VII):
//
//	shard(p) = ring.LocateKey(parent(p))
//
// Hashing the parent rather than the path itself means every child of
// one directory lands on the same shard, so Children and sequential
// creates remain single-shard operations and per-directory ordering is
// preserved. Distinct directories spread across shards, which is where
// the aggregate write throughput comes from (BenchmarkShardScaling).
//
// # Ancestor stubs
//
// The children of directory D live on shard(D), but D's own
// authoritative znode lives on shard(parent(D)) — usually a different
// ensemble. Each shard's state machine still requires a parent node
// before it accepts a child, so the Router lazily materialises the
// ancestor chain on the child's shard ("stubs", copies of the
// authoritative data) the first time a create lands there. Stubs are
// never read: Get/Set/Exists always route to the authoritative copy.
// See DESIGN.md §7 for the full protocol, including the delete path
// and its documented races.
package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/placement"
)

// Router fans one coord.Client API out over N ensembles. It is safe
// for concurrent use if and only if the underlying sessions are (both
// implementations in this repository are).
type Router struct {
	sessions []coord.Client

	// table is the epoch-versioned placement map (ring + migration
	// overrides). It starts as the pure function of the shard count and
	// is replaced wholesale — never mutated — when RefreshPlacement
	// reads a newer epoch from the placement znode, so routing reads
	// are a single atomic load.
	table atomic.Pointer[placement.Table]

	// Event fan-in (see WaitEvents): one forwarder per shard keeps a
	// long-poll parked on its ensemble and pushes fired watches into
	// evbuf; consumers block on evnotify instead of sweeping N shards
	// on a timer.
	evmu       sync.Mutex
	evbuf      []coord.Event
	everr      error // pending stream error (shard failover: watches lost)
	evnotify   chan struct{}
	streaming  bool
	streamStop context.CancelFunc
	streamOnce sync.Once
}

// New builds a Router over one session per ensemble. The epoch-0
// table uses placement.DefaultReplicas virtual nodes per shard, so
// initial routing is a pure function of (path, len(sessions)): every
// client with the same shard count agrees on every placement decision
// with no coordination. Live migrations later publish higher-epoch
// tables through the placement znode; clients learn of them lazily via
// the moved-partition redirect (see chase).
func New(sessions []coord.Client) (*Router, error) {
	if len(sessions) == 0 {
		return nil, errors.New("shard: need at least one session")
	}
	tbl, err := placement.NewTable(len(sessions))
	if err != nil {
		return nil, err
	}
	r := &Router{
		sessions: append([]coord.Client(nil), sessions...),
		evnotify: make(chan struct{}, 1),
	}
	r.table.Store(tbl)
	return r, nil
}

// Shards returns the number of ensembles behind the router.
func (r *Router) Shards() int { return len(r.sessions) }

// placementPinned reports whether path lies in the placement subtree
// (/__placement), which is pinned to shard 0 rather than hash-routed:
// the table that would route it is the very thing stored there.
func placementPinned(path string) bool {
	return path == coord.PlacementPrefix ||
		strings.HasPrefix(path, coord.PlacementPrefix+"/")
}

// clampShard folds a table-selected index onto a live session. The
// indexes only diverge if a published table names more shards than
// this router has sessions for (a half-deployed scale-out); folding
// keeps routing total rather than panicking.
func (r *Router) clampShard(idx int) int {
	if idx >= 0 && idx < len(r.sessions) {
		return idx
	}
	return ((idx % len(r.sessions)) + len(r.sessions)) % len(r.sessions)
}

// ShardFor returns the shard index that owns the znode at path — the
// consistent hash of its parent directory under the current placement
// table. Exposed for tests and tools (dufsctl's status command).
func (r *Router) ShardFor(path string) int {
	if placementPinned(path) {
		return 0
	}
	parent := "/"
	if path != "/" {
		parent, _ = znode.SplitPath(path)
	}
	return r.clampShard(r.table.Load().Locate(parent))
}

// shardForChildren returns the shard holding path's children: they
// hash by THEIR parent, which is path itself.
func (r *Router) shardForChildren(path string) int {
	if placementPinned(path) {
		return 0
	}
	return r.clampShard(r.table.Load().Locate(path))
}

// owner returns the session holding path's authoritative znode.
func (r *Router) owner(path string) coord.Client {
	return r.sessions[r.ShardFor(path)]
}

// PlacementEpoch returns the epoch of the placement table the router
// is currently routing with.
func (r *Router) PlacementEpoch() uint64 { return r.table.Load().Epoch() }

// PlacementTable returns the router's current placement table (tables
// are immutable, so sharing the pointer is safe).
func (r *Router) PlacementTable() *placement.Table { return r.table.Load() }

// RefreshPlacement re-reads the published placement table from the
// placement znode (pinned to shard 0) and installs it if its epoch is
// newer than the table currently routing. A missing znode is not an
// error: no migration has ever run, the epoch-0 table stands.
func (r *Router) RefreshPlacement(ctx context.Context) error {
	data, _, err := r.sessions[0].GetCtx(ctx, coord.PlacementTablePath)
	if errors.Is(err, coord.ErrNoNode) {
		return nil
	}
	if err != nil {
		return err
	}
	tbl, err := placement.DecodeTable(data)
	if err != nil {
		return fmt.Errorf("shard: bad placement table: %w", err)
	}
	for {
		cur := r.table.Load()
		if tbl.Epoch() <= cur.Epoch() {
			return nil
		}
		if r.table.CompareAndSwap(cur, tbl) {
			return nil
		}
	}
}

// Redirect-chase tuning. A fenced range bounces writes for the length
// of the delta ship (milliseconds in practice), so fence retries are
// patient; moved redirects resolve after one table refresh, so the hop
// cap exists only to break routing loops from a torn table.
const (
	maxRedirectHops = 8
	fenceRetryDelay = 3 * time.Millisecond
	maxFenceWait    = 15 * time.Second
	epochChaseTries = 500
	epochChaseDelay = 2 * time.Millisecond
)

// chase runs fn — which must re-resolve its target shard from the
// router's table on every call — until it returns something other than
// a migration bounce. ErrFenced (transient: the range's delta is
// shipping) retries the same routing after a short sleep; it resolves
// to either success (migration aborted, fence lifted) or a MovedError
// (ownership flipped). A MovedError (permanent: the range lives
// elsewhere now) refreshes the table to at least the redirect's epoch
// and re-resolves. Acked writes are never lost to a migration: a write
// either committed on the old owner before the fence, or bounced and
// commits on the new owner here.
func (r *Router) chase(ctx context.Context, fn func() error) error {
	hops := 0
	var fenceDeadline time.Time
	for {
		err := fn()
		var mv *coord.MovedError
		switch {
		case errors.As(err, &mv):
			hops++
			if hops > maxRedirectHops {
				return err
			}
			if cerr := r.chaseEpoch(ctx, mv.Epoch); cerr != nil {
				return err
			}
		case errors.Is(err, coord.ErrFenced):
			if fenceDeadline.IsZero() {
				fenceDeadline = time.Now().Add(maxFenceWait)
			} else if time.Now().After(fenceDeadline) {
				return err
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(fenceRetryDelay):
			}
		default:
			return err
		}
	}
}

// chaseEpoch refreshes the placement table until its epoch reaches at
// least epoch. The window where a shard already answers MovedError but
// the table CAS has not landed yet is real (the flip precedes the
// publish), so a refresh that comes back stale retries briefly.
func (r *Router) chaseEpoch(ctx context.Context, epoch uint64) error {
	for i := 0; ; i++ {
		if r.table.Load().Epoch() >= epoch {
			return nil
		}
		if err := r.RefreshPlacement(ctx); err != nil && ctx.Err() != nil {
			return err
		}
		if r.table.Load().Epoch() >= epoch {
			return nil
		}
		if i >= epochChaseTries {
			return fmt.Errorf("shard: placement table stuck below epoch %d", epoch)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(epochChaseDelay):
		}
	}
}

// ID implements coord.Client. Shard 0's ensemble mints the identifier;
// it is unique among all routers sharing that ensemble, which is what
// FID generation needs.
func (r *Router) ID() uint64 { return r.sessions[0].ID() }

// eachShard runs fn once per shard, concurrently, and returns the
// per-shard errors as a parallel slice. It remains the fan-out
// primitive for the rare control-plane operations with no async form
// (Close, Status, the pre-stream PollEvents sweep); the hot fan-outs
// moved onto the async layer — Sync submits Begin(OpSync) futures and
// event fan-in rides the WaitEvents stream. Multi deliberately does
// NOT use it — split batches execute per-shard sub-transactions
// sequentially in first-appearance order (DESIGN.md §8.2), and that
// ordering contract is load-bearing for callers that sequence
// dependent ops across shards.
func (r *Router) eachShard(fn func(i int, s coord.Client) error) []error {
	errs := make([]error, len(r.sessions))
	if len(r.sessions) == 1 {
		errs[0] = fn(0, r.sessions[0])
		return errs
	}
	var wg sync.WaitGroup
	for i, s := range r.sessions {
		wg.Add(1)
		go func(i int, s coord.Client) {
			defer wg.Done()
			errs[i] = fn(i, s)
		}(i, s)
	}
	wg.Wait()
	return errs
}

// Close implements coord.Client: it stops the event fan-in stream and
// closes every per-shard session in parallel, expiring each shard's
// ephemerals, and returns the first error.
func (r *Router) Close() error {
	r.evmu.Lock()
	if r.streamStop != nil {
		r.streamStop()
	}
	r.evmu.Unlock()
	for _, err := range r.eachShard(func(_ int, s coord.Client) error { return s.Close() }) {
		if err != nil {
			return err
		}
	}
	return nil
}

// CreateCtx implements coord.Client. The node is created on its
// authoritative shard; if that shard is missing the ancestor chain
// (ErrNoParent) the chain is materialised as stubs and the create is
// retried once.
func (r *Router) CreateCtx(ctx context.Context, path string, data []byte, mode znode.CreateMode) (string, error) {
	var created string
	err := r.chase(ctx, func() error {
		s := r.owner(path)
		var err error
		created, err = s.CreateCtx(ctx, path, data, mode)
		if !errors.Is(err, coord.ErrNoParent) {
			return err
		}
		if serr := r.ensureAncestors(ctx, s, path); serr != nil {
			created = ""
			return serr
		}
		created, err = s.CreateCtx(ctx, path, data, mode)
		return err
	})
	return created, err
}

// Create implements coord.Client with the background context.
func (r *Router) Create(path string, data []byte, mode znode.CreateMode) (string, error) {
	return r.CreateCtx(context.Background(), path, data, mode)
}

// ensureAncestors copies the authoritative data of each missing
// ancestor of path onto session s, root-down. If an ancestor does not
// exist anywhere the original ErrNoParent is surfaced, exactly as a
// single ensemble would.
func (r *Router) ensureAncestors(ctx context.Context, s coord.Client, path string) error {
	parent, _ := znode.SplitPath(path)
	return r.ensureChain(ctx, s, parent)
}

// ensureChain materialises path and its ancestors on session s as
// stubs (copies of the authoritative data), root-down.
func (r *Router) ensureChain(ctx context.Context, s coord.Client, path string) error {
	var chain []string
	for p := path; p != "/"; {
		chain = append(chain, p)
		p, _ = znode.SplitPath(p)
	}
	// chain is leaf-first; walk it root-down.
	for i := len(chain) - 1; i >= 0; i-- {
		p := chain[i]
		if _, ok, err := s.ExistsCtx(ctx, p); err != nil {
			return err
		} else if ok {
			continue
		}
		data, _, err := r.owner(p).GetCtx(ctx, p)
		if err != nil {
			if errors.Is(err, coord.ErrNoNode) {
				return coord.ErrNoParent
			}
			return err
		}
		if _, err := s.CreateCtx(ctx, p, data, znode.ModePersistent); err != nil && !errors.Is(err, coord.ErrNodeExists) {
			return err
		}
	}
	return nil
}

// GetCtx implements coord.Client, reading the authoritative copy.
func (r *Router) GetCtx(ctx context.Context, path string) ([]byte, znode.Stat, error) {
	var data []byte
	var stat znode.Stat
	err := r.chase(ctx, func() error {
		var err error
		data, stat, err = r.owner(path).GetCtx(ctx, path)
		return err
	})
	return data, stat, err
}

// Get implements coord.Client with the background context.
func (r *Router) Get(path string) ([]byte, znode.Stat, error) {
	return r.GetCtx(context.Background(), path)
}

// SetCtx implements coord.Client, writing the authoritative copy.
func (r *Router) SetCtx(ctx context.Context, path string, data []byte, version int32) (znode.Stat, error) {
	var stat znode.Stat
	err := r.chase(ctx, func() error {
		var err error
		stat, err = r.owner(path).SetCtx(ctx, path, data, version)
		return err
	})
	return stat, err
}

// Set implements coord.Client with the background context.
func (r *Router) Set(path string, data []byte, version int32) (znode.Stat, error) {
	return r.SetCtx(context.Background(), path, data, version)
}

// ExistsCtx implements coord.Client against the authoritative copy.
func (r *Router) ExistsCtx(ctx context.Context, path string) (znode.Stat, bool, error) {
	var stat znode.Stat
	var ok bool
	err := r.chase(ctx, func() error {
		var err error
		stat, ok, err = r.owner(path).ExistsCtx(ctx, path)
		return err
	})
	return stat, ok, err
}

// Exists implements coord.Client with the background context.
func (r *Router) Exists(path string) (znode.Stat, bool, error) {
	return r.ExistsCtx(context.Background(), path)
}

// DeleteCtx implements coord.Client. A single ensemble refuses to
// delete a node with children; with the children on a different shard
// than the node itself the router has to enforce that check
// explicitly:
//
//  1. the children shard is consulted — any child means ErrNotEmpty;
//  2. the authoritative copy is deleted (honouring version);
//  3. the stub on the children shard, if any, is removed best-effort.
//
// A create racing between steps 1 and 2 can slip in, the same
// lost-update window the paper accepts for rename (§IV-A); DESIGN.md
// §7.3 discusses why DUFS tolerates it.
func (r *Router) DeleteCtx(ctx context.Context, path string, version int32) error {
	return r.chase(ctx, func() error {
		owner := r.ShardFor(path)
		kidShard := r.shardForChildren(path)
		if kidShard != owner {
			kids, err := r.sessions[kidShard].ChildrenCtx(ctx, path)
			if err == nil && len(kids) > 0 {
				return coord.ErrNotEmpty
			}
			if err != nil && !errors.Is(err, coord.ErrNoNode) {
				return err
			}
		}
		if err := r.sessions[owner].DeleteCtx(ctx, path, version); err != nil {
			return err
		}
		if kidShard != owner {
			if err := r.sessions[kidShard].DeleteCtx(ctx, path, -1); err != nil && !errors.Is(err, coord.ErrNoNode) && !errors.Is(err, coord.ErrNotEmpty) {
				return err
			}
		}
		return nil
	})
}

// Delete implements coord.Client with the background context.
func (r *Router) Delete(path string, version int32) error {
	return r.DeleteCtx(context.Background(), path, version)
}

// Atomic implements coord.Client: a Multi over exactly these paths is
// atomic iff every path's authoritative znode lives on one shard.
// Callers that need all-or-nothing semantics (DUFS's same-directory
// rename) consult this before building a batch and fall back to an
// intent-logged protocol when it reports false.
func (r *Router) Atomic(paths ...string) bool {
	if len(paths) <= 1 {
		return true
	}
	shard := r.ShardFor(paths[0])
	for _, p := range paths[1:] {
		if r.ShardFor(p) != shard {
			return false
		}
	}
	return true
}

// MultiCtx implements coord.Client. When every op routes to one shard
// the batch is forwarded whole and is exactly as atomic as a single
// ensemble's multi. Otherwise the batch SPLITS: ops are grouped by
// shard (preserving their relative order) and the per-shard
// sub-transactions execute sequentially, in order of each shard's
// first appearance in the batch. Each sub-transaction is atomic on its
// shard, but the split batch as a whole is NOT: when sub-transaction k
// fails, sub-transactions before it stay committed, k's ops report
// their own outcome, and the ops of every later sub-transaction report
// ErrRolledBack without being attempted. Callers needing true
// atomicity must check Atomic first (DESIGN.md §8.2).
func (r *Router) MultiCtx(ctx context.Context, ops []coord.Op) ([]coord.OpResult, error) {
	if len(ops) == 0 {
		return nil, errors.New("shard: empty multi")
	}
	return r.dispatchMulti(ctx, ops, 0)
}

// dispatchMulti routes a batch under the current placement table:
// whole to one shard when every op co-routes, split into per-shard
// sub-transactions otherwise. depth counts migration-induced
// re-dispatches (see multiOnShard).
func (r *Router) dispatchMulti(ctx context.Context, ops []coord.Op, depth int) ([]coord.OpResult, error) {
	shard := r.ShardFor(ops[0].Path)
	split := false
	for _, op := range ops[1:] {
		if r.ShardFor(op.Path) != shard {
			split = true
			break
		}
	}
	if !split {
		return r.multiOnShard(ctx, shard, ops, depth)
	}

	// Group by shard, preserving relative op order and first-appearance
	// execution order.
	type group struct {
		shard   int
		ops     []coord.Op
		indices []int
	}
	var groups []group
	byShard := make(map[int]int)
	for i, op := range ops {
		s := r.ShardFor(op.Path)
		gi, ok := byShard[s]
		if !ok {
			gi = len(groups)
			byShard[s] = gi
			groups = append(groups, group{shard: s})
		}
		groups[gi].ops = append(groups[gi].ops, op)
		groups[gi].indices = append(groups[gi].indices, i)
	}
	results := make([]coord.OpResult, len(ops))
	for i := range results {
		results[i].Err = coord.ErrRolledBack
	}
	for _, g := range groups {
		sub, err := r.multiOnShard(ctx, g.shard, g.ops, depth)
		for j, idx := range g.indices {
			if j < len(sub) {
				results[idx] = sub[j]
			}
		}
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// multiOnShard runs one sub-transaction, chasing migration bounces. A
// bounce refuses the whole sub-transaction before any op applies, so a
// retry never double-applies. If a redirect's table refresh reveals the
// group no longer co-routes (the migration moved some of its
// directories), the group is re-dispatched under the new table: each
// piece stays atomic on its shard, the group as a whole was only ever
// as atomic as a split batch (DESIGN.md §8.2).
func (r *Router) multiOnShard(ctx context.Context, shard int, ops []coord.Op, depth int) ([]coord.OpResult, error) {
	var results []coord.OpResult
	err := r.chase(ctx, func() error {
		cur := r.ShardFor(ops[0].Path)
		for _, op := range ops[1:] {
			if r.ShardFor(op.Path) != cur {
				cur = -1
				break
			}
		}
		var err error
		if cur == -1 {
			if depth >= 2 {
				return errors.New("shard: batch re-split too many times during migration")
			}
			results, err = r.dispatchMulti(ctx, ops, depth+1)
			return err
		}
		results, err = r.execMultiOnShard(ctx, cur, ops)
		return err
	})
	return results, err
}

// Multi implements coord.Client with the background context.
func (r *Router) Multi(ops []coord.Op) ([]coord.OpResult, error) {
	return r.MultiCtx(context.Background(), ops)
}

// execMultiOnShard runs one atomic sub-transaction on a single shard.
// It carries over every per-op responsibility the router's single-op
// methods have: missing ancestor stubs are materialised for create
// ops (the ErrNoParent recovery Create performs), and delete ops get
// Router.Delete's cross-shard treatment — a node whose children live
// on a DIFFERENT shard is checked for children there first (the
// executing shard's state machine cannot see them), and its stub on
// the children shard is removed after commit so a deleted directory
// does not stay listable as an empty ghost.
func (r *Router) execMultiOnShard(ctx context.Context, shard int, ops []coord.Op) ([]coord.OpResult, error) {
	// stubbed marks delete ops whose pre-check found a node on their
	// children shard — only those need post-commit stub removal; a
	// pre-check that came back ErrNoNode (every file delete, and most
	// directory deletes) costs no second RPC. The pre-checks are
	// independent reads on foreign shards, so they fan out in parallel
	// and are then evaluated in op order (the first failing op aborts
	// the batch deterministically, exactly as the sequential walk did).
	type precheck struct {
		op   int
		kids []string
		err  error
	}
	var checks []*precheck
	for i, op := range ops {
		if op.Kind != coord.OpDelete || r.shardForChildren(op.Path) == shard {
			continue
		}
		checks = append(checks, &precheck{op: i})
	}
	if len(checks) > 0 {
		var wg sync.WaitGroup
		for _, c := range checks {
			wg.Add(1)
			go func(c *precheck) {
				defer wg.Done()
				op := ops[c.op]
				c.kids, c.err = r.sessions[r.shardForChildren(op.Path)].ChildrenCtx(ctx, op.Path)
			}(c)
		}
		wg.Wait()
	}
	var stubbed []int
	for _, c := range checks {
		if c.err != nil && !errors.Is(c.err, coord.ErrNoNode) {
			return abortedResults(len(ops), c.op, c.err), c.err
		}
		if c.err == nil {
			if len(c.kids) > 0 {
				// Same race window as Router.Delete steps 1-2 (DESIGN.md
				// §7.3); the batch is refused before anything executes.
				return abortedResults(len(ops), c.op, coord.ErrNotEmpty), coord.ErrNotEmpty
			}
			stubbed = append(stubbed, c.op)
		}
	}
	s := r.sessions[shard]
	results, err := s.MultiCtx(ctx, ops)
	if errors.Is(err, coord.ErrNoParent) {
		for _, op := range ops {
			if op.Kind == coord.OpCreate {
				if serr := r.ensureAncestors(ctx, s, op.Path); serr != nil {
					return results, err
				}
			}
		}
		results, err = s.MultiCtx(ctx, ops)
	}
	if err == nil {
		// Stub removal is best-effort, after the fact: the transaction
		// has committed, so a failed cleanup (shard down) cannot be
		// surfaced as a batch failure. A leaked stub is the same
		// accepted window as Router.Delete's step 3 (DESIGN.md §7.3).
		for _, i := range stubbed {
			op := ops[i]
			_ = r.sessions[r.shardForChildren(op.Path)].DeleteCtx(ctx, op.Path, -1)
		}
	}
	return results, err
}

// abortedResults builds the result vector of a batch refused before
// execution: the failing op carries err, every other op ErrRolledBack.
func abortedResults(n, failing int, err error) []coord.OpResult {
	out := make([]coord.OpResult, n)
	for i := range out {
		out[i].Err = coord.ErrRolledBack
	}
	out[failing].Err = err
	return out
}

// ChildrenDataCtx implements coord.Client as a single call on the
// children shard, like Children. A directory that exists but has never
// hosted a child on that shard has no stub there; the authoritative
// copy disambiguates "empty" from "does not exist" and supplies the
// "." entry. On a sharded deployment the "." entry of a stubbed
// directory is the stub's copy of the data, which can lag the
// authoritative copy after a Set — callers reading immutable fields
// from it (DUFS's entry kind) are unaffected; callers needing the
// latest data must Get the path itself.
func (r *Router) ChildrenDataCtx(ctx context.Context, path string) ([]coord.ChildEntry, error) {
	var entries []coord.ChildEntry
	err := r.chase(ctx, func() error {
		var err error
		entries, err = r.sessions[r.shardForChildren(path)].ChildrenDataCtx(ctx, path)
		if errors.Is(err, coord.ErrNoNode) {
			if data, stat, gerr := r.owner(path).GetCtx(ctx, path); gerr == nil {
				entries = []coord.ChildEntry{{Name: ".", Data: data, Stat: stat}}
				return nil
			}
		}
		return err
	})
	return entries, err
}

// ChildrenData implements coord.Client with the background context.
func (r *Router) ChildrenData(path string) ([]coord.ChildEntry, error) {
	return r.ChildrenDataCtx(context.Background(), path)
}

// ChildrenCtx implements coord.Client as a single-shard call on the
// children shard. A directory that exists but has never hosted a
// child on that shard has no stub there; the authoritative copy
// disambiguates "empty" from "does not exist".
func (r *Router) ChildrenCtx(ctx context.Context, path string) ([]string, error) {
	var kids []string
	err := r.chase(ctx, func() error {
		var err error
		kids, err = r.sessions[r.shardForChildren(path)].ChildrenCtx(ctx, path)
		if errors.Is(err, coord.ErrNoNode) {
			if _, ok, eerr := r.ExistsCtx(ctx, path); eerr == nil && ok {
				kids = nil
				return nil
			}
		}
		return err
	})
	return kids, err
}

// Children implements coord.Client with the background context.
func (r *Router) Children(path string) ([]string, error) {
	return r.ChildrenCtx(context.Background(), path)
}

// GetW implements coord.Client; the watch registers on the
// authoritative shard, where every mutation of the node lands.
func (r *Router) GetW(path string) ([]byte, znode.Stat, error) {
	var data []byte
	var stat znode.Stat
	err := r.chase(context.Background(), func() error {
		var err error
		data, stat, err = r.owner(path).GetW(path)
		return err
	})
	return data, stat, err
}

// ExistsW implements coord.Client on the authoritative shard.
func (r *Router) ExistsW(path string) (znode.Stat, bool, error) {
	var stat znode.Stat
	var ok bool
	err := r.chase(context.Background(), func() error {
		var err error
		stat, ok, err = r.owner(path).ExistsW(path)
		return err
	})
	return stat, ok, err
}

// ChildrenW implements coord.Client; the child watch registers on the
// children shard, where every entry add/remove lands. An existing
// directory with no stub on its children shard gets the stub
// materialised first, so the watch is real: a later first child both
// lands on and fires from that shard (client caches depend on this —
// a silently absent watch would never invalidate).
func (r *Router) ChildrenW(path string) ([]string, error) {
	var kids []string
	err := r.chase(context.Background(), func() error {
		s := r.sessions[r.shardForChildren(path)]
		var err error
		kids, err = s.ChildrenW(path)
		if !errors.Is(err, coord.ErrNoNode) {
			return err
		}
		if _, ok, eerr := r.Exists(path); eerr != nil || !ok {
			return err
		}
		if cerr := r.ensureChain(context.Background(), s, path); cerr != nil {
			kids = nil
			return cerr
		}
		kids, err = s.ChildrenW(path)
		return err
	})
	return kids, err
}

// streamWait is how long each per-shard forwarder parks one long-poll
// on its ensemble before re-parking (a liveness bound, not a poll
// interval: events release the park immediately).
const streamWait = 30 * time.Second

// startStream lazily launches the event fan-in: one forwarder per
// shard keeps a WaitEvents long-poll parked on its ensemble and pushes
// fired watches into the router's buffer. From that point the router's
// event delivery is fully push-shaped — no timer ever sweeps the
// shards — and PollEvents drains the local buffer only (the forwarders
// are the sole server-side consumers, so events are never claimed
// twice).
func (r *Router) startStream() {
	r.streamOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		r.evmu.Lock()
		r.streaming = true
		r.streamStop = cancel
		r.evmu.Unlock()
		for _, s := range r.sessions {
			go func(s coord.Client) {
				for {
					evs, err := s.WaitEvents(ctx, streamWait)
					if ctx.Err() != nil {
						return
					}
					if len(evs) > 0 {
						r.pushEvents(evs)
					}
					if err != nil {
						// Shard unreachable (failover in progress): the
						// watches registered on that server — and any
						// undelivered events — died with it. Surface
						// the error to consumers (a single Session's
						// WaitEvents does the same), so caches drop and
						// re-register instead of trusting dead watches;
						// then back off briefly and re-park on whatever
						// server the session failed over to.
						r.pushError(err)
						select {
						case <-ctx.Done():
							return
						case <-time.After(20 * time.Millisecond):
						}
					}
				}
			}(s)
		}
	})
}

func (r *Router) pushEvents(evs []coord.Event) {
	r.evmu.Lock()
	r.evbuf = append(r.evbuf, evs...)
	r.evmu.Unlock()
	select {
	case r.evnotify <- struct{}{}:
	default:
	}
}

func (r *Router) pushError(err error) {
	r.evmu.Lock()
	r.everr = err
	r.evmu.Unlock()
	select {
	case r.evnotify <- struct{}{}:
	default:
	}
}

// drainBuffer returns pending events, or — only when no events are
// queued — a pending stream error. Events drain before the error so
// nothing already delivered to the router is lost; the error is
// cleared once reported.
func (r *Router) drainBuffer() ([]coord.Event, error) {
	r.evmu.Lock()
	defer r.evmu.Unlock()
	if len(r.evbuf) > 0 {
		evs := r.evbuf
		r.evbuf = nil
		return evs, nil
	}
	err := r.everr
	r.everr = nil
	return nil, err
}

// WaitEvents implements coord.Client: it blocks on the merged
// per-shard event stream until something fires, maxWait expires, or
// ctx ends. The first call starts the per-shard forwarders; event
// fan-in is push all the way from each shard's commit to this caller.
// A shard failover surfaces as an error, exactly as on a single
// session: events may have been missed, re-register watches.
func (r *Router) WaitEvents(ctx context.Context, maxWait time.Duration) ([]coord.Event, error) {
	r.startStream()
	t := time.NewTimer(maxWait)
	defer t.Stop()
	for {
		if evs, err := r.drainBuffer(); len(evs) > 0 || err != nil {
			return evs, err
		}
		select {
		case <-r.evnotify:
		case <-t.C:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// WaitEvent implements coord.Client, blocking on the merged stream.
func (r *Router) WaitEvent(timeout time.Duration) ([]coord.Event, error) {
	return r.WaitEvents(context.Background(), timeout)
}

// PollEvents implements coord.Client. Once the push stream is running
// it drains the router's local buffer (the forwarders own the
// server-side queues); before that it sweeps every shard in parallel
// and concatenates, the pull path tools use. Fired watches are
// one-shot and already consumed server-side by a successful drain, so
// events collected before one shard errors must reach the caller: an
// error is only reported when no events were drained at all, otherwise
// the events are returned and the failed shard is retried on the next
// poll.
func (r *Router) PollEvents() ([]coord.Event, error) {
	r.evmu.Lock()
	streaming := r.streaming
	r.evmu.Unlock()
	if streaming {
		return r.drainBuffer()
	}
	perShard := make([][]coord.Event, len(r.sessions))
	errs := r.eachShard(func(i int, s coord.Client) error {
		evs, err := s.PollEvents()
		perShard[i] = evs
		return err
	})
	var out []coord.Event
	for _, evs := range perShard {
		out = append(out, evs...)
	}
	if len(out) > 0 {
		return out, nil
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// SyncCtx implements coord.Client by running the barrier on every
// shard, so a subsequent read of ANY path observes all previously
// committed writes, whichever ensemble they landed on. The barriers
// are independent per-ensemble no-ops with no cross-shard ordering
// requirement, so they are submitted through the async layer — one
// goroutine-free fan-out costing one quorum round trip instead of
// Shards().
func (r *Router) SyncCtx(ctx context.Context) error {
	if len(r.sessions) == 1 {
		return r.sessions[0].SyncCtx(ctx)
	}
	futs := make([]*coord.Future, len(r.sessions))
	for i, s := range r.sessions {
		futs[i] = s.Begin(ctx, coord.Op{Kind: coord.OpSync})
	}
	var first error
	for _, f := range futs {
		if err := f.Err(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync implements coord.Client with the background context.
func (r *Router) Sync() error {
	return r.SyncCtx(context.Background())
}

// Begin implements coord.Client: the operation is routed exactly as
// its synchronous counterpart — creates get the ErrNoParent stub
// recovery, deletes the cross-shard emptiness contract, OpSync the
// all-shard barrier — and submitted through the owning session's
// pipelined connection. Set and check ops route straight to the owner
// session's native submission; the compound kinds compose their
// routing logic asynchronously via FutureOp.
func (r *Router) Begin(ctx context.Context, op coord.Op) *coord.Future {
	switch op.Kind {
	case coord.OpSet, coord.OpCheck:
		// Fast path when no migration marker is in play; a bounce falls
		// back to the chase loop so async writers survive a live
		// migration exactly like synchronous ones.
		f := r.owner(op.Path).Begin(ctx, op)
		return coord.FutureOp(func() (coord.OpResult, error) {
			res, err := f.Result()
			var mv *coord.MovedError
			if !errors.As(err, &mv) && !errors.Is(err, coord.ErrFenced) {
				return res, err
			}
			cerr := r.chase(ctx, func() error {
				var err error
				res, err = r.owner(op.Path).Begin(ctx, op).Result()
				return err
			})
			return res, cerr
		})
	case coord.OpCreate:
		return coord.FutureOp(func() (coord.OpResult, error) {
			created, err := r.CreateCtx(ctx, op.Path, op.Data, op.Mode)
			return coord.OpResult{Err: err, Created: created}, err
		})
	case coord.OpDelete:
		return coord.FutureOp(func() (coord.OpResult, error) {
			err := r.DeleteCtx(ctx, op.Path, op.Version)
			return coord.OpResult{Err: err}, err
		})
	case coord.OpSync:
		return coord.FutureOp(func() (coord.OpResult, error) {
			err := r.SyncCtx(ctx)
			return coord.OpResult{Err: err}, err
		})
	default:
		return coord.FutureOp(func() (coord.OpResult, error) {
			err := fmt.Errorf("shard: unknown async op kind %d", op.Kind)
			return coord.OpResult{Err: err}, err
		})
	}
}

// BeginMulti implements coord.Client with MultiCtx's split-batch
// contract, run asynchronously.
func (r *Router) BeginMulti(ctx context.Context, ops []coord.Op) *coord.Future {
	return coord.FutureMulti(func() ([]coord.OpResult, error) {
		return r.MultiCtx(ctx, ops)
	})
}

// BeginChildrenData implements coord.Client: a single-shard listing on
// the children shard, submitted through that session's pipeline.
func (r *Router) BeginChildrenData(ctx context.Context, path string) *coord.Future {
	// The stub-miss fallback (authoritative "." synthesis) needs
	// routing logic, so compose it asynchronously.
	return coord.FutureEntries(func() ([]coord.ChildEntry, error) {
		return r.ChildrenDataCtx(ctx, path)
	})
}

// Status implements coord.Client. Identity fields (server, leader,
// epoch) describe shard 0; Znodes is the aggregate count across all
// shards, which is the number tools actually want from a sharded
// deployment. All shards are queried in parallel.
func (r *Router) Status() (coord.Status, error) {
	sts, err := r.ShardStatus()
	if err != nil {
		return coord.Status{}, err
	}
	agg := sts[0]
	for _, st := range sts[1:] {
		agg.Znodes += st.Znodes
	}
	return agg, nil
}

// ShardStatus reports each shard's own Status, queried in parallel,
// for tools.
func (r *Router) ShardStatus() ([]coord.Status, error) {
	out := make([]coord.Status, len(r.sessions))
	errs := r.eachShard(func(i int, s coord.Client) error {
		st, err := s.Status()
		out[i] = st
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return out, nil
}

var _ coord.Client = (*Router)(nil)
