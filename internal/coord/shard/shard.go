// Package shard partitions the coordination-service namespace across
// N independent ensembles and presents them as one coord.Client.
//
// The paper answers its title question with a single ZooKeeper-style
// ensemble, which caps metadata write throughput at one ZAB quorum
// (§IV-D, Fig 7a). The next scaling lever — the one HopsFS and
// ChubaoFS take in related work — is to run several ensembles and
// partition the namespace between them. Router is the client-side
// realisation of that idea: no server knows it is part of a sharded
// deployment; all routing intelligence lives in the client, in keeping
// with DUFS's stateless-client design (§IV-I).
//
// # Routing rule
//
// A znode lives on the shard selected by consistent-hashing its
// PARENT-DIRECTORY path on a placement.Ring (the same vnode ring used
// for FID→back-end placement, §IV-F/§VII):
//
//	shard(p) = ring.LocateKey(parent(p))
//
// Hashing the parent rather than the path itself means every child of
// one directory lands on the same shard, so Children and sequential
// creates remain single-shard operations and per-directory ordering is
// preserved. Distinct directories spread across shards, which is where
// the aggregate write throughput comes from (BenchmarkShardScaling).
//
// # Ancestor stubs
//
// The children of directory D live on shard(D), but D's own
// authoritative znode lives on shard(parent(D)) — usually a different
// ensemble. Each shard's state machine still requires a parent node
// before it accepts a child, so the Router lazily materialises the
// ancestor chain on the child's shard ("stubs", copies of the
// authoritative data) the first time a create lands there. Stubs are
// never read: Get/Set/Exists always route to the authoritative copy.
// See DESIGN.md §7 for the full protocol, including the delete path
// and its documented races.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/placement"
)

// Router fans one coord.Client API out over N ensembles. It is safe
// for concurrent use if and only if the underlying sessions are (both
// implementations in this repository are).
type Router struct {
	sessions []coord.Client
	ring     *placement.Ring
}

// New builds a Router over one session per ensemble. The ring uses
// placement.DefaultReplicas virtual nodes per shard, so routing is a
// pure function of (path, len(sessions)): every client with the same
// shard count agrees on every placement decision with no coordination.
func New(sessions []coord.Client) (*Router, error) {
	if len(sessions) == 0 {
		return nil, errors.New("shard: need at least one session")
	}
	idx := make([]int, len(sessions))
	for i := range idx {
		idx[i] = i
	}
	ring, err := placement.NewRing(idx, placement.DefaultReplicas)
	if err != nil {
		return nil, err
	}
	return &Router{sessions: append([]coord.Client(nil), sessions...), ring: ring}, nil
}

// Shards returns the number of ensembles behind the router.
func (r *Router) Shards() int { return len(r.sessions) }

// ShardFor returns the shard index that owns the znode at path — the
// consistent hash of its parent directory. Exposed for tests and
// tools (dufsctl's status command).
func (r *Router) ShardFor(path string) int {
	if path == "/" {
		return r.ring.LocateKey("/")
	}
	parent, _ := znode.SplitPath(path)
	return r.ring.LocateKey(parent)
}

// shardForChildren returns the shard holding path's children: they
// hash by THEIR parent, which is path itself.
func (r *Router) shardForChildren(path string) int {
	return r.ring.LocateKey(path)
}

// owner returns the session holding path's authoritative znode.
func (r *Router) owner(path string) coord.Client {
	return r.sessions[r.ShardFor(path)]
}

// ID implements coord.Client. Shard 0's ensemble mints the identifier;
// it is unique among all routers sharing that ensemble, which is what
// FID generation needs.
func (r *Router) ID() uint64 { return r.sessions[0].ID() }

// eachShard runs fn once per shard, concurrently, and returns the
// per-shard errors as a parallel slice. It is the fan-out primitive
// for the operations with no cross-shard ordering contract (Sync,
// PollEvents, Status, Close): with group-commit leaders each shard's
// round trip is independent, so the fan-out costs one RTT rather than
// Shards() of them. Multi deliberately does NOT use it — split batches
// execute per-shard sub-transactions sequentially in first-appearance
// order (DESIGN.md §8.2), and that ordering contract is load-bearing
// for callers that sequence dependent ops across shards.
func (r *Router) eachShard(fn func(i int, s coord.Client) error) []error {
	errs := make([]error, len(r.sessions))
	if len(r.sessions) == 1 {
		errs[0] = fn(0, r.sessions[0])
		return errs
	}
	var wg sync.WaitGroup
	for i, s := range r.sessions {
		wg.Add(1)
		go func(i int, s coord.Client) {
			defer wg.Done()
			errs[i] = fn(i, s)
		}(i, s)
	}
	wg.Wait()
	return errs
}

// Close implements coord.Client: it closes every per-shard session in
// parallel, expiring each shard's ephemerals, and returns the first
// error.
func (r *Router) Close() error {
	for _, err := range r.eachShard(func(_ int, s coord.Client) error { return s.Close() }) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Create implements coord.Client. The node is created on its
// authoritative shard; if that shard is missing the ancestor chain
// (ErrNoParent) the chain is materialised as stubs and the create is
// retried once.
func (r *Router) Create(path string, data []byte, mode znode.CreateMode) (string, error) {
	s := r.owner(path)
	created, err := s.Create(path, data, mode)
	if !errors.Is(err, coord.ErrNoParent) {
		return created, err
	}
	if err := r.ensureAncestors(s, path); err != nil {
		return "", err
	}
	return s.Create(path, data, mode)
}

// ensureAncestors copies the authoritative data of each missing
// ancestor of path onto session s, root-down. If an ancestor does not
// exist anywhere the original ErrNoParent is surfaced, exactly as a
// single ensemble would.
func (r *Router) ensureAncestors(s coord.Client, path string) error {
	parent, _ := znode.SplitPath(path)
	return r.ensureChain(s, parent)
}

// ensureChain materialises path and its ancestors on session s as
// stubs (copies of the authoritative data), root-down.
func (r *Router) ensureChain(s coord.Client, path string) error {
	var chain []string
	for p := path; p != "/"; {
		chain = append(chain, p)
		p, _ = znode.SplitPath(p)
	}
	// chain is leaf-first; walk it root-down.
	for i := len(chain) - 1; i >= 0; i-- {
		p := chain[i]
		if _, ok, err := s.Exists(p); err != nil {
			return err
		} else if ok {
			continue
		}
		data, _, err := r.owner(p).Get(p)
		if err != nil {
			if errors.Is(err, coord.ErrNoNode) {
				return coord.ErrNoParent
			}
			return err
		}
		if _, err := s.Create(p, data, znode.ModePersistent); err != nil && !errors.Is(err, coord.ErrNodeExists) {
			return err
		}
	}
	return nil
}

// Get implements coord.Client, reading the authoritative copy.
func (r *Router) Get(path string) ([]byte, znode.Stat, error) {
	return r.owner(path).Get(path)
}

// Set implements coord.Client, writing the authoritative copy.
func (r *Router) Set(path string, data []byte, version int32) (znode.Stat, error) {
	return r.owner(path).Set(path, data, version)
}

// Exists implements coord.Client against the authoritative copy.
func (r *Router) Exists(path string) (znode.Stat, bool, error) {
	return r.owner(path).Exists(path)
}

// Delete implements coord.Client. A single ensemble refuses to delete
// a node with children; with the children on a different shard than
// the node itself the router has to enforce that check explicitly:
//
//  1. the children shard is consulted — any child means ErrNotEmpty;
//  2. the authoritative copy is deleted (honouring version);
//  3. the stub on the children shard, if any, is removed best-effort.
//
// A create racing between steps 1 and 2 can slip in, the same
// lost-update window the paper accepts for rename (§IV-A); DESIGN.md
// §7.3 discusses why DUFS tolerates it.
func (r *Router) Delete(path string, version int32) error {
	owner := r.ShardFor(path)
	kidShard := r.shardForChildren(path)
	if kidShard != owner {
		kids, err := r.sessions[kidShard].Children(path)
		if err == nil && len(kids) > 0 {
			return coord.ErrNotEmpty
		}
		if err != nil && !errors.Is(err, coord.ErrNoNode) {
			return err
		}
	}
	if err := r.sessions[owner].Delete(path, version); err != nil {
		return err
	}
	if kidShard != owner {
		if err := r.sessions[kidShard].Delete(path, -1); err != nil && !errors.Is(err, coord.ErrNoNode) && !errors.Is(err, coord.ErrNotEmpty) {
			return err
		}
	}
	return nil
}

// Atomic implements coord.Client: a Multi over exactly these paths is
// atomic iff every path's authoritative znode lives on one shard.
// Callers that need all-or-nothing semantics (DUFS's same-directory
// rename) consult this before building a batch and fall back to an
// intent-logged protocol when it reports false.
func (r *Router) Atomic(paths ...string) bool {
	if len(paths) <= 1 {
		return true
	}
	shard := r.ShardFor(paths[0])
	for _, p := range paths[1:] {
		if r.ShardFor(p) != shard {
			return false
		}
	}
	return true
}

// Multi implements coord.Client. When every op routes to one shard the
// batch is forwarded whole and is exactly as atomic as a single
// ensemble's multi. Otherwise the batch SPLITS: ops are grouped by
// shard (preserving their relative order) and the per-shard
// sub-transactions execute sequentially, in order of each shard's
// first appearance in the batch. Each sub-transaction is atomic on its
// shard, but the split batch as a whole is NOT: when sub-transaction k
// fails, sub-transactions before it stay committed, k's ops report
// their own outcome, and the ops of every later sub-transaction report
// ErrRolledBack without being attempted. Callers needing true
// atomicity must check Atomic first (DESIGN.md §8.2).
func (r *Router) Multi(ops []coord.Op) ([]coord.OpResult, error) {
	if len(ops) == 0 {
		return nil, errors.New("shard: empty multi")
	}
	shard := r.ShardFor(ops[0].Path)
	split := false
	for _, op := range ops[1:] {
		if r.ShardFor(op.Path) != shard {
			split = true
			break
		}
	}
	if !split {
		return r.multiOnShard(shard, ops)
	}

	// Group by shard, preserving relative op order and first-appearance
	// execution order.
	type group struct {
		shard   int
		ops     []coord.Op
		indices []int
	}
	var groups []group
	byShard := make(map[int]int)
	for i, op := range ops {
		s := r.ShardFor(op.Path)
		gi, ok := byShard[s]
		if !ok {
			gi = len(groups)
			byShard[s] = gi
			groups = append(groups, group{shard: s})
		}
		groups[gi].ops = append(groups[gi].ops, op)
		groups[gi].indices = append(groups[gi].indices, i)
	}
	results := make([]coord.OpResult, len(ops))
	for i := range results {
		results[i].Err = coord.ErrRolledBack
	}
	for _, g := range groups {
		sub, err := r.multiOnShard(g.shard, g.ops)
		for j, idx := range g.indices {
			if j < len(sub) {
				results[idx] = sub[j]
			}
		}
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// multiOnShard runs one atomic sub-transaction on a single shard. It
// carries over every per-op responsibility the router's single-op
// methods have: missing ancestor stubs are materialised for create
// ops (the ErrNoParent recovery Create performs), and delete ops get
// Router.Delete's cross-shard treatment — a node whose children live
// on a DIFFERENT shard is checked for children there first (the
// executing shard's state machine cannot see them), and its stub on
// the children shard is removed after commit so a deleted directory
// does not stay listable as an empty ghost.
func (r *Router) multiOnShard(shard int, ops []coord.Op) ([]coord.OpResult, error) {
	// stubbed marks delete ops whose pre-check found a node on their
	// children shard — only those need post-commit stub removal; a
	// pre-check that came back ErrNoNode (every file delete, and most
	// directory deletes) costs no second RPC. The pre-checks are
	// independent reads on foreign shards, so they fan out in parallel
	// and are then evaluated in op order (the first failing op aborts
	// the batch deterministically, exactly as the sequential walk did).
	type precheck struct {
		op   int
		kids []string
		err  error
	}
	var checks []*precheck
	for i, op := range ops {
		if op.Kind != coord.OpDelete || r.shardForChildren(op.Path) == shard {
			continue
		}
		checks = append(checks, &precheck{op: i})
	}
	if len(checks) > 0 {
		var wg sync.WaitGroup
		for _, c := range checks {
			wg.Add(1)
			go func(c *precheck) {
				defer wg.Done()
				op := ops[c.op]
				c.kids, c.err = r.sessions[r.shardForChildren(op.Path)].Children(op.Path)
			}(c)
		}
		wg.Wait()
	}
	var stubbed []int
	for _, c := range checks {
		if c.err != nil && !errors.Is(c.err, coord.ErrNoNode) {
			return abortedResults(len(ops), c.op, c.err), c.err
		}
		if c.err == nil {
			if len(c.kids) > 0 {
				// Same race window as Router.Delete steps 1-2 (DESIGN.md
				// §7.3); the batch is refused before anything executes.
				return abortedResults(len(ops), c.op, coord.ErrNotEmpty), coord.ErrNotEmpty
			}
			stubbed = append(stubbed, c.op)
		}
	}
	s := r.sessions[shard]
	results, err := s.Multi(ops)
	if errors.Is(err, coord.ErrNoParent) {
		for _, op := range ops {
			if op.Kind == coord.OpCreate {
				if serr := r.ensureAncestors(s, op.Path); serr != nil {
					return results, err
				}
			}
		}
		results, err = s.Multi(ops)
	}
	if err == nil {
		// Stub removal is best-effort, after the fact: the transaction
		// has committed, so a failed cleanup (shard down) cannot be
		// surfaced as a batch failure. A leaked stub is the same
		// accepted window as Router.Delete's step 3 (DESIGN.md §7.3).
		for _, i := range stubbed {
			op := ops[i]
			_ = r.sessions[r.shardForChildren(op.Path)].Delete(op.Path, -1)
		}
	}
	return results, err
}

// abortedResults builds the result vector of a batch refused before
// execution: the failing op carries err, every other op ErrRolledBack.
func abortedResults(n, failing int, err error) []coord.OpResult {
	out := make([]coord.OpResult, n)
	for i := range out {
		out[i].Err = coord.ErrRolledBack
	}
	out[failing].Err = err
	return out
}

// ChildrenData implements coord.Client as a single call on the
// children shard, like Children. A directory that exists but has never
// hosted a child on that shard has no stub there; the authoritative
// copy disambiguates "empty" from "does not exist" and supplies the
// "." entry. On a sharded deployment the "." entry of a stubbed
// directory is the stub's copy of the data, which can lag the
// authoritative copy after a Set — callers reading immutable fields
// from it (DUFS's entry kind) are unaffected; callers needing the
// latest data must Get the path itself.
func (r *Router) ChildrenData(path string) ([]coord.ChildEntry, error) {
	entries, err := r.sessions[r.shardForChildren(path)].ChildrenData(path)
	if errors.Is(err, coord.ErrNoNode) {
		if data, stat, gerr := r.owner(path).Get(path); gerr == nil {
			return []coord.ChildEntry{{Name: ".", Data: data, Stat: stat}}, nil
		}
	}
	return entries, err
}

// Children implements coord.Client as a single-shard call on the
// children shard. A directory that exists but has never hosted a
// child on that shard has no stub there; the authoritative copy
// disambiguates "empty" from "does not exist".
func (r *Router) Children(path string) ([]string, error) {
	kids, err := r.sessions[r.shardForChildren(path)].Children(path)
	if errors.Is(err, coord.ErrNoNode) {
		if _, ok, eerr := r.Exists(path); eerr == nil && ok {
			return nil, nil
		}
	}
	return kids, err
}

// GetW implements coord.Client; the watch registers on the
// authoritative shard, where every mutation of the node lands.
func (r *Router) GetW(path string) ([]byte, znode.Stat, error) {
	return r.owner(path).GetW(path)
}

// ExistsW implements coord.Client on the authoritative shard.
func (r *Router) ExistsW(path string) (znode.Stat, bool, error) {
	return r.owner(path).ExistsW(path)
}

// ChildrenW implements coord.Client; the child watch registers on the
// children shard, where every entry add/remove lands. An existing
// directory with no stub on its children shard gets the stub
// materialised first, so the watch is real: a later first child both
// lands on and fires from that shard (client caches depend on this —
// a silently absent watch would never invalidate).
func (r *Router) ChildrenW(path string) ([]string, error) {
	s := r.sessions[r.shardForChildren(path)]
	kids, err := s.ChildrenW(path)
	if !errors.Is(err, coord.ErrNoNode) {
		return kids, err
	}
	if _, ok, eerr := r.Exists(path); eerr != nil || !ok {
		return kids, err
	}
	if cerr := r.ensureChain(s, path); cerr != nil {
		return nil, cerr
	}
	return s.ChildrenW(path)
}

// PollEvents implements coord.Client by draining every shard in
// parallel and concatenating. Order between shards is arbitrary,
// matching the interface contract (only per-path order is promised,
// and one path's watches live on one shard). Fired watches are
// one-shot and already consumed server-side by a successful drain, so
// events collected before one shard errors must reach the caller: an
// error is only reported when no events were drained at all, otherwise
// the events are returned and the failed shard is retried on the next
// poll.
func (r *Router) PollEvents() ([]coord.Event, error) {
	perShard := make([][]coord.Event, len(r.sessions))
	errs := r.eachShard(func(i int, s coord.Client) error {
		evs, err := s.PollEvents()
		perShard[i] = evs
		return err
	})
	var out []coord.Event
	for _, evs := range perShard {
		out = append(out, evs...)
	}
	if len(out) > 0 {
		return out, nil
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// WaitEvent implements coord.Client, polling all shards until an
// event arrives or the timeout expires.
func (r *Router) WaitEvent(timeout time.Duration) ([]coord.Event, error) {
	deadline := time.Now().Add(timeout)
	for {
		evs, err := r.PollEvents()
		if err != nil || len(evs) > 0 {
			return evs, err
		}
		if time.Now().After(deadline) {
			return nil, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Sync implements coord.Client by running the barrier on every shard
// in parallel, so a subsequent read of ANY path observes all
// previously committed writes, whichever ensemble they landed on. The
// barriers are independent per-ensemble no-ops with no cross-shard
// ordering requirement, so the fan-out is safe and costs one quorum
// round trip instead of Shards().
func (r *Router) Sync() error {
	for _, err := range r.eachShard(func(_ int, s coord.Client) error { return s.Sync() }) {
		if err != nil {
			return err
		}
	}
	return nil
}

// Status implements coord.Client. Identity fields (server, leader,
// epoch) describe shard 0; Znodes is the aggregate count across all
// shards, which is the number tools actually want from a sharded
// deployment. All shards are queried in parallel.
func (r *Router) Status() (coord.Status, error) {
	sts, err := r.ShardStatus()
	if err != nil {
		return coord.Status{}, err
	}
	agg := sts[0]
	for _, st := range sts[1:] {
		agg.Znodes += st.Znodes
	}
	return agg, nil
}

// ShardStatus reports each shard's own Status, queried in parallel,
// for tools.
func (r *Router) ShardStatus() ([]coord.Status, error) {
	out := make([]coord.Status, len(r.sessions))
	errs := r.eachShard(func(i int, s coord.Client) error {
		st, err := s.Status()
		out[i] = st
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return out, nil
}

var _ coord.Client = (*Router)(nil)
