// Package observer implements the non-voting read tier of the
// coordination service (ZooKeeper's "observer" role). An observer
// server holds a full replica of the znode tree, kept current by
// tailing the leader's committed log over the zab observer feed, and
// answers the read half of the client protocol — Get, Exists,
// Children, ChildrenData, Stat/Status — entirely locally. Writes that
// land on an observer are proxied to the leader and acknowledged only
// after the observer's own replica has applied them, which gives every
// session read-your-writes no matter which tier serves its reads.
//
// Observers never vote, never ack proposals and never appear in
// quorum math: adding observers scales read throughput (Fig 7d's
// curve, extended past the voting ensemble) without touching write
// latency. They are diskless — a restarted observer rebuilds itself
// from a leader snapshot, exactly as it would after the leader
// truncates its log past the observer's tail position.
package observer

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/zab"
	"repro/internal/transport"
)

// Config describes one observer server.
type Config struct {
	// ID is the observer's identity in the leader's feed and its
	// status reports. Must be disjoint from the voter IDs (by
	// convention: voter IDs are small, observers start at 100).
	ID uint64
	// Voters maps the VOTING members' IDs to their peer-traffic
	// addresses — where the observer polls for committed frames and
	// forwards writes.
	Voters map[uint64]string
	// ClientAddr is where this observer accepts client sessions.
	ClientAddr string
	// Net is the transport for both planes.
	Net transport.Network
	// PollInterval is the idle tail cadence (zero = the zab default).
	PollInterval time.Duration
}

// Server is one observer replica: a local znode tree fed by the
// leader's committed log, plus the client-facing read pipeline.
type Server struct {
	cfg      Config
	state    *coord.ObserverState
	tail     *zab.Observer
	clientLn io.Closer
}

// NewServer builds and starts an observer server: the log tailer
// begins catching up (snapshot first, then streamed frames)
// immediately, and the client listener accepts sessions right away —
// early readers simply see an older, consistent prefix of the tree
// until the tail closes the gap.
func NewServer(cfg Config) (*Server, error) {
	if cfg.ClientAddr == "" {
		return nil, errors.New("observer: ClientAddr is required")
	}
	state := coord.NewObserverState()
	tail, err := zab.NewObserver(zab.ObserverConfig{
		ID:           cfg.ID,
		Peers:        cfg.Voters,
		Net:          cfg.Net,
		PollInterval: cfg.PollInterval,
	}, state.Machine())
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, state: state, tail: tail}
	tail.Start()
	ln, err := cfg.Net.Listen(cfg.ClientAddr, transport.HandlerFunc(s.handleClient))
	if err != nil {
		tail.Stop()
		return nil, fmt.Errorf("observer: client listener: %w", err)
	}
	s.clientLn = ln
	return s, nil
}

// Stop shuts the observer down. The voters don't notice beyond the
// leader evicting the silent feed entry; nothing replicated is lost.
func (s *Server) Stop() {
	if s.clientLn != nil {
		s.clientLn.Close()
	}
	s.tail.Stop()
}

// ID returns the observer's identity.
func (s *Server) ID() uint64 { return s.cfg.ID }

// LastApplied reports the replica's replication tip.
func (s *Server) LastApplied() uint64 { return s.tail.LastApplied() }

// LagTxns reports how far the replica trails the last leader commit
// horizon it saw (a conservative zxid delta).
func (s *Server) LagTxns() uint64 { return s.tail.LagTxns() }

// SnapshotInstalls counts replica rebuilds from a shipped snapshot.
func (s *Server) SnapshotInstalls() uint64 { return s.tail.SnapshotInstalls() }

// SetPaused stalls or resumes log tailing — the replication-delay
// injection hook for tests and chaos scenarios.
func (s *Server) SetPaused(p bool) { s.tail.SetPaused(p) }

// Tree-level read access for tests and memory accounting.
func (s *Server) Znodes() int64 { return s.state.Tree().Count() }

func (s *Server) info() coord.ReplicaInfo {
	return coord.ReplicaInfo{
		ID:          s.cfg.ID,
		LeaderID:    s.tail.LeaderID(),
		Epoch:       s.tail.Epoch(),
		AppliedZxid: s.tail.LastApplied(),
		LagTxns:     s.tail.LagTxns(),
	}
}

// handleClient implements the client protocol on the observer tier.
// Reads (and status) come straight off the local replica. Writes and
// session ops follow one rule: forward the whole request to the
// leader, then hold the client's ack until the local replica has
// applied the resulting transaction. That single rule is also the
// sync barrier — opSync forwards like any write, so when it returns,
// this observer's tree reflects everything committed before the call
// (ZooKeeper's sync-then-read recipe, §2.3): read-your-writes against
// the very replica the session reads from.
func (s *Server) handleClient(req []byte) ([]byte, error) {
	resp, handled, err := s.state.ServeRead(req, s.info)
	if handled {
		return resp, err
	}
	result, zxid, err := s.tail.Forward(req)
	if err != nil {
		return nil, fmt.Errorf("observer: forwarding to leader: %w", err)
	}
	if zxid != 0 {
		if err := s.tail.WaitApplied(zxid); err != nil {
			return nil, fmt.Errorf("observer: write committed as zxid %x but local apply timed out: %w", zxid, err)
		}
	}
	return result, nil
}
