package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
)

// Read routing across the replica tiers.
//
// A plain Session reads from whichever server it happens to be
// connected to. A ReadRouter makes the tier an explicit policy choice:
// spread the stat/readdir load across observers (the read-scaling
// tier), pin linearizable reads to the leader's lease (no quorum round
// trip, no stale data), or just pick the lowest-latency replica. The
// router keeps one primary session against the voters — writes,
// watches and sync barriers always use it — plus lazy per-endpoint
// sessions for reads, and it probes every endpoint's Status in the
// background so routing sees health, leadership, observer lag and RTT.

// ReadPolicy selects which replicas answer a ReadRouter's reads.
type ReadPolicy string

const (
	// ReadLeader serves reads on the leader under its read lease:
	// linearizable without a quorum round trip. When no lease read can
	// be placed (election in flight, lease expired), the router falls
	// back to a sync barrier plus a voter read — still linearizable,
	// just slower.
	ReadLeader ReadPolicy = "leader"
	// ReadObserver prefers observer replicas, failing over to voters
	// when none is healthy (or all exceed the staleness bound).
	ReadObserver ReadPolicy = "observer"
	// ReadAny round-robins reads across every healthy replica, voters
	// and observers alike.
	ReadAny ReadPolicy = "any"
	// ReadNearest picks the healthy replica with the lowest probed
	// round-trip time.
	ReadNearest ReadPolicy = "nearest"
)

// attemptTimeout bounds one read attempt against one endpoint before
// the router fails over to the next candidate; voters remain the final
// fallback, tried under the caller's own deadline. It must sit well
// under a client SLO and well over a healthy replica's service time.
const attemptTimeout = 250 * time.Millisecond

// probeInterval is the default cadence of the background Status probe.
const probeInterval = 500 * time.Millisecond

// ReadCounters tallies where a ReadRouter's reads were actually
// served, for the load generator's read-split report.
type ReadCounters struct {
	Leader   atomic.Uint64 // lease reads answered by the leader
	Voter    atomic.Uint64 // plain reads answered by a voting member
	Observer atomic.Uint64 // reads answered by an observer replica
	Failover atomic.Uint64 // attempts abandoned for the next candidate
	Fallback atomic.Uint64 // lease reads demoted to sync-barrier reads
}

// Split reports the counters as a map, ready for a JSON artifact.
func (c *ReadCounters) Split() map[string]uint64 {
	if c == nil {
		return nil
	}
	return map[string]uint64{
		"leader":   c.Leader.Load(),
		"voter":    c.Voter.Load(),
		"observer": c.Observer.Load(),
		"failover": c.Failover.Load(),
		"fallback": c.Fallback.Load(),
	}
}

// RouterConfig parameterizes NewReadRouter.
type RouterConfig struct {
	// Net is the client-plane transport.
	Net transport.Network
	// Voters lists the voting members' client addresses (required).
	Voters []string
	// Observers lists the observer tier's client addresses.
	Observers []string
	// Policy selects the read tier; empty defaults to ReadAny when
	// observers exist and voter-local reads otherwise.
	Policy ReadPolicy
	// MaxLagTxns is the staleness bound: an observer whose probed
	// replication lag exceeds it is skipped (0 = no bound). The lag is
	// a conservative zxid delta, so a bound here never admits a
	// replica that is further behind than stated.
	MaxLagTxns uint64
	// ProbeInterval overrides the background Status probe cadence.
	ProbeInterval time.Duration
	// Counters, when non-nil, receives the per-tier read tallies.
	Counters *ReadCounters
}

// endpoint is one routable replica and the router's latest knowledge
// of it.
type endpoint struct {
	addr     string
	observer bool

	mu       sync.Mutex
	sess     *Session
	probed   bool
	healthy  bool
	isLeader bool
	lagTxns  uint64
	rtt      time.Duration
}

// ReadRouter is a policy-routed read frontend over one coordination
// ensemble plus its observer tier. The embedded Session is the
// primary voter session: writes, watches, Sync and session identity
// all flow through it unchanged — only the read methods re-route.
type ReadRouter struct {
	*Session
	cfg       RouterConfig
	endpoints []*endpoint // voters first, then observers
	rr        atomic.Uint64
	stopCh    chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// NewReadRouter connects the primary voter session and starts the
// background endpoint probe.
func NewReadRouter(cfg RouterConfig) (*ReadRouter, error) {
	if len(cfg.Voters) == 0 {
		return nil, errors.New("coord: read router needs at least one voter address")
	}
	if cfg.Policy == "" {
		if len(cfg.Observers) > 0 {
			cfg.Policy = ReadAny
		} else {
			cfg.Policy = ReadNearest
		}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = probeInterval
	}
	primary, err := Connect(cfg.Net, cfg.Voters)
	if err != nil {
		return nil, err
	}
	r := &ReadRouter{Session: primary, cfg: cfg, stopCh: make(chan struct{})}
	for _, a := range cfg.Voters {
		r.endpoints = append(r.endpoints, &endpoint{addr: a})
	}
	for _, a := range cfg.Observers {
		r.endpoints = append(r.endpoints, &endpoint{addr: a, observer: true})
	}
	r.probeAll() // prime health/leadership before the first read
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// Close stops the probe loop and closes every session, the primary
// included.
func (r *ReadRouter) Close() error {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
	for _, ep := range r.endpoints {
		ep.mu.Lock()
		if ep.sess != nil {
			ep.sess.Close()
			ep.sess = nil
		}
		ep.mu.Unlock()
	}
	return r.Session.Close()
}

func (r *ReadRouter) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll refreshes every endpoint's health, leadership, lag and RTT
// with one Status round trip each.
func (r *ReadRouter) probeAll() {
	for _, ep := range r.endpoints {
		sess, err := ep.session(r.cfg.Net)
		if err != nil {
			ep.record(false, false, 0, 0)
			continue
		}
		begin := time.Now()
		st, err := sess.Status()
		if err != nil {
			ep.dropSession()
			ep.record(false, false, 0, 0)
			continue
		}
		ep.record(true, st.IsLeader, st.LagTxns, time.Since(begin))
	}
}

// session returns the endpoint's lazy read session, dialing on first
// use. Each endpoint's session has exactly one address on purpose:
// the router does its own failover, so a dead endpoint must fail the
// attempt, not silently wander to a different server.
func (ep *endpoint) session(net transport.Network) (*Session, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.sess != nil {
		return ep.sess, nil
	}
	s, err := Connect(net, []string{ep.addr})
	if err != nil {
		return nil, err
	}
	ep.sess = s
	return s, nil
}

func (ep *endpoint) dropSession() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.sess != nil {
		ep.sess.Close()
		ep.sess = nil
	}
}

func (ep *endpoint) record(healthy, leader bool, lag uint64, rtt time.Duration) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.probed = true
	ep.healthy = healthy
	ep.isLeader = leader
	ep.lagTxns = lag
	if healthy {
		ep.rtt = rtt
	}
}

func (ep *endpoint) snapshot() (probed, healthy, leader bool, lag uint64, rtt time.Duration) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.probed, ep.healthy, ep.isLeader, ep.lagTxns, ep.rtt
}

// eligible reports whether the endpoint may serve a policy read right
// now: not known-dead, and (for observers) within the staleness bound.
func (r *ReadRouter) eligible(ep *endpoint) bool {
	probed, healthy, _, lag, _ := ep.snapshot()
	if probed && !healthy {
		return false
	}
	if ep.observer && r.cfg.MaxLagTxns > 0 && lag > r.cfg.MaxLagTxns {
		return false
	}
	return true
}

// candidates orders the endpoints a spread read should try, by
// policy; voters always follow as the in-list fallback tier, and the
// primary session is the last resort after the whole list.
func (r *ReadRouter) candidates() []*endpoint {
	var preferred, fallback []*endpoint
	switch r.cfg.Policy {
	case ReadObserver:
		for _, ep := range r.endpoints {
			if ep.observer && r.eligible(ep) {
				preferred = append(preferred, ep)
			} else if !ep.observer {
				fallback = append(fallback, ep)
			}
		}
	case ReadNearest:
		for _, ep := range r.endpoints {
			if r.eligible(ep) {
				preferred = append(preferred, ep)
			}
		}
		// Stable selection sort by probed RTT (the list is tiny).
		for i := 0; i < len(preferred); i++ {
			best := i
			for j := i + 1; j < len(preferred); j++ {
				_, _, _, _, rj := preferred[j].snapshot()
				_, _, _, _, rb := preferred[best].snapshot()
				if rj < rb {
					best = j
				}
			}
			preferred[i], preferred[best] = preferred[best], preferred[i]
		}
	default: // ReadAny
		for _, ep := range r.endpoints {
			if r.eligible(ep) {
				preferred = append(preferred, ep)
			}
		}
		if n := len(preferred); n > 1 {
			off := int(r.rr.Add(1)) % n
			rotated := make([]*endpoint, 0, n)
			rotated = append(rotated, preferred[off:]...)
			rotated = append(rotated, preferred[:off]...)
			preferred = rotated
		}
	}
	return append(preferred, fallback...)
}

// readFn is one read operation bound to its arguments and result
// slots, ready to run against any session.
type readFn func(ctx context.Context, s *Session) error

// read routes one read according to the policy. plain runs the read
// against an arbitrary replica; lease runs its lease-guarded variant
// (leader policy only).
func (r *ReadRouter) read(ctx context.Context, plain, lease readFn) error {
	if r.cfg.Policy == ReadLeader {
		return r.leaderRead(ctx, plain, lease)
	}
	return r.spreadRead(ctx, plain)
}

// spreadRead walks the candidate list, giving each endpoint one
// bounded attempt, and falls back to the primary voter session under
// the caller's own deadline. The bounded attempt is what turns a
// partitioned observer into a ~attemptTimeout blip instead of a stuck
// client: the sub-context expires, the parent is still live, and the
// next candidate (eventually a voter) takes the read.
func (r *ReadRouter) spreadRead(ctx context.Context, plain readFn) error {
	var lastErr error
	for _, ep := range r.candidates() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		sess, err := ep.session(r.cfg.Net)
		if err != nil {
			lastErr = err
			ep.record(false, false, 0, 0)
			continue
		}
		attempt, cancel := context.WithTimeout(ctx, attemptTimeout)
		err = plain(attempt, sess)
		cancel()
		if err == nil {
			r.count(ep.observer, false)
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if isReplicaRefusal(err) {
			// A definite application-level answer (no such node, bad
			// path...) is the read's real result, not a routing failure.
			return err
		}
		lastErr = err
		ep.record(false, false, 0, 0)
		if c := r.cfg.Counters; c != nil {
			c.Failover.Add(1)
		}
	}
	// Last resort: the primary voter session, which retries and fails
	// over internally until the caller's deadline.
	if err := plain(ctx, r.Session); err != nil {
		if lastErr != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if lastErr != nil {
			return fmt.Errorf("coord: read failed on every replica: %w", lastErr)
		}
		return err
	}
	r.count(false, false)
	return nil
}

// leaderRead places the read on the current leader under its read
// lease; if no lease read lands, it demotes to the linearizable slow
// path — a sync barrier through the broadcast, then a voter read.
func (r *ReadRouter) leaderRead(ctx context.Context, plain, lease readFn) error {
	for attempt := 0; attempt < 2; attempt++ {
		ep := r.leaderEndpoint()
		if ep == nil {
			r.probeAll()
			continue
		}
		sess, err := ep.session(r.cfg.Net)
		if err != nil {
			ep.record(false, false, 0, 0)
			continue
		}
		actx, cancel := context.WithTimeout(ctx, attemptTimeout)
		err = lease(actx, sess)
		cancel()
		switch {
		case err == nil:
			r.count(false, true)
			return nil
		case errors.Is(err, ErrNoLease):
			// Leadership (or just the lease) moved; re-probe and retry
			// once before paying for the barrier.
			r.probeAll()
		case ctx.Err() != nil:
			return err
		case isReplicaRefusal(err):
			return err
		default:
			ep.record(false, false, 0, 0)
		}
	}
	if c := r.cfg.Counters; c != nil {
		c.Fallback.Add(1)
	}
	if err := r.Session.SyncCtx(ctx); err != nil {
		return err
	}
	if err := plain(ctx, r.Session); err != nil {
		return err
	}
	r.count(false, false)
	return nil
}

func (r *ReadRouter) leaderEndpoint() *endpoint {
	for _, ep := range r.endpoints {
		if ep.observer {
			continue
		}
		if _, healthy, leader, _, _ := ep.snapshot(); healthy && leader {
			return ep
		}
	}
	return nil
}

func (r *ReadRouter) count(observer, leased bool) {
	c := r.cfg.Counters
	if c == nil {
		return
	}
	switch {
	case leased:
		c.Leader.Add(1)
	case observer:
		c.Observer.Add(1)
	default:
		c.Voter.Add(1)
	}
}

// isReplicaRefusal distinguishes an answered read (the replica spoke:
// the node doesn't exist, the path is bad...) from a routing failure
// (the replica is unreachable or refused to answer at all). Only the
// latter should try another replica — every replica serves the same
// committed tree, so a definite answer would simply repeat.
func isReplicaRefusal(err error) bool {
	switch {
	case errors.Is(err, ErrNoNode),
		errors.Is(err, ErrNodeExists),
		errors.Is(err, ErrNotEmpty),
		errors.Is(err, ErrBadVersion),
		errors.Is(err, ErrBadPath),
		errors.Is(err, ErrNoParent):
		return true
	}
	return false
}

// GetCtx routes a Get through the read policy.
func (r *ReadRouter) GetCtx(ctx context.Context, path string) (data []byte, stat znode.Stat, err error) {
	err = r.read(ctx,
		func(ctx context.Context, s *Session) error {
			var e error
			data, stat, e = s.GetCtx(ctx, path)
			return e
		},
		func(ctx context.Context, s *Session) error {
			var e error
			data, stat, e = s.LeaseGetCtx(ctx, path)
			return e
		})
	return data, stat, err
}

// Get routes a Get with the background context.
func (r *ReadRouter) Get(path string) ([]byte, znode.Stat, error) {
	return r.GetCtx(context.Background(), path)
}

// ExistsCtx routes an Exists through the read policy.
func (r *ReadRouter) ExistsCtx(ctx context.Context, path string) (stat znode.Stat, ok bool, err error) {
	err = r.read(ctx,
		func(ctx context.Context, s *Session) error {
			var e error
			stat, ok, e = s.ExistsCtx(ctx, path)
			return e
		},
		func(ctx context.Context, s *Session) error {
			var e error
			stat, ok, e = s.LeaseExistsCtx(ctx, path)
			return e
		})
	return stat, ok, err
}

// Exists routes an Exists with the background context.
func (r *ReadRouter) Exists(path string) (znode.Stat, bool, error) {
	return r.ExistsCtx(context.Background(), path)
}

// ChildrenCtx routes a Children listing through the read policy.
func (r *ReadRouter) ChildrenCtx(ctx context.Context, path string) (kids []string, err error) {
	err = r.read(ctx,
		func(ctx context.Context, s *Session) error {
			var e error
			kids, e = s.ChildrenCtx(ctx, path)
			return e
		},
		func(ctx context.Context, s *Session) error {
			var e error
			kids, e = s.LeaseChildrenCtx(ctx, path)
			return e
		})
	return kids, err
}

// Children routes a Children listing with the background context.
func (r *ReadRouter) Children(path string) ([]string, error) {
	return r.ChildrenCtx(context.Background(), path)
}

// ChildrenDataCtx routes a full readdir through the read policy.
func (r *ReadRouter) ChildrenDataCtx(ctx context.Context, path string) (entries []ChildEntry, err error) {
	err = r.read(ctx,
		func(ctx context.Context, s *Session) error {
			var e error
			entries, e = s.ChildrenDataCtx(ctx, path)
			return e
		},
		func(ctx context.Context, s *Session) error {
			var e error
			entries, e = s.LeaseChildrenDataCtx(ctx, path)
			return e
		})
	return entries, err
}

// ChildrenData routes a full readdir with the background context.
func (r *ReadRouter) ChildrenData(path string) ([]ChildEntry, error) {
	return r.ChildrenDataCtx(context.Background(), path)
}

// BeginChildrenData overrides the embedded session's async listing so
// pipelined readdirs route like the synchronous ones (the load
// generator's readdir path). The router's failover machinery needs a
// goroutine per call anyway, so the async shape is a plain wrapper.
func (r *ReadRouter) BeginChildrenData(ctx context.Context, path string) *Future {
	f := &Future{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.entries, f.err = r.ChildrenDataCtx(ctx, path)
	}()
	return f
}
