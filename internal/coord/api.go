// Package coord implements the client-facing layer of the
// coordination service: the ZooKeeper-equivalent DUFS depends on
// (paper §II-C, §IV-D).
//
// A Server couples a znode.Tree state machine with a zab.Node replica.
// Clients connect to any server with a Session; read operations
// (Get/Exists/Children) are served from that server's local replica —
// which is why read throughput scales with the number of servers in
// Fig 7d — while write operations (Create/Set/Delete) are proposed
// through the atomic broadcast and therefore slow down as the ensemble
// grows (Fig 7a–c).
package coord

import (
	"errors"
	"fmt"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// Op codes of the client protocol and of replicated transactions.
const (
	opCreate uint8 = iota + 1
	opDelete
	opSet
	opGet
	opExists
	opChildren
	opNewSession
	opCloseSession
	opStatus
	opSync
	opGetWatch
	opExistsWatch
	opChildrenWatch
	opPollEvents
)

// Status codes carried in replies. They replicate deterministically as
// part of the transaction result, so every replica agrees on the
// outcome of every write.
const (
	codeOK uint8 = iota
	codeNoNode
	codeNodeExists
	codeNotEmpty
	codeBadVersion
	codeBadPath
	codeNoParent
	codeOther
)

// Error values surfaced to DUFS. They intentionally mirror the znode
// package errors; the mapping crosses the wire as a status code.
var (
	ErrNoNode     = znode.ErrNoNode
	ErrNodeExists = znode.ErrNodeExists
	ErrNotEmpty   = znode.ErrNotEmpty
	ErrBadVersion = znode.ErrBadVersion
	ErrBadPath    = znode.ErrBadPath
	ErrNoParent   = znode.ErrNoParent
)

func codeForError(err error) uint8 {
	switch {
	case err == nil:
		return codeOK
	case errors.Is(err, znode.ErrNoNode):
		return codeNoNode
	case errors.Is(err, znode.ErrNodeExists):
		return codeNodeExists
	case errors.Is(err, znode.ErrNotEmpty):
		return codeNotEmpty
	case errors.Is(err, znode.ErrBadVersion):
		return codeBadVersion
	case errors.Is(err, znode.ErrBadPath):
		return codeBadPath
	case errors.Is(err, znode.ErrNoParent):
		return codeNoParent
	default:
		return codeOther
	}
}

func errorForCode(code uint8, detail string) error {
	switch code {
	case codeOK:
		return nil
	case codeNoNode:
		return ErrNoNode
	case codeNodeExists:
		return ErrNodeExists
	case codeNotEmpty:
		return ErrNotEmpty
	case codeBadVersion:
		return ErrBadVersion
	case codeBadPath:
		return ErrBadPath
	case codeNoParent:
		return ErrNoParent
	default:
		if detail == "" {
			detail = "unknown coordination error"
		}
		return fmt.Errorf("coord: %s", detail)
	}
}

func encodeStat(w *wire.Writer, s znode.Stat) {
	w.Uint64(s.Czxid)
	w.Uint64(s.Mzxid)
	w.Int64(s.Ctime)
	w.Int64(s.Mtime)
	w.Int32(s.Version)
	w.Int32(s.Cversion)
	w.Int32(s.NumChildren)
	w.Int32(s.DataLength)
	w.Uint64(s.EphemeralOwner)
}

func decodeStat(r *wire.Reader) znode.Stat {
	return znode.Stat{
		Czxid:          r.Uint64(),
		Mzxid:          r.Uint64(),
		Ctime:          r.Int64(),
		Mtime:          r.Int64(),
		Version:        r.Int32(),
		Cversion:       r.Int32(),
		NumChildren:    r.Int32(),
		DataLength:     r.Int32(),
		EphemeralOwner: r.Uint64(),
	}
}
