// Package coord implements the client-facing layer of the
// coordination service: the ZooKeeper-equivalent DUFS depends on
// (paper §II-C, §IV-D).
//
// A Server couples a znode.Tree state machine with a zab.Node replica.
// Clients connect to any server with a Session; read operations
// (Get/Exists/Children) are served from that server's local replica —
// which is why read throughput scales with the number of servers in
// Fig 7d — while write operations (Create/Set/Delete) are proposed
// through the atomic broadcast and therefore slow down as the ensemble
// grows (Fig 7a–c).
package coord

import (
	"errors"
	"fmt"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// Op codes of the client protocol and of replicated transactions.
const (
	opCreate uint8 = iota + 1
	opDelete
	opSet
	opGet
	opExists
	opChildren
	opNewSession
	opCloseSession
	opStatus
	opSync
	opGetWatch
	opExistsWatch
	opChildrenWatch
	opPollEvents
	opMulti
	opChildrenData
	// opWaitEvents is the push-shaped event wait: the server parks the
	// request until a watch fires for the session or the carried
	// timeout expires. Client-local (never replicated).
	opWaitEvents
	// opLeaseRead wraps one read op (opGet/opExists/opChildren/
	// opChildrenData follows as the payload) with a leader-lease check:
	// the server answers from its local replica ONLY while it holds the
	// clock-skew-bounded read lease, making the read linearizable
	// without a quorum round trip; otherwise it returns ErrNoLease and
	// the client falls back (re-locate the leader, or a sync barrier).
	// Client-local (never replicated).
	opLeaseRead
	// Migration control plane (DESIGN.md §15). The four write ops are
	// replicated transactions — fence/moved markers and imported entries
	// are state-machine state, so they survive leader failover and reach
	// every replica; the two read ops are served locally.
	opFenceRange   // replicated: mark [lo,hi) fenced (writes bounce retryably)
	opUnfenceRange // replicated: lift a fence (migration abort)
	opRangeMoved   // replicated: mark [lo,hi) moved + drop the local copy
	opWipeRange    // replicated: drop in-range nodes (destination abort)
	opImportRange  // replicated: graft shipped entries into the namespace
	opRangeExport  // read: stream in-range entries changed since a zxid
	opRangeState   // read: fence/moved state of a range
)

// Status codes carried in replies. They replicate deterministically as
// part of the transaction result, so every replica agrees on the
// outcome of every write.
const (
	codeOK uint8 = iota
	codeNoNode
	codeNodeExists
	codeNotEmpty
	codeBadVersion
	codeBadPath
	codeNoParent
	codeRolledBack
	codeOther
	codeNoLease
	// codeFenced and codeMoved are the migration redirect contract:
	// fenced is transient (retry the same shard shortly), moved is
	// permanent (refresh placement, go to the shard in the detail).
	codeFenced
	codeMoved
)

// Error values surfaced to DUFS. They intentionally mirror the znode
// package errors; the mapping crosses the wire as a status code.
var (
	ErrNoNode     = znode.ErrNoNode
	ErrNodeExists = znode.ErrNodeExists
	ErrNotEmpty   = znode.ErrNotEmpty
	ErrBadVersion = znode.ErrBadVersion
	ErrBadPath    = znode.ErrBadPath
	ErrNoParent   = znode.ErrNoParent
	// ErrRolledBack marks a Multi op that was undone (or never ran)
	// because a sibling op in the same atomic batch failed.
	ErrRolledBack = znode.ErrRolledBack
	// ErrNoLease is returned for a lease read served by a node that
	// does not currently hold the leader read lease (not the leader,
	// or deposed, or its heartbeat-funded deadline expired). The read
	// was NOT served; the caller must retry elsewhere or fall back to
	// a sync barrier.
	ErrNoLease = errors.New("coord: no read lease held")
	// ErrFenced is returned for a write landing in a hash range that is
	// fenced for migration. The write did NOT apply; the fence lifts
	// within the delta-ship window (or on abort), so the caller retries
	// the same shard after a short backoff.
	ErrFenced = errors.New("coord: range fenced for migration, retry")
)

// MovedError is the moved-partition redirect: the addressed range was
// migrated away at the carried placement epoch and this shard no
// longer serves it. The operation did NOT run; the caller must refresh
// its placement table to at least Epoch and retry on Shard.
type MovedError struct {
	Epoch uint64
	Shard int
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("coord: partition moved to shard %d at epoch %d", e.Shard, e.Epoch)
}

// parseMovedDetail recovers a MovedError from its replicated detail
// string (the exact Error() text, so old and new replicas agree on the
// bytes in the dedup window).
func parseMovedDetail(detail string) *MovedError {
	var e MovedError
	if _, err := fmt.Sscanf(detail, "coord: partition moved to shard %d at epoch %d", &e.Shard, &e.Epoch); err != nil {
		return &MovedError{}
	}
	return &e
}

// PlacementPrefix is the top-level subtree holding the placement table
// and migration intents. It is pinned to shard 0 by every router (not
// hash-routed) and exempt from fences, moves and range exports, which
// breaks the circularity of storing "where things live" inside the
// sharded namespace itself.
const PlacementPrefix = "/__placement"

// PlacementTablePath is the znode holding the wire-encoded
// placement.Table; migrations bump it with a compare-and-set Set.
const PlacementTablePath = PlacementPrefix + "/table"

// PlacementMigrationsPath is the directory of in-flight migration
// intents, one child per migration, used for crash recovery.
const PlacementMigrationsPath = PlacementPrefix + "/migrations"

func codeForError(err error) uint8 {
	switch {
	case err == nil:
		return codeOK
	case errors.Is(err, znode.ErrNoNode):
		return codeNoNode
	case errors.Is(err, znode.ErrNodeExists):
		return codeNodeExists
	case errors.Is(err, znode.ErrNotEmpty):
		return codeNotEmpty
	case errors.Is(err, znode.ErrBadVersion):
		return codeBadVersion
	case errors.Is(err, znode.ErrBadPath):
		return codeBadPath
	case errors.Is(err, znode.ErrNoParent):
		return codeNoParent
	case errors.Is(err, znode.ErrRolledBack):
		return codeRolledBack
	case errors.Is(err, ErrNoLease):
		return codeNoLease
	case errors.Is(err, ErrFenced):
		return codeFenced
	default:
		var mv *MovedError
		if errors.As(err, &mv) {
			return codeMoved
		}
		return codeOther
	}
}

func errorForCode(code uint8, detail string) error {
	switch code {
	case codeOK:
		return nil
	case codeNoNode:
		return ErrNoNode
	case codeNodeExists:
		return ErrNodeExists
	case codeNotEmpty:
		return ErrNotEmpty
	case codeBadVersion:
		return ErrBadVersion
	case codeBadPath:
		return ErrBadPath
	case codeNoParent:
		return ErrNoParent
	case codeRolledBack:
		return ErrRolledBack
	case codeNoLease:
		return ErrNoLease
	case codeFenced:
		return ErrFenced
	case codeMoved:
		return parseMovedDetail(detail)
	default:
		if detail == "" {
			detail = "unknown coordination error"
		}
		return fmt.Errorf("coord: %s", detail)
	}
}

// encodeStat and decodeStat are generic over the wire vocabulary so
// the one field order serves both the framed RPC path (Writer/Reader)
// and the streaming snapshot path (Encoder/Decoder) — monomorphised,
// so the RPC hot path pays no interface dispatch.
func encodeStat[W wire.Sink](w W, s znode.Stat) {
	w.Uint64(s.Czxid)
	w.Uint64(s.Mzxid)
	w.Int64(s.Ctime)
	w.Int64(s.Mtime)
	w.Int32(s.Version)
	w.Int32(s.Cversion)
	w.Int32(s.NumChildren)
	w.Int32(s.DataLength)
	w.Uint64(s.EphemeralOwner)
}

func decodeStat[R wire.Source](r R) znode.Stat {
	return znode.Stat{
		Czxid:          r.Uint64(),
		Mzxid:          r.Uint64(),
		Ctime:          r.Int64(),
		Mtime:          r.Int64(),
		Version:        r.Int32(),
		Cversion:       r.Int32(),
		NumChildren:    r.Int32(),
		DataLength:     r.Int32(),
		EphemeralOwner: r.Uint64(),
	}
}

// OpKind selects the operation type of one element of a Multi batch.
type OpKind uint8

// Multi operation kinds. They mirror znode.MultiKind one-to-one; the
// duplication keeps the client API free of state-machine imports for
// callers that only build batches.
const (
	OpCheck OpKind = OpKind(znode.MultiCheck)
	// OpCreate creates a znode (like Client.Create).
	OpCreate OpKind = OpKind(znode.MultiCreate)
	// OpSet replaces a znode's data (like Client.Set).
	OpSet OpKind = OpKind(znode.MultiSet)
	// OpDelete removes a childless znode (like Client.Delete).
	OpDelete OpKind = OpKind(znode.MultiDelete)
	// OpSync is the visibility barrier (Client.Sync) as an async
	// submission. It is only meaningful to Begin — a Multi batch cannot
	// carry it — which is why its value sits far outside the
	// znode.MultiKind range.
	OpSync OpKind = 255
)

// Op is one element of a Multi batch.
type Op struct {
	Kind    OpKind
	Path    string
	Data    []byte           // create, set
	Mode    znode.CreateMode // create
	Version int32            // check, set, delete (-1 disables the check)
}

// CheckOp guards the batch: it fails (aborting the whole transaction)
// unless path exists and, when version != -1, its data version matches.
func CheckOp(path string, version int32) Op {
	return Op{Kind: OpCheck, Path: path, Version: version}
}

// CreateOp creates a znode as part of a Multi batch.
func CreateOp(path string, data []byte, mode znode.CreateMode) Op {
	return Op{Kind: OpCreate, Path: path, Data: data, Mode: mode}
}

// SetOp replaces a znode's data as part of a Multi batch.
func SetOp(path string, data []byte, version int32) Op {
	return Op{Kind: OpSet, Path: path, Data: data, Version: version}
}

// DeleteOp removes a childless znode as part of a Multi batch.
func DeleteOp(path string, version int32) Op {
	return Op{Kind: OpDelete, Path: path, Version: version}
}

// OpResult is the per-op outcome of a Multi batch. On a committed
// batch every Err is nil; on an aborted batch the failing op carries
// its error and every other op carries ErrRolledBack.
type OpResult struct {
	Err     error
	Created string     // create: the created path
	Stat    znode.Stat // set: the stat after the write
}

// ChildEntry is one entry of a ChildrenData listing: a znode's name
// (relative to the listed directory), its data, and its stat. The
// listed node itself appears as the first entry under the name ".",
// so one round trip carries both the directory's own metadata and its
// children's.
type ChildEntry struct {
	Name string
	Data []byte
	Stat znode.Stat
}

// encodeOps appends a Multi batch to w (count-prefixed, every field
// encoded for every op so the layout is kind-independent).
func encodeOps(w *wire.Writer, ops []Op) {
	w.Uint32(uint32(len(ops)))
	for _, op := range ops {
		w.Uint8(uint8(op.Kind))
		w.String(op.Path)
		w.Bytes32(op.Data)
		w.Uint8(uint8(op.Mode))
		w.Int32(op.Version)
	}
}

// decodeOps reads a Multi batch into the state machine's op type. A
// frame whose op count disagrees with its payload is an error, never
// a silently-empty batch: the state machine replicates whatever a
// client sends, so a truncated or hostile frame must be refused, not
// committed as a vacuous success.
func decodeOps(r *wire.Reader) ([]znode.MultiOp, error) {
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, errors.New("coord: empty multi transaction")
	}
	if int(n) > r.Remaining() {
		return nil, fmt.Errorf("coord: multi op count %d exceeds payload", n)
	}
	ops := make([]znode.MultiOp, 0, n)
	for i := uint32(0); i < n; i++ {
		op := znode.MultiOp{
			Kind: znode.MultiKind(r.Uint8()),
			Path: r.String(),
			// Borrowed from the transaction buffer: the tree copies data
			// into any node it creates or sets, and the ops slice does
			// not outlive the apply call.
			Data:    r.BorrowBytes(),
			Mode:    znode.CreateMode(r.Uint8()),
			Version: r.Int32(),
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// encodeMultiResults appends the replicated outcome of a Multi batch:
// the committed flag followed by one (code, detail, created, stat)
// record per op. Every replica encodes the identical bytes, which is
// what makes the dedup window's cached replies deterministic.
func encodeMultiResults(w *wire.Writer, results []znode.MultiResult, committed bool) {
	w.Bool(committed)
	w.Uint32(uint32(len(results)))
	for _, res := range results {
		w.Uint8(codeForError(res.Err))
		detail := ""
		if res.Err != nil {
			detail = res.Err.Error()
		}
		w.String(detail)
		w.String(res.Created)
		encodeStat(w, res.Stat)
	}
}

// decodeMultiResults reads a Multi outcome back into client-facing
// OpResults. Malformed replies are errors — a caller must never
// mistake a truncated reply for a committed empty batch.
func decodeMultiResults(r *wire.Reader) (results []OpResult, committed bool, err error) {
	committed = r.Bool()
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	if int(n) > r.Remaining() {
		return nil, false, fmt.Errorf("coord: multi result count %d exceeds payload", n)
	}
	results = make([]OpResult, 0, n)
	for i := uint32(0); i < n; i++ {
		code := r.Uint8()
		detail := r.String()
		created := r.String()
		stat := decodeStat(r)
		if err := r.Err(); err != nil {
			return nil, false, err
		}
		results = append(results, OpResult{
			Err:     errorForCode(code, detail),
			Created: created,
			Stat:    stat,
		})
	}
	return results, committed, nil
}
