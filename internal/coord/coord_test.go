package coord

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
)

var ensembleSeq int

func startTestEnsemble(t *testing.T, servers int) *Ensemble {
	t.Helper()
	ensembleSeq++
	e, err := StartEnsemble(EnsembleConfig{
		Servers:           servers,
		Net:               transport.NewInProc(),
		AddrPrefix:        fmt.Sprintf("coord%d", ensembleSeq),
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   30 * time.Millisecond,
		MaxLogEntries:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

func connect(t *testing.T, e *Ensemble, preferred int) *Session {
	t.Helper()
	s, err := e.Connect(preferred)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSessionBasicCRUD(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)

	created, err := s.Create("/dufs", []byte("root"), znode.ModePersistent)
	if err != nil {
		t.Fatal(err)
	}
	if created != "/dufs" {
		t.Fatalf("created = %q", created)
	}
	data, stat, err := s.Get("/dufs")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "root" || stat.Version != 0 {
		t.Fatalf("data=%q stat=%+v", data, stat)
	}
	if _, err := s.Set("/dufs", []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	data, stat, err = s.Get("/dufs")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v1" || stat.Version != 1 {
		t.Fatalf("after set: data=%q stat=%+v", data, stat)
	}
	if err := s.Delete("/dufs", -1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("/dufs"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("get after delete err = %v, want ErrNoNode", err)
	}
}

func TestErrorCodesCrossTheWire(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)

	if _, err := s.Create("/a/b", nil, znode.ModePersistent); !errors.Is(err, ErrNoParent) {
		t.Fatalf("orphan create err = %v, want ErrNoParent", err)
	}
	if _, err := s.Create("/a", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/a", nil, znode.ModePersistent); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("dup create err = %v, want ErrNodeExists", err)
	}
	if _, err := s.Create("/a/b", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("delete non-empty err = %v, want ErrNotEmpty", err)
	}
	if _, err := s.Set("/a", nil, 7); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale set err = %v, want ErrBadVersion", err)
	}
	if _, err := s.Create("bad-path", nil, znode.ModePersistent); !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path err = %v, want ErrBadPath", err)
	}
}

func TestSessionIDsAreUnique(t *testing.T) {
	e := startTestEnsemble(t, 3)
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := e.Connect(i)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			mu.Lock()
			defer mu.Unlock()
			if seen[s.ID()] {
				t.Errorf("duplicate session ID %d", s.ID())
			}
			seen[s.ID()] = true
		}(i)
	}
	wg.Wait()
}

func TestReadsServedByAnyReplica(t *testing.T) {
	e := startTestEnsemble(t, 3)
	writer := connect(t, e, 0)
	if _, err := writer.Create("/shared", []byte("x"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	// Every replica must eventually serve the read locally.
	for i := range e.Servers {
		reader := connect(t, e, i)
		deadline := time.Now().Add(3 * time.Second)
		for {
			data, _, err := reader.Get("/shared")
			if err == nil && string(data) == "x" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica %d never served /shared: %v", i, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestChildrenAcrossSessions(t *testing.T) {
	e := startTestEnsemble(t, 3)
	a := connect(t, e, 0)
	b := connect(t, e, 1)
	if _, err := a.Create("/dir", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		sess := a
		if i%2 == 1 {
			sess = b
		}
		if _, err := sess.Create(fmt.Sprintf("/dir/c%d", i), nil, znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	// Writes are linearized, but a's replica may lag b's writes;
	// sync() before the cross-session read.
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	kids, err := a.Children("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 5 {
		t.Fatalf("children = %v", kids)
	}
}

func TestEphemeralCleanupOnClose(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)
	if _, err := s.Create("/eph", []byte("tmp"), znode.ModeEphemeral); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	other := connect(t, e, -1)
	if _, ok, err := other.Exists("/eph"); err != nil || ok {
		t.Fatalf("ephemeral survived session close (ok=%v err=%v)", ok, err)
	}
}

func TestSequentialCreateForClientIDs(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)
	if _, err := s.Create("/clients", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	p1, err := s.Create("/clients/c-", nil, znode.ModeSequential)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Create("/clients/c-", nil, znode.ModeSequential)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("sequential creates collided: %q", p1)
	}
}

func TestFig1ConsistencyScenario(t *testing.T) {
	// The paper's Figure 1: client 1 runs `mkdir d1`, client 2 runs
	// `mv d1 d2` concurrently. Without coordination, two metadata
	// servers can apply the operations in different orders and end up
	// inconsistent. With the coordination service, every replica
	// applies the same total order, so all replicas agree.
	//
	// A rename at the metadata layer is delete(old)+create(new) fused
	// into the client's sequence; the key property is replica
	// agreement, not which of the two outcomes happened.
	e := startTestEnsemble(t, 3)
	c1 := connect(t, e, 0)
	c2 := connect(t, e, 1)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = c1.Create("/d1", []byte("dir"), znode.ModePersistent)
	}()
	go func() {
		defer wg.Done()
		// mv d1 d2: read d1, create d2, delete d1. Any step may fail
		// if d1 does not exist yet — that is a legal POSIX outcome.
		data, _, err := c2.Get("/d1")
		if err != nil {
			return
		}
		if _, err := c2.Create("/d2", data, znode.ModePersistent); err != nil {
			return
		}
		_ = c2.Delete("/d1", -1)
	}()
	wg.Wait()

	// All replicas must converge to the same namespace.
	waitReplicasAgree(t, e)
	states := make([]string, len(e.Servers))
	for i, srv := range e.Servers {
		_, d1 := srv.Tree().Exists("/d1")
		_, d2 := srv.Tree().Exists("/d2")
		states[i] = fmt.Sprintf("d1=%v,d2=%v", d1, d2)
	}
	for i := 1; i < len(states); i++ {
		if states[i] != states[0] {
			t.Fatalf("replicas disagree: %v", states)
		}
	}
	// And the outcome must be one of the two serializable results:
	// only d1 (rename lost the race) or only d2 (rename won).
	if states[0] != "d1=true,d2=false" && states[0] != "d1=false,d2=true" {
		t.Fatalf("non-serializable outcome: %v", states[0])
	}
}

func waitReplicasAgree(t *testing.T, e *Ensemble) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		fp := e.Servers[0].Tree().Fingerprint()
		same := true
		for _, srv := range e.Servers[1:] {
			if srv.Tree().Fingerprint() != fp {
				same = false
				break
			}
		}
		if same {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replicas never converged")
}

func TestQuorumFailover(t *testing.T) {
	// Paper §IV-I: the service needs a majority alive; it tolerates
	// minority failure (including the leader) without losing data.
	e := startTestEnsemble(t, 5)
	s := connect(t, e, -1)
	for i := 0; i < 10; i++ {
		if _, err := s.Create(fmt.Sprintf("/n%d", i), nil, znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the leader and one follower (a minority of 5).
	leader := e.Leader()
	if leader == nil {
		t.Fatal("no leader")
	}
	leader.Stop()
	for _, srv := range e.Servers {
		if srv != leader && !srv.IsLeader() {
			srv.Stop()
			break
		}
	}
	if err := e.WaitLeader(15 * time.Second); err != nil {
		for _, srv := range e.Servers {
			t.Logf("server state: %s", srv.DebugString())
		}
		t.Fatal(err)
	}
	// A fresh session must see all ten nodes and accept new writes.
	s2 := connect(t, e, -1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok, _ := s2.Exists("/n9"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("data lost after minority failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s2.Create("/after-failover", nil, znode.ModePersistent); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
}

func TestCheckpointRestartPreservesNamespace(t *testing.T) {
	// Paper §IV-I: "it can tolerate the failure of all servers by
	// restarting them later" thanks to periodic disk checkpoints.
	net := transport.NewInProc()
	e, err := StartEnsemble(EnsembleConfig{
		Servers: 3, Net: net, AddrPrefix: "ckpt",
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.Connect(-1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Create(fmt.Sprintf("/p%d", i), []byte("v"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	snap, zxid := e.Leader().Checkpoint()
	s.Close()
	e.Stop()

	// Restart the whole ensemble from the checkpoint.
	peers := map[uint64]string{1: "ckpt2-p1", 2: "ckpt2-p2", 3: "ckpt2-p3"}
	var servers []*Server
	var clientAddrs []string
	for id := uint64(1); id <= 3; id++ {
		addr := fmt.Sprintf("ckpt2-c%d", id)
		srv, err := NewServer(ServerConfig{
			ID: id, PeerAddrs: peers, ClientAddr: addr, Net: net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			Checkpoint:        snap, CheckpointZxid: zxid,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
		clientAddrs = append(clientAddrs, addr)
	}
	e2 := &Ensemble{Servers: servers, ClientAddrs: clientAddrs, net: net}
	if err := e2.WaitLeader(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	s2, err := e2.Connect(-1)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 10; i++ {
		if _, ok, err := s2.Exists(fmt.Sprintf("/p%d", i)); err != nil || !ok {
			t.Fatalf("node /p%d missing after full restart (err=%v)", i, err)
		}
	}
}

func TestConcurrentSessionsThroughput(t *testing.T) {
	// A smoke test of the paper's workload shape: many client
	// processes hammering the service concurrently.
	e := startTestEnsemble(t, 3)
	root := connect(t, e, -1)
	if _, err := root.Create("/load", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s, err := e.Connect(c)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			for i := 0; i < perClient; i++ {
				path := fmt.Sprintf("/load/c%d-%d", c, i)
				if _, err := s.Create(path, []byte("x"), znode.ModePersistent); err != nil {
					t.Errorf("create %s: %v", path, err)
					return
				}
				if _, _, err := s.Get(path); err != nil {
					t.Errorf("get %s: %v", path, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	// The reader's replica may lag the other sessions' servers;
	// sync() is the cross-session freshness barrier.
	if err := root.Sync(); err != nil {
		t.Fatal(err)
	}
	kids, err := root.Children("/load")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != clients*perClient {
		t.Fatalf("children = %d, want %d", len(kids), clients*perClient)
	}
}

func TestSingleServerEnsemble(t *testing.T) {
	// The paper's "1 ZooKeeper server" configuration must work: a
	// quorum of one.
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	if _, err := s.Create("/solo", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Exists("/solo"); err != nil || !ok {
		t.Fatalf("exists = %v, %v", ok, err)
	}
}

func TestStatus(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, -1)
	st, err := s.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LeaderID == 0 || st.Epoch == 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestTCPEnsembleEndToEnd(t *testing.T) {
	// The same service over real sockets, as cmd/coordd deploys it.
	if testing.Short() {
		t.Skip("short mode")
	}
	net := transport.TCP{}
	// Pre-pick free ports by listening and closing.
	addrs := make(map[uint64]string)
	clientAddrs := make(map[uint64]string)
	for id := uint64(1); id <= 3; id++ {
		addrs[id] = pickFreePort(t)
		clientAddrs[id] = pickFreePort(t)
	}
	var servers []*Server
	var cAddrs []string
	for id := uint64(1); id <= 3; id++ {
		srv, err := NewServer(ServerConfig{
			ID: id, PeerAddrs: addrs, ClientAddr: clientAddrs[id], Net: net,
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   60 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
		cAddrs = append(cAddrs, clientAddrs[id])
	}
	e := &Ensemble{Servers: servers, ClientAddrs: cAddrs, net: net}
	if err := e.WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	s, err := e.Connect(-1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Create("/tcp", []byte("works"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get("/tcp")
	if err != nil || string(data) != "works" {
		t.Fatalf("get = %q, %v", data, err)
	}
}

func pickFreePort(t *testing.T) string {
	t.Helper()
	ln, err := transport.TCP{}.Listen("127.0.0.1:0", transport.HandlerFunc(func(b []byte) ([]byte, error) { return b, nil }))
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.(interface{ Addr() net.Addr }).Addr().String()
	ln.Close()
	return addr
}
