//go:build race

package coord

const raceEnabled = true
