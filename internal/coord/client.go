package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Session is a client connection to the coordination service,
// equivalent to a ZooKeeper handle. The paper's DUFS programs against
// the synchronous API ("The synchronous ZooKeeper API were used for
// this purpose", §IV-D); this session keeps that surface and rebuilds
// it over a context-aware core (the *Ctx methods) plus an
// asynchronous submission layer (Begin / Pipeline, async.go) that
// keeps many tagged requests in flight over the one connection —
// matching how real ZooKeeper clients pipeline their outbound queue.
//
// A session connects to one server; reads are answered by that server
// from its local replica, writes are forwarded by the server through
// the atomic broadcast. If the server dies, the session fails over to
// the next address in its list.
type Session struct {
	net   transport.Network
	addrs []string
	seq   atomic.Uint64 // per-session write sequence, for exact-once retries

	// window bounds concurrently in-flight async submissions; it must
	// stay well under the server's per-session retry-dedup window so a
	// reconnect replay can always be recognised.
	window chan struct{}

	mu      sync.Mutex
	conn    transport.Conn
	connGen uint64 // bumped on every fresh dial; watch-loss detection
	cur     int    // index into addrs of the current server
	id      uint64
	closed  bool

	// eventGen remembers the connection generation of the last
	// WaitEvents call, so a failover BETWEEN two parks (detected by a
	// concurrent writer, redialed before the next park) still surfaces
	// as watch loss instead of silently parking on a server that holds
	// none of this session's watches.
	eventGen atomic.Uint64
}

// ErrWatchesLost reports that the session's connection was replaced
// (server death, failover): the watches registered through it — and
// any undelivered events — were server-local state and are gone.
// Consumers must re-register watches and assume missed invalidations.
var ErrWatchesLost = errors.New("coord: session failed over; server-local watches were lost")

// DialTimeout bounds how long Connect and request retries keep trying
// before giving up (elections take a few heartbeats to settle).
const DialTimeout = 10 * time.Second

// Connect establishes a session against any of the given client
// addresses. The first address that accepts the session wins; the
// rest serve as failover targets.
func Connect(net transport.Network, addrs []string) (*Session, error) {
	if len(addrs) == 0 {
		return nil, errors.New("coord: no server addresses")
	}
	s := &Session{
		net:    net,
		addrs:  append([]string(nil), addrs...),
		window: make(chan struct{}, asyncWindow),
	}
	resp, err := s.request(encodeNewSessionTxn())
	if err != nil {
		return nil, fmt.Errorf("coord: establishing session: %w", err)
	}
	r := wire.NewReader(resp)
	s.id = r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed session reply: %w", err)
	}
	return s, nil
}

// ID returns the unique session ID assigned by the replicated state
// machine. DUFS uses it as the 64-bit client ID half of new FIDs.
func (s *Session) ID() uint64 { return s.id }

// Close terminates the session, expiring its ephemeral nodes.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	_, err := s.request(encodeCloseSessionTxn(s.id, s.seq.Add(1)))
	s.mu.Lock()
	s.closed = true
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.mu.Unlock()
	return err
}

// getConn returns the live connection, dialing (with failover) if
// necessary. It never holds the lock across a dial of more than one
// candidate address.
func (s *Session) getConn() (transport.Conn, error) {
	c, _, err := s.getConnGen()
	return c, err
}

// getConnGen is getConn plus the connection's generation number —
// bumped on every fresh dial, so event consumers can detect that the
// connection (and with it the server holding their watches) changed.
func (s *Session) getConnGen() (transport.Conn, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, 0, errors.New("coord: session closed")
	}
	if s.conn != nil {
		return s.conn, s.connGen, nil
	}
	var lastErr error
	for i := 0; i < len(s.addrs); i++ {
		addr := s.addrs[(s.cur+i)%len(s.addrs)]
		c, err := s.net.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		s.cur = (s.cur + i) % len(s.addrs)
		s.conn = c
		s.connGen++
		return c, s.connGen, nil
	}
	return nil, 0, fmt.Errorf("coord: all servers unreachable: %w", lastErr)
}

func (s *Session) dropConn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.cur = (s.cur + 1) % len(s.addrs) // try the next server first
}

// request sends one protocol message and returns the payload after the
// status header, retrying transient failures until DialTimeout.
func (s *Session) request(msg []byte) ([]byte, error) {
	return s.requestCtx(context.Background(), msg)
}

// requestCtx is the session's request engine: it sends one protocol
// message and returns the payload after the status header, retrying
// transient failures (dead server, election in progress) until
// DialTimeout or the context's deadline, whichever is sooner. A
// cancelled context releases the caller immediately — the in-flight
// call is abandoned at the transport (its tagged response is dropped
// when it arrives) and, for writes, the per-session sequence number
// lets a later retry be deduplicated, so abandonment never corrupts
// the session.
func (s *Session) requestCtx(ctx context.Context, msg []byte) ([]byte, error) {
	payload, _, err := s.requestCtxOwned(ctx, msg)
	return payload, err
}

// requestPooled is requestCtx for a message encoded in a pooled scratch
// writer: it sends w.Bytes() and releases w back to the wire pool as
// soon as no in-flight reference to the buffer can remain — on reply,
// on a terminal error, or after the last retry. The one case that
// forfeits the release is an abandoned call whose transport may still
// be reading the buffer (see call); the writer is then left to the GC,
// which is a pool miss, never a use-after-release.
func (s *Session) requestPooled(ctx context.Context, w *wire.Writer) ([]byte, error) {
	payload, retained, err := s.requestCtxOwned(ctx, w.Bytes())
	if !retained {
		wire.PutWriter(w)
	}
	return payload, err
}

// requestCtxOwned reports, in addition to requestCtx's results, whether
// some abandoned in-flight call may still reference msg.
func (s *Session) requestCtxOwned(ctx context.Context, msg []byte) (payload []byte, retained bool, err error) {
	deadline := time.Now().Add(DialTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, retained, err
		}
		if time.Now().After(deadline) {
			if lastErr == nil {
				lastErr = context.DeadlineExceeded
			}
			return nil, retained, fmt.Errorf("coord: request failed after retries: %w", lastErr)
		}
		c, err := s.getConn()
		if err != nil {
			lastErr = err
			if serr := sleepCtx(ctx, retryDelay(attempt)); serr != nil {
				return nil, retained, serr
			}
			continue
		}
		resp, abandoned, err := s.call(ctx, c, msg)
		retained = retained || abandoned
		if err != nil {
			if ctx.Err() != nil {
				return nil, retained, ctx.Err()
			}
			lastErr = err
			var remote *transport.RemoteError
			if errors.As(err, &remote) {
				// The server is alive but the proposal failed (e.g. an
				// election is in flight). Retry on the same server.
				if serr := sleepCtx(ctx, retryDelay(attempt)); serr != nil {
					return nil, retained, serr
				}
				continue
			}
			s.dropConn()
			if serr := sleepCtx(ctx, retryDelay(attempt)); serr != nil {
				return nil, retained, serr
			}
			continue
		}
		r := wire.NewReader(resp)
		code := r.Uint8()
		detail := r.String()
		if err := r.Err(); err != nil {
			return nil, retained, fmt.Errorf("coord: malformed reply: %w", err)
		}
		if err := errorForCode(code, detail); err != nil {
			return nil, retained, err
		}
		return resp[len(resp)-r.Remaining():], retained, nil
	}
}

// call performs one transport round trip. Uncancellable contexts take
// the direct path (no goroutine, no channel — the hot path is exactly
// the old synchronous one); cancellable contexts go through the
// transport's async submission so the wait can be abandoned. The
// abandoned flag reports whether msg may still be referenced after
// return: a natively-pipelining connection has copied msg out before
// CallAsync returns, but the goroutine fallback around a blocking Call
// holds msg until the call completes.
func (s *Session) call(ctx context.Context, c transport.Conn, msg []byte) (payload []byte, abandoned bool, err error) {
	if ctx.Done() == nil {
		payload, err = c.Call(msg)
		return payload, false, err
	}
	_, native := c.(transport.AsyncCaller)
	select {
	case res := <-transport.CallAsync(c, msg):
		return res.Payload, false, res.Err
	case <-ctx.Done():
		return nil, !native, ctx.Err()
	}
}

// sleepCtx pauses for d unless the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func retryDelay(attempt int) time.Duration {
	d := time.Duration(attempt+1) * 2 * time.Millisecond
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// CreateCtx creates a znode and returns the created path (which
// differs from the requested path for sequential modes). The context
// bounds the whole operation including failover retries.
func (s *Session) CreateCtx(ctx context.Context, path string, data []byte, mode znode.CreateMode) (string, error) {
	// Write requests ride pooled writers too: nothing on the client
	// retains the message (the server copies before the replication
	// layer keeps anything), so the buffer is free at reply time.
	w := wire.GetWriter()
	appendCreateTxn(w, path, data, mode, s.id, s.seq.Add(1), time.Now().UnixNano())
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return "", err
	}
	return decodeCreateReply(payload)
}

// Create creates a znode with the background context.
func (s *Session) Create(path string, data []byte, mode znode.CreateMode) (string, error) {
	return s.CreateCtx(context.Background(), path, data, mode)
}

func decodeCreateReply(payload []byte) (string, error) {
	r := wire.NewReader(payload)
	created := r.String()
	if err := r.Err(); err != nil {
		return "", fmt.Errorf("coord: malformed create reply: %w", err)
	}
	return created, nil
}

// GetCtx returns the znode's data and stat.
func (s *Session) GetCtx(ctx context.Context, path string) ([]byte, znode.Stat, error) {
	w := wire.GetWriter()
	w.Uint8(opGet)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, znode.Stat{}, err
	}
	return decodeGetReply(payload)
}

// Get returns the znode's data and stat with the background context.
func (s *Session) Get(path string) ([]byte, znode.Stat, error) {
	return s.GetCtx(context.Background(), path)
}

func decodeGetReply(payload []byte) ([]byte, znode.Stat, error) {
	r := wire.NewReader(payload)
	data := r.BytesCopy32()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return nil, znode.Stat{}, fmt.Errorf("coord: malformed get reply: %w", err)
	}
	return data, stat, nil
}

// SetCtx replaces the znode's data; version -1 disables the optimistic
// concurrency check.
func (s *Session) SetCtx(ctx context.Context, path string, data []byte, version int32) (znode.Stat, error) {
	w := wire.GetWriter()
	appendSetTxn(w, path, data, version, s.id, s.seq.Add(1), time.Now().UnixNano())
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return znode.Stat{}, err
	}
	return decodeSetReply(payload)
}

// Set replaces the znode's data with the background context.
func (s *Session) Set(path string, data []byte, version int32) (znode.Stat, error) {
	return s.SetCtx(context.Background(), path, data, version)
}

func decodeSetReply(payload []byte) (znode.Stat, error) {
	r := wire.NewReader(payload)
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return znode.Stat{}, fmt.Errorf("coord: malformed set reply: %w", err)
	}
	return stat, nil
}

// DeleteCtx removes a childless znode; version -1 disables the check.
func (s *Session) DeleteCtx(ctx context.Context, path string, version int32) error {
	w := wire.GetWriter()
	appendDeleteTxn(w, path, version, s.id, s.seq.Add(1))
	_, err := s.requestPooled(ctx, w)
	return err
}

// Delete removes a childless znode with the background context.
func (s *Session) Delete(path string, version int32) error {
	return s.DeleteCtx(context.Background(), path, version)
}

// ExistsCtx returns the stat and whether the znode exists.
func (s *Session) ExistsCtx(ctx context.Context, path string) (znode.Stat, bool, error) {
	w := wire.GetWriter()
	w.Uint8(opExists)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return znode.Stat{}, false, err
	}
	return decodeExistsReply(payload)
}

// Exists returns the stat and existence with the background context.
func (s *Session) Exists(path string) (znode.Stat, bool, error) {
	return s.ExistsCtx(context.Background(), path)
}

func decodeExistsReply(payload []byte) (znode.Stat, bool, error) {
	r := wire.NewReader(payload)
	ok := r.Bool()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return znode.Stat{}, false, fmt.Errorf("coord: malformed exists reply: %w", err)
	}
	return stat, ok, nil
}

// ChildrenCtx returns the sorted child names of the znode.
func (s *Session) ChildrenCtx(ctx context.Context, path string) ([]string, error) {
	w := wire.GetWriter()
	w.Uint8(opChildren)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, err
	}
	return decodeChildrenReply(payload)
}

// Children returns the sorted child names with the background context.
func (s *Session) Children(path string) ([]string, error) {
	return s.ChildrenCtx(context.Background(), path)
}

func decodeChildrenReply(payload []byte) ([]string, error) {
	r := wire.NewReader(payload)
	kids := r.StringSlice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed children reply: %w", err)
	}
	return kids, nil
}

// LeaseGetCtx is GetCtx served under the leader's read lease: the
// answer is linearizable (no stale reads, no quorum round trip) but
// only the leader — while its quorum-funded, clock-skew-bounded lease
// is live — will serve it. Any other member, or a deposed/expired
// leader, returns ErrNoLease without touching its replica; the caller
// (the read router) then re-locates the leader or falls back to
// Sync-then-read.
func (s *Session) LeaseGetCtx(ctx context.Context, path string) ([]byte, znode.Stat, error) {
	w := wire.GetWriter()
	w.Uint8(opLeaseRead)
	w.Uint8(opGet)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, znode.Stat{}, err
	}
	return decodeGetReply(payload)
}

// LeaseExistsCtx is ExistsCtx under the leader's read lease (see
// LeaseGetCtx for the contract).
func (s *Session) LeaseExistsCtx(ctx context.Context, path string) (znode.Stat, bool, error) {
	w := wire.GetWriter()
	w.Uint8(opLeaseRead)
	w.Uint8(opExists)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return znode.Stat{}, false, err
	}
	return decodeExistsReply(payload)
}

// LeaseChildrenCtx is ChildrenCtx under the leader's read lease (see
// LeaseGetCtx for the contract).
func (s *Session) LeaseChildrenCtx(ctx context.Context, path string) ([]string, error) {
	w := wire.GetWriter()
	w.Uint8(opLeaseRead)
	w.Uint8(opChildren)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, err
	}
	return decodeChildrenReply(payload)
}

// LeaseChildrenDataCtx is ChildrenDataCtx under the leader's read
// lease (see LeaseGetCtx for the contract).
func (s *Session) LeaseChildrenDataCtx(ctx context.Context, path string) ([]ChildEntry, error) {
	w := wire.GetWriter()
	w.Uint8(opLeaseRead)
	w.Uint8(opChildrenData)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, err
	}
	return decodeChildrenDataReply(payload)
}

// MultiCtx applies the batch as one atomic transaction: a single
// proposal through the atomic broadcast, applied all-or-nothing by
// every replica. On success every result's Err is nil. On an aborted
// batch MultiCtx returns the per-op results — the failing op carries
// its error, the others ErrRolledBack — plus the failing op's error as
// the returned error, so callers can treat Multi like any other
// mutation.
func (s *Session) MultiCtx(ctx context.Context, ops []Op) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, errors.New("coord: empty multi")
	}
	w := wire.GetWriter()
	appendMultiTxn(w, ops, s.id, s.seq.Add(1), time.Now().UnixNano())
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, err
	}
	return decodeMultiReply(payload)
}

// Multi applies the batch with the background context.
func (s *Session) Multi(ops []Op) ([]OpResult, error) {
	return s.MultiCtx(context.Background(), ops)
}

func decodeMultiReply(payload []byte) ([]OpResult, error) {
	r := wire.NewReader(payload)
	results, committed, derr := decodeMultiResults(r)
	if derr != nil {
		return nil, fmt.Errorf("coord: malformed multi reply: %w", derr)
	}
	if !committed {
		for _, res := range results {
			if res.Err != nil && !errors.Is(res.Err, ErrRolledBack) {
				return results, res.Err
			}
		}
		return results, ErrRolledBack
	}
	return results, nil
}

// ChildrenDataCtx returns the znode itself (as the first entry, named
// ".") and every child with its data and stat — a whole readdir in one
// round trip, served from the session's local replica like Children.
func (s *Session) ChildrenDataCtx(ctx context.Context, path string) ([]ChildEntry, error) {
	w := wire.GetWriter()
	w.Uint8(opChildrenData)
	w.String(path)
	payload, err := s.requestPooled(ctx, w)
	if err != nil {
		return nil, err
	}
	return decodeChildrenDataReply(payload)
}

// ChildrenData returns the whole listing with the background context.
func (s *Session) ChildrenData(path string) ([]ChildEntry, error) {
	return s.ChildrenDataCtx(context.Background(), path)
}

func decodeChildrenDataReply(payload []byte) ([]ChildEntry, error) {
	r := wire.NewReader(payload)
	n := r.Uint32()
	if r.Err() != nil || int(n) > r.Remaining() {
		return nil, fmt.Errorf("coord: malformed childrendata reply")
	}
	entries := make([]ChildEntry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		entries = append(entries, ChildEntry{
			Name: r.String(),
			Data: r.BytesCopy32(),
			Stat: decodeStat(r),
		})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed childrendata reply: %w", err)
	}
	return entries, nil
}

// Atomic implements Client: a session talks to exactly one ensemble,
// so every batch is atomic.
func (s *Session) Atomic(paths ...string) bool { return true }

// GetW is Get plus a one-shot data watch: the next create/delete/set
// on the path (as applied by the session's server) queues an Event
// retrievable with PollEvents. A failed GetW leaves no watch.
func (s *Session) GetW(path string) ([]byte, znode.Stat, error) {
	w := wire.GetWriter()
	w.Uint8(opGetWatch)
	w.Uint64(s.id)
	w.String(path)
	payload, err := s.requestPooled(context.Background(), w)
	if err != nil {
		return nil, znode.Stat{}, err
	}
	r := wire.NewReader(payload)
	data := r.BytesCopy32()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return nil, znode.Stat{}, fmt.Errorf("coord: malformed getw reply: %w", err)
	}
	return data, stat, nil
}

// ExistsW is Exists plus a one-shot watch; it fires on creation of a
// currently-absent node as well, matching ZooKeeper.
func (s *Session) ExistsW(path string) (znode.Stat, bool, error) {
	w := wire.GetWriter()
	w.Uint8(opExistsWatch)
	w.Uint64(s.id)
	w.String(path)
	payload, err := s.requestPooled(context.Background(), w)
	if err != nil {
		return znode.Stat{}, false, err
	}
	r := wire.NewReader(payload)
	ok := r.Bool()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return znode.Stat{}, false, fmt.Errorf("coord: malformed existsw reply: %w", err)
	}
	return stat, ok, nil
}

// ChildrenW is Children plus a one-shot child watch (fires when an
// entry is added to or removed from the directory, or the directory
// itself is deleted).
func (s *Session) ChildrenW(path string) ([]string, error) {
	w := wire.GetWriter()
	w.Uint8(opChildrenWatch)
	w.Uint64(s.id)
	w.String(path)
	payload, err := s.requestPooled(context.Background(), w)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	kids := r.StringSlice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed childrenw reply: %w", err)
	}
	return kids, nil
}

// PollEvents drains the session's fired watches on its server.
// Delivery is pull-based (the transport is request/response); watches
// are one-shot and server-local, as in ZooKeeper.
func (s *Session) PollEvents() ([]Event, error) {
	w := wire.GetWriter()
	w.Uint8(opPollEvents)
	w.Uint64(s.id)
	payload, err := s.requestPooled(context.Background(), w)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	evs := decodeEvents(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed events reply: %w", err)
	}
	return evs, nil
}

// WaitEvents is the push-shaped event wait: one long-poll RPC that the
// server PARKS until a watch fires for this session (or maxWait
// expires, returning nil, nil). While the session is idle it costs
// zero server work and zero polling traffic — the replacement for the
// PollEvents ticker loops. A cancelled context releases the client
// immediately; the parked server request times out on its own. Events
// may be lost across a failover (watches are server-local state, as in
// ZooKeeper), so an error return means the caller must assume missed
// invalidations and re-register its watches.
func (s *Session) WaitEvents(ctx context.Context, maxWait time.Duration) ([]Event, error) {
	deadline := time.Now().Add(maxWait)
	var gen uint64
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, nil
		}
		c, g, err := s.getConnGen()
		if err != nil {
			// Unlike the write path, there is no point retrying onto a
			// DIFFERENT server: watches are server-local, so once the
			// connection is gone the caller's watches are gone with it.
			// Surface that immediately.
			return nil, err
		}
		if first {
			// A failover between two WaitEvents calls (a concurrent
			// writer noticed the dead server and redialed) must surface
			// exactly like one during a park.
			first = false
			gen = g
			if last := s.eventGen.Swap(g); last != 0 && last != g {
				return nil, ErrWatchesLost
			}
		} else if g != gen {
			s.eventGen.Store(g)
			return nil, ErrWatchesLost
		}
		w := wire.GetWriter()
		w.Uint8(opWaitEvents)
		w.Uint64(s.id)
		w.Uint32(uint32(remaining / time.Millisecond))
		resp, abandoned, err := s.call(ctx, c, w.Bytes())
		if !abandoned {
			wire.PutWriter(w)
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			var remote *transport.RemoteError
			if !errors.As(err, &remote) {
				// The connection died mid-park — and with it the
				// server-local watches and any undelivered events.
				// Drop the conn (the next operation fails over) and
				// report the loss rather than silently re-parking on a
				// server that holds none of the caller's watches.
				s.dropConn()
			}
			return nil, err
		}
		r := wire.NewReader(resp)
		code := r.Uint8()
		detail := r.String()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("coord: malformed events reply: %w", err)
		}
		if err := errorForCode(code, detail); err != nil {
			return nil, err
		}
		evs := decodeEvents(r)
		if len(evs) > 0 {
			return evs, nil
		}
		// Parked to the server-side timeout without an event; re-park
		// on the SAME connection until our own deadline (covers capped
		// server waits).
	}
}

// WaitEvent blocks until an event arrives or the timeout expires —
// the synchronous wrapper over WaitEvents. Unlike the pre-push
// implementation it issues no polling RPCs: the single request parks
// on the server.
func (s *Session) WaitEvent(timeout time.Duration) ([]Event, error) {
	return s.WaitEvents(context.Background(), timeout)
}

// SyncCtx is ZooKeeper's sync(): a no-op barrier through the atomic
// broadcast. When it returns, the session's server has applied every
// write committed before the call, so subsequent local reads observe
// them — the cross-client visibility guarantee DUFS needs after
// another client's mutation.
func (s *Session) SyncCtx(ctx context.Context) error {
	w := wire.GetWriter()
	appendSyncTxn(w, s.id, s.seq.Add(1))
	_, err := s.requestPooled(ctx, w)
	return err
}

// Sync is the barrier with the background context.
func (s *Session) Sync() error {
	return s.SyncCtx(context.Background())
}

// Status reports a server's view of the ensemble, for tools and tests.
type Status struct {
	ServerID uint64
	LeaderID uint64
	Epoch    uint64
	IsLeader bool
	Znodes   uint64

	// Durable-storage observability (all zero when the server runs
	// without a data directory): the highest zxid covered by a
	// completed fsync, the live WAL segment count, and the mean
	// transactions hardened per fsync (the group-commit amortization).
	LastDurableZxid uint64
	WALSegments     uint64
	FsyncBatchTxns  uint64

	// Observer-tier observability. IsObserver marks a non-voting
	// replica (it tails the committed log and never appears in quorum
	// math); AppliedZxid is the member's replication tip; LagTxns is
	// how far it trails the leader's commit horizon (always 0 on a
	// voter reporting about itself). Observers lists the per-observer
	// replication lag the leader-side feed tracks — populated only in
	// the current leader's status.
	IsObserver  bool
	AppliedZxid uint64
	LagTxns     uint64
	Observers   []ObserverStatus

	// Ranges lists the shard's live migration markers (fenced or moved
	// hash ranges) — the operator-visible migration progress.
	Ranges []RangeStatus

	// Apply-pipeline observability: how many committed transactions
	// await application, how many frames sit in the commit→apply
	// queue, and how many pool workers are executing right now. All
	// zero on observers (they apply inline) and on servers predating
	// the decoupled pipeline.
	ApplyLagTxns     uint64
	ApplyQueueFrames uint64
	ApplyWorkersBusy uint64
}

// RangeStatus is one migration marker in a server's status report.
type RangeStatus struct {
	Lo    uint64
	Hi    uint64
	Dest  int
	Epoch uint64
	Moved bool
}

// ObserverStatus is one observer replica's replication state as
// reported by the leader it polls.
type ObserverStatus struct {
	ID          uint64
	AppliedZxid uint64
	LagTxns     uint64
	LagMS       uint64
}

// Status queries the connected server.
func (s *Session) Status() (Status, error) {
	w := wire.GetWriter()
	w.Uint8(opStatus)
	payload, err := s.requestPooled(context.Background(), w)
	if err != nil {
		return Status{}, err
	}
	r := wire.NewReader(payload)
	st := Status{
		ServerID: r.Uint64(),
		LeaderID: r.Uint64(),
		Epoch:    r.Uint64(),
		IsLeader: r.Bool(),
		Znodes:   r.Uint64(),
	}
	st.LastDurableZxid = r.Uint64()
	st.WALSegments = r.Uint64()
	st.FsyncBatchTxns = r.Uint64()
	st.IsObserver = r.Bool()
	st.AppliedZxid = r.Uint64()
	st.LagTxns = r.Uint64()
	n := r.Uint32()
	if r.Err() == nil && int(n) <= r.Remaining() {
		for i := uint32(0); i < n; i++ {
			st.Observers = append(st.Observers, ObserverStatus{
				ID:          r.Uint64(),
				AppliedZxid: r.Uint64(),
				LagTxns:     r.Uint64(),
				LagMS:       r.Uint64(),
			})
		}
	}
	rn := r.Uint32()
	if r.Err() == nil && int(rn) <= r.Remaining() {
		for i := uint32(0); i < rn; i++ {
			st.Ranges = append(st.Ranges, RangeStatus{
				Lo:    r.Uint64(),
				Hi:    r.Uint64(),
				Dest:  int(r.Uint32()),
				Epoch: r.Uint64(),
				Moved: r.Bool(),
			})
		}
	}
	if r.Err() == nil && r.Remaining() >= 24 {
		st.ApplyLagTxns = r.Uint64()
		st.ApplyQueueFrames = r.Uint64()
		st.ApplyWorkersBusy = r.Uint64()
	}
	if err := r.Err(); err != nil {
		return Status{}, fmt.Errorf("coord: malformed status reply: %w", err)
	}
	return st, nil
}
