package coord

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Session is a client connection to the coordination service,
// equivalent to a ZooKeeper handle. DUFS uses the synchronous API
// exactly as the paper does ("The synchronous ZooKeeper API were used
// for this purpose", §IV-D).
//
// A session connects to one server; reads are answered by that server
// from its local replica, writes are forwarded by the server through
// the atomic broadcast. If the server dies, the session fails over to
// the next address in its list.
type Session struct {
	net   transport.Network
	addrs []string
	seq   atomic.Uint64 // per-session write sequence, for exact-once retries

	mu     sync.Mutex
	conn   transport.Conn
	cur    int // index into addrs of the current server
	id     uint64
	closed bool
}

// DialTimeout bounds how long Connect and request retries keep trying
// before giving up (elections take a few heartbeats to settle).
const DialTimeout = 10 * time.Second

// Connect establishes a session against any of the given client
// addresses. The first address that accepts the session wins; the
// rest serve as failover targets.
func Connect(net transport.Network, addrs []string) (*Session, error) {
	if len(addrs) == 0 {
		return nil, errors.New("coord: no server addresses")
	}
	s := &Session{net: net, addrs: append([]string(nil), addrs...)}
	resp, err := s.request(encodeNewSessionTxn())
	if err != nil {
		return nil, fmt.Errorf("coord: establishing session: %w", err)
	}
	r := wire.NewReader(resp)
	s.id = r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed session reply: %w", err)
	}
	return s, nil
}

// ID returns the unique session ID assigned by the replicated state
// machine. DUFS uses it as the 64-bit client ID half of new FIDs.
func (s *Session) ID() uint64 { return s.id }

// Close terminates the session, expiring its ephemeral nodes.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	_, err := s.request(encodeCloseSessionTxn(s.id, s.seq.Add(1)))
	s.mu.Lock()
	s.closed = true
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.mu.Unlock()
	return err
}

// getConn returns the live connection, dialing (with failover) if
// necessary. It never holds the lock across a dial of more than one
// candidate address.
func (s *Session) getConn() (transport.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("coord: session closed")
	}
	if s.conn != nil {
		return s.conn, nil
	}
	var lastErr error
	for i := 0; i < len(s.addrs); i++ {
		addr := s.addrs[(s.cur+i)%len(s.addrs)]
		c, err := s.net.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		s.cur = (s.cur + i) % len(s.addrs)
		s.conn = c
		return c, nil
	}
	return nil, fmt.Errorf("coord: all servers unreachable: %w", lastErr)
}

func (s *Session) dropConn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.cur = (s.cur + 1) % len(s.addrs) // try the next server first
}

// request sends one protocol message and returns the payload after the
// status header, retrying transient failures (dead server, election in
// progress) until DialTimeout.
func (s *Session) request(msg []byte) ([]byte, error) {
	deadline := time.Now().Add(DialTimeout)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("coord: request failed after retries: %w", lastErr)
		}
		c, err := s.getConn()
		if err != nil {
			lastErr = err
			time.Sleep(retryDelay(attempt))
			continue
		}
		resp, err := c.Call(msg)
		if err != nil {
			lastErr = err
			var remote *transport.RemoteError
			if errors.As(err, &remote) {
				// The server is alive but the proposal failed (e.g. an
				// election is in flight). Retry on the same server.
				time.Sleep(retryDelay(attempt))
				continue
			}
			s.dropConn()
			time.Sleep(retryDelay(attempt))
			continue
		}
		r := wire.NewReader(resp)
		code := r.Uint8()
		detail := r.String()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("coord: malformed reply: %w", err)
		}
		if err := errorForCode(code, detail); err != nil {
			return nil, err
		}
		return resp[len(resp)-r.Remaining():], nil
	}
}

func retryDelay(attempt int) time.Duration {
	d := time.Duration(attempt+1) * 2 * time.Millisecond
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// Create creates a znode and returns the created path (which differs
// from the requested path for sequential modes).
func (s *Session) Create(path string, data []byte, mode znode.CreateMode) (string, error) {
	msg := encodeCreateTxn(path, data, mode, s.id, s.seq.Add(1), time.Now().UnixNano())
	payload, err := s.request(msg)
	if err != nil {
		return "", err
	}
	r := wire.NewReader(payload)
	created := r.String()
	if err := r.Err(); err != nil {
		return "", fmt.Errorf("coord: malformed create reply: %w", err)
	}
	return created, nil
}

// Get returns the znode's data and stat.
func (s *Session) Get(path string) ([]byte, znode.Stat, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opGet)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return nil, znode.Stat{}, err
	}
	r := wire.NewReader(payload)
	data := r.BytesCopy32()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return nil, znode.Stat{}, fmt.Errorf("coord: malformed get reply: %w", err)
	}
	return data, stat, nil
}

// Set replaces the znode's data; version -1 disables the optimistic
// concurrency check.
func (s *Session) Set(path string, data []byte, version int32) (znode.Stat, error) {
	msg := encodeSetTxn(path, data, version, s.id, s.seq.Add(1), time.Now().UnixNano())
	payload, err := s.request(msg)
	if err != nil {
		return znode.Stat{}, err
	}
	r := wire.NewReader(payload)
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return znode.Stat{}, fmt.Errorf("coord: malformed set reply: %w", err)
	}
	return stat, nil
}

// Delete removes a childless znode; version -1 disables the check.
func (s *Session) Delete(path string, version int32) error {
	_, err := s.request(encodeDeleteTxn(path, version, s.id, s.seq.Add(1)))
	return err
}

// Exists returns the stat and whether the znode exists.
func (s *Session) Exists(path string) (znode.Stat, bool, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opExists)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return znode.Stat{}, false, err
	}
	r := wire.NewReader(payload)
	ok := r.Bool()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return znode.Stat{}, false, fmt.Errorf("coord: malformed exists reply: %w", err)
	}
	return stat, ok, nil
}

// Children returns the sorted child names of the znode.
func (s *Session) Children(path string) ([]string, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opChildren)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	kids := r.StringSlice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed children reply: %w", err)
	}
	return kids, nil
}

// Multi applies the batch as one atomic transaction: a single proposal
// through the atomic broadcast, applied all-or-nothing by every
// replica. On success every result's Err is nil. On an aborted batch
// Multi returns the per-op results — the failing op carries its error,
// the others ErrRolledBack — plus the failing op's error as the
// returned error, so callers can treat Multi like any other mutation.
func (s *Session) Multi(ops []Op) ([]OpResult, error) {
	if len(ops) == 0 {
		return nil, errors.New("coord: empty multi")
	}
	msg := encodeMultiTxn(ops, s.id, s.seq.Add(1), time.Now().UnixNano())
	payload, err := s.request(msg)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	results, committed, derr := decodeMultiResults(r)
	if derr != nil {
		return nil, fmt.Errorf("coord: malformed multi reply: %w", derr)
	}
	if !committed {
		for _, res := range results {
			if res.Err != nil && !errors.Is(res.Err, ErrRolledBack) {
				return results, res.Err
			}
		}
		return results, ErrRolledBack
	}
	return results, nil
}

// ChildrenData returns the znode itself (as the first entry, named
// ".") and every child with its data and stat — a whole readdir in one
// round trip, served from the session's local replica like Children.
func (s *Session) ChildrenData(path string) ([]ChildEntry, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opChildrenData)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	n := r.Uint32()
	if r.Err() != nil || int(n) > r.Remaining() {
		return nil, fmt.Errorf("coord: malformed childrendata reply")
	}
	entries := make([]ChildEntry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		entries = append(entries, ChildEntry{
			Name: r.String(),
			Data: r.BytesCopy32(),
			Stat: decodeStat(r),
		})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed childrendata reply: %w", err)
	}
	return entries, nil
}

// Atomic implements Client: a session talks to exactly one ensemble,
// so every batch is atomic.
func (s *Session) Atomic(paths ...string) bool { return true }

// GetW is Get plus a one-shot data watch: the next create/delete/set
// on the path (as applied by the session's server) queues an Event
// retrievable with PollEvents. A failed GetW leaves no watch.
func (s *Session) GetW(path string) ([]byte, znode.Stat, error) {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opGetWatch)
	w.Uint64(s.id)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return nil, znode.Stat{}, err
	}
	r := wire.NewReader(payload)
	data := r.BytesCopy32()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return nil, znode.Stat{}, fmt.Errorf("coord: malformed getw reply: %w", err)
	}
	return data, stat, nil
}

// ExistsW is Exists plus a one-shot watch; it fires on creation of a
// currently-absent node as well, matching ZooKeeper.
func (s *Session) ExistsW(path string) (znode.Stat, bool, error) {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opExistsWatch)
	w.Uint64(s.id)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return znode.Stat{}, false, err
	}
	r := wire.NewReader(payload)
	ok := r.Bool()
	stat := decodeStat(r)
	if err := r.Err(); err != nil {
		return znode.Stat{}, false, fmt.Errorf("coord: malformed existsw reply: %w", err)
	}
	return stat, ok, nil
}

// ChildrenW is Children plus a one-shot child watch (fires when an
// entry is added to or removed from the directory, or the directory
// itself is deleted).
func (s *Session) ChildrenW(path string) ([]string, error) {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opChildrenWatch)
	w.Uint64(s.id)
	w.String(path)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	kids := r.StringSlice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed childrenw reply: %w", err)
	}
	return kids, nil
}

// PollEvents drains the session's fired watches on its server.
// Delivery is pull-based (the transport is request/response); watches
// are one-shot and server-local, as in ZooKeeper.
func (s *Session) PollEvents() ([]Event, error) {
	w := wire.NewWriter(16)
	w.Uint8(opPollEvents)
	w.Uint64(s.id)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	evs := decodeEvents(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("coord: malformed events reply: %w", err)
	}
	return evs, nil
}

// WaitEvent polls until an event arrives or the timeout expires.
func (s *Session) WaitEvent(timeout time.Duration) ([]Event, error) {
	deadline := time.Now().Add(timeout)
	for {
		evs, err := s.PollEvents()
		if err != nil || len(evs) > 0 {
			return evs, err
		}
		if time.Now().After(deadline) {
			return nil, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Sync is ZooKeeper's sync(): a no-op barrier through the atomic
// broadcast. When it returns, the session's server has applied every
// write committed before the call, so subsequent local reads observe
// them — the cross-client visibility guarantee DUFS needs after
// another client's mutation.
func (s *Session) Sync() error {
	_, err := s.request(encodeSyncTxn(s.id, s.seq.Add(1)))
	return err
}

// Status reports a server's view of the ensemble, for tools and tests.
type Status struct {
	ServerID uint64
	LeaderID uint64
	Epoch    uint64
	IsLeader bool
	Znodes   uint64
}

// Status queries the connected server.
func (s *Session) Status() (Status, error) {
	w := wire.NewWriter(1)
	w.Uint8(opStatus)
	payload, err := s.request(w.Bytes())
	if err != nil {
		return Status{}, err
	}
	r := wire.NewReader(payload)
	st := Status{
		ServerID: r.Uint64(),
		LeaderID: r.Uint64(),
		Epoch:    r.Uint64(),
		IsLeader: r.Bool(),
		Znodes:   r.Uint64(),
	}
	if err := r.Err(); err != nil {
		return Status{}, fmt.Errorf("coord: malformed status reply: %w", err)
	}
	return st, nil
}
