package coord

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
)

// TestChaosFullEnsembleCrashRestartLosesNothing is the acceptance
// test for the durable storage engine: writers keep single creates
// and 2-op atomic Multis in flight against a DURABLE 3-server
// ensemble while the whole ensemble — a quorum and then some — is
// killed mid-frame (Stop flushes nothing; the disks hold exactly what
// the protocol fsynced before each acknowledgement). The ensemble is
// restarted from its data directories, twice over, and afterwards:
//
//   - every ACKED write (single create or atomic Multi) exists;
//   - no Multi, acked or not, is half-applied — its ops either all
//     committed (the frame survived on disk) or none did.
//
// The in-memory model cannot pass this test: killing all three
// servers erases every write since boot.
func TestChaosFullEnsembleCrashRestartLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const servers = 3
	net := transport.NewInProc()
	base := t.TempDir()
	peers := make(map[uint64]string, servers)
	var clientAddrs []string
	for i := 1; i <= servers; i++ {
		peers[uint64(i)] = fmt.Sprintf("crash-p%d", i)
		clientAddrs = append(clientAddrs, fmt.Sprintf("crash-c%d", i))
	}
	mk := func(id uint64) *Server {
		srv, err := NewServer(ServerConfig{
			ID: id, PeerAddrs: peers,
			ClientAddr:        fmt.Sprintf("crash-c%d", id),
			Net:               net,
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   30 * time.Millisecond,
			MaxLogEntries:     128,
			DataDir:           filepath.Join(base, fmt.Sprintf("node%d", id)),
		})
		if err != nil {
			t.Errorf("server %d: %v", id, err)
			return nil
		}
		return srv
	}
	var mu sync.Mutex
	live := make(map[uint64]*Server, servers)
	for i := 1; i <= servers; i++ {
		srv := mk(uint64(i))
		if srv == nil {
			t.FailNow()
		}
		live[uint64(i)] = srv
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, s := range live {
			if s != nil {
				s.Stop()
			}
		}
	}()

	// Writers alternate single creates with 2-op atomic Multis across
	// the whole run, riding out the blackouts via app-level retries.
	type pair struct {
		a, b  string
		acked bool
	}
	const writers = 5
	acked := make([][]string, writers)
	pairs := make([][]pair, writers)
	stopWriters := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sess *Session
			defer func() {
				if sess != nil {
					sess.Close()
				}
			}()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				if sess == nil {
					var err error
					if sess, err = Connect(net, clientAddrs); err != nil {
						time.Sleep(10 * time.Millisecond)
						continue
					}
				}
				if i%2 == 0 {
					path := fmt.Sprintf("/cr-w%d-%d", w, i)
					if _, err := sess.Create(path, []byte("x"), znode.ModePersistent); err == nil {
						acked[w] = append(acked[w], path)
					}
					continue
				}
				p := pair{
					a: fmt.Sprintf("/cr-w%d-%d-a", w, i),
					b: fmt.Sprintf("/cr-w%d-%d-b", w, i),
				}
				_, err := sess.Multi([]Op{
					CreateOp(p.a, []byte("x"), znode.ModePersistent),
					CreateOp(p.b, []byte("x"), znode.ModePersistent),
				})
				p.acked = err == nil
				pairs[w] = append(pairs[w], p)
			}
		}(w)
	}

	// Two rounds of: let writes flow, then kill -9 the WHOLE ensemble
	// mid-frame and restart every member from its data directory.
	for round := 0; round < 2; round++ {
		time.Sleep(250 * time.Millisecond)
		mu.Lock()
		victims := make([]*Server, 0, servers)
		for id, s := range live {
			victims = append(victims, s)
			live[id] = nil
		}
		mu.Unlock()
		for _, s := range victims {
			s.Stop() // flushes nothing extra: disk state == crash state
		}
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		for i := 1; i <= servers; i++ {
			srv := mk(uint64(i))
			if srv == nil {
				mu.Unlock()
				t.FailNow()
			}
			live[uint64(i)] = srv
		}
		mu.Unlock()
	}
	time.Sleep(250 * time.Millisecond)
	close(stopWriters)
	wg.Wait()

	ens := &Ensemble{net: net, ClientAddrs: clientAddrs}
	mu.Lock()
	for _, s := range live {
		if s != nil {
			ens.Servers = append(ens.Servers, s)
		}
	}
	mu.Unlock()
	if err := ens.WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	sess, err := Connect(net, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	exists := func(path string) bool {
		_, ok, err := sess.Exists(path)
		return err == nil && ok
	}
	waitExists := func(path string) bool {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if exists(path) {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	ackedTotal, pairTotal := 0, 0
	for w := 0; w < writers; w++ {
		for _, path := range acked[w] {
			if !waitExists(path) {
				for _, s := range ens.Servers {
					t.Logf("server %d: %s", s.ID(), s.DebugString())
				}
				t.Fatalf("acknowledged write %s lost across full-ensemble crash-restart", path)
			}
			ackedTotal++
		}
		for _, p := range pairs[w] {
			pairTotal++
			if p.acked {
				if !waitExists(p.a) || !waitExists(p.b) {
					t.Fatalf("acknowledged multi %s/%s lost a member", p.a, p.b)
				}
				continue
			}
			a, b := exists(p.a), exists(p.b)
			if a != b {
				t.Fatalf("multi half-applied across crash-restart: %s=%v %s=%v", p.a, a, p.b, b)
			}
		}
	}
	if ackedTotal == 0 || pairTotal == 0 {
		t.Fatalf("blackouts too severe (acked=%d pairs=%d); test proves nothing", ackedTotal, pairTotal)
	}

	// The durable horizon must be observable via the status op.
	st, err := sess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastDurableZxid == 0 || st.WALSegments == 0 {
		t.Fatalf("status does not expose the storage horizon: %+v", st)
	}
	t.Logf("survived 2 full-ensemble crashes: %d acked singles, %d multi pairs, durable=%x segs=%d batch=%d",
		ackedTotal, pairTotal, st.LastDurableZxid, st.WALSegments, st.FsyncBatchTxns)
}
