package coord

import (
	"fmt"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// RangeEntry is one node shipped by a range export: a captured
// WalkEntry plus the stub flag. A stub is an ancestor of in-range
// nodes shipped only so parents-first import finds a parent; the
// importer creates it if missing and never overwrites it. An
// authoritative (non-stub) entry is created-or-overwritten exactly as
// captured.
type RangeEntry struct {
	Path string
	Data []byte
	Stat znode.Stat
	Seq  int64
	Stub bool
}

// encodeRangeEntries streams entries in the §14.3 snapshot vocabulary:
// a true marker before each record, false after the last. Generic over
// wire.Sink so the same monomorphised body feeds the framed RPC writer
// and the chunked stream Encoder.
func encodeRangeEntries[W wire.Sink](w W, entries []RangeEntry) {
	for _, e := range entries {
		w.Bool(true)
		w.Bool(e.Stub)
		w.String(e.Path)
		w.Bytes32(e.Data)
		encodeStat(w, e.Stat)
		w.Int64(e.Seq)
	}
	w.Bool(false)
}

// decodeRangeEntries reads a stream produced by encodeRangeEntries.
func decodeRangeEntries[R wire.Source](r R) ([]RangeEntry, error) {
	var entries []RangeEntry
	for r.Bool() {
		e := RangeEntry{Stub: r.Bool(), Path: r.String(), Data: r.Bytes32()}
		e.Stat = decodeStat(r)
		e.Seq = r.Int64()
		if err := sourceErr(r); err != nil {
			return nil, fmt.Errorf("coord: decode range entry: %w", err)
		}
		entries = append(entries, e)
	}
	if err := sourceErr(r); err != nil {
		return nil, fmt.Errorf("coord: decode range stream: %w", err)
	}
	return entries, nil
}

// encodeManifest appends the live-path manifest that final delta
// shipments carry for reconciliation.
func encodeManifest[W wire.Sink](w W, paths []string) {
	w.Uint32(uint32(len(paths)))
	for _, p := range paths {
		w.String(p)
	}
}

func decodeManifest[R wire.Source](r R) ([]string, error) {
	n := r.Uint32()
	if err := sourceErr(r); err != nil {
		return nil, err
	}
	paths := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		paths = append(paths, r.String())
	}
	return paths, sourceErr(r)
}

// sourceErr reads the sticky error out of either Source
// implementation (wire.Reader or wire.Decoder both expose Err).
func sourceErr[R wire.Source](r R) error {
	type errer interface{ Err() error }
	if e, ok := any(r).(errer); ok {
		return e.Err()
	}
	return nil
}
