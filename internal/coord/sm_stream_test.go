package coord

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/wire"
)

// resultPayload unwraps an okResult's status header, returning the
// op-specific payload.
func resultPayload(t *testing.T, result []byte) []byte {
	t.Helper()
	r := wire.NewReader(result)
	if code := r.Uint8(); code != codeOK {
		t.Fatalf("apply failed with code %d", code)
	}
	_ = r.String() // detail
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	return result[len(result)-r.Remaining():]
}

// populateSM builds a state machine with sessions, dedup history and a
// small tree — every snapshot section non-trivially populated.
func populateSM(t *testing.T) *stateMachine {
	t.Helper()
	sm := newStateMachine()
	now := time.Now().UnixNano()
	sm.Apply(encodeNewSessionTxn(), 0x100000001)
	sm.Apply(encodeNewSessionTxn(), 0x100000002)
	zxid := uint64(0x100000003)
	seq := uint64(0)
	apply := func(txn []byte) {
		sm.Apply(txn, zxid)
		zxid++
	}
	next := func() uint64 { seq++; return seq }
	apply(encodeCreateTxn("/app", []byte("root"), znode.ModePersistent, 1, next(), now))
	apply(encodeCreateTxn("/app/a", []byte("alpha"), znode.ModePersistent, 1, next(), now))
	apply(encodeCreateTxn("/app/b", []byte("beta"), znode.ModeEphemeral, 2, 1, now))
	apply(encodeSetTxn("/app/a", []byte("alpha-2"), -1, 1, next(), now))
	apply(encodeCreateTxn("/app/seq-", []byte("s"), znode.ModeSequential, 1, next(), now))
	return sm
}

// TestSnapshotStreamBlobIdentical pins the compatibility contract
// between the two serialization forms: Snapshot() must return exactly
// the bytes SnapshotTo writes, so a blob-path replica and a
// streaming-path replica exchange snapshots freely.
func TestSnapshotStreamBlobIdentical(t *testing.T) {
	sm := populateSM(t)
	blob := sm.Snapshot()
	var streamed bytes.Buffer
	if err := sm.SnapshotTo(&streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, streamed.Bytes()) {
		t.Fatalf("Snapshot (%d bytes) and SnapshotTo (%d bytes) disagree",
			len(blob), streamed.Len())
	}
}

// TestSnapshotStreamingRoundtrip restores a streamed snapshot into a
// fresh machine and demands full state equality: tree fingerprint,
// session survival, and dedup replay protection.
func TestSnapshotStreamingRoundtrip(t *testing.T) {
	sm := populateSM(t)
	var buf bytes.Buffer
	if err := sm.SnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}

	restored := newStateMachine()
	if err := restored.RestoreFrom(&buf, 0x100000008); err != nil {
		t.Fatal(err)
	}
	if a, b := sm.treeRef().Fingerprint(), restored.treeRef().Fingerprint(); a != b {
		t.Fatalf("tree fingerprint mismatch after streamed restore: %x vs %x", a, b)
	}
	// Dedup windows traveled too: re-applying an already-applied write
	// on the restored machine must return the cached result, not
	// re-execute (the tree would report ErrNodeExists on a re-run).
	now := time.Now().UnixNano()
	res := restored.Apply(encodeCreateTxn("/app/a", []byte("alpha"), znode.ModePersistent, 1, 2, now), 0x100000099)
	created, err := decodeCreateReply(resultPayload(t, res))
	if err != nil {
		t.Fatalf("replayed create on restored machine: %v", err)
	}
	if created != "/app/a" {
		t.Fatalf("replayed create returned %q", created)
	}
}

// TestRestoreFromRejectsTrailingBytes: a stream with bytes past the
// encoded state is a framing bug and must refuse to restore.
func TestRestoreFromRejectsTrailingBytes(t *testing.T) {
	sm := populateSM(t)
	snap := append(sm.Snapshot(), 0xEE)
	restored := newStateMachine()
	if err := restored.RestoreFrom(bytes.NewReader(snap), 1); err == nil {
		t.Fatal("RestoreFrom accepted a snapshot with trailing bytes")
	}
	// The failed restore must not have touched the machine: the tree is
	// still the empty one it started with.
	if got := restored.treeRef().Count(); got != 0 {
		t.Fatalf("failed restore left %d nodes behind", got)
	}
}
