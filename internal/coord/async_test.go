package coord

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/coord/znode"
	"repro/internal/transport"
)

// startLatencyEnsemble boots a single-server ensemble behind an
// injected per-call delay, so round trips dominate and pipelining is
// observable in wall-clock time.
func startLatencyEnsemble(t *testing.T, rtt time.Duration) *Ensemble {
	t.Helper()
	ensembleSeq++
	e, err := StartEnsemble(EnsembleConfig{
		Servers: 1,
		Net: &transport.Latency{
			Inner: transport.NewInProc(),
			Delay: func() time.Duration { return rtt },
		},
		AddrPrefix:        fmt.Sprintf("async%d", ensembleSeq),
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// TestBeginPipelinesWrites issues a flight of creates from ONE
// goroutine through Begin and verifies (a) every future resolves with
// its own created path and (b) the flight overlaps its round trips —
// the synchronous cost would be K round trips, the pipelined flight
// must come in well under half that.
func TestBeginPipelinesWrites(t *testing.T) {
	const (
		rtt = 5 * time.Millisecond
		k   = 20
	)
	e := startLatencyEnsemble(t, rtt)
	s := connect(t, e, -1)
	ctx := context.Background()

	if _, err := s.Create("/p", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	futs := make([]*Future, k)
	for i := 0; i < k; i++ {
		futs[i] = s.Begin(ctx, CreateOp(fmt.Sprintf("/p/f%d", i), nil, znode.ModePersistent))
	}
	for i, f := range futs {
		res, err := f.Result()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if want := fmt.Sprintf("/p/f%d", i); res.Created != want {
			t.Fatalf("future %d created %q, want %q", i, res.Created, want)
		}
	}
	if elapsed := time.Since(start); elapsed > k*rtt/2 {
		t.Fatalf("pipelined flight took %v; serial cost is %v — no overlap", elapsed, k*rtt)
	}
	kids, err := s.Children("/p")
	if err != nil || len(kids) != k {
		t.Fatalf("children after flight = %d, %v; want %d", len(kids), err, k)
	}
}

// TestPipelineBatcher drives the same flight through the Pipeline
// convenience layer, mixing op kinds, and checks Wait's first-error
// contract.
func TestPipelineBatcher(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	pl := NewPipeline(context.Background(), s)
	pl.Create("/pl", []byte("d"), znode.ModePersistent)
	if err := pl.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		pl.Create(fmt.Sprintf("/pl/f%d", i), nil, znode.ModePersistent)
	}
	pl.Set("/pl", []byte("d2"), -1)
	if pl.Outstanding() != 9 {
		t.Fatalf("outstanding = %d, want 9", pl.Outstanding())
	}
	if err := pl.Wait(); err != nil {
		t.Fatal(err)
	}
	if pl.Outstanding() != 0 {
		t.Fatalf("outstanding after Wait = %d", pl.Outstanding())
	}
	// A failing op surfaces from Wait; the rest of the flight still
	// applies.
	pl.Create("/pl/f0", nil, znode.ModePersistent) // exists
	pl.Delete("/pl/f1", -1)
	if err := pl.Wait(); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("Wait = %v, want ErrNodeExists", err)
	}
	if _, ok, _ := s.Exists("/pl/f1"); ok {
		t.Fatal("delete queued alongside the failing create did not apply")
	}
}

// TestBeginContextCancelReleasesFuture cancels a context while its
// operation is mid-flight (held up by transport latency) and verifies
// the future resolves promptly with ctx.Err() — and that the session
// keeps working afterwards: the abandoned response is dropped, the
// next write proceeds normally.
func TestBeginContextCancelReleasesFuture(t *testing.T) {
	e := startLatencyEnsemble(t, 50*time.Millisecond)
	s := connect(t, e, -1)

	ctx, cancel := context.WithCancel(context.Background())
	fut := s.Begin(ctx, CreateOp("/cancelled", nil, znode.ModePersistent))
	time.Sleep(5 * time.Millisecond) // let the request reach the wire
	cancel()
	done := time.Now()
	if _, err := fut.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled future = %v, want context.Canceled", err)
	}
	if waited := time.Since(done); waited > 25*time.Millisecond {
		t.Fatalf("future released %v after cancel; want immediate", waited)
	}
	// The session is not poisoned: subsequent synchronous and
	// asynchronous ops both succeed.
	if _, err := s.Create("/after", nil, znode.ModePersistent); err != nil {
		t.Fatalf("session unusable after cancel: %v", err)
	}
	if _, err := s.Begin(context.Background(), CreateOp("/after2", nil, znode.ModePersistent)).Result(); err != nil {
		t.Fatalf("async unusable after cancel: %v", err)
	}
}

// TestBeginPreCancelledContext never dispatches: the future resolves
// with ctx.Err() immediately.
func TestBeginPreCancelledContext(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Begin(ctx, CreateOp("/x", nil, znode.ModePersistent)).Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRequestCtxDeadline bounds a synchronous call with a context
// deadline shorter than the retry budget: with every server stopped
// the call must return promptly with a deadline error instead of
// grinding through DialTimeout.
func TestRequestCtxDeadline(t *testing.T) {
	e := startTestEnsemble(t, 1)
	// No connect() helper: its cleanup would Close against the stopped
	// ensemble and grind through the full retry budget.
	s, err := e.Connect(-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/alive", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = s.CreateCtx(ctx, "/dead", nil, znode.ModePersistent)
	if err == nil {
		t.Fatal("create against stopped ensemble succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
		t.Fatalf("err = %v, want deadline-bounded failure", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline-bounded call took %v", elapsed)
	}
}

// TestInFlightFuturesResolveAcrossFailover kills the server a session
// is connected to while a flight of async creates is outstanding.
// Every future must RESOLVE (success via retry on the next server, or
// a clean error) — never hang — and the session must stay usable.
func TestInFlightFuturesResolveAcrossFailover(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, 0) // pinned to server 0 first
	if _, err := s.Create("/fo", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	const k = 8
	futs := make([]*Future, k)
	for i := 0; i < k; i++ {
		futs[i] = s.Begin(context.Background(), CreateOp(fmt.Sprintf("/fo/f%d", i), nil, znode.ModePersistent))
	}
	e.Servers[0].Stop()

	deadline := time.After(2 * DialTimeout)
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-deadline:
			t.Fatalf("future %d still unresolved after failover", i)
		}
		// Either outcome is legal; hanging is not. A success must be
		// real: the node visible through the surviving servers.
		if res, err := f.Result(); err == nil {
			if _, ok, gerr := s.Exists(res.Created); gerr != nil || !ok {
				t.Fatalf("future %d reported created %q but node is missing (%v)", i, res.Created, gerr)
			}
		}
	}
	if _, err := s.Create("/fo/after-failover", nil, znode.ModePersistent); err != nil {
		t.Fatalf("session unusable after failover: %v", err)
	}
}

// TestWaitEventsParksUntilEvent verifies the push path end to end: a
// parked WaitEvents is released by the event's commit, well before its
// maxWait, and carries the event.
func TestWaitEventsParksUntilEvent(t *testing.T) {
	_, a, b := watchEnv(t)
	if _, err := a.Create("/we", []byte("v0"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.GetW("/we"); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		b.Set("/we", []byte("v1"), -1) //nolint:errcheck
	}()
	start := time.Now()
	evs, err := a.WaitEvents(context.Background(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EventDataChanged || evs[0].Path != "/we" {
		t.Fatalf("events = %+v", evs)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("parked wait released after %v; want release at event time", elapsed)
	}
}

// TestWaitEventsTimesOutEmpty: no watches, short wait → (nil, nil)
// after roughly maxWait.
func TestWaitEventsTimesOutEmpty(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	start := time.Now()
	evs, err := s.WaitEvents(context.Background(), 80*time.Millisecond)
	if err != nil || len(evs) != 0 {
		t.Fatalf("WaitEvents = %v, %v; want empty timeout", evs, err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("timed-out wait lasted %v, want ≈80ms", elapsed)
	}
}

// TestWaitEventsCtxCancelReleasesPark: cancelling the context releases
// the client immediately even though the server-side park lives on.
func TestWaitEventsCtxCancelReleasesPark(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan error, 1)
	go func() {
		_, err := s.WaitEvents(ctx, 30*time.Second)
		released <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-released:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled WaitEvents never returned")
	}
}

// TestAsyncOrderIndependence documents the ordering contract: two
// futures are unordered, but chaining on completion restores order.
func TestAsyncOrderIndependence(t *testing.T) {
	e := startTestEnsemble(t, 1)
	s := connect(t, e, -1)
	ctx := context.Background()
	if _, err := s.Begin(ctx, CreateOp("/chain", nil, znode.ModePersistent)).Result(); err != nil {
		t.Fatal(err)
	}
	// Chained: parent resolved before child submitted.
	if _, err := s.Begin(ctx, CreateOp("/chain/kid", nil, znode.ModePersistent)).Result(); err != nil {
		t.Fatal(err)
	}
	// Check-op through the async layer.
	if _, err := s.Begin(ctx, CheckOp("/chain/kid", 0)).Result(); err != nil {
		t.Fatalf("async check: %v", err)
	}
	// Sync barrier through the async layer.
	if err := s.Begin(ctx, Op{Kind: OpSync}).Err(); err != nil {
		t.Fatalf("async sync: %v", err)
	}
	// Unknown kind resolves, with an error.
	if err := s.Begin(ctx, Op{Kind: OpKind(99)}).Err(); err == nil {
		t.Fatal("unknown op kind resolved nil")
	}
}

// TestWaitEventsSurfacesWatchLoss pins the failover contract: when the
// server holding a session's watches dies, a parked WaitEvents must
// return an ERROR promptly — not silently re-park on the failover
// server (which holds none of the caller's watches) until maxWait.
func TestWaitEventsSurfacesWatchLoss(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, 0)
	if _, err := s.Create("/wl", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetW("/wl"); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := s.WaitEvents(context.Background(), 30*time.Second)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the long-poll park
	e.Servers[0].Stop()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("WaitEvents returned nil after its server died; watch loss was masked")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitEvents still parked 5s after its server died")
	}
	// The session itself fails over for regular operations.
	if _, err := s.Create("/wl2", nil, znode.ModePersistent); err != nil {
		t.Fatalf("session did not fail over: %v", err)
	}
}

// TestWaitEventsDetectsFailoverBetweenParks covers the generation
// check: the failover happens BETWEEN two WaitEvents calls (a
// concurrent write notices the dead server and redials), so the next
// park starts on a healthy connection — and must still report
// ErrWatchesLost rather than parking on a server that holds none of
// the session's watches.
func TestWaitEventsDetectsFailoverBetweenParks(t *testing.T) {
	e := startTestEnsemble(t, 3)
	s := connect(t, e, 0)
	if _, err := s.Create("/bg", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetW("/bg"); err != nil {
		t.Fatal(err)
	}
	// Establish the event stream's connection generation.
	if _, err := s.WaitEvents(context.Background(), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	e.Servers[0].Stop()
	// A regular write fails over the session to a surviving server.
	if _, err := s.Create("/bg2", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitEvents(context.Background(), time.Second); !errors.Is(err, ErrWatchesLost) {
		t.Fatalf("WaitEvents after silent failover = %v, want ErrWatchesLost", err)
	}
	// Reported once; the stream then resumes on the new server.
	if _, err := s.WaitEvents(context.Background(), 30*time.Millisecond); err != nil {
		t.Fatalf("WaitEvents after loss report = %v, want clean re-park", err)
	}
}
