package coord

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coord/znode"
	"repro/internal/placement"
	"repro/internal/wire"
)

// rangeState is one migration marker on a shard's state machine: a
// hash range that is either fenced (writes bounce retryably while the
// delta ships) or moved (reads and writes bounce permanently to dest).
// A node q belongs to the range iff KeyHash(parent(q)) ∈ [lo,hi) —
// the same predicate the router uses to place q — so fence, export,
// wipe and redirect all agree on exactly which nodes are moving.
type rangeState struct {
	rng   placement.Range
	dest  int
	epoch uint64
	moved bool
}

// isPlacementPath reports whether path lies in the placement subtree,
// which is exempt from fences, moves, exports and wipes (it is pinned
// to shard 0 by the router, never hash-routed).
func isPlacementPath(path string) bool {
	return path == PlacementPrefix || strings.HasPrefix(path, PlacementPrefix+"/")
}

// writeRoutingHash returns the routing coordinate of a node operation
// on path: the hash of its parent directory, mirroring
// shard.Router.ShardFor.
func writeRoutingHash(path string) uint64 {
	parent := "/"
	// Malformed paths (no leading slash) are left to tree validation;
	// routing them as root keeps the bounce check panic-free and still
	// deterministic across replicas.
	if len(path) > 1 && path[0] == '/' {
		parent, _ = znode.SplitPath(path)
	}
	return placement.KeyHash(parent)
}

// rangeFor returns the marker covering hash h, or nil.
func (s *stateMachine) rangeFor(h uint64) *rangeState {
	for i := range s.ranges {
		if s.ranges[i].rng.Contains(h) {
			return &s.ranges[i]
		}
	}
	return nil
}

// bounceWrite decides whether a write transaction addressing path must
// bounce instead of applying: ErrFenced while the range's delta ships,
// MovedError once ownership has flipped. Runs inside apply, on
// replicated state, so every replica returns the identical result.
func (s *stateMachine) bounceWrite(path string) error {
	if isPlacementPath(path) {
		return nil
	}
	h := writeRoutingHash(path)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rs := s.rangeFor(h); rs != nil {
		if rs.moved {
			return &MovedError{Epoch: rs.epoch, Shard: rs.dest}
		}
		return ErrFenced
	}
	return nil
}

// bounceRead decides whether a local read addressing path must bounce.
// Only moved ranges bounce reads — a fenced range still serves them
// (the data has not left yet). childKeyed selects the children-listing
// routing rule (hash of path itself) over the node rule (hash of the
// parent), mirroring the router's split.
func (s *stateMachine) bounceRead(path string, childKeyed bool) error {
	if isPlacementPath(path) {
		return nil
	}
	var h uint64
	if childKeyed {
		h = placement.KeyHash(path)
	} else {
		h = writeRoutingHash(path)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rs := s.rangeFor(h); rs != nil && rs.moved {
		return &MovedError{Epoch: rs.epoch, Shard: rs.dest}
	}
	return nil
}

// rangeStates returns a copy of the live markers for status reporting.
func (s *stateMachine) rangeStates() []rangeState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]rangeState(nil), s.ranges...)
}

// applyMigration handles the replicated migration control transactions.
// Layouts (after op byte, session u64, seq u64):
//
//	fenceRange:   lo u64, hi u64, dest u32, epoch u64
//	unfenceRange: lo u64, hi u64
//	rangeMoved:   lo u64, hi u64, dest u32, epoch u64
//	wipeRange:    lo u64, hi u64
//	importRange:  final bool, entry stream, then (if final) manifest
func (s *stateMachine) applyMigration(ctx *applyCtx, op uint8, session uint64, r *wire.Reader, zxid uint64) []byte {
	switch op {
	case opFenceRange:
		lo, hi := r.Uint64(), r.Uint64()
		dest := int(r.Uint32())
		epoch := r.Uint64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		rng := placement.Range{Lo: lo, Hi: hi}
		s.mu.Lock()
		for i := range s.ranges {
			if s.ranges[i].rng == rng {
				if s.ranges[i].moved {
					mv := &MovedError{Epoch: s.ranges[i].epoch, Shard: s.ranges[i].dest}
					s.mu.Unlock()
					return errResult(mv)
				}
				s.ranges[i] = rangeState{rng: rng, dest: dest, epoch: epoch}
				s.mu.Unlock()
				return okResult(func(w *wire.Writer) { w.Uint64(zxid) })
			}
		}
		s.ranges = append(s.ranges, rangeState{rng: rng, dest: dest, epoch: epoch})
		sort.Slice(s.ranges, func(i, j int) bool { return s.ranges[i].rng.Lo < s.ranges[j].rng.Lo })
		s.mu.Unlock()
		// The fence zxid: every write committed at or before it is in
		// the shard's state; the delta export filters on it.
		return okResult(func(w *wire.Writer) { w.Uint64(zxid) })
	case opUnfenceRange:
		lo, hi := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		rng := placement.Range{Lo: lo, Hi: hi}
		s.mu.Lock()
		for i := range s.ranges {
			if s.ranges[i].rng == rng && !s.ranges[i].moved {
				s.ranges = append(s.ranges[:i], s.ranges[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		// Idempotent: unfencing an absent range is a no-op success, so a
		// retried abort converges.
		return okResult(nil)
	case opRangeMoved:
		lo, hi := r.Uint64(), r.Uint64()
		dest := int(r.Uint32())
		epoch := r.Uint64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		rng := placement.Range{Lo: lo, Hi: hi}
		s.mu.Lock()
		marked := false
		for i := range s.ranges {
			if s.ranges[i].rng == rng {
				s.ranges[i] = rangeState{rng: rng, dest: dest, epoch: epoch, moved: true}
				marked = true
				break
			}
		}
		if !marked {
			s.ranges = append(s.ranges, rangeState{rng: rng, dest: dest, epoch: epoch, moved: true})
			sort.Slice(s.ranges, func(i, j int) bool { return s.ranges[i].rng.Lo < s.ranges[j].rng.Lo })
		}
		s.mu.Unlock()
		deleted := s.wipeRange(ctx, rng, session, zxid)
		return okResult(func(w *wire.Writer) { w.Uint32(uint32(deleted)) })
	case opWipeRange:
		lo, hi := r.Uint64(), r.Uint64()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		deleted := s.wipeRange(ctx, placement.Range{Lo: lo, Hi: hi}, session, zxid)
		return okResult(func(w *wire.Writer) { w.Uint32(uint32(deleted)) })
	case opImportRange:
		lo, hi := r.Uint64(), r.Uint64()
		final := r.Bool()
		if err := r.Err(); err != nil {
			return errResult(err)
		}
		rng := placement.Range{Lo: lo, Hi: hi}
		entries, derr := decodeRangeEntries(r)
		if derr != nil {
			return errResult(derr)
		}
		var manifest []string
		if final {
			var merr error
			manifest, merr = decodeManifest(r)
			if merr != nil {
				return errResult(merr)
			}
		}
		imported := 0
		for _, e := range entries {
			// Session IDs are shard-local, so an imported ephemeral is
			// promoted to persistent (DESIGN.md §15 limitation).
			e.Stat.EphemeralOwner = 0
			err := s.tree.PutEntry(znode.WalkEntry{Path: e.Path, Data: e.Data, Stat: e.Stat, Seq: e.Seq}, !e.Stub)
			if err != nil {
				return errResult(fmt.Errorf("import %q: %w", e.Path, err))
			}
			if !e.Stub {
				imported++
				if s.notify != nil {
					ctx.note(opCreate, e.Path, session, true)
				}
			}
		}
		reconciled := 0
		if final {
			reconciled = s.reconcileRange(ctx, rng, entries, manifest, session, zxid)
			// This shard is becoming the range's owner: a stale moved
			// marker left by an earlier migration away from here would
			// bounce clients off their own data, so the final import
			// retires it. (Non-final pre-copies keep the marker — until
			// the flip, redirecting to the current owner is correct.)
			s.mu.Lock()
			for i := range s.ranges {
				if s.ranges[i].rng == rng && s.ranges[i].moved {
					s.ranges = append(s.ranges[:i], s.ranges[i+1:]...)
					break
				}
			}
			s.mu.Unlock()
		}
		return okResult(func(w *wire.Writer) {
			w.Uint32(uint32(imported))
			w.Uint32(uint32(reconciled))
		})
	default:
		return errResult(fmt.Errorf("unknown migration op %d", op))
	}
}

// collectRange returns the in-range live paths on this shard, in walk
// (parents-first, lexicographic) order, excluding the placement
// subtree — the shared membership scan behind wipe, reconcile and
// export.
func (s *stateMachine) collectRange(rng placement.Range) []string {
	var paths []string
	s.treeRef().Walk(func(e znode.WalkEntry) {
		if isPlacementPath(e.Path) {
			return
		}
		if rng.Contains(writeRoutingHash(e.Path)) {
			paths = append(paths, e.Path)
		}
	})
	return paths
}

// deleteSkippingNonEmpty deletes paths children-first, skipping nodes
// that still have children (an in-range node keeping out-of-range
// children survives as a stub, exactly like the router's cross-shard
// directory stubs). Deterministic: the input is walk-ordered, reversed.
func (s *stateMachine) deleteSkippingNonEmpty(ctx *applyCtx, paths []string, session uint64, zxid uint64) int {
	deleted := 0
	for i := len(paths) - 1; i >= 0; i-- {
		if err := s.tree.Delete(paths[i], -1, zxid); err == nil {
			deleted++
			if s.notify != nil {
				ctx.note(opDelete, paths[i], session, true)
			}
		}
	}
	return deleted
}

// wipeRange drops this shard's copy of every in-range node (moved
// source, or aborted destination).
func (s *stateMachine) wipeRange(ctx *applyCtx, rng placement.Range, session uint64, zxid uint64) int {
	return s.deleteSkippingNonEmpty(ctx, s.collectRange(rng), session, zxid)
}

// reconcileRange completes a final delta import: any in-range node
// present locally but absent from the source's live-path manifest was
// deleted on the source after the pre-copy shipped it, so it is
// deleted here too. The import transaction carries the migration
// range explicitly, so reconciliation covers the whole range even
// when the final delta ships no entries at all.
func (s *stateMachine) reconcileRange(ctx *applyCtx, rng placement.Range, entries []RangeEntry, manifest []string, session uint64, zxid uint64) int {
	live := make(map[string]bool, len(manifest))
	for _, p := range manifest {
		live[p] = true
	}
	for _, e := range entries {
		live[e.Path] = true // stubs and fresh deltas are live by construction
	}
	var stale []string
	for _, p := range s.collectRange(rng) {
		if !live[p] {
			stale = append(stale, p)
		}
	}
	return s.deleteSkippingNonEmpty(ctx, stale, session, zxid)
}

// exportRange captures the shard's in-range nodes changed since a
// zxid, plus stub entries for their ancestors so the destination can
// import parents-first, plus (optionally) the full in-range live-path
// manifest for reconciliation. The capture is fuzzy — the walk is one
// consistent cut, but `since` filtering may over-ship entries whose
// change raced the caller's zxid read, which import's overwrite
// semantics absorb.
func (s *stateMachine) exportRange(rng placement.Range, since uint64, withManifest bool) (entries []RangeEntry, manifest []string) {
	all := make(map[string]znode.WalkEntry)
	var changed []string
	s.treeRef().Walk(func(e znode.WalkEntry) {
		if isPlacementPath(e.Path) {
			return
		}
		all[e.Path] = e
		if !rng.Contains(writeRoutingHash(e.Path)) {
			return
		}
		if withManifest {
			manifest = append(manifest, e.Path)
		}
		if e.Stat.Czxid > since || e.Stat.Mzxid > since {
			changed = append(changed, e.Path)
		}
	})
	shipped := make(map[string]bool, len(changed))
	for _, p := range changed {
		shipped[p] = true
	}
	var ancestors []string
	seen := make(map[string]bool)
	for _, p := range changed {
		for parent, _ := znode.SplitPath(p); parent != "/"; parent, _ = znode.SplitPath(parent) {
			if shipped[parent] || seen[parent] {
				break // an ancestor's own ancestors are already queued
			}
			seen[parent] = true
			ancestors = append(ancestors, parent)
		}
	}
	for _, p := range ancestors {
		e, ok := all[p]
		if !ok {
			continue // unreachable on a consistent cut
		}
		re := RangeEntry{Path: e.Path, Data: e.Data, Stat: e.Stat, Seq: e.Seq, Stub: true}
		re.Stat.EphemeralOwner = 0
		entries = append(entries, re)
	}
	for _, p := range changed {
		e := all[p]
		re := RangeEntry{Path: e.Path, Data: e.Data, Stat: e.Stat, Seq: e.Seq}
		re.Stat.EphemeralOwner = 0
		entries = append(entries, re)
	}
	// Globally parents-first (depth, then path) across stubs AND
	// authoritative entries: a stub under an authoritative directory
	// must not import before that directory exists.
	sort.Slice(entries, func(i, j int) bool {
		di, dj := strings.Count(entries[i].Path, "/"), strings.Count(entries[j].Path, "/")
		if di != dj {
			return di < dj
		}
		return entries[i].Path < entries[j].Path
	})
	return entries, manifest
}
