package coord

import (
	"fmt"
	"testing"

	"repro/internal/coord/znode"
)

// writeAllocBudget is the end-to-end allocation ceiling for one write
// on a single-node ensemble: client encode (pooled writer), propose,
// group-commit apply, reply decode. The mechanical-sympathy pass
// landed at 10 allocations per write (seed: 22); the budget leaves
// headroom for toolchain drift while still catching a regression that
// reintroduces a per-write allocation source (an unpooled buffer, a
// hot-path closure, a queue that bleeds capacity).
const writeAllocBudget = 14

// TestWriteAllocBudget pins the write path's allocation count. It
// measures the full client→server→apply→reply loop, so a regression
// anywhere on the hot path shows up here with an exact number.
func TestWriteAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	e := startTestEnsemble(t, 1)
	s := connect(t, e, 0)
	if _, err := s.Create("/ap", nil, znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 200000)
	for i := range paths {
		paths[i] = fmt.Sprintf("/ap/n%d", i)
	}
	i := 0
	n := testing.AllocsPerRun(5000, func() {
		if _, err := s.Create(paths[i], nil, znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		i++
	})
	t.Logf("allocs per write: %v (budget %d)", n, writeAllocBudget)
	if n > writeAllocBudget {
		t.Fatalf("write path allocates %v per op, budget is %d", n, writeAllocBudget)
	}
}
