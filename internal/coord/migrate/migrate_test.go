package migrate

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/transport"
)

var harnessSeq int

// startShards boots n independent ensembles on one in-process network
// and returns a session per shard.
func startShards(t *testing.T, n, servers int) []*coord.Session {
	t.Helper()
	harnessSeq++
	net := transport.NewInProc()
	sessions := make([]*coord.Session, n)
	for s := 0; s < n; s++ {
		e, err := coord.StartEnsemble(coord.EnsembleConfig{
			Servers:           servers,
			Net:               net,
			AddrPrefix:        fmt.Sprintf("migtest%d-%d", harnessSeq, s),
			HeartbeatInterval: 5 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Stop)
		sess, err := e.Connect(-1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sess.Close() })
		sessions[s] = sess
	}
	return sessions
}

// seedRange creates dir and nchildren under it on the shard the
// epoch-0 table routes them to, returning (source shard, range).
func seedRange(t *testing.T, sessions []*coord.Session, dir string, nchildren int) (int, placement.Range) {
	t.Helper()
	tbl, err := placement.NewTable(len(sessions))
	if err != nil {
		t.Fatal(err)
	}
	src := tbl.Locate(dir)
	s := sessions[src]
	if _, err := s.Create(dir, []byte("dir"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nchildren; i++ {
		p := fmt.Sprintf("%s/n%03d", dir, i)
		if _, err := s.Create(p, []byte("v0:"+p), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}
	return src, RangeForDir(dir)
}

func TestMigrateMovesRange(t *testing.T) {
	sessions := startShards(t, 2, 3)
	src, rng := seedRange(t, sessions, "/data", 8)
	dest := 1 - src
	reg := metrics.NewRegistry()
	co, err := New(Config{Sessions: sessions, Registry: reg, BatchEntries: 3})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := co.Migrate(context.Background(), rng, dest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != src || rep.Dest != dest || rep.Epoch == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PrecopyN == 0 || rep.BytesShipped == 0 {
		t.Fatalf("report shipped nothing: %+v", rep)
	}

	// Destination serves the data.
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/data/n%03d", i)
		if data, _, err := sessions[dest].Get(p); err != nil || string(data) != "v0:"+p {
			t.Fatalf("dest %s = %q, %v", p, data, err)
		}
	}
	// Source redirects.
	var mv *coord.MovedError
	if _, _, err := sessions[src].Get("/data/n000"); !errors.As(err, &mv) {
		t.Fatalf("source read err = %v, want MovedError", err)
	} else if mv.Shard != dest {
		t.Fatalf("redirect names shard %d, want %d", mv.Shard, dest)
	}
	// The published table routes the range to dest.
	data, _, err := sessions[0].Get(coord.PlacementTablePath)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := placement.DecodeTable(data)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.LocateHash(rng.Lo); got != dest {
		t.Fatalf("published table routes range to %d, want %d", got, dest)
	}
	if tbl.Epoch() != rep.Epoch {
		t.Fatalf("published epoch %d, report %d", tbl.Epoch(), rep.Epoch)
	}
	// Intent cleaned up.
	if kids, err := sessions[0].Children(coord.PlacementMigrationsPath); err != nil || len(kids) != 0 {
		t.Fatalf("leftover intents %v, %v", kids, err)
	}
	// Metrics flowed through the registry.
	if got := reg.Gauge("placement.epoch").Value(); got != int64(rep.Epoch) {
		t.Fatalf("placement.epoch gauge = %d, want %d", got, rep.Epoch)
	}
	if reg.Distribution("migrate.bytes_shipped").Count() != 1 {
		t.Fatal("migrate.bytes_shipped not recorded")
	}
	if reg.Histogram("migrate.fence_duration").Count() != 1 {
		t.Fatal("migrate.fence_duration not recorded")
	}
}

// TestMigrateThereAndBack moves a range away and then home again: the
// final import must retire the stale moved marker on the returning
// owner, or its own clients would bounce off their own data forever.
func TestMigrateThereAndBack(t *testing.T) {
	sessions := startShards(t, 2, 3)
	src, rng := seedRange(t, sessions, "/data", 4)
	dest := 1 - src
	co, err := New(Config{Sessions: sessions})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := co.Migrate(ctx, rng, dest); err != nil {
		t.Fatal(err)
	}
	rep, err := co.Migrate(ctx, rng, src)
	if err != nil {
		t.Fatalf("migrating home: %v", err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("second migration epoch = %d, want 2", rep.Epoch)
	}
	// The original shard serves its data again, reads and writes.
	if data, _, err := sessions[src].Get("/data/n000"); err != nil || string(data) != "v0:/data/n000" {
		t.Fatalf("home shard read = %q, %v", data, err)
	}
	if _, err := sessions[src].Set("/data/n000", []byte("home"), -1); err != nil {
		t.Fatalf("home shard write: %v", err)
	}
	// The way station redirects home.
	var mv *coord.MovedError
	if _, _, err := sessions[dest].Get("/data/n000"); !errors.As(err, &mv) || mv.Shard != src {
		t.Fatalf("way-station read err = %v, want MovedError to %d", err, src)
	}
}

// errCrash is what the step hook "kills" the coordinator with.
var errCrash = errors.New("injected coordinator crash")

// TestRecoverAtEveryStep kills the coordinator immediately before each
// protocol step, runs recovery, and asserts the range ends up owned by
// exactly one shard — rolled back before the flip, rolled forward
// after — and that the owner accepts writes (no fence leaks).
func TestRecoverAtEveryStep(t *testing.T) {
	steps := []string{"intent", "precopy", "fence", "delta", "flip", "publish", "cleanup"}
	for _, step := range steps {
		step := step
		t.Run(step, func(t *testing.T) {
			sessions := startShards(t, 2, 3)
			src, rng := seedRange(t, sessions, "/data", 4)
			dest := 1 - src
			ctx := context.Background()

			crashing, err := New(Config{
				Sessions: sessions,
				StepHook: func(s string) error {
					if s == step {
						return errCrash
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := crashing.Migrate(ctx, rng, dest); !errors.Is(err, errCrash) {
				t.Fatalf("migrate err = %v, want injected crash", err)
			}

			rec, err := New(Config{Sessions: sessions})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rec.Recover(ctx); err != nil {
				t.Fatalf("recover: %v", err)
			}

			// After the flip step has EXECUTED the migration must roll
			// forward; the hook fires before its step runs, so "publish"
			// and "cleanup" crashes are post-flip. Crashes while the
			// source was fenced ("delta", "flip") roll back via
			// RangeMoved on the destination, which leaves a redirect
			// marker there instead of a bare miss.
			rolledForward := step == "publish" || step == "cleanup"
			remarked := step == "delta" || step == "flip"
			owner, other := src, dest
			if rolledForward {
				owner, other = dest, src
			}
			// The owner serves the data and accepts writes.
			if data, _, err := sessions[owner].Get("/data/n000"); err != nil || string(data) != "v0:/data/n000" {
				t.Fatalf("owner read = %q, %v", data, err)
			}
			if _, err := sessions[owner].Set("/data/n000", []byte("post"), -1); err != nil {
				t.Fatalf("owner write after recovery: %v", err)
			}
			// The other shard owns nothing in the range: reads either
			// redirect to the owner (moved marker from the flip or from
			// the fenced-rollback re-mark) or miss outright (pre-fence
			// crash: partial copy wiped, no marker ever existed).
			_, _, err = sessions[other].Get("/data/n000")
			var mv *coord.MovedError
			switch {
			case rolledForward || remarked:
				if !errors.As(err, &mv) {
					t.Fatalf("non-owner read err = %v, want MovedError", err)
				}
				if mv.Shard != owner {
					t.Fatalf("redirect names shard %d, want %d", mv.Shard, owner)
				}
			default:
				if !errors.Is(err, coord.ErrNoNode) {
					t.Fatalf("wiped shard read err = %v, want ErrNoNode", err)
				}
			}
			// No intent survives recovery.
			kids, err := sessions[0].Children(coord.PlacementMigrationsPath)
			if err != nil && !errors.Is(err, coord.ErrNoNode) {
				t.Fatal(err)
			}
			if len(kids) != 0 {
				t.Fatalf("leftover intents %v", kids)
			}
			// Recovery is idempotent.
			if _, err := rec.Recover(ctx); err != nil {
				t.Fatalf("second recover: %v", err)
			}
		})
	}
}

// TestMigrateRejectsSameShard pins the no-op guard.
func TestMigrateRejectsSameShard(t *testing.T) {
	sessions := startShards(t, 2, 1)
	src, rng := seedRange(t, sessions, "/data", 1)
	co, err := New(Config{Sessions: sessions})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Migrate(context.Background(), rng, src); err == nil {
		t.Fatal("migrating a range onto its own shard succeeded")
	}
}
