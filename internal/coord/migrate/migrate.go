// Package migrate implements online shard migration: moving a
// consistent-hash range of the namespace from one ensemble to another
// while both keep serving, with zero failed acked operations.
//
// The paper partitions metadata across back ends with a static
// consistent-hash ring (§IV-F); adding or draining a server is left as
// an offline operation. This package supplies the missing control
// plane: a fence/ship/replay/flip protocol in the spirit of the region
// moves ZooKeeper-backed stores (HBase) perform, expressed over the
// repository's own primitives — fuzzy streaming snapshots (DESIGN.md
// §14) for the bulk copy, replicated fence markers for the write
// barrier, and an epoch-versioned placement table (placement.Table)
// for the routing flip.
//
// # Protocol
//
//  1. INTENT   — a migration intent znode is written under
//     /__placement/migrations, making the migration discoverable by
//     Recover whatever happens next.
//  2. PRE-COPY — a fuzzy export of the range streams to the
//     destination while the source keeps serving writes. The export's
//     applied-zxid horizon S is recorded.
//  3. FENCE    — a replicated fence transaction lands on the source:
//     writes into the range now bounce with a retryable redirect,
//     reads keep serving. Acked writes are never lost: every write
//     either committed before the fence (and ships in the delta) or
//     bounced (and was never acked).
//  4. DELTA    — everything the range changed since S ships, plus a
//     live-path manifest; the destination reconciles deletions against
//     it. The window is a delta, not a bulk copy — milliseconds.
//  5. FLIP     — the source's fence marker becomes a moved marker
//     (reads and writes now redirect permanently, naming the new owner
//     and epoch) and the source drops its copy of the range.
//  6. PUBLISH  — the placement table znode is CAS-bumped to the new
//     epoch. Routers learn lazily: the first op to hit the moved
//     marker chases the redirect, refreshes the table, retries.
//  7. CLEANUP  — the intent znode is deleted.
//
// A coordinator crash leaves the range owned by exactly one shard at
// every step: before FLIP the source still owns it (Recover rolls
// back — wipes the partial destination copy, lifts the fence); from
// FLIP on the destination owns it (Recover rolls forward — re-publishes
// the table, deletes the intent). There is no step at which both
// shards serve the range.
package migrate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/wire"
)

// Config wires a Coordinator to a sharded deployment.
type Config struct {
	// Sessions holds one voter session per shard, indexed by shard id —
	// the same order the routers' session slices use.
	Sessions []*coord.Session
	// Registry receives migration metrics (migrate.fence_duration,
	// migrate.delta_txns, migrate.bytes_shipped, placement.epoch).
	// Optional.
	Registry *metrics.Registry
	// BatchEntries caps how many entries ride in one import
	// transaction. Defaults to 256.
	BatchEntries int
	// StepHook, when set, runs before each protocol step with the
	// step's name ("intent", "precopy", "fence", "delta", "flip",
	// "publish", "cleanup"). Returning an error abandons the migration
	// at exactly that point — the crash-injection seam the recovery
	// tests drive.
	StepHook func(step string) error
}

// Coordinator drives migrations and recovers abandoned ones.
type Coordinator struct {
	cfg Config
}

// New validates cfg and returns a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Sessions) < 2 {
		return nil, errors.New("migrate: need at least two shards")
	}
	if cfg.BatchEntries <= 0 {
		cfg.BatchEntries = 256
	}
	return &Coordinator{cfg: cfg}, nil
}

// Report summarises one completed migration.
type Report struct {
	Range         placement.Range
	Source, Dest  int
	Epoch         uint64        // placement epoch published for the move
	FenceDuration time.Duration // fence plant → ownership flip
	PrecopyN      int           // entries shipped before the fence
	DeltaTxns     int           // authoritative entries + reconciled deletes in the fenced window
	BytesShipped  int64         // path+data bytes across both phases
}

// RangeForDir returns the migration range that moves exactly the
// children of dir (the unit the routing function shards by).
func RangeForDir(dir string) placement.Range { return placement.RangeForKey(dir) }

// Owner reports the shard the current placement table routes rng to —
// the shard Migrate would treat as the source.
func (c *Coordinator) Owner(ctx context.Context, rng placement.Range) (int, error) {
	tbl, err := c.loadTable(ctx)
	if err != nil {
		return 0, err
	}
	return tbl.LocateHash(rng.Lo), nil
}

func (c *Coordinator) step(name string) error {
	if c.cfg.StepHook != nil {
		return c.cfg.StepHook(name)
	}
	return nil
}

func entriesBytes(entries []coord.RangeEntry) int64 {
	var n int64
	for _, e := range entries {
		n += int64(len(e.Path) + len(e.Data))
	}
	return n
}

// Migrate moves rng to shard dest. The source is whatever shard the
// current placement table routes rng to. On error the migration is
// left wherever it stopped — exactly like a coordinator crash — and
// Recover rolls it back or forward; nothing is left split-brain.
func (c *Coordinator) Migrate(ctx context.Context, rng placement.Range, dest int) (*Report, error) {
	if dest < 0 || dest >= len(c.cfg.Sessions) {
		return nil, fmt.Errorf("migrate: destination shard %d out of range", dest)
	}
	tbl, err := c.loadTable(ctx)
	if err != nil {
		return nil, err
	}
	src := tbl.LocateHash(rng.Lo)
	if src == dest {
		return nil, fmt.Errorf("migrate: range %v already lives on shard %d", rng, dest)
	}
	if src < 0 || src >= len(c.cfg.Sessions) {
		return nil, fmt.Errorf("migrate: source shard %d has no session", src)
	}
	next, err := tbl.WithMove(rng, dest)
	if err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	epoch := next.Epoch()
	srcS, destS := c.cfg.Sessions[src], c.cfg.Sessions[dest]
	rep := &Report{Range: rng, Source: src, Dest: dest, Epoch: epoch}

	// INTENT: make the migration discoverable before anything moves.
	if err := c.step("intent"); err != nil {
		return nil, err
	}
	if err := c.writeIntent(ctx, rng, src, dest, epoch); err != nil {
		return nil, err
	}

	// PRE-COPY: fuzzy bulk ship while the source keeps serving.
	if err := c.step("precopy"); err != nil {
		return nil, err
	}
	pre, err := srcS.RangeExport(ctx, rng, 0, false)
	if err != nil {
		return nil, fmt.Errorf("migrate: pre-copy export: %w", err)
	}
	rep.PrecopyN = len(pre.Entries)
	rep.BytesShipped += entriesBytes(pre.Entries)
	if err := c.importBatches(ctx, destS, rng, pre.Entries, false, nil); err != nil {
		return nil, fmt.Errorf("migrate: pre-copy import: %w", err)
	}

	// FENCE: stop the range's writes on the source.
	if err := c.step("fence"); err != nil {
		return nil, err
	}
	fenceStart := time.Now()
	if _, err := srcS.FenceRange(ctx, rng, dest, epoch); err != nil {
		return nil, fmt.Errorf("migrate: fence: %w", err)
	}

	// DELTA: ship the post-pre-copy effects and the manifest.
	if err := c.step("delta"); err != nil {
		return nil, err
	}
	delta, err := srcS.RangeExport(ctx, rng, pre.Zxid, true)
	if err != nil {
		return nil, fmt.Errorf("migrate: delta export: %w", err)
	}
	rep.BytesShipped += entriesBytes(delta.Entries)
	reconciled, err := c.importFinal(ctx, destS, rng, delta.Entries, delta.Manifest)
	if err != nil {
		return nil, fmt.Errorf("migrate: delta import: %w", err)
	}
	for _, e := range delta.Entries {
		if !e.Stub {
			rep.DeltaTxns++
		}
	}
	rep.DeltaTxns += reconciled

	// FLIP: ownership changes hands; the source drops its copy.
	if err := c.step("flip"); err != nil {
		return nil, err
	}
	if _, err := srcS.RangeMoved(ctx, rng, dest, epoch); err != nil {
		return nil, fmt.Errorf("migrate: flip: %w", err)
	}
	rep.FenceDuration = time.Since(fenceStart)

	// PUBLISH: routers can now learn the new epoch.
	if err := c.step("publish"); err != nil {
		return nil, err
	}
	finalEpoch, err := c.publishMove(ctx, rng, dest)
	if err != nil {
		return nil, fmt.Errorf("migrate: publish: %w", err)
	}
	rep.Epoch = finalEpoch

	// CLEANUP: the migration is durable everywhere; drop the intent.
	if err := c.step("cleanup"); err != nil {
		return nil, err
	}
	if err := c.deleteIntent(ctx, rng); err != nil {
		return nil, err
	}
	c.record(rep)
	return rep, nil
}

func (c *Coordinator) record(rep *Report) {
	if c.cfg.Registry == nil {
		return
	}
	c.cfg.Registry.Histogram("migrate.fence_duration").Observe(rep.FenceDuration)
	c.cfg.Registry.Distribution("migrate.delta_txns").Observe(int64(rep.DeltaTxns))
	c.cfg.Registry.Distribution("migrate.bytes_shipped").Observe(rep.BytesShipped)
	c.cfg.Registry.Gauge("placement.epoch").Set(int64(rep.Epoch))
}

// importBatches ships entries in BatchEntries-sized sub-transactions,
// preserving the stream's parents-first order.
func (c *Coordinator) importBatches(ctx context.Context, dest *coord.Session, rng placement.Range, entries []coord.RangeEntry, final bool, manifest []string) error {
	n := c.cfg.BatchEntries
	for len(entries) > n {
		if _, _, err := dest.ImportRange(ctx, rng, entries[:n], false, nil); err != nil {
			return err
		}
		entries = entries[n:]
	}
	_, _, err := dest.ImportRange(ctx, rng, entries, final, manifest)
	return err
}

// importFinal ships the delta and manifest; the last batch triggers
// the destination-side reconcile and returns its deletion count.
func (c *Coordinator) importFinal(ctx context.Context, dest *coord.Session, rng placement.Range, entries []coord.RangeEntry, manifest []string) (int, error) {
	n := c.cfg.BatchEntries
	for len(entries) > n {
		if _, _, err := dest.ImportRange(ctx, rng, entries[:n], false, nil); err != nil {
			return 0, err
		}
		entries = entries[n:]
	}
	_, reconciled, err := dest.ImportRange(ctx, rng, entries, true, manifest)
	return reconciled, err
}

// loadTable reads the published placement table, falling back to the
// epoch-0 table for the deployment's shard count when no migration has
// ever published one.
func (c *Coordinator) loadTable(ctx context.Context) (*placement.Table, error) {
	data, _, err := c.cfg.Sessions[0].GetCtx(ctx, coord.PlacementTablePath)
	if errors.Is(err, coord.ErrNoNode) {
		return placement.NewTable(len(c.cfg.Sessions))
	}
	if err != nil {
		return nil, fmt.Errorf("migrate: read placement table: %w", err)
	}
	tbl, err := placement.DecodeTable(data)
	if err != nil {
		return nil, fmt.Errorf("migrate: %w", err)
	}
	return tbl, nil
}

// publishMove CAS-loops the placement znode until a table routing rng
// to dest is published, and returns its epoch. Competing publishers
// (another migration, a racing recovery of this one) are absorbed:
// whoever loses the CAS re-reads and re-applies its move on top.
func (c *Coordinator) publishMove(ctx context.Context, rng placement.Range, dest int) (uint64, error) {
	s0 := c.cfg.Sessions[0]
	for attempt := 0; attempt < 16; attempt++ {
		data, stat, err := s0.GetCtx(ctx, coord.PlacementTablePath)
		switch {
		case errors.Is(err, coord.ErrNoNode):
			base, terr := placement.NewTable(len(c.cfg.Sessions))
			if terr != nil {
				return 0, terr
			}
			next, terr := base.WithMove(rng, dest)
			if terr != nil {
				return 0, terr
			}
			if cerr := c.ensurePlacementChain(ctx); cerr != nil {
				return 0, cerr
			}
			if _, cerr := s0.CreateCtx(ctx, coord.PlacementTablePath, next.Encode(), znode.ModePersistent); cerr != nil {
				if errors.Is(cerr, coord.ErrNodeExists) {
					continue // lost the race; re-read and retry
				}
				return 0, cerr
			}
			return next.Epoch(), nil
		case err != nil:
			return 0, err
		}
		cur, terr := placement.DecodeTable(data)
		if terr != nil {
			return 0, terr
		}
		if cur.LocateHash(rng.Lo) == dest && cur.LocateHash(lastHash(rng)) == dest {
			return cur.Epoch(), nil // already published (recovery re-run)
		}
		next, terr := cur.WithMove(rng, dest)
		if terr != nil {
			return 0, terr
		}
		if _, serr := s0.SetCtx(ctx, coord.PlacementTablePath, next.Encode(), stat.Version); serr != nil {
			if errors.Is(serr, coord.ErrBadVersion) {
				continue
			}
			return 0, serr
		}
		return next.Epoch(), nil
	}
	return 0, errors.New("migrate: placement table CAS contention")
}

// ensurePlacementChain creates /__placement and /__placement/migrations
// if missing (idempotent).
func (c *Coordinator) ensurePlacementChain(ctx context.Context) error {
	s0 := c.cfg.Sessions[0]
	for _, p := range []string{coord.PlacementPrefix, coord.PlacementMigrationsPath} {
		if _, err := s0.CreateCtx(ctx, p, nil, znode.ModePersistent); err != nil && !errors.Is(err, coord.ErrNodeExists) {
			return err
		}
	}
	return nil
}

// lastHash returns the highest hash rng contains (Hi==0 means the
// range runs through the top of the hash space).
func lastHash(rng placement.Range) uint64 {
	if rng.Hi == 0 {
		return ^uint64(0)
	}
	return rng.Hi - 1
}

// Intent znode payload.
const intentFormat = 1

type intent struct {
	rng       placement.Range
	src, dest int
	epoch     uint64
}

func intentName(rng placement.Range) string {
	return fmt.Sprintf("%016x-%016x", rng.Lo, rng.Hi)
}

func encodeIntent(it intent) []byte {
	var buf bytes.Buffer
	e := wire.NewEncoder(&buf, 0)
	e.Uint8(intentFormat)
	e.Uint64(it.rng.Lo)
	e.Uint64(it.rng.Hi)
	e.Uint32(uint32(it.src))
	e.Uint32(uint32(it.dest))
	e.Uint64(it.epoch)
	if err := e.Flush(); err != nil {
		panic(err) // bytes.Buffer writes cannot fail
	}
	return buf.Bytes()
}

func decodeIntent(b []byte) (intent, error) {
	d := wire.NewDecoder(bytes.NewReader(b))
	if v := d.Uint8(); d.Err() == nil && v != intentFormat {
		return intent{}, fmt.Errorf("migrate: unknown intent format %d", v)
	}
	it := intent{
		rng:   placement.Range{Lo: d.Uint64(), Hi: d.Uint64()},
		src:   int(d.Uint32()),
		dest:  int(d.Uint32()),
		epoch: d.Uint64(),
	}
	if d.Err() != nil {
		return intent{}, fmt.Errorf("migrate: decode intent: %w", d.Err())
	}
	return it, nil
}

func (c *Coordinator) writeIntent(ctx context.Context, rng placement.Range, src, dest int, epoch uint64) error {
	if err := c.ensurePlacementChain(ctx); err != nil {
		return err
	}
	path := coord.PlacementMigrationsPath + "/" + intentName(rng)
	blob := encodeIntent(intent{rng: rng, src: src, dest: dest, epoch: epoch})
	if _, err := c.cfg.Sessions[0].CreateCtx(ctx, path, blob, znode.ModePersistent); err != nil {
		if errors.Is(err, coord.ErrNodeExists) {
			return fmt.Errorf("migrate: migration already in progress for %v", rng)
		}
		return err
	}
	return nil
}

func (c *Coordinator) deleteIntent(ctx context.Context, rng placement.Range) error {
	path := coord.PlacementMigrationsPath + "/" + intentName(rng)
	err := c.cfg.Sessions[0].DeleteCtx(ctx, path, -1)
	if errors.Is(err, coord.ErrNoNode) {
		return nil
	}
	return err
}

// Recover sweeps abandoned migration intents and drives each to a
// single-owner terminal state. The decision rule exploits the protocol
// order: RangeMoved is only ever issued after the final delta import,
// so the source's marker is the commit point —
//
//	moved  → the destination has everything: roll FORWARD
//	         (re-publish the table, drop the intent);
//	fenced → the delta may be partial: roll BACK (wipe the
//	         destination's copy, lift the fence, drop the intent);
//	none   → the crash predates the fence: roll BACK (wipe any
//	         partial pre-copy, drop the intent).
//
// It returns one human-readable line per intent resolved.
func (c *Coordinator) Recover(ctx context.Context) ([]string, error) {
	s0 := c.cfg.Sessions[0]
	names, err := s0.ChildrenCtx(ctx, coord.PlacementMigrationsPath)
	if errors.Is(err, coord.ErrNoNode) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var resolved []string
	for _, name := range names {
		path := coord.PlacementMigrationsPath + "/" + name
		blob, _, err := s0.GetCtx(ctx, path)
		if errors.Is(err, coord.ErrNoNode) {
			continue // concurrently completed
		}
		if err != nil {
			return resolved, err
		}
		it, err := decodeIntent(blob)
		if err != nil {
			return resolved, fmt.Errorf("migrate: intent %s: %w", name, err)
		}
		if it.src < 0 || it.src >= len(c.cfg.Sessions) || it.dest < 0 || it.dest >= len(c.cfg.Sessions) {
			return resolved, fmt.Errorf("migrate: intent %s names unknown shard", name)
		}
		state, _, _, err := c.cfg.Sessions[it.src].RangeState(ctx, it.rng)
		if err != nil {
			return resolved, fmt.Errorf("migrate: intent %s: source state: %w", name, err)
		}
		switch state {
		case coord.RangeMovedState:
			epoch, err := c.publishMove(ctx, it.rng, it.dest)
			if err != nil {
				return resolved, err
			}
			if c.cfg.Registry != nil {
				c.cfg.Registry.Gauge("placement.epoch").Set(int64(epoch))
			}
			resolved = append(resolved, fmt.Sprintf("%v: rolled forward to shard %d (epoch %d)", it.rng, it.dest, epoch))
		case coord.RangeFenced:
			// The delta import may already have landed on the
			// destination — and with it, retired any moved marker a past
			// migration left there. Rolling back with RangeMoved rather
			// than a bare wipe both drops the partial copy and
			// re-asserts "the source owns this" on the destination, so
			// routers holding any table epoch still get redirected
			// instead of a silent miss.
			tbl, err := c.loadTable(ctx)
			if err != nil {
				return resolved, err
			}
			if _, err := c.cfg.Sessions[it.dest].RangeMoved(ctx, it.rng, it.src, tbl.Epoch()); err != nil {
				return resolved, err
			}
			if err := c.cfg.Sessions[it.src].UnfenceRange(ctx, it.rng); err != nil {
				return resolved, err
			}
			resolved = append(resolved, fmt.Sprintf("%v: rolled back to shard %d (fence lifted)", it.rng, it.src))
		default:
			if _, err := c.cfg.Sessions[it.dest].WipeRange(ctx, it.rng); err != nil {
				return resolved, err
			}
			resolved = append(resolved, fmt.Sprintf("%v: rolled back to shard %d (pre-fence crash)", it.rng, it.src))
		}
		if err := c.deleteIntent(ctx, it.rng); err != nil {
			return resolved, err
		}
	}
	return resolved, nil
}
