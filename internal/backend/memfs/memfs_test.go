package memfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func TestMkdirStatRmdir(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("/d")
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() || fi.Name != "d" {
		t.Fatalf("fi = %+v", fi)
	}
	if err := fs.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/a/b", 0o755); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("orphan mkdir err = %v", err)
	}
	if err := fs.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("dup mkdir err = %v", err)
	}
	if err := fs.Mkdir("/", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("mkdir / err = %v", err)
	}
}

func TestRmdirErrors(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	if _, err := fs.Create("/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/f"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("rmdir file err = %v", err)
	}
	if err := fs.Rmdir("/"); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("rmdir / err = %v", err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs := New()
	h, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("hello world"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close()
	got, err := vfs.ReadFile(fs, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
	fi, _ := fs.Stat("/f")
	if fi.Size != 11 || fi.IsDir() {
		t.Fatalf("fi = %+v", fi)
	}
}

func TestWriteAtSparseAndOverwrite(t *testing.T) {
	fs := New()
	h, err := fs.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("abc"), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("XY"), 0); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/f")
	want := "XY\x00\x00\x00abc"
	if string(got) != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestReadOnlyHandleRejectsWrites(t *testing.T) {
	fs := New()
	if err := vfs.WriteFile(fs, "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	h, err := fs.Open("/f", vfs.OpenRead)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.WriteAt([]byte("y"), 0); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("write on RO handle err = %v", err)
	}
}

func TestOpenFlags(t *testing.T) {
	fs := New()
	if _, err := fs.Open("/nope", vfs.OpenRead); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing err = %v", err)
	}
	h, err := fs.Open("/new", vfs.OpenCreate|vfs.OpenWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	h.Close()
	h2, err := fs.Open("/new", vfs.OpenWrite|vfs.OpenTrunc)
	if err != nil {
		t.Fatal(err)
	}
	h2.Close()
	fi, _ := fs.Stat("/new")
	if fi.Size != 0 {
		t.Fatalf("size after trunc = %d", fi.Size)
	}
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/d", vfs.OpenRead); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("open dir err = %v", err)
	}
}

func TestUnlink(t *testing.T) {
	fs := New()
	if err := vfs.WriteFile(fs, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("double unlink err = %v", err)
	}
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("unlink dir err = %v", err)
	}
}

func TestReaddirSorted(t *testing.T) {
	fs := New()
	for _, n := range []string{"/c", "/a", "/b"} {
		if err := fs.Mkdir(n, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := vfs.WriteFile(fs, "/z", nil); err != nil {
		t.Fatal(err)
	}
	es, err := fs.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	names := ""
	for _, e := range es {
		names += e.Name + ","
	}
	if names != "a,b,c,z," {
		t.Fatalf("entries = %q", names)
	}
	if !es[0].IsDir || es[3].IsDir {
		t.Fatal("IsDir flags wrong")
	}
}

func TestRenameFileAndDir(t *testing.T) {
	fs := New()
	if err := vfs.WriteFile(fs, "/f", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name still exists")
	}
	got, _ := vfs.ReadFile(fs, "/g")
	if string(got) != "v" {
		t.Fatalf("content after rename = %q", got)
	}
	if err := fs.Mkdir("/d1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d1/x", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d1", "/d2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d2/x"); err != nil {
		t.Fatalf("child lost after dir rename: %v", err)
	}
}

func TestRenameOntoExisting(t *testing.T) {
	fs := New()
	if err := vfs.WriteFile(fs, "/a", []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/b", []byte("B")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/b")
	if string(got) != "A" {
		t.Fatalf("content = %q", got)
	}
	files, _ := fs.Counts()
	if files != 1 {
		t.Fatalf("files = %d, want 1", files)
	}
	// dir over non-empty dir fails
	if err := fs.Mkdir("/d1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d2", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d2/x", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d1", "/d2"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rename onto non-empty dir err = %v", err)
	}
	// file over dir fails
	if err := fs.Rename("/b", "/d1"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("file-over-dir err = %v", err)
	}
}

func TestRenameIntoOwnSubtree(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d", "/d/sub"); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("err = %v", err)
	}
}

func TestSymlink(t *testing.T) {
	fs := New()
	if err := fs.Symlink("/target", "/link"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Readlink("/link")
	if err != nil || got != "/target" {
		t.Fatalf("readlink = %q, %v", got, err)
	}
	fi, _ := fs.Stat("/link")
	if !fi.IsSymlink() {
		t.Fatalf("mode = %o", fi.Mode)
	}
	if _, err := fs.Readlink("/"); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("readlink on dir err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	fs := New()
	if err := vfs.WriteFile(fs, "/f", []byte("123456")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/f", 3); err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(fs, "/f")
	if string(got) != "123" {
		t.Fatalf("after shrink = %q", got)
	}
	if err := fs.Truncate("/f", 5); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fs, "/f")
	if string(got) != "123\x00\x00" {
		t.Fatalf("after grow = %q", got)
	}
	if err := fs.Truncate("/f", -1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative size err = %v", err)
	}
}

func TestChmodAccess(t *testing.T) {
	fs := New()
	if err := vfs.WriteFile(fs, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod("/f", 0o400); err != nil {
		t.Fatal(err)
	}
	if err := fs.Access("/f", vfs.AccessRead); err != nil {
		t.Fatalf("read access denied: %v", err)
	}
	if err := fs.Access("/f", vfs.AccessWrite); !errors.Is(err, vfs.ErrAccess) {
		t.Fatalf("write access err = %v", err)
	}
	fi, _ := fs.Stat("/f")
	if fi.Mode&vfs.PermMask != 0o400 {
		t.Fatalf("mode = %o", fi.Mode)
	}
}

func TestCountsTrackEverything(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, "/d/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/x", "/d/l"); err != nil {
		t.Fatal(err)
	}
	files, dirs := fs.Counts()
	if files != 2 || dirs != 1 {
		t.Fatalf("counts = %d files, %d dirs", files, dirs)
	}
	if err := fs.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	files, _ = fs.Counts()
	if files != 1 {
		t.Fatalf("files after unlink = %d", files)
	}
}

func TestConcurrentCreates(t *testing.T) {
	fs := New()
	if err := fs.Mkdir("/p", 0o755); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				path := fmt.Sprintf("/p/f-%d-%d", w, i)
				if err := vfs.WriteFile(fs, path, []byte("x")); err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	es, err := fs.Readdir("/p")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 800 {
		t.Fatalf("entries = %d", len(es))
	}
}

func TestWriteReadRoundTripProperty(t *testing.T) {
	fs := New()
	i := 0
	if err := quick.Check(func(data []byte) bool {
		i++
		path := fmt.Sprintf("/q%d", i)
		if err := vfs.WriteFile(fs, path, data); err != nil {
			return false
		}
		got, err := vfs.ReadFile(fs, path)
		if err != nil {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for j := range data {
			if got[j] != data[j] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
