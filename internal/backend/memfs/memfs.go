// Package memfs is a complete in-memory filesystem implementing
// vfs.FileSystem. It plays two roles in the reproduction:
//
//   - the local "physical" store inside each simulated storage server
//     (Lustre OSS object store, PVFS data server), and
//   - a stand-alone back-end mount for unit tests and examples.
//
// It is safe for concurrent use; a single RWMutex guards the
// namespace, matching the coarse-grained semantics of a local disk
// filesystem under one kernel.
package memfs

import (
	"errors"
	"strings"
	"sync"
	"time"
)

import "repro/internal/vfs"

type inode struct {
	mode     uint32
	data     []byte
	target   string // symlink target
	children map[string]*inode
	nlink    uint32
	ctime    time.Time
	mtime    time.Time
}

func (n *inode) isDir() bool { return n.mode&vfs.ModeDir != 0 }

// FS is an in-memory filesystem. Use New.
type FS struct {
	mu   sync.RWMutex
	root *inode
	now  func() time.Time

	files int64 // regular files + symlinks
	dirs  int64 // directories, excluding root
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{
		root: &inode{
			mode:     vfs.ModeDir | 0o755,
			children: make(map[string]*inode),
			nlink:    2,
			ctime:    time.Now(),
			mtime:    time.Now(),
		},
		now: time.Now,
	}
}

// SetClock overrides the time source (tests).
func (f *FS) SetClock(now func() time.Time) { f.now = now }

// Counts returns the number of regular files/symlinks and directories.
func (f *FS) Counts() (files, dirs int64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.files, f.dirs
}

// lookup walks to the inode at a cleaned path. Caller holds f.mu.
func (f *FS) lookup(path string) (*inode, error) {
	if path == "/" {
		return f.root, nil
	}
	cur := f.root
	for _, seg := range strings.Split(path[1:], "/") {
		if !cur.isDir() {
			return nil, vfs.ErrNotDir
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// lookupParent returns the parent directory inode and the base name.
func (f *FS) lookupParent(path string) (*inode, string, error) {
	dir, name := vfs.Split(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	p, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !p.isDir() {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

// Mkdir implements vfs.FileSystem.
func (f *FS) Mkdir(path string, perm uint32) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return vfs.ErrExist
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	if _, dup := parent.children[name]; dup {
		return vfs.ErrExist
	}
	now := f.now()
	parent.children[name] = &inode{
		mode:     vfs.ModeDir | (perm & vfs.PermMask),
		children: make(map[string]*inode),
		nlink:    2,
		ctime:    now,
		mtime:    now,
	}
	parent.nlink++
	parent.mtime = now
	f.dirs++
	return nil
}

// Rmdir implements vfs.FileSystem.
func (f *FS) Rmdir(path string) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return vfs.ErrPerm
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	if !n.isDir() {
		return vfs.ErrNotDir
	}
	if len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	delete(parent.children, name)
	parent.nlink--
	parent.mtime = f.now()
	f.dirs--
	return nil
}

type handle struct {
	fs    *FS
	node  *inode
	write bool
}

// ReadAt implements vfs.Handle.
func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	if off >= int64(len(h.node.data)) {
		return 0, nil
	}
	n := copy(p, h.node.data[off:])
	return n, nil
}

// WriteAt implements vfs.Handle.
func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	if !h.write {
		return 0, vfs.ErrPerm
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(h.node.data)) {
		grown := make([]byte, end)
		copy(grown, h.node.data)
		h.node.data = grown
	}
	copy(h.node.data[off:], p)
	h.node.mtime = h.fs.now()
	return len(p), nil
}

// Close implements vfs.Handle.
func (h *handle) Close() error { return nil }

// Create implements vfs.FileSystem.
func (f *FS) Create(path string, perm uint32) (vfs.Handle, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.lookupParent(p)
	if err != nil {
		return nil, err
	}
	if _, dup := parent.children[name]; dup {
		return nil, vfs.ErrExist
	}
	now := f.now()
	n := &inode{
		mode:  vfs.ModeRegular | (perm & vfs.PermMask),
		nlink: 1,
		ctime: now,
		mtime: now,
	}
	parent.children[name] = n
	parent.mtime = now
	f.files++
	return &handle{fs: f, node: n, write: true}, nil
}

// Open implements vfs.FileSystem.
func (f *FS) Open(path string, flags int) (vfs.Handle, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if errors.Is(err, vfs.ErrNotExist) && flags&vfs.OpenCreate != 0 {
		parent, name, perr := f.lookupParent(p)
		if perr != nil {
			return nil, perr
		}
		now := f.now()
		n = &inode{mode: vfs.ModeRegular | 0o644, nlink: 1, ctime: now, mtime: now}
		parent.children[name] = n
		parent.mtime = now
		f.files++
		err = nil
	}
	if err != nil {
		return nil, err
	}
	if n.isDir() {
		return nil, vfs.ErrIsDir
	}
	write := flags&(vfs.OpenWrite|vfs.OpenRDWR|vfs.OpenCreate|vfs.OpenTrunc) != 0
	if flags&vfs.OpenTrunc != 0 {
		n.data = nil
		n.mtime = f.now()
	}
	return &handle{fs: f, node: n, write: write}, nil
}

// Unlink implements vfs.FileSystem.
func (f *FS) Unlink(path string) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	if n.isDir() {
		return vfs.ErrIsDir
	}
	delete(parent.children, name)
	parent.mtime = f.now()
	f.files--
	return nil
}

// Stat implements vfs.FileSystem.
func (f *FS) Stat(path string) (vfs.FileInfo, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	_, name := vfs.Split(p)
	return vfs.FileInfo{
		Name:  name,
		Size:  int64(len(n.data)),
		Mode:  n.mode,
		Nlink: n.nlink,
		Ctime: n.ctime,
		Mtime: n.mtime,
	}, nil
}

// Readdir implements vfs.FileSystem.
func (f *FS) Readdir(path string) ([]vfs.DirEntry, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return nil, err
	}
	if !n.isDir() {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEntry, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, vfs.DirEntry{Name: name, IsDir: c.isDir(), Mode: c.mode & vfs.PermMask})
	}
	sortEntries(out)
	return out, nil
}

func sortEntries(es []vfs.DirEntry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Name < es[j-1].Name; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Rename implements vfs.FileSystem. POSIX semantics: the destination
// may exist and is replaced if compatible (file over file, empty dir
// over dir).
func (f *FS) Rename(oldPath, newPath string) error {
	op, err := vfs.Clean(oldPath)
	if err != nil {
		return err
	}
	np, err := vfs.Clean(newPath)
	if err != nil {
		return err
	}
	if op == "/" || np == "/" {
		return vfs.ErrPerm
	}
	if op == np {
		return nil
	}
	if strings.HasPrefix(np, op+"/") {
		return vfs.ErrInvalid // cannot move a directory into itself
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	oparent, oname, err := f.lookupParent(op)
	if err != nil {
		return err
	}
	n, ok := oparent.children[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	nparent, nname, err := f.lookupParent(np)
	if err != nil {
		return err
	}
	if existing, ok := nparent.children[nname]; ok {
		switch {
		case existing.isDir() && !n.isDir():
			return vfs.ErrIsDir
		case !existing.isDir() && n.isDir():
			return vfs.ErrNotDir
		case existing.isDir() && len(existing.children) > 0:
			return vfs.ErrNotEmpty
		}
		if existing.isDir() {
			nparent.nlink--
			f.dirs--
		} else {
			f.files--
		}
	}
	delete(oparent.children, oname)
	nparent.children[nname] = n
	now := f.now()
	oparent.mtime = now
	nparent.mtime = now
	if n.isDir() {
		oparent.nlink--
		nparent.nlink++
	}
	return nil
}

// Symlink implements vfs.FileSystem.
func (f *FS) Symlink(target, linkPath string) error {
	p, err := vfs.Clean(linkPath)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, name, err := f.lookupParent(p)
	if err != nil {
		return err
	}
	if _, dup := parent.children[name]; dup {
		return vfs.ErrExist
	}
	now := f.now()
	parent.children[name] = &inode{
		mode:   vfs.ModeSymlink | 0o777,
		target: target,
		nlink:  1,
		ctime:  now,
		mtime:  now,
	}
	parent.mtime = now
	f.files++
	return nil
}

// Readlink implements vfs.FileSystem.
func (f *FS) Readlink(path string) (string, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return "", err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return "", err
	}
	if !n.IsSymlinkMode() {
		return "", vfs.ErrInvalid
	}
	return n.target, nil
}

// IsSymlinkMode reports whether the inode is a symlink.
func (n *inode) IsSymlinkMode() bool { return n.mode&vfs.ModeSymlink == vfs.ModeSymlink }

// Truncate implements vfs.FileSystem.
func (f *FS) Truncate(path string, size int64) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return err
	}
	if n.isDir() {
		return vfs.ErrIsDir
	}
	switch {
	case int64(len(n.data)) > size:
		n.data = n.data[:size]
	case int64(len(n.data)) < size:
		grown := make([]byte, size)
		copy(grown, n.data)
		n.data = grown
	}
	n.mtime = f.now()
	return nil
}

// Chmod implements vfs.FileSystem.
func (f *FS) Chmod(path string, perm uint32) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.lookup(p)
	if err != nil {
		return err
	}
	n.mode = (n.mode &^ vfs.PermMask) | (perm & vfs.PermMask)
	return nil
}

// Access implements vfs.FileSystem. Ownership is not modelled; the
// check is against the user permission bits, which is what the DUFS
// prototype needs.
func (f *FS) Access(path string, mask uint32) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(p)
	if err != nil {
		return err
	}
	perm := (n.mode & vfs.PermMask) >> 6 // user bits
	if mask&AccessBits(perm) != mask {
		return vfs.ErrAccess
	}
	return nil
}

// AccessBits maps permission bits to an access mask.
func AccessBits(perm uint32) uint32 { return perm & 7 }

var _ vfs.FileSystem = (*FS)(nil)
