// Package objstore is the object storage node shared by the back-end
// filesystem simulators: a Lustre OSS and a PVFS data server are both,
// at bottom, a flat store of numbered byte objects with size and mtime
// — file bodies live here while the namespace lives on the metadata
// servers.
package objstore

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/backend/proto"
	"repro/internal/transport"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Op codes of the object protocol.
const (
	OpRead uint8 = iota + 1
	OpWrite
	OpTrunc
	OpGetattr
	OpDestroy
)

type object struct {
	data  []byte
	mtime int64
}

// Server is one object storage node.
type Server struct {
	mu      sync.RWMutex
	objects map[uint64]*object
}

// NewServer returns an empty object store.
func NewServer() *Server {
	return &Server{objects: make(map[uint64]*object)}
}

// Count returns the number of stored objects.
func (s *Server) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Bytes returns the total payload bytes stored.
func (s *Server) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, o := range s.objects {
		n += int64(len(o.data))
	}
	return n
}

// Handle implements the transport handler for the object protocol.
func (s *Server) Handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := r.Uint8()
	obj := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	w := wire.NewWriter(64)
	switch op {
	case OpRead:
		off := r.Int64()
		length := r.Uint32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		s.mu.RLock()
		ob := s.objects[obj]
		var chunk []byte
		if ob != nil && off < int64(len(ob.data)) {
			end := off + int64(length)
			if end > int64(len(ob.data)) {
				end = int64(len(ob.data))
			}
			chunk = append([]byte(nil), ob.data[off:end]...)
		}
		s.mu.RUnlock()
		proto.WriteHeader(w, nil)
		w.Bytes32(chunk)
	case OpWrite:
		off := r.Int64()
		data := r.Bytes32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if off < 0 {
			proto.WriteHeader(w, vfs.ErrInvalid)
			break
		}
		s.mu.Lock()
		ob := s.objects[obj]
		if ob == nil {
			ob = &object{}
			s.objects[obj] = ob
		}
		end := off + int64(len(data))
		if end > int64(len(ob.data)) {
			grown := make([]byte, end)
			copy(grown, ob.data)
			ob.data = grown
		}
		copy(ob.data[off:], data)
		ob.mtime = time.Now().UnixNano()
		s.mu.Unlock()
		proto.WriteHeader(w, nil)
		w.Uint32(uint32(len(data)))
	case OpTrunc:
		size := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if size < 0 {
			proto.WriteHeader(w, vfs.ErrInvalid)
			break
		}
		s.mu.Lock()
		ob := s.objects[obj]
		if ob == nil {
			ob = &object{}
			s.objects[obj] = ob
		}
		switch {
		case int64(len(ob.data)) > size:
			ob.data = ob.data[:size]
		case int64(len(ob.data)) < size:
			grown := make([]byte, size)
			copy(grown, ob.data)
			ob.data = grown
		}
		ob.mtime = time.Now().UnixNano()
		s.mu.Unlock()
		proto.WriteHeader(w, nil)
	case OpGetattr:
		s.mu.RLock()
		ob := s.objects[obj]
		var size, mtime int64
		if ob != nil {
			size, mtime = int64(len(ob.data)), ob.mtime
		}
		s.mu.RUnlock()
		proto.WriteHeader(w, nil)
		w.Int64(size)
		w.Int64(mtime)
	case OpDestroy:
		s.mu.Lock()
		delete(s.objects, obj)
		s.mu.Unlock()
		proto.WriteHeader(w, nil)
	default:
		return nil, fmt.Errorf("objstore: unknown op %d", op)
	}
	return w.Bytes(), nil
}

// Client wraps a connection to one object server.
type Client struct {
	conn transport.Conn
}

// NewClient wraps an established connection.
func NewClient(conn transport.Conn) *Client { return &Client{conn: conn} }

func (c *Client) call(w *wire.Writer) (*wire.Reader, error) {
	resp, err := c.conn.Call(w.Bytes())
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp)
	if err := proto.ReadHeader(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Read fills p from the object at off; returns bytes read (short reads
// at EOF return n < len(p) with no error, like pread).
func (c *Client) Read(obj uint64, p []byte, off int64) (int, error) {
	w := wire.NewWriter(32)
	w.Uint8(OpRead)
	w.Uint64(obj)
	w.Int64(off)
	w.Uint32(uint32(len(p)))
	r, err := c.call(w)
	if err != nil {
		return 0, err
	}
	chunk := r.Bytes32()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return copy(p, chunk), nil
}

// Write stores p at off, growing the object as needed.
func (c *Client) Write(obj uint64, p []byte, off int64) (int, error) {
	w := wire.NewWriter(32 + len(p))
	w.Uint8(OpWrite)
	w.Uint64(obj)
	w.Int64(off)
	w.Bytes32(p)
	r, err := c.call(w)
	if err != nil {
		return 0, err
	}
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return 0, err
	}
	return int(n), nil
}

// Trunc resizes the object.
func (c *Client) Trunc(obj uint64, size int64) error {
	w := wire.NewWriter(24)
	w.Uint8(OpTrunc)
	w.Uint64(obj)
	w.Int64(size)
	_, err := c.call(w)
	return err
}

// Getattr returns the object's size and mtime (zeroes if absent).
func (c *Client) Getattr(obj uint64) (size int64, mtime int64, err error) {
	w := wire.NewWriter(16)
	w.Uint8(OpGetattr)
	w.Uint64(obj)
	r, err := c.call(w)
	if err != nil {
		return 0, 0, err
	}
	size = r.Int64()
	mtime = r.Int64()
	return size, mtime, r.Err()
}

// Destroy removes the object (idempotent).
func (c *Client) Destroy(obj uint64) error {
	w := wire.NewWriter(16)
	w.Uint8(OpDestroy)
	w.Uint64(obj)
	_, err := c.call(w)
	return err
}
