package objstore

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/transport"
	"repro/internal/vfs"
)

func startPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	net := transport.NewInProc()
	srv := NewServer()
	ln, err := net.Listen("obj", transport.HandlerFunc(srv.Handle))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	conn, err := net.Dial("obj")
	if err != nil {
		t.Fatal(err)
	}
	return srv, NewClient(conn)
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, c := startPair(t)
	data := []byte("object body")
	n, err := c.Write(7, data, 0)
	if err != nil || n != len(data) {
		t.Fatalf("write = %d, %v", n, err)
	}
	buf := make([]byte, 32)
	n, err = c.Read(7, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], data) {
		t.Fatalf("read = %q", buf[:n])
	}
}

func TestReadPastEOFShort(t *testing.T) {
	_, c := startPair(t)
	if _, err := c.Write(1, []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	n, err := c.Read(1, buf, 2)
	if err != nil || n != 1 || buf[0] != 'c' {
		t.Fatalf("read = %d %q, %v", n, buf[:n], err)
	}
	n, err = c.Read(1, buf, 100)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %d, %v", n, err)
	}
}

func TestMissingObjectReadsEmpty(t *testing.T) {
	_, c := startPair(t)
	buf := make([]byte, 8)
	n, err := c.Read(99, buf, 0)
	if err != nil || n != 0 {
		t.Fatalf("read missing = %d, %v", n, err)
	}
	size, mtime, err := c.Getattr(99)
	if err != nil || size != 0 || mtime != 0 {
		t.Fatalf("getattr missing = %d %d, %v", size, mtime, err)
	}
}

func TestSparseWriteZeroFills(t *testing.T) {
	_, c := startPair(t)
	if _, err := c.Write(2, []byte("x"), 5); err != nil {
		t.Fatal(err)
	}
	size, _, err := c.Getattr(2)
	if err != nil || size != 6 {
		t.Fatalf("size = %d, %v", size, err)
	}
	buf := make([]byte, 6)
	n, _ := c.Read(2, buf, 0)
	if n != 6 || !bytes.Equal(buf, []byte{0, 0, 0, 0, 0, 'x'}) {
		t.Fatalf("content = %v", buf[:n])
	}
}

func TestNegativeOffsetsRejected(t *testing.T) {
	_, c := startPair(t)
	if _, err := c.Write(3, []byte("x"), -1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative write err = %v", err)
	}
	if err := c.Trunc(3, -5); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative trunc err = %v", err)
	}
}

func TestTruncGrowShrink(t *testing.T) {
	srv, c := startPair(t)
	if _, err := c.Write(4, []byte("123456"), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Trunc(4, 3); err != nil {
		t.Fatal(err)
	}
	size, _, _ := c.Getattr(4)
	if size != 3 {
		t.Fatalf("size after shrink = %d", size)
	}
	if err := c.Trunc(4, 10); err != nil {
		t.Fatal(err)
	}
	size, _, _ = c.Getattr(4)
	if size != 10 {
		t.Fatalf("size after grow = %d", size)
	}
	if srv.Bytes() != 10 {
		t.Fatalf("server bytes = %d", srv.Bytes())
	}
}

func TestDestroyIdempotent(t *testing.T) {
	srv, c := startPair(t)
	if _, err := c.Write(5, []byte("gone"), 0); err != nil {
		t.Fatal(err)
	}
	if srv.Count() != 1 {
		t.Fatalf("count = %d", srv.Count())
	}
	if err := c.Destroy(5); err != nil {
		t.Fatal(err)
	}
	if err := c.Destroy(5); err != nil {
		t.Fatalf("second destroy = %v", err)
	}
	if srv.Count() != 0 {
		t.Fatalf("count after destroy = %d", srv.Count())
	}
}

func TestConcurrentObjects(t *testing.T) {
	srv, c := startPair(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			obj := uint64(w + 1)
			for i := 0; i < 50; i++ {
				if _, err := c.Write(obj, []byte{byte(i)}, int64(i)); err != nil {
					t.Errorf("obj %d write %d: %v", obj, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if srv.Count() != 8 {
		t.Fatalf("objects = %d", srv.Count())
	}
	for obj := uint64(1); obj <= 8; obj++ {
		size, _, err := c.Getattr(obj)
		if err != nil || size != 50 {
			t.Fatalf("obj %d size = %d, %v", obj, size, err)
		}
	}
}
