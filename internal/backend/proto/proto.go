// Package proto holds the small pieces shared by the back-end
// filesystem protocols (Lustre-like and PVFS-like): the errno-style
// status codes that cross the wire and the FileInfo codec.
package proto

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/vfs"
	"repro/internal/wire"
)

// Status codes, mirroring the POSIX errno values vfs defines.
const (
	OK uint8 = iota
	ENOENT
	EEXIST
	ENOTDIR
	EISDIR
	ENOTEMPTY
	EINVAL
	EPERM
	EACCES
	EOTHER
)

// CodeFor maps a vfs error to a wire status code.
func CodeFor(err error) uint8 {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, vfs.ErrNotExist):
		return ENOENT
	case errors.Is(err, vfs.ErrExist):
		return EEXIST
	case errors.Is(err, vfs.ErrNotDir):
		return ENOTDIR
	case errors.Is(err, vfs.ErrIsDir):
		return EISDIR
	case errors.Is(err, vfs.ErrNotEmpty):
		return ENOTEMPTY
	case errors.Is(err, vfs.ErrInvalid):
		return EINVAL
	case errors.Is(err, vfs.ErrPerm):
		return EPERM
	case errors.Is(err, vfs.ErrAccess):
		return EACCES
	default:
		return EOTHER
	}
}

// ErrFor maps a wire status code back to the vfs error.
func ErrFor(code uint8, detail string) error {
	switch code {
	case OK:
		return nil
	case ENOENT:
		return vfs.ErrNotExist
	case EEXIST:
		return vfs.ErrExist
	case ENOTDIR:
		return vfs.ErrNotDir
	case EISDIR:
		return vfs.ErrIsDir
	case ENOTEMPTY:
		return vfs.ErrNotEmpty
	case EINVAL:
		return vfs.ErrInvalid
	case EPERM:
		return vfs.ErrPerm
	case EACCES:
		return vfs.ErrAccess
	default:
		if detail == "" {
			detail = "unknown backend error"
		}
		return fmt.Errorf("backend: %s", detail)
	}
}

// WriteHeader appends the status header for err (OK writes an empty
// detail string).
func WriteHeader(w *wire.Writer, err error) {
	w.Uint8(CodeFor(err))
	if err != nil {
		w.String(err.Error())
	} else {
		w.String("")
	}
}

// ReadHeader consumes the status header and returns the decoded error.
func ReadHeader(r *wire.Reader) error {
	code := r.Uint8()
	detail := r.String()
	if rerr := r.Err(); rerr != nil {
		return fmt.Errorf("backend: malformed reply: %w", rerr)
	}
	return ErrFor(code, detail)
}

// EncodeFileInfo serializes a vfs.FileInfo.
func EncodeFileInfo(w *wire.Writer, fi vfs.FileInfo) {
	w.String(fi.Name)
	w.Int64(fi.Size)
	w.Uint32(fi.Mode)
	w.Uint32(fi.Nlink)
	w.Int64(fi.Ctime.UnixNano())
	w.Int64(fi.Mtime.UnixNano())
}

// DecodeFileInfo deserializes a vfs.FileInfo.
func DecodeFileInfo(r *wire.Reader) vfs.FileInfo {
	return vfs.FileInfo{
		Name:  r.String(),
		Size:  r.Int64(),
		Mode:  r.Uint32(),
		Nlink: r.Uint32(),
		Ctime: time.Unix(0, r.Int64()),
		Mtime: time.Unix(0, r.Int64()),
	}
}

// EncodeDirEntries serializes a readdir result.
func EncodeDirEntries(w *wire.Writer, es []vfs.DirEntry) {
	w.Uint32(uint32(len(es)))
	for _, e := range es {
		w.String(e.Name)
		w.Bool(e.IsDir)
		w.Uint32(e.Mode)
	}
}

// DecodeDirEntries deserializes a readdir result.
func DecodeDirEntries(r *wire.Reader) []vfs.DirEntry {
	n := r.Uint32()
	if r.Err() != nil {
		return nil
	}
	if int(n) > r.Remaining() {
		return nil
	}
	out := make([]vfs.DirEntry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		out = append(out, vfs.DirEntry{Name: r.String(), IsDir: r.Bool(), Mode: r.Uint32()})
	}
	return out
}
