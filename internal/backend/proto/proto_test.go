package proto

import (
	"errors"
	"testing"
	"time"

	"repro/internal/vfs"
	"repro/internal/wire"
)

func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []error{
		nil,
		vfs.ErrNotExist,
		vfs.ErrExist,
		vfs.ErrNotDir,
		vfs.ErrIsDir,
		vfs.ErrNotEmpty,
		vfs.ErrInvalid,
		vfs.ErrPerm,
		vfs.ErrAccess,
	}
	for _, in := range cases {
		got := ErrFor(CodeFor(in), "")
		if in == nil {
			if got != nil {
				t.Fatalf("nil -> %v", got)
			}
			continue
		}
		if !errors.Is(got, in) {
			t.Fatalf("%v -> code %d -> %v", in, CodeFor(in), got)
		}
	}
}

func TestUnknownErrorCarriesDetail(t *testing.T) {
	in := errors.New("disk exploded")
	code := CodeFor(in)
	if code != EOTHER {
		t.Fatalf("code = %d", code)
	}
	out := ErrFor(code, in.Error())
	if out == nil || out.Error() != "backend: disk exploded" {
		t.Fatalf("out = %v", out)
	}
	if ErrFor(EOTHER, "") == nil {
		t.Fatal("EOTHER with empty detail must still be an error")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	w := wire.NewWriter(0)
	WriteHeader(w, vfs.ErrNotEmpty)
	r := wire.NewReader(w.Bytes())
	if err := ReadHeader(r); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	w2 := wire.NewWriter(0)
	WriteHeader(w2, nil)
	r2 := wire.NewReader(w2.Bytes())
	if err := ReadHeader(r2); err != nil {
		t.Fatalf("ok header -> %v", err)
	}
}

func TestHeaderTruncated(t *testing.T) {
	r := wire.NewReader([]byte{0})
	if err := ReadHeader(r); err == nil {
		t.Fatal("truncated header decoded")
	}
}

func TestFileInfoRoundTrip(t *testing.T) {
	in := vfs.FileInfo{
		Name:  "f",
		Size:  12345,
		Mode:  vfs.ModeRegular | 0o640,
		Nlink: 3,
		Ctime: time.Unix(100, 200),
		Mtime: time.Unix(300, 400),
	}
	w := wire.NewWriter(0)
	EncodeFileInfo(w, in)
	r := wire.NewReader(w.Bytes())
	got := DecodeFileInfo(r)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if got.Name != in.Name || got.Size != in.Size || got.Mode != in.Mode ||
		got.Nlink != in.Nlink || !got.Ctime.Equal(in.Ctime) || !got.Mtime.Equal(in.Mtime) {
		t.Fatalf("round trip = %+v, want %+v", got, in)
	}
}

func TestDirEntriesRoundTrip(t *testing.T) {
	in := []vfs.DirEntry{{Name: "a", IsDir: true}, {Name: "b", IsDir: false}}
	w := wire.NewWriter(0)
	EncodeDirEntries(w, in)
	r := wire.NewReader(w.Bytes())
	got := DecodeDirEntries(r)
	if len(got) != 2 || got[0] != in[0] || got[1] != in[1] {
		t.Fatalf("round trip = %v", got)
	}
}

func TestDirEntriesCorruptCountSafe(t *testing.T) {
	w := wire.NewWriter(0)
	w.Uint32(1 << 30) // absurd claimed count
	r := wire.NewReader(w.Bytes())
	if got := DecodeDirEntries(r); len(got) != 0 {
		t.Fatalf("decoded %d entries from corrupt input", len(got))
	}
}
