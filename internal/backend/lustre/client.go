package lustre

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/backend/objstore"
	"repro/internal/backend/proto"
	"repro/internal/transport"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Client is a Lustre client (the paper's OSC): it talks to the MDS for
// every namespace operation and directly to the owning OSS for data.
// It implements vfs.FileSystem, so DUFS can mount it as a back-end.
type Client struct {
	net      transport.Network
	mdsAddr  string
	ossAddrs []string

	mu  sync.Mutex
	mds transport.Conn
	oss map[uint32]*objstore.Client
}

// NewClient connects lazily to the given instance addresses.
func NewClient(net transport.Network, mdsAddr string, ossAddrs []string) *Client {
	return &Client{
		net:      net,
		mdsAddr:  mdsAddr,
		ossAddrs: append([]string(nil), ossAddrs...),
		oss:      make(map[uint32]*objstore.Client),
	}
}

// Close drops all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mds != nil {
		c.mds.Close()
		c.mds = nil
	}
	c.oss = make(map[uint32]*objstore.Client)
	return nil
}

func (c *Client) mdsConn() (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mds != nil {
		return c.mds, nil
	}
	conn, err := c.net.Dial(c.mdsAddr)
	if err != nil {
		return nil, err
	}
	c.mds = conn
	return conn, nil
}

func (c *Client) ossClient(idx uint32) (*objstore.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if oc, ok := c.oss[idx]; ok {
		return oc, nil
	}
	if int(idx) >= len(c.ossAddrs) {
		return nil, fmt.Errorf("lustre: OSS index %d out of range", idx)
	}
	conn, err := c.net.Dial(c.ossAddrs[idx])
	if err != nil {
		return nil, err
	}
	oc := objstore.NewClient(conn)
	c.oss[idx] = oc
	return oc, nil
}

func (c *Client) mdsCall(req *wire.Writer) (*wire.Reader, error) {
	conn, err := c.mdsConn()
	if err != nil {
		return nil, err
	}
	resp, err := conn.Call(req.Bytes())
	if err != nil {
		c.mu.Lock()
		if c.mds == conn {
			c.mds.Close()
			c.mds = nil
		}
		c.mu.Unlock()
		return nil, err
	}
	r := wire.NewReader(resp)
	if err := proto.ReadHeader(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Mkdir implements vfs.FileSystem.
func (c *Client) Mkdir(path string, perm uint32) error {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opMkdir)
	w.String(path)
	w.Uint32(perm)
	_, err := c.mdsCall(w)
	return err
}

// Rmdir implements vfs.FileSystem.
func (c *Client) Rmdir(path string) error {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opRmdir)
	w.String(path)
	_, err := c.mdsCall(w)
	return err
}

// fileHandle is an open file bound to its object on one OSS.
type fileHandle struct {
	c     *Client
	obj   uint64
	ost   uint32
	write bool
}

// ReadAt implements vfs.Handle.
func (h *fileHandle) ReadAt(p []byte, off int64) (int, error) {
	oc, err := h.c.ossClient(h.ost)
	if err != nil {
		return 0, err
	}
	return oc.Read(h.obj, p, off)
}

// WriteAt implements vfs.Handle.
func (h *fileHandle) WriteAt(p []byte, off int64) (int, error) {
	if !h.write {
		return 0, vfs.ErrPerm
	}
	oc, err := h.c.ossClient(h.ost)
	if err != nil {
		return 0, err
	}
	return oc.Write(h.obj, p, off)
}

// Close implements vfs.Handle.
func (h *fileHandle) Close() error { return nil }

// Create implements vfs.FileSystem.
func (c *Client) Create(path string, perm uint32) (vfs.Handle, error) {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opCreate)
	w.String(path)
	w.Uint32(perm)
	r, err := c.mdsCall(w)
	if err != nil {
		return nil, err
	}
	obj := r.Uint64()
	ost := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return &fileHandle{c: c, obj: obj, ost: ost, write: true}, nil
}

// Open implements vfs.FileSystem.
func (c *Client) Open(path string, flags int) (vfs.Handle, error) {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opOpen)
	w.String(path)
	w.Int32(int32(flags))
	r, err := c.mdsCall(w)
	if err != nil {
		return nil, err
	}
	obj := r.Uint64()
	ost := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	h := &fileHandle{
		c: c, obj: obj, ost: ost,
		write: flags&(vfs.OpenWrite|vfs.OpenRDWR|vfs.OpenCreate|vfs.OpenTrunc) != 0,
	}
	if flags&vfs.OpenTrunc != 0 {
		oc, err := c.ossClient(ost)
		if err != nil {
			return nil, err
		}
		if err := oc.Trunc(obj, 0); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Unlink implements vfs.FileSystem: remove the name on the MDS, then
// destroy the object on its OSS (Lustre does the destroy
// asynchronously; we do it inline for determinism).
func (c *Client) Unlink(path string) error {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opUnlink)
	w.String(path)
	r, err := c.mdsCall(w)
	if err != nil {
		return err
	}
	obj := r.Uint64()
	ost := r.Uint32()
	if err := r.Err(); err != nil {
		return err
	}
	oc, err := c.ossClient(ost)
	if err != nil {
		return err
	}
	return oc.Destroy(obj)
}

// Stat implements vfs.FileSystem. Directory stats are answered by the
// MDS alone; file stats additionally fetch size/mtime from the owning
// OSS, mirroring Lustre's size-on-OST design.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opStat)
	w.String(path)
	r, err := c.mdsCall(w)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	fi := proto.DecodeFileInfo(r)
	isFile := r.Bool()
	obj := r.Uint64()
	ost := r.Uint32()
	if err := r.Err(); err != nil {
		return vfs.FileInfo{}, err
	}
	if isFile {
		oc, err := c.ossClient(ost)
		if err != nil {
			return vfs.FileInfo{}, err
		}
		size, mtime, err := oc.Getattr(obj)
		if err != nil {
			return vfs.FileInfo{}, err
		}
		fi.Size = size
		if mtime > 0 {
			fi.Mtime = time.Unix(0, mtime)
		}
	}
	return fi, nil
}

// Readdir implements vfs.FileSystem.
func (c *Client) Readdir(path string) ([]vfs.DirEntry, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opReaddir)
	w.String(path)
	r, err := c.mdsCall(w)
	if err != nil {
		return nil, err
	}
	es := proto.DecodeDirEntries(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	sortEntries(es)
	return es, nil
}

func sortEntries(es []vfs.DirEntry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Name < es[j-1].Name; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Rename implements vfs.FileSystem.
func (c *Client) Rename(oldPath, newPath string) error {
	w := wire.NewWriter(16 + len(oldPath) + len(newPath))
	w.Uint8(opRename)
	w.String(oldPath)
	w.String(newPath)
	_, err := c.mdsCall(w)
	return err
}

// Symlink implements vfs.FileSystem.
func (c *Client) Symlink(target, linkPath string) error {
	w := wire.NewWriter(16 + len(target) + len(linkPath))
	w.Uint8(opSymlink)
	w.String(target)
	w.String(linkPath)
	_, err := c.mdsCall(w)
	return err
}

// Readlink implements vfs.FileSystem.
func (c *Client) Readlink(path string) (string, error) {
	w := wire.NewWriter(8 + len(path))
	w.Uint8(opReadlink)
	w.String(path)
	r, err := c.mdsCall(w)
	if err != nil {
		return "", err
	}
	target := r.String()
	return target, r.Err()
}

// Truncate implements vfs.FileSystem.
func (c *Client) Truncate(path string, size int64) error {
	h, err := c.Open(path, vfs.OpenWrite)
	if err != nil {
		return err
	}
	defer h.Close()
	fh := h.(*fileHandle)
	oc, err := c.ossClient(fh.ost)
	if err != nil {
		return err
	}
	return oc.Trunc(fh.obj, size)
}

// Chmod implements vfs.FileSystem.
func (c *Client) Chmod(path string, perm uint32) error {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opChmod)
	w.String(path)
	w.Uint32(perm)
	_, err := c.mdsCall(w)
	return err
}

// Access implements vfs.FileSystem.
func (c *Client) Access(path string, mask uint32) error {
	w := wire.NewWriter(16 + len(path))
	w.Uint8(opAccess)
	w.String(path)
	w.Uint32(mask)
	_, err := c.mdsCall(w)
	return err
}

var _ vfs.FileSystem = (*Client)(nil)
