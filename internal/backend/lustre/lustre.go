// Package lustre simulates a Lustre filesystem instance (paper §II-A):
// one MetaData Server (MDS) owning the whole namespace and the layout
// extended attributes, plus N Object Storage Servers (OSS) holding the
// file bodies as numbered objects.
//
// The shape the paper measures emerges from this architecture by
// construction:
//
//   - every metadata operation — mkdir, create, stat, unlink, readdir,
//     rename — is one RPC to the single MDS, whose namespace lock
//     serializes mutations ("Lustre metadata operations can be
//     processed only as quickly as what a single server ... can
//     manage");
//   - data I/O goes directly client->OSS and scales with the number of
//     OSSes, which is why parallel filesystems scale bandwidth but not
//     metadata throughput (§I).
//
// ServiceDelay optionally injects per-op service time so real-stack
// runs approximate the 2011 testbed; the discrete-event model in
// internal/model reproduces the published curves instead.
package lustre

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/backend/objstore"
	"repro/internal/backend/proto"
	"repro/internal/transport"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// MDS op codes.
const (
	opMkdir uint8 = iota + 1
	opRmdir
	opCreate
	opOpen
	opUnlink
	opStat
	opReaddir
	opRename
	opSymlink
	opReadlink
	opChmod
	opAccess
)

// entry is one MDS namespace node. For regular files the layout EA is
// the (objectID, ostIdx) pair — stripe count 1, the common 2011
// default.
type entry struct {
	mode     uint32
	children map[string]*entry
	target   string // symlink
	objectID uint64
	ostIdx   uint32
	ctime    int64
	mtime    int64
	nlink    uint32
}

func (e *entry) isDir() bool     { return e.mode&vfs.ModeDir != 0 }
func (e *entry) isSymlink() bool { return e.mode&vfs.ModeSymlink == vfs.ModeSymlink }

// MDS is the single metadata server.
type MDS struct {
	mu      sync.Mutex
	root    *entry
	nextObj uint64
	numOST  uint32
	delay   func(op uint8) time.Duration
	ln      io.Closer
}

// Config assembles one Lustre instance.
type Config struct {
	// Net is the shared transport.
	Net transport.Network
	// MDSAddr is the metadata server's address.
	MDSAddr string
	// OSSAddrs are the object server addresses (at least one).
	OSSAddrs []string
	// ServiceDelay, when non-nil, sleeps per MDS op to emulate the
	// paper's MDS service times in real-stack runs.
	ServiceDelay func(op uint8) time.Duration
}

// Instance is a running Lustre filesystem (servers only; clients are
// created with NewClient).
type Instance struct {
	mds    *MDS
	oss    []*objstore.Server
	ossLns []io.Closer
	cfg    Config
}

// Start boots the MDS and OSSes.
func Start(cfg Config) (*Instance, error) {
	if len(cfg.OSSAddrs) == 0 {
		return nil, fmt.Errorf("lustre: need at least one OSS")
	}
	now := time.Now().UnixNano()
	mds := &MDS{
		root: &entry{
			mode: vfs.ModeDir | 0o755, children: make(map[string]*entry),
			ctime: now, mtime: now, nlink: 2,
		},
		numOST: uint32(len(cfg.OSSAddrs)),
		delay:  cfg.ServiceDelay,
	}
	ln, err := cfg.Net.Listen(cfg.MDSAddr, transport.HandlerFunc(mds.handle))
	if err != nil {
		return nil, fmt.Errorf("lustre: mds listen: %w", err)
	}
	mds.ln = ln
	inst := &Instance{mds: mds, cfg: cfg}
	for _, addr := range cfg.OSSAddrs {
		oss := objstore.NewServer()
		oln, err := cfg.Net.Listen(addr, transport.HandlerFunc(oss.Handle))
		if err != nil {
			inst.Stop()
			return nil, fmt.Errorf("lustre: oss listen %s: %w", addr, err)
		}
		inst.oss = append(inst.oss, oss)
		inst.ossLns = append(inst.ossLns, oln)
	}
	return inst, nil
}

// ObjectCounts returns the number of objects held by each OSS, in
// address order — used to verify placement spreads file bodies.
func (i *Instance) ObjectCounts() []int {
	out := make([]int, len(i.oss))
	for k, o := range i.oss {
		out[k] = o.Count()
	}
	return out
}

// Stop shuts down all servers of the instance.
func (i *Instance) Stop() {
	if i.mds != nil && i.mds.ln != nil {
		i.mds.ln.Close()
	}
	for _, ln := range i.ossLns {
		ln.Close()
	}
}

// --- MDS implementation ----------------------------------------------

func (m *MDS) lookup(path string) (*entry, error) {
	if path == "/" {
		return m.root, nil
	}
	cur := m.root
	for _, seg := range strings.Split(path[1:], "/") {
		if !cur.isDir() {
			return nil, vfs.ErrNotDir
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

func (m *MDS) lookupParent(path string) (*entry, string, error) {
	dir, name := vfs.Split(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	p, err := m.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if !p.isDir() {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

func cleanArg(r *wire.Reader) (string, error) {
	p := r.String()
	if err := r.Err(); err != nil {
		return "", err
	}
	return vfs.Clean(p)
}

// handle processes one MDS RPC. The single mutex is the Lustre single-
// MDS bottleneck in miniature.
func (m *MDS) handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := r.Uint8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.delay != nil {
		if d := m.delay(op); d > 0 {
			time.Sleep(d)
		}
	}
	w := wire.NewWriter(64)
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now().UnixNano()
	switch op {
	case opMkdir:
		path, err := cleanArg(r)
		perm := r.Uint32()
		if err == nil {
			err = r.Err()
		}
		if err == nil {
			err = m.mkdir(path, perm, now)
		}
		proto.WriteHeader(w, err)
	case opRmdir:
		path, err := cleanArg(r)
		if err == nil {
			err = m.rmdir(path, now)
		}
		proto.WriteHeader(w, err)
	case opCreate:
		path, err := cleanArg(r)
		perm := r.Uint32()
		if err == nil {
			err = r.Err()
		}
		var obj uint64
		var ost uint32
		if err == nil {
			obj, ost, err = m.create(path, perm, now)
		}
		proto.WriteHeader(w, err)
		if err == nil {
			w.Uint64(obj)
			w.Uint32(ost)
		}
	case opOpen:
		path, err := cleanArg(r)
		flags := int(r.Int32())
		if err == nil {
			err = r.Err()
		}
		var obj uint64
		var ost uint32
		if err == nil {
			obj, ost, err = m.open(path, flags, now)
		}
		proto.WriteHeader(w, err)
		if err == nil {
			w.Uint64(obj)
			w.Uint32(ost)
		}
	case opUnlink:
		path, err := cleanArg(r)
		var obj uint64
		var ost uint32
		if err == nil {
			obj, ost, err = m.unlink(path, now)
		}
		proto.WriteHeader(w, err)
		if err == nil {
			w.Uint64(obj)
			w.Uint32(ost)
		}
	case opStat:
		path, err := cleanArg(r)
		var fi vfs.FileInfo
		var obj uint64
		var ost uint32
		var isFile bool
		if err == nil {
			fi, obj, ost, isFile, err = m.stat(path)
		}
		proto.WriteHeader(w, err)
		if err == nil {
			proto.EncodeFileInfo(w, fi)
			w.Bool(isFile)
			w.Uint64(obj)
			w.Uint32(ost)
		}
	case opReaddir:
		path, err := cleanArg(r)
		var es []vfs.DirEntry
		if err == nil {
			es, err = m.readdir(path)
		}
		proto.WriteHeader(w, err)
		if err == nil {
			proto.EncodeDirEntries(w, es)
		}
	case opRename:
		oldPath, err := cleanArg(r)
		var newPath string
		if err == nil {
			newPath, err = cleanArg(r)
		}
		if err == nil {
			err = m.rename(oldPath, newPath, now)
		}
		proto.WriteHeader(w, err)
	case opSymlink:
		target := r.String()
		path, err := cleanArg(r)
		if err == nil {
			err = r.Err()
		}
		if err == nil {
			err = m.symlink(target, path, now)
		}
		proto.WriteHeader(w, err)
	case opReadlink:
		path, err := cleanArg(r)
		var target string
		if err == nil {
			target, err = m.readlink(path)
		}
		proto.WriteHeader(w, err)
		if err == nil {
			w.String(target)
		}
	case opChmod:
		path, err := cleanArg(r)
		perm := r.Uint32()
		if err == nil {
			err = r.Err()
		}
		if err == nil {
			err = m.chmod(path, perm)
		}
		proto.WriteHeader(w, err)
	case opAccess:
		path, err := cleanArg(r)
		mask := r.Uint32()
		if err == nil {
			err = r.Err()
		}
		if err == nil {
			err = m.access(path, mask)
		}
		proto.WriteHeader(w, err)
	default:
		return nil, fmt.Errorf("lustre: unknown MDS op %d", op)
	}
	return w.Bytes(), nil
}

func (m *MDS) mkdir(path string, perm uint32, now int64) error {
	if path == "/" {
		return vfs.ErrExist
	}
	parent, name, err := m.lookupParent(path)
	if err != nil {
		return err
	}
	if _, dup := parent.children[name]; dup {
		return vfs.ErrExist
	}
	parent.children[name] = &entry{
		mode: vfs.ModeDir | (perm & vfs.PermMask), children: make(map[string]*entry),
		ctime: now, mtime: now, nlink: 2,
	}
	parent.nlink++
	parent.mtime = now
	return nil
}

func (m *MDS) rmdir(path string, now int64) error {
	if path == "/" {
		return vfs.ErrPerm
	}
	parent, name, err := m.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	if !n.isDir() {
		return vfs.ErrNotDir
	}
	if len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	delete(parent.children, name)
	parent.nlink--
	parent.mtime = now
	return nil
}

func (m *MDS) create(path string, perm uint32, now int64) (uint64, uint32, error) {
	parent, name, err := m.lookupParent(path)
	if err != nil {
		return 0, 0, err
	}
	if _, dup := parent.children[name]; dup {
		return 0, 0, vfs.ErrExist
	}
	m.nextObj++
	obj := m.nextObj
	ost := uint32(obj % uint64(m.numOST))
	parent.children[name] = &entry{
		mode:     vfs.ModeRegular | (perm & vfs.PermMask),
		objectID: obj, ostIdx: ost, ctime: now, mtime: now, nlink: 1,
	}
	parent.mtime = now
	return obj, ost, nil
}

func (m *MDS) open(path string, flags int, now int64) (uint64, uint32, error) {
	n, err := m.lookup(path)
	if err != nil {
		if err == vfs.ErrNotExist && flags&vfs.OpenCreate != 0 {
			return m.create(path, 0o644, now)
		}
		return 0, 0, err
	}
	if n.isDir() {
		return 0, 0, vfs.ErrIsDir
	}
	return n.objectID, n.ostIdx, nil
}

func (m *MDS) unlink(path string, now int64) (uint64, uint32, error) {
	parent, name, err := m.lookupParent(path)
	if err != nil {
		return 0, 0, err
	}
	n, ok := parent.children[name]
	if !ok {
		return 0, 0, vfs.ErrNotExist
	}
	if n.isDir() {
		return 0, 0, vfs.ErrIsDir
	}
	delete(parent.children, name)
	parent.mtime = now
	return n.objectID, n.ostIdx, nil
}

func (m *MDS) stat(path string) (vfs.FileInfo, uint64, uint32, bool, error) {
	n, err := m.lookup(path)
	if err != nil {
		return vfs.FileInfo{}, 0, 0, false, err
	}
	_, name := vfs.Split(path)
	fi := vfs.FileInfo{
		Name: name, Mode: n.mode, Nlink: n.nlink,
		Ctime: time.Unix(0, n.ctime), Mtime: time.Unix(0, n.mtime),
	}
	isFile := !n.isDir() && !n.isSymlink()
	return fi, n.objectID, n.ostIdx, isFile, nil
}

func (m *MDS) readdir(path string) ([]vfs.DirEntry, error) {
	n, err := m.lookup(path)
	if err != nil {
		return nil, err
	}
	if !n.isDir() {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEntry, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, vfs.DirEntry{Name: name, IsDir: c.isDir(), Mode: c.mode & vfs.PermMask})
	}
	return out, nil
}

func (m *MDS) rename(oldPath, newPath string, now int64) error {
	if oldPath == "/" || newPath == "/" {
		return vfs.ErrPerm
	}
	if oldPath == newPath {
		return nil
	}
	if strings.HasPrefix(newPath, oldPath+"/") {
		return vfs.ErrInvalid
	}
	oparent, oname, err := m.lookupParent(oldPath)
	if err != nil {
		return err
	}
	n, ok := oparent.children[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	nparent, nname, err := m.lookupParent(newPath)
	if err != nil {
		return err
	}
	if existing, ok := nparent.children[nname]; ok {
		switch {
		case existing.isDir() && !n.isDir():
			return vfs.ErrIsDir
		case !existing.isDir() && n.isDir():
			return vfs.ErrNotDir
		case existing.isDir() && len(existing.children) > 0:
			return vfs.ErrNotEmpty
		}
		if existing.isDir() {
			nparent.nlink--
		}
	}
	delete(oparent.children, oname)
	nparent.children[nname] = n
	oparent.mtime = now
	nparent.mtime = now
	if n.isDir() {
		oparent.nlink--
		nparent.nlink++
	}
	return nil
}

func (m *MDS) symlink(target, path string, now int64) error {
	parent, name, err := m.lookupParent(path)
	if err != nil {
		return err
	}
	if _, dup := parent.children[name]; dup {
		return vfs.ErrExist
	}
	parent.children[name] = &entry{
		mode: vfs.ModeSymlink | 0o777, target: target,
		ctime: now, mtime: now, nlink: 1,
	}
	parent.mtime = now
	return nil
}

func (m *MDS) readlink(path string) (string, error) {
	n, err := m.lookup(path)
	if err != nil {
		return "", err
	}
	if !n.isSymlink() {
		return "", vfs.ErrInvalid
	}
	return n.target, nil
}

func (m *MDS) chmod(path string, perm uint32) error {
	n, err := m.lookup(path)
	if err != nil {
		return err
	}
	n.mode = (n.mode &^ vfs.PermMask) | (perm & vfs.PermMask)
	return nil
}

func (m *MDS) access(path string, mask uint32) error {
	n, err := m.lookup(path)
	if err != nil {
		return err
	}
	perm := (n.mode & vfs.PermMask) >> 6
	if mask&perm != mask {
		return vfs.ErrAccess
	}
	return nil
}
