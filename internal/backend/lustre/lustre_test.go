package lustre

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/backend/backendtest"
	"repro/internal/transport"
	"repro/internal/vfs"
)

var instSeq int

func startInstance(t *testing.T, numOSS int, delay func(uint8) time.Duration) (*Instance, *Client) {
	t.Helper()
	instSeq++
	net := transport.NewInProc()
	mdsAddr := fmt.Sprintf("lustre%d-mds", instSeq)
	var ossAddrs []string
	for i := 0; i < numOSS; i++ {
		ossAddrs = append(ossAddrs, fmt.Sprintf("lustre%d-oss%d", instSeq, i))
	}
	inst, err := Start(Config{Net: net, MDSAddr: mdsAddr, OSSAddrs: ossAddrs, ServiceDelay: delay})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Stop)
	c := NewClient(net, mdsAddr, ossAddrs)
	t.Cleanup(func() { c.Close() })
	return inst, c
}

func TestConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) vfs.FileSystem {
		_, c := startInstance(t, 2, nil)
		return c
	}, backendtest.Options{})
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Net: transport.NewInProc(), MDSAddr: "m"}); err == nil {
		t.Fatal("Start without OSS succeeded")
	}
}

func TestObjectsSpreadAcrossOSSes(t *testing.T) {
	inst, c := startInstance(t, 4, nil)
	for i := 0; i < 64; i++ {
		if err := vfs.WriteFile(c, fmt.Sprintf("/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	counts := inst.ObjectCounts()
	total := 0
	for idx, n := range counts {
		total += n
		if n == 0 {
			t.Fatalf("OSS %d holds no objects: %v", idx, counts)
		}
	}
	if total != 64 {
		t.Fatalf("total objects = %d, want 64", total)
	}
}

func TestUnlinkDestroysObject(t *testing.T) {
	inst, c := startInstance(t, 1, nil)
	if err := vfs.WriteFile(c, "/f", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if inst.ObjectCounts()[0] != 1 {
		t.Fatalf("objects = %v", inst.ObjectCounts())
	}
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	if inst.ObjectCounts()[0] != 0 {
		t.Fatalf("object leaked after unlink: %v", inst.ObjectCounts())
	}
}

func TestStatSizeComesFromOSS(t *testing.T) {
	_, c := startInstance(t, 2, nil)
	h, err := c.Create("/f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(make([]byte, 12345), 0); err != nil {
		t.Fatal(err)
	}
	h.Close()
	fi, err := c.Stat("/f")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != 12345 {
		t.Fatalf("size = %d", fi.Size)
	}
}

func TestServiceDelayInjectsLatency(t *testing.T) {
	_, c := startInstance(t, 1, func(op uint8) time.Duration {
		if op == opMkdir {
			return 10 * time.Millisecond
		}
		return 0
	})
	start := time.Now()
	if err := c.Mkdir("/slow", 0o755); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("mkdir returned in %v, want >= 10ms", elapsed)
	}
}

func TestMultipleClientsShareNamespace(t *testing.T) {
	instSeq++
	net := transport.NewInProc()
	mdsAddr := fmt.Sprintf("lustre%d-mds", instSeq)
	ossAddrs := []string{fmt.Sprintf("lustre%d-oss0", instSeq)}
	inst, err := Start(Config{Net: net, MDSAddr: mdsAddr, OSSAddrs: ossAddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	a := NewClient(net, mdsAddr, ossAddrs)
	b := NewClient(net, mdsAddr, ossAddrs)
	defer a.Close()
	defer b.Close()
	if err := vfs.WriteFile(a, "/from-a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(b, "/from-a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("b sees %q, %v", got, err)
	}
}
