// Package backendtest is a reusable conformance suite for
// vfs.FileSystem implementations. Every filesystem in the repository —
// memfs, the Lustre-like client, the PVFS-like client and DUFS itself —
// must pass it, which keeps POSIX semantics identical no matter which
// layer an application mounts.
package backendtest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// Options tweak the suite for implementations with documented gaps.
type Options struct {
	// SkipDirRename skips directory-rename cases (the PVFS-like client
	// documents them as unsupported).
	SkipDirRename bool
}

// Run executes the conformance suite against a fresh filesystem
// produced by mkfs (called once per subtest for isolation).
func Run(t *testing.T, mkfs func(t *testing.T) vfs.FileSystem, opts Options) {
	t.Helper()
	sub := func(name string, fn func(t *testing.T, fs vfs.FileSystem)) {
		t.Run(name, func(t *testing.T) {
			fn(t, mkfs(t))
		})
	}

	sub("MkdirStatRmdir", func(t *testing.T, fs vfs.FileSystem) {
		if err := fs.Mkdir("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		fi, err := fs.Stat("/d")
		if err != nil {
			t.Fatal(err)
		}
		if !fi.IsDir() {
			t.Fatalf("not a dir: %+v", fi)
		}
		if err := fs.Rmdir("/d"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("stat removed dir err = %v", err)
		}
	})

	sub("MkdirDupFails", func(t *testing.T, fs vfs.FileSystem) {
		if err := fs.Mkdir("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir("/d", 0o755); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("dup mkdir err = %v", err)
		}
	})

	sub("MkdirNoParentFails", func(t *testing.T, fs vfs.FileSystem) {
		if err := fs.Mkdir("/no/parent", 0o755); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("orphan mkdir err = %v", err)
		}
	})

	sub("RmdirNonEmptyFails", func(t *testing.T, fs vfs.FileSystem) {
		if err := fs.Mkdir("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir("/d/c", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
			t.Fatalf("rmdir non-empty err = %v", err)
		}
	})

	sub("CreateWriteReadStat", func(t *testing.T, fs vfs.FileSystem) {
		h, err := fs.Create("/f", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt([]byte("payload"), 0); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := vfs.ReadFile(fs, "/f")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "payload" {
			t.Fatalf("content = %q", got)
		}
		fi, err := fs.Stat("/f")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size != 7 || fi.IsDir() {
			t.Fatalf("fi = %+v", fi)
		}
	})

	sub("CreateDupFails", func(t *testing.T, fs vfs.FileSystem) {
		if _, err := fs.Create("/f", 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Create("/f", 0o644); !errors.Is(err, vfs.ErrExist) {
			t.Fatalf("dup create err = %v", err)
		}
	})

	sub("OpenMissingFails", func(t *testing.T, fs vfs.FileSystem) {
		if _, err := fs.Open("/missing", vfs.OpenRead); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("open missing err = %v", err)
		}
	})

	sub("OpenCreateFlag", func(t *testing.T, fs vfs.FileSystem) {
		h, err := fs.Open("/auto", vfs.OpenCreate|vfs.OpenWrite)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt([]byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		h.Close()
		if _, err := fs.Stat("/auto"); err != nil {
			t.Fatal(err)
		}
	})

	sub("OpenTruncResets", func(t *testing.T, fs vfs.FileSystem) {
		if err := vfs.WriteFile(fs, "/f", []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		h, err := fs.Open("/f", vfs.OpenWrite|vfs.OpenTrunc)
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
		fi, err := fs.Stat("/f")
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size != 0 {
			t.Fatalf("size after O_TRUNC = %d", fi.Size)
		}
	})

	sub("UnlinkSemantics", func(t *testing.T, fs vfs.FileSystem) {
		if err := vfs.WriteFile(fs, "/f", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink("/f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink("/f"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("double unlink err = %v", err)
		}
		if err := fs.Mkdir("/d", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink("/d"); !errors.Is(err, vfs.ErrIsDir) {
			t.Fatalf("unlink dir err = %v", err)
		}
	})

	sub("ReaddirListsSorted", func(t *testing.T, fs vfs.FileSystem) {
		if err := fs.Mkdir("/p", 0o755); err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"c", "a", "b"} {
			if err := fs.Mkdir("/p/"+n, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		if err := vfs.WriteFile(fs, "/p/z", nil); err != nil {
			t.Fatal(err)
		}
		es, err := fs.Readdir("/p")
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != 4 {
			t.Fatalf("entries = %v", es)
		}
		order := ""
		for _, e := range es {
			order += e.Name + ","
		}
		if order != "a,b,c,z," {
			t.Fatalf("order = %q", order)
		}
		if !es[0].IsDir || es[3].IsDir {
			t.Fatal("IsDir flags wrong")
		}
	})

	sub("ReaddirOnFileFails", func(t *testing.T, fs vfs.FileSystem) {
		if err := vfs.WriteFile(fs, "/f", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Readdir("/f"); err == nil {
			t.Fatal("readdir on file succeeded")
		}
	})

	sub("RenameFile", func(t *testing.T, fs vfs.FileSystem) {
		if err := vfs.WriteFile(fs, "/a", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename("/a", "/b"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatal("source still exists")
		}
		got, err := vfs.ReadFile(fs, "/b")
		if err != nil || string(got) != "v" {
			t.Fatalf("content = %q, %v", got, err)
		}
	})

	if !opts.SkipDirRename {
		sub("RenameDirCarriesChildren", func(t *testing.T, fs vfs.FileSystem) {
			if err := fs.Mkdir("/d1", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := vfs.WriteFile(fs, "/d1/x", []byte("1")); err != nil {
				t.Fatal(err)
			}
			if err := fs.Rename("/d1", "/d2"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Stat("/d2/x"); err != nil {
				t.Fatalf("child lost: %v", err)
			}
		})
	}

	sub("SymlinkReadlink", func(t *testing.T, fs vfs.FileSystem) {
		if err := fs.Symlink("/target/path", "/lnk"); err != nil {
			t.Fatal(err)
		}
		got, err := fs.Readlink("/lnk")
		if err != nil || got != "/target/path" {
			t.Fatalf("readlink = %q, %v", got, err)
		}
		fi, err := fs.Stat("/lnk")
		if err != nil {
			t.Fatal(err)
		}
		if !fi.IsSymlink() {
			t.Fatalf("mode = %o", fi.Mode)
		}
	})

	sub("TruncateShrinkGrow", func(t *testing.T, fs vfs.FileSystem) {
		if err := vfs.WriteFile(fs, "/f", []byte("123456")); err != nil {
			t.Fatal(err)
		}
		if err := fs.Truncate("/f", 3); err != nil {
			t.Fatal(err)
		}
		fi, _ := fs.Stat("/f")
		if fi.Size != 3 {
			t.Fatalf("size after shrink = %d", fi.Size)
		}
		if err := fs.Truncate("/f", 8); err != nil {
			t.Fatal(err)
		}
		fi, _ = fs.Stat("/f")
		if fi.Size != 8 {
			t.Fatalf("size after grow = %d", fi.Size)
		}
	})

	sub("ChmodAccess", func(t *testing.T, fs vfs.FileSystem) {
		if err := vfs.WriteFile(fs, "/f", nil); err != nil {
			t.Fatal(err)
		}
		if err := fs.Chmod("/f", 0o400); err != nil {
			t.Fatal(err)
		}
		if err := fs.Access("/f", vfs.AccessRead); err != nil {
			t.Fatalf("read denied: %v", err)
		}
		if err := fs.Access("/f", vfs.AccessWrite); !errors.Is(err, vfs.ErrAccess) {
			t.Fatalf("write err = %v", err)
		}
	})

	sub("DeepPaths", func(t *testing.T, fs vfs.FileSystem) {
		// The paper's mdtest tree: fan-out at depth. Build a depth-5
		// chain and a file at the bottom.
		path := ""
		for i := 0; i < 5; i++ {
			path = fmt.Sprintf("%s/l%d", path, i)
			if err := fs.Mkdir(path, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		leaf := path + "/leaf"
		if err := vfs.WriteFile(fs, leaf, []byte("deep")); err != nil {
			t.Fatal(err)
		}
		got, err := vfs.ReadFile(fs, leaf)
		if err != nil || string(got) != "deep" {
			t.Fatalf("leaf = %q, %v", got, err)
		}
	})

	sub("ConcurrentCreatesOneDir", func(t *testing.T, fs vfs.FileSystem) {
		// "experiments where many files are created in a single
		// directory" (§V) — heavy shared-directory churn must not lose
		// or duplicate entries.
		if err := fs.Mkdir("/shared", 0o755); err != nil {
			t.Fatal(err)
		}
		const workers = 8
		const per = 25
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					p := fmt.Sprintf("/shared/f-%d-%d", w, i)
					if err := vfs.WriteFile(fs, p, []byte("x")); err != nil {
						t.Errorf("%s: %v", p, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		es, err := fs.Readdir("/shared")
		if err != nil {
			t.Fatal(err)
		}
		if len(es) != workers*per {
			t.Fatalf("entries = %d, want %d", len(es), workers*per)
		}
	})
}
