// Package pvfs simulates a PVFS2 filesystem instance (paper §II, ref
// [2]): metadata is partitioned across M metadata servers — "PVFS
// provides some level of parallelism through distributed metadata
// servers that manage different ranges of metadata" (§III) — and file
// bodies live on D data servers.
//
// Ownership: all entries of one directory live together on the
// metadata server owning that directory's path hash. Because an
// object's attributes live with its parent's dirent while its own
// directory body (or datafile) lives elsewhere, namespace mutations
// take two to three RPCs:
//
//	mkdir  = dirent insert (owner(parent)) + body create (owner(dir))
//	create = dirent insert (owner(parent)) + datafile create (data server)
//	unlink = dirent remove (owner(parent)) + datafile destroy
//	rmdir  = body check/remove (owner(dir)) + dirent remove (owner(parent))
//
// That multi-server protocol — without a coordination service to batch
// or order it — is exactly why the paper measures PVFS2 metadata
// mutations more than an order of magnitude slower than DUFS (×23 for
// directory creation at 256 processes, §V-D).
package pvfs

import (
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"

	"repro/internal/backend/objstore"
	"repro/internal/backend/proto"
	"repro/internal/transport"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Metadata server op codes.
const (
	opDirInsert uint8 = iota + 1
	opDirRemove
	opDirLookup
	opDirList
	opDirUpdate
	opBodyCreate
	opBodyRemove
	opBodyExists
)

// attr is a dirent's attribute record (PVFS keeps attributes in the
// metafile; co-locating them with the dirent is a simplification that
// preserves the RPC count for the paths the paper measures).
type attr struct {
	Mode       uint32
	Target     string
	DataHandle uint64
	DataServer uint32
	Ctime      int64
	Mtime      int64
}

func (a attr) isDir() bool     { return a.Mode&vfs.ModeDir != 0 }
func (a attr) isSymlink() bool { return a.Mode&vfs.ModeSymlink == vfs.ModeSymlink }

func encodeAttr(w *wire.Writer, a attr) {
	w.Uint32(a.Mode)
	w.String(a.Target)
	w.Uint64(a.DataHandle)
	w.Uint32(a.DataServer)
	w.Int64(a.Ctime)
	w.Int64(a.Mtime)
}

func decodeAttr(r *wire.Reader) attr {
	return attr{
		Mode:       r.Uint32(),
		Target:     r.String(),
		DataHandle: r.Uint64(),
		DataServer: r.Uint32(),
		Ctime:      r.Int64(),
		Mtime:      r.Int64(),
	}
}

// MetaServer owns the directory bodies whose path hash maps to it.
type MetaServer struct {
	mu     sync.Mutex
	bodies map[string]map[string]attr // dir path -> name -> attr
	delay  func(op uint8) time.Duration
}

// Config assembles one PVFS instance.
type Config struct {
	// Net is the shared transport.
	Net transport.Network
	// MetaAddrs are the metadata server addresses (at least one).
	MetaAddrs []string
	// DataAddrs are the data server addresses (at least one).
	DataAddrs []string
	// ServiceDelay, when non-nil, sleeps per metadata op in real-stack
	// runs.
	ServiceDelay func(op uint8) time.Duration
}

// Instance is a running PVFS filesystem (servers only).
type Instance struct {
	meta    []*MetaServer
	metaLns []io.Closer
	data    []*objstore.Server
	dataLns []io.Closer
}

// Start boots the metadata and data servers and creates the root
// directory body on its owner.
func Start(cfg Config) (*Instance, error) {
	if len(cfg.MetaAddrs) == 0 || len(cfg.DataAddrs) == 0 {
		return nil, fmt.Errorf("pvfs: need at least one metadata and one data server")
	}
	inst := &Instance{}
	for _, addr := range cfg.MetaAddrs {
		ms := &MetaServer{bodies: make(map[string]map[string]attr), delay: cfg.ServiceDelay}
		ln, err := cfg.Net.Listen(addr, transport.HandlerFunc(ms.handle))
		if err != nil {
			inst.Stop()
			return nil, fmt.Errorf("pvfs: meta listen %s: %w", addr, err)
		}
		inst.meta = append(inst.meta, ms)
		inst.metaLns = append(inst.metaLns, ln)
	}
	for _, addr := range cfg.DataAddrs {
		ds := objstore.NewServer()
		ln, err := cfg.Net.Listen(addr, transport.HandlerFunc(ds.Handle))
		if err != nil {
			inst.Stop()
			return nil, fmt.Errorf("pvfs: data listen %s: %w", addr, err)
		}
		inst.data = append(inst.data, ds)
		inst.dataLns = append(inst.dataLns, ln)
	}
	// The root body lives on owner("/").
	rootOwner := ownerOf("/", len(cfg.MetaAddrs))
	inst.meta[rootOwner].mu.Lock()
	inst.meta[rootOwner].bodies["/"] = make(map[string]attr)
	inst.meta[rootOwner].mu.Unlock()
	return inst, nil
}

// Stop shuts down every server.
func (i *Instance) Stop() {
	for _, ln := range i.metaLns {
		ln.Close()
	}
	for _, ln := range i.dataLns {
		ln.Close()
	}
}

// BodyCounts returns the number of directory bodies per metadata
// server, to verify hash partitioning spreads the namespace.
func (i *Instance) BodyCounts() []int {
	out := make([]int, len(i.meta))
	for k, ms := range i.meta {
		ms.mu.Lock()
		out[k] = len(ms.bodies)
		ms.mu.Unlock()
	}
	return out
}

// ownerOf maps a directory path to its metadata server index.
func ownerOf(dirPath string, numMeta int) int {
	h := fnv.New32a()
	h.Write([]byte(dirPath))
	return int(h.Sum32()) % numMeta
}

func (m *MetaServer) handle(req []byte) ([]byte, error) {
	r := wire.NewReader(req)
	op := r.Uint8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.delay != nil {
		if d := m.delay(op); d > 0 {
			time.Sleep(d)
		}
	}
	w := wire.NewWriter(64)
	m.mu.Lock()
	defer m.mu.Unlock()
	switch op {
	case opDirInsert:
		dir := r.String()
		name := r.String()
		a := decodeAttr(r)
		exclusive := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		body, ok := m.bodies[dir]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		if _, dup := body[name]; dup && exclusive {
			proto.WriteHeader(w, vfs.ErrExist)
			break
		}
		body[name] = a
		proto.WriteHeader(w, nil)
	case opDirRemove:
		dir := r.String()
		name := r.String()
		wantDir := r.Bool()
		if err := r.Err(); err != nil {
			return nil, err
		}
		body, ok := m.bodies[dir]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		a, ok := body[name]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		if wantDir && !a.isDir() {
			proto.WriteHeader(w, vfs.ErrNotDir)
			break
		}
		if !wantDir && a.isDir() {
			proto.WriteHeader(w, vfs.ErrIsDir)
			break
		}
		delete(body, name)
		proto.WriteHeader(w, nil)
		encodeAttr(w, a)
	case opDirLookup:
		dir := r.String()
		name := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		body, ok := m.bodies[dir]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		a, ok := body[name]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		proto.WriteHeader(w, nil)
		encodeAttr(w, a)
	case opDirList:
		dir := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		body, ok := m.bodies[dir]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		proto.WriteHeader(w, nil)
		w.Uint32(uint32(len(body)))
		for name, a := range body {
			w.String(name)
			w.Bool(a.isDir())
			w.Uint32(a.Mode & vfs.PermMask)
		}
	case opDirUpdate:
		dir := r.String()
		name := r.String()
		a := decodeAttr(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		body, ok := m.bodies[dir]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		if _, ok := body[name]; !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		body[name] = a
		proto.WriteHeader(w, nil)
	case opBodyCreate:
		dir := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if _, dup := m.bodies[dir]; dup {
			proto.WriteHeader(w, vfs.ErrExist)
			break
		}
		m.bodies[dir] = make(map[string]attr)
		proto.WriteHeader(w, nil)
	case opBodyRemove:
		dir := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		body, ok := m.bodies[dir]
		if !ok {
			proto.WriteHeader(w, vfs.ErrNotExist)
			break
		}
		if len(body) > 0 {
			proto.WriteHeader(w, vfs.ErrNotEmpty)
			break
		}
		delete(m.bodies, dir)
		proto.WriteHeader(w, nil)
	case opBodyExists:
		dir := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		_, ok := m.bodies[dir]
		proto.WriteHeader(w, nil)
		w.Bool(ok)
	default:
		return nil, fmt.Errorf("pvfs: unknown meta op %d", op)
	}
	return w.Bytes(), nil
}
