package pvfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/backend/backendtest"
	"repro/internal/transport"
	"repro/internal/vfs"
)

var instSeq int

func startInstance(t *testing.T, numMeta, numData int) (*Instance, *Client) {
	t.Helper()
	instSeq++
	net := transport.NewInProc()
	var metaAddrs, dataAddrs []string
	for i := 0; i < numMeta; i++ {
		metaAddrs = append(metaAddrs, fmt.Sprintf("pvfs%d-meta%d", instSeq, i))
	}
	for i := 0; i < numData; i++ {
		dataAddrs = append(dataAddrs, fmt.Sprintf("pvfs%d-data%d", instSeq, i))
	}
	inst, err := Start(Config{Net: net, MetaAddrs: metaAddrs, DataAddrs: dataAddrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Stop)
	c := NewClient(net, metaAddrs, dataAddrs)
	t.Cleanup(func() { c.Close() })
	return inst, c
}

func TestConformance(t *testing.T) {
	backendtest.Run(t, func(t *testing.T) vfs.FileSystem {
		_, c := startInstance(t, 3, 2)
		return c
	}, backendtest.Options{SkipDirRename: true})
}

func TestStartValidation(t *testing.T) {
	net := transport.NewInProc()
	if _, err := Start(Config{Net: net, MetaAddrs: []string{"m"}}); err == nil {
		t.Fatal("Start without data servers succeeded")
	}
	if _, err := Start(Config{Net: net, DataAddrs: []string{"d"}}); err == nil {
		t.Fatal("Start without metadata servers succeeded")
	}
}

func TestDirectoryBodiesSpreadAcrossMetaServers(t *testing.T) {
	inst, c := startInstance(t, 4, 1)
	for i := 0; i < 64; i++ {
		if err := c.Mkdir(fmt.Sprintf("/d%02d", i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	counts := inst.BodyCounts()
	total := 0
	for idx, n := range counts {
		total += n
		if n == 0 {
			t.Fatalf("meta server %d owns nothing: %v", idx, counts)
		}
	}
	if total != 65 { // 64 dirs + root body
		t.Fatalf("total bodies = %d, want 65", total)
	}
}

func TestDirRenameUnsupported(t *testing.T) {
	_, c := startInstance(t, 2, 1)
	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/d", "/e"); !errors.Is(err, vfs.ErrNotionSup) {
		t.Fatalf("dir rename err = %v", err)
	}
}

func TestFailedMkdirRollsBackDirent(t *testing.T) {
	// Create a file whose name then collides with a directory body:
	// the second mkdir of the same path must fail atomically and leave
	// exactly one entry behind.
	_, c := startInstance(t, 2, 1)
	if err := c.Mkdir("/dup", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/dup", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("dup mkdir err = %v", err)
	}
	es, err := c.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 1 {
		t.Fatalf("entries after failed mkdir = %v", es)
	}
}

func TestDataSpreadAcrossDataServers(t *testing.T) {
	inst, c := startInstance(t, 1, 3)
	for i := 0; i < 60; i++ {
		if err := vfs.WriteFile(c, fmt.Sprintf("/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for idx, ds := range inst.data {
		n := ds.Count()
		total += n
		if n == 0 {
			t.Fatalf("data server %d holds nothing", idx)
		}
	}
	if total != 60 {
		t.Fatalf("total datafiles = %d, want 60", total)
	}
}

func TestTwoClientsDistinctHandles(t *testing.T) {
	instSeq++
	net := transport.NewInProc()
	metaAddrs := []string{fmt.Sprintf("pvfs%d-meta0", instSeq)}
	dataAddrs := []string{fmt.Sprintf("pvfs%d-data0", instSeq)}
	inst, err := Start(Config{Net: net, MetaAddrs: metaAddrs, DataAddrs: dataAddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	a := NewClient(net, metaAddrs, dataAddrs)
	b := NewClient(net, metaAddrs, dataAddrs)
	defer a.Close()
	defer b.Close()
	if err := vfs.WriteFile(a, "/fa", []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(b, "/fb", []byte("BB")); err != nil {
		t.Fatal(err)
	}
	ga, err := vfs.ReadFile(b, "/fa")
	if err != nil || string(ga) != "AAAA" {
		t.Fatalf("fa = %q, %v", ga, err)
	}
	gb, err := vfs.ReadFile(a, "/fb")
	if err != nil || string(gb) != "BB" {
		t.Fatalf("fb = %q, %v", gb, err)
	}
}
