package pvfs

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend/objstore"
	"repro/internal/backend/proto"
	"repro/internal/transport"
	"repro/internal/vfs"
	"repro/internal/wire"
)

// Client is a PVFS client. It implements vfs.FileSystem by issuing the
// multi-server protocol described in the package comment.
//
// Simplification vs. real PVFS2: directory bodies are keyed by path,
// not by immutable handle, so renaming a *directory* would require
// rehoming every descendant body and is rejected with ErrNotionSup.
// File renames work. DUFS never renames directories on the back-end
// (directories live only in the coordination service), and the paper
// does not benchmark rename, so nothing measured depends on this.
type Client struct {
	net       transport.Network
	metaAddrs []string
	dataAddrs []string

	handleBase uint64
	handleSeq  atomic.Uint64

	mu   sync.Mutex
	meta map[int]transport.Conn
	data map[uint32]*objstore.Client
}

// NewClient connects lazily to the given instance addresses.
func NewClient(net transport.Network, metaAddrs, dataAddrs []string) *Client {
	return &Client{
		net:       net,
		metaAddrs: append([]string(nil), metaAddrs...),
		dataAddrs: append([]string(nil), dataAddrs...),
		// A random high base makes data handles unique across clients
		// without coordination (PVFS2 hands out per-server handle
		// ranges; this plays the same role in the simulator).
		handleBase: rand.Uint64() &^ 0xfffff,
		meta:       make(map[int]transport.Conn),
		data:       make(map[uint32]*objstore.Client),
	}
}

// Close drops all connections.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, conn := range c.meta {
		conn.Close()
		delete(c.meta, k)
	}
	c.data = make(map[uint32]*objstore.Client)
	return nil
}

func (c *Client) newHandle() uint64 { return c.handleBase + c.handleSeq.Add(1) }

func (c *Client) owner(dirPath string) int { return ownerOf(dirPath, len(c.metaAddrs)) }

func (c *Client) metaConn(idx int) (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.meta[idx]; ok {
		return conn, nil
	}
	conn, err := c.net.Dial(c.metaAddrs[idx])
	if err != nil {
		return nil, err
	}
	c.meta[idx] = conn
	return conn, nil
}

func (c *Client) dataClient(idx uint32) (*objstore.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dc, ok := c.data[idx]; ok {
		return dc, nil
	}
	if int(idx) >= len(c.dataAddrs) {
		return nil, fmt.Errorf("pvfs: data server index %d out of range", idx)
	}
	conn, err := c.net.Dial(c.dataAddrs[idx])
	if err != nil {
		return nil, err
	}
	dc := objstore.NewClient(conn)
	c.data[idx] = dc
	return dc, nil
}

func (c *Client) metaCall(idx int, req *wire.Writer) (*wire.Reader, error) {
	conn, err := c.metaConn(idx)
	if err != nil {
		return nil, err
	}
	resp, err := conn.Call(req.Bytes())
	if err != nil {
		c.mu.Lock()
		delete(c.meta, idx)
		c.mu.Unlock()
		return nil, err
	}
	r := wire.NewReader(resp)
	if err := proto.ReadHeader(r); err != nil {
		return nil, err
	}
	return r, nil
}

func (c *Client) dirInsert(dir, name string, a attr, exclusive bool) error {
	w := wire.NewWriter(64 + len(dir) + len(name))
	w.Uint8(opDirInsert)
	w.String(dir)
	w.String(name)
	encodeAttr(w, a)
	w.Bool(exclusive)
	_, err := c.metaCall(c.owner(dir), w)
	return err
}

func (c *Client) dirRemove(dir, name string, wantDir bool) (attr, error) {
	w := wire.NewWriter(32 + len(dir) + len(name))
	w.Uint8(opDirRemove)
	w.String(dir)
	w.String(name)
	w.Bool(wantDir)
	r, err := c.metaCall(c.owner(dir), w)
	if err != nil {
		return attr{}, err
	}
	a := decodeAttr(r)
	return a, r.Err()
}

func (c *Client) dirLookup(dir, name string) (attr, error) {
	w := wire.NewWriter(32 + len(dir) + len(name))
	w.Uint8(opDirLookup)
	w.String(dir)
	w.String(name)
	r, err := c.metaCall(c.owner(dir), w)
	if err != nil {
		return attr{}, err
	}
	a := decodeAttr(r)
	return a, r.Err()
}

func (c *Client) dirUpdate(dir, name string, a attr) error {
	w := wire.NewWriter(64 + len(dir) + len(name))
	w.Uint8(opDirUpdate)
	w.String(dir)
	w.String(name)
	encodeAttr(w, a)
	_, err := c.metaCall(c.owner(dir), w)
	return err
}

func (c *Client) bodyOp(op uint8, dir string) (*wire.Reader, error) {
	w := wire.NewWriter(16 + len(dir))
	w.Uint8(op)
	w.String(dir)
	return c.metaCall(c.owner(dir), w)
}

// Mkdir implements vfs.FileSystem: dirent insert on the parent's
// owner, then body create on the new directory's owner — two RPCs,
// usually to two different servers.
func (c *Client) Mkdir(path string, perm uint32) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return vfs.ErrExist
	}
	dir, name := vfs.Split(p)
	now := time.Now().UnixNano()
	a := attr{Mode: vfs.ModeDir | (perm & vfs.PermMask), Ctime: now, Mtime: now}
	if err := c.dirInsert(dir, name, a, true); err != nil {
		return err
	}
	if _, err := c.bodyOp(opBodyCreate, p); err != nil {
		// Roll the dirent back so a failed mkdir is not half-visible.
		_, _ = c.dirRemove(dir, name, true)
		return err
	}
	return nil
}

// Rmdir implements vfs.FileSystem: body remove (fails on non-empty),
// then dirent remove on the parent's owner.
func (c *Client) Rmdir(path string) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return vfs.ErrPerm
	}
	dir, name := vfs.Split(p)
	if _, err := c.dirLookup(dir, name); err != nil {
		return err
	}
	if _, err := c.bodyOp(opBodyRemove, p); err != nil {
		return err
	}
	_, err = c.dirRemove(dir, name, true)
	return err
}

type fileHandle struct {
	c      *Client
	handle uint64
	server uint32
	write  bool
}

// ReadAt implements vfs.Handle.
func (h *fileHandle) ReadAt(p []byte, off int64) (int, error) {
	dc, err := h.c.dataClient(h.server)
	if err != nil {
		return 0, err
	}
	return dc.Read(h.handle, p, off)
}

// WriteAt implements vfs.Handle.
func (h *fileHandle) WriteAt(p []byte, off int64) (int, error) {
	if !h.write {
		return 0, vfs.ErrPerm
	}
	dc, err := h.c.dataClient(h.server)
	if err != nil {
		return 0, err
	}
	return dc.Write(h.handle, p, off)
}

// Close implements vfs.Handle.
func (h *fileHandle) Close() error { return nil }

// Create implements vfs.FileSystem: dirent insert plus eager datafile
// instantiation on the data server, matching PVFS2's create protocol
// cost.
func (c *Client) Create(path string, perm uint32) (vfs.Handle, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return nil, err
	}
	dir, name := vfs.Split(p)
	if name == "" {
		return nil, vfs.ErrInvalid
	}
	now := time.Now().UnixNano()
	handle := c.newHandle()
	server := uint32(handle % uint64(len(c.dataAddrs)))
	a := attr{
		Mode:       vfs.ModeRegular | (perm & vfs.PermMask),
		DataHandle: handle, DataServer: server,
		Ctime: now, Mtime: now,
	}
	if err := c.dirInsert(dir, name, a, true); err != nil {
		return nil, err
	}
	dc, err := c.dataClient(server)
	if err != nil {
		return nil, err
	}
	if err := dc.Trunc(handle, 0); err != nil {
		return nil, err
	}
	return &fileHandle{c: c, handle: handle, server: server, write: true}, nil
}

// Open implements vfs.FileSystem.
func (c *Client) Open(path string, flags int) (vfs.Handle, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return nil, err
	}
	dir, name := vfs.Split(p)
	if name == "" {
		return nil, vfs.ErrIsDir
	}
	a, err := c.dirLookup(dir, name)
	if err != nil {
		if err == vfs.ErrNotExist && flags&vfs.OpenCreate != 0 {
			return c.Create(p, 0o644)
		}
		return nil, err
	}
	if a.isDir() {
		return nil, vfs.ErrIsDir
	}
	h := &fileHandle{
		c: c, handle: a.DataHandle, server: a.DataServer,
		write: flags&(vfs.OpenWrite|vfs.OpenRDWR|vfs.OpenCreate|vfs.OpenTrunc) != 0,
	}
	if flags&vfs.OpenTrunc != 0 {
		dc, err := c.dataClient(h.server)
		if err != nil {
			return nil, err
		}
		if err := dc.Trunc(h.handle, 0); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Unlink implements vfs.FileSystem.
func (c *Client) Unlink(path string) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	dir, name := vfs.Split(p)
	a, err := c.dirRemove(dir, name, false)
	if err != nil {
		return err
	}
	dc, err := c.dataClient(a.DataServer)
	if err != nil {
		return err
	}
	return dc.Destroy(a.DataHandle)
}

// Stat implements vfs.FileSystem: dirent lookup on the parent's owner,
// plus a data-server getattr for regular files.
func (c *Client) Stat(path string) (vfs.FileInfo, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	if p == "/" {
		return vfs.FileInfo{Name: "", Mode: vfs.ModeDir | 0o755, Nlink: 2}, nil
	}
	dir, name := vfs.Split(p)
	a, err := c.dirLookup(dir, name)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	fi := vfs.FileInfo{
		Name: name, Mode: a.Mode, Nlink: 1,
		Ctime: time.Unix(0, a.Ctime), Mtime: time.Unix(0, a.Mtime),
	}
	if a.isDir() {
		fi.Nlink = 2
	}
	if !a.isDir() && !a.isSymlink() {
		dc, err := c.dataClient(a.DataServer)
		if err != nil {
			return vfs.FileInfo{}, err
		}
		size, mtime, err := dc.Getattr(a.DataHandle)
		if err != nil {
			return vfs.FileInfo{}, err
		}
		fi.Size = size
		if mtime > 0 {
			fi.Mtime = time.Unix(0, mtime)
		}
	}
	return fi, nil
}

// Readdir implements vfs.FileSystem.
func (c *Client) Readdir(path string) ([]vfs.DirEntry, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return nil, err
	}
	r, err := c.bodyOp(opDirList, p)
	if err != nil {
		return nil, err
	}
	n := r.Uint32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]vfs.DirEntry, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		out = append(out, vfs.DirEntry{Name: r.String(), IsDir: r.Bool(), Mode: r.Uint32()})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	sortEntries(out)
	return out, nil
}

func sortEntries(es []vfs.DirEntry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Name < es[j-1].Name; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// Rename implements vfs.FileSystem for regular files and symlinks;
// directory renames are unsupported (see the Client doc comment).
func (c *Client) Rename(oldPath, newPath string) error {
	op, err := vfs.Clean(oldPath)
	if err != nil {
		return err
	}
	np, err := vfs.Clean(newPath)
	if err != nil {
		return err
	}
	if op == np {
		return nil
	}
	odir, oname := vfs.Split(op)
	ndir, nname := vfs.Split(np)
	a, err := c.dirLookup(odir, oname)
	if err != nil {
		return err
	}
	if a.isDir() {
		return vfs.ErrNotionSup
	}
	if err := c.dirInsert(ndir, nname, a, false); err != nil {
		return err
	}
	_, err = c.dirRemove(odir, oname, false)
	return err
}

// Symlink implements vfs.FileSystem.
func (c *Client) Symlink(target, linkPath string) error {
	p, err := vfs.Clean(linkPath)
	if err != nil {
		return err
	}
	dir, name := vfs.Split(p)
	now := time.Now().UnixNano()
	a := attr{Mode: vfs.ModeSymlink | 0o777, Target: target, Ctime: now, Mtime: now}
	return c.dirInsert(dir, name, a, true)
}

// Readlink implements vfs.FileSystem.
func (c *Client) Readlink(path string) (string, error) {
	p, err := vfs.Clean(path)
	if err != nil {
		return "", err
	}
	dir, name := vfs.Split(p)
	a, err := c.dirLookup(dir, name)
	if err != nil {
		return "", err
	}
	if !a.isSymlink() {
		return "", vfs.ErrInvalid
	}
	return a.Target, nil
}

// Truncate implements vfs.FileSystem.
func (c *Client) Truncate(path string, size int64) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	dir, name := vfs.Split(p)
	a, err := c.dirLookup(dir, name)
	if err != nil {
		return err
	}
	if a.isDir() {
		return vfs.ErrIsDir
	}
	dc, err := c.dataClient(a.DataServer)
	if err != nil {
		return err
	}
	return dc.Trunc(a.DataHandle, size)
}

// Chmod implements vfs.FileSystem.
func (c *Client) Chmod(path string, perm uint32) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	dir, name := vfs.Split(p)
	a, err := c.dirLookup(dir, name)
	if err != nil {
		return err
	}
	a.Mode = (a.Mode &^ vfs.PermMask) | (perm & vfs.PermMask)
	return c.dirUpdate(dir, name, a)
}

// Access implements vfs.FileSystem.
func (c *Client) Access(path string, mask uint32) error {
	p, err := vfs.Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return nil
	}
	dir, name := vfs.Split(p)
	a, err := c.dirLookup(dir, name)
	if err != nil {
		return err
	}
	perm := (a.Mode & vfs.PermMask) >> 6
	if mask&perm != mask {
		return vfs.ErrAccess
	}
	return nil
}

var _ vfs.FileSystem = (*Client)(nil)
