package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/backend/lustre"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// TestDUFSOverTCPEndToEnd deploys the entire stack over real sockets:
// a 3-server coordination ensemble, one Lustre-like instance (MDS +
// 2 OSS), and a DUFS client — every RPC crossing the loopback TCP
// stack, as a real deployment via cmd/coordd would.
func TestDUFSOverTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tcp := transport.TCP{}
	port := func() string {
		ln, err := tcp.Listen("127.0.0.1:0", transport.HandlerFunc(func(b []byte) ([]byte, error) { return b, nil }))
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.(interface{ Addr() net.Addr }).Addr().String()
		ln.Close()
		return addr
	}

	// Coordination ensemble.
	peers := map[uint64]string{1: port(), 2: port(), 3: port()}
	var clientAddrs []string
	var servers []*coord.Server
	for id := uint64(1); id <= 3; id++ {
		ca := port()
		srv, err := coord.NewServer(coord.ServerConfig{
			ID: id, PeerAddrs: peers, ClientAddr: ca, Net: tcp,
			HeartbeatInterval: 10 * time.Millisecond,
			ElectionTimeout:   80 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Stop()
		servers = append(servers, srv)
		clientAddrs = append(clientAddrs, ca)
	}
	ens := &coord.Ensemble{Servers: servers, ClientAddrs: clientAddrs}
	if err := ens.WaitLeader(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// One Lustre instance over TCP.
	mdsAddr := port()
	ossAddrs := []string{port(), port()}
	inst, err := lustre.Start(lustre.Config{Net: tcp, MDSAddr: mdsAddr, OSSAddrs: ossAddrs})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()

	// DUFS client.
	sess, err := coord.Connect(tcp, clientAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	lc := lustre.NewClient(tcp, mdsAddr, ossAddrs)
	defer lc.Close()
	dufs, err := core.New(core.Config{
		Session:  sess,
		Backends: []vfs.FileSystem{lc},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Exercise the full surface over sockets.
	if err := dufs.Mkdir("/tcp", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := vfs.WriteFile(dufs, fmt.Sprintf("/tcp/f%d", i), []byte("over-the-wire")); err != nil {
			t.Fatal(err)
		}
	}
	es, err := dufs.Readdir("/tcp")
	if err != nil || len(es) != 10 {
		t.Fatalf("readdir = %d entries, %v", len(es), err)
	}
	got, err := vfs.ReadFile(dufs, "/tcp/f7")
	if err != nil || string(got) != "over-the-wire" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if err := dufs.Rename("/tcp/f7", "/tcp/renamed"); err != nil {
		t.Fatal(err)
	}
	fi, err := dufs.Stat("/tcp/renamed")
	if err != nil || fi.Size != 13 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	// The object bodies really are on the TCP Lustre instance.
	total := 0
	for _, n := range inst.ObjectCounts() {
		total += n
	}
	if total != 10 {
		t.Fatalf("objects on lustre = %d, want 10", total)
	}
}
