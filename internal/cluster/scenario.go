package cluster

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/migrate"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// This file is the chaos scenario matrix: declarative fault schedules
// that run WHILE an open-loop load generator holds the offered rate
// fixed, so a fault's cost shows up where it belongs — in tail latency
// and error counts under load — instead of being averaged away by a
// closed loop that politely stops offering work when the service
// stalls. Every scenario ends with the same two hard questions: did
// the tail stay inside the SLO, and does every acknowledged write
// still exist?

// FaultKind names one class of injected failure.
type FaultKind string

// The fault classes the matrix composes.
const (
	// FaultSlowDisk delays fsync on one voter's storage engine
	// (requires a durable scenario).
	FaultSlowDisk FaultKind = "slow-disk"
	// FaultPartition blocks every message TO one voter while its own
	// outbound traffic still flows — the asymmetric "can talk, can't
	// be talked to" split.
	FaultPartition FaultKind = "partition"
	// FaultLeaderKill stops the current leader, then restarts it after
	// Duration.
	FaultLeaderKill FaultKind = "leader-kill"
	// FaultLeaderFlap repeatedly kills whoever leads, every Interval,
	// for Duration — the pathological election churn case.
	FaultLeaderFlap FaultKind = "leader-flap"
	// FaultRestartAll cold-restarts every coordination member from disk
	// mid-load (requires a durable scenario).
	FaultRestartAll FaultKind = "restart-all"
	// FaultMigrate live-migrates one working directory's hash range to
	// another coordination shard while the load runs: fence, fuzzy
	// ship, delta replay, ownership flip, placement-epoch bump. The
	// load's routers discover the move purely through moved-partition
	// redirects. Requires Shards >= 2; Path names the directory whose
	// children move; the destination is the next shard after the
	// current owner.
	FaultMigrate FaultKind = "migrate"
	// FaultObserverPartition cuts one observer replica off mid-load:
	// its client address is blocked (readers can't reach it) and its
	// log tail is stalled (it stops replicating). Victim is the
	// 0-based observer index. Reads routed observer-first must fail
	// over to the voters inside the SLO; after the heal the observer
	// catches back up — through a snapshot install when the leader has
	// truncated past its tail (the scenario shrinks MaxLogEntries to
	// force exactly that).
	FaultObserverPartition FaultKind = "observer-partition"
)

// Victim selectors for Fault.Victim (non-negative = explicit member
// index, resolved when the fault fires).
const (
	VictimLeader   = -1
	VictimFollower = -2
)

// Fault is one scheduled failure inside a scenario.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// At is the fault's start, as an offset into the load window.
	At time.Duration `json:"at"`
	// Duration is how long the fault stays active before it is healed
	// (ignored by restart-all, which is instantaneous).
	Duration time.Duration `json:"duration,omitempty"`
	// Victim picks the member (VictimLeader / VictimFollower / index).
	Victim int `json:"victim"`
	// Delay is the injected fsync latency (slow-disk only).
	Delay time.Duration `json:"delay,omitempty"`
	// Interval is the kill cadence (leader-flap only).
	Interval time.Duration `json:"interval,omitempty"`
	// Shard selects the coordination shard (default 0).
	Shard int `json:"shard,omitempty"`
	// Path names the directory whose hash range migrates (migrate only).
	Path string `json:"path,omitempty"`
}

// SLO bounds a scenario's outcome. Zero fields are not checked —
// except acked-write loss, which is always a violation.
type SLO struct {
	// MaxP99 bounds overall operation latency at the 99th percentile.
	MaxP99 time.Duration `json:"max_p99,omitempty"`
	// MaxErrorFrac bounds (errors+timeouts)/submitted.
	MaxErrorFrac float64 `json:"max_error_frac,omitempty"`
	// MinAchievedFrac bounds achieved/offered throughput from below.
	MinAchievedFrac float64 `json:"min_achieved_frac,omitempty"`
}

// Scenario is one cell of the matrix: a load shape, a fault schedule
// and the bounds the run must stay inside.
type Scenario struct {
	Name         string         `json:"name"`
	Load         loadgen.Config `json:"-"`
	Faults       []Fault        `json:"faults"`
	SLO          SLO            `json:"slo"`
	CoordMembers int            `json:"coord_members,omitempty"` // default 3
	Sessions     int            `json:"sessions,omitempty"`      // default 2
	// Shards sizes the sharded coordination tier (default 1). Sessions
	// become routers when Shards > 1, so migrations exercise the full
	// redirect-chase path.
	Shards int `json:"shards,omitempty"`
	// Durable gives every member a disk-backed storage engine (needed
	// by slow-disk and restart-all).
	Durable bool `json:"durable,omitempty"`
	// Observers sizes the non-voting observer tier (default 0).
	Observers int `json:"observers,omitempty"`
	// ReadFrom, when non-empty, routes the load's reads by policy
	// ("leader" / "observer" / "any" / "nearest") through a
	// coord.ReadRouter instead of the plain per-session replica.
	ReadFrom string `json:"read_from,omitempty"`
	// MaxLogEntries shrinks the members' in-memory log bound so a
	// stalled replica falls behind the truncation horizon and must
	// catch up by snapshot (0 = default bound).
	MaxLogEntries int `json:"max_log_entries,omitempty"`
}

// ScenarioResult is the machine-readable outcome of one scenario run.
type ScenarioResult struct {
	Scenario     string         `json:"scenario"`
	Scale        float64        `json:"scale"`
	Faults       []string       `json:"fault_log"`
	Load         loadgen.Result `json:"load"`
	AckedChecked int            `json:"acked_checked"`
	MissingAcked int            `json:"missing_acked"`
	Violations   []string       `json:"violations,omitempty"`
	// Migration carries the migration metrics of a resharding run
	// (placement epoch, fence window, delta size, bytes shipped).
	Migration map[string]float64 `json:"migration,omitempty"`
	// Apply carries the leader's apply-pipeline health gauges sampled
	// after the run (commit→apply lag, queue depth, busy workers) —
	// the post-run residue should be zero on a drained pipeline.
	Apply map[string]float64 `json:"apply,omitempty"`
}

// OK reports whether the run stayed inside its SLO with zero acked loss.
func (r *ScenarioResult) OK() bool { return len(r.Violations) == 0 }

func scaleDur(d time.Duration, scale float64) time.Duration {
	return time.Duration(float64(d) * scale)
}

// sleepUntil waits for a wall-clock instant, returning early on ctx
// cancellation.
func sleepUntil(ctx context.Context, at time.Time) {
	d := time.Until(at)
	if d <= 0 {
		return
	}
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// Matrix returns the builtin scenario set at smoke scale: each cell
// holds ~2s of load, so the whole matrix stays test-suite friendly.
// RunScenario's scale parameter stretches every duration for the full
// (long) tier.
func Matrix() []Scenario {
	base := func(name string, seed int64) loadgen.Config {
		return loadgen.Config{
			Name:       name,
			Rate:       250,
			Arrival:    loadgen.Poisson,
			Duration:   2 * time.Second,
			Dirs:       4,
			Keys:       16,
			OpTimeout:  4 * time.Second,
			Seed:       seed,
			TrackAcked: true,
		}
	}
	return []Scenario{
		{
			Name: "steady-state",
			Load: base("steady-state", 1),
			SLO:  SLO{MaxP99: 250 * time.Millisecond, MaxErrorFrac: 0.001, MinAchievedFrac: 0.85},
		},
		{
			Name:    "slow-disk-follower",
			Load:    base("slow-disk-follower", 2),
			Durable: true,
			Faults:  []Fault{{Kind: FaultSlowDisk, At: 400 * time.Millisecond, Duration: time.Second, Victim: VictimFollower, Delay: 15 * time.Millisecond}},
			// Quorum = leader + the healthy follower, so the tail should
			// barely move; this cell is the decentralization dividend.
			SLO: SLO{MaxP99: 400 * time.Millisecond, MaxErrorFrac: 0.01, MinAchievedFrac: 0.7},
		},
		{
			Name:    "slow-disk-leader",
			Load:    base("slow-disk-leader", 3),
			Durable: true,
			Faults:  []Fault{{Kind: FaultSlowDisk, At: 400 * time.Millisecond, Duration: time.Second, Victim: VictimLeader, Delay: 4 * time.Millisecond}},
			// Every commit pays the leader's fsync, but group commit
			// amortizes one sync across a whole propose window.
			SLO: SLO{MaxP99: 800 * time.Millisecond, MaxErrorFrac: 0.01, MinAchievedFrac: 0.6},
		},
		{
			Name:   "partition-follower",
			Load:   base("partition-follower", 4),
			Faults: []Fault{{Kind: FaultPartition, At: 500 * time.Millisecond, Duration: 800 * time.Millisecond, Victim: VictimFollower}},
			// The isolated follower hears nothing, so its election timer
			// fires and its (outbound-only) campaign deposes the leader
			// once; after the re-elected leader's epoch barrier commits,
			// later campaigns lose the log-recency check and the
			// ensemble stays stable. One short disturbance, then quorum
			// carries on without the victim.
			SLO: SLO{MaxP99: 800 * time.Millisecond, MaxErrorFrac: 0.05, MinAchievedFrac: 0.6},
		},
		{
			Name:   "partition-leader",
			Load:   base("partition-leader", 8),
			Faults: []Fault{{Kind: FaultPartition, At: 600 * time.Millisecond, Duration: 700 * time.Millisecond, Victim: VictimLeader}},
			// The nastiest asymmetric case, pinned deliberately: the
			// leader's outbound traffic still flows, so followers keep
			// hearing heartbeats and never call an election — but no
			// client request or forwarded write can reach the leader
			// until the partition heals. Writes stall for the whole
			// fault window (ZooKeeper has the same exposure; resolving
			// it needs inbound-reachability self-checks on the leader).
			SLO: SLO{MaxP99: 2 * time.Second, MaxErrorFrac: 0.3, MinAchievedFrac: 0.35},
		},
		{
			Name:   "leader-kill",
			Load:   base("leader-kill", 5),
			Faults: []Fault{{Kind: FaultLeaderKill, At: 600 * time.Millisecond, Duration: 600 * time.Millisecond, Victim: VictimLeader}},
			SLO:    SLO{MaxP99: 2 * time.Second, MaxErrorFrac: 0.25, MinAchievedFrac: 0.4},
		},
		{
			Name:   "leader-flap",
			Load:   base("leader-flap", 6),
			Faults: []Fault{{Kind: FaultLeaderFlap, At: 300 * time.Millisecond, Duration: 1200 * time.Millisecond, Interval: 400 * time.Millisecond}},
			SLO:    SLO{MaxP99: 3 * time.Second, MaxErrorFrac: 0.5, MinAchievedFrac: 0.2},
		},
		{
			Name:    "restart-all",
			Load:    base("restart-all", 7),
			Durable: true,
			Faults:  []Fault{{Kind: FaultRestartAll, At: 800 * time.Millisecond}},
			SLO:     SLO{MaxP99: 3 * time.Second, MaxErrorFrac: 0.5, MinAchievedFrac: 0.2},
		},
		{
			Name:   "resharding",
			Load:   base("resharding", 10),
			Shards: 2,
			// Two live migrations mid-load: each moves one working
			// directory's hash range to the other shard while the open
			// loop keeps the offered rate fixed. Writes into a fenced
			// range retry behind the router's chase; once the flip
			// commits, the moved-partition redirect re-homes them. The
			// SLO tail is generous (a fenced write waits out the delta
			// ship) but acked-write loss stays fatal — the migration
			// invariant under test.
			Faults: []Fault{
				{Kind: FaultMigrate, At: 600 * time.Millisecond, Path: "/lg/d0"},
				{Kind: FaultMigrate, At: 1200 * time.Millisecond, Path: "/lg/d1"},
			},
			SLO: SLO{MaxP99: time.Second, MaxErrorFrac: 0.01, MinAchievedFrac: 0.7},
		},
		{
			Name:      "observer-partition",
			Load:      base("observer-partition", 9),
			Observers: 2,
			ReadFrom:  "observer",
			// A tight log bound so the stalled observer falls behind the
			// truncation horizon and must rejoin by snapshot install.
			MaxLogEntries: 8,
			Faults:        []Fault{{Kind: FaultObserverPartition, At: 500 * time.Millisecond, Duration: 900 * time.Millisecond, Victim: 0}},
			// Reads routed observer-first ride the router's bounded
			// attempt onto the healthy observer (and the voters) while
			// the victim is dark; writes never touch observers at all,
			// so the write path must not feel the fault.
			SLO: SLO{MaxP99: 800 * time.Millisecond, MaxErrorFrac: 0.05, MinAchievedFrac: 0.7},
		},
	}
}

// FindScenario returns the builtin scenario with the given name.
func FindScenario(name string) (Scenario, bool) {
	for _, sc := range Matrix() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RunScenario boots a dedicated cluster, drives the scenario's load
// through real coordination sessions while the fault schedule runs,
// heals everything, verifies every acknowledged write still exists and
// grades the result against the SLO. scale (<=0 → 1) stretches the
// load window and every fault time: the smoke tier runs at 1, the long
// tier at 3-5.
func RunScenario(ctx context.Context, sc Scenario, scale float64) (*ScenarioResult, error) {
	if scale <= 0 {
		scale = 1
	}
	if sc.CoordMembers <= 0 {
		sc.CoordMembers = 3
	}
	if sc.Sessions <= 0 {
		sc.Sessions = 2
	}
	if sc.Shards <= 0 {
		sc.Shards = 1
	}
	load := sc.Load
	load.Duration = scaleDur(load.Duration, scale)

	fnet := transport.NewFaults(transport.NewInProc())
	chaos := NewDiskChaos()
	ccfg := Config{
		Name:               "chaos-" + sc.Name,
		Net:                fnet,
		CoordServers:       sc.CoordMembers,
		CoordShards:        sc.Shards,
		CoordObservers:     sc.Observers,
		CoordMaxLogEntries: sc.MaxLogEntries,
		Backends:           1,
		Kind:               MemFS,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeout:    80 * time.Millisecond,
	}
	if sc.Durable {
		dir, err := os.MkdirTemp("", "chaos-"+sc.Name+"-")
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		defer os.RemoveAll(dir)
		ccfg.CoordDataDir = dir
		ccfg.CoordWrapStorage = chaos.Wrap
	}
	cl, err := Start(ccfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	defer cl.Stop()
	for s, ens := range cl.Ensembles {
		if err := ens.WaitLeader(5 * time.Second); err != nil {
			return nil, fmt.Errorf("scenario %s: shard %d: no leader: %w", sc.Name, s, err)
		}
	}

	// A migration fault needs a coordinator over one voter session per
	// shard, plus a registry the result surfaces migration metrics from.
	var migCo *migrate.Coordinator
	var migReg *metrics.Registry
	for _, f := range sc.Faults {
		if f.Kind != FaultMigrate {
			continue
		}
		if sc.Shards < 2 {
			return nil, fmt.Errorf("scenario %s: migrate fault needs Shards >= 2", sc.Name)
		}
		sessions := make([]*coord.Session, sc.Shards)
		for s := range sessions {
			sess, err := cl.Ensembles[s].Connect(-1)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: migration session %d: %w", sc.Name, s, err)
			}
			defer sess.Close()
			sessions[s] = sess
		}
		migReg = metrics.NewRegistry()
		migCo, err = migrate.New(migrate.Config{Sessions: sessions, Registry: migReg})
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		break
	}

	prep, err := cl.ConnectCoord(-1)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	defer prep.Close()
	if err := loadgen.Prepare(ctx, prep, load); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	var targets []loadgen.Target
	var readCounters *coord.ReadCounters
	for i := 0; i < sc.Sessions; i++ {
		var s coord.Client
		var err error
		if sc.ReadFrom != "" {
			// Policy-routed reads: each session drives a ReadRouter so
			// the scenario's stat/readdir load actually lands on the
			// tier under test (and fails over when it is faulted).
			if readCounters == nil {
				readCounters = &coord.ReadCounters{}
			}
			s, err = cl.ConnectCoordRead(coord.ReadPolicy(sc.ReadFrom), 0, readCounters)
		} else {
			s, err = cl.ConnectCoord(i)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario %s: session %d: %w", sc.Name, i, err)
		}
		defer s.Close()
		targets = append(targets, loadgen.NewClientTarget(s))
	}

	res := &ScenarioResult{Scenario: sc.Name, Scale: scale}
	var fmu sync.Mutex   // serializes ensemble surgery across faults
	var logMu sync.Mutex // guards the fault log (logf is called under fmu)
	start := time.Now()
	logf := func(format string, a ...any) {
		logMu.Lock()
		res.Faults = append(res.Faults, fmt.Sprintf("%8v %s", time.Since(start).Round(time.Millisecond), fmt.Sprintf(format, a...)))
		logMu.Unlock()
	}
	var fwg sync.WaitGroup
	for _, f := range sc.Faults {
		f := f
		f.At = scaleDur(f.At, scale)
		f.Duration = scaleDur(f.Duration, scale)
		f.Interval = scaleDur(f.Interval, scale)
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			runFault(ctx, cl, fnet, chaos, migCo, &fmu, f, start, logf)
		}()
	}

	result, err := loadgen.Run(ctx, load, targets)
	fwg.Wait()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	// Belt and braces: every fault heals itself, but make sure nothing
	// is left injected before the verification pass.
	chaos.Clear()
	fnet.Clear()
	for s, ens := range cl.Ensembles {
		if err := ens.WaitLeader(5 * time.Second); err != nil {
			return nil, fmt.Errorf("scenario %s: shard %d: no leader after faults: %w", sc.Name, s, err)
		}
	}
	res.Load = *result
	if sc.ReadFrom != "" {
		res.Load.ReadFrom = sc.ReadFrom
		res.Load.ReadSplit = readCounters.Split()
	}
	if migReg != nil {
		res.Migration = map[string]float64{
			"migrations":          float64(migReg.Distribution("migrate.delta_txns").Count()),
			"placement_epoch":     float64(migReg.Gauge("placement.epoch").Value()),
			"fence_ms_mean":       float64(migReg.Histogram("migrate.fence_duration").Mean()) / float64(time.Millisecond),
			"fence_ms_max":        float64(migReg.Histogram("migrate.fence_duration").Max()) / float64(time.Millisecond),
			"delta_txns_total":    float64(migReg.Distribution("migrate.delta_txns").Sum()),
			"bytes_shipped_total": float64(migReg.Distribution("migrate.bytes_shipped").Sum()),
		}
	}
	if ld := cl.Ensemble.Leader(); ld != nil {
		reg := ld.Metrics()
		res.Apply = map[string]float64{
			"lag_txns":     float64(reg.Gauge("zab.apply.lag").Value()),
			"queue_frames": float64(reg.Gauge("zab.apply.queue_depth").Value()),
			"workers_busy": float64(reg.Gauge("zab.apply.workers_busy").Value()),
		}
	}

	// Every observer must converge back onto the leader's commit
	// horizon after the heal — by streamed frames if its tail survived
	// truncation, by snapshot install otherwise.
	for idx := 0; idx < sc.Observers; idx++ {
		obs := cl.Observer(0, idx)
		if obs == nil {
			res.Violations = append(res.Violations, fmt.Sprintf("observer %d not running after heal", idx))
			continue
		}
		target := cl.Ensemble.Leader().CommitZxid()
		deadline := time.Now().Add(5 * time.Second)
		for obs.LastApplied() < target && time.Now().Before(deadline) && ctx.Err() == nil {
			time.Sleep(5 * time.Millisecond)
		}
		if got := obs.LastApplied(); got < target {
			res.Violations = append(res.Violations, fmt.Sprintf("observer %d stuck at zxid %x, leader committed %x", idx, got, target))
		}
		logf("observer %d caught up to %x (snapshot installs: %d)", idx, obs.LastApplied(), obs.SnapshotInstalls())
	}

	vs, err := cl.ConnectCoord(-1)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: verify session: %w", sc.Name, err)
	}
	defer vs.Close()
	missing, err := loadgen.VerifyAcked(ctx, vs, result.AckedPaths)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: verify: %w", sc.Name, err)
	}
	res.AckedChecked = len(result.AckedPaths)
	res.MissingAcked = len(missing)

	// Grade. Acked-write loss is always fatal; the rest follow the SLO.
	if res.MissingAcked > 0 {
		res.Violations = append(res.Violations, fmt.Sprintf("%d of %d acknowledged writes lost (first: %s)", res.MissingAcked, res.AckedChecked, missing[0]))
	}
	if sc.SLO.MaxP99 > 0 {
		if p99 := result.Latency.P99(); p99 > scaleDur(sc.SLO.MaxP99, scale) {
			res.Violations = append(res.Violations, fmt.Sprintf("p99 %v > SLO %v", p99, scaleDur(sc.SLO.MaxP99, scale)))
		}
	}
	if sc.SLO.MaxErrorFrac > 0 && result.Submitted > 0 {
		if frac := float64(result.Errors+result.Timeouts) / float64(result.Submitted); frac > sc.SLO.MaxErrorFrac {
			res.Violations = append(res.Violations, fmt.Sprintf("error fraction %.4f > SLO %.4f (%d err, %d timeout / %d)", frac, sc.SLO.MaxErrorFrac, result.Errors, result.Timeouts, result.Submitted))
		}
	}
	if sc.SLO.MinAchievedFrac > 0 && result.RateOps > 0 {
		if frac := result.AchievedOps / result.RateOps; frac < sc.SLO.MinAchievedFrac {
			res.Violations = append(res.Violations, fmt.Sprintf("achieved %.0f/s is %.2f of offered %.0f/s, SLO floor %.2f", result.AchievedOps, frac, result.RateOps, sc.SLO.MinAchievedFrac))
		}
	}
	return res, nil
}

// waitLeaderIndex polls for an elected leader on shard s.
func waitLeaderIndex(ctx context.Context, cl *Cluster, s int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if i := cl.LeaderIndex(s); i >= 0 {
			return i
		}
		time.Sleep(5 * time.Millisecond)
	}
	return -1
}

// resolveVictim turns a Victim selector into a member index.
func resolveVictim(ctx context.Context, cl *Cluster, shard, v int) int {
	if v >= 0 {
		return v
	}
	l := waitLeaderIndex(ctx, cl, shard, 5*time.Second)
	if l < 0 {
		return 0
	}
	if v == VictimLeader {
		return l
	}
	return (l + 1) % len(cl.Ensembles[shard].Servers)
}

// runFault applies one fault at its scheduled time and heals it after
// its duration. Ensemble surgery is serialized on mu so overlapping
// faults cannot race StopServer/StartServer.
func runFault(ctx context.Context, cl *Cluster, fnet *transport.Faults, chaos *DiskChaos, migCo *migrate.Coordinator, mu *sync.Mutex, f Fault, start time.Time, logf func(string, ...any)) {
	sleepUntil(ctx, start.Add(f.At))
	if ctx.Err() != nil {
		return
	}
	ens := cl.Ensembles[f.Shard]
	switch f.Kind {
	case FaultMigrate:
		if migCo == nil {
			logf("migrate: no coordinator wired, fault skipped")
			return
		}
		rng := migrate.RangeForDir(f.Path)
		src, err := migCo.Owner(ctx, rng)
		if err != nil {
			logf("migrate: %s owner lookup FAILED: %v", f.Path, err)
			return
		}
		dest := (src + 1) % len(cl.Ensembles)
		logf("migrate: moving %s (range %v) shard %d -> %d", f.Path, rng, src, dest)
		rep, err := migCo.Migrate(ctx, rng, dest)
		if err != nil {
			logf("migrate: %s FAILED: %v", f.Path, err)
			return
		}
		logf("migrate: %s done: epoch %d, fence %v, %d pre-copied, %d delta txns, %d bytes",
			f.Path, rep.Epoch, rep.FenceDuration.Round(time.Microsecond), rep.PrecopyN, rep.DeltaTxns, rep.BytesShipped)
	case FaultSlowDisk:
		id := resolveVictim(ctx, cl, f.Shard, f.Victim)
		chaos.SetDelay(f.Shard, id, f.Delay)
		logf("slow-disk: member %d fsync +%v", id, f.Delay)
		sleepUntil(ctx, start.Add(f.At+f.Duration))
		chaos.SetDelay(f.Shard, id, 0)
		logf("slow-disk: member %d healed", id)
	case FaultPartition:
		id := resolveVictim(ctx, cl, f.Shard, f.Victim)
		peer, client := cl.CoordAddrs(f.Shard, id)
		fnet.Block(peer, client)
		logf("partition: member %d unreachable (%s, %s)", id, peer, client)
		sleepUntil(ctx, start.Add(f.At+f.Duration))
		fnet.Unblock(peer, client)
		logf("partition: member %d healed", id)
	case FaultLeaderKill:
		id := resolveVictim(ctx, cl, f.Shard, f.Victim)
		mu.Lock()
		ens.StopServer(id)
		mu.Unlock()
		logf("leader-kill: stopped member %d", id)
		sleepUntil(ctx, start.Add(f.At+f.Duration))
		mu.Lock()
		err := ens.StartServer(id)
		mu.Unlock()
		if err != nil {
			logf("leader-kill: restart of member %d FAILED: %v", id, err)
		} else {
			logf("leader-kill: member %d restarted", id)
		}
	case FaultLeaderFlap:
		deadline := start.Add(f.At + f.Duration)
		down := -1
		for time.Now().Before(deadline) && ctx.Err() == nil {
			mu.Lock()
			if down >= 0 {
				if err := ens.StartServer(down); err != nil {
					logf("leader-flap: restart of member %d FAILED: %v", down, err)
				}
				down = -1
			}
			mu.Unlock()
			id := waitLeaderIndex(ctx, cl, f.Shard, time.Second)
			if id < 0 {
				break
			}
			mu.Lock()
			ens.StopServer(id)
			down = id
			mu.Unlock()
			logf("leader-flap: killed leader %d", id)
			sleepUntil(ctx, time.Now().Add(f.Interval))
		}
		mu.Lock()
		if down >= 0 {
			if err := ens.StartServer(down); err != nil {
				logf("leader-flap: final restart of member %d FAILED: %v", down, err)
			} else {
				logf("leader-flap: member %d restarted, flapping over", down)
			}
		}
		mu.Unlock()
	case FaultObserverPartition:
		idx := f.Victim
		if idx < 0 {
			idx = 0
		}
		addr := cl.ObserverAddr(f.Shard, idx)
		obs := cl.Observer(f.Shard, idx)
		// Readers can't reach it, and it stops replicating: the
		// observer is dark on both planes. (Its tail is pull-based over
		// outbound connections, so the replication stall is injected at
		// the tail loop rather than the transport.)
		fnet.Block(addr)
		if obs != nil {
			obs.SetPaused(true)
		}
		logf("observer-partition: observer %d dark (%s)", idx, addr)
		sleepUntil(ctx, start.Add(f.At+f.Duration))
		fnet.Unblock(addr)
		if obs != nil {
			obs.SetPaused(false)
		}
		logf("observer-partition: observer %d healed", idx)
	case FaultRestartAll:
		mu.Lock()
		err := cl.RestartCoord()
		mu.Unlock()
		if err != nil {
			logf("restart-all FAILED: %v", err)
		} else {
			logf("restart-all: every member cold-restarted from disk")
		}
	default:
		logf("unknown fault kind %q ignored", f.Kind)
	}
}
