// Package cluster boots a complete DUFS deployment inside one process:
// a coordination ensemble, N back-end parallel filesystem instances
// (Lustre-like, PVFS-like or plain memfs), and K DUFS client mounts —
// the paper's experimental setup (§V: "Each client node mounts
// multiple instances of Lustre and PVFS2 filesystems and uses DUFS to
// merge these distinct physical partitions into one logically
// uniformed partition").
package cluster

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/backend/lustre"
	"repro/internal/backend/memfs"
	"repro/internal/backend/pvfs"
	"repro/internal/coord"
	"repro/internal/coord/observer"
	"repro/internal/coord/shard"
	"repro/internal/coord/zab"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/vfs"
)

// BackendKind selects the parallel filesystem used for the physical
// mounts.
type BackendKind string

// Supported back-end kinds.
const (
	Lustre BackendKind = "lustre"
	PVFS   BackendKind = "pvfs"
	MemFS  BackendKind = "memfs"
)

// Config sizes the deployment.
type Config struct {
	// Name namespaces transport addresses so several clusters can
	// share one in-process network.
	Name string
	// Net defaults to a fresh in-process network.
	Net transport.Network

	// CoordServers is the size of each coordination ensemble
	// (paper: 1–8).
	CoordServers int
	// CoordShards is the number of independent coordination ensembles
	// the namespace is partitioned across (default 1 — the paper's
	// configuration). With more than one, every client talks through a
	// shard.Router that consistent-hashes znode paths by parent
	// directory.
	CoordShards int
	// Backends is the number of filesystem instances DUFS unions
	// (paper: 2 or 4).
	Backends int
	// Kind picks the back-end filesystem. Default Lustre.
	Kind BackendKind
	// ServersPerBackend sizes each back-end instance: OSS count for
	// Lustre, metadata+data server count for PVFS. Default 2.
	ServersPerBackend int

	// LustreDelay / PVFSDelay inject per-op service time into the
	// back-end metadata servers (real-stack shaping).
	LustreDelay func(op uint8) time.Duration
	PVFSDelay   func(op uint8) time.Duration

	// CoordObservers is the size of each shard's non-voting observer
	// tier (default 0): log-shipped replicas that serve reads but never
	// vote, so they scale read throughput without slowing writes. Use
	// ConnectCoordRead to open a policy-routed read handle over them.
	CoordObservers int

	// Coord tunables (zero = package defaults).
	HeartbeatInterval time.Duration
	ElectionTimeout   time.Duration
	// CoordMaxLogEntries caps each member's in-memory log before
	// truncation (zero = the zab default). Chaos scenarios shrink it to
	// force lagging replicas through the snapshot catch-up path.
	CoordMaxLogEntries int

	// CoordDataDir, when non-empty, gives every coordination server a
	// durable storage engine under
	// CoordDataDir/shard<k>/node<id>, making acknowledged metadata
	// writes survive member crashes and whole-cluster cold restarts
	// (RestartCoord). Empty keeps coordination state in memory.
	CoordDataDir string
	// CoordSyncEvery is the fsync-cadence ablation forwarded to the
	// storage engine (see coord.ServerConfig.SyncEvery).
	CoordSyncEvery int
	// CoordWrapStorage, when non-nil, wraps coordination member
	// (shard, member)'s durable storage engine — the slow-disk
	// injection seam the chaos scenarios use (see
	// coord.EnsembleConfig.WrapStorage for restart semantics). member
	// is the 0-based Ensemble.Servers index, matching StopServer /
	// LeaderIndex. Only meaningful with CoordDataDir.
	CoordWrapStorage func(shard, member int, s zab.Storage) zab.Storage
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config
	net transport.Network
	// Ensemble is the first (or only) coordination ensemble, kept as a
	// field so single-shard callers read naturally.
	Ensemble *coord.Ensemble
	// Ensembles holds every coordination shard, Ensembles[0] ==
	// Ensemble.
	Ensembles []*coord.Ensemble

	// observers[shard] is that shard's observer tier; a stopped slot
	// keeps its config (and address) so StartObserver can revive it.
	observers [][]*observerSlot

	lustres []*lustre.Instance
	pvfses  []*pvfs.Instance
	memfses []*memfs.FS

	clients []*Client
}

// Client is one DUFS mount: its coordination handle, its per-backend
// filesystem clients and the DUFS instance built on them.
type Client struct {
	FS *core.DUFS
	// Session is the coordination handle: a *coord.Session on a
	// single-shard cluster, a *shard.Router when CoordShards > 1.
	Session  coord.Client
	Metrics  *metrics.Registry
	backends []vfs.FileSystem
	closers  []interface{ Close() error }
}

// Close tears the client down (session close expires its ephemerals).
func (c *Client) Close() error {
	err := c.Session.Close()
	for _, cl := range c.closers {
		cl.Close()
	}
	return err
}

// Start boots the deployment and waits for a coordination leader.
func Start(cfg Config) (*Cluster, error) {
	if cfg.CoordServers <= 0 {
		cfg.CoordServers = 3
	}
	if cfg.Backends <= 0 {
		cfg.Backends = 2
	}
	if cfg.ServersPerBackend <= 0 {
		cfg.ServersPerBackend = 2
	}
	if cfg.Kind == "" {
		cfg.Kind = Lustre
	}
	if cfg.Net == nil {
		cfg.Net = transport.NewInProc()
	}
	if cfg.Name == "" {
		cfg.Name = "cluster"
	}
	if cfg.CoordShards <= 0 {
		cfg.CoordShards = 1
	}
	c := &Cluster{cfg: cfg, net: cfg.Net}

	for s := 0; s < cfg.CoordShards; s++ {
		ecfg := coord.EnsembleConfig{
			Servers:           cfg.CoordServers,
			Net:               cfg.Net,
			AddrPrefix:        fmt.Sprintf("%s-coord%d", cfg.Name, s),
			HeartbeatInterval: cfg.HeartbeatInterval,
			ElectionTimeout:   cfg.ElectionTimeout,
			MaxLogEntries:     cfg.CoordMaxLogEntries,
			SyncEvery:         cfg.CoordSyncEvery,
		}
		if cfg.CoordDataDir != "" {
			ecfg.DataDir = filepath.Join(cfg.CoordDataDir, fmt.Sprintf("shard%d", s))
		}
		if cfg.CoordWrapStorage != nil {
			shard := s
			// The ensemble hands out 1-based wire IDs; the cluster API
			// speaks 0-based member indexes throughout.
			ecfg.WrapStorage = func(id uint64, st zab.Storage) zab.Storage {
				return cfg.CoordWrapStorage(shard, int(id)-1, st)
			}
		}
		ens, err := coord.StartEnsemble(ecfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("cluster: coordination ensemble %d: %w", s, err)
		}
		c.Ensembles = append(c.Ensembles, ens)
	}
	c.Ensemble = c.Ensembles[0]

	c.observers = make([][]*observerSlot, cfg.CoordShards)
	for s := 0; s < cfg.CoordShards; s++ {
		for o := 0; o < cfg.CoordObservers; o++ {
			if _, err := c.AddObserver(s); err != nil {
				c.Stop()
				return nil, fmt.Errorf("cluster: observer %d of shard %d: %w", o, s, err)
			}
		}
	}

	for b := 0; b < cfg.Backends; b++ {
		switch cfg.Kind {
		case Lustre:
			var ossAddrs []string
			for i := 0; i < cfg.ServersPerBackend; i++ {
				ossAddrs = append(ossAddrs, fmt.Sprintf("%s-l%d-oss%d", cfg.Name, b, i))
			}
			inst, err := lustre.Start(lustre.Config{
				Net:          cfg.Net,
				MDSAddr:      fmt.Sprintf("%s-l%d-mds", cfg.Name, b),
				OSSAddrs:     ossAddrs,
				ServiceDelay: cfg.LustreDelay,
			})
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("cluster: lustre %d: %w", b, err)
			}
			c.lustres = append(c.lustres, inst)
		case PVFS:
			var metaAddrs, dataAddrs []string
			for i := 0; i < cfg.ServersPerBackend; i++ {
				metaAddrs = append(metaAddrs, fmt.Sprintf("%s-p%d-meta%d", cfg.Name, b, i))
				dataAddrs = append(dataAddrs, fmt.Sprintf("%s-p%d-data%d", cfg.Name, b, i))
			}
			inst, err := pvfs.Start(pvfs.Config{
				Net:          cfg.Net,
				MetaAddrs:    metaAddrs,
				DataAddrs:    dataAddrs,
				ServiceDelay: cfg.PVFSDelay,
			})
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("cluster: pvfs %d: %w", b, err)
			}
			c.pvfses = append(c.pvfses, inst)
		case MemFS:
			c.memfses = append(c.memfses, memfs.New())
		default:
			c.Stop()
			return nil, fmt.Errorf("cluster: unknown backend kind %q", cfg.Kind)
		}
	}
	return c, nil
}

// NewClient attaches a fresh DUFS client (session + back-end mounts).
// preferred picks which coordination server each session favors, so
// clients spread across the ensemble like the paper's co-located
// DUFS/ZooKeeper pairs. On a sharded cluster the client holds one
// session per shard behind a shard.Router.
func (c *Cluster) NewClient(preferred int) (*Client, error) {
	sess, err := c.connect(preferred)
	if err != nil {
		return nil, err
	}
	cl := &Client{Session: sess, Metrics: metrics.NewRegistry()}
	for b := 0; b < c.cfg.Backends; b++ {
		switch c.cfg.Kind {
		case Lustre:
			var ossAddrs []string
			for i := 0; i < c.cfg.ServersPerBackend; i++ {
				ossAddrs = append(ossAddrs, fmt.Sprintf("%s-l%d-oss%d", c.cfg.Name, b, i))
			}
			lc := lustre.NewClient(c.net, fmt.Sprintf("%s-l%d-mds", c.cfg.Name, b), ossAddrs)
			cl.backends = append(cl.backends, lc)
			cl.closers = append(cl.closers, lc)
		case PVFS:
			var metaAddrs, dataAddrs []string
			for i := 0; i < c.cfg.ServersPerBackend; i++ {
				metaAddrs = append(metaAddrs, fmt.Sprintf("%s-p%d-meta%d", c.cfg.Name, b, i))
				dataAddrs = append(dataAddrs, fmt.Sprintf("%s-p%d-data%d", c.cfg.Name, b, i))
			}
			pc := pvfs.NewClient(c.net, metaAddrs, dataAddrs)
			cl.backends = append(cl.backends, pc)
			cl.closers = append(cl.closers, pc)
		case MemFS:
			cl.backends = append(cl.backends, c.memfses[b])
		}
	}
	dufs, err := core.New(core.Config{
		Session:  sess,
		Backends: cl.backends,
		Metrics:  cl.Metrics,
	})
	if err != nil {
		sess.Close()
		return nil, err
	}
	cl.FS = dufs
	c.clients = append(c.clients, cl)
	return cl, nil
}

// connect opens the coordination handle for one client: a bare
// session on a single-shard cluster, a router over one session per
// ensemble otherwise.
func (c *Cluster) connect(preferred int) (coord.Client, error) {
	if len(c.Ensembles) == 1 {
		return c.Ensemble.Connect(preferred)
	}
	sessions := make([]coord.Client, 0, len(c.Ensembles))
	for _, ens := range c.Ensembles {
		s, err := ens.Connect(preferred)
		if err != nil {
			for _, open := range sessions {
				open.Close()
			}
			return nil, err
		}
		sessions = append(sessions, s)
	}
	return shard.New(sessions)
}

// BasicLustreClient returns a plain Lustre client against back-end 0 —
// the paper's "Basic Lustre" baseline, bypassing DUFS entirely.
func (c *Cluster) BasicLustreClient() (*lustre.Client, error) {
	if c.cfg.Kind != Lustre {
		return nil, fmt.Errorf("cluster: backend kind is %q, not lustre", c.cfg.Kind)
	}
	var ossAddrs []string
	for i := 0; i < c.cfg.ServersPerBackend; i++ {
		ossAddrs = append(ossAddrs, fmt.Sprintf("%s-l0-oss%d", c.cfg.Name, i))
	}
	return lustre.NewClient(c.net, c.cfg.Name+"-l0-mds", ossAddrs), nil
}

// BasicPVFSClient returns a plain PVFS client against back-end 0 — the
// paper's "Basic PVFS" baseline.
func (c *Cluster) BasicPVFSClient() (*pvfs.Client, error) {
	if c.cfg.Kind != PVFS {
		return nil, fmt.Errorf("cluster: backend kind is %q, not pvfs", c.cfg.Kind)
	}
	var metaAddrs, dataAddrs []string
	for i := 0; i < c.cfg.ServersPerBackend; i++ {
		metaAddrs = append(metaAddrs, fmt.Sprintf("%s-p0-meta%d", c.cfg.Name, i))
		dataAddrs = append(dataAddrs, fmt.Sprintf("%s-p0-data%d", c.cfg.Name, i))
	}
	return pvfs.NewClient(c.net, metaAddrs, dataAddrs), nil
}

// RestartCoord cold-restarts every coordination ensemble from its
// data directories — the paper's §IV-I scenario of all metadata
// servers failing and being brought back. Client sessions ride their
// normal failover/retry paths across the outage; the recovered
// ensembles hold every write they acknowledged, including the session
// table, so existing mounts keep working.
func (c *Cluster) RestartCoord() error {
	if c.cfg.CoordDataDir == "" {
		return fmt.Errorf("cluster: RestartCoord needs Config.CoordDataDir (in-memory ensembles cannot restart)")
	}
	for s, ens := range c.Ensembles {
		if err := ens.Restart(); err != nil {
			return fmt.Errorf("cluster: restarting coordination shard %d: %w", s, err)
		}
	}
	return nil
}

// LustreInstances exposes the running Lustre back-ends (tests).
func (c *Cluster) LustreInstances() []*lustre.Instance { return c.lustres }

// --- observer tier ----------------------------------------------------

// observerSlot is one observer position in a shard's tier. The config
// survives StopObserver so the slot can be revived in place — the
// kill-and-restart path of the chaos matrix.
type observerSlot struct {
	cfg observer.Config
	srv *observer.Server // nil while stopped
}

// observerBaseID keeps observer feed IDs disjoint from voter IDs
// (voters are 1..CoordServers; no practical ensemble reaches 100).
const observerBaseID = 100

// AddObserver boots one more observer replica on shard s and returns
// its 0-based index within the tier. The observer starts catching up
// (snapshot first, then streamed frames) immediately.
func (c *Cluster) AddObserver(s int) (int, error) {
	idx := len(c.observers[s])
	slot := &observerSlot{cfg: observer.Config{
		ID:         uint64(observerBaseID + idx + 1),
		Voters:     c.Ensembles[s].PeerAddrs(),
		ClientAddr: fmt.Sprintf("%s-coord%d-obs-client-%d", c.cfg.Name, s, idx+1),
		Net:        c.net,
	}}
	srv, err := observer.NewServer(slot.cfg)
	if err != nil {
		return 0, err
	}
	slot.srv = srv
	c.observers[s] = append(c.observers[s], slot)
	return idx, nil
}

// StopObserver kills observer (s, idx), keeping its slot for
// StartObserver. Clients reading from it fail over to other replicas;
// nothing replicated is lost — the replica was a read-only copy.
func (c *Cluster) StopObserver(s, idx int) {
	if slot := c.observers[s][idx]; slot.srv != nil {
		slot.srv.Stop()
		slot.srv = nil
	}
}

// StartObserver revives observer (s, idx) at its original address.
// The replica restarts empty and rebuilds itself from a leader
// snapshot — observers are diskless by design.
func (c *Cluster) StartObserver(s, idx int) error {
	slot := c.observers[s][idx]
	if slot.srv != nil {
		return fmt.Errorf("cluster: observer %d/%d already running", s, idx)
	}
	srv, err := observer.NewServer(slot.cfg)
	if err != nil {
		return err
	}
	slot.srv = srv
	return nil
}

// Observer returns the running observer server (s, idx), or nil while
// the slot is stopped.
func (c *Cluster) Observer(s, idx int) *observer.Server {
	return c.observers[s][idx].srv
}

// ObserverAddr returns observer (s, idx)'s client address — what a
// fault injector blocks to partition the observer from its readers.
func (c *Cluster) ObserverAddr(s, idx int) string {
	return c.observers[s][idx].cfg.ClientAddr
}

// ObserverAddrs lists shard s's observer client addresses (stopped
// slots included: routers probe health themselves).
func (c *Cluster) ObserverAddrs(s int) []string {
	if s >= len(c.observers) {
		return nil
	}
	addrs := make([]string, 0, len(c.observers[s]))
	for _, slot := range c.observers[s] {
		addrs = append(addrs, slot.cfg.ClientAddr)
	}
	return addrs
}

// ConnectCoordRead opens a policy-routed read handle over shard 0's
// voters and observer tier: reads follow the policy (leader-lease,
// observer-first, any, nearest), writes and sync barriers use the
// embedded voter session. Only single-shard clusters route reads this
// way — the shard router owns multi-shard fan-out.
func (c *Cluster) ConnectCoordRead(policy coord.ReadPolicy, maxLagTxns uint64, counters *coord.ReadCounters) (*coord.ReadRouter, error) {
	if len(c.Ensembles) != 1 {
		return nil, fmt.Errorf("cluster: policy-routed reads need a single coordination shard, have %d", len(c.Ensembles))
	}
	return coord.NewReadRouter(coord.RouterConfig{
		Net:        c.net,
		Voters:     append([]string(nil), c.Ensemble.ClientAddrs...),
		Observers:  c.ObserverAddrs(0),
		Policy:     policy,
		MaxLagTxns: maxLagTxns,
		Counters:   counters,
	})
}

// Stop closes every client and shuts every server down.
func (c *Cluster) Stop() {
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, inst := range c.lustres {
		inst.Stop()
	}
	for _, inst := range c.pvfses {
		inst.Stop()
	}
	for _, tier := range c.observers {
		for _, slot := range tier {
			if slot.srv != nil {
				slot.srv.Stop()
				slot.srv = nil
			}
		}
	}
	for _, ens := range c.Ensembles {
		ens.Stop()
	}
}
