package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vfs"
)

var seq int

func startCluster(t *testing.T, kind BackendKind, coordServers, backends int) *Cluster {
	t.Helper()
	seq++
	c, err := Start(Config{
		Name:              fmt.Sprintf("t%d", seq),
		CoordServers:      coordServers,
		Backends:          backends,
		Kind:              kind,
		ServersPerBackend: 2,
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestLustreBackedCluster(t *testing.T) {
	c := startCluster(t, Lustre, 3, 2)
	a, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.FS.Mkdir("/proj", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(a.FS, "/proj/data", []byte("lustre-backed")); err != nil {
		t.Fatal(err)
	}
	if err := b.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(b.FS, "/proj/data")
	if err != nil || string(got) != "lustre-backed" {
		t.Fatalf("cross-client read = %q, %v", got, err)
	}
	// The physical body must actually live inside one of the Lustre
	// instances' object stores.
	total := 0
	for _, inst := range c.LustreInstances() {
		for _, n := range inst.ObjectCounts() {
			total += n
		}
	}
	if total != 1 {
		t.Fatalf("objects across Lustre instances = %d, want 1", total)
	}
}

func TestPVFSBackedCluster(t *testing.T) {
	c := startCluster(t, PVFS, 3, 2)
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FS.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(cl.FS, "/d/f", []byte("pvfs-backed")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(cl.FS, "/d/f")
	if err != nil || string(got) != "pvfs-backed" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestMemFSBackedCluster(t *testing.T) {
	c := startCluster(t, MemFS, 1, 4)
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := vfs.WriteFile(cl.FS, fmt.Sprintf("/f%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	es, err := cl.FS.Readdir("/")
	if err != nil || len(es) != 20 {
		t.Fatalf("readdir = %d entries, %v", len(es), err)
	}
}

func TestBaselineClients(t *testing.T) {
	c := startCluster(t, Lustre, 1, 2)
	base, err := c.BasicLustreClient()
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if err := vfs.WriteFile(base, "/direct", []byte("no dufs")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(base, "/direct")
	if err != nil || string(got) != "no dufs" {
		t.Fatalf("baseline read = %q, %v", got, err)
	}
	if _, err := c.BasicPVFSClient(); err == nil {
		t.Fatal("PVFS baseline on a Lustre cluster succeeded")
	}

	p := startCluster(t, PVFS, 1, 2)
	pbase, err := p.BasicPVFSClient()
	if err != nil {
		t.Fatal(err)
	}
	defer pbase.Close()
	if err := pbase.Mkdir("/raw", 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestClientIDsUniqueAcrossClients(t *testing.T) {
	c := startCluster(t, MemFS, 3, 2)
	seen := make(map[uint64]bool)
	for i := 0; i < 6; i++ {
		cl, err := c.NewClient(i)
		if err != nil {
			t.Fatal(err)
		}
		id := cl.FS.ClientID()
		if seen[id] {
			t.Fatalf("duplicate client ID %d", id)
		}
		seen[id] = true
	}
}

func TestUnknownBackendKind(t *testing.T) {
	if _, err := Start(Config{Name: "bad", Kind: BackendKind("tapefs"), CoordServers: 1}); err == nil {
		t.Fatal("unknown backend kind accepted")
	}
}
