package cluster

import (
	"context"
	"flag"
	"testing"
	"time"

	"repro/internal/coord/zab"
)

// -scenario.long stretches every scenario (load window and fault
// schedule) by this factor; 0 keeps the ~2s smoke tier that runs in
// `go test -run TestScenario -short`.
var scenarioScale = flag.Float64("scenario.long", 0, "run the chaos matrix at this time scale (0 = smoke tier)")

// TestScenarioMatrix runs every cell of the chaos matrix: fixed-rate
// open-loop load, a fault schedule firing mid-run, then SLO grading
// and the zero-acked-write-loss check.
func TestScenarioMatrix(t *testing.T) {
	scale := *scenarioScale
	if scale <= 0 {
		scale = 1 // smoke tier
	}
	for _, sc := range Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := RunScenario(ctx, sc, scale)
			if err != nil {
				t.Fatalf("scenario %s: %v", sc.Name, err)
			}
			for _, line := range res.Faults {
				t.Logf("fault: %s", line)
			}
			t.Logf("load: %s", &res.Load)
			t.Logf("acked writes verified: %d (missing %d)", res.AckedChecked, res.MissingAcked)
			if sc.Load.TrackAcked && res.AckedChecked == 0 {
				t.Fatal("no acknowledged writes were tracked — the loss check was vacuous")
			}
			for _, v := range res.Violations {
				t.Errorf("SLO violation: %s", v)
			}
		})
	}
}

// TestScenarioSlowDiskReWrapsOnRestart pins the restart semantics of
// the storage injection seam: a member restarted mid-fault gets a
// fresh wrapper bound to the same DiskChaos, so the fault persists
// across the restart until it is explicitly healed.
func TestScenarioSlowDiskReWrapsOnRestart(t *testing.T) {
	chaos := NewDiskChaos()
	chaos.SetDelay(0, 1, 25*time.Millisecond)
	s := chaos.Wrap(0, 1, nopStorage{}) // as StartServer would re-create it
	startT := time.Now()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startT); d < 25*time.Millisecond {
		t.Fatalf("fresh wrapper ignored pre-existing delay (sync took %v)", d)
	}
	chaos.Clear()
	startT = time.Now()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startT); d > 20*time.Millisecond {
		t.Fatalf("Clear did not lift the delay (sync took %v)", d)
	}
}

// nopStorage is the minimal zab.Storage for wrapper tests.
type nopStorage struct{}

func (nopStorage) HardState() (uint64, uint64)          { return 0, 0 }
func (nopStorage) SaveHardState(uint64, uint64) error   { return nil }
func (nopStorage) Snapshot() ([]byte, uint64, bool)     { return nil, 0, false }
func (nopStorage) Frames() []zab.Frame                  { return nil }
func (nopStorage) Append([]zab.Frame) error             { return nil }
func (nopStorage) Sync() error                          { return nil }
func (nopStorage) LastDurableZxid() uint64              { return 0 }
func (nopStorage) SaveSnapshot([]byte, uint64) error    { return nil }
func (nopStorage) InstallSnapshot([]byte, uint64) error { return nil }
