package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/znode"
)

func startObserverCluster(t *testing.T, observers, maxLogEntries int) *Cluster {
	t.Helper()
	seq++
	c, err := Start(Config{
		Name:               fmt.Sprintf("obs%d", seq),
		CoordServers:       3,
		Backends:           1,
		Kind:               MemFS,
		ServersPerBackend:  1,
		CoordObservers:     observers,
		CoordMaxLogEntries: maxLogEntries,
		HeartbeatInterval:  5 * time.Millisecond,
		ElectionTimeout:    40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

// waitObserverCaughtUp polls until observer (0, idx) has applied at
// least the leader's current commit horizon.
func waitObserverCaughtUp(t *testing.T, c *Cluster, idx int) {
	t.Helper()
	target := c.Ensemble.Leader().CommitZxid()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if obs := c.Observer(0, idx); obs != nil && obs.LastApplied() >= target {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	obs := c.Observer(0, idx)
	t.Fatalf("observer %d stuck at %x, leader committed %x", idx, obs.LastApplied(), target)
}

// TestObserverSyncBarrierReadYourWrites exercises ZooKeeper's
// sync-then-read recipe against a deliberately lagging observer: a
// write lands on the leader while the observer's tail is paused, and a
// Sync issued through the observer must not return until the observer's
// own replica reflects that write — so the read that follows it sees
// the data even though the replica was seconds behind when Sync was
// called.
func TestObserverSyncBarrierReadYourWrites(t *testing.T) {
	c := startObserverCluster(t, 1, 0)
	obs := c.Observer(0, 0)
	waitObserverCaughtUp(t, c, 0)

	leaderSess, err := c.Ensemble.Connect(c.LeaderIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	defer leaderSess.Close()
	obsSess, err := coord.Connect(c.net, []string{c.ObserverAddr(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer obsSess.Close()

	// Inject replication delay, then write behind the observer's back.
	obs.SetPaused(true)
	if _, err := leaderSess.Create("/barrier", []byte("v1"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}
	// The paused replica must not see the write yet.
	if _, ok, err := obsSess.Exists("/barrier"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("paused observer already sees the write; pause hook is not delaying replication")
	}

	// Heal the delay only after the barrier is already in flight.
	healed := make(chan struct{})
	go func() {
		time.Sleep(150 * time.Millisecond)
		obs.SetPaused(false)
		close(healed)
	}()
	start := time.Now()
	if err := obsSess.Sync(); err != nil {
		t.Fatalf("sync barrier through observer: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("Sync returned after %v, before the replica could have caught up", elapsed)
	}
	<-healed
	// Post-barrier, the same session's read on the same replica must
	// see the pre-barrier write: read-your-writes across tiers.
	data, _, err := obsSess.Get("/barrier")
	if err != nil {
		t.Fatalf("read after sync barrier: %v", err)
	}
	if string(data) != "v1" {
		t.Fatalf("read after sync barrier = %q, want %q", data, "v1")
	}
}

// TestObserverWriteForwardingReadYourWrites checks the stronger rule
// the observer tier gives sessions for free: a write submitted THROUGH
// the observer is acked only after the observer's local replica has
// applied it, so the very next read on that replica sees it with no
// explicit barrier.
func TestObserverWriteForwardingReadYourWrites(t *testing.T) {
	c := startObserverCluster(t, 1, 0)
	waitObserverCaughtUp(t, c, 0)
	obsSess, err := coord.Connect(c.net, []string{c.ObserverAddr(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer obsSess.Close()
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/ryw-%02d", i)
		if _, err := obsSess.Create(path, []byte("x"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
		if _, _, err := obsSess.Get(path); err != nil {
			t.Fatalf("write %s acked by observer but not readable on it: %v", path, err)
		}
	}
}

// TestObserverSnapshotRejoinAfterRestart kills an observer, keeps
// writing until the leader truncates its log past the observer's old
// tail position, then revives the observer: it must rebuild itself via
// a shipped snapshot (not frame replay), catch back up, and serve every
// acked write — with zero impact on the writes acked while it was down.
func TestObserverSnapshotRejoinAfterRestart(t *testing.T) {
	// MaxLogEntries 8 forces truncation once the margin is covered, so
	// the restarted replica's from=0 poll cannot be served by frames.
	c := startObserverCluster(t, 1, 8)
	waitObserverCaughtUp(t, c, 0)

	sess, err := c.Ensemble.Connect(c.LeaderIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	const before, during = 40, 120
	for i := 0; i < before; i++ {
		if _, err := sess.Create(fmt.Sprintf("/pre-%03d", i), []byte("a"), znode.ModePersistent); err != nil {
			t.Fatal(err)
		}
	}

	c.StopObserver(0, 0)
	// Every write during the outage must ack normally — the observer
	// tier is read-only capacity, never on the commit path.
	for i := 0; i < during; i++ {
		if _, err := sess.Create(fmt.Sprintf("/down-%03d", i), []byte("b"), znode.ModePersistent); err != nil {
			t.Fatalf("write %d failed while observer was down: %v", i, err)
		}
	}

	if err := c.StartObserver(0, 0); err != nil {
		t.Fatal(err)
	}
	waitObserverCaughtUp(t, c, 0)
	obs := c.Observer(0, 0)
	if got := obs.SnapshotInstalls(); got < 1 {
		t.Fatalf("restarted observer caught up with %d snapshot installs, want >= 1 (log should have truncated past its tail)", got)
	}

	obsSess, err := coord.Connect(c.net, []string{c.ObserverAddr(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer obsSess.Close()
	for i := 0; i < before; i++ {
		if _, _, err := obsSess.Get(fmt.Sprintf("/pre-%03d", i)); err != nil {
			t.Fatalf("pre-outage write /pre-%03d missing on rejoined observer: %v", i, err)
		}
	}
	for i := 0; i < during; i++ {
		if _, _, err := obsSess.Get(fmt.Sprintf("/down-%03d", i)); err != nil {
			t.Fatalf("outage-window write /down-%03d missing on rejoined observer: %v", i, err)
		}
	}
}

// TestLeaseReadWirePath checks the opLeaseRead protocol end to end: the
// quorum-funded leader answers, and an observer refuses with ErrNoLease
// (it can never linearize) so routers fall back instead of reading
// stale data.
func TestLeaseReadWirePath(t *testing.T) {
	c := startObserverCluster(t, 1, 0)
	waitObserverCaughtUp(t, c, 0)

	leaderSess, err := c.Ensemble.Connect(c.LeaderIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	defer leaderSess.Close()
	if _, err := leaderSess.Create("/leased", []byte("fast"), znode.ModePersistent); err != nil {
		t.Fatal(err)
	}

	// The leader holds a heartbeat-funded lease within one round; retry
	// briefly to ride out a just-elected leader.
	deadline := time.Now().Add(2 * time.Second)
	for {
		data, _, err := leaderSess.LeaseGetCtx(t.Context(), "/leased")
		if err == nil {
			if string(data) != "fast" {
				t.Fatalf("lease read = %q, want %q", data, "fast")
			}
			break
		}
		if err != coord.ErrNoLease || time.Now().After(deadline) {
			t.Fatalf("lease read on leader: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	obsSess, err := coord.Connect(c.net, []string{c.ObserverAddr(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer obsSess.Close()
	if _, _, err := obsSess.LeaseGetCtx(t.Context(), "/leased"); err != coord.ErrNoLease {
		t.Fatalf("lease read on observer = %v, want ErrNoLease", err)
	}
}

// TestObserverStatusReportsLag checks both status surfaces: the
// observer reports itself as a non-voting replica with a replication
// tip, and the leader's status lists the observer with its lag.
func TestObserverStatusReportsLag(t *testing.T) {
	c := startObserverCluster(t, 2, 0)
	waitObserverCaughtUp(t, c, 0)
	waitObserverCaughtUp(t, c, 1)

	obsSess, err := coord.Connect(c.net, []string{c.ObserverAddr(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer obsSess.Close()
	st, err := obsSess.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsObserver {
		t.Fatal("observer status does not mark the replica as an observer")
	}
	if st.IsLeader {
		t.Fatal("observer status claims leadership")
	}
	if st.AppliedZxid == 0 {
		t.Fatal("observer status reports a zero replication tip after catch-up")
	}

	leaderSess, err := c.Ensemble.Connect(c.LeaderIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	defer leaderSess.Close()
	// The leader evicts silent observers and lag is sampled per poll;
	// allow a few rounds for both feeds to register.
	deadline := time.Now().Add(2 * time.Second)
	for {
		lst, err := leaderSess.Status()
		if err != nil {
			t.Fatal(err)
		}
		if lst.IsObserver {
			t.Fatal("voter status marked as observer")
		}
		if len(lst.Observers) == 2 {
			seen := map[uint64]bool{}
			for _, o := range lst.Observers {
				seen[o.ID] = true
			}
			if !seen[101] || !seen[102] {
				t.Fatalf("leader observer list = %+v, want IDs 101 and 102", lst.Observers)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never listed both observers: %+v", lst.Observers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
