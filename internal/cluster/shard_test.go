package cluster

import (
	"fmt"
	"testing"

	"repro/internal/coord/shard"
	"repro/internal/vfs"
)

// TestShardedClusterEndToEnd runs the full DUFS stack over a 4-shard
// coordination service: namespace operations from two clients, with
// cross-client visibility through the per-shard Sync barrier and a
// rename whose source and destination parents live on different
// ensembles.
func TestShardedClusterEndToEnd(t *testing.T) {
	c, err := Start(Config{
		Name:         "shardtest",
		CoordServers: 1,
		CoordShards:  4,
		Backends:     2,
		Kind:         MemFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Ensembles) != 4 {
		t.Fatalf("cluster has %d ensembles, want 4", len(c.Ensembles))
	}

	alice, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	router, ok := alice.Session.(*shard.Router)
	if !ok {
		t.Fatalf("sharded cluster handed out %T, want *shard.Router", alice.Session)
	}
	if router.Shards() != 4 {
		t.Fatalf("router spans %d shards, want 4", router.Shards())
	}

	// Spread a small tree over the shards and read it back from the
	// other client.
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/proj%d", i)
		if err := alice.FS.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(alice.FS, dir+"/data", []byte(dir)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bob.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	ents, err := bob.FS.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 8 {
		t.Fatalf("bob sees %d root entries, want 8: %v", len(ents), ents)
	}
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/proj%d", i)
		data, err := vfs.ReadFile(bob.FS, dir+"/data")
		if err != nil || string(data) != dir {
			t.Fatalf("bob reads %s/data = %q, %v", dir, data, err)
		}
	}

	// Cross-shard rename: find two directories on different shards.
	src, dst := "", ""
	for i := 0; i < 8 && src == ""; i++ {
		for j := 0; j < 8; j++ {
			a, b := fmt.Sprintf("/dufs/proj%d", i), fmt.Sprintf("/dufs/proj%d", j)
			if router.ShardFor(a+"/x") != router.ShardFor(b+"/x") {
				src, dst = fmt.Sprintf("/proj%d/data", i), fmt.Sprintf("/proj%d/moved", j)
				break
			}
		}
	}
	if src == "" {
		t.Fatal("eight directories all on one shard — ring badly skewed")
	}
	want, err := vfs.ReadFile(alice.FS, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.FS.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if err := bob.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.FS.Stat(src); err == nil {
		t.Fatalf("source %s still visible after cross-shard rename", src)
	}
	data, err := vfs.ReadFile(bob.FS, dst)
	if err != nil || string(data) != string(want) {
		t.Fatalf("renamed file = %q, %v; want %q", data, err, want)
	}
}

// TestShardedClusterDefaultsToSingle verifies CoordShards=0 keeps the
// seed behavior: one ensemble, bare sessions, no router in the path.
func TestShardedClusterDefaultsToSingle(t *testing.T) {
	c, err := Start(Config{
		Name:         "shardtest-single",
		CoordServers: 1,
		Backends:     1,
		Kind:         MemFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, isRouter := cl.Session.(*shard.Router); isRouter {
		t.Fatal("single-shard cluster should hand out a bare session")
	}
	if err := cl.FS.Mkdir("/ok", 0o755); err != nil {
		t.Fatal(err)
	}
}

// TestShardedClusterBatchedAPI drives the batched coordination
// primitives through a full sharded deployment: Readdir rides
// ChildrenData on whichever shard owns each directory's children, and
// same-directory renames commit as single Multi transactions with an
// empty intent log.
func TestShardedClusterBatchedAPI(t *testing.T) {
	c, err := Start(Config{
		Name:         "shardbatch",
		CoordServers: 1,
		CoordShards:  4,
		Backends:     2,
		Kind:         MemFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	alice, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}

	// Directories spread over shards; each listing is served whole by
	// the one shard holding that directory's children.
	const dirs, files = 6, 5
	for i := 0; i < dirs; i++ {
		dir := fmt.Sprintf("/batch%d", i)
		if err := alice.FS.Mkdir(dir, 0o750); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < files; j++ {
			if err := vfs.WriteFile(alice.FS, fmt.Sprintf("%s/f%d", dir, j), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := bob.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dirs; i++ {
		dir := fmt.Sprintf("/batch%d", i)
		entries, err := bob.FS.Readdir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != files {
			t.Fatalf("Readdir(%s) = %d entries, want %d", dir, len(entries), files)
		}
		for _, e := range entries {
			if e.IsDir || e.Mode != 0o644 {
				t.Fatalf("entry %+v, want file mode 0644", e)
			}
		}
		// Same-directory rename: atomic Multi on that shard, no intent.
		if err := bob.FS.Rename(dir+"/f0", dir+"/renamed"); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := alice.FS.RecoverRenames(0); err != nil || n != 0 {
		t.Fatalf("intent log after same-shard renames = %d, %v; want empty", n, err)
	}
	if err := alice.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dirs; i++ {
		if _, err := alice.FS.Stat(fmt.Sprintf("/batch%d/renamed", i)); err != nil {
			t.Fatalf("renamed file missing in dir %d: %v", i, err)
		}
	}
}
