package cluster

import (
	"fmt"
	"testing"

	"repro/internal/coord/shard"
	"repro/internal/vfs"
)

// TestShardedClusterEndToEnd runs the full DUFS stack over a 4-shard
// coordination service: namespace operations from two clients, with
// cross-client visibility through the per-shard Sync barrier and a
// rename whose source and destination parents live on different
// ensembles.
func TestShardedClusterEndToEnd(t *testing.T) {
	c, err := Start(Config{
		Name:         "shardtest",
		CoordServers: 1,
		CoordShards:  4,
		Backends:     2,
		Kind:         MemFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if len(c.Ensembles) != 4 {
		t.Fatalf("cluster has %d ensembles, want 4", len(c.Ensembles))
	}

	alice, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := c.NewClient(1)
	if err != nil {
		t.Fatal(err)
	}
	router, ok := alice.Session.(*shard.Router)
	if !ok {
		t.Fatalf("sharded cluster handed out %T, want *shard.Router", alice.Session)
	}
	if router.Shards() != 4 {
		t.Fatalf("router spans %d shards, want 4", router.Shards())
	}

	// Spread a small tree over the shards and read it back from the
	// other client.
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/proj%d", i)
		if err := alice.FS.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := vfs.WriteFile(alice.FS, dir+"/data", []byte(dir)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bob.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	ents, err := bob.FS.Readdir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 8 {
		t.Fatalf("bob sees %d root entries, want 8: %v", len(ents), ents)
	}
	for i := 0; i < 8; i++ {
		dir := fmt.Sprintf("/proj%d", i)
		data, err := vfs.ReadFile(bob.FS, dir+"/data")
		if err != nil || string(data) != dir {
			t.Fatalf("bob reads %s/data = %q, %v", dir, data, err)
		}
	}

	// Cross-shard rename: find two directories on different shards.
	src, dst := "", ""
	for i := 0; i < 8 && src == ""; i++ {
		for j := 0; j < 8; j++ {
			a, b := fmt.Sprintf("/dufs/proj%d", i), fmt.Sprintf("/dufs/proj%d", j)
			if router.ShardFor(a+"/x") != router.ShardFor(b+"/x") {
				src, dst = fmt.Sprintf("/proj%d/data", i), fmt.Sprintf("/proj%d/moved", j)
				break
			}
		}
	}
	if src == "" {
		t.Fatal("eight directories all on one shard — ring badly skewed")
	}
	want, err := vfs.ReadFile(alice.FS, src)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.FS.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if err := bob.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.FS.Stat(src); err == nil {
		t.Fatalf("source %s still visible after cross-shard rename", src)
	}
	data, err := vfs.ReadFile(bob.FS, dst)
	if err != nil || string(data) != string(want) {
		t.Fatalf("renamed file = %q, %v; want %q", data, err, want)
	}
}

// TestShardedClusterDefaultsToSingle verifies CoordShards=0 keeps the
// seed behavior: one ensemble, bare sessions, no router in the path.
func TestShardedClusterDefaultsToSingle(t *testing.T) {
	c, err := Start(Config{
		Name:         "shardtest-single",
		CoordServers: 1,
		Backends:     1,
		Kind:         MemFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, isRouter := cl.Session.(*shard.Router); isRouter {
		t.Fatal("single-shard cluster should hand out a bare session")
	}
	if err := cl.FS.Mkdir("/ok", 0o755); err != nil {
		t.Fatal(err)
	}
}
