package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/vfs"
)

// TestWholeClusterColdRestart: a durable deployment writes a
// directory tree through DUFS, every coordination server is stopped
// (nothing flushed beyond what the protocol synced), and the
// coordination layer is cold-restarted from its data directories. The
// EXISTING client mount must keep working across the outage — its
// session table and every acknowledged metadata write are part of the
// replicated state the engines recover — and the namespace must be
// intact, including entries on both sharded ensembles.
func TestWholeClusterColdRestart(t *testing.T) {
	c, err := Start(Config{
		Name:              "restart",
		CoordServers:      3,
		CoordShards:       2,
		Backends:          2,
		Kind:              MemFS,
		CoordDataDir:      t.TempDir(),
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	fs := cl.FS

	const files = 12
	if err := fs.Mkdir("/proj", 0o755); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < files; i++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/proj/f%02d", i), []byte(fmt.Sprintf("data-%d", i))); err != nil {
			t.Fatalf("write f%02d: %v", i, err)
		}
	}

	if err := c.RestartCoord(); err != nil {
		t.Fatal(err)
	}

	// The old mount (old sessions, old FIDs) must still resolve the
	// whole tree; allow the session layer a moment to fail over onto
	// the restarted servers.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := fs.Stat("/proj"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mount never recovered after coordination restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	entries, err := fs.Readdir("/proj")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != files {
		t.Fatalf("readdir after restart: %d entries, want %d", len(entries), files)
	}
	for i := 0; i < files; i++ {
		data, err := vfs.ReadFile(fs, fmt.Sprintf("/proj/f%02d", i))
		if err != nil {
			t.Fatalf("read f%02d after restart: %v", i, err)
		}
		if string(data) != fmt.Sprintf("data-%d", i) {
			t.Fatalf("f%02d content %q after restart", i, data)
		}
	}
	// And the restarted namespace must accept new writes from the old
	// session.
	if err := vfs.WriteFile(fs, "/proj/after-restart", []byte("ok")); err != nil {
		t.Fatalf("write after restart: %v", err)
	}

	// A restart without CoordDataDir must refuse rather than silently
	// wiping state.
	c2, err := Start(Config{
		Name:         "restart-mem",
		CoordServers: 1,
		Backends:     1,
		Kind:         MemFS,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	if err := c2.RestartCoord(); err == nil {
		t.Fatal("RestartCoord without CoordDataDir did not refuse")
	}
}
