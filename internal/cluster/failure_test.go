package cluster

import (
	"errors"
	"testing"

	"repro/internal/vfs"
)

// TestCreateRollsBackWhenBackendDown verifies DUFS's cleanup path:
// if the znode registers but the physical create fails (back-end
// storage unreachable), the namespace entry must be rolled back so no
// phantom file is left behind (a create that errored must be
// invisible).
func TestCreateRollsBackWhenBackendDown(t *testing.T) {
	c := startCluster(t, Lustre, 1, 2)
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FS.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	// Take down every Lustre instance: physical creates now fail.
	for _, inst := range c.LustreInstances() {
		inst.Stop()
	}
	_, err = cl.FS.Create("/d/doomed", 0o644)
	if err == nil {
		t.Fatal("create succeeded with all back-ends down")
	}
	// The name must NOT exist: stat must answer ENOENT from the
	// (healthy) coordination service, and readdir must not list it.
	if _, serr := cl.FS.Stat("/d/doomed"); !errors.Is(serr, vfs.ErrNotExist) {
		t.Fatalf("phantom file after failed create: stat err = %v", serr)
	}
	es, err := cl.FS.Readdir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 0 {
		t.Fatalf("phantom entries after failed create: %v", es)
	}
	// Directory metadata operations keep working: they never touch the
	// dead back-ends (paper §IV-A).
	if err := cl.FS.Mkdir("/d/still-works", 0o755); err != nil {
		t.Fatalf("directory op failed with back-ends down: %v", err)
	}
}

// TestReadsFailCleanlyWhenBackendDown: file data ops report errors,
// they do not hang or corrupt the namespace.
func TestReadsFailCleanlyWhenBackendDown(t *testing.T) {
	c := startCluster(t, Lustre, 1, 2)
	cl, err := c.NewClient(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(cl.FS, "/f", []byte("pre-failure")); err != nil {
		t.Fatal(err)
	}
	for _, inst := range c.LustreInstances() {
		inst.Stop()
	}
	if _, err := vfs.ReadFile(cl.FS, "/f"); err == nil {
		t.Fatal("read succeeded with back-ends down")
	}
	// The namespace still knows the file (metadata lives in the
	// coordination service); only the body is unreachable.
	es, err := cl.FS.Readdir("/")
	if err != nil || len(es) != 1 {
		t.Fatalf("readdir = %v, %v", es, err)
	}
}
