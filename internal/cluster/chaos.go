package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/coord/zab"
)

// DiskChaos is the shared control plane for slow-disk injection. The
// storage wrappers it hands out read their current delay from here on
// every fsync, so one DiskChaos steers every member — including
// wrappers re-created when a member restarts (the ensemble re-invokes
// WrapStorage on StartServer, and a fresh wrapper bound to the same
// DiskChaos picks the fault right back up).
type DiskChaos struct {
	mu     sync.Mutex
	delays map[[2]int]time.Duration // (shard, member index) -> fsync delay
}

// NewDiskChaos returns an empty control plane (no delays).
func NewDiskChaos() *DiskChaos {
	return &DiskChaos{delays: make(map[[2]int]time.Duration)}
}

// SetDelay makes every fsync on coordination member (shard, member)
// take at least d — the slow-disk fault. member is the 0-based
// Ensemble.Servers index. Zero removes the delay.
func (dc *DiskChaos) SetDelay(shard, member int, d time.Duration) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	k := [2]int{shard, member}
	if d <= 0 {
		delete(dc.delays, k)
		return
	}
	dc.delays[k] = d
}

// Clear removes every delay.
func (dc *DiskChaos) Clear() {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	dc.delays = make(map[[2]int]time.Duration)
}

func (dc *DiskChaos) delayFor(shard, member int) time.Duration {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.delays[[2]int{shard, member}]
}

// Wrap has the Config.CoordWrapStorage signature: plug a DiskChaos
// into a cluster with `CoordWrapStorage: chaos.Wrap`.
func (dc *DiskChaos) Wrap(shard, member int, s zab.Storage) zab.Storage {
	return &slowStorage{Storage: s, chaos: dc, shard: shard, member: member}
}

// slowStorage delays the durability edge — Sync and SaveHardState, the
// two calls whose latency a real slow disk puts on the ack path. The
// wrapper itself is stateless; the live delay lives in the DiskChaos
// so it survives the wrapper being rebuilt on restart.
type slowStorage struct {
	zab.Storage
	chaos  *DiskChaos
	shard  int
	member int
}

func (s *slowStorage) Sync() error {
	if d := s.chaos.delayFor(s.shard, s.member); d > 0 {
		time.Sleep(d)
	}
	return s.Storage.Sync()
}

func (s *slowStorage) SaveHardState(epoch, grantedEpoch uint64) error {
	if d := s.chaos.delayFor(s.shard, s.member); d > 0 {
		time.Sleep(d)
	}
	return s.Storage.SaveHardState(epoch, grantedEpoch)
}

// ConnectCoord opens a coordination handle without mounting DUFS: a
// session on a single-shard cluster, a router otherwise. Load
// generators and scenario verification use this to drive the metadata
// service directly.
func (c *Cluster) ConnectCoord(preferred int) (coord.Client, error) {
	return c.connect(preferred)
}

// CoordAddrs returns coordination member (shard, member)'s transport
// addresses — the handles a fault injector blocks to partition the
// member away. member is the 0-based Ensemble.Servers index; the
// addresses mirror coord.StartEnsemble's default scheme, whose wire
// IDs are 1-based.
func (c *Cluster) CoordAddrs(shard, member int) (peer, client string) {
	prefix := fmt.Sprintf("%s-coord%d", c.cfg.Name, shard)
	id := member + 1
	return fmt.Sprintf("%s-peer-%d", prefix, id), fmt.Sprintf("%s-client-%d", prefix, id)
}

// LeaderIndex reports which member of coordination shard s currently
// leads, or -1 when an election is in flight.
func (c *Cluster) LeaderIndex(s int) int {
	for i, srv := range c.Ensembles[s].Servers {
		if srv != nil && srv.IsLeader() {
			return i
		}
	}
	return -1
}
