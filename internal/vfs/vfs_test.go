package vfs

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

// fakeFS records which (op, path) pairs were invoked. It implements
// FileSystem with no behaviour, for routing tests.
type fakeFS struct {
	calls []string
}

func (f *fakeFS) record(op, path string) { f.calls = append(f.calls, op+":"+path) }

func (f *fakeFS) Mkdir(p string, _ uint32) error { f.record("mkdir", p); return nil }
func (f *fakeFS) Rmdir(p string) error           { f.record("rmdir", p); return nil }
func (f *fakeFS) Create(p string, _ uint32) (Handle, error) {
	f.record("create", p)
	return nopHandle{}, nil
}
func (f *fakeFS) Open(p string, _ int) (Handle, error) { f.record("open", p); return nopHandle{}, nil }
func (f *fakeFS) Unlink(p string) error                { f.record("unlink", p); return nil }
func (f *fakeFS) Stat(p string) (FileInfo, error) {
	f.record("stat", p)
	return FileInfo{Name: p, Mtime: time.Now()}, nil
}
func (f *fakeFS) Readdir(p string) ([]DirEntry, error) { f.record("readdir", p); return nil, nil }
func (f *fakeFS) Rename(o, n string) error             { f.record("rename", o+"->"+n); return nil }
func (f *fakeFS) Symlink(t, l string) error            { f.record("symlink", l); return nil }
func (f *fakeFS) Readlink(p string) (string, error)    { f.record("readlink", p); return "", nil }
func (f *fakeFS) Truncate(p string, _ int64) error     { f.record("truncate", p); return nil }
func (f *fakeFS) Chmod(p string, _ uint32) error       { f.record("chmod", p); return nil }
func (f *fakeFS) Access(p string, _ uint32) error      { f.record("access", p); return nil }

type nopHandle struct{}

func (nopHandle) ReadAt(p []byte, off int64) (int, error)  { return 0, nil }
func (nopHandle) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (nopHandle) Close() error                             { return nil }

func TestClean(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{"/", "/", false},
		{"/a", "/a", false},
		{"/a/b/", "/a/b", false},
		{"//a//b", "/a/b", false},
		{"/a/./b", "/a/b", false},
		{"/a/../b", "/b", false},
		{"/..", "", true},
		{"relative", "", true},
		{"", "", true},
	}
	for _, c := range cases {
		got, err := Clean(c.in)
		if c.wantErr != (err != nil) {
			t.Errorf("Clean(%q) err = %v, wantErr=%v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCleanIdempotentProperty(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		p, err := Clean("/" + s)
		if err != nil {
			return true // rejected input; nothing to verify
		}
		p2, err := Clean(p)
		return err == nil && p2 == p
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/", "/", ""},
		{"/a", "/", "a"},
		{"/a/b", "/a", "b"},
	}
	for _, c := range cases {
		d, n := Split(c.in)
		if d != c.dir || n != c.name {
			t.Errorf("Split(%q) = (%q,%q)", c.in, d, n)
		}
	}
}

func TestMountResolution(t *testing.T) {
	mt := NewMountTable()
	rootFS := &fakeFS{}
	dufsFS := &fakeFS{}
	deepFS := &fakeFS{}
	if err := mt.Mount("/", rootFS); err != nil {
		t.Fatal(err)
	}
	if err := mt.Mount("/dufs", dufsFS); err != nil {
		t.Fatal(err)
	}
	if err := mt.Mount("/dufs/deep", deepFS); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path    string
		wantFS  FileSystem
		wantRel string
	}{
		{"/etc/hosts", rootFS, "/etc/hosts"},
		{"/dufs", dufsFS, "/"},
		{"/dufs/a/b", dufsFS, "/a/b"},
		{"/dufs/deep/x", deepFS, "/x"},
		{"/dufsx", rootFS, "/dufsx"}, // prefix must match at a boundary
	}
	for _, c := range cases {
		fs, rel, err := mt.Resolve(c.path)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", c.path, err)
		}
		if fs != c.wantFS || rel != c.wantRel {
			t.Errorf("Resolve(%q) = (%p,%q), want (%p,%q)", c.path, fs, rel, c.wantFS, c.wantRel)
		}
	}
}

func TestResolveNoMount(t *testing.T) {
	mt := NewMountTable()
	if err := mt.Mount("/only", &fakeFS{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mt.Resolve("/elsewhere"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnmount(t *testing.T) {
	mt := NewMountTable()
	fs := &fakeFS{}
	if err := mt.Mount("/m", fs); err != nil {
		t.Fatal(err)
	}
	if err := mt.Unmount("/m"); err != nil {
		t.Fatal(err)
	}
	if err := mt.Unmount("/m"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double unmount err = %v", err)
	}
}

func TestMountReplaces(t *testing.T) {
	mt := NewMountTable()
	a, b := &fakeFS{}, &fakeFS{}
	if err := mt.Mount("/m", a); err != nil {
		t.Fatal(err)
	}
	if err := mt.Mount("/m", b); err != nil {
		t.Fatal(err)
	}
	fs, _, err := mt.Resolve("/m/x")
	if err != nil {
		t.Fatal(err)
	}
	if fs != b {
		t.Fatal("mount did not replace")
	}
	if got := len(mt.Mounts()); got != 1 {
		t.Fatalf("mounts = %d", got)
	}
}

func TestDispatcherRoutesEveryOp(t *testing.T) {
	mt := NewMountTable()
	fs := &fakeFS{}
	if err := mt.Mount("/m", fs); err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(mt)

	if err := d.Mkdir("/m/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := d.Rmdir("/m/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("/m/f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Open("/m/f", OpenRead); err != nil {
		t.Fatal(err)
	}
	if err := d.Unlink("/m/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("/m/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Readdir("/m"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("/m/a", "/m/b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Symlink("/t", "/m/l"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Readlink("/m/l"); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate("/m/f", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Chmod("/m/f", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := d.Access("/m/f", AccessRead); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"mkdir:/d", "rmdir:/d", "create:/f", "open:/f", "unlink:/f",
		"stat:/f", "readdir:/", "rename:/a->/b", "symlink:/l",
		"readlink:/l", "truncate:/f", "chmod:/f", "access:/f",
	}
	if len(fs.calls) != len(want) {
		t.Fatalf("calls = %v", fs.calls)
	}
	for i := range want {
		if fs.calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, fs.calls[i], want[i])
		}
	}
}

func TestDispatcherCrossMountRename(t *testing.T) {
	mt := NewMountTable()
	if err := mt.Mount("/a", &fakeFS{}); err != nil {
		t.Fatal(err)
	}
	if err := mt.Mount("/b", &fakeFS{}); err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(mt)
	if err := d.Rename("/a/x", "/b/x"); !errors.Is(err, ErrCrossDev) {
		t.Fatalf("cross-mount rename err = %v", err)
	}
}

func TestDummyForwardsEverything(t *testing.T) {
	inner := &fakeFS{}
	d := NewDummy(inner)
	if err := d.Mkdir("/x", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stat("/x"); err != nil {
		t.Fatal(err)
	}
	if len(inner.calls) != 2 {
		t.Fatalf("calls = %v", inner.calls)
	}
}

func TestFileInfoPredicates(t *testing.T) {
	dir := FileInfo{Mode: ModeDir | 0o755}
	if !dir.IsDir() || dir.IsSymlink() {
		t.Fatal("dir predicates wrong")
	}
	link := FileInfo{Mode: ModeSymlink | 0o777}
	if !link.IsSymlink() || link.IsDir() {
		t.Fatal("symlink predicates wrong")
	}
	reg := FileInfo{Mode: ModeRegular | 0o644}
	if reg.IsDir() || reg.IsSymlink() {
		t.Fatal("regular predicates wrong")
	}
}
