package vfs

import (
	"sort"
	"strings"
	"sync"
)

// MountTable routes absolute paths to mounted filesystems by longest
// matching prefix, the way the kernel VFS routes into FUSE mounts.
// DUFS appears to applications as one mount point in this table,
// hiding the N physical back-end mounts behind it (paper §IV-A).
type MountTable struct {
	mu     sync.RWMutex
	mounts []mount // sorted by descending prefix length
}

type mount struct {
	prefix string // "/" or "/a/b" (no trailing slash)
	fs     FileSystem
}

// NewMountTable returns an empty table.
func NewMountTable() *MountTable { return &MountTable{} }

// Mount attaches fs at prefix. Mounting over an existing prefix
// replaces it.
func (m *MountTable) Mount(prefix string, fs FileSystem) error {
	p, err := Clean(prefix)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.mounts {
		if m.mounts[i].prefix == p {
			m.mounts[i].fs = fs
			return nil
		}
	}
	m.mounts = append(m.mounts, mount{prefix: p, fs: fs})
	sort.Slice(m.mounts, func(i, j int) bool {
		return len(m.mounts[i].prefix) > len(m.mounts[j].prefix)
	})
	return nil
}

// Unmount detaches the filesystem at prefix.
func (m *MountTable) Unmount(prefix string) error {
	p, err := Clean(prefix)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.mounts {
		if m.mounts[i].prefix == p {
			m.mounts = append(m.mounts[:i], m.mounts[i+1:]...)
			return nil
		}
	}
	return ErrNotExist
}

// Resolve returns the filesystem owning path and the path relative to
// its mount point (always absolute, "/" for the mount root).
func (m *MountTable) Resolve(path string) (FileSystem, string, error) {
	p, err := Clean(path)
	if err != nil {
		return nil, "", err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, mt := range m.mounts {
		if mt.prefix == "/" {
			return mt.fs, p, nil
		}
		if p == mt.prefix {
			return mt.fs, "/", nil
		}
		if strings.HasPrefix(p, mt.prefix+"/") {
			return mt.fs, p[len(mt.prefix):], nil
		}
	}
	return nil, "", ErrNotExist
}

// Mounts returns the mounted prefixes, longest first.
func (m *MountTable) Mounts() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, len(m.mounts))
	for i, mt := range m.mounts {
		out[i] = mt.prefix
	}
	return out
}

// Dispatcher exposes the union of all mounts as one FileSystem, the
// way applications see the kernel VFS. Cross-mount renames are
// rejected with ErrCrossDev, as on a real system.
type Dispatcher struct {
	table *MountTable
}

// NewDispatcher returns a dispatcher over the table.
func NewDispatcher(table *MountTable) *Dispatcher { return &Dispatcher{table: table} }

func (d *Dispatcher) route(path string) (FileSystem, string, error) {
	return d.table.Resolve(path)
}

// Mkdir implements FileSystem.
func (d *Dispatcher) Mkdir(path string, perm uint32) error {
	fs, rel, err := d.route(path)
	if err != nil {
		return err
	}
	return fs.Mkdir(rel, perm)
}

// Rmdir implements FileSystem.
func (d *Dispatcher) Rmdir(path string) error {
	fs, rel, err := d.route(path)
	if err != nil {
		return err
	}
	return fs.Rmdir(rel)
}

// Create implements FileSystem.
func (d *Dispatcher) Create(path string, perm uint32) (Handle, error) {
	fs, rel, err := d.route(path)
	if err != nil {
		return nil, err
	}
	return fs.Create(rel, perm)
}

// Open implements FileSystem.
func (d *Dispatcher) Open(path string, flags int) (Handle, error) {
	fs, rel, err := d.route(path)
	if err != nil {
		return nil, err
	}
	return fs.Open(rel, flags)
}

// Unlink implements FileSystem.
func (d *Dispatcher) Unlink(path string) error {
	fs, rel, err := d.route(path)
	if err != nil {
		return err
	}
	return fs.Unlink(rel)
}

// Stat implements FileSystem.
func (d *Dispatcher) Stat(path string) (FileInfo, error) {
	fs, rel, err := d.route(path)
	if err != nil {
		return FileInfo{}, err
	}
	return fs.Stat(rel)
}

// Readdir implements FileSystem.
func (d *Dispatcher) Readdir(path string) ([]DirEntry, error) {
	fs, rel, err := d.route(path)
	if err != nil {
		return nil, err
	}
	return fs.Readdir(rel)
}

// Rename implements FileSystem.
func (d *Dispatcher) Rename(oldPath, newPath string) error {
	ofs, orel, err := d.route(oldPath)
	if err != nil {
		return err
	}
	nfs, nrel, err := d.route(newPath)
	if err != nil {
		return err
	}
	if ofs != nfs {
		return ErrCrossDev
	}
	return ofs.Rename(orel, nrel)
}

// Symlink implements FileSystem.
func (d *Dispatcher) Symlink(target, linkPath string) error {
	fs, rel, err := d.route(linkPath)
	if err != nil {
		return err
	}
	return fs.Symlink(target, rel)
}

// Readlink implements FileSystem.
func (d *Dispatcher) Readlink(path string) (string, error) {
	fs, rel, err := d.route(path)
	if err != nil {
		return "", err
	}
	return fs.Readlink(rel)
}

// Truncate implements FileSystem.
func (d *Dispatcher) Truncate(path string, size int64) error {
	fs, rel, err := d.route(path)
	if err != nil {
		return err
	}
	return fs.Truncate(rel, size)
}

// Chmod implements FileSystem.
func (d *Dispatcher) Chmod(path string, perm uint32) error {
	fs, rel, err := d.route(path)
	if err != nil {
		return err
	}
	return fs.Chmod(rel, perm)
}

// Access implements FileSystem.
func (d *Dispatcher) Access(path string, mask uint32) error {
	fs, rel, err := d.route(path)
	if err != nil {
		return err
	}
	return fs.Access(rel, mask)
}

var _ FileSystem = (*Dispatcher)(nil)

// Dummy is the paper's "dummy FUSE filesystem which just does nothing,
// except forwarding the requests to a local filesystem" (§V-E). It
// wraps an inner filesystem and forwards every call, optionally
// counting operations so the memory study can correlate footprint with
// request volume.
type Dummy struct {
	Inner FileSystem
	ops   sync.Map // op name -> *int64 (simple counters)
}

// NewDummy wraps inner.
func NewDummy(inner FileSystem) *Dummy { return &Dummy{Inner: inner} }

// Mkdir implements FileSystem.
func (d *Dummy) Mkdir(path string, perm uint32) error { return d.Inner.Mkdir(path, perm) }

// Rmdir implements FileSystem.
func (d *Dummy) Rmdir(path string) error { return d.Inner.Rmdir(path) }

// Create implements FileSystem.
func (d *Dummy) Create(path string, perm uint32) (Handle, error) { return d.Inner.Create(path, perm) }

// Open implements FileSystem.
func (d *Dummy) Open(path string, flags int) (Handle, error) { return d.Inner.Open(path, flags) }

// Unlink implements FileSystem.
func (d *Dummy) Unlink(path string) error { return d.Inner.Unlink(path) }

// Stat implements FileSystem.
func (d *Dummy) Stat(path string) (FileInfo, error) { return d.Inner.Stat(path) }

// Readdir implements FileSystem.
func (d *Dummy) Readdir(path string) ([]DirEntry, error) { return d.Inner.Readdir(path) }

// Rename implements FileSystem.
func (d *Dummy) Rename(o, n string) error { return d.Inner.Rename(o, n) }

// Symlink implements FileSystem.
func (d *Dummy) Symlink(t, l string) error { return d.Inner.Symlink(t, l) }

// Readlink implements FileSystem.
func (d *Dummy) Readlink(p string) (string, error) { return d.Inner.Readlink(p) }

// Truncate implements FileSystem.
func (d *Dummy) Truncate(p string, s int64) error { return d.Inner.Truncate(p, s) }

// Chmod implements FileSystem.
func (d *Dummy) Chmod(p string, m uint32) error { return d.Inner.Chmod(p, m) }

// Access implements FileSystem.
func (d *Dummy) Access(p string, m uint32) error { return d.Inner.Access(p, m) }

var _ FileSystem = (*Dummy)(nil)
