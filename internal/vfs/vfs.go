// Package vfs is the userspace stand-in for FUSE (paper §II-B, §IV-C).
//
// The paper uses FUSE only as a POSIX entry point: applications issue
// filesystem calls, the kernel module bounces them to the DUFS daemon,
// DUFS translates them (open -> dufs_open, ...) and returns results.
// This package provides the same call surface — a FileSystem interface
// with the operation set the DUFS prototype implements ("mkdir,
// create, open, symlink, rename, stat, readdir, rmdir, unlink,
// truncate, chmod, access, read, write") — plus a mount table that
// routes paths to registered filesystems, and a Dummy passthrough
// filesystem used by the paper's memory study (Fig 11).
package vfs

import (
	"errors"
	"strings"
	"time"
)

// Errors mirror the POSIX errno values a FUSE filesystem returns.
var (
	ErrNotExist  = errors.New("vfs: no such file or directory") // ENOENT
	ErrExist     = errors.New("vfs: file exists")               // EEXIST
	ErrNotDir    = errors.New("vfs: not a directory")           // ENOTDIR
	ErrIsDir     = errors.New("vfs: is a directory")            // EISDIR
	ErrNotEmpty  = errors.New("vfs: directory not empty")       // ENOTEMPTY
	ErrInvalid   = errors.New("vfs: invalid argument")          // EINVAL
	ErrPerm      = errors.New("vfs: operation not permitted")   // EPERM
	ErrAccess    = errors.New("vfs: permission denied")         // EACCES
	ErrReadOnly  = errors.New("vfs: read-only file system")     // EROFS
	ErrNotionSup = errors.New("vfs: operation not supported")   // ENOTSUP
	ErrStale     = errors.New("vfs: stale file handle")         // ESTALE
	ErrCrossDev  = errors.New("vfs: cross-device link")         // EXDEV
	ErrNameLong  = errors.New("vfs: file name too long")        // ENAMETOOLONG
)

// Mode bits, a minimal subset of POSIX st_mode.
const (
	ModeDir     uint32 = 0o040000
	ModeSymlink uint32 = 0o120000
	ModeRegular uint32 = 0o100000
	PermMask    uint32 = 0o7777
)

// Access mask bits for the Access operation.
const (
	AccessRead  uint32 = 4
	AccessWrite uint32 = 2
	AccessExec  uint32 = 1
)

// Open flags, a minimal subset of POSIX open(2).
const (
	OpenRead   = 0x0
	OpenWrite  = 0x1
	OpenRDWR   = 0x2
	OpenCreate = 0x40
	OpenTrunc  = 0x200
)

// FileInfo is the stat structure returned by Stat — the fields the
// paper's stat() algorithm fills from the Znode or the physical file
// (Fig 6).
type FileInfo struct {
	Name  string
	Size  int64
	Mode  uint32 // type bits | permissions
	Nlink uint32
	Ctime time.Time
	Mtime time.Time
}

// IsDir reports whether the entry is a directory.
func (fi FileInfo) IsDir() bool { return fi.Mode&ModeDir != 0 }

// IsSymlink reports whether the entry is a symbolic link.
func (fi FileInfo) IsSymlink() bool { return fi.Mode&ModeSymlink == ModeSymlink }

// DirEntry is one readdir record. Mode carries the entry's permission
// bits when the filesystem has them at listing time (DUFS's batched
// readdir does); 0 means "not reported" — callers needing authoritative
// modes must Stat.
type DirEntry struct {
	Name  string
	IsDir bool
	Mode  uint32
}

// Handle is an open file. Read/write follow the pread/pwrite model
// FUSE uses.
type Handle interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}

// FileSystem is the operation surface the DUFS prototype implements
// (paper §IV-C). Paths are absolute within the filesystem ("/x/y").
type FileSystem interface {
	Mkdir(path string, perm uint32) error
	Rmdir(path string) error
	Create(path string, perm uint32) (Handle, error)
	Open(path string, flags int) (Handle, error)
	Unlink(path string) error
	Stat(path string) (FileInfo, error)
	Readdir(path string) ([]DirEntry, error)
	Rename(oldPath, newPath string) error
	Symlink(target, linkPath string) error
	Readlink(path string) (string, error)
	Truncate(path string, size int64) error
	Chmod(path string, perm uint32) error
	Access(path string, mask uint32) error
}

// Clean normalizes a path: collapses slashes, resolves "."/"" and
// rejects escapes above the root. It returns "/" for the root.
func Clean(path string) (string, error) {
	if path == "" {
		return "", ErrInvalid
	}
	if path[0] != '/' {
		return "", ErrInvalid
	}
	parts := make([]string, 0, 8)
	for _, seg := range strings.Split(path, "/") {
		switch seg {
		case "", ".":
		case "..":
			if len(parts) == 0 {
				return "", ErrInvalid
			}
			parts = parts[:len(parts)-1]
		default:
			if len(seg) > 255 {
				return "", ErrNameLong
			}
			parts = append(parts, seg)
		}
	}
	if len(parts) == 0 {
		return "/", nil
	}
	return "/" + strings.Join(parts, "/"), nil
}

// Split returns the parent path and base name of a cleaned path.
func Split(path string) (dir, name string) {
	i := strings.LastIndexByte(path, '/')
	if i == 0 {
		if len(path) == 1 {
			return "/", ""
		}
		return "/", path[1:]
	}
	return path[:i], path[i+1:]
}

// ReadFile is a convenience helper: open, read everything, close.
func ReadFile(fs FileSystem, path string) ([]byte, error) {
	fi, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	h, err := fs.Open(path, OpenRead)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	buf := make([]byte, fi.Size)
	n, err := h.ReadAt(buf, 0)
	if err != nil && n != len(buf) {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFile is a convenience helper: create/truncate, write, close.
func WriteFile(fs FileSystem, path string, data []byte) error {
	h, err := fs.Create(path, 0o644)
	if err != nil {
		h2, err2 := fs.Open(path, OpenWrite|OpenTrunc)
		if err2 != nil {
			return err
		}
		h = h2
	}
	defer h.Close()
	if _, err := h.WriteAt(data, 0); err != nil {
		return err
	}
	return nil
}

// MkdirAll creates a directory and any missing parents.
func MkdirAll(fs FileSystem, path string, perm uint32) error {
	p, err := Clean(path)
	if err != nil {
		return err
	}
	if p == "/" {
		return nil
	}
	parts := strings.Split(p[1:], "/")
	cur := ""
	for _, seg := range parts {
		cur += "/" + seg
		if err := fs.Mkdir(cur, perm); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}
