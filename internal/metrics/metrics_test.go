package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("Value() = %d, want 16000", got)
	}
}

func TestCounterAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value() = %d, want 3", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("zero histogram should report zeros")
	}
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	if got := h.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3", got)
	}
	if got := h.Mean(); got != 20*time.Microsecond {
		t.Fatalf("Mean() = %v, want 20µs", got)
	}
	if got := h.Min(); got != 10*time.Microsecond {
		t.Fatalf("Min() = %v, want 10µs", got)
	}
	if got := h.Max(); got != 30*time.Microsecond {
		t.Fatalf("Max() = %v, want 30µs", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	q50 := h.Quantile(0.5)
	q99 := h.Quantile(0.99)
	if q50 > q99 {
		t.Fatalf("q50 %v > q99 %v", q50, q99)
	}
	if q99 > 2*h.Max() {
		t.Fatalf("q99 %v exceeds twice max %v", q99, h.Max())
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("quantiles of a non-empty histogram should be non-zero")
	}
}

func TestSummaryThroughput(t *testing.T) {
	s := Summary{Name: "create", Ops: 1000, Elapsed: time.Second}
	if got := s.Throughput(); got != 1000 {
		t.Fatalf("Throughput() = %f, want 1000", got)
	}
	zero := Summary{Ops: 10}
	if zero.Throughput() != 0 {
		t.Fatal("zero-elapsed summary should report 0 throughput")
	}
	if s.String() == "" {
		t.Fatal("String() should render")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	r.Counter("b").Inc()
	if got := r.Counter("a").Value(); got != 2 {
		t.Fatalf("counter a = %d, want 2", got)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("CounterNames() = %v, want [a b]", names)
	}
	h := r.Histogram("lat")
	h.Observe(time.Millisecond)
	if r.Histogram("lat").Count() != 1 {
		t.Fatal("histogram not shared across lookups")
	}
}

func TestBucketForEdges(t *testing.T) {
	if bucketFor(0) != 0 {
		t.Fatal("bucketFor(0) != 0")
	}
	if bucketFor(-time.Second) != 0 {
		t.Fatal("bucketFor(negative) != 0")
	}
	if b := bucketFor(time.Duration(1) << 62); b >= nBuckets {
		t.Fatalf("bucketFor overflow bucket = %d", b)
	}
}

func TestGaugeMovesBothWays(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Inc()
	g.Add(4)
	g.Dec()
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
	g.Add(-20)
	if got := g.Value(); got != -11 {
		t.Fatalf("gauge = %d, want -11", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge after balanced inc/dec = %d, want 0", got)
	}
}

func TestDistributionBasics(t *testing.T) {
	var d Distribution
	for _, v := range []int64{1, 2, 4, 8, 128} {
		d.Observe(v)
	}
	if d.Count() != 5 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Sum() != 143 {
		t.Fatalf("sum = %d", d.Sum())
	}
	if d.Min() != 1 || d.Max() != 128 {
		t.Fatalf("min/max = %d/%d", d.Min(), d.Max())
	}
	if m := d.Mean(); m < 28.5 || m > 28.7 {
		t.Fatalf("mean = %f", m)
	}
	if q := d.Quantile(1); q < 128 {
		t.Fatalf("q100 = %d, want >= 128", q)
	}
	if lo, hi := d.Quantile(0), d.Quantile(0.99); lo > hi {
		t.Fatalf("quantiles not monotone: q0=%d q99=%d", lo, hi)
	}
}

func TestDistributionZeroValueAndEdges(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("zero-value distribution not zero")
	}
	d.Observe(0)
	d.Observe(-3)
	if d.Min() != -3 || d.Max() != 0 {
		t.Fatalf("min/max = %d/%d", d.Min(), d.Max())
	}
	if valueBucketFor(0) != 0 || valueBucketFor(-1) != 0 {
		t.Fatal("non-positive samples must land in bucket 0")
	}
	if b := valueBucketFor(1 << 62); b >= nBuckets {
		t.Fatalf("overflow bucket = %d", b)
	}
}

func TestDistributionQuantileInterpolates(t *testing.T) {
	var d Distribution
	for v := int64(1); v <= 1024; v++ {
		d.Observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.25, 256},
		{0.5, 512},
		{0.9, 922},
		{0.99, 1014},
		{0.999, 1023},
	}
	for _, c := range cases {
		got := d.Quantile(c.q)
		// Interpolation keeps the error to a fraction of the bucket
		// width; 10% tolerance is far tighter than the 2x the old
		// upper-bound answer allowed (q50 used to report 1024).
		lo := c.want - c.want/10
		hi := c.want + c.want/10
		if got < lo || got > hi {
			t.Fatalf("Quantile(%g) = %d, want within [%d, %d]", c.q, got, lo, hi)
		}
	}
	if got := d.Quantile(1); got != 1024 {
		t.Fatalf("Quantile(1) = %d, want exact max 1024", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %d, want min 1", got)
	}
}

func TestDistributionQuantileMonotoneDense(t *testing.T) {
	var d Distribution
	for v := int64(1); v <= 5000; v += 3 {
		d.Observe(v)
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := d.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%g) = %d < previous %d", q, got, prev)
		}
		prev = got
	}
}

func TestDistributionQuantileClampsToObserved(t *testing.T) {
	var d Distribution
	d.Observe(100)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := d.Quantile(q); got != 100 {
			t.Fatalf("single-sample Quantile(%g) = %d, want 100", q, got)
		}
	}
	var neg Distribution
	neg.Observe(-50)
	neg.Observe(-10)
	if got := neg.Quantile(0.5); got < -50 || got > 0 {
		t.Fatalf("non-positive-sample Quantile(0.5) = %d, want within [-50, 0]", got)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p99 := h.Quantile(0.99)
	want := 990 * time.Microsecond
	if p99 < want-want/10 || p99 > want+want/10 {
		t.Fatalf("p99 = %v, want ~%v", p99, want)
	}
}

func TestRegistryGaugesAndDistributions(t *testing.T) {
	r := NewRegistry()
	r.Gauge("queue").Set(3)
	if r.Gauge("queue").Value() != 3 {
		t.Fatal("gauge not shared across lookups")
	}
	r.Distribution("batch").Observe(7)
	if r.Distribution("batch").Count() != 1 {
		t.Fatal("distribution not shared across lookups")
	}
	if names := r.GaugeNames(); len(names) != 1 || names[0] != "queue" {
		t.Fatalf("GaugeNames() = %v", names)
	}
	if names := r.DistributionNames(); len(names) != 1 || names[0] != "batch" {
		t.Fatalf("DistributionNames() = %v", names)
	}
}
