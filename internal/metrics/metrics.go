// Package metrics provides lightweight, concurrency-safe counters,
// latency histograms and throughput summaries used by the DUFS stack,
// the backend simulators and the benchmark harness.
//
// The package is deliberately dependency-free (stdlib only) and cheap
// enough to keep enabled in the hot path of the coordination service.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter. For values
// that move both ways (queue depths, in-flight counts) use Gauge.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter, e.g. the size of a batch of events.
// Negative deltas are not rejected, but a value that legitimately
// moves both ways should be a Gauge, not a Counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time level: it can rise and fall, unlike
// Counter. The coordination service uses gauges for proposer queue
// depth and in-flight proposal frames.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one to the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one from the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta (positive or negative) to the gauge.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Distribution records unitless int64 samples (batch sizes, fan-outs,
// queue lengths at drain time) into power-of-two buckets with exact
// count/sum/min/max — the integer sibling of the duration Histogram.
// The zero value is ready to use.
type Distribution struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [nBuckets]int64
}

func valueBucketFor(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 64 - leadingZeros64(uint64(v))
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

// Observe records one sample.
func (d *Distribution) Observe(v int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 || v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	d.count++
	d.sum += v
	d.buckets[valueBucketFor(v)]++
}

// Count returns the number of samples.
func (d *Distribution) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Sum returns the running total of all samples.
func (d *Distribution) Sum() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sum
}

// Mean returns the arithmetic mean of all samples.
func (d *Distribution) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Min returns the smallest sample.
func (d *Distribution) Min() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.min
}

// Max returns the largest sample.
func (d *Distribution) Max() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Quantile returns an approximate q-quantile (0 <= q <= 1). The target
// rank is located in its power-of-two bucket and the value is linearly
// interpolated across that bucket's range, clamped to the observed
// min/max — so the error is a fraction of one bucket's width rather
// than the full width, and load harnesses can assert p99 bounds
// against it directly.
func (d *Distribution) Quantile(q float64) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(d.count)
	if target < 1 {
		target = 1
	}
	var seen float64
	for i, n := range d.buckets {
		if n == 0 {
			continue
		}
		fn := float64(n)
		if seen+fn < target {
			seen += fn
			continue
		}
		// Bucket i holds [2^(i-1), 2^i - 1] for i >= 1; bucket 0 holds
		// every non-positive sample. Interpolate the rank's position
		// across the bucket's inclusive value range.
		var lo, hi float64
		if i == 0 {
			lo, hi = float64(d.min), 0
			if lo > 0 {
				lo = 0
			}
		} else {
			lo = float64(int64(1) << uint(i-1))
			hi = 2*lo - 1
		}
		v := int64(math.Round(lo + (hi-lo)*(target-seen)/fn))
		if v < d.min {
			v = d.min
		}
		if v > d.max {
			v = d.max
		}
		return v
	}
	return d.max
}

// nBuckets covers 1ns..~9.2s with 64 powers-of-two-ish buckets.
const nBuckets = 64

// bucketFor is valueBucketFor in duration clothing, kept for the
// duration-facing tests and any future duration-specific bucketing.
func bucketFor(d time.Duration) int { return valueBucketFor(int64(d)) }

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Histogram records durations into exponentially sized buckets and
// retains exact min/max/sum for mean computation. The zero value is
// ready to use. A duration is a nanosecond int64, so the statistics
// engine is a Distribution; Histogram is its duration-typed face.
type Histogram struct {
	d Distribution
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.d.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.d.Count() }

// Mean returns the arithmetic mean of all observations (one
// consistent snapshot, integer nanosecond division as before).
func (h *Histogram) Mean() time.Duration {
	h.d.mu.Lock()
	defer h.d.mu.Unlock()
	if h.d.count == 0 {
		return 0
	}
	return time.Duration(h.d.sum / h.d.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration { return time.Duration(h.d.Min()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.d.Max()) }

// Quantile returns an approximate q-quantile (0 <= q <= 1), linearly
// interpolated within the target rank's bucket and clamped to the
// observed min/max (see Distribution.Quantile).
func (h *Histogram) Quantile(q float64) time.Duration {
	return time.Duration(h.d.Quantile(q))
}

// Summary describes the outcome of a timed closed-loop run: how many
// operations completed over a wall-clock (or simulated) span.
type Summary struct {
	Name    string
	Ops     int64
	Elapsed time.Duration
}

// Throughput returns operations per second.
func (s Summary) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

// String renders the summary in an mdtest-like single line.
func (s Summary) String() string {
	return fmt.Sprintf("%-24s %10d ops %12s %12.1f ops/sec",
		s.Name, s.Ops, s.Elapsed.Round(time.Microsecond), s.Throughput())
}

// Registry is a named collection of counters, gauges, histograms and
// distributions.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	distributions map[string]*Distribution
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		distributions: make(map[string]*Distribution),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Distribution returns the distribution with the given name, creating
// it if needed.
func (r *Registry) Distribution(name string) *Distribution {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.distributions[name]
	if !ok {
		d = &Distribution{}
		r.distributions[name] = d
	}
	return d
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the sorted names of all registered gauges.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DistributionNames returns the sorted names of all registered
// distributions.
func (r *Registry) DistributionNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.distributions))
	for n := range r.distributions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
