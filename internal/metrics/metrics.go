// Package metrics provides lightweight, concurrency-safe counters,
// latency histograms and throughput summaries used by the DUFS stack,
// the backend simulators and the benchmark harness.
//
// The package is deliberately dependency-free (stdlib only) and cheap
// enough to keep enabled in the hot path of the coordination service.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (which may be negative for gauges reusing Counter).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram records durations into exponentially sized buckets and
// retains exact min/max/sum for mean computation. The zero value is
// ready to use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [nBuckets]int64
}

// nBuckets covers 1ns..~9.2s with 64 powers-of-two-ish buckets.
const nBuckets = 64

func bucketFor(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := 64 - leadingZeros64(uint64(d))
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketFor(d)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an approximate q-quantile (0 <= q <= 1) using the
// bucket upper bounds. The error is bounded by the bucket width.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= target {
			return time.Duration(uint64(1) << uint(i))
		}
	}
	return h.max
}

// Summary describes the outcome of a timed closed-loop run: how many
// operations completed over a wall-clock (or simulated) span.
type Summary struct {
	Name    string
	Ops     int64
	Elapsed time.Duration
}

// Throughput returns operations per second.
func (s Summary) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Ops) / s.Elapsed.Seconds()
}

// String renders the summary in an mdtest-like single line.
func (s Summary) String() string {
	return fmt.Sprintf("%-24s %10d ops %12s %12.1f ops/sec",
		s.Name, s.Ops, s.Elapsed.Round(time.Microsecond), s.Throughput())
}

// Registry is a named collection of counters and histograms.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
